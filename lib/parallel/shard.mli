(** Contiguous column-shard plans and deterministic result merging.

    The sharded sweep engine partitions a dictionary of [n] columns
    into contiguous ranges, lets every shard scan its own range with
    the ordinary sequential kernels, and merges the per-shard results
    with a {e fixed-shape} tree reduction. Because the tree shape is a
    pure function of the shard count and every combine used by the
    engine is exact, associative and left-biased (max, min, argmax
    with strict-greater tie-breaking), the merged result is bitwise
    identical to one sequential scan over [0, n) — for {e every} shard
    count. *)

type range = { lo : int; hi : int }
(** A half-open column range [lo, hi). *)

val width : range -> int

val ranges : n:int -> shards:int -> range array
(** [ranges ~n ~shards] partitions [0, n) into at most [shards]
    contiguous ranges using the pool chunker's boundary formula
    (shard [c] owns [c·n/s, (c+1)·n/s)); the count is clamped to [n]
    so no range is empty (except the single range of [n = 0]). The
    concatenation of the ranges in order is exactly [0, n).
    @raise Invalid_argument on negative [n] or non-positive [shards]. *)

val tree_reduce : ('a -> 'a -> 'a) -> 'a array -> 'a
(** [tree_reduce f parts] combines [parts] with a balanced binary tree
    whose shape depends only on [Array.length parts]: adjacent pairs
    first, order preserved between levels, odd tails passed through.
    For associative [f] that keeps its left argument on ties this
    equals [Array.fold_left f parts.(0) (rest)] — the sequential merge.
    @raise Invalid_argument on an empty array. *)

val argmax_combine : int * float -> int * float -> int * float
(** The sweep's selection merge: keep the strictly larger magnitude,
    and on an exact tie the left candidate — the same column a
    sequential first-strictly-greater scan picks. *)

val merge_argmax : (int * float) array -> int * float
(** [merge_argmax parts] is [tree_reduce argmax_combine parts]: the
    global [(argmax, |corr|)] from per-shard local winners, bitwise
    equal to the sequential scan when the shards cover [0, n) in
    ascending order. *)
