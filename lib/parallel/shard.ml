(* Column-shard planning and deterministic merging for the sharded
   sweep engine. A shard plan partitions [0, n) into contiguous ranges
   using the same boundary arithmetic as the pool chunker, so a shard
   interior visits exactly the indices (in the same order) that the
   corresponding chunk of a sequential scan visits. Per-shard results
   are merged by a fixed-shape tree reduction: the tree is a pure
   function of the shard count, never of completion order, so a merge
   of exact, associative, left-biased combines (max, min, argmax with
   strict-greater tie-breaking) is bitwise identical to the sequential
   left-to-right scan at any shard count. *)

type range = { lo : int; hi : int }

let width r = r.hi - r.lo

let ranges ~n ~shards =
  if n < 0 then invalid_arg "Shard.ranges: negative length";
  if shards < 1 then invalid_arg "Shard.ranges: shard count must be positive";
  (* Same clamp and boundary formula as the pool's chunking: shard c of
     s owns [c·n/s, (c+1)·n/s). Never more shards than indices (one
     empty range survives only when n = 0, so a plan is never empty). *)
  let s = max 1 (min shards n) in
  Array.init s (fun c -> { lo = c * n / s; hi = (c + 1) * n / s })

(* Balanced binary reduction over the array in index order: adjacent
   pairs combine first, odd tails pass through unchanged, and the
   survivor order is preserved level to level. The shape depends only
   on the length. For an associative combine that keeps its left
   argument on ties, the result equals a left fold — and therefore the
   sequential scan — for every length. *)
let tree_reduce f arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Shard.tree_reduce: empty array";
  let rec go arr =
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else
      go
        (Array.init ((n + 1) / 2) (fun i ->
             if (2 * i) + 1 < n then f arr.(2 * i) arr.((2 * i) + 1)
             else arr.(2 * i)))
  in
  go arr

(* The argmax merge rule of the correlation sweep: strictly larger
   magnitude wins; on an exact tie the left (lower-shard, hence
   lower-index) candidate survives — the winner a sequential
   first-strictly-greater scan selects. Associative and left-biased,
   so any [tree_reduce] shape gives the sequential answer. *)
let argmax_combine (ja, ca) (jb, cb) = if cb > ca then (jb, cb) else (ja, ca)

let merge_argmax parts = tree_reduce argmax_combine parts
