(* A deliberately small domain pool: one FIFO of chunk tasks guarded by
   a mutex/condition pair, workers that loop pop-run, and a caller that
   enqueues, helps drain the queue, then blocks on a per-call latch.
   No work stealing: chunk boundaries are fixed up front, which is what
   makes the floating-point story of the numeric kernels auditable. *)

type t = {
  size : int;  (* total lanes, caller included *)
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let num_domains pool = pool.size

let default_override = ref None

let env_domains () =
  match Sys.getenv_opt "RSM_NUM_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_domains () =
  match !default_override with
  | Some n -> n
  | None -> (
      match env_domains () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: count must be positive";
  default_override := Some n

let worker pool () =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.work pool.mutex
    done;
    if Queue.is_empty pool.queue then begin
      (* closed and drained *)
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (* Tasks are wrapped by [run_chunks] and never raise. *)
      task ()
    end
  done

let create ?domains () =
  let n =
    match domains with Some d -> d | None -> default_domains ()
  in
  let n = max 1 (min n 128) in
  let pool =
    {
      size = n;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then Mutex.unlock pool.mutex
  else begin
    pool.closed <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [exec c] for every chunk [0 ≤ c < chunks]; all chunks complete
   even if some raise, and the lowest-indexed failure is re-raised —
   the same exception a sequential [for] loop would have surfaced. *)
let run_chunks pool ~chunks exec =
  if chunks = 1 || pool.size = 1 then
    for c = 0 to chunks - 1 do
      exec c
    done
  else begin
    let latch_mutex = Mutex.create () in
    let latch = Condition.create () in
    let remaining = ref chunks in
    let failure = ref None in
    let task c () =
      (try exec c
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock latch_mutex;
         (match !failure with
         | Some (c0, _, _) when c0 < c -> ()
         | _ -> failure := Some (c, e, bt));
         Mutex.unlock latch_mutex);
      Mutex.lock latch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast latch;
      Mutex.unlock latch_mutex
    in
    Mutex.lock pool.mutex;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool: submit to a shut-down pool"
    end;
    for c = 1 to chunks - 1 do
      Queue.push (task c) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* The caller is a lane too: run chunk 0, then help drain whatever
       is still queued (also keeps nested calls deadlock-free). *)
    task 0 ();
    let draining = ref true in
    while !draining do
      Mutex.lock pool.mutex;
      if Queue.is_empty pool.queue then begin
        Mutex.unlock pool.mutex;
        draining := false
      end
      else begin
        let t = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        t ()
      end
    done;
    Mutex.lock latch_mutex;
    while !remaining > 0 do
      Condition.wait latch latch_mutex
    done;
    Mutex.unlock latch_mutex;
    match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* Work-size cutoff: [grain] is the minimum index count per chunk. A
   range too small to fill every lane with at least one grain runs on
   fewer chunks — down to one, which [run_chunks] executes inline with
   zero queue traffic. Chunk-count changes never change result bits
   for the library's kernels (per-index disjoint writes, exact
   combines), so the cutoff is purely a scheduling decision. *)
let chunk_count pool ?chunks ?grain len =
  let c = match chunks with Some c -> max 1 c | None -> pool.size in
  let c =
    match grain with
    | Some g when g > 1 -> min c (max 1 (len / g))
    | _ -> c
  in
  min c len

let chunk_bounds ~lo ~len ~chunks c =
  (lo + (c * len / chunks), lo + ((c + 1) * len / chunks))

let parallel_for_chunks pool ?chunks ?grain ~lo ~hi body =
  let len = hi - lo in
  if len > 0 then begin
    let chunks = chunk_count pool ?chunks ?grain len in
    run_chunks pool ~chunks (fun c ->
        let clo, chi = chunk_bounds ~lo ~len ~chunks c in
        body ~lo:clo ~hi:chi)
  end

let parallel_for pool ?chunks ?grain ~lo ~hi body =
  parallel_for_chunks pool ?chunks ?grain ~lo ~hi (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)

let parallel_reduce pool ?chunks ?grain ~lo ~hi ~init ~fold ~combine =
  let len = hi - lo in
  if len <= 0 then init
  else begin
    let chunks = chunk_count pool ?chunks ?grain len in
    let partials = Array.make chunks init in
    run_chunks pool ~chunks (fun c ->
        let clo, chi = chunk_bounds ~lo ~len ~chunks c in
        partials.(c) <- fold ~lo:clo ~hi:chi);
    (* Chunk-order combine: the reduction tree is fixed by the chunking,
       not by completion order. *)
    Array.fold_left combine init partials
  end

(* Suggested [?grain] for a kernel whose per-index cost is [work]
   scalar operations: enough indices per chunk that a chunk amortizes
   its scheduling round-trip (~a few microseconds) over at least
   [grain_target] operations. *)
let grain_target = 65536

let grain_for ~work = max 1 (grain_target / max 1 work)

let the_default = ref None

let default () =
  let want = default_domains () in
  match !the_default with
  | Some pool when pool.size = want && not pool.closed -> pool
  | prev ->
      (match prev with Some pool -> shutdown pool | None -> ());
      let pool = create ~domains:want () in
      the_default := Some pool;
      pool
