(** Shared-memory domain pool for the fitting engine's data-parallel
    kernels.

    The pool owns [domains − 1] worker domains (the caller is the final
    lane) that drain a FIFO of chunk tasks. There is no work stealing
    and no atomics in the numeric kernels: every parallel operation
    splits its index range into {e fixed, contiguous chunks} computed
    from the range and the chunk count alone, so the floating-point
    evaluation order — and therefore the result bits — is a pure
    function of the inputs and the chunking, never of scheduling.

    {2 Determinism contract}

    - [parallel_for] / [parallel_for_chunks] perform pure maps over
      disjoint indices: results are bitwise identical to a sequential
      loop for {e every} domain count.
    - [parallel_reduce] combines the per-chunk partials sequentially in
      chunk-index order. For a fixed chunk count (by default the pool
      size) the result is bitwise reproducible; across different domain
      counts the partial boundaries move, so order-sensitive
      floating-point combines may drift within FP tolerance (the
      library's own reductions are max/argmax selections and
      whole-column dot products, which are exact and therefore bitwise
      identical across all domain counts — see PERFORMANCE.md).

    {2 Failure semantics}

    If a chunk body raises, the remaining chunks still run to
    completion, the exception of the {e lowest-indexed} failing chunk is
    re-raised in the caller (matching what a sequential loop would have
    raised first), and the pool stays fully usable — a failed
    [parallel_for] never wedges worker domains. *)

type t
(** A pool handle. Pools are cheap (one [Domain.spawn] per worker at
    creation, nothing per operation beyond closure allocation) but not
    free; create one per process or benchmark arm, not per call. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] total lanes
    ([domains − 1] workers plus the calling domain). Omitting [domains]
    uses {!default_domains}. The count is clamped to [1 … 128];
    [domains = 1] yields a pool whose operations run sequentially in the
    caller with no queue traffic. *)

val num_domains : t -> int
(** Total lane count of the pool (workers + caller). *)

val shutdown : t -> unit
(** Drain outstanding tasks, stop and join the workers. Idempotent.
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    also on exception. *)

val parallel_for :
  t -> ?chunks:int -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] applies [body i] for every
    [lo ≤ i < hi], split into [chunks] contiguous chunks (default: the
    pool size). Bodies must only write to disjoint locations per index.
    Empty ranges are a no-op; [chunks] is clamped to the range length.

    [grain] is the work-size cutoff: the minimum index count per chunk
    (default 1 — no cutoff). A range shorter than [2·grain] runs as a
    single chunk, inline in the caller with zero queue traffic, so
    tiny inputs never pay parallel dispatch overhead. The cutoff only
    changes scheduling, never result bits (see the determinism
    contract above). *)

val parallel_for_chunks :
  t ->
  ?chunks:int ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  (lo:int -> hi:int -> unit) ->
  unit
(** Chunk-granular variant: [body ~lo ~hi] receives one half-open
    sub-range per chunk. Use it when per-chunk setup (scratch buffers,
    Hermite tables) should be amortized over the chunk instead of paid
    per index. *)

val parallel_reduce :
  t ->
  ?chunks:int ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  init:'a ->
  fold:(lo:int -> hi:int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [parallel_reduce pool ~lo ~hi ~init ~fold ~combine] evaluates
    [fold ~lo ~hi] on every chunk concurrently and returns
    [combine (… (combine init p₀) …) p_{c−1}] — partials folded
    {e left-to-right in chunk order}, never in completion order. An
    empty range returns [init]. *)

val grain_for : work:int -> int
(** [grain_for ~work] is the suggested [?grain] for a kernel whose
    per-index cost is roughly [work] scalar operations: the index
    count whose chunk amortizes one scheduling round-trip over
    ~2{^16} operations. Kernels pass e.g. [~grain:(grain_for ~work:k)]
    for per-column dots over [k] rows. *)

val default_domains : unit -> int
(** Lane count used for pools created without [~domains] and for the
    shared {!default} pool: {!set_default_domains} override if set, else
    the [RSM_NUM_DOMAINS] environment variable (ignored unless a
    positive integer), else [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Process-wide override (the CLI/bench [--domains] flag). Takes
    precedence over [RSM_NUM_DOMAINS]. A live {!default} pool of a
    different size is shut down and recreated on the next {!default}
    call. @raise Invalid_argument if the count is not positive. *)

val default : unit -> t
(** The lazily created process-wide pool that every [?pool]-taking
    kernel falls back to. Call it from the main domain only. *)
