(** Streaming Monte-Carlo yield estimation over compiled tapes.

    The serving workload the paper motivates: once the response surface
    is analytic, parametric yield comes from 10⁷–10⁸ cheap model
    evaluations instead of transistor-level simulation. This module
    pulls that point stream through the domain pool in fixed-size
    batches without ever materializing the point set: each batch owns
    one reusable point buffer and one evaluator scratch, so peak memory
    is O(dim · lanes) however many samples flow.

    {2 Samplers}

    [?sampler] selects how the standard-normal points are drawn:

    - [Polar] (default): the historical sequential sampler. Batch [b]
      draws from child [b] of the caller's generator (children now
      derived on demand, not materialized — same bits as the original
      [Prng.split_n] scheme).
    - [Ziggurat]: the counter-mode engine. One key is drawn from the
      caller's generator ({!Randkit.Counter.of_prng}); every coordinate
      of every point is then a pure function of
      [(key, global point index, coordinate)]
      ({!Randkit.Ziggurat.normal_at}).

    [?project] (counter sampler only; default on with it) draws only
    the coordinates the tape actually reads ({!Eval.touched_vars})
    instead of all [dim] — the sparsity dividend of the paper's
    selection step applied to sampling. Because the counter addresses
    each coordinate independently, the projected estimate is {b bitwise
    equal} to the full-vector draw; the only change is that draw work
    scales with the support, not the ambient dimension.

    {2 Determinism contract}

    Per-batch partials (pass counts, value sums) are always combined
    sequentially in batch-index order after the parallel phase, so both
    samplers are {b bitwise identical at every domain count}:

    - [Polar] estimates depend only on [(seed, samples, batch)].
      Changing [batch] re-partitions the stream and is {e expected} to
      change the draws (record the batch size next to the seed).
    - [Ziggurat] draws depend only on [(seed, samples)] — the batch
      grid carries no randomness, so the value stream ({!values}),
      [yield], [std_error] and [pass] are additionally invariant to the
      batch size and to projection. The [mean]/[std] moments fold
      per-batch partial sums in batch order; for a {e fixed} batch they
      too are bitwise stable (and identical projected vs full), but
      changing the batch size regroups that floating-point summation
      and may move their last ulp.

    The two samplers consume different streams and agree statistically,
    never bitwise. The evaluator itself is bitwise equal to
    term-by-term [Rsm.Model.predict_point] (see {!Eval}); the ziggurat
    path additionally matches single-generator
    [Rsm.Yield.monte_carlo ~sampler:Ziggurat] bit for bit (same key
    derivation, same global point indices). *)

type estimate = {
  yield : float;  (** pass fraction against the spec window *)
  std_error : float;  (** binomial standard error √(y(1−y)/n) *)
  pass : int;  (** samples inside the spec window *)
  samples : int;
  mean : float;  (** mean of the model values *)
  std : float;  (** population standard deviation of the model values *)
  batches : int;
  batch : int;  (** batch size the stream was partitioned by *)
}

val default_batch : int
(** 8192 samples per batch: large enough to amortize per-batch setup,
    small enough that 10⁸ samples spread over thousands of pool
    tasks. *)

val estimate :
  ?pool:Parallel.Pool.t ->
  ?batch:int ->
  ?sampler:Randkit.Gaussian.sampler ->
  ?project:bool ->
  samples:int ->
  Eval.t ->
  Randkit.Prng.t ->
  Rsm.Yield.spec ->
  estimate
(** [estimate ~samples tape rng spec] streams [samples] standard-normal
    factor draws through the compiled tape and scores them against
    [spec]. Batches run over [pool] (default: sequential); the result
    is bitwise identical for every domain count. [?sampler] and
    [?project] as described above.
    @raise Invalid_argument when [samples ≤ 0], [batch ≤ 0], or
    [~project:true] is combined with the polar sampler. *)

val values :
  ?pool:Parallel.Pool.t ->
  ?batch:int ->
  ?sampler:Randkit.Gaussian.sampler ->
  ?project:bool ->
  samples:int ->
  Eval.t ->
  Randkit.Prng.t ->
  Linalg.Vec.t
(** [values ~samples tape rng] is the raw model-value stream (for
    histograms and quantiles), materialized — the streaming analogue of
    [Rsm.Yield.monte_carlo_values]. Entry [b·batch + s] is draw [s] of
    batch [b] (polar) or the value at global point [b·batch + s]
    (ziggurat), so the array is bitwise identical at every domain
    count.
    @raise Invalid_argument as in {!estimate}. *)
