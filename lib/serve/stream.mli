(** Streaming Monte-Carlo yield estimation over compiled tapes.

    The serving workload the paper motivates: once the response surface
    is analytic, parametric yield comes from 10⁷–10⁸ cheap model
    evaluations instead of transistor-level simulation. This module
    pulls that point stream through the domain pool in fixed-size
    batches without ever materializing the point set: each batch owns a
    child PRNG, one reusable point buffer and one evaluator scratch, so
    peak memory is O(batches + dim · lanes) however many samples flow.

    {2 Determinism contract}

    The batch structure {e is} the random-stream structure: batch [b]
    draws from child [b] of {!Randkit.Prng.split_n} on the caller's
    generator, and per-batch partials (pass counts, value sums) are
    combined sequentially in batch-index order after the parallel
    phase. Results are therefore {b bitwise identical at every domain
    count} — the same contract the fitting engine keeps (PRs 1–5) —
    and depend only on [(seed, samples, batch)]. Changing [batch]
    re-partitions the stream and is {e expected} to change the draws
    (document the batch size next to the seed when recording results).

    The evaluator itself is bitwise equal to term-by-term
    [Rsm.Model.predict_point] (see {!Eval}), so a streamed estimate at
    one domain equals the naive sequential estimate computed from the
    same per-batch draws. *)

type estimate = {
  yield : float;  (** pass fraction against the spec window *)
  std_error : float;  (** binomial standard error √(y(1−y)/n) *)
  pass : int;  (** samples inside the spec window *)
  samples : int;
  mean : float;  (** mean of the model values *)
  std : float;  (** population standard deviation of the model values *)
  batches : int;
  batch : int;  (** batch size the stream was partitioned by *)
}

val default_batch : int
(** 8192 samples per batch: large enough to amortize per-batch PRNG and
    scratch setup, small enough that 10⁸ samples spread over thousands
    of pool tasks. *)

val estimate :
  ?pool:Parallel.Pool.t ->
  ?batch:int ->
  samples:int ->
  Eval.t ->
  Randkit.Prng.t ->
  Rsm.Yield.spec ->
  estimate
(** [estimate ~samples tape rng spec] streams [samples] standard-normal
    factor draws through the compiled tape and scores them against
    [spec]. Batches run over [pool] (default: sequential); the result is
    bitwise identical for every domain count.
    @raise Invalid_argument when [samples ≤ 0] or [batch ≤ 0]. *)

val values :
  ?pool:Parallel.Pool.t ->
  ?batch:int ->
  samples:int ->
  Eval.t ->
  Randkit.Prng.t ->
  Linalg.Vec.t
(** [values ~samples tape rng] is the raw model-value stream (for
    histograms and quantiles), materialized — the streaming analogue of
    [Rsm.Yield.monte_carlo_values]. Entry [b·batch + s] is draw [s] of
    batch [b]'s child generator, so the array is bitwise identical at
    every domain count.
    @raise Invalid_argument when [samples ≤ 0] or [batch ≤ 0]. *)
