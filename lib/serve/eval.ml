(* Instruction-tape compilation of a sparse model.

   The tape is four flat arrays. Per touched variable (a "slot", sorted
   by variable index so compilation is deterministic): the variable, the
   max Hermite degree any support term needs of it, and the offset of
   its degree-0 value in one flat value buffer. Per support term (kept
   in Model support order): its coefficient and a [term_start] range of
   pre-resolved absolute offsets into that buffer.

   Bitwise contract: evaluation preserves exactly the arithmetic of
   [Rsm.Model.predict_point] — the same Hermite recurrence
   ([Hermite.eval_all_into], which [Term.eval] also runs one factor at a
   time), the same left-to-right factor product starting from 1.0, and
   the same support-order accumulation starting from 0.0. The batch
   kernel re-blocks the memory layout, never the per-point operation
   sequence. *)

type t = {
  basis_size : int;
  dim : int;
  var_of_slot : int array;  (* touched variables, ascending *)
  slot_deg : int array;  (* max degree needed per slot *)
  slot_offset : int array;  (* degree-0 offset of each slot in the buffer *)
  buf_len : int;  (* Σ (slot_deg + 1) *)
  coeffs : float array;  (* per term, support order *)
  term_start : int array;  (* nnz + 1 offsets into factor_ofs *)
  factor_ofs : int array;  (* absolute buffer offsets, term-factor order *)
  scratch0 : float array;  (* internal scalar scratch: NOT thread-safe *)
}

type scratch = float array

let compile model basis =
  if Polybasis.Basis.size basis <> model.Rsm.Model.basis_size then
    invalid_arg "Serve.Eval.compile: basis size disagrees with model";
  let support = model.Rsm.Model.support in
  let nnz = Array.length support in
  let terms = Array.map (Polybasis.Basis.term basis) support in
  (* Pass 1: per-variable max degree over the whole support. *)
  let deg_tbl = Hashtbl.create 16 in
  Array.iter
    (fun term ->
      Array.iter
        (fun (v, d) ->
          let cur = try Hashtbl.find deg_tbl v with Not_found -> 0 in
          if d > cur then Hashtbl.replace deg_tbl v d)
        term)
    terms;
  let var_of_slot =
    Hashtbl.fold (fun v _ acc -> v :: acc) deg_tbl []
    |> List.sort compare |> Array.of_list
  in
  let nvars = Array.length var_of_slot in
  let slot_deg = Array.map (fun v -> Hashtbl.find deg_tbl v) var_of_slot in
  let slot_offset = Array.make nvars 0 in
  let off = ref 0 in
  Array.iteri
    (fun s d ->
      slot_offset.(s) <- !off;
      off := !off + d + 1)
    slot_deg;
  let buf_len = !off in
  let slot_of_var = Hashtbl.create (max 1 nvars) in
  Array.iteri (fun s v -> Hashtbl.replace slot_of_var v s) var_of_slot;
  (* Pass 2: resolve every factor to an absolute buffer offset. *)
  let nfactors =
    Array.fold_left (fun acc term -> acc + Array.length term) 0 terms
  in
  let term_start = Array.make (nnz + 1) 0 in
  let factor_ofs = Array.make nfactors 0 in
  let fi = ref 0 in
  Array.iteri
    (fun p term ->
      term_start.(p) <- !fi;
      Array.iter
        (fun (v, d) ->
          factor_ofs.(!fi) <- slot_offset.(Hashtbl.find slot_of_var v) + d;
          incr fi)
        term)
    terms;
  term_start.(nnz) <- !fi;
  {
    basis_size = model.Rsm.Model.basis_size;
    dim = Polybasis.Basis.dim basis;
    var_of_slot;
    slot_deg;
    slot_offset;
    buf_len;
    coeffs = Array.copy model.Rsm.Model.coeffs;
    term_start;
    factor_ofs;
    scratch0 = Array.make buf_len 0.;
  }

let basis_size t = t.basis_size
let dim t = t.dim
let nnz t = Array.length t.coeffs
let tape_length t = Array.length t.factor_ofs
let vars_touched t = Array.length t.var_of_slot
let touched_vars t = Array.copy t.var_of_slot

let max_degree t = Array.fold_left max 0 t.slot_deg

let make_scratch t = Array.make t.buf_len 0.

let check_point t dy =
  if Array.length dy <> t.dim then
    invalid_arg "Serve.Eval: point dimension disagrees with the basis"

(* One Hermite recurrence per touched variable, to its max needed
   degree; every term then reads shared values. *)
let fill t scratch dy =
  for s = 0 to Array.length t.var_of_slot - 1 do
    Polybasis.Hermite.eval_all_into scratch ~pos:t.slot_offset.(s)
      ~deg:t.slot_deg.(s)
      dy.(t.var_of_slot.(s))
  done

let eval_with t scratch dy =
  check_point t dy;
  fill t scratch dy;
  let acc = ref 0. in
  for p = 0 to Array.length t.coeffs - 1 do
    let f1 = Array.unsafe_get t.term_start (p + 1) in
    let prod = ref 1. in
    for f = Array.unsafe_get t.term_start p to f1 - 1 do
      prod :=
        !prod *. Array.unsafe_get scratch (Array.unsafe_get t.factor_ofs f)
    done;
    acc := !acc +. (Array.unsafe_get t.coeffs p *. !prod)
  done;
  !acc

let eval_point t dy = eval_with t t.scratch0 dy

let evaluator t = eval_point t

let default_block = 256

(* Batch kernel: Hermite values for a block of [n] points live
   point-contiguous per buffer offset — value [o] of point [i] at
   [hbuf.(o·block + i)] — so each factor's multiply streams [n] adjacent
   floats. The per-point operation sequence (recurrence, 1·h₀ product
   seed, left-to-right factors, support-order accumulation) is exactly
   the scalar path's, so results are bitwise equal to [eval_point]
   whatever the blocking. *)
let eval_block t ~hbuf ~prod ~block ~points ~out ~lo ~n =
  let nvars = Array.length t.var_of_slot in
  for i = 0 to n - 1 do
    let dy = points.(lo + i) in
    check_point t dy;
    for s = 0 to nvars - 1 do
      let y = Array.unsafe_get dy (Array.unsafe_get t.var_of_slot s) in
      let base = (Array.unsafe_get t.slot_offset s * block) + i in
      Array.unsafe_set hbuf base 1.;
      let deg = Array.unsafe_get t.slot_deg s in
      if deg >= 1 then Array.unsafe_set hbuf (base + block) y;
      for k = 1 to deg - 1 do
        let fk = float_of_int k in
        Array.unsafe_set hbuf
          (base + ((k + 1) * block))
          (((y *. Array.unsafe_get hbuf (base + (k * block)))
           -. (sqrt fk *. Array.unsafe_get hbuf (base + ((k - 1) * block))))
          /. sqrt (fk +. 1.))
      done
    done
  done;
  for p = 0 to Array.length t.coeffs - 1 do
    let f0 = Array.unsafe_get t.term_start p in
    let f1 = Array.unsafe_get t.term_start (p + 1) in
    if f0 = f1 then Array.fill prod 0 n 1.
    else begin
      let o = Array.unsafe_get t.factor_ofs f0 * block in
      for i = 0 to n - 1 do
        Array.unsafe_set prod i (1. *. Array.unsafe_get hbuf (o + i))
      done;
      for f = f0 + 1 to f1 - 1 do
        let o = Array.unsafe_get t.factor_ofs f * block in
        for i = 0 to n - 1 do
          Array.unsafe_set prod i
            (Array.unsafe_get prod i *. Array.unsafe_get hbuf (o + i))
        done
      done
    end;
    let c = Array.unsafe_get t.coeffs p in
    for i = 0 to n - 1 do
      Array.unsafe_set out (lo + i)
        (Array.unsafe_get out (lo + i) +. (c *. Array.unsafe_get prod i))
    done
  done

let eval_batch ?pool ?(block = default_block) t points =
  if block <= 0 then invalid_arg "Serve.Eval.eval_batch: block must be positive";
  let k = Array.length points in
  let out = Array.make k 0. in
  let body ~lo ~hi =
    (* Per-chunk buffers: chunks run concurrently and share nothing. *)
    let hbuf = Array.make (max 1 (t.buf_len * block)) 0. in
    let prod = Array.make block 0. in
    let i = ref lo in
    while !i < hi do
      let n = min block (hi - !i) in
      eval_block t ~hbuf ~prod ~block ~points ~out ~lo:!i ~n;
      i := !i + n
    done
  in
  (match pool with
  | Some pool -> Parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:k body
  | None -> if k > 0 then body ~lo:0 ~hi:k);
  out
