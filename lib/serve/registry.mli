(** Multi-model registry: an LRU of compiled evaluator tapes keyed by
    content digest.

    One LAR fit yields a whole family of candidate models — the path's
    sparsity/accuracy trade-offs — and a serving process flips between
    them (plus models of other metrics of the same circuit) far more
    often than it refits. The registry amortizes tape compilation: a
    model file is digested (FNV-1a 64 over its bytes,
    {!Rsm.Serialize.digest_string}), looked up, and only compiled on a
    miss; the least-recently-used tape is evicted when the registry is
    full.

    The digest keys the {e content}, not the path: re-serving the same
    bytes from a different file hits, and a file whose bytes changed
    under a stable path misses and recompiles — a stale tape is never
    served. Callers that pin an expected digest ([?expect]) get
    {e digest-mismatch rejection}: a swapped or corrupted model file is
    refused instead of silently compiled and served.

    All models in one registry share one basis (one dictionary), fixed
    at {!create}; a model whose [basis_size] disagrees is rejected as an
    [Error], never compiled.

    Not thread-safe: serve from one domain, or shard registries. *)

type entry = {
  digest : int64;  (** content digest of the serialized model *)
  model : Rsm.Model.t;  (** parsed model, with its {!Rsm.Model.notes} *)
  tape : Eval.t;  (** compiled evaluator *)
}
(** A resident compiled model. [model.notes] carry fit provenance
    (fallback rungs, per-term significance annotations) through to the
    served artifact. *)

type stats = {
  hits : int;  (** lookups served from a resident tape *)
  misses : int;
      (** lookups that parsed, compiled and inserted a new tape — only
          successful compilations count *)
  evictions : int;  (** tapes dropped by the LRU policy *)
  rejected : int;
      (** failed {!load}s: unreadable files, digest-mismatch rejections,
          parse failures and basis-size disagreements. A rejection is
          counted here, never as a miss, and leaves the registry
          untouched — nothing is inserted. *)
}

type t

val create : ?capacity:int -> Polybasis.Basis.t -> t
(** [create ~capacity basis] is an empty registry holding at most
    [capacity] compiled tapes (default 8) over the shared dictionary
    [basis].
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val size : t -> int
(** Resident tape count, ≤ {!capacity}. *)

val stats : t -> stats

val basis : t -> Polybasis.Basis.t

val mem : t -> int64 -> bool
(** [mem t digest] is [true] when a tape with this digest is resident.
    Does not touch recency and counts no hit. *)

val find : t -> int64 -> entry option
(** [find t digest] returns the resident entry and marks it
    most-recently-used (counted as a hit), or [None] (not counted as a
    miss — nothing was compiled). *)

val of_model : t -> Rsm.Model.t -> entry
(** [of_model t m] serves an in-memory model through the registry: its
    serialized-content digest is looked up, and the tape is compiled and
    inserted on a miss (evicting the LRU entry if full).
    @raise Invalid_argument when the model's [basis_size] disagrees with
    the registry basis. *)

val load : ?expect:int64 -> t -> string -> (entry, string) result
(** [load t path] reads the model file at [path], digests its bytes,
    and serves it from the registry — parsing and compiling only on a
    miss. With [~expect:d], a file whose digest is not [d] is rejected
    with [Error] before any parse (digest-mismatch rejection). IO
    failures, parse failures and basis-size disagreements are all
    reported as [Error]; every such failure counts in [stats.rejected]
    (not as a miss) and is rejected {e before} insertion — the registry
    contents and recency order are exactly as if the call never
    happened. *)
