(* Streaming MC yield: fixed-size batches, one PRNG child per batch,
   per-batch partials combined sequentially in batch order. The batch
   grid — not the chunk grid — carries the random streams, so results
   are bitwise identical at every domain count. *)

type estimate = {
  yield : float;
  std_error : float;
  pass : int;
  samples : int;
  mean : float;
  std : float;
  batches : int;
  batch : int;
}

let default_batch = 8192

let check_args ~samples ~batch ~name =
  if samples <= 0 then invalid_arg (name ^ ": samples must be positive");
  if batch <= 0 then invalid_arg (name ^ ": batch must be positive")

(* Run [body b rng scratch dy ~lo ~n] for every batch [b] over the pool
   (or sequentially without one). [lo] is the batch's global sample
   offset and [n] its size (the last batch may be short). Each pool
   chunk owns one scratch and one point buffer, reused across its
   batches; batch [b] always draws from child [b]. *)
let over_batches ?pool ~batch ~samples t rng body =
  let nbatches = (samples + batch - 1) / batch in
  let rngs = Randkit.Prng.split_n rng nbatches in
  let chunk_body ~lo:b0 ~hi:b1 =
    let scratch = Eval.make_scratch t in
    let dy = Array.make (Eval.dim t) 0. in
    for b = b0 to b1 - 1 do
      let lo = b * batch in
      let n = min batch (samples - lo) in
      body b rngs.(b) scratch dy ~lo ~n
    done
  in
  (match pool with
  | Some pool -> Parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:nbatches chunk_body
  | None -> chunk_body ~lo:0 ~hi:nbatches);
  nbatches

let estimate ?pool ?(batch = default_batch) ~samples t rng spec =
  check_args ~samples ~batch ~name:"Serve.Stream.estimate";
  (* Per-batch partial accumulators, slotted by batch index so the
     final combine is sequential in batch order regardless of which
     domain produced which partial. *)
  let nbatches0 = (samples + batch - 1) / batch in
  let pass_of = Array.make nbatches0 0 in
  let sum_of = Array.make nbatches0 0. in
  let sumsq_of = Array.make nbatches0 0. in
  let nbatches =
    over_batches ?pool ~batch ~samples t rng (fun b brng scratch dy ~lo:_ ~n ->
        let pass = ref 0 in
        let sum = ref 0. in
        let sumsq = ref 0. in
        for _ = 1 to n do
          Randkit.Gaussian.fill brng dy;
          let v = Eval.eval_with t scratch dy in
          if Rsm.Yield.passes spec v then incr pass;
          sum := !sum +. v;
          sumsq := !sumsq +. (v *. v)
        done;
        pass_of.(b) <- !pass;
        sum_of.(b) <- !sum;
        sumsq_of.(b) <- !sumsq)
  in
  let pass = ref 0 and sum = ref 0. and sumsq = ref 0. in
  for b = 0 to nbatches - 1 do
    pass := !pass + pass_of.(b);
    sum := !sum +. sum_of.(b);
    sumsq := !sumsq +. sumsq_of.(b)
  done;
  let nf = float_of_int samples in
  let yield = float_of_int !pass /. nf in
  let mean = !sum /. nf in
  let std = sqrt (Float.max ((!sumsq /. nf) -. (mean *. mean)) 0.) in
  let std_error = sqrt (Float.max (yield *. (1. -. yield)) 0. /. nf) in
  {
    yield;
    std_error;
    pass = !pass;
    samples;
    mean;
    std;
    batches = nbatches;
    batch;
  }

let values ?pool ?(batch = default_batch) ~samples t rng =
  check_args ~samples ~batch ~name:"Serve.Stream.values";
  let out = Array.make samples 0. in
  let (_ : int) =
    over_batches ?pool ~batch ~samples t rng (fun _ brng scratch dy ~lo ~n ->
        for s = 0 to n - 1 do
          Randkit.Gaussian.fill brng dy;
          out.(lo + s) <- Eval.eval_with t scratch dy
        done)
  in
  out
