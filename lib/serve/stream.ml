(* Streaming MC yield: fixed-size batches, per-batch partials combined
   sequentially in batch order. The batch grid — not the chunk grid —
   carries the random streams for the sequential polar sampler, so
   results are bitwise identical at every domain count. The
   counter-mode ziggurat sampler goes further: every draw is addressed
   by (key, global point index, coordinate), so its results are also
   invariant to the batch size, and projecting the draws onto the
   tape's touched variables changes no result bit. *)

type estimate = {
  yield : float;
  std_error : float;
  pass : int;
  samples : int;
  mean : float;
  std : float;
  batches : int;
  batch : int;
}

let default_batch = 8192

let check_args ~samples ~batch ~name =
  if samples <= 0 then invalid_arg (name ^ ": samples must be positive");
  if batch <= 0 then invalid_arg (name ^ ": batch must be positive")

(* Projection requires the counter-mode sampler: the sequential polar
   stream cannot skip a coordinate without shifting every later draw's
   bits. Default: project exactly when the sampler supports it (the
   projected estimate is bitwise equal to the full draw, so there is
   nothing to lose). *)
let resolve_project ~sampler ~project ~name =
  match (project, (sampler : Randkit.Gaussian.sampler)) with
  | None, s -> s = Randkit.Gaussian.Ziggurat
  | Some false, _ -> false
  | Some true, Randkit.Gaussian.Ziggurat -> true
  | Some true, Randkit.Gaussian.Polar ->
      invalid_arg
        (name ^ ": ~project:true requires the ziggurat (counter) sampler")

(* How a batch body fills the point buffer. [Seq] consumes the batch's
   child generator in order; [Ctr] addresses each coordinate of global
   point [lo + s] directly, optionally restricted to the tape's
   touched variables (the untouched entries of [dy] stay 0 and are
   never read by the tape). *)
type filler =
  | Seq
  | Ctr of Randkit.Counter.t * int array option

let filler_of ~sampler ~project t rng =
  match (sampler : Randkit.Gaussian.sampler) with
  | Polar -> Seq
  | Ziggurat ->
      let key = Randkit.Counter.of_prng rng in
      Ctr (key, if project then Some (Eval.touched_vars t) else None)

let draw_point filler brng dy ~point =
  match filler with
  | Seq -> Randkit.Gaussian.fill brng dy
  | Ctr (key, proj) -> (
      let pk = Randkit.Counter.at key point in
      match proj with
      | Some vars ->
          for s = 0 to Array.length vars - 1 do
            let c = Array.unsafe_get vars s in
            dy.(c) <- Randkit.Ziggurat.normal_at pk ~coord:c
          done
      | None ->
          for c = 0 to Array.length dy - 1 do
            dy.(c) <- Randkit.Ziggurat.normal_at pk ~coord:c
          done)

(* Run [body b rng scratch dy ~lo ~n] for every batch [b] over the pool
   (or sequentially without one). [lo] is the batch's global sample
   offset and [n] its size (the last batch may be short). Batch [b]
   always receives child [b] of the caller's generator.

   Children are derived on demand: materializing [Prng.split_n rng
   nbatches] up front costs O(batches) generator states — against the
   O(1)-memory streaming claim at 10⁸ samples. Instead each pool chunk
   replays the parent stream up to its first batch ([split] consumes
   exactly one parent output per child, so skipping [b0] outputs lands
   on child [b0]) and then splits sequentially — bit-identical children
   to [split_n], while the caller's generator advances exactly as
   before (one output per batch). *)
let over_batches ?pool ~batch ~samples t rng body =
  let nbatches = (samples + batch - 1) / batch in
  let root = Randkit.Prng.copy rng in
  for _ = 1 to nbatches do
    ignore (Randkit.Prng.bits64 rng)
  done;
  let chunk_body ~lo:b0 ~hi:b1 =
    let parent = Randkit.Prng.copy root in
    for _ = 1 to b0 do
      ignore (Randkit.Prng.bits64 parent)
    done;
    let scratch = Eval.make_scratch t in
    let dy = Array.make (Eval.dim t) 0. in
    for b = b0 to b1 - 1 do
      let brng = Randkit.Prng.split parent in
      let lo = b * batch in
      let n = min batch (samples - lo) in
      body b brng scratch dy ~lo ~n
    done
  in
  (match pool with
  | Some pool -> Parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:nbatches chunk_body
  | None -> chunk_body ~lo:0 ~hi:nbatches);
  nbatches

let estimate ?pool ?(batch = default_batch)
    ?(sampler = Randkit.Gaussian.Polar) ?project ~samples t rng spec =
  check_args ~samples ~batch ~name:"Serve.Stream.estimate";
  let project =
    resolve_project ~sampler ~project ~name:"Serve.Stream.estimate"
  in
  let filler = filler_of ~sampler ~project t rng in
  (* Per-batch partial accumulators, slotted by batch index so the
     final combine is sequential in batch order regardless of which
     domain produced which partial. *)
  let nbatches0 = (samples + batch - 1) / batch in
  let pass_of = Array.make nbatches0 0 in
  let sum_of = Array.make nbatches0 0. in
  let sumsq_of = Array.make nbatches0 0. in
  let nbatches =
    over_batches ?pool ~batch ~samples t rng (fun b brng scratch dy ~lo ~n ->
        let pass = ref 0 in
        let sum = ref 0. in
        let sumsq = ref 0. in
        for s = 0 to n - 1 do
          draw_point filler brng dy ~point:(lo + s);
          let v = Eval.eval_with t scratch dy in
          if Rsm.Yield.passes spec v then incr pass;
          sum := !sum +. v;
          sumsq := !sumsq +. (v *. v)
        done;
        pass_of.(b) <- !pass;
        sum_of.(b) <- !sum;
        sumsq_of.(b) <- !sumsq)
  in
  let pass = ref 0 and sum = ref 0. and sumsq = ref 0. in
  for b = 0 to nbatches - 1 do
    pass := !pass + pass_of.(b);
    sum := !sum +. sum_of.(b);
    sumsq := !sumsq +. sumsq_of.(b)
  done;
  let nf = float_of_int samples in
  let yield = float_of_int !pass /. nf in
  let mean = !sum /. nf in
  let std = sqrt (Float.max ((!sumsq /. nf) -. (mean *. mean)) 0.) in
  let std_error = sqrt (Float.max (yield *. (1. -. yield)) 0. /. nf) in
  {
    yield;
    std_error;
    pass = !pass;
    samples;
    mean;
    std;
    batches = nbatches;
    batch;
  }

let values ?pool ?(batch = default_batch)
    ?(sampler = Randkit.Gaussian.Polar) ?project ~samples t rng =
  check_args ~samples ~batch ~name:"Serve.Stream.values";
  let project =
    resolve_project ~sampler ~project ~name:"Serve.Stream.values"
  in
  let filler = filler_of ~sampler ~project t rng in
  let out = Array.make samples 0. in
  let (_ : int) =
    over_batches ?pool ~batch ~samples t rng (fun _ brng scratch dy ~lo ~n ->
        for s = 0 to n - 1 do
          draw_point filler brng dy ~point:(lo + s);
          out.(lo + s) <- Eval.eval_with t scratch dy
        done)
  in
  out
