(** Compiled sparse-model evaluators: flat instruction tapes.

    The paper's end product is not the fit — it is a sparse model that
    gets {e evaluated} millions of times for parametric-yield estimation
    and corner sweeps. [Rsm.Model.predict_point] walks the support
    term-by-term and re-runs the 1-D Hermite recurrence for every factor
    of every term: a variable shared by ten terms pays for its
    polynomial values ten times per point, plus a bounds check and a
    closure call per term. This module compiles a fitted model once into
    a flat {e instruction tape} that removes all of that from the inner
    loop:

    - {b per-variable max-degree tables}: compilation scans the support
      and records, for each variable the model actually touches, the
      largest Hermite degree any term needs. Per point, the three-term
      recurrence runs {e once per touched variable} (to exactly that
      degree) into one flat value buffer — terms then share the values.
    - {b absolute-offset factor tape}: every term is three flat arrays —
      a coefficient, a factor range, and pre-resolved offsets into the
      value buffer. Evaluation is pure float loads and multiplies; no
      [Term.t] traversal, no bounds checks, no allocation.
    - {b batch-of-points layout}: {!eval_batch} processes points in
      fixed blocks with the Hermite values of a whole block laid out
      point-contiguous per (variable, degree) slot, so the per-factor
      inner loop streams cache-line-adjacent floats. Blocks chunk over a
      {!Parallel.Pool.t}.

    {2 Determinism contract}

    Compiled evaluation is {b bitwise equal} to
    [Rsm.Model.predict_point] for every model, basis and point: the tape
    preserves the support order, the factor order within each term, and
    the Hermite recurrence arithmetic exactly ({!Polybasis.Hermite.eval_all_into}
    is the same recurrence [predict_point] runs through [Term.eval]).
    {!eval_batch} assigns disjoint output indices to pool chunks, so it
    is bitwise identical to the sequential loop at every domain count.
    See SERVING.md for the full contract. *)

type t
(** A compiled evaluator tape. Immutable after compilation except for an
    internal scalar scratch buffer — {!eval_point} is therefore {e not}
    thread-safe; concurrent evaluators must use {!eval_with} with their
    own {!scratch}, which is what {!eval_batch} does internally. *)

val compile : Rsm.Model.t -> Polybasis.Basis.t -> t
(** [compile model basis] builds the tape: one pass over the support to
    collect per-variable max degrees, one to resolve factor offsets.
    O(nnz · factors) time, O(touched variables + tape length) space —
    independent of the dictionary size [M].
    @raise Invalid_argument when [Basis.size basis] disagrees with the
    model's [basis_size]. *)

val basis_size : t -> int
(** Dictionary size [M] the model was fitted against. *)

val dim : t -> int
(** Factor-space dimension [N]; the length every evaluated point must
    have. *)

val nnz : t -> int
(** Number of support terms on the tape. *)

val tape_length : t -> int
(** Total factor-instruction count (sum of factors over all terms) —
    the work per point after table fill. *)

val vars_touched : t -> int
(** Number of distinct variables the support touches — the number of
    Hermite recurrences run per point. *)

val touched_vars : t -> int array
(** The distinct variables the support touches, ascending — exactly
    the coordinates {!eval_with} reads from an evaluated point
    (returned as a fresh copy). Support-projected sampling
    ({!Stream} with the counter sampler) draws only these. *)

val max_degree : t -> int
(** Largest Hermite degree on the tape (0 for constant-only or empty
    models). *)

type scratch
(** Per-evaluator working memory for the scalar path: the flat Hermite
    value buffer. One per concurrent consumer. *)

val make_scratch : t -> scratch

val eval_with : t -> scratch -> Linalg.Vec.t -> float
(** [eval_with t s dy] evaluates the model at [dy] through the tape,
    using [s] as working memory — bitwise equal to
    [Rsm.Model.predict_point model basis dy].
    @raise Invalid_argument when [dy] has length ≠ {!dim}. *)

val eval_point : t -> Linalg.Vec.t -> float
(** {!eval_with} on the tape's internal scratch. Convenient and
    allocation-free, but not thread-safe — never call it from pool
    chunks. *)

val evaluator : t -> Linalg.Vec.t -> float
(** [evaluator t] is [eval_point t] as a closure, shaped to drop into
    [Rsm.Yield.monte_carlo ~eval] as the compiled fast path. The closure
    shares the tape's internal scratch: single-threaded use only. *)

val eval_batch :
  ?pool:Parallel.Pool.t -> ?block:int -> t -> Linalg.Vec.t array -> Linalg.Vec.t
(** [eval_batch t pts] evaluates every point, blocked [block] points at
    a time (default {!default_block}) through the point-contiguous
    batch layout, chunked over [pool] (default: sequential in the
    caller). Each chunk owns its block buffers and writes a disjoint
    slice of the result, so the output is bitwise equal to
    [Array.map (eval_point t) pts] for every [pool], [block] and domain
    count.
    @raise Invalid_argument on a point of length ≠ {!dim} or
    non-positive [block]. *)

val default_block : int
(** Points per block in {!eval_batch} (256 — a few KB of block buffers
    even for high-degree tapes). *)
