(* LRU of compiled tapes, keyed by content digest. Capacities are small
   (a handful of models per served circuit), so the recency list is a
   plain list — no intrusive queue needed. *)

type entry = { digest : int64; model : Rsm.Model.t; tape : Eval.t }

type stats = { hits : int; misses : int; evictions : int }

type t = {
  basis : Polybasis.Basis.t;
  capacity : int;
  mutable entries : entry list;  (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 8) basis =
  if capacity < 1 then
    invalid_arg "Serve.Registry.create: capacity must be positive";
  { basis; capacity; entries = []; hits = 0; misses = 0; evictions = 0 }

let capacity t = t.capacity
let size t = List.length t.entries
let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
let basis t = t.basis

let mem t digest = List.exists (fun e -> e.digest = digest) t.entries

(* Move a resident entry to the front, or None. *)
let touch t digest =
  match List.partition (fun e -> e.digest = digest) t.entries with
  | [ e ], rest ->
      t.entries <- e :: rest;
      Some e
  | _ -> None

let find t digest =
  match touch t digest with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

(* Insert at the front; drop the back once over capacity. *)
let insert t entry =
  t.entries <- entry :: t.entries;
  if List.length t.entries > t.capacity then begin
    let keep = List.filteri (fun i _ -> i < t.capacity) t.entries in
    t.entries <- keep;
    t.evictions <- t.evictions + 1
  end

let compile_entry t digest model =
  let tape = Eval.compile model t.basis in
  let entry = { digest; model; tape } in
  t.misses <- t.misses + 1;
  insert t entry;
  entry

let of_model t model =
  let digest = Rsm.Serialize.digest model in
  match touch t digest with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None -> compile_entry t digest model

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))

let load ?expect t path =
  match read_file path with
  | Error e -> Error e
  | Ok bytes -> (
      let digest = Rsm.Serialize.digest_string bytes in
      match expect with
      | Some d when d <> digest ->
          Error
            (Printf.sprintf
               "digest mismatch for %s: expected %Lx, file content is %Lx" path
               d digest)
      | _ -> (
          match touch t digest with
          | Some e ->
              t.hits <- t.hits + 1;
              Ok e
          | None -> (
              match Rsm.Serialize.of_string bytes with
              | Error e -> Error (path ^ ": " ^ e)
              | Ok model -> (
                  match compile_entry t digest model with
                  | e -> Ok e
                  | exception Invalid_argument msg -> Error msg))))
