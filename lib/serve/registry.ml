(* LRU of compiled tapes, keyed by content digest. Capacities are small
   (a handful of models per served circuit), so the recency list is a
   plain list — no intrusive queue needed. *)

type entry = { digest : int64; model : Rsm.Model.t; tape : Eval.t }

type stats = { hits : int; misses : int; evictions : int; rejected : int }

type t = {
  basis : Polybasis.Basis.t;
  capacity : int;
  mutable entries : entry list;  (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable rejected : int;
}

let create ?(capacity = 8) basis =
  if capacity < 1 then
    invalid_arg "Serve.Registry.create: capacity must be positive";
  {
    basis;
    capacity;
    entries = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    rejected = 0;
  }

let capacity t = t.capacity
let size t = List.length t.entries

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    rejected = t.rejected;
  }
let basis t = t.basis

let mem t digest = List.exists (fun e -> e.digest = digest) t.entries

(* Move a resident entry to the front, or None. *)
let touch t digest =
  match List.partition (fun e -> e.digest = digest) t.entries with
  | [ e ], rest ->
      t.entries <- e :: rest;
      Some e
  | _ -> None

let find t digest =
  match touch t digest with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

(* Insert at the front; drop the back once over capacity. *)
let insert t entry =
  t.entries <- entry :: t.entries;
  if List.length t.entries > t.capacity then begin
    let keep = List.filteri (fun i _ -> i < t.capacity) t.entries in
    t.entries <- keep;
    t.evictions <- t.evictions + 1
  end

(* Compile fully before touching the registry: a failed compile must not
   count as a miss or leave a partially-constructed entry resident. *)
let compile_entry t digest model =
  let tape = Eval.compile model t.basis in
  let entry = { digest; model; tape } in
  t.misses <- t.misses + 1;
  insert t entry;
  entry

let of_model t model =
  let digest = Rsm.Serialize.digest model in
  match touch t digest with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None -> compile_entry t digest model

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))

(* Every failed load is a rejection: counted in [rejected] (never as a
   miss — nothing was compiled into residence) and guaranteed to leave
   the registry untouched. The digest check runs before any parse or
   compile, so a pinned mismatch is refused without reading the model. *)
let load ?expect t path =
  let reject msg =
    t.rejected <- t.rejected + 1;
    Error msg
  in
  match read_file path with
  | Error e -> reject e
  | Ok bytes -> (
      let digest = Rsm.Serialize.digest_string bytes in
      match expect with
      | Some d when d <> digest ->
          reject
            (Printf.sprintf
               "digest mismatch for %s: expected %Lx, file content is %Lx" path
               d digest)
      | _ -> (
          match touch t digest with
          | Some e ->
              t.hits <- t.hits + 1;
              Ok e
          | None -> (
              match Rsm.Serialize.of_string bytes with
              | Error e -> reject (path ^ ": " ^ e)
              | Ok model -> (
                  (* Compile outside the registry, then insert: a
                     basis-size disagreement is rejected before
                     insertion, so no partially-constructed tape can sit
                     resident until the next eviction sweep. *)
                  match Eval.compile model t.basis with
                  | exception Invalid_argument msg -> reject msg
                  | tape ->
                      let entry = { digest; model; tape } in
                      t.misses <- t.misses + 1;
                      insert t entry;
                      Ok entry))))
