(** Two-stage Miller-compensated operational amplifier (Fig. 3 of the
    paper), evaluated analytically from square-law device equations.

    The circuit: NMOS input differential pair (M1/M2) with PMOS
    current-mirror load (M3/M4), NMOS tail source (M5), PMOS
    common-source second stage (M6) with NMOS current sink (M7), and an
    on-chip resistor-referenced bias generator (M8 + R_bias + mirror
    devices M9–M11). Miller capacitor C_c, load C_L.

    Variation space: with the default spec — 20 correlated inter-die
    parameters (PCA → 20 independent factors), 12 transistors × 5
    mismatch variables, and 550 layout parasitics — the independent
    factor dimension is exactly {b 630}, matching Section V-A of the
    paper. Performance sensitivities are physically structured: offset
    is dominated by input-pair and load mismatch; bandwidth by gm1 and
    C_c; power by the bias branch; gain by all gm/gds ratios — so each
    metric's Hermite expansion is sparse, which is the property the
    paper's algorithms exploit.

    The bias current is found by solving the nonlinear fixed point
    [I = (V_DD − V_GS8(I))/R] — it makes every metric a smooth
    non-polynomial function of the variation variables, so quadratic
    models are good but not exact (as in a real circuit). *)

type metric = Gain | Bandwidth | Power | Offset

val all_metrics : metric list

val metric_name : metric -> string
(** ["gain"], ["bandwidth"], ["power"], ["offset"]. *)

val metric_unit : metric -> string
(** Reporting unit: dB, MHz, µW, mV. *)

type t

val build : ?n_parasitics:int -> unit -> t
(** [build ()] constructs the amplifier with the paper-size variation
    space (630 factors). [n_parasitics] shrinks the parasitic count for
    fast tests (e.g. [~n_parasitics:50] → 130 factors). *)

val dim : t -> int
(** Number of independent variation factors (630 by default). *)

val process : t -> Process.t

val eval : t -> metric -> Linalg.Vec.t -> float
(** [eval amp m dy] evaluates metric [m] at factor vector [dy]:
    gain in dB, unity-gain bandwidth in MHz, power in µW, input-referred
    offset in mV. *)

val nominal : t -> metric -> float
(** Metric at the nominal corner (all factors zero). *)

val simulator : t -> metric -> Simulator.t
(** Wraps a metric as a simulator workload; the simulated per-sample
    cost is Table I's 13.45 s Spectre run. *)

(** Device roles, exposed for tests and sparsity ground-truth checks. *)
module Device : sig
  val m1 : int  (** input pair, inverting *)

  val m2 : int  (** input pair, non-inverting *)

  val m3 : int  (** mirror load *)

  val m4 : int  (** mirror load *)

  val m5 : int  (** tail current source *)

  val m6 : int  (** second-stage driver *)

  val m7 : int  (** second-stage sink *)

  val m8 : int  (** bias diode *)

  val count : int  (** total devices (12) *)
end
