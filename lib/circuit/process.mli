(** Process-variation model: the bridge between the independent factors
    ΔY the modeling algorithms see and the physical device-parameter
    shifts the circuit equations consume.

    Structure mirrors a foundry statistical model at 65 nm:

    - a small block of {e inter-die} (global) parameters — correlated
      across the die, e.g. ΔV_TH(global), ΔT_OX, ΔL, mobility, sheet
      resistance. Their correlation is whitened by PCA (Section II of
      the paper: "After PCA based on foundry data, … independent random
      variables are extracted").
    - per-device {e intra-die mismatch} parameters — already
      independent by construction (Pelgrom-style local randomness),
      scaled by the device's matching sigma.

    The independent factor vector is [ΔY = [global factors; mismatch
    factors]], all standard normal. [device_shift] maps ΔY to the
    physical shifts of one device; [parasitic_shift] to the relative
    shift of one layout parasitic. *)

(** Physical shifts for one MOS device, in the units the device model
    expects. *)
type shift = {
  dvth : float;  (** threshold-voltage shift, volts *)
  dbeta_rel : float;  (** relative µ·Cox·W/L (current-factor) shift *)
  dlen_rel : float;  (** relative channel-length shift *)
}

type spec = {
  n_global : int;  (** raw correlated inter-die parameters *)
  global_corr : float;  (** pairwise correlation of the raw globals *)
  n_devices : int;
  mismatch_vars_per_device : int;  (** ≥ 3: vth, beta, length, … *)
  n_parasitics : int;
  vth_sigma_global : float;  (** volts, 1σ inter-die V_TH *)
  vth_sigma_local : float;  (** volts, 1σ mismatch V_TH for unit device *)
  beta_sigma_rel : float;  (** relative 1σ current-factor mismatch *)
  len_sigma_rel : float;  (** relative 1σ length variation *)
  parasitic_sigma_rel : float;  (** relative 1σ parasitic R/C variation *)
}

val default_spec : spec
(** 65 nm-flavoured defaults (V_TH global σ = 15 mV, local σ = 20 mV for
    a unit device, 2% β, 1.5% L, 5% parasitics, global correlation
    0.6). *)

type t

val build : spec -> t
(** Constructs the model; runs PCA on the inter-die covariance once.
    @raise Invalid_argument on non-positive counts or correlations
    outside [0, 1). *)

val spec : t -> spec

val dim : t -> int
(** Total number of independent factors
    [N = n_global + n_devices·mismatch_vars_per_device + n_parasitics] —
    the dimension of ΔY. *)

val n_global_factors : t -> int

val sample : t -> Randkit.Prng.t -> Linalg.Vec.t
(** One Monte-Carlo draw of ΔY: iid standard normal of length [dim]
    (the factors are independent by construction after PCA). *)

val device_shift : t -> Linalg.Vec.t -> device:int -> area_factor:float -> shift
(** [device_shift p dy ~device ~area_factor] combines the global
    component (inter-die factors mapped back through the PCA rotation)
    with device [device]'s own mismatch factors. Mismatch sigmas scale
    as [1/√area_factor] (Pelgrom's law); [area_factor = 1] is a unit
    device. *)

val parasitic_shift : t -> Linalg.Vec.t -> parasitic:int -> float
(** Relative shift of parasitic element [parasitic] (mean 0). *)

val mismatch_factor_index : t -> device:int -> which:int -> int
(** Index into ΔY of mismatch variable [which] of device [device] —
    used by tests and by the ground-truth sparsity analysis to check
    that the solver selects physically meaningful factors. *)

val parasitic_factor_index : t -> parasitic:int -> int
