(** The transistor-level "simulator" driver — the stand-in for Cadence
    Spectre in the paper's flow (see DESIGN.md, substitution 1).

    A workload couples an analytic performance evaluator with the cost
    model of the real simulator it replaces: [seconds_per_sample] is the
    accounted wall-clock cost of one transistor-level simulation, so the
    cost tables (Tables I, III, IV) can report simulation cost on the
    paper's scale while the fitting cost is measured live. *)

type dataset = {
  points : Linalg.Vec.t array;  (** ΔY^(k): factor vectors, length [dim] *)
  values : float array;  (** f^(k): the simulated performance *)
}

type t = {
  name : string;
  dim : int;  (** number of independent variation factors *)
  eval : Linalg.Vec.t -> float;
  seconds_per_sample : float;  (** accounted cost of one real simulation *)
}

val make :
  name:string -> dim:int -> seconds_per_sample:float ->
  (Linalg.Vec.t -> float) -> t

val run_one : t -> Randkit.Prng.t -> Linalg.Vec.t * float
(** Draw one Monte-Carlo point (iid standard normal factors, Section IV-A:
    "we randomly draw K sampling points based on pdf(ΔY)") and evaluate. *)

val run :
  ?noise_rel:float -> ?pool:Parallel.Pool.t -> t -> Randkit.Prng.t -> k:int ->
  dataset
(** [run sim g ~k] draws [k] samples. [noise_rel] adds Gaussian
    observation noise with sigma equal to that fraction of the sample
    standard deviation of the clean responses (simulator numerical
    noise); default 0.

    With [?pool] the [k] evaluations of [eval] — the Monte-Carlo batch
    that stands in for [k] transistor-level simulations — run
    batch-parallel over the pool. The sample points (and the optional
    noise) are always drawn sequentially from [g], so the dataset is
    bitwise identical with and without a pool, at every domain count.
    [eval] is then called from several domains concurrently and must be
    thread-safe; the built-in circuit evaluators are pure. Default:
    sequential (arbitrary user closures stay safe). *)

val simulated_cost : t -> k:int -> float
(** [k · seconds_per_sample]: the simulation cost a real flow would pay. *)

val dataset_size : dataset -> int

val split : dataset -> int array -> dataset
(** [split d idx] is the sub-dataset at the given indices (points are
    shared, not copied). *)

val points_matrix : dataset -> Linalg.Mat.t
(** Stack the factor vectors as rows of a [K×dim] matrix. *)
