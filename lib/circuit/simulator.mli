(** The transistor-level "simulator" driver — the stand-in for Cadence
    Spectre in the paper's flow (see DESIGN.md, substitution 1).

    A workload couples an analytic performance evaluator with the cost
    model of the real simulator it replaces: [seconds_per_sample] is the
    accounted wall-clock cost of one transistor-level simulation, so the
    cost tables (Tables I, III, IV) can report simulation cost on the
    paper's scale while the fitting cost is measured live. *)

type dataset = {
  points : Linalg.Vec.t array;  (** ΔY^(k): factor vectors, length [dim] *)
  values : float array;  (** f^(k): the simulated performance *)
}

type t = {
  name : string;
  dim : int;  (** number of independent variation factors *)
  eval : Linalg.Vec.t -> float;
  seconds_per_sample : float;  (** accounted cost of one real simulation *)
}

val make :
  name:string -> dim:int -> seconds_per_sample:float ->
  (Linalg.Vec.t -> float) -> t

val run_one : t -> Randkit.Prng.t -> Linalg.Vec.t * float
(** Draw one Monte-Carlo point (iid standard normal factors, Section IV-A:
    "we randomly draw K sampling points based on pdf(ΔY)") and evaluate. *)

val run :
  ?noise_rel:float -> ?pool:Parallel.Pool.t -> t -> Randkit.Prng.t -> k:int ->
  dataset
(** [run sim g ~k] draws [k] samples. [noise_rel] adds Gaussian
    observation noise with sigma equal to that fraction of the sample
    standard deviation of the clean responses (simulator numerical
    noise); default 0.

    With [?pool] the [k] evaluations of [eval] — the Monte-Carlo batch
    that stands in for [k] transistor-level simulations — run
    batch-parallel over the pool. The sample points (and the optional
    noise) are always drawn sequentially from [g], so the dataset is
    bitwise identical with and without a pool, at every domain count.
    [eval] is then called from several domains concurrently and must be
    thread-safe; the built-in circuit evaluators are pure. Default:
    sequential (arbitrary user closures stay safe). *)

(** {2 Fault injection and retry}

    Real transistor-level simulations fail: runs diverge and return
    NaN/Inf, license servers drop mid-batch (transient), jobs hang, and
    occasionally a run converges to garbage that is numerically finite
    (outlier). The fault plan injects exactly those modes so the fitting
    pipeline's hygiene (retry, screening, fallbacks) can be exercised
    and benchmarked deterministically. *)

type fault_kind =
  | Nan_return  (** simulation diverged: NaN result (detectable) *)
  | Inf_return  (** simulation diverged: ±∞ result (detectable) *)
  | Outlier
      (** converged to finite garbage — {e not} detectable at the
          simulator boundary; the dataset screen must catch it *)
  | Transient  (** run crashed / license lost: no value, retry may work *)
  | Hang  (** run hung until a timeout: no value, accounted wall time *)

type burst_model = {
  burst_entry : float;
      (** per-sample probability of a Good→Burst transition, in [0, 1] *)
  burst_len : float;  (** expected burst length in samples (geometric) *)
  burst_rate : float;
      (** per-attempt fault probability {e inside} a burst, in [0, 1]
          (1 = the whole window is down) *)
  burst_mix : (fault_kind * float) array;  (** fault mix inside a burst *)
  burst_seed : int;
      (** seed of the outage chain's own stream, independent of both the
          sampling stream and the per-sample fault streams *)
}

val burst_model :
  ?entry:float ->
  ?len:float ->
  ?rate:float ->
  ?mix:(fault_kind * float) array ->
  ?seed:int ->
  unit ->
  burst_model
(** Correlated-outage model: a two-state (Good/Burst) Markov chain over
    the sample index axis ({!Randkit.Markov}) — the license-server /
    NFS-outage regime where a {e window} of consecutive samples fails
    together, which per-attempt i.i.d. injection cannot represent.
    Defaults: [entry = 0.01], [len = 20], [rate = 1] (a hard outage),
    a transient-heavy mix ([Transient]:3, [Hang]:1 — an outage crashes
    or hangs jobs, it does not fabricate numbers), [seed = 0xb1257].
    @raise Invalid_argument on probabilities outside their ranges,
    [len < 1], or a degenerate mix. *)

type fault_plan = {
  rate : float;  (** per-attempt probability of any fault, in [0, 1) *)
  mix : (fault_kind * float) array;  (** relative weights of the modes *)
  outlier_scale : float;  (** outlier offset in units of [1 + |value|] *)
  hang_seconds : float;  (** accounted timeout charged per hang *)
  fault_seed : int;  (** seed of the fault stream, independent of sampling *)
  burst : burst_model option;
      (** correlated outage windows layered over the i.i.d. model;
          [None] = per-attempt faults only *)
}

val fault_plan :
  ?rate:float ->
  ?mix:(fault_kind * float) array ->
  ?outlier_scale:float ->
  ?hang_seconds:float ->
  ?fault_seed:int ->
  ?burst:burst_model ->
  unit ->
  fault_plan
(** Validated constructor. Defaults: [rate = 0.1], an equal-weight
    NaN/outlier/transient mix, [outlier_scale = 50], [hang_seconds =
    30], [fault_seed = 0x5eed], no burst model.
    @raise Invalid_argument on a rate outside [[0, 1)], an empty or
    negative-weight mix, or non-positive scales. *)

val burst_states : fault_plan -> k:int -> bool array
(** [burst_states plan ~k] is the outage chain for a [k]-sample run:
    element [i] is [true] when sample [i] falls inside a burst window.
    Drawn sequentially from [burst_seed]'s own stream before any
    evaluation, so it is a pure function of [(plan, k)] — bitwise
    identical at every domain and shard count. All-[false] when the
    plan has no burst model. *)

val no_faults : fault_plan
(** Rate-0 plan: {!run_robust} then behaves exactly like {!run} (plus
    the finite-value check on genuine evaluator output). *)

type retry_policy = {
  max_attempts : int;  (** total attempts per sample (1 = no retry) *)
  backoff_seconds : float;
      (** accounted base backoff; attempt [a] charges [2^(a-2)] times
          this (deterministic exponential backoff, never slept) *)
}

val retry_policy :
  ?max_attempts:int -> ?backoff_seconds:float -> unit -> retry_policy
(** Defaults: [max_attempts = 3], [backoff_seconds = 1].
    @raise Invalid_argument when [max_attempts < 1] or the backoff is
    negative. *)

val no_retry : retry_policy

type run_report = {
  requested : int;  (** K asked for *)
  delivered : int;  (** rows actually in the dataset *)
  failed : int array;
      (** sample indices abandoned after exhausting retries — recorded,
          never fatal *)
  faults_injected : int;
  nonfinite_faults : int;  (** NaN/Inf faults (all detected and retried) *)
  outliers_injected : int;  (** finite garbage delivered into the dataset *)
  transient_faults : int;
  hang_faults : int;
  retries : int;
  accounted_extra_seconds : float;
      (** retry re-runs, backoff and hang timeouts, on the simulator's
          cost scale — the price of the retry policy *)
  burst_windows : int;  (** outage windows intersecting the run *)
  burst_samples : int;  (** samples falling inside a burst window *)
  burst_faults : int;  (** faults injected while in the burst state *)
  breaker_trips : int;
      (** circuit-breaker trips ({!Robust.Retry}); always 0 under the
          fixed retry policy of {!run_robust} *)
}

val clean_report : requested:int -> run_report
(** The all-zeros report of a fault-free run of [requested] samples. *)

val report_summary : run_report -> string
(** One-line human-readable summary of a run report; burst windows and
    breaker trips are appended only when present, so fault-free and
    burst-free summaries are unchanged. *)

type attempt_outcome = {
  injected : fault_kind option;  (** the fault drawn, if any *)
  returned : float option;
      (** the value the attempt produced — possibly non-finite (injected
          NaN/Inf or genuine evaluator divergence), possibly corrupted
          (outlier); [None] for crash/hang attempts *)
  hang_s : float;  (** accounted hang timeout charged by this attempt *)
}

val draw_attempt :
  fault_plan ->
  in_burst:bool ->
  Randkit.Prng.t ->
  eval:(unit -> float) ->
  attempt_outcome
(** One attempt at a sample, drawing from the per-sample stream: the
    fault rate and mix switch to the burst model's when [in_burst].
    [eval] is invoked at most once, and only when the attempt actually
    produces a value (clean return or finite outlier garbage). This is
    the single source of truth for the per-attempt stream consumption —
    {!run_robust} and the adaptive {!Robust.Retry} driver both build on
    it, so a sample's fault history is a pure function of its stream
    regardless of which retry policy consumes it. *)

val run_robust :
  ?noise_rel:float ->
  ?pool:Parallel.Pool.t ->
  ?faults:fault_plan ->
  ?retry:retry_policy ->
  t ->
  Randkit.Prng.t ->
  k:int ->
  dataset * run_report
(** [run_robust sim g ~k] is {!run} hardened against failure: each
    sample is attempted up to [retry.max_attempts] times; non-finite
    results (injected by [faults] {e or} produced by the evaluator
    itself) and transient/hang faults are retried; samples still failing
    are dropped from the dataset and recorded in [report.failed].
    Injected outliers are finite and pass through — screening them is
    the job of [Robust.Screen].

    Determinism: sample points are drawn sequentially from [g] exactly
    as in {!run}; each sample's fault/retry decisions come from its own
    stream, split from [faults.fault_seed] by sample index before any
    evaluation ({!Randkit.Prng.split_n}). The dataset and report are
    therefore bitwise identical with and without [?pool], at every
    domain count — and with [faults = no_faults] and a clean evaluator
    the dataset is bitwise identical to {!run}'s. [noise_rel] is applied
    to the delivered rows only, drawing from [g] in row order.
    @raise Invalid_argument when [k <= 0]. *)

val run_robust_multi :
  ?noise_rel:float ->
  ?pool:Parallel.Pool.t ->
  ?faults:fault_plan ->
  ?retry:retry_policy ->
  t array ->
  Randkit.Prng.t ->
  k:int ->
  dataset array * run_report
(** [run_robust_multi sims g ~k] is {!run_robust} for R performance
    metrics of one circuit: the Monte-Carlo points are drawn {e once}
    and every simulator is evaluated at each of them, so the R datasets
    share one point set (the arrays are physically shared) and one
    fault/retry history — a sample is delivered only when {e every}
    output came back finite, giving all outputs identical kept rows and
    hence one design matrix downstream.

    Per-attempt stream consumption is exactly {!draw_attempt}'s (no
    draw depends on evaluator values; an outlier corrupts every output
    with the same drawn sign), so as long as the evaluators themselves
    only return finite values, output [r]'s dataset is bitwise
    identical to [run_robust sims.(r)] run with a {!Randkit.Prng.copy}
    of [g] — the per-output parity the fused multi-output fit relies
    on. An evaluator genuinely diverging on one output drops that
    sample for {e all} outputs, which a per-output run would not.

    The single report counts each injected fault and retry once (not
    once per output); a retry re-runs all R simulations and is charged
    their summed [seconds_per_sample]. [noise_rel] noise is drawn per
    output in output order from [g], so each metric's observation noise
    is independent.
    @raise Invalid_argument when [sims] is empty, the simulators
    disagree on [dim], or [k <= 0]. *)

val simulated_cost : t -> k:int -> float
(** [k · seconds_per_sample]: the simulation cost a real flow would pay. *)

val dataset_size : dataset -> int

val split : dataset -> int array -> dataset
(** [split d idx] is the sub-dataset at the given indices (points are
    shared, not copied). *)

val points_matrix : dataset -> Linalg.Mat.t
(** Stack the factor vectors as rows of a [K×dim] matrix. *)
