(** CSV persistence for simulation datasets.

    Sampling points are the expensive artifact of the whole flow (each
    row is an accounted transistor-level simulation); saving them lets
    a team fit new models, try new dictionaries, or rerun
    cross-validation without re-simulating.

    Format: a header row [y0,y1,...,y<N-1>,f], then one row per sample
    with [%.17g] round-trip precision. Lines starting with [#] are
    ignored. *)

val save : string -> Simulator.dataset -> unit
(** [save path d] writes the dataset (truncating [path]).
    @raise Invalid_argument on an empty dataset or one containing a
    non-finite value or factor — corrupt rows must be screened out
    ([Robust.Screen]) before persisting, never silently stored.
    @raise Sys_error on IO failure. *)

val load : string -> (Simulator.dataset, string) result
(** [load path] reads a dataset back; [Error] describes the first
    malformed line with its physical line number: ragged rows (wrong
    column count), malformed numbers, NaN/Inf values, missing header.
    A dataset that loads is guaranteed all-finite and rectangular. *)

val to_channel : out_channel -> Simulator.dataset -> unit

val of_string : string -> (Simulator.dataset, string) result
