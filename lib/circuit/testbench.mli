(** Experiment harness plumbing: paired training/testing datasets and
    cost accounting, mirroring the paper's methodology in Section V
    ("two independent random sampling sets, called training set and
    testing set respectively, are generated using Cadence Spectre"). *)

type experiment = {
  sim : Simulator.t;
  train : Simulator.dataset;
  test : Simulator.dataset;
}

val generate :
  ?noise_rel:float -> ?pool:Parallel.Pool.t -> Simulator.t -> Randkit.Prng.t ->
  train:int -> test:int -> experiment
(** Draw the two independent sets from their own split PRNG streams (so
    growing one set never perturbs the other). [?pool] is forwarded to
    {!Simulator.run} for batch-parallel evaluation; the datasets are
    bitwise identical with and without it. *)

val training_cost : experiment -> float
(** Accounted simulation seconds for the training set (the "simulation
    cost" rows of Tables I/III/IV). *)

(** Wall-clock measurement of fitting cost (the "fitting cost" rows). *)
val timed : (unit -> 'a) -> 'a * float
