open Linalg

type dataset = { points : Vec.t array; values : float array }

type t = {
  name : string;
  dim : int;
  eval : Vec.t -> float;
  seconds_per_sample : float;
}

let make ~name ~dim ~seconds_per_sample eval =
  if dim <= 0 then invalid_arg "Simulator.make: dimension must be positive";
  if seconds_per_sample < 0. then
    invalid_arg "Simulator.make: negative per-sample cost";
  { name; dim; eval; seconds_per_sample }

let run_one sim g =
  let p = Randkit.Gaussian.vector g sim.dim in
  (p, sim.eval p)

(* --- fault injection and retry ------------------------------------- *)

type fault_kind = Nan_return | Inf_return | Outlier | Transient | Hang

type burst_model = {
  burst_entry : float;
  burst_len : float;
  burst_rate : float;
  burst_mix : (fault_kind * float) array;
  burst_seed : int;
}

let check_mix ~who mix =
  if Array.length mix = 0 then invalid_arg (who ^ ": empty mix");
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if not (w >= 0.) || not (Float.is_finite w) then
          invalid_arg (who ^ ": mix weights must be finite and >= 0");
        acc +. w)
      0. mix
  in
  if total <= 0. then invalid_arg (who ^ ": mix weights sum to zero")

let burst_model ?(entry = 0.01) ?(len = 20.) ?(rate = 1.0)
    ?(mix = [| (Transient, 3.); (Hang, 1.) |]) ?(seed = 0xb1257) () =
  if not (entry >= 0. && entry <= 1.) then
    invalid_arg "Simulator.burst_model: entry probability must be in [0, 1]";
  if not (Float.is_finite len) || len < 1. then
    invalid_arg "Simulator.burst_model: expected length must be >= 1";
  (* A hard outage is rate 1: every attempt inside the window fails. *)
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Simulator.burst_model: rate must be in [0, 1]";
  check_mix ~who:"Simulator.burst_model" mix;
  {
    burst_entry = entry;
    burst_len = len;
    burst_rate = rate;
    burst_mix = mix;
    burst_seed = seed;
  }

type fault_plan = {
  rate : float;
  mix : (fault_kind * float) array;
  outlier_scale : float;
  hang_seconds : float;
  fault_seed : int;
  burst : burst_model option;
}

let fault_plan ?(rate = 0.1)
    ?(mix = [| (Nan_return, 1.); (Outlier, 1.); (Transient, 1.) |])
    ?(outlier_scale = 50.) ?(hang_seconds = 30.) ?(fault_seed = 0x5eed)
    ?burst () =
  if not (rate >= 0. && rate < 1.) then
    invalid_arg "Simulator.fault_plan: rate must be in [0, 1)";
  check_mix ~who:"Simulator.fault_plan" mix;
  if outlier_scale <= 0. then
    invalid_arg "Simulator.fault_plan: outlier_scale must be positive";
  if hang_seconds < 0. then
    invalid_arg "Simulator.fault_plan: negative hang_seconds";
  { rate; mix; outlier_scale; hang_seconds; fault_seed; burst }

let no_faults = fault_plan ~rate:0. ()

(* The outage chain runs on its own stream ([burst_seed]), sequentially
   over sample indices, before any evaluation fans out — the per-sample
   burst flag is a pure function of (plan, k, i) at every domain count. *)
let burst_states plan ~k =
  match plan.burst with
  | None -> Array.make k false
  | Some b ->
      Randkit.Markov.states
        (Randkit.Markov.of_mean_len ~entry:b.burst_entry ~mean_len:b.burst_len
           ())
        ~seed:b.burst_seed k

type retry_policy = { max_attempts : int; backoff_seconds : float }

let retry_policy ?(max_attempts = 3) ?(backoff_seconds = 1.) () =
  if max_attempts < 1 then
    invalid_arg "Simulator.retry_policy: max_attempts must be >= 1";
  if backoff_seconds < 0. then
    invalid_arg "Simulator.retry_policy: negative backoff";
  { max_attempts; backoff_seconds }

let no_retry = { max_attempts = 1; backoff_seconds = 0. }

type run_report = {
  requested : int;
  delivered : int;
  failed : int array;
  faults_injected : int;
  nonfinite_faults : int;
  outliers_injected : int;
  transient_faults : int;
  hang_faults : int;
  retries : int;
  accounted_extra_seconds : float;
  burst_windows : int;
  burst_samples : int;
  burst_faults : int;
  breaker_trips : int;
}

let clean_report ~requested =
  {
    requested;
    delivered = requested;
    failed = [||];
    faults_injected = 0;
    nonfinite_faults = 0;
    outliers_injected = 0;
    transient_faults = 0;
    hang_faults = 0;
    retries = 0;
    accounted_extra_seconds = 0.;
    burst_windows = 0;
    burst_samples = 0;
    burst_faults = 0;
    breaker_trips = 0;
  }

let report_summary r =
  let base =
    Printf.sprintf
      "%d/%d samples delivered; %d faults injected (%d non-finite, %d \
       outliers, %d transient, %d hangs); %d retries; %d abandoned; %.1f s of \
       extra simulation accounted"
      r.delivered r.requested r.faults_injected r.nonfinite_faults
      r.outliers_injected r.transient_faults r.hang_faults r.retries
      (Array.length r.failed) r.accounted_extra_seconds
  in
  let burst =
    if r.burst_windows = 0 then ""
    else
      Printf.sprintf "; %d burst window(s) covering %d samples (%d faults)"
        r.burst_windows r.burst_samples r.burst_faults
  in
  let breaker =
    if r.breaker_trips = 0 then ""
    else Printf.sprintf "; %d breaker trip(s)" r.breaker_trips
  in
  base ^ burst ^ breaker

(* Per-sample bookkeeping, aggregated sequentially after the (possibly
   parallel) evaluation sweep so the report is deterministic. *)
type sample_stats = {
  mutable s_injected : int;
  mutable s_nonfinite : int;
  mutable s_outliers : int;
  mutable s_transient : int;
  mutable s_hangs : int;
  mutable s_retries : int;
  mutable s_extra : float;
  mutable s_burst_faults : int;
}

let pick_kind mix fs =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. mix in
  let u = Randkit.Prng.float fs *. total in
  let acc = ref 0. and kind = ref (fst mix.(0)) in
  (try
     Array.iter
       (fun (k, w) ->
         acc := !acc +. w;
         if u < !acc then begin
           kind := k;
           raise Exit
         end)
       mix
   with Exit -> ());
  !kind

type attempt_outcome = {
  injected : fault_kind option;
  returned : float option;
  hang_s : float;
}

(* One attempt at a sample: either a fault drawn from the per-sample
   stream [fs] — at the burst mix/rate when the sample sits inside an
   outage window — or a real evaluation. [eval] is called at most once
   per attempt, only when a value is actually produced (clean return or
   finite outlier garbage). *)
let draw_attempt plan ~in_burst fs ~eval =
  let rate, mix =
    match plan.burst with
    | Some b when in_burst -> (b.burst_rate, b.burst_mix)
    | _ -> (plan.rate, plan.mix)
  in
  if rate > 0. && Randkit.Prng.float fs < rate then
    match pick_kind mix fs with
    | Nan_return ->
        { injected = Some Nan_return; returned = Some Float.nan; hang_s = 0. }
    | Inf_return ->
        {
          injected = Some Inf_return;
          returned =
            Some
              (if Randkit.Prng.bool fs then Float.infinity
               else Float.neg_infinity);
          hang_s = 0.;
        }
    | Outlier ->
        let v = eval () in
        let sign = if Randkit.Prng.bool fs then 1. else -1. in
        {
          injected = Some Outlier;
          returned = Some (v +. (sign *. plan.outlier_scale *. (1. +. Float.abs v)));
          hang_s = 0.;
        }
    | Transient -> { injected = Some Transient; returned = None; hang_s = 0. }
    | Hang ->
        { injected = Some Hang; returned = None; hang_s = plan.hang_seconds }
  else { injected = None; returned = Some (eval ()); hang_s = 0. }

let record_fault st ~in_burst ~injected ~hang_s =
  (match injected with
  | None -> ()
  | Some kind ->
      st.s_injected <- st.s_injected + 1;
      if in_burst then st.s_burst_faults <- st.s_burst_faults + 1;
      (match kind with
      | Nan_return | Inf_return -> st.s_nonfinite <- st.s_nonfinite + 1
      | Outlier -> st.s_outliers <- st.s_outliers + 1
      | Transient -> st.s_transient <- st.s_transient + 1
      | Hang -> st.s_hangs <- st.s_hangs + 1));
  st.s_extra <- st.s_extra +. hang_s

let record_attempt st ~in_burst a =
  record_fault st ~in_burst ~injected:a.injected ~hang_s:a.hang_s

(* Evaluate one sample under the plan: up to [max_attempts] attempts,
   each either a fault drawn from the per-sample stream [fs] or a real
   evaluation. Non-finite returns (injected or genuine) are detected at
   this boundary and retried; outliers are finite garbage and pass
   through — the downstream screen is responsible for them. Every retry
   and simulated hang is accounted in simulator seconds but never
   actually slept. *)
let eval_sample plan retry sim fs st ~in_burst p =
  let delivered = ref None in
  let attempt = ref 0 in
  while !delivered = None && !attempt < retry.max_attempts do
    incr attempt;
    if !attempt > 1 then begin
      st.s_retries <- st.s_retries + 1;
      (* Deterministic exponential backoff: 1x, 2x, 4x ... of the base. *)
      st.s_extra <-
        st.s_extra
        +. (retry.backoff_seconds *. float_of_int (1 lsl (!attempt - 2)))
        +. sim.seconds_per_sample
    end;
    let a = draw_attempt plan ~in_burst fs ~eval:(fun () -> sim.eval p) in
    record_attempt st ~in_burst a;
    match a.returned with
    | Some v when Float.is_finite v -> delivered := Some v
    | Some _ | None -> () (* failed attempt: crash, hang, or garbage *)
  done;
  !delivered

let run_robust ?(noise_rel = 0.) ?pool ?(faults = no_faults)
    ?(retry = no_retry) sim g ~k =
  if k <= 0 then invalid_arg "Simulator.run_robust: sample count must be positive";
  (* Points come sequentially from the caller's generator (same stream
     as [run]); fault decisions come from per-sample streams split off
     the plan's own seed before any evaluation, so the outcome of sample
     [i] is a pure function of (plan, retry, i) — bitwise identical at
     every domain count, and unperturbed by other samples' retries. *)
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector g sim.dim) in
  let streams = Randkit.Prng.split_n (Randkit.Prng.create faults.fault_seed) k in
  let burst = burst_states faults ~k in
  let out = Array.make k Float.nan in
  let ok = Array.make k false in
  let stats =
    Array.init k (fun _ ->
        {
          s_injected = 0;
          s_nonfinite = 0;
          s_outliers = 0;
          s_transient = 0;
          s_hangs = 0;
          s_retries = 0;
          s_extra = 0.;
          s_burst_faults = 0;
        })
  in
  let body i =
    match
      eval_sample faults retry sim streams.(i) stats.(i) ~in_burst:burst.(i)
        points.(i)
    with
    | Some v ->
        out.(i) <- v;
        ok.(i) <- true
    | None -> ()
  in
  (match pool with
  | None ->
      for i = 0 to k - 1 do
        body i
      done
  | Some pool -> Parallel.Pool.parallel_for pool ~lo:0 ~hi:k body);
  let kept = ref [] and failed = ref [] in
  for i = k - 1 downto 0 do
    if ok.(i) then kept := i :: !kept else failed := i :: !failed
  done;
  let kept = Array.of_list !kept in
  let d =
    {
      points = Array.map (fun i -> points.(i)) kept;
      values = Array.map (fun i -> out.(i)) kept;
    }
  in
  let k' = Array.length kept in
  if noise_rel > 0. && k' > 1 then begin
    let sigma = Stat.Descriptive.std d.values in
    for i = 0 to k' - 1 do
      d.values.(i) <-
        d.values.(i) +. (noise_rel *. sigma *. Randkit.Gaussian.sample g)
    done
  end;
  let report =
    Array.fold_left
      (fun acc st ->
        {
          acc with
          faults_injected = acc.faults_injected + st.s_injected;
          nonfinite_faults = acc.nonfinite_faults + st.s_nonfinite;
          outliers_injected = acc.outliers_injected + st.s_outliers;
          transient_faults = acc.transient_faults + st.s_transient;
          hang_faults = acc.hang_faults + st.s_hangs;
          retries = acc.retries + st.s_retries;
          accounted_extra_seconds = acc.accounted_extra_seconds +. st.s_extra;
          burst_faults = acc.burst_faults + st.s_burst_faults;
        })
      {
        (clean_report ~requested:k) with
        delivered = k';
        failed = Array.of_list !failed;
        burst_windows = Array.length (Randkit.Markov.windows burst);
        burst_samples = Randkit.Markov.count burst;
        burst_faults = 0;
      }
      stats
  in
  (d, report)

(* --- multi-output runs ---------------------------------------------- *)

(* One attempt at a sample for every output at once. The per-sample
   stream consumption is exactly [draw_attempt]'s — rate draw, then
   kind, then (Inf/Outlier) one sign — because none of the draws depend
   on evaluator values; so output [r]'s fault history is the one the
   single-output run would have drawn from the same stream. The sims
   are each evaluated at most once per attempt, and an outlier corrupts
   every output with the same drawn sign. *)
type multi_attempt = {
  m_injected : fault_kind option;
  m_returned : float array option;
  m_hang_s : float;
}

let draw_attempt_multi plan ~in_burst fs ~evals =
  let rate, mix =
    match plan.burst with
    | Some b when in_burst -> (b.burst_rate, b.burst_mix)
    | _ -> (plan.rate, plan.mix)
  in
  let all v = Some (Array.map (fun _ -> v) evals) in
  if rate > 0. && Randkit.Prng.float fs < rate then
    match pick_kind mix fs with
    | Nan_return ->
        { m_injected = Some Nan_return; m_returned = all Float.nan; m_hang_s = 0. }
    | Inf_return ->
        let v =
          if Randkit.Prng.bool fs then Float.infinity else Float.neg_infinity
        in
        { m_injected = Some Inf_return; m_returned = all v; m_hang_s = 0. }
    | Outlier ->
        let vs = Array.map (fun e -> e ()) evals in
        let sign = if Randkit.Prng.bool fs then 1. else -1. in
        {
          m_injected = Some Outlier;
          m_returned =
            Some
              (Array.map
                 (fun v -> v +. (sign *. plan.outlier_scale *. (1. +. Float.abs v)))
                 vs);
          m_hang_s = 0.;
        }
    | Transient ->
        { m_injected = Some Transient; m_returned = None; m_hang_s = 0. }
    | Hang ->
        { m_injected = Some Hang; m_returned = None; m_hang_s = plan.hang_seconds }
  else
    {
      m_injected = None;
      m_returned = Some (Array.map (fun e -> e ()) evals);
      m_hang_s = 0.;
    }

(* A sample is delivered only when every output came back finite, so
   all outputs share one kept-row set (hence one design matrix). A
   retry re-runs every simulation, so it is charged the summed
   per-sample cost [extra]. *)
let eval_sample_multi plan retry sims ~extra fs st ~in_burst p =
  let delivered = ref None in
  let attempt = ref 0 in
  while !delivered = None && !attempt < retry.max_attempts do
    incr attempt;
    if !attempt > 1 then begin
      st.s_retries <- st.s_retries + 1;
      st.s_extra <-
        st.s_extra
        +. (retry.backoff_seconds *. float_of_int (1 lsl (!attempt - 2)))
        +. extra
    end;
    let a =
      draw_attempt_multi plan ~in_burst fs
        ~evals:(Array.map (fun sim () -> sim.eval p) sims)
    in
    record_fault st ~in_burst ~injected:a.m_injected ~hang_s:a.m_hang_s;
    match a.m_returned with
    | Some vs when Array.for_all Float.is_finite vs -> delivered := Some vs
    | Some _ | None -> ()
  done;
  !delivered

let run_robust_multi ?(noise_rel = 0.) ?pool ?(faults = no_faults)
    ?(retry = no_retry) sims g ~k =
  let outputs = Array.length sims in
  if outputs = 0 then
    invalid_arg "Simulator.run_robust_multi: at least one simulator required";
  if k <= 0 then
    invalid_arg "Simulator.run_robust_multi: sample count must be positive";
  let dim = sims.(0).dim in
  Array.iter
    (fun sim ->
      if sim.dim <> dim then
        invalid_arg
          "Simulator.run_robust_multi: simulators disagree on dimension")
    sims;
  (* Exactly [run_robust]'s stream discipline: points sequentially from
     the caller's generator, fault decisions from per-sample streams
     split off the plan's seed before any evaluation fans out. *)
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector g dim) in
  let streams = Randkit.Prng.split_n (Randkit.Prng.create faults.fault_seed) k in
  let burst = burst_states faults ~k in
  let out = Array.init k (fun _ -> [||]) in
  let ok = Array.make k false in
  let stats =
    Array.init k (fun _ ->
        {
          s_injected = 0;
          s_nonfinite = 0;
          s_outliers = 0;
          s_transient = 0;
          s_hangs = 0;
          s_retries = 0;
          s_extra = 0.;
          s_burst_faults = 0;
        })
  in
  let extra =
    Array.fold_left (fun acc sim -> acc +. sim.seconds_per_sample) 0. sims
  in
  let body i =
    match
      eval_sample_multi faults retry sims ~extra streams.(i) stats.(i)
        ~in_burst:burst.(i) points.(i)
    with
    | Some vs ->
        out.(i) <- vs;
        ok.(i) <- true
    | None -> ()
  in
  (match pool with
  | None ->
      for i = 0 to k - 1 do
        body i
      done
  | Some pool -> Parallel.Pool.parallel_for pool ~lo:0 ~hi:k body);
  let kept = ref [] and failed = ref [] in
  for i = k - 1 downto 0 do
    if ok.(i) then kept := i :: !kept else failed := i :: !failed
  done;
  let kept = Array.of_list !kept in
  let kept_points = Array.map (fun i -> points.(i)) kept in
  let datasets =
    Array.init outputs (fun r ->
        (* The point array is physically shared across outputs. *)
        { points = kept_points; values = Array.map (fun i -> out.(i).(r)) kept })
  in
  let k' = Array.length kept in
  if noise_rel > 0. && k' > 1 then
    (* Observation noise per output, in output order, all from the
       caller's generator — each metric's measurement noise is
       independent of the others'. *)
    Array.iter
      (fun d ->
        let sigma = Stat.Descriptive.std d.values in
        for i = 0 to k' - 1 do
          d.values.(i) <-
            d.values.(i) +. (noise_rel *. sigma *. Randkit.Gaussian.sample g)
        done)
      datasets;
  let report =
    Array.fold_left
      (fun acc st ->
        {
          acc with
          faults_injected = acc.faults_injected + st.s_injected;
          nonfinite_faults = acc.nonfinite_faults + st.s_nonfinite;
          outliers_injected = acc.outliers_injected + st.s_outliers;
          transient_faults = acc.transient_faults + st.s_transient;
          hang_faults = acc.hang_faults + st.s_hangs;
          retries = acc.retries + st.s_retries;
          accounted_extra_seconds = acc.accounted_extra_seconds +. st.s_extra;
          burst_faults = acc.burst_faults + st.s_burst_faults;
        })
      {
        (clean_report ~requested:k) with
        delivered = k';
        failed = Array.of_list !failed;
        burst_windows = Array.length (Randkit.Markov.windows burst);
        burst_samples = Randkit.Markov.count burst;
        burst_faults = 0;
      }
      stats
  in
  (datasets, report)

let run ?(noise_rel = 0.) ?pool sim g ~k =
  if k <= 0 then invalid_arg "Simulator.run: sample count must be positive";
  (* Points are always drawn sequentially from the caller's generator so
     the stream — and hence the dataset — is identical whether or not
     the evaluations below run in parallel. *)
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector g sim.dim) in
  let values =
    match pool with
    | None -> Array.map sim.eval points
    | Some pool ->
        (* Batch-parallel evaluation: the expensive part (the stand-in
           for one transistor-level simulation per point) fans out over
           the pool; each index writes its own slot. *)
        let out = Array.make k 0. in
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
            out.(i) <- sim.eval points.(i));
        out
  in
  if noise_rel > 0. && k > 1 then begin
    let sigma = Stat.Descriptive.std values in
    for i = 0 to k - 1 do
      values.(i) <- values.(i) +. (noise_rel *. sigma *. Randkit.Gaussian.sample g)
    done
  end;
  { points; values }

let simulated_cost sim ~k = float_of_int k *. sim.seconds_per_sample

let dataset_size d = Array.length d.points

let split d idx =
  {
    points = Array.map (fun i -> d.points.(i)) idx;
    values = Array.map (fun i -> d.values.(i)) idx;
  }

let points_matrix d =
  let k = Array.length d.points in
  if k = 0 then Mat.create 0 0
  else begin
    let n = Array.length d.points.(0) in
    Mat.init k n (fun i j -> d.points.(i).(j))
  end
