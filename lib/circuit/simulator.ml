open Linalg

type dataset = { points : Vec.t array; values : float array }

type t = {
  name : string;
  dim : int;
  eval : Vec.t -> float;
  seconds_per_sample : float;
}

let make ~name ~dim ~seconds_per_sample eval =
  if dim <= 0 then invalid_arg "Simulator.make: dimension must be positive";
  if seconds_per_sample < 0. then
    invalid_arg "Simulator.make: negative per-sample cost";
  { name; dim; eval; seconds_per_sample }

let run_one sim g =
  let p = Randkit.Gaussian.vector g sim.dim in
  (p, sim.eval p)

let run ?(noise_rel = 0.) ?pool sim g ~k =
  if k <= 0 then invalid_arg "Simulator.run: sample count must be positive";
  (* Points are always drawn sequentially from the caller's generator so
     the stream — and hence the dataset — is identical whether or not
     the evaluations below run in parallel. *)
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector g sim.dim) in
  let values =
    match pool with
    | None -> Array.map sim.eval points
    | Some pool ->
        (* Batch-parallel evaluation: the expensive part (the stand-in
           for one transistor-level simulation per point) fans out over
           the pool; each index writes its own slot. *)
        let out = Array.make k 0. in
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
            out.(i) <- sim.eval points.(i));
        out
  in
  if noise_rel > 0. && k > 1 then begin
    let sigma = Stat.Descriptive.std values in
    for i = 0 to k - 1 do
      values.(i) <- values.(i) +. (noise_rel *. sigma *. Randkit.Gaussian.sample g)
    done
  end;
  { points; values }

let simulated_cost sim ~k = float_of_int k *. sim.seconds_per_sample

let dataset_size d = Array.length d.points

let split d idx =
  {
    points = Array.map (fun i -> d.points.(i)) idx;
    values = Array.map (fun i -> d.values.(i)) idx;
  }

let points_matrix d =
  let k = Array.length d.points in
  if k = 0 then Mat.create 0 0
  else begin
    let n = Array.length d.points.(0) in
    Mat.init k n (fun i j -> d.points.(i).(j))
  end
