(** Ring-oscillator workload — a digital-flavoured third circuit.

    An odd-length chain of CMOS inverters; the oscillation frequency is
    [1/(2·Σ stage delays)] and the dynamic power is [f·C·V²·stages].
    Unlike the OpAmp (few devices, sharply sparse) and the SRAM (huge
    array, near-zero background), the ring oscillator's frequency
    depends on {e every} stage with {e equal} weight — the
    "dense-but-small-coefficients" regime where each of the 2·stages
    transistors carries a 1/stages share of the variance and the
    inter-die factors dominate. This stresses the solvers' behaviour
    when the true model is {e not} profoundly sparse, the boundary
    case the paper's Section III discussion anticipates (sparsity is a
    necessary condition for the method to win). *)

type metric = Frequency | Power

val metric_name : metric -> string
(** ["frequency"] (MHz) or ["power"] (µW). *)

type t

val build : ?stages:int -> unit -> t
(** [build ()] is a 101-stage ring (202 transistors, 3 mismatch
    variables each, 10 inter-die factors → 616 factors).
    @raise Invalid_argument for even or < 3 stages. *)

val stages : t -> int

val dim : t -> int

val process : t -> Process.t

val eval : t -> metric -> Linalg.Vec.t -> float

val nominal : t -> metric -> float

val simulator : t -> metric -> Simulator.t
(** Per-sample cost accounted at 2.1 s (a small transient analysis). *)
