type experiment = {
  sim : Simulator.t;
  train : Simulator.dataset;
  test : Simulator.dataset;
}

let generate ?(noise_rel = 0.) ?pool sim g ~train ~test =
  let g_train = Randkit.Prng.split g in
  let g_test = Randkit.Prng.split g in
  {
    sim;
    train = Simulator.run ~noise_rel ?pool sim g_train ~k:train;
    test = Simulator.run ~noise_rel ?pool sim g_test ~k:test;
  }

let training_cost e =
  Simulator.simulated_cost e.sim ~k:(Simulator.dataset_size e.train)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
