let check_finite_dataset d =
  Array.iteri
    (fun i p ->
      if not (Float.is_finite d.Simulator.values.(i)) then
        invalid_arg
          (Printf.sprintf "Dataset_io: row %d has a non-finite value" i);
      Array.iteri
        (fun j x ->
          if not (Float.is_finite x) then
            invalid_arg
              (Printf.sprintf
                 "Dataset_io: row %d, factor %d is non-finite" i j))
        p)
    d.Simulator.points

let to_channel oc d =
  let n = Array.length d.Simulator.points in
  if n = 0 then invalid_arg "Dataset_io: empty dataset";
  check_finite_dataset d;
  let dim = Array.length d.Simulator.points.(0) in
  for j = 0 to dim - 1 do
    Printf.fprintf oc "y%d," j
  done;
  output_string oc "f\n";
  Array.iteri
    (fun i p ->
      Array.iter (fun x -> Printf.fprintf oc "%.17g," x) p;
      Printf.fprintf oc "%.17g\n" d.Simulator.values.(i))
    d.Simulator.points

let save path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> to_channel oc d)

let of_string s =
  (* Keep physical line numbers through the blank/comment filter so
     every diagnostic points at the offending line of the file. *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty input"
  | (_, header) :: rows -> (
      let cols = String.split_on_char ',' header in
      let ncols = List.length cols in
      if ncols < 2 then Error "header must have at least one factor and f"
      else if List.nth cols (ncols - 1) <> "f" then
        Error "last header column must be 'f'"
      else begin
        let dim = ncols - 1 in
        let parse_row lineno line =
          let cells = String.split_on_char ',' line in
          let found = List.length cells in
          if found <> ncols then
            Error
              (Printf.sprintf
                 "line %d: expected %d columns, found %d (ragged row)" lineno
                 ncols found)
          else begin
            let rec parse j acc = function
              | [] -> Ok (List.rev acc)
              | cell :: tl -> (
                  match float_of_string_opt cell with
                  | None ->
                      Error
                        (Printf.sprintf "line %d, column %d: malformed number %S"
                           lineno (j + 1) cell)
                  | Some v when not (Float.is_finite v) ->
                      Error
                        (Printf.sprintf
                           "line %d, column %d: non-finite value %S (NaN/Inf \
                            rows must be screened out, not stored)"
                           lineno (j + 1) cell)
                  | Some v -> parse (j + 1) (v :: acc) tl)
            in
            match parse 0 [] cells with
            | Error e -> Error e
            | Ok vs ->
                let arr = Array.of_list vs in
                Ok (Array.sub arr 0 dim, arr.(dim))
          end
        in
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | (lineno, row) :: tl -> (
              match parse_row lineno row with
              | Ok x -> collect (x :: acc) tl
              | Error e -> Error e)
        in
        match collect [] rows with
        | Error e -> Error e
        | Ok [] -> Error "no data rows"
        | Ok pairs ->
            Ok
              {
                Simulator.points = Array.of_list (List.map fst pairs);
                values = Array.of_list (List.map snd pairs);
              }
      end)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))
