let check n = if n < 0 then invalid_arg "Hermite: negative degree"

(* Normalized recurrence: g_{n+1}(y) = (y·g_n(y) − √n·g_{n-1}(y)) / √(n+1).
   Follows from He_{n+1} = y·He_n − n·He_{n-1} and g_n = He_n/√(n!). *)
let eval n y =
  check n;
  if n = 0 then 1.
  else begin
    let prev = ref 1. and cur = ref y in
    for k = 1 to n - 1 do
      let fk = float_of_int k in
      let next = ((y *. !cur) -. (sqrt fk *. !prev)) /. sqrt (fk +. 1.) in
      prev := !cur;
      cur := next
    done;
    !cur
  end

(* The one recurrence shared by every table-filling consumer (design
   rows, streamed providers, compiled evaluator tapes): writing through
   a caller-chosen offset lets a flat multi-variable buffer host many
   per-variable tables without per-variable allocation. *)
let eval_all_into out ~pos ~deg y =
  check deg;
  out.(pos) <- 1.;
  if deg >= 1 then out.(pos + 1) <- y;
  for k = 1 to deg - 1 do
    let fk = float_of_int k in
    out.(pos + k + 1) <-
      ((y *. out.(pos + k)) -. (sqrt fk *. out.(pos + k - 1))) /. sqrt (fk +. 1.)
  done

let eval_all n y =
  check n;
  let out = Array.make (n + 1) 1. in
  eval_all_into out ~pos:0 ~deg:n y;
  out

let unnormalized n y =
  check n;
  if n = 0 then 1.
  else begin
    let prev = ref 1. and cur = ref y in
    for k = 1 to n - 1 do
      let next = (y *. !cur) -. (float_of_int k *. !prev) in
      prev := !cur;
      cur := next
    done;
    !cur
  end

let coefficients n =
  check n;
  (* He_{k+1} = y·He_k − k·He_{k-1}, carried on coefficient vectors. *)
  let rec go k prev cur =
    if k = n then cur
    else begin
      let next = Array.make (k + 2) 0. in
      Array.iteri (fun i c -> next.(i + 1) <- next.(i + 1) +. c) cur;
      Array.iteri
        (fun i c -> next.(i) <- next.(i) -. (float_of_int k *. c))
        prev;
      go (k + 1) cur next
    end
  in
  if n = 0 then [| 1. |] else go 1 [| 1. |] [| 0.; 1. |]
