(** Normalized probabilists' Hermite polynomials.

    These are the 1-D building blocks of the paper's basis (Section II,
    eq. (3)): polynomials [He_n] orthogonal under the standard normal
    weight, normalized so that [E[gᵢ(y)·gⱼ(y)] = δᵢⱼ] for [y ~ N(0,1)].

    The normalized family is [g_n(y) = He_n(y)/√(n!)]:
    [g_0 = 1], [g_1 = y], [g_2 = (y² − 1)/√2], [g_3 = (y³ − 3y)/√6], … *)

val eval : int -> float -> float
(** [eval n y] is the normalized polynomial [g_n(y)].
    Computed by the stable three-term recurrence
    [g_{n+1} = (y·g_n − √n·g_{n-1})/√(n+1)].
    @raise Invalid_argument for negative [n]. *)

val eval_all : int -> float -> float array
(** [eval_all n y] is [| g_0(y); …; g_n(y) |] in one recurrence pass. *)

val eval_all_into : float array -> pos:int -> deg:int -> float -> unit
(** [eval_all_into out ~pos ~deg y] writes [g_0(y) … g_deg(y)] into
    [out.(pos) … out.(pos + deg)] by the same recurrence as {!eval_all}
    — the shared primitive behind {!Basis.fill_tables} and the compiled
    evaluator tapes of [Serve.Eval], which pack the per-variable tables
    of several variables into one flat buffer. Values are bitwise equal
    to {!eval} at every degree.
    @raise Invalid_argument for negative [deg]. *)

val unnormalized : int -> float -> float
(** [unnormalized n y] is the classical probabilists' [He_n(y)]
    ([He_2 = y² − 1], no 1/√n! factor). *)

val coefficients : int -> float array
(** [coefficients n] is the monomial coefficient vector of [He_n]:
    entry [k] multiplies [y^k]. Exact in float for moderate [n]. *)
