open Linalg

let matrix_rows ?pool b samples =
  let k = Array.length samples in
  let m = Basis.size b in
  let g = Mat.create k m in
  if k > 0 then begin
    Array.iter
      (fun s ->
        if Array.length s <> Basis.dim b then
          invalid_arg "Design.matrix_rows: sample dimension mismatch")
      samples;
    let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
    (* Row-parallel: each chunk owns a disjoint row block of [g] and its
       own Hermite scratch tables, so rows are evaluated exactly as in a
       sequential loop — the result is bitwise identical for every
       domain count. *)
    if Basis.dim b = 0 then
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
          for j = 0 to m - 1 do
            Mat.unsafe_set g i j (Term.eval (Basis.term b j) samples.(i))
          done)
    else
      Parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:k (fun ~lo ~hi ->
          let tbl = Basis.make_tables b in
          for i = lo to hi - 1 do
            Basis.fill_tables b tbl samples.(i);
            for j = 0 to m - 1 do
              Mat.unsafe_set g i j (Term.eval_tables (Basis.term b j) tbl)
            done
          done)
  end;
  g

let matrix ?pool b samples =
  if Mat.cols samples <> Basis.dim b then
    invalid_arg "Design.matrix: sample dimension mismatch";
  matrix_rows ?pool b (Array.init (Mat.rows samples) (fun i -> Mat.row samples i))

let row = Basis.eval_point

let column_norms g =
  let k = Mat.rows g and m = Mat.cols g in
  let out = Array.make m 0. in
  for i = 0 to k - 1 do
    for j = 0 to m - 1 do
      let v = Mat.unsafe_get g i j in
      out.(j) <- out.(j) +. (v *. v)
    done
  done;
  Array.map sqrt out
