open Linalg

let matrix_rows ?pool b samples =
  let k = Array.length samples in
  let m = Basis.size b in
  let g = Mat.create k m in
  if k > 0 then begin
    Array.iter
      (fun s ->
        if Array.length s <> Basis.dim b then
          invalid_arg "Design.matrix_rows: sample dimension mismatch")
      samples;
    let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
    (* Row-parallel: each chunk owns a disjoint row block of [g] and its
       own Hermite scratch tables, so rows are evaluated exactly as in a
       sequential loop — the result is bitwise identical for every
       domain count. *)
    (* Per-row work is one term evaluation per column; the grain keeps
       tiny designs on the sequential path. *)
    let grain = Parallel.Pool.grain_for ~work:m in
    if Basis.dim b = 0 then
      Parallel.Pool.parallel_for pool ~grain ~lo:0 ~hi:k (fun i ->
          for j = 0 to m - 1 do
            Mat.unsafe_set g i j (Term.eval (Basis.term b j) samples.(i))
          done)
    else
      Parallel.Pool.parallel_for_chunks pool ~grain ~lo:0 ~hi:k (fun ~lo ~hi ->
          let tbl = Basis.make_tables b in
          for i = lo to hi - 1 do
            Basis.fill_tables b tbl samples.(i);
            for j = 0 to m - 1 do
              Mat.unsafe_set g i j (Term.eval_tables (Basis.term b j) tbl)
            done
          done)
  end;
  g

let matrix ?pool b samples =
  if Mat.cols samples <> Basis.dim b then
    invalid_arg "Design.matrix: sample dimension mismatch";
  matrix_rows ?pool b (Array.init (Mat.rows samples) (fun i -> Mat.row samples i))

let row = Basis.eval_point

let column_norms ?pool g =
  let k = Mat.rows g and m = Mat.cols g in
  let out = Array.make m 0. in
  if k > 0 && m > 0 then begin
    let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
    (* Column-chunked; each column's sum of squares is accumulated over
       rows in ascending order, so the result is bitwise identical to
       the sequential double loop for every domain count. *)
    Parallel.Pool.parallel_for_chunks pool
      ~grain:(Parallel.Pool.grain_for ~work:k) ~lo:0 ~hi:m (fun ~lo ~hi ->
        let data = g.Mat.data in
        for i = 0 to k - 1 do
          let base = i * m in
          for j = lo to hi - 1 do
            let v = Array.unsafe_get data (base + j) in
            Array.unsafe_set out j (Array.unsafe_get out j +. (v *. v))
          done
        done)
  end;
  Array.map sqrt out

module Provider = struct
  (* A compiled term: per-column offsets into the transposed Hermite
     value table, so the hot sweep dispatches once per column and the
     row loop is pure float loads. The offset of (variable v, degree d)
     is the base of the contiguous length-K slice holding g_d(Δy_v) for
     every sample. *)
  type cterm =
    | Const
    | Single of int
    | Pair of int * int
    | Many of int array

  type streamed = {
    basis : Basis.t;
    samples : Vec.t array;
    sk : int;  (* rows K *)
    sm : int;  (* columns M *)
    (* vtab.((v·ord1 + d)·K + i) = g_d(samples.(i).(v)): K·N·(order+1)
       floats, independent of M — the whole point of the provider. *)
    vtab : float array;
    cterms : cterm array;
    tile : int;
    (* Reusable scratch buffers (per-length free lists) checked out by
       sweep chunks and column materializations, so steady-state sweeps
       allocate nothing per iteration. *)
    scratch : (int, float array Stack.t) Hashtbl.t;
    lock : Mutex.t;
  }

  type t = Dense of Mat.t | Streamed of streamed

  let default_tile_cols = 256

  (* The same three-term recurrence as [Basis.fill_tables], evaluated
     slice-by-slice: bitwise-identical Hermite values, laid out with the
     sample index innermost so per-column sweeps read contiguously. *)
  let build_vtab b samples k =
    let n = Basis.dim b in
    let ord1 = Basis.max_degree b + 1 in
    let vtab = Array.make (n * ord1 * k) 0. in
    for v = 0 to n - 1 do
      let base = v * ord1 * k in
      for i = 0 to k - 1 do
        Array.unsafe_set vtab (base + i) 1.
      done;
      if ord1 >= 2 then
        for i = 0 to k - 1 do
          Array.unsafe_set vtab (base + k + i) samples.(i).(v)
        done;
      for d = 1 to ord1 - 2 do
        let fd = float_of_int d in
        let sd = sqrt fd and sd1 = sqrt (fd +. 1.) in
        let prev = base + (d * k)
        and prev2 = base + ((d - 1) * k)
        and cur = base + ((d + 1) * k) in
        for i = 0 to k - 1 do
          let y = samples.(i).(v) in
          Array.unsafe_set vtab (cur + i)
            (((y *. Array.unsafe_get vtab (prev + i))
             -. (sd *. Array.unsafe_get vtab (prev2 + i)))
            /. sd1)
        done
      done
    done;
    vtab

  let compile_terms b k =
    let ord1 = Basis.max_degree b + 1 in
    let off (v, d) = ((v * ord1) + d) * k in
    Array.init (Basis.size b) (fun j ->
        match Basis.term b j with
        | [||] -> Const
        | [| p |] -> Single (off p)
        | [| p; q |] -> Pair (off p, off q)
        | pairs -> Many (Array.map off pairs))

  let dense g = Dense g

  let streamed ?(tile_cols = default_tile_cols) b samples =
    if tile_cols < 1 then
      invalid_arg "Design.Provider.streamed: tile_cols must be positive";
    Array.iter
      (fun s ->
        if Array.length s <> Basis.dim b then
          invalid_arg "Design.Provider.streamed: sample dimension mismatch")
      samples;
    let k = Array.length samples in
    Streamed
      {
        basis = b;
        samples;
        sk = k;
        sm = Basis.size b;
        vtab = build_vtab b samples k;
        cterms = compile_terms b k;
        tile = tile_cols;
        scratch = Hashtbl.create 4;
        lock = Mutex.create ();
      }

  let rows = function Dense g -> Mat.rows g | Streamed s -> s.sk

  let cols = function Dense g -> Mat.cols g | Streamed s -> s.sm

  let tile_cols = function
    | Dense _ -> default_tile_cols
    | Streamed s -> s.tile

  let is_streamed = function Dense _ -> false | Streamed _ -> true

  let acquire s len =
    Mutex.lock s.lock;
    let buf =
      match Hashtbl.find_opt s.scratch len with
      | Some st when not (Stack.is_empty st) -> Some (Stack.pop st)
      | _ -> None
    in
    Mutex.unlock s.lock;
    match buf with Some b -> b | None -> Array.make len 0.

  let release s buf =
    let len = Array.length buf in
    Mutex.lock s.lock;
    let st =
      match Hashtbl.find_opt s.scratch len with
      | Some st -> st
      | None ->
          let st = Stack.create () in
          Hashtbl.add s.scratch len st;
          st
    in
    Stack.push buf st;
    Mutex.unlock s.lock

  (* --- streamed per-column kernels --------------------------------- *)

  (* Column inner products ⟨g_j, r⟩ for j ∈ [lo, hi), written to
     out.(off + j − lo). Each column is generated on the fly from the
     Hermite slices and accumulated whole, over rows in ascending order
     — bitwise the dots a dense sweep produces on the materialized
     matrix. The per-column dispatch is hoisted out of the row loop. *)
  let dots_block s r out ~lo ~hi ~off =
    let k = s.sk in
    let vt = s.vtab in
    for j = lo to hi - 1 do
      let acc = ref 0. in
      (match Array.unsafe_get s.cterms j with
      | Const ->
          for i = 0 to k - 1 do
            acc := !acc +. Array.unsafe_get r i
          done
      | Single o ->
          for i = 0 to k - 1 do
            acc :=
              !acc +. (Array.unsafe_get vt (o + i) *. Array.unsafe_get r i)
          done
      | Pair (o1, o2) ->
          for i = 0 to k - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get vt (o1 + i)
                  *. Array.unsafe_get vt (o2 + i)
                 *. Array.unsafe_get r i)
          done
      | Many offs ->
          for i = 0 to k - 1 do
            let e = ref 1. in
            Array.iter (fun o -> e := !e *. Array.unsafe_get vt (o + i)) offs;
            acc := !acc +. (!e *. Array.unsafe_get r i)
          done);
      out.(off + j - lo) <- !acc
    done

  let entry s j i =
    match s.cterms.(j) with
    | Const -> 1.
    | Single o -> Array.unsafe_get s.vtab (o + i)
    | Pair (o1, o2) ->
        Array.unsafe_get s.vtab (o1 + i) *. Array.unsafe_get s.vtab (o2 + i)
    | Many offs ->
        let e = ref 1. in
        Array.iter (fun o -> e := !e *. Array.unsafe_get s.vtab (o + i)) offs;
        !e

  let check_col name p j =
    if j < 0 || j >= cols p then
      invalid_arg (Printf.sprintf "Design.Provider.%s: column out of bounds" name)

  let column_into p j buf =
    check_col "column_into" p j;
    if Array.length buf <> rows p then
      invalid_arg "Design.Provider.column_into: buffer length mismatch";
    match p with
    | Dense g ->
        for i = 0 to Mat.rows g - 1 do
          buf.(i) <- Mat.unsafe_get g i j
        done
    | Streamed s ->
        for i = 0 to s.sk - 1 do
          buf.(i) <- entry s j i
        done

  let column p j =
    let buf = Array.make (rows p) 0. in
    column_into p j buf;
    buf

  let col_dot p j x =
    check_col "col_dot" p j;
    if Array.length x <> rows p then
      invalid_arg "Design.Provider.col_dot: length mismatch";
    match p with
    | Dense g -> Mat.col_dot g j x
    | Streamed s ->
        let out = [| 0. |] in
        dots_block s x out ~lo:j ~hi:(j + 1) ~off:0;
        out.(0)

  let col_col_dot p i j =
    check_col "col_col_dot" p i;
    check_col "col_col_dot" p j;
    match p with
    | Dense g -> Mat.col_col_dot g i j
    | Streamed s ->
        let bi = acquire s s.sk and bj = acquire s s.sk in
        column_into p i bi;
        column_into p j bj;
        let d = Vec.dot bi bj in
        release s bi;
        release s bj;
        d

  let to_dense ?pool = function
    | Dense g -> g
    | Streamed s -> matrix_rows ?pool s.basis s.samples

  (* A column-range view [jlo, jhi) of the provider, reindexed to
     local columns 0 … jhi−jlo−1 — the per-shard unit of the sharded
     sweep engine. Streamed windows share the parent's Hermite value
     table (it is K·N·(order+1) floats, independent of M) and slice the
     compiled terms, so creating S windows costs O(M) pointer copies,
     not S rebuilds; their basis is sliced accordingly so [to_dense] /
     [select_rows] on a window stay consistent. Column j of the window
     is generated by exactly the float sequence that produces column
     [jlo + j] of the parent, so every window kernel is bitwise equal
     to the corresponding slice of a full-provider kernel. *)
  let window p ~jlo ~jhi =
    if jlo < 0 || jhi > cols p || jlo >= jhi then
      invalid_arg "Design.Provider.window: column range out of bounds";
    let w = jhi - jlo in
    match p with
    | Dense g ->
        let k = Mat.rows g in
        let out = Mat.create k w in
        for i = 0 to k - 1 do
          for dj = 0 to w - 1 do
            Mat.unsafe_set out i dj (Mat.unsafe_get g i (jlo + dj))
          done
        done;
        Dense out
    | Streamed s ->
        let terms = Array.init w (fun dj -> Basis.term s.basis (jlo + dj)) in
        Streamed
          {
            s with
            basis = Basis.create (Basis.dim s.basis) terms;
            sm = w;
            cterms = Array.sub s.cterms jlo w;
            scratch = Hashtbl.create 4;
            lock = Mutex.create ();
          }

  (* The provider's construction recipe, for shipping a window to
     another process: a streamed provider is (basis, samples) — the
     receiver rebuilds bitwise-identical Hermite tables from them — and
     a dense one is its matrix. *)
  let spec = function
    | Dense g -> `Dense g
    | Streamed s -> `Streamed (s.basis, s.samples)

  let select_rows p idx =
    match p with
    | Dense g -> Dense (Mat.select_rows g idx)
    | Streamed s ->
        Array.iter
          (fun i ->
            if i < 0 || i >= s.sk then
              invalid_arg "Design.Provider.select_rows: row out of bounds")
          idx;
        streamed ~tile_cols:s.tile s.basis
          (Array.map (fun i -> s.samples.(i)) idx)

  (* Materialize the column block [jlo, jhi) into a reusable K×B tile
     (row-major within the block). This is the bounded-memory unit every
     dense-output path works in: at most K·tile_cols floats live at once
     per consumer, never K·M. *)
  let with_tile p ~jlo ~jhi f =
    if jlo < 0 || jhi > cols p || jlo > jhi then
      invalid_arg "Design.Provider.with_tile: block out of bounds";
    let k = rows p in
    let w = jhi - jlo in
    match p with
    | Dense g ->
        let tile = Array.make (max 1 (k * w)) 0. in
        for i = 0 to k - 1 do
          let base = i * w in
          for dj = 0 to w - 1 do
            Array.unsafe_set tile (base + dj) (Mat.unsafe_get g i (jlo + dj))
          done
        done;
        f tile
    | Streamed s ->
        let tile = acquire s (max 1 (k * w)) in
        for dj = 0 to w - 1 do
          let j = jlo + dj in
          for i = 0 to k - 1 do
            Array.unsafe_set tile ((i * w) + dj) (entry s j i)
          done
        done;
        Fun.protect ~finally:(fun () -> release s tile) (fun () -> f tile)

  let columns p idx =
    let k = rows p in
    let out = Mat.create k (Array.length idx) in
    let buf = Array.make k 0. in
    Array.iteri
      (fun q j ->
        column_into p j buf;
        for i = 0 to k - 1 do
          Mat.unsafe_set out i q buf.(i)
        done)
      idx;
    out

  (* --- the blocked correlation sweeps ------------------------------ *)

  let check_r p r =
    if Array.length r <> rows p then
      invalid_arg "Design.Provider: residual length mismatch"

  (* Dense partial sweep: accumulate the [lo, hi) block of Gᵀ·r into
     [out], rows outermost so the row-major matrix streams through
     cache, with the column loop unrolled 4-wide (each column still
     accumulates over rows in ascending order — same bits as
     [Mat.col_dot], the unroll only interleaves independent columns). *)
  let dense_sweep_block g r out ~lo ~hi =
    let k = Mat.rows g and m = Mat.cols g in
    let data = g.Mat.data in
    for i = 0 to k - 1 do
      let base = i * m in
      let ri = Array.unsafe_get r i in
      let j = ref lo in
      while !j + 4 <= hi do
        let j0 = !j in
        Array.unsafe_set out j0
          (Array.unsafe_get out j0
          +. (Array.unsafe_get data (base + j0) *. ri));
        Array.unsafe_set out (j0 + 1)
          (Array.unsafe_get out (j0 + 1)
          +. (Array.unsafe_get data (base + j0 + 1) *. ri));
        Array.unsafe_set out (j0 + 2)
          (Array.unsafe_get out (j0 + 2)
          +. (Array.unsafe_get data (base + j0 + 2) *. ri));
        Array.unsafe_set out (j0 + 3)
          (Array.unsafe_get out (j0 + 3)
          +. (Array.unsafe_get data (base + j0 + 3) *. ri));
        j := j0 + 4
      done;
      while !j < hi do
        Array.unsafe_set out !j
          (Array.unsafe_get out !j
          +. (Array.unsafe_get data (base + !j) *. ri));
        incr j
      done
    done

  let gram_tr ?pool p r =
    check_r p r;
    let m = cols p in
    let out = Array.make m 0. in
    let pool = match pool with Some q -> q | None -> Parallel.Pool.default () in
    let grain = Parallel.Pool.grain_for ~work:(rows p) in
    (match p with
    | Dense g ->
        Parallel.Pool.parallel_for_chunks pool ~grain ~lo:0 ~hi:m
          (fun ~lo ~hi -> dense_sweep_block g r out ~lo ~hi)
    | Streamed s ->
        Parallel.Pool.parallel_for_chunks pool ~grain ~lo:0 ~hi:m
          (fun ~lo ~hi -> dots_block s r out ~lo ~hi ~off:lo));
    out

  let scan_argmax dots skip ~lo ~hi =
    let best = ref (-1) and best_abs = ref 0. in
    for j = lo to hi - 1 do
      if not skip.(j) then begin
        let c = Float.abs dots.(j - lo) in
        if c > !best_abs then begin
          best := j;
          best_abs := c
        end
      end
    done;
    (!best, !best_abs)

  let argmax_abs ?pool ~skip p r =
    check_r p r;
    let m = cols p in
    if Array.length skip <> m then
      invalid_arg "Design.Provider.argmax_abs: skip length mismatch";
    let pool = match pool with Some q -> q | None -> Parallel.Pool.default () in
    Parallel.Pool.parallel_reduce pool ?chunks:None
      ~grain:(Parallel.Pool.grain_for ~work:(rows p)) ~lo:0 ~hi:m
      ~init:(-1, 0.)
      ~fold:(fun ~lo ~hi ->
        match p with
        | Dense g ->
            (* Per-chunk dots buffer indexed from 0; each column still
               accumulates over rows in ascending order. *)
            let dots = Array.make (hi - lo) 0. in
            let k = Mat.rows g and mm = Mat.cols g in
            let data = g.Mat.data in
            for i = 0 to k - 1 do
              let base = (i * mm) + lo in
              let ri = Array.unsafe_get r i in
              for j = 0 to hi - lo - 1 do
                Array.unsafe_set dots j
                  (Array.unsafe_get dots j
                  +. (Array.unsafe_get data (base + j) *. ri))
              done
            done;
            scan_argmax dots skip ~lo ~hi
        | Streamed s ->
            let dots = acquire s (hi - lo) in
            dots_block s r dots ~lo ~hi ~off:0;
            let result = scan_argmax dots skip ~lo ~hi in
            release s dots;
            result)
      ~combine:(fun (ja, ca) (jb, cb) ->
        (* Strict > keeps the earlier chunk's winner on exact ties — the
           same column a sequential left-to-right scan would pick. *)
        if cb > ca then (jb, cb) else (ja, ca))

  (* --- fused multi-residual sweeps --------------------------------- *)

  (* The fold-parallel CV bottleneck on streamed providers is column
     *generation*: Q folds each regenerate every Hermite column per
     step. The multi kernels generate (or read) each column exactly once
     and dot it against all Q fold residuals, so generation is paid once
     per step instead of once per fold.

     Bitwise contract: fold row sets are strictly ascending, so for each
     fold the dot accumulates over exactly the rows (in the same order)
     that a sweep over [select_rows p rows.(q)] would visit, and the
     per-term product order matches [dots_block] / [entry]. The fused
     result is therefore bitwise identical to Q independent sweeps. *)

  let multi_check name p fold_rows rs =
    let nq = Array.length rs in
    if nq = 0 then
      invalid_arg (Printf.sprintf "Design.Provider.%s: no residuals" name);
    if Array.length fold_rows <> nq then
      invalid_arg
        (Printf.sprintf
           "Design.Provider.%s: fold row sets / residuals count mismatch" name);
    let k = rows p in
    Array.iteri
      (fun q idx ->
        if Array.length rs.(q) <> Array.length idx then
          invalid_arg
            (Printf.sprintf "Design.Provider.%s: residual length mismatch" name);
        let prev = ref (-1) in
        Array.iter
          (fun i ->
            if i <= !prev || i >= k then
              invalid_arg
                (Printf.sprintf
                   "Design.Provider.%s: fold rows must be strictly \
                    ascending and in range"
                   name);
            prev := i)
          idx)
      fold_rows

  (* Streamed block: materialize column j once into a K-length scratch
     buffer, then one ascending-row dot per fold against its residual.
     Const columns skip materialization and sum the residual directly —
     the exact float sequence [dots_block] produces for them. *)
  let multi_block_streamed s fold_rows rs ~lo ~hi ~emit =
    let k = s.sk in
    let vt = s.vtab in
    let nq = Array.length rs in
    let buf = acquire s (max 1 k) in
    for j = lo to hi - 1 do
      let ct = Array.unsafe_get s.cterms j in
      (match ct with
      | Const -> ()
      | Single o ->
          for i = 0 to k - 1 do
            Array.unsafe_set buf i (Array.unsafe_get vt (o + i))
          done
      | Pair (o1, o2) ->
          for i = 0 to k - 1 do
            Array.unsafe_set buf i
              (Array.unsafe_get vt (o1 + i) *. Array.unsafe_get vt (o2 + i))
          done
      | Many offs ->
          for i = 0 to k - 1 do
            let e = ref 1. in
            Array.iter (fun o -> e := !e *. Array.unsafe_get vt (o + i)) offs;
            Array.unsafe_set buf i !e
          done);
      for q = 0 to nq - 1 do
        let idx = Array.unsafe_get fold_rows q in
        let r = Array.unsafe_get rs q in
        let n = Array.length r in
        let acc = ref 0. in
        (match ct with
        | Const ->
            for i = 0 to n - 1 do
              acc := !acc +. Array.unsafe_get r i
            done
        | _ ->
            for i = 0 to n - 1 do
              acc :=
                !acc
                +. (Array.unsafe_get buf (Array.unsafe_get idx i)
                   *. Array.unsafe_get r i)
            done);
        emit q j !acc
      done
    done;
    release s buf

  (* Dense block: read each stored column once per fold via direct
     row-major indexing — same ascending-row accumulation. *)
  let multi_block_dense g fold_rows rs ~lo ~hi ~emit =
    let m = Mat.cols g in
    let data = g.Mat.data in
    let nq = Array.length rs in
    for j = lo to hi - 1 do
      for q = 0 to nq - 1 do
        let idx = Array.unsafe_get fold_rows q in
        let r = Array.unsafe_get rs q in
        let n = Array.length r in
        let acc = ref 0. in
        for i = 0 to n - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get data ((Array.unsafe_get idx i * m) + j)
               *. Array.unsafe_get r i)
        done;
        emit q j !acc
      done
    done

  let gram_tr_multi ?pool p ~rows:fold_rows rs =
    multi_check "gram_tr_multi" p fold_rows rs;
    let m = cols p in
    let nq = Array.length rs in
    let outs = Array.init nq (fun _ -> Array.make m 0.) in
    let pool = match pool with Some q -> q | None -> Parallel.Pool.default () in
    Parallel.Pool.parallel_for_chunks pool
      ~grain:(Parallel.Pool.grain_for ~work:(rows p * (nq + 1)))
      ~lo:0 ~hi:m
      (fun ~lo ~hi ->
        let emit q j acc = outs.(q).(j) <- acc in
        match p with
        | Dense g -> multi_block_dense g fold_rows rs ~lo ~hi ~emit
        | Streamed s -> multi_block_streamed s fold_rows rs ~lo ~hi ~emit);
    outs

  let argmax_abs_multi ?pool ~skips p ~rows:fold_rows rs =
    multi_check "argmax_abs_multi" p fold_rows rs;
    let m = cols p in
    let nq = Array.length rs in
    if Array.length skips <> nq then
      invalid_arg "Design.Provider.argmax_abs_multi: skip mask count mismatch";
    Array.iter
      (fun sk ->
        if Array.length sk <> m then
          invalid_arg "Design.Provider.argmax_abs_multi: skip length mismatch")
      skips;
    let pool = match pool with Some q -> q | None -> Parallel.Pool.default () in
    Parallel.Pool.parallel_reduce pool ?chunks:None
      ~grain:(Parallel.Pool.grain_for ~work:(rows p * (nq + 1)))
      ~lo:0 ~hi:m
      ~init:(Array.make nq (-1, 0.))
      ~fold:(fun ~lo ~hi ->
        let best = Array.make nq (-1, 0.) in
        let emit q j acc =
          if not (Array.unsafe_get skips.(q) j) then begin
            let c = Float.abs acc in
            let _, b = best.(q) in
            if c > b then best.(q) <- (j, c)
          end
        in
        (match p with
        | Dense g -> multi_block_dense g fold_rows rs ~lo ~hi ~emit
        | Streamed s -> multi_block_streamed s fold_rows rs ~lo ~hi ~emit);
        best)
      ~combine:(fun a b ->
        (* Strict > per fold keeps the earlier chunk's winner on exact
           ties — same rule as the single-residual [argmax_abs]. *)
        Array.init nq (fun q ->
            let (_, ca) as xa = a.(q) and (_, cb) as xb = b.(q) in
            if cb > ca then xb else xa))

  let column_norms ?pool p =
    match p with
    | Dense g -> column_norms ?pool g
    | Streamed s ->
        let out = Array.make s.sm 0. in
        let pool =
          match pool with Some q -> q | None -> Parallel.Pool.default ()
        in
        Parallel.Pool.parallel_for_chunks pool
          ~grain:(Parallel.Pool.grain_for ~work:s.sk) ~lo:0 ~hi:s.sm
          (fun ~lo ~hi ->
            for j = lo to hi - 1 do
              let acc = ref 0. in
              for i = 0 to s.sk - 1 do
                let v = entry s j i in
                acc := !acc +. (v *. v)
              done;
              out.(j) <- sqrt !acc
            done);
        out

  module Cache = struct
    type provider = t

    type t = { src : provider; tbl : (int, Vec.t) Hashtbl.t }

    let create src = { src; tbl = Hashtbl.create 64 }

    let column c j =
      match Hashtbl.find_opt c.tbl j with
      | Some col -> col
      | None ->
          let col = column c.src j in
          Hashtbl.add c.tbl j col;
          col

    let col_dot c j x = Vec.dot (column c j) x

    let col_col_dot c i j = Vec.dot (column c i) (column c j)
  end
end
