(** Design-matrix assembly.

    Builds the matrix [G] of eq. (6)–(8): [G(k, m) = g_m(ΔY^{(k)})] for
    [K] sample rows and [M] basis functions. For the paper's large cases
    the dense matrix is the dominant memory cost (e.g. 1000 × 21 311 ≈
    170 MB), so two forms exist: the materialized [Mat.t] built here,
    and the matrix-free {!Provider} that streams column blocks on demand
    from per-sample Hermite tables (peak memory [O(K·B)] scratch plus
    [O(K·N·(order+1))] tables, independent of [M]). *)

val matrix : ?pool:Parallel.Pool.t -> Basis.t -> Linalg.Mat.t -> Linalg.Mat.t
(** [matrix b samples] for [samples] of shape [K×N] is the [K×M] design
    matrix. Rows are evaluated in parallel over [pool] (default: the
    shared {!Parallel.Pool.default} pool); each chunk fills a disjoint
    row block from its own Hermite tables, so the result is bitwise
    identical to the sequential evaluation for every domain count.
    @raise Invalid_argument when [N ≠ Basis.dim b]. *)

val matrix_rows :
  ?pool:Parallel.Pool.t -> Basis.t -> Linalg.Vec.t array -> Linalg.Mat.t
(** Same, from an array of sample vectors; identical parallelism and
    determinism guarantee as {!matrix}. *)

val row : Basis.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [row b dy] is one design row (alias of [Basis.eval_point]). *)

val column_norms : ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t
(** Euclidean norm of every column — used by LAR's normalization and to
    sanity-check conditioning of the sampled dictionary. Columns are
    chunked over [pool]; each column's sum of squares accumulates over
    rows in ascending order, so the result is bitwise identical to the
    sequential loop for every domain count. *)

(** A design-matrix source the solvers consume without knowing whether
    the matrix is materialized.

    [Dense] wraps an existing [Mat.t]. [Streamed] generates any column
    on demand from cached 1-D Hermite value tables — [K·N·(order+1)]
    floats built once per fit by the same three-term recurrence as
    {!Basis.fill_tables}, laid out sample-innermost so per-column sweeps
    read contiguous memory. Every term is pre-compiled to absolute
    table offsets, so the correlation sweep's inner loop is pure float
    loads and multiplies.

    {b Bitwise contract}: every streamed entry equals the dense entry
    produced by {!matrix_rows} bit for bit (same recurrence, same
    product order as [Term.eval_tables]), and every kernel below
    accumulates whole columns over rows in ascending order. Dense and
    streamed providers therefore yield bitwise-identical sweeps, norms,
    dots — and hence identical solver paths — at every domain count. *)
module Provider : sig
  type t

  val dense : Linalg.Mat.t -> t
  (** Wrap a materialized design matrix; all kernels delegate to the
      existing dense implementations. *)

  val streamed : ?tile_cols:int -> Basis.t -> Linalg.Vec.t array -> t
  (** [streamed b samples] is the matrix-free provider for the design
      matrix {!matrix_rows}[ b samples], built without materializing
      it. [tile_cols] (default 256) bounds the width of column blocks
      materialized at a time by {!with_tile} and consumers that batch
      columns; it does not affect results.
      @raise Invalid_argument on sample-dimension mismatch or
      non-positive [tile_cols]. *)

  val rows : t -> int
  (** Sample count [K]. *)

  val cols : t -> int
  (** Basis-function count [M]. *)

  val tile_cols : t -> int

  val is_streamed : t -> bool

  val to_dense : ?pool:Parallel.Pool.t -> t -> Linalg.Mat.t
  (** The full [K×M] matrix. Free for [Dense]; materializes (via
      {!matrix_rows}) for [Streamed] — only call this on paths that
      genuinely need the dense form. *)

  val select_rows : t -> int array -> t
  (** Row-subset provider (the CV folds). [Dense] gathers rows;
      [Streamed] rebuilds the Hermite tables over the sample subset —
      bitwise identical to gathering rows of the materialized matrix. *)

  val column : t -> int -> Linalg.Vec.t
  (** [column p j] is a fresh copy of column [j]. *)

  val column_into : t -> int -> Linalg.Vec.t -> unit
  (** [column_into p j buf] writes column [j] into the caller's reusable
      [K]-length buffer. *)

  val columns : t -> int array -> Linalg.Mat.t
  (** [columns p idx] materializes the listed columns as a small
      [K×|idx|] matrix (the active-set cache of the matrix-free
      solvers). *)

  val col_dot : t -> int -> Linalg.Vec.t -> float
  (** [col_dot p j x] is [⟨column j, x⟩], rows ascending — bitwise
      [Mat.col_dot] on the dense form. *)

  val col_col_dot : t -> int -> int -> float
  (** [⟨column i, column j⟩] — bitwise [Mat.col_col_dot] on the dense
      form. *)

  val with_tile : t -> jlo:int -> jhi:int -> (float array -> 'a) -> 'a
  (** [with_tile p ~jlo ~jhi f] materializes the column block
      [jlo, jhi) into a reusable row-major [K×(jhi−jlo)] scratch tile
      and applies [f]. The tile is recycled after [f] returns; do not
      retain it. This is the bounded-memory unit for dense-block
      consumers: at most [K·tile_cols] floats live per consumer. *)

  val column_norms : ?pool:Parallel.Pool.t -> t -> Linalg.Vec.t
  (** Euclidean norm of every column; bitwise equal to
      {!column_norms} of the dense form at every domain count. *)

  val gram_tr : ?pool:Parallel.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t
  (** [gram_tr p r] is the full correlation sweep [Gᵀ·r] (OMP step 3 /
      LAR step 2), column-chunked over [pool]. Streamed providers fuse
      generation into the dot product — each column is never stored.
      Bitwise identical dense vs streamed at every domain count. *)

  val argmax_abs :
    ?pool:Parallel.Pool.t -> skip:bool array -> t -> Linalg.Vec.t -> int * float
  (** [argmax_abs ~skip p r] is [(j*, |⟨g_{j*}, r⟩|)] over columns with
      [skip.(j) = false], or [(-1, 0.)] when all are skipped. Ties keep
      the lowest column index (strict [>] scan; earlier chunk wins the
      combine), matching a sequential left-to-right scan. *)

  val gram_tr_multi :
    ?pool:Parallel.Pool.t ->
    t ->
    rows:int array array ->
    Linalg.Vec.t array ->
    Linalg.Vec.t array
  (** [gram_tr_multi p ~rows rs] is the fused multi-residual sweep: for
      each fold [q], the correlation vector
      [gram_tr (select_rows p rows.(q)) rs.(q)] — but every column is
      generated (streamed) or read (dense) exactly {e once} and dotted
      against all Q fold residuals, so matrix-free CV pays column
      generation once per step instead of once per fold. Each fold's
      dots accumulate over its rows in ascending order, so the result is
      bitwise identical to the Q independent sweeps at every domain
      count. Row sets must be strictly ascending (what
      {!Stat.Crossval.fold_indices} produces).
      @raise Invalid_argument on empty input, count/length mismatches,
      or non-ascending/out-of-range rows. *)

  val argmax_abs_multi :
    ?pool:Parallel.Pool.t ->
    skips:bool array array ->
    t ->
    rows:int array array ->
    Linalg.Vec.t array ->
    (int * float) array
  (** [argmax_abs_multi ~skips p ~rows rs] is per-fold
      {!argmax_abs}[ ~skip:skips.(q) (select_rows p rows.(q)) rs.(q)]
      with the same single-generation fusion and the same bitwise
      guarantee as {!gram_tr_multi} (strict [>], earlier chunk wins
      ties). This is the selection kernel of the fused lockstep CV
      driver in [Rsm.Select]. *)

  (** Per-fit cache of materialized active-set columns. The greedy
      solvers touch a few hundred columns out of up to ~10⁵; caching
      them (K floats each) keeps the active-set work (cross products,
      re-fit residuals, direction updates) dense-speed without the full
      matrix. Not thread-safe — one cache per solver invocation. *)
  module Cache : sig
    type provider := t

    type t

    val create : provider -> t

    val column : t -> int -> Linalg.Vec.t
    (** Materialize-once copy of column [j]; later calls return the same
        array. Treat it as read-only. *)

    val col_dot : t -> int -> Linalg.Vec.t -> float
    (** [Vec.dot] of the cached column against [x] — bitwise
        {!Provider.col_dot}. *)

    val col_col_dot : t -> int -> int -> float
    (** [Vec.dot] of two cached columns — bitwise
        {!Provider.col_col_dot}. *)
  end
end
