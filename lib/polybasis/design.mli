(** Design-matrix assembly.

    Builds the matrix [G] of eq. (6)–(8): [G(k, m) = g_m(ΔY^{(k)})] for
    [K] sample rows and [M] basis functions. This is the object every
    solver consumes; for the paper's large cases it is the dominant
    memory cost (e.g. 1000 × 21 311 ≈ 170 MB), so rows are filled in
    place from reusable per-variable Hermite tables. *)

val matrix : ?pool:Parallel.Pool.t -> Basis.t -> Linalg.Mat.t -> Linalg.Mat.t
(** [matrix b samples] for [samples] of shape [K×N] is the [K×M] design
    matrix. Rows are evaluated in parallel over [pool] (default: the
    shared {!Parallel.Pool.default} pool); each chunk fills a disjoint
    row block from its own Hermite tables, so the result is bitwise
    identical to the sequential evaluation for every domain count.
    @raise Invalid_argument when [N ≠ Basis.dim b]. *)

val matrix_rows :
  ?pool:Parallel.Pool.t -> Basis.t -> Linalg.Vec.t array -> Linalg.Mat.t
(** Same, from an array of sample vectors; identical parallelism and
    determinism guarantee as {!matrix}. *)

val row : Basis.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [row b dy] is one design row (alias of [Basis.eval_point]). *)

val column_norms : Linalg.Mat.t -> Linalg.Vec.t
(** Euclidean norm of every column — used to sanity-check conditioning
    of the sampled dictionary. *)
