type t = { dim : int; terms : Term.t array }

let create dim terms =
  if dim < 0 then invalid_arg "Basis.create: negative dimension";
  Array.iter
    (fun t ->
      if Term.max_var t >= dim then
        invalid_arg "Basis.create: term variable exceeds dimension")
    terms;
  { dim; terms }

let size b = Array.length b.terms

let dim b = b.dim

let term b m =
  if m < 0 || m >= Array.length b.terms then
    invalid_arg "Basis.term: index out of range";
  b.terms.(m)

let constant_linear n =
  if n < 0 then invalid_arg "Basis.constant_linear: negative dimension";
  let terms =
    Array.init (n + 1) (fun m -> if m = 0 then Term.constant else Term.linear (m - 1))
  in
  { dim = n; terms }

let linear_only n =
  if n < 0 then invalid_arg "Basis.linear_only: negative dimension";
  { dim = n; terms = Array.init n Term.linear }

let quadratic_size n = 1 + (2 * n) + (n * (n - 1) / 2)

let quadratic_over dim vars =
  let n = Array.length vars in
  let m = quadratic_size n in
  let terms = Array.make m Term.constant in
  let k = ref 1 in
  Array.iter
    (fun v ->
      terms.(!k) <- Term.linear v;
      incr k)
    vars;
  Array.iter
    (fun v ->
      terms.(!k) <- Term.square v;
      incr k)
    vars;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      terms.(!k) <- Term.cross vars.(i) vars.(j);
      incr k
    done
  done;
  { dim; terms }

let quadratic n =
  if n < 0 then invalid_arg "Basis.quadratic: negative dimension";
  quadratic_over n (Array.init n (fun i -> i))

let quadratic_subset ~dim vars =
  Array.iter
    (fun v ->
      if v < 0 || v >= dim then
        invalid_arg "Basis.quadratic_subset: variable out of range")
    vars;
  let seen = Hashtbl.create (Array.length vars) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Basis.quadratic_subset: duplicate variable";
      Hashtbl.add seen v ())
    vars;
  quadratic_over dim vars

let total_degree n d =
  if n <= 0 then invalid_arg "Basis.total_degree: dimension must be positive";
  if d < 0 then invalid_arg "Basis.total_degree: negative degree";
  (* Enumerate multi-indices of total degree ≤ d recursively. *)
  let acc = ref [] in
  let rec go var remaining current =
    if var = n then acc := Term.make current :: !acc
    else
      for deg = 0 to remaining do
        go (var + 1) (remaining - deg)
          (if deg > 0 then (var, deg) :: current else current)
      done
  in
  go 0 d [];
  let terms = Array.of_list !acc in
  Array.sort Term.compare terms;
  { dim = n; terms }

let embed b vars ~dim =
  if Array.length vars <> b.dim then
    invalid_arg "Basis.embed: variable map length must equal the basis dimension";
  let seen = Hashtbl.create (Array.length vars) in
  Array.iter
    (fun v ->
      if v < 0 || v >= dim then invalid_arg "Basis.embed: target out of range";
      if Hashtbl.mem seen v then invalid_arg "Basis.embed: duplicate target";
      Hashtbl.add seen v ())
    vars;
  let terms =
    Array.map
      (fun t ->
        Term.make (List.map (fun (v, d) -> (vars.(v), d)) (Array.to_list t)))
      b.terms
  in
  { dim; terms }

let max_degree b =
  Array.fold_left (fun acc t -> max acc (Term.total_degree t)) 0 b.terms

(* Per-variable Hermite tables shared across terms: tbl.(v).(d) = g_d(dy.(v)).
   [fill_tables] reuses a caller-allocated table to keep the design-matrix
   builder allocation-free per row. *)
let fill_tables b tbl dy =
  let maxd = Array.length tbl.(0) - 1 in
  for v = 0 to b.dim - 1 do
    Hermite.eval_all_into tbl.(v) ~pos:0 ~deg:maxd dy.(v)
  done

let make_tables b = Array.init b.dim (fun _ -> Array.make (max_degree b + 1) 0.)

let eval_point b dy =
  if Array.length dy <> b.dim then
    invalid_arg "Basis.eval_point: point dimension mismatch";
  if b.dim = 0 then Array.map (fun t -> Term.eval t dy) b.terms
  else begin
    let tbl = make_tables b in
    fill_tables b tbl dy;
    Array.map (fun t -> Term.eval_tables t tbl) b.terms
  end

let pp fmt b =
  Format.fprintf fmt "@[<v>basis: %d functions over %d variables@," (size b) b.dim;
  let shown = min (size b) 12 in
  for m = 0 to shown - 1 do
    Format.fprintf fmt "  g%d = %s@," m (Term.to_string b.terms.(m))
  done;
  if size b > shown then Format.fprintf fmt "  ...@,";
  Format.fprintf fmt "@]"
