type t =
  | Invalid_input of string
  | Config of string
  | Simulation of string
  | Numerical of string
  | Io of string
  | Internal of string

let message = function
  | Invalid_input m | Config m | Simulation m | Numerical m | Io m
  | Internal m ->
      m

let to_string = function
  | Invalid_input m -> "invalid input: " ^ m
  | Config m -> "config: " ^ m
  | Simulation m -> "simulation: " ^ m
  | Numerical m -> "numerical: " ^ m
  | Io m -> "i/o: " ^ m
  | Internal m -> "internal error (please report): " ^ m

let of_exn = function
  | Invalid_argument m | Failure m -> Invalid_input m
  | Rsm.Select.Conflict m -> Config m
  | Sys_error m -> Io m
  | Linalg.Cholesky.Not_positive_definite i ->
      Numerical
        (Printf.sprintf "Gram matrix not positive definite (pivot %d)" i)
  | Linalg.Tri.Singular i ->
      Numerical (Printf.sprintf "singular triangular system (row %d)" i)
  | Linalg.Lu.Singular i ->
      Numerical (Printf.sprintf "singular linear system (pivot %d)" i)
  | e -> Internal (Printexc.to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (of_exn e)
