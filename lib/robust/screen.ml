type reason =
  | Non_finite_point
  | Non_finite_value
  | Outlier of float

type report = {
  total : int;
  kept : int array;
  dropped : (int * reason) array;
  center : float;
  spread : float;
  threshold : float;
}

let default_threshold = 6.0

(* 1.4826 ≈ 1/Φ⁻¹(3/4): makes the MAD a consistent sigma estimate for a
   normal bulk. *)
let mad_consistency = 1.4826

let reason_to_string = function
  | Non_finite_point -> "non-finite factor point"
  | Non_finite_value -> "non-finite response"
  | Outlier z -> Printf.sprintf "outlier (robust z = %.1f)" z

let screen ?(threshold = default_threshold) (d : Circuit.Simulator.dataset) =
  if threshold <= 0. then invalid_arg "Screen.screen: threshold must be positive";
  let n = Array.length d.Circuit.Simulator.values in
  if n = 0 then invalid_arg "Screen.screen: empty dataset";
  let finite_row = Array.make n true in
  let dropped = ref [] in
  for i = 0 to n - 1 do
    if Array.exists (fun x -> not (Float.is_finite x)) d.points.(i) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_point) :: !dropped
    end
    else if not (Float.is_finite d.values.(i)) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_value) :: !dropped
    end
  done;
  let finite_values =
    Array.of_list
      (List.filteri (fun i _ -> finite_row.(i)) (Array.to_list d.values))
  in
  if Array.length finite_values = 0 then
    (* No finite row: there is no bulk to center on, and a NaN center
       would silently poison every downstream inner product. *)
    Error
      (Error.Simulation
         (Printf.sprintf
            "screening dropped all %d rows as non-finite; the simulation \
             produced no usable sample"
            n))
  else begin
  let center, spread =
    let med = Stat.Descriptive.median finite_values in
    let dev = Array.map (fun v -> Float.abs (v -. med)) finite_values in
    (med, mad_consistency *. Stat.Descriptive.median dev)
  in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if finite_row.(i) then begin
      (* Zero spread (over half the bulk identical): no usable z-score,
         skip the outlier screen rather than dropping everything that
         differs from the mode. *)
      let z = if spread > 0. then Float.abs (d.values.(i) -. center) /. spread else 0. in
      if spread > 0. && z > threshold then
        dropped := (i, Outlier z) :: !dropped
      else kept := i :: !kept
    end
  done;
  let kept = Array.of_list !kept in
  let dropped =
    let a = Array.of_list !dropped in
    Array.sort (fun (i, _) (j, _) -> compare i j) a;
    a
  in
  let report = { total = n; kept; dropped; center; spread; threshold } in
  Ok (Circuit.Simulator.split d kept, report)
  end

let report_summary r =
  let count p = Array.fold_left (fun acc (_, why) -> if p why then acc + 1 else acc) 0 r.dropped in
  let nf =
    count (function Non_finite_point | Non_finite_value -> true | _ -> false)
  in
  let out = count (function Outlier _ -> true | _ -> false) in
  (* Belt and braces: a report should never carry a non-finite center or
     spread anymore, but "n/a" beats printing "nan" at an operator. *)
  let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "n/a" in
  Printf.sprintf
    "screen: kept %d/%d rows (dropped %d: %d non-finite, %d outliers) \
     center %s spread %s threshold %.1f"
    (Array.length r.kept) r.total (Array.length r.dropped) nf out
    (num r.center) (num r.spread) r.threshold
