type reason =
  | Non_finite_point
  | Non_finite_value
  | Outlier of float
  | Far_point of float

type report = {
  total : int;
  kept : int array;
  dropped : (int * reason) array;
  center : float;
  spread : float;
  threshold : float;
}

let default_threshold = 6.0

(* 1.4826 ≈ 1/Φ⁻¹(3/4): makes the MAD a consistent sigma estimate for a
   normal bulk. *)
let mad_consistency = 1.4826

let reason_to_string = function
  | Non_finite_point -> "non-finite factor point"
  | Non_finite_value -> "non-finite response"
  | Outlier z -> Printf.sprintf "outlier (robust z = %.1f)" z
  | Far_point d -> Printf.sprintf "far point (robust distance = %.1f)" d

let screen ?(threshold = default_threshold) (d : Circuit.Simulator.dataset) =
  if threshold <= 0. then invalid_arg "Screen.screen: threshold must be positive";
  let n = Array.length d.Circuit.Simulator.values in
  if n = 0 then invalid_arg "Screen.screen: empty dataset";
  let finite_row = Array.make n true in
  let dropped = ref [] in
  for i = 0 to n - 1 do
    if Array.exists (fun x -> not (Float.is_finite x)) d.points.(i) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_point) :: !dropped
    end
    else if not (Float.is_finite d.values.(i)) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_value) :: !dropped
    end
  done;
  let finite_values =
    Array.of_list
      (List.filteri (fun i _ -> finite_row.(i)) (Array.to_list d.values))
  in
  if Array.length finite_values = 0 then
    (* No finite row: there is no bulk to center on, and a NaN center
       would silently poison every downstream inner product. *)
    Error
      (Error.Simulation
         (Printf.sprintf
            "screening dropped all %d rows as non-finite; the simulation \
             produced no usable sample"
            n))
  else begin
  let center, spread =
    let med = Stat.Descriptive.median finite_values in
    (* With one or two rows the MAD is not an outlier scale: one row has
       MAD 0, and two rows are each 0.674 robust sigma from their
       midpoint whatever their separation — the screen would silently
       pass everything while appearing to have run. Take the zero-spread
       stand-down instead, so the report says what happened. *)
    if Array.length finite_values <= 2 then (med, 0.)
    else
      let dev = Array.map (fun v -> Float.abs (v -. med)) finite_values in
      (med, mad_consistency *. Stat.Descriptive.median dev)
  in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if finite_row.(i) then begin
      (* Zero spread (over half the bulk identical): no usable z-score,
         skip the outlier screen rather than dropping everything that
         differs from the mode. *)
      let z = if spread > 0. then Float.abs (d.values.(i) -. center) /. spread else 0. in
      if spread > 0. && z > threshold then
        dropped := (i, Outlier z) :: !dropped
      else kept := i :: !kept
    end
  done;
  let kept = Array.of_list !kept in
  let dropped =
    let a = Array.of_list !dropped in
    Array.sort (fun (i, _) (j, _) -> compare i j) a;
    a
  in
  let report = { total = n; kept; dropped; center; spread; threshold } in
  Ok (Circuit.Simulator.split d kept, report)
  end

(* {2 Point-space screen} *)

type point_report = {
  p_total : int;
  p_kept : int array;
  p_dropped : (int * reason) array;
  p_dim : int;
  p_threshold : float;
  p_shrinkage : float;
}

let default_confidence = 0.999

(* χ² quantile of the distance cut. dof 1 and 2 have exact closed
   forms — χ²₁(p) = (Φ⁻¹((1+p)/2))² (equivalently (√2·erfc⁻¹(1−p))²)
   and χ²₂(p) = −2·ln(1−p) — and the Wilson–Hilferty cube approximation
   is off by several percent exactly there (−3.6% at dof 1, p = 0.999),
   skewing the factor screen for 1–2 variable designs. Use the closed
   forms at dof ≤ 2 and Wilson–Hilferty (within a few permil) above. *)
let chi2_quantile ~dof p =
  match dof with
  | 1 ->
      let z = Stat.Distribution.quantile ((1. +. p) /. 2.) in
      z *. z
  | 2 -> -2. *. log (1. -. p)
  | _ ->
      let d = float_of_int dof in
      let c = 2. /. (9. *. d) in
      let t = 1. -. c +. (Stat.Distribution.quantile p *. sqrt c) in
      d *. t *. t *. t

let shrinkage_ladder = [| 0.05; 0.1; 0.2; 0.4; 0.8; 1.0 |]

let mahalanobis ?(confidence = default_confidence)
    (d : Circuit.Simulator.dataset) =
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Screen.mahalanobis: confidence must lie in (0, 1)";
  let n = Array.length d.Circuit.Simulator.values in
  if n = 0 then invalid_arg "Screen.mahalanobis: empty dataset";
  let dim = if n > 0 then Array.length d.points.(0) else 0 in
  let finite_row = Array.make n true in
  let dropped = ref [] in
  for i = 0 to n - 1 do
    if Array.exists (fun x -> not (Float.is_finite x)) d.points.(i) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_point) :: !dropped
    end
    else if not (Float.is_finite d.values.(i)) then begin
      finite_row.(i) <- false;
      dropped := (i, Non_finite_value) :: !dropped
    end
  done;
  let finite = ref [] in
  for i = n - 1 downto 0 do
    if finite_row.(i) then finite := i :: !finite
  done;
  let finite = Array.of_list !finite in
  let nf = Array.length finite in
  if nf = 0 then
    Error
      (Error.Simulation
         (Printf.sprintf
            "point screening dropped all %d rows as non-finite; the \
             simulation produced no usable sample"
            n))
  else begin
    let threshold = sqrt (chi2_quantile ~dof:dim confidence) in
    if nf <= 2 || dim = 0 then begin
      (* Same stand-down as the response screen's zero-spread guard: one
         or two rows give no scatter to screen against. *)
      let dropped =
        let a = Array.of_list !dropped in
        Array.sort (fun (i, _) (j, _) -> compare i j) a;
        a
      in
      let report =
        {
          p_total = n;
          p_kept = finite;
          p_dropped = dropped;
          p_dim = dim;
          p_threshold = threshold;
          p_shrinkage = 1.0;
        }
      in
      Ok (Circuit.Simulator.split d finite, report)
    end
    else begin
      (* Every floating-point accumulation below walks the finite rows
         in canonical (lexicographic point) order, not sample order, so
         the verdicts are exactly invariant to how the dataset happened
         to be permuted. *)
      let canon = Array.copy finite in
      Array.sort (fun i j -> compare d.points.(i) d.points.(j)) canon;
      let coord = Array.make nf 0. in
      let center = Array.make dim 0. in
      let scale = Array.make dim 1. in
      for j = 0 to dim - 1 do
        for r = 0 to nf - 1 do
          coord.(r) <- d.points.(canon.(r)).(j)
        done;
        let med = Stat.Descriptive.median coord in
        center.(j) <- med;
        for r = 0 to nf - 1 do
          coord.(r) <- Float.abs (coord.(r) -. med)
        done;
        let s = mad_consistency *. Stat.Descriptive.median coord in
        (* A spread-free coordinate cannot be standardized; fall back to
           the raw deviation scale so the screen still sees a shift. *)
        scale.(j) <- (if s > 0. then s else 1.)
      done;
      let standardize i =
        Array.init dim (fun j -> (d.points.(i).(j) -. center.(j)) /. scale.(j))
      in
      let s = Linalg.Mat.create dim dim in
      Array.iter
        (fun i ->
          let z = standardize i in
          for a = 0 to dim - 1 do
            for b = 0 to a do
              Linalg.Mat.set s a b
                (Linalg.Mat.get s a b +. (z.(a) *. z.(b)))
            done
          done)
        canon;
      let inv_n = 1. /. float_of_int nf in
      for a = 0 to dim - 1 do
        for b = 0 to a do
          Linalg.Mat.set s a b (Linalg.Mat.get s a b *. inv_n)
        done
      done;
      (* Shrink toward the identity until the factor exists: the MAD
         standardization already whitened the diagonal, so gamma is a
         pure conditioning knob, and gamma = 1 (the identity) always
         succeeds — the screen then degrades to per-coordinate robust
         z-scores rather than failing. *)
      let rec factor_at idx =
        let gamma = shrinkage_ladder.(idx) in
        let sg =
          Linalg.Mat.init dim dim (fun a b ->
              if a < b then 0.
              else
                let v = (1. -. gamma) *. Linalg.Mat.get s a b in
                if a = b then v +. gamma else v)
        in
        match Linalg.Cholesky.factor sg with
        | l -> (l, gamma)
        | exception Linalg.Cholesky.Not_positive_definite _
          when idx + 1 < Array.length shrinkage_ladder ->
            factor_at (idx + 1)
      in
      let l, gamma = factor_at 0 in
      let kept = ref [] in
      for r = nf - 1 downto 0 do
        let i = finite.(r) in
        let z = standardize i in
        let dist = sqrt (Linalg.Vec.dot z (Linalg.Cholesky.solve l z)) in
        if dist > threshold then dropped := (i, Far_point dist) :: !dropped
        else kept := i :: !kept
      done;
      let kept = Array.of_list !kept in
      let dropped =
        let a = Array.of_list !dropped in
        Array.sort (fun (i, _) (j, _) -> compare i j) a;
        a
      in
      let report =
        {
          p_total = n;
          p_kept = kept;
          p_dropped = dropped;
          p_dim = dim;
          p_threshold = threshold;
          p_shrinkage = gamma;
        }
      in
      Ok (Circuit.Simulator.split d kept, report)
    end
  end

let point_report_summary r =
  let count p =
    Array.fold_left
      (fun acc (_, why) -> if p why then acc + 1 else acc)
      0 r.p_dropped
  in
  let nf =
    count (function Non_finite_point | Non_finite_value -> true | _ -> false)
  in
  let far = count (function Far_point _ -> true | _ -> false) in
  Printf.sprintf
    "point screen: kept %d/%d rows (dropped %d: %d non-finite, %d far) \
     dim %d distance threshold %.3g shrinkage %.2g"
    (Array.length r.p_kept) r.p_total (Array.length r.p_dropped) nf far
    r.p_dim r.p_threshold r.p_shrinkage

let report_summary r =
  let count p = Array.fold_left (fun acc (_, why) -> if p why then acc + 1 else acc) 0 r.dropped in
  let nf =
    count (function Non_finite_point | Non_finite_value -> true | _ -> false)
  in
  let out = count (function Outlier _ -> true | _ -> false) in
  (* Belt and braces: a report should never carry a non-finite center or
     spread anymore, but "n/a" beats printing "nan" at an operator. *)
  let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "n/a" in
  Printf.sprintf
    "screen: kept %d/%d rows (dropped %d: %d non-finite, %d outliers) \
     center %s spread %s threshold %.1f"
    (Array.length r.kept) r.total (Array.length r.dropped) nf out
    (num r.center) (num r.spread) r.threshold
