(** The fault-tolerant end-to-end fit: simulate (with retries), screen,
    build the design, fit with numerical fallbacks — one call, one
    structured result.

    The stages compose the hardening added across the codebase:
    {!Circuit.Simulator.run_robust} retries detectable failures and
    drops samples that never deliver, {!Screen.screen} removes
    non-finite and outlier rows before any basis function is evaluated,
    and the solver runs with [~on_singular:`Fallback] so a degenerate
    active-set Gram matrix degrades through the {!Rsm.Refit} ladder
    instead of aborting. Nothing in this module raises on the expected
    failure paths — everything is an {!Error.t}. *)

type config = {
  method_ : Rsm.Solver.method_;
  folds : int;  (** CV folds for the λ selection *)
  max_lambda : int;  (** sparsity-search upper bound *)
  samples : int;  (** Monte-Carlo samples to request *)
  screen : bool;  (** run the MAD outlier screen *)
  screen_threshold : float;  (** robust z-score cut *)
  faults : Circuit.Simulator.fault_plan;  (** injected failure model *)
  retry : Circuit.Simulator.retry_policy;
  min_samples : int;  (** fewest surviving rows acceptable for a fit *)
  streamed : bool;  (** matrix-free design instead of materialized *)
  checkpoint : string option;
      (** base path for per-fold CV checkpoints ({!Rsm.Select}) *)
  resume : bool;  (** load matching fold checkpoints before fitting *)
  sweep : Rsm.Corr_sweep.sweep;
      (** correlation engine for the path solvers ({!Rsm.Corr_sweep}) *)
  shards : int;
      (** column shards for the selection sweeps ({!Rsm.Shard_sweep});
          1 = unsharded. Fits are bitwise identical at every count. *)
  shard_mode : Rsm.Shard_sweep.mode;
      (** [Domains] in-image slabs, [Procs] re-exec'd worker processes
          with crash recovery *)
  fused_cv : bool option;
      (** fused lockstep CV fold driver; [None] = automatic
          (on for streamed providers with the exact sweep) *)
  rescreen : bool;  (** residual rescreen + down-date refit after the fit *)
}

val config :
  ?method_:Rsm.Solver.method_ ->
  ?folds:int ->
  ?max_lambda:int ->
  ?samples:int ->
  ?screen:bool ->
  ?screen_threshold:float ->
  ?faults:Circuit.Simulator.fault_plan ->
  ?retry:Circuit.Simulator.retry_policy ->
  ?min_samples:int ->
  ?streamed:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?sweep:Rsm.Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Rsm.Shard_sweep.mode ->
  ?fused_cv:bool ->
  ?rescreen:bool ->
  unit ->
  (config, Error.t) result
(** Validated constructor. Defaults: OMP, 4 folds, [max_lambda = 100],
    1000 samples, screening on at {!Screen.default_threshold}, no
    injected faults, the default retry policy
    ({!Circuit.Simulator.retry_policy}), [min_samples = 30], dense
    design, no checkpointing, exact sweep, automatic fused-CV choice,
    no rescreen. Returns [Error (Invalid_input _)] on non-positive
    counts or thresholds, a negative incremental refresh cadence,
    [min_samples > samples], [resume] without [checkpoint], or
    [checkpoint] with a method that has no λ sweep (LS/StOMP/CoSaMP). *)

type outcome = {
  model : Rsm.Model.t;
      (** the fitted model; {!Rsm.Model.notes} records any numerical
          fallbacks that fired *)
  dataset : Circuit.Simulator.dataset;  (** the rows the fit actually used *)
  run_report : Circuit.Simulator.run_report;  (** delivery/retry accounting *)
  screen_report : Screen.report option;  (** [None] when screening is off *)
}

val screen_refit :
  ?threshold:float ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  Rsm.Model.t ->
  Rsm.Model.t * int array
(** [screen_refit src f model] rescreens a fitted model's residuals on
    the robust MAD scale ([Screen.mad_consistency]·MAD, the same scale
    as the pre-fit value screen) and, when rows cross [threshold]
    (default {!Screen.default_threshold}), re-solves the active-set
    normal equations with those rows removed. The Gram factor of the
    support columns is {e down-dated} one dropped row at a time
    ({!Linalg.Cholesky.Grow.downdate_row}, O(d·p²) for d drops and p
    support columns) instead of refactorized from the surviving rows —
    the warm-start-then-screen path the roadmap called for. The support
    is unchanged; only coefficients move. Returns the refit model (with
    a note recording the drop count and repair path) and the dropped
    row indices, ascending; [(model, [||])] when nothing crosses the
    threshold, the residual MAD is zero, or the support is empty. If
    the down-dated factor loses positive definiteness, the refit falls
    back to a cold {!Rsm.Refit} solve on the kept rows; if fewer rows
    than support columns survive, the original model is kept (noted).
    @raise Invalid_argument on a non-positive threshold or a response
    length mismatch. *)

val fit :
  ?pool:Parallel.Pool.t ->
  ?recovered:int ref ->
  config ->
  Circuit.Simulator.t ->
  Polybasis.Basis.t ->
  Randkit.Prng.t ->
  (outcome, Error.t) result
(** Run the full pipeline. Deterministic for a fixed seed at every
    domain count (the underlying stages all pre-split their PRNG
    streams). [recovered] (with [config.shards > 1] in [Procs] mode)
    accumulates worker-process crash recoveries across the fold fits
    and the refit. Fails with [Simulation _] when fewer than
    [config.min_samples] rows survive delivery and screening, with
    [Invalid_input _] / [Numerical _] / [Internal _] when a stage
    raises. *)

val outcome_summary : outcome -> string
(** Multi-line human-readable account: delivery, hygiene, model size and
    any fallback notes. *)
