(** The fault-tolerant end-to-end fit: simulate (with retries), screen,
    build the design, fit with numerical fallbacks — one call, one
    structured result.

    The stages compose the hardening added across the codebase:
    {!Circuit.Simulator.run_robust} retries detectable failures and
    drops samples that never deliver, {!Screen.screen} removes
    non-finite and outlier rows before any basis function is evaluated,
    and the solver runs with [~on_singular:`Fallback] so a degenerate
    active-set Gram matrix degrades through the {!Rsm.Refit} ladder
    instead of aborting. Nothing in this module raises on the expected
    failure paths — everything is an {!Error.t}. *)

type config = {
  method_ : Rsm.Solver.method_;
  folds : int;  (** CV folds for the λ selection *)
  max_lambda : int;  (** sparsity-search upper bound *)
  samples : int;  (** Monte-Carlo samples to request *)
  screen : bool;  (** run the MAD outlier screen *)
  screen_threshold : float;  (** robust z-score cut *)
  faults : Circuit.Simulator.fault_plan;  (** injected failure model *)
  retry : Circuit.Simulator.retry_policy;
  min_samples : int;  (** fewest surviving rows acceptable for a fit *)
  streamed : bool;  (** matrix-free design instead of materialized *)
  checkpoint : string option;
      (** base path for per-fold CV checkpoints ({!Rsm.Select}) *)
  resume : bool;  (** load matching fold checkpoints before fitting *)
}

val config :
  ?method_:Rsm.Solver.method_ ->
  ?folds:int ->
  ?max_lambda:int ->
  ?samples:int ->
  ?screen:bool ->
  ?screen_threshold:float ->
  ?faults:Circuit.Simulator.fault_plan ->
  ?retry:Circuit.Simulator.retry_policy ->
  ?min_samples:int ->
  ?streamed:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  unit ->
  (config, Error.t) result
(** Validated constructor. Defaults: OMP, 4 folds, [max_lambda = 100],
    1000 samples, screening on at {!Screen.default_threshold}, no
    injected faults, the default retry policy
    ({!Circuit.Simulator.retry_policy}), [min_samples = 30], dense
    design, no checkpointing. Returns [Error (Invalid_input _)] on
    non-positive counts or thresholds, [min_samples > samples], [resume]
    without [checkpoint], or [checkpoint] with a method that has no λ
    sweep (LS/StOMP/CoSaMP). *)

type outcome = {
  model : Rsm.Model.t;
      (** the fitted model; {!Rsm.Model.notes} records any numerical
          fallbacks that fired *)
  dataset : Circuit.Simulator.dataset;  (** the rows the fit actually used *)
  run_report : Circuit.Simulator.run_report;  (** delivery/retry accounting *)
  screen_report : Screen.report option;  (** [None] when screening is off *)
}

val fit :
  ?pool:Parallel.Pool.t ->
  config ->
  Circuit.Simulator.t ->
  Polybasis.Basis.t ->
  Randkit.Prng.t ->
  (outcome, Error.t) result
(** Run the full pipeline. Deterministic for a fixed seed at every
    domain count (the underlying stages all pre-split their PRNG
    streams). Fails with [Simulation _] when fewer than
    [config.min_samples] rows survive delivery and screening, with
    [Invalid_input _] / [Numerical _] / [Internal _] when a stage
    raises. *)

val outcome_summary : outcome -> string
(** Multi-line human-readable account: delivery, hygiene, model size and
    any fallback notes. *)
