(** The fault-tolerant end-to-end fit: simulate (with retries), screen,
    build the design, fit with numerical fallbacks — one call, one
    structured result.

    The stages compose the hardening added across the codebase:
    {!Circuit.Simulator.run_robust} retries detectable failures and
    drops samples that never deliver, {!Screen.screen} removes
    non-finite and outlier rows before any basis function is evaluated,
    and the solver runs with [~on_singular:`Fallback] so a degenerate
    active-set Gram matrix degrades through the {!Rsm.Refit} ladder
    instead of aborting. Nothing in this module raises on the expected
    failure paths — everything is an {!Error.t}. *)

(** Which space the hygiene screens examine. [Response] is the MAD
    screen on simulated values ({!Screen.screen}); [Factor] is the
    robust-Mahalanobis screen on sample points ({!Screen.mahalanobis});
    [Both] composes them, response first. *)
type screen_space = Response | Factor | Both

val screen_space_to_string : screen_space -> string

val screen_space_of_string : string -> screen_space option
(** Case-insensitive; accepts ["response"]/["value"],
    ["factor"]/["point"], ["both"]. *)

val default_quorum : float
(** 0.9 — a fit silently missing more than a tenth of its requested
    samples is a different experiment, not a degraded one. *)

type config = {
  method_ : Rsm.Solver.method_;
  folds : int;  (** CV folds for the λ selection *)
  max_lambda : int;  (** sparsity-search upper bound *)
  samples : int;  (** Monte-Carlo samples to request *)
  screen : bool;  (** run the hygiene screens at all *)
  screen_threshold : float;  (** robust z-score cut (response screen) *)
  screen_space : screen_space;  (** which screens run; default [Response] *)
  screen_confidence : float;
      (** χ² confidence of the factor screen's distance cut *)
  faults : Circuit.Simulator.fault_plan;  (** injected failure model *)
  retry : Circuit.Simulator.retry_policy;
  adaptive : Retry.policy option;
      (** adaptive retry (backoff + breaker, {!Retry.run}) instead of
          the fixed policy; [retry] is ignored when set *)
  min_samples : int;  (** fewest surviving rows acceptable for a fit *)
  quorum : float;
      (** fraction of [samples] that must survive delivery and
          screening, in (0, 1]; a shortfall above the quorum degrades
          the fit (noted on the model), below it fails typed *)
  streamed : bool;  (** matrix-free design instead of materialized *)
  checkpoint : string option;
      (** base path for per-fold CV checkpoints ({!Rsm.Select}) *)
  resume : bool;  (** load matching fold checkpoints before fitting *)
  sweep : Rsm.Corr_sweep.sweep;
      (** correlation engine for the path solvers ({!Rsm.Corr_sweep}) *)
  shards : int;
      (** column shards for the selection sweeps ({!Rsm.Shard_sweep});
          1 = unsharded. Fits are bitwise identical at every count. *)
  shard_mode : Rsm.Shard_sweep.mode;
      (** [Domains] in-image slabs, [Procs] re-exec'd worker processes
          with crash recovery *)
  fused_cv : bool option;
      (** fused lockstep CV fold driver; [None] = automatic
          (on for streamed providers with the exact sweep).
          [Some true] with [shards > 1] is rejected by {!config} as
          [Error (Config _)] — the two drivers are mutually
          exclusive *)
  fused_outputs : bool option;
      (** fused multi-output grid driver ({!fit_multi}); [None] =
          automatic (on whenever the path method runs the exact sweep
          unsharded — see {!Rsm.Select.resolve_fused_multi}).
          [Some true] with [shards > 1] is rejected by {!config} as
          [Error (Config _)]. Ignored by single-output {!fit}. *)
  rescreen : bool;  (** residual rescreen + down-date refit after the fit *)
}

val config :
  ?method_:Rsm.Solver.method_ ->
  ?folds:int ->
  ?max_lambda:int ->
  ?samples:int ->
  ?screen:bool ->
  ?screen_threshold:float ->
  ?screen_space:screen_space ->
  ?screen_confidence:float ->
  ?faults:Circuit.Simulator.fault_plan ->
  ?retry:Circuit.Simulator.retry_policy ->
  ?adaptive:Retry.policy ->
  ?min_samples:int ->
  ?quorum:float ->
  ?streamed:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?sweep:Rsm.Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Rsm.Shard_sweep.mode ->
  ?fused_cv:bool ->
  ?fused_outputs:bool ->
  ?rescreen:bool ->
  unit ->
  (config, Error.t) result
(** Validated constructor. Defaults: OMP, 4 folds, [max_lambda = 100],
    1000 samples, screening on at {!Screen.default_threshold} in
    [Response] space with {!Screen.default_confidence}, no injected
    faults, the default fixed retry policy
    ({!Circuit.Simulator.retry_policy}) and no adaptive policy,
    [min_samples = 30], [quorum = 0.9], dense design, no checkpointing,
    exact sweep, automatic fused-CV choice, no rescreen. Returns
    [Error (Invalid_input _)] on non-positive counts or thresholds, a
    confidence or quorum outside its range, a negative incremental
    refresh cadence, [min_samples > samples], [resume] without
    [checkpoint], or [checkpoint] with a method that has no λ sweep
    (LS/StOMP/CoSaMP); [Error (Config _)] on an explicit [fused_cv]
    or [fused_outputs] together with [shards > 1]. *)

type outcome = {
  model : Rsm.Model.t;
      (** the fitted model; {!Rsm.Model.notes} records any numerical
          fallbacks that fired *)
  dataset : Circuit.Simulator.dataset;  (** the rows the fit actually used *)
  run_report : Circuit.Simulator.run_report;  (** delivery/retry accounting *)
  screen_report : Screen.report option;
      (** [None] when the response screen did not run *)
  point_report : Screen.point_report option;
      (** [None] when the factor screen did not run *)
  adaptive_report : Retry.report option;
      (** the adaptive driver's event log; [None] under the fixed
          policy. [run_report] is its [run] field in that case. *)
}

val degraded_note :
  requested:int ->
  survived:int ->
  quorum:float ->
  Circuit.Simulator.run_report ->
  string
(** The single-line ["degraded: ..."] provenance note a quorum-degraded
    fit records in {!Rsm.Model.notes}: rows kept vs requested, split
    into delivery losses ([requested − run.delivered]) and screened rows
    ([run.delivered − survived]), plus burst windows and breaker trips
    when present. Exported so the CLI's fixed-λ checkpoint path and the
    CV pipeline stamp byte-identical notes. *)

val screen_refit :
  ?threshold:float ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  Rsm.Model.t ->
  Rsm.Model.t * int array
(** [screen_refit src f model] rescreens a fitted model's residuals on
    the robust MAD scale ([Screen.mad_consistency]·MAD, the same scale
    as the pre-fit value screen) and, when rows cross [threshold]
    (default {!Screen.default_threshold}), re-solves the active-set
    normal equations with those rows removed. The Gram factor of the
    support columns is {e down-dated} one dropped row at a time
    ({!Linalg.Cholesky.Grow.downdate_row}, O(d·p²) for d drops and p
    support columns) instead of refactorized from the surviving rows —
    the warm-start-then-screen path the roadmap called for. The support
    is unchanged; only coefficients move. Returns the refit model (with
    a note recording the drop count and repair path) and the dropped
    row indices, ascending; [(model, [||])] when nothing crosses the
    threshold, the residual MAD is zero, or the support is empty. If
    the down-dated factor loses positive definiteness, the refit falls
    back to a cold {!Rsm.Refit} solve on the kept rows; if fewer rows
    than support columns survive, the original model is kept (noted).
    @raise Invalid_argument on a non-positive threshold or a response
    length mismatch. *)

val fit :
  ?pool:Parallel.Pool.t ->
  ?recovered:int ref ->
  config ->
  Circuit.Simulator.t ->
  Polybasis.Basis.t ->
  Randkit.Prng.t ->
  (outcome, Error.t) result
(** Run the full pipeline. Deterministic for a fixed seed at every
    domain count (the underlying stages all pre-split their PRNG
    streams). [recovered] (with [config.shards > 1] in [Procs] mode)
    accumulates worker-process crash recoveries across the fold fits
    and the refit.

    Quorum semantics: with [n] rows surviving delivery and screening
    out of [config.samples] requested, [n < min_samples] or
    [n < ceil(quorum·samples)] fails with [Simulation _] (the typed
    one-line diagnostic in the CLI); [n < samples] but at or above both
    floors proceeds {e degraded}, recording a single-line
    ["degraded: ..."] note — rows lost in delivery vs screening, burst
    windows, breaker trips — in {!Rsm.Model.notes}, where it survives
    serialization. A full-delivery fit carries no note. Fails with
    [Invalid_input _] / [Numerical _] / [Internal _] when a stage
    raises. *)

val outcome_summary : outcome -> string
(** Multi-line human-readable account: delivery, hygiene, model size and
    any fallback notes. *)

(** {2 Multi-output pipeline}

    R performance metrics of one circuit — the op-amp's gain, bandwidth,
    power and offset — share their Monte-Carlo points, their fault
    history, their hygiene verdicts and their design matrix; only the
    response vectors differ. {!fit_multi} runs the whole pipeline once
    for all of them: one {!Circuit.Simulator.run_robust_multi} batch
    (every sample evaluated by every simulator, delivered only when all
    outputs are finite), one shared kept-row set (per-output response
    screens intersected, one point screen), one design provider, and one
    {!Rsm.Solver.fit_multi_p} call whose fused grid generates each
    streamed column once per greedy step for every output and fold. *)

type multi_outcome = {
  models : Rsm.Model.t array;  (** one fitted model per simulator, in order *)
  datasets : Circuit.Simulator.dataset array;
      (** the rows each fit used; the point arrays are physically
          shared across outputs (one kept-row set) *)
  m_run_report : Circuit.Simulator.run_report;
      (** one delivery/retry account for the shared batch *)
  screen_reports : Screen.report option array;
      (** per-output response-screen reports (indices in delivered-row
          space, {e before} the kept-set intersection); [None] entries
          when the response screen did not run *)
  m_point_report : Screen.point_report option;
      (** the shared factor-space verdict; [None] when it did not run *)
}

val fit_multi :
  ?pool:Parallel.Pool.t ->
  ?recovered:int ref ->
  config ->
  Circuit.Simulator.t array ->
  Polybasis.Basis.t ->
  Randkit.Prng.t ->
  (multi_outcome, Error.t) result
(** Run the full pipeline for every simulator at once. The simulators
    must agree on [dim]; [config.adaptive] must be [None] (the breaker
    driver owns a single simulator's retry loop — requesting it here
    fails with [Config _], as does an empty simulator array with
    [Invalid_input _]).

    Quorum/degradation semantics are {!fit}'s, applied to the shared
    surviving row count; a degraded delivery stamps the same
    ["degraded: ..."] note on {e every} model. [config.fused_outputs]
    picks the fused-vs-per-output driver (see {!Rsm.Solver.fit_multi_p});
    either way output [r] checkpoints under
    [Serialize.Checkpoint.Multi.output_base config.checkpoint r], and
    the fitted models are bitwise identical across the two drivers, at
    every domain count, dense or streamed. *)

val multi_outcome_summary : ?names:string array -> multi_outcome -> string
(** Multi-line account of a multi-output run: one delivery line, the
    per-output hygiene lines, and one model line per output. [names]
    labels the outputs (e.g. metric names); defaults to
    ["output <r>"]. *)

(** {2 Serving bridge}

    The fit is not the product — the evaluations are. [serve_yield]
    takes a pipeline {!outcome} straight to a streamed yield estimate:
    the model is compiled to an instruction tape ([Serve.Eval.compile])
    and [samples] standard-normal points flow through
    [Serve.Stream.estimate] over the pool. *)

val serve_yield :
  ?pool:Parallel.Pool.t ->
  ?batch:int ->
  ?sampler:Randkit.Gaussian.sampler ->
  ?project:bool ->
  ?samples:int ->
  outcome ->
  Polybasis.Basis.t ->
  Randkit.Prng.t ->
  Rsm.Yield.spec ->
  (Serve.Stream.estimate, Error.t) result
(** [serve_yield outcome basis rng spec] estimates the yield of the
    fitted model against [spec] from [samples] (default 100 000)
    streamed Monte-Carlo points. [?sampler] and [?project] are
    [Serve.Stream.estimate]'s: the default polar sampler keeps the
    historical bit stream; [Ziggurat] switches to the counter-mode
    engine whose estimate is invariant to batch size and domain count,
    with the draw projected onto the tape's touched variables (bitwise
    equal to the full draw). Returns [Error (Config _)] when
    [~project:true] is requested without the ziggurat sampler,
    [Error (Invalid_input _)] on a non-positive sample count or a
    model/basis disagreement — the same typed-error discipline as
    {!fit}. *)
