module Simulator = Circuit.Simulator

type policy = {
  max_attempts : int;
  base_backoff : float;
  jitter : float;
  attempt_budget : int;
  breaker_threshold : int;
  cooldown : int;
}

let policy ?(max_attempts = 4) ?(base_backoff = 1.) ?(jitter = 0.5)
    ?(attempt_budget = max_int) ?(breaker_threshold = 8) ?(cooldown = 0) () =
  if max_attempts < 1 then
    invalid_arg "Retry.policy: max_attempts must be >= 1";
  if base_backoff < 0. then invalid_arg "Retry.policy: negative backoff";
  if not (jitter >= 0. && jitter < 1.) then
    invalid_arg "Retry.policy: jitter must lie in [0, 1)";
  if attempt_budget < 0 then
    invalid_arg "Retry.policy: negative attempt budget";
  if breaker_threshold < 0 then
    invalid_arg "Retry.policy: negative breaker threshold";
  if cooldown < 0 then invalid_arg "Retry.policy: negative cooldown";
  {
    max_attempts;
    base_backoff;
    jitter;
    attempt_budget;
    breaker_threshold;
    cooldown;
  }

type event =
  | Backoff of { sample : int; attempt : int; seconds : float }
  | Tripped of { sample : int; consecutive : int; cooldown : int }
  | Fast_fail of { sample : int }
  | Probe of { sample : int; delivered : bool }
  | Closed of { sample : int }
  | Budget_exhausted of { sample : int }

let event_to_string = function
  | Backoff { sample; attempt; seconds } ->
      Printf.sprintf "backoff: sample %d attempt %d waits %.3f s" sample
        attempt seconds
  | Tripped { sample; consecutive; cooldown } ->
      Printf.sprintf
        "breaker tripped at sample %d after %d consecutive failures; open for \
         %d samples"
        sample consecutive cooldown
  | Fast_fail { sample } ->
      Printf.sprintf "breaker open: sample %d fails fast (no retries)" sample
  | Probe { sample; delivered } ->
      Printf.sprintf "half-open probe at sample %d %s" sample
        (if delivered then "delivered" else "failed")
  | Closed { sample } -> Printf.sprintf "breaker closed at sample %d" sample
  | Budget_exhausted { sample } ->
      Printf.sprintf "global attempt budget exhausted at sample %d" sample

type report = {
  run : Simulator.run_report;
  events : event array;
  retries_granted : int;
  retries_denied : int;
}

type breaker = Breaker_closed | Breaker_open of int | Breaker_half_open

(* The adaptive driver is a two-pass scheme. Pass 1 draws the sample
   points sequentially from the caller's stream (exactly as
   [Simulator.run]) and fans the one expensive clean evaluation per
   point out over the pool — evaluators are pure, so caching the value
   and replaying it per attempt is value-identical to re-evaluating.
   Pass 2 walks the samples in index order through the policy state
   machine (backoff, budget, breaker), drawing each sample's fault
   history from its own pre-split stream via [Simulator.draw_attempt].
   Everything the policy decides therefore depends only on (plan,
   policy, k, seed) — bitwise identical at every domain count. *)
let run ?(noise_rel = 0.) ?pool ?(faults = Simulator.no_faults) policy sim g
    ~k =
  if k <= 0 then invalid_arg "Retry.run: sample count must be positive";
  let dim = sim.Simulator.dim in
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector g dim) in
  let streams =
    Randkit.Prng.split_n
      (Randkit.Prng.create faults.Simulator.fault_seed)
      k
  in
  let burst = Simulator.burst_states faults ~k in
  let values = Array.make k Float.nan in
  let eval_body i = values.(i) <- sim.Simulator.eval points.(i) in
  (match pool with
  | None ->
      for i = 0 to k - 1 do
        eval_body i
      done
  | Some pool -> Parallel.Pool.parallel_for pool ~lo:0 ~hi:k eval_body);
  (* Pass 2: sequential policy walk. *)
  let cooldown =
    if policy.cooldown > 0 then policy.cooldown
    else
      match faults.Simulator.burst with
      | Some b -> int_of_float (Float.ceil b.Simulator.burst_len)
      | None -> 16
  in
  let out = Array.make k Float.nan in
  let ok = Array.make k false in
  let events = ref [] in
  let emit e = events := e :: !events in
  let state = ref Breaker_closed in
  let consecutive = ref 0 in
  let trips = ref 0 in
  let budget = ref policy.attempt_budget in
  let budget_noted = ref false in
  let retries_granted = ref 0 in
  let retries_denied = ref 0 in
  let faults_injected = ref 0 in
  let nonfinite = ref 0 in
  let outliers = ref 0 in
  let transients = ref 0 in
  let hangs = ref 0 in
  let burst_faults = ref 0 in
  let retries = ref 0 in
  let extra = ref 0. in
  for i = 0 to k - 1 do
    (* A spent cooldown turns the open breaker half-open: this sample is
       the probe and gets its full retry allowance back. *)
    (match !state with
    | Breaker_open 0 -> state := Breaker_half_open
    | _ -> ());
    let allowed =
      match !state with
      | Breaker_open _ -> 1
      | Breaker_closed | Breaker_half_open -> policy.max_attempts
    in
    let fs = streams.(i) in
    let in_burst = burst.(i) in
    let delivered = ref None in
    let attempt = ref 0 in
    let stop = ref false in
    while !delivered = None && !attempt < allowed && not !stop do
      incr attempt;
      if !attempt > 1 then begin
        if !budget <= 0 then begin
          if not !budget_noted then begin
            budget_noted := true;
            emit (Budget_exhausted { sample = i })
          end;
          incr retries_denied;
          decr attempt;
          stop := true
        end
        else begin
          decr budget;
          incr retries_granted;
          incr retries;
          (* Deterministic exponential backoff with deterministic
             jitter: the jitter draw comes from the sample's own stream,
             so it is reproducible, yet desynchronizes the retry storm a
             real farm would see after an outage. *)
          let u =
            if policy.jitter > 0. then Randkit.Prng.float fs else 0.
          in
          let seconds =
            policy.base_backoff
            *. float_of_int (1 lsl (!attempt - 2))
            *. (1. +. (policy.jitter *. u))
          in
          emit (Backoff { sample = i; attempt = !attempt; seconds });
          extra := !extra +. seconds +. sim.Simulator.seconds_per_sample
        end
      end;
      if not !stop then begin
        let a =
          Simulator.draw_attempt faults ~in_burst fs ~eval:(fun () ->
              values.(i))
        in
        (match a.Simulator.injected with
        | None -> ()
        | Some kind ->
            incr faults_injected;
            if in_burst then incr burst_faults;
            (match kind with
            | Simulator.Nan_return | Simulator.Inf_return -> incr nonfinite
            | Simulator.Outlier -> incr outliers
            | Simulator.Transient -> incr transients
            | Simulator.Hang -> incr hangs));
        extra := !extra +. a.Simulator.hang_s;
        match a.Simulator.returned with
        | Some v when Float.is_finite v -> delivered := Some v
        | Some _ | None -> ()
      end
    done;
    (match !delivered with
    | Some v ->
        out.(i) <- v;
        ok.(i) <- true
    | None -> ());
    (* Breaker bookkeeping on the sample's final verdict. *)
    let succeeded = !delivered <> None in
    (match !state with
    | Breaker_half_open ->
        emit (Probe { sample = i; delivered = succeeded });
        if succeeded then begin
          emit (Closed { sample = i });
          state := Breaker_closed;
          consecutive := 0
        end
        else begin
          (* Failed probe: the outage is still on — re-open for another
             cooldown. Counted as a trip. *)
          incr trips;
          state := Breaker_open cooldown
        end
    | Breaker_open n ->
        if succeeded then begin
          (* Even a fast-fail single attempt succeeding is evidence the
             outage ended; close early instead of waiting out the rest
             of the cooldown. *)
          emit (Closed { sample = i });
          state := Breaker_closed;
          consecutive := 0
        end
        else begin
          emit (Fast_fail { sample = i });
          state := Breaker_open (max 0 (n - 1))
        end
    | Breaker_closed ->
        if succeeded then consecutive := 0
        else begin
          incr consecutive;
          if policy.breaker_threshold > 0
             && !consecutive >= policy.breaker_threshold
          then begin
            incr trips;
            emit (Tripped { sample = i; consecutive = !consecutive; cooldown });
            state := Breaker_open cooldown;
            consecutive := 0
          end
        end)
  done;
  let kept = ref [] and failed = ref [] in
  for i = k - 1 downto 0 do
    if ok.(i) then kept := i :: !kept else failed := i :: !failed
  done;
  let kept = Array.of_list !kept in
  let d =
    {
      Simulator.points = Array.map (fun i -> points.(i)) kept;
      values = Array.map (fun i -> out.(i)) kept;
    }
  in
  let k' = Array.length kept in
  if noise_rel > 0. && k' > 1 then begin
    let sigma = Stat.Descriptive.std d.Simulator.values in
    for i = 0 to k' - 1 do
      d.Simulator.values.(i) <-
        d.Simulator.values.(i)
        +. (noise_rel *. sigma *. Randkit.Gaussian.sample g)
    done
  end;
  let run =
    {
      (Simulator.clean_report ~requested:k) with
      Simulator.delivered = k';
      failed = Array.of_list !failed;
      faults_injected = !faults_injected;
      nonfinite_faults = !nonfinite;
      outliers_injected = !outliers;
      transient_faults = !transients;
      hang_faults = !hangs;
      retries = !retries;
      accounted_extra_seconds = !extra;
      burst_windows = Array.length (Randkit.Markov.windows burst);
      burst_samples = Randkit.Markov.count burst;
      burst_faults = !burst_faults;
      breaker_trips = !trips;
    }
  in
  ( d,
    {
      run;
      events = Array.of_list (List.rev !events);
      retries_granted = !retries_granted;
      retries_denied = !retries_denied;
    } )
