(** Sample hygiene: screen a simulated dataset before the design matrix
    is built.

    Two screens run in order. The {e finiteness} screen drops rows whose
    factor point or response holds a NaN/Inf — those would poison every
    inner product downstream. The {e outlier} screen drops rows whose
    response sits implausibly far from the bulk, measured on the robust
    MAD scale: with [med] the median response and
    [sigma = 1.4826·MAD] (the consistency constant for a normal bulk),
    a row is dropped when [|f − med| > threshold·sigma]. The median/MAD
    pair keeps its breakdown point at 50%, so the screen stays honest
    even when the faults it hunts contaminate a large fraction of the
    batch — a plain mean/std screen would be dragged by exactly the
    outliers it is meant to find.

    Screening happens in value space, before any basis evaluation, so it
    works identically for Dense and Streamed design providers — by the
    time a provider exists, only clean rows are left. *)

type reason =
  | Non_finite_point  (** a factor coordinate is NaN/Inf *)
  | Non_finite_value  (** the response is NaN/Inf *)
  | Outlier of float  (** robust z-score that crossed the threshold *)
  | Far_point of float
      (** robust Mahalanobis distance that crossed the χ² threshold
          ({!mahalanobis}) *)

type report = {
  total : int;  (** rows examined *)
  kept : int array;  (** surviving row indices, ascending *)
  dropped : (int * reason) array;  (** dropped rows with the reason, ascending *)
  center : float;  (** median of the finite responses *)
  spread : float;  (** robust sigma = 1.4826·MAD of the finite responses *)
  threshold : float;  (** the z-score cut that was applied *)
}

val default_threshold : float
(** 6.0 — far beyond any Gaussian bulk, so clean data is essentially
    never clipped, while the injected [outlier_scale]-sized garbage sits
    tens of sigmas out. *)

val mad_consistency : float
(** 1.4826 ≈ 1/Φ⁻¹(3/4) — the factor that makes the MAD a consistent
    sigma estimate for a normal bulk. Exported so the residual rescreen
    in {!Pipeline} scores on exactly the same robust scale. *)

val screen :
  ?threshold:float ->
  Circuit.Simulator.dataset ->
  (Circuit.Simulator.dataset * report, Error.t) result
(** [screen d] returns the surviving sub-dataset (points shared, not
    copied — {!Circuit.Simulator.split}) and the hygiene report.

    Degenerate spread: when the MAD is zero (over half the responses
    identical) no finite row can be z-scored, so the outlier screen is
    skipped and only non-finite rows are dropped — reported with
    [spread = 0]. Two or fewer finite rows take the same stand-down:
    their MAD is not an outlier scale (two rows sit 0.674 robust sigma
    from their midpoint however far apart they are), so rather than
    silently passing everything the screen reports [spread = 0].

    When {e every} row is non-finite there is no bulk to center on;
    rather than handing back an empty kept set with a NaN center that
    poisons the downstream fit, the call returns
    [Error (Simulation _)] (exit-2 one-liner in the CLI).
    @raise Invalid_argument when [threshold <= 0] or the dataset is
    empty — caller bugs, not data conditions. *)

val reason_to_string : reason -> string

val report_summary : report -> string
(** One line: totals kept/dropped, with per-reason counts — the
    grep-able hygiene line the CLI prints. *)

(** {2 Point-space screen}

    The response screen cannot see a corrupted {e factor point} whose
    response happens to look plausible — yet such a point silently
    steers the LAR equiangular walk, because the design matrix is built
    from the points. The Mahalanobis screen is the complementary
    defense: it works in factor space and flags points implausibly far
    from the bulk under a robust estimate of its center and scatter. *)

type point_report = {
  p_total : int;  (** rows examined *)
  p_kept : int array;  (** surviving row indices, ascending *)
  p_dropped : (int * reason) array;
      (** dropped rows, ascending; far points carry their distance *)
  p_dim : int;  (** factor dimension the χ² threshold was sized for *)
  p_threshold : float;
      (** the distance cut: [√(χ²_dim(confidence))] — rows with robust
          distance above it are dropped *)
  p_shrinkage : float;
      (** the shrinkage weight γ at which the scatter factor succeeded;
          1 means the screen degraded to per-coordinate robust z-scores *)
}

val default_confidence : float
(** 0.999 — under a clean Gaussian bulk roughly one row in a thousand
    is clipped, while corrupted coordinates sit far outside. *)

val chi2_quantile : dof:int -> float -> float
(** [chi2_quantile ~dof p] is the χ² quantile: exact closed forms at
    [dof = 1] ([(Φ⁻¹((1+p)/2))²], i.e. the squared half-normal quantile)
    and [dof = 2] ([−2·ln(1−p)]), the Wilson–Hilferty cube approximation
    (within a few permil) at [dof >= 3]. Exported for tests and for
    sizing custom cuts. *)

val mahalanobis :
  ?confidence:float ->
  Circuit.Simulator.dataset ->
  (Circuit.Simulator.dataset * point_report, Error.t) result
(** [mahalanobis d] screens the factor points: robust center and scale
    per coordinate (median and [1.4826·MAD]; a spread-free coordinate
    falls back to raw deviations), then the covariance of the
    standardized rows shrunk toward the identity —
    [(1−γ)·S + γ·I] with γ escalating over a fixed ladder until the
    Cholesky factor exists (γ = 1 always does) — and a row is dropped
    when its robust distance exceeds [√(χ²_dim(confidence))].

    Verdicts are exactly invariant to sample order: every
    floating-point accumulation walks the rows in canonical
    (lexicographic point) order, and each row's distance depends only
    on the row and the canonical statistics.

    Degenerate cases mirror {!screen}: ≤2 finite rows stand down to
    finiteness-only screening (reported with [p_shrinkage = 1]); a
    dataset with {e no} finite row returns [Error (Simulation _)].
    @raise Invalid_argument when [confidence] is outside (0, 1) or the
    dataset is empty. *)

val point_report_summary : point_report -> string
(** One line: totals kept/dropped with non-finite/far counts, the
    dimension, distance threshold, and shrinkage used. *)
