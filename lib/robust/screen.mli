(** Sample hygiene: screen a simulated dataset before the design matrix
    is built.

    Two screens run in order. The {e finiteness} screen drops rows whose
    factor point or response holds a NaN/Inf — those would poison every
    inner product downstream. The {e outlier} screen drops rows whose
    response sits implausibly far from the bulk, measured on the robust
    MAD scale: with [med] the median response and
    [sigma = 1.4826·MAD] (the consistency constant for a normal bulk),
    a row is dropped when [|f − med| > threshold·sigma]. The median/MAD
    pair keeps its breakdown point at 50%, so the screen stays honest
    even when the faults it hunts contaminate a large fraction of the
    batch — a plain mean/std screen would be dragged by exactly the
    outliers it is meant to find.

    Screening happens in value space, before any basis evaluation, so it
    works identically for Dense and Streamed design providers — by the
    time a provider exists, only clean rows are left. *)

type reason =
  | Non_finite_point  (** a factor coordinate is NaN/Inf *)
  | Non_finite_value  (** the response is NaN/Inf *)
  | Outlier of float  (** robust z-score that crossed the threshold *)

type report = {
  total : int;  (** rows examined *)
  kept : int array;  (** surviving row indices, ascending *)
  dropped : (int * reason) array;  (** dropped rows with the reason, ascending *)
  center : float;  (** median of the finite responses *)
  spread : float;  (** robust sigma = 1.4826·MAD of the finite responses *)
  threshold : float;  (** the z-score cut that was applied *)
}

val default_threshold : float
(** 6.0 — far beyond any Gaussian bulk, so clean data is essentially
    never clipped, while the injected [outlier_scale]-sized garbage sits
    tens of sigmas out. *)

val mad_consistency : float
(** 1.4826 ≈ 1/Φ⁻¹(3/4) — the factor that makes the MAD a consistent
    sigma estimate for a normal bulk. Exported so the residual rescreen
    in {!Pipeline} scores on exactly the same robust scale. *)

val screen :
  ?threshold:float ->
  Circuit.Simulator.dataset ->
  (Circuit.Simulator.dataset * report, Error.t) result
(** [screen d] returns the surviving sub-dataset (points shared, not
    copied — {!Circuit.Simulator.split}) and the hygiene report.

    Degenerate spread: when the MAD is zero (over half the responses
    identical) no finite row can be z-scored, so the outlier screen is
    skipped and only non-finite rows are dropped — reported with
    [spread = 0].

    When {e every} row is non-finite there is no bulk to center on;
    rather than handing back an empty kept set with a NaN center that
    poisons the downstream fit, the call returns
    [Error (Simulation _)] (exit-2 one-liner in the CLI).
    @raise Invalid_argument when [threshold <= 0] or the dataset is
    empty — caller bugs, not data conditions. *)

val reason_to_string : reason -> string

val report_summary : report -> string
(** One line: totals kept/dropped, with per-reason counts — the
    grep-able hygiene line the CLI prints. *)
