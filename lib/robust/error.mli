(** Structured errors for the fault-tolerant fitting pipeline.

    Every failure the pipeline can hit — bad user input, a simulator
    that never delivered enough samples, a numerical dead end, an I/O
    problem — is folded into one variant so callers (the CLI above all)
    can print a single friendly line and pick an exit code instead of
    leaking an OCaml backtrace. *)

type t =
  | Invalid_input of string  (** bad arguments, malformed files, bad flags *)
  | Config of string
      (** flags that are individually valid but mutually contradictory —
          an explicit request the engine cannot honor (e.g. [--fused-cv]
          with [--shards > 1]); distinct from [Invalid_input] so scripts
          can grep the [config:] category *)
  | Simulation of string  (** the sample campaign failed or fell short *)
  | Numerical of string  (** every fallback rung exhausted *)
  | Io of string  (** filesystem-level failure *)
  | Internal of string  (** an unexpected exception — a bug, report it *)

val message : t -> string
(** The bare description, without the category. *)

val to_string : t -> string
(** ["<category>: <description>"] — the CLI's one-line diagnostic. *)

val of_exn : exn -> t
(** Classify a raised exception: [Invalid_argument]/[Failure] become
    [Invalid_input], {!Rsm.Select.Conflict} becomes [Config],
    [Sys_error] becomes [Io],
    {!Linalg.Cholesky.Not_positive_definite} / {!Linalg.Tri.Singular} /
    {!Linalg.Lu.Singular} become [Numerical], anything else is
    [Internal] (with [Printexc.to_string]). *)

val guard : (unit -> 'a) -> ('a, t) result
(** [guard f] runs [f] and catches any exception into [Error (of_exn e)].
    Runtime-fatal exceptions ([Out_of_memory], [Stack_overflow]) are
    re-raised, not captured. *)
