(** Adaptive retry: exponential backoff with deterministic jitter, a
    global attempt budget, and a circuit breaker over the sample axis.

    {!Circuit.Simulator.run_robust}'s fixed policy retries every failed
    sample the same number of times — sensible under i.i.d. faults,
    wasteful under a correlated outage ({!Circuit.Simulator.burst_model})
    where every retry inside the window burns backoff and re-run cost
    for nothing. The driver here adapts: after [breaker_threshold]
    consecutive sample failures the breaker {e trips} and subsequent
    samples fail fast with a single attempt until a cooldown sized to
    the expected burst length has passed; the next sample is a
    {e half-open probe} with full retries — success closes the breaker,
    failure re-opens it for another cooldown. A global [attempt_budget]
    caps the total retries a run may spend, whatever the policy would
    otherwise grant.

    Determinism: sample points are drawn sequentially from the caller's
    stream exactly as in {!Circuit.Simulator.run}; each sample's fault
    history comes from its own pre-split stream via
    {!Circuit.Simulator.draw_attempt}; the breaker walks the samples in
    index order. The one expensive clean evaluation per point runs
    batch-parallel over [?pool] (evaluators are pure), so the dataset,
    report, and every policy decision are bitwise identical at every
    domain count. Backoff and hang time is {e accounted}, never slept. *)

type policy = {
  max_attempts : int;  (** attempts per sample while the breaker is closed *)
  base_backoff : float;
      (** accounted base backoff; attempt [a] charges
          [2^(a-2) · base · (1 + jitter·u)] seconds *)
  jitter : float;
      (** jitter fraction in [[0, 1)]; [u] is a deterministic uniform
          draw from the sample's own fault stream *)
  attempt_budget : int;
      (** global cap on retries (attempts beyond each sample's first)
          across the whole run; [max_int] = unbounded *)
  breaker_threshold : int;
      (** consecutive failed samples that trip the breaker; [0] disables
          the breaker entirely *)
  cooldown : int;
      (** samples the tripped breaker stays open before the half-open
          probe; [0] = derive from the fault plan's expected burst
          length (or 16 when the plan has no burst model) *)
}

val policy :
  ?max_attempts:int ->
  ?base_backoff:float ->
  ?jitter:float ->
  ?attempt_budget:int ->
  ?breaker_threshold:int ->
  ?cooldown:int ->
  unit ->
  policy
(** Validated constructor. Defaults: [max_attempts = 4],
    [base_backoff = 1], [jitter = 0.5], unbounded budget,
    [breaker_threshold = 8], derived cooldown.
    @raise Invalid_argument on [max_attempts < 1], a negative backoff,
    budget, threshold, or cooldown, or jitter outside [[0, 1)]. *)

(** Every policy decision, in sample order — the audit trail of the
    adaptive run. *)
type event =
  | Backoff of { sample : int; attempt : int; seconds : float }
      (** a granted retry and the accounted wait before it *)
  | Tripped of { sample : int; consecutive : int; cooldown : int }
      (** breaker opened after [consecutive] failed samples *)
  | Fast_fail of { sample : int }
      (** breaker open: sample abandoned after a single attempt *)
  | Probe of { sample : int; delivered : bool }
      (** the half-open probe and its verdict *)
  | Closed of { sample : int }  (** breaker closed (probe or early success) *)
  | Budget_exhausted of { sample : int }
      (** first retry denied for lack of budget (emitted once) *)

val event_to_string : event -> string

type report = {
  run : Circuit.Simulator.run_report;
      (** standard run report; [breaker_trips] is filled in *)
  events : event array;
  retries_granted : int;  (** retries actually spent from the budget *)
  retries_denied : int;  (** retries the policy wanted but the budget refused *)
}

val run :
  ?noise_rel:float ->
  ?pool:Parallel.Pool.t ->
  ?faults:Circuit.Simulator.fault_plan ->
  policy ->
  Circuit.Simulator.t ->
  Randkit.Prng.t ->
  k:int ->
  Circuit.Simulator.dataset * report
(** [run policy sim g ~k] draws [k] samples under [faults] with the
    adaptive retry policy. Failed samples are dropped and recorded in
    [report.run.failed], exactly as {!Circuit.Simulator.run_robust};
    [noise_rel] applies to delivered rows in row order from [g].
    @raise Invalid_argument when [k <= 0]. *)
