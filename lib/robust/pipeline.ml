module Provider = Polybasis.Design.Provider

type config = {
  method_ : Rsm.Solver.method_;
  folds : int;
  max_lambda : int;
  samples : int;
  screen : bool;
  screen_threshold : float;
  faults : Circuit.Simulator.fault_plan;
  retry : Circuit.Simulator.retry_policy;
  min_samples : int;
  streamed : bool;
  checkpoint : string option;
  resume : bool;
}

let config ?(method_ = Rsm.Solver.Omp) ?(folds = 4) ?(max_lambda = 100)
    ?(samples = 1000) ?(screen = true)
    ?(screen_threshold = Screen.default_threshold)
    ?(faults = Circuit.Simulator.no_faults)
    ?(retry = Circuit.Simulator.retry_policy ()) ?(min_samples = 30)
    ?(streamed = false) ?checkpoint ?(resume = false) () =
  let fail fmt = Printf.ksprintf (fun m -> Error (Error.Invalid_input m)) fmt in
  if folds < 2 then fail "folds must be at least 2, got %d" folds
  else if max_lambda < 1 then fail "max_lambda must be positive, got %d" max_lambda
  else if samples < 1 then fail "samples must be positive, got %d" samples
  else if screen_threshold <= 0. then
    fail "screen threshold must be positive, got %g" screen_threshold
  else if min_samples < 1 then
    fail "min_samples must be positive, got %d" min_samples
  else if min_samples > samples then
    fail "min_samples (%d) exceeds the requested sample count (%d)" min_samples
      samples
  else if resume && checkpoint = None then
    fail "resume requires a checkpoint path"
  else if
    checkpoint <> None
    && not
         (match method_ with
         | Rsm.Solver.Star | Rsm.Solver.Lar | Rsm.Solver.Lasso | Rsm.Solver.Omp
           ->
             true
         | _ -> false)
  then
    fail "checkpointing supports the star, lar, lasso and omp methods only"
  else
    Ok
      {
        method_;
        folds;
        max_lambda;
        samples;
        screen;
        screen_threshold;
        faults;
        retry;
        min_samples;
        streamed;
        checkpoint;
        resume;
      }

type outcome = {
  model : Rsm.Model.t;
  dataset : Circuit.Simulator.dataset;
  run_report : Circuit.Simulator.run_report;
  screen_report : Screen.report option;
}

let ( let* ) = Result.bind

let fit ?pool cfg sim basis rng =
  let* data, run_report =
    Error.guard (fun () ->
        Circuit.Simulator.run_robust ?pool ~faults:cfg.faults ~retry:cfg.retry
          sim rng ~k:cfg.samples)
  in
  let* data, screen_report =
    if not cfg.screen then Ok (data, None)
    else
      let* d, r =
        match
          Error.guard (fun () ->
              Screen.screen ~threshold:cfg.screen_threshold data)
        with
        | Ok inner -> inner  (* the screen's own typed verdict *)
        | Error e -> Error e  (* the guard caught a raise *)
      in
      Ok (d, Some r)
  in
  let n = Circuit.Simulator.dataset_size data in
  if n < cfg.min_samples then
    Error
      (Error.Simulation
         (Printf.sprintf
            "only %d of %d requested samples survived delivery and screening \
             (minimum %d); raise the sample count, the retry budget, or the \
             screen threshold"
            n cfg.samples cfg.min_samples))
  else
    let* model =
      Error.guard (fun () ->
          let pts = data.Circuit.Simulator.points in
          let src =
            if cfg.streamed then Provider.streamed basis pts
            else Provider.dense (Polybasis.Design.matrix_rows ?pool basis pts)
          in
          Rsm.Solver.fit_cv_p ~folds:cfg.folds ~max_lambda:cfg.max_lambda
            ~on_singular:`Fallback ?cv_checkpoint:cfg.checkpoint
            ~cv_resume:cfg.resume rng src data.Circuit.Simulator.values
            cfg.method_)
    in
    Ok { model; dataset = data; run_report; screen_report }

let outcome_summary o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Circuit.Simulator.report_summary o.run_report);
  Buffer.add_char buf '\n';
  (match o.screen_report with
  | Some r ->
      Buffer.add_string buf (Screen.report_summary r);
      Buffer.add_char buf '\n'
  | None -> Buffer.add_string buf "screen: off\n");
  Buffer.add_string buf
    (Printf.sprintf "model: %d bases selected from %d rows"
       (Rsm.Model.nnz o.model)
       (Circuit.Simulator.dataset_size o.dataset));
  Array.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "\nnote: %s" note))
    (Rsm.Model.notes o.model);
  Buffer.contents buf
