module Provider = Polybasis.Design.Provider

type screen_space = Response | Factor | Both

let screen_space_to_string = function
  | Response -> "response"
  | Factor -> "factor"
  | Both -> "both"

let screen_space_of_string s =
  match String.lowercase_ascii s with
  | "response" | "value" -> Some Response
  | "factor" | "point" -> Some Factor
  | "both" -> Some Both
  | _ -> None

let default_quorum = 0.9

type config = {
  method_ : Rsm.Solver.method_;
  folds : int;
  max_lambda : int;
  samples : int;
  screen : bool;
  screen_threshold : float;
  screen_space : screen_space;
  screen_confidence : float;
  faults : Circuit.Simulator.fault_plan;
  retry : Circuit.Simulator.retry_policy;
  adaptive : Retry.policy option;
  min_samples : int;
  quorum : float;
  streamed : bool;
  checkpoint : string option;
  resume : bool;
  sweep : Rsm.Corr_sweep.sweep;
  shards : int;
  shard_mode : Rsm.Shard_sweep.mode;
  fused_cv : bool option;
  fused_outputs : bool option;
  rescreen : bool;
}

let config ?(method_ = Rsm.Solver.Omp) ?(folds = 4) ?(max_lambda = 100)
    ?(samples = 1000) ?(screen = true)
    ?(screen_threshold = Screen.default_threshold)
    ?(screen_space = Response)
    ?(screen_confidence = Screen.default_confidence)
    ?(faults = Circuit.Simulator.no_faults)
    ?(retry = Circuit.Simulator.retry_policy ()) ?adaptive
    ?(min_samples = 30) ?(quorum = default_quorum)
    ?(streamed = false) ?checkpoint ?(resume = false)
    ?(sweep = Rsm.Corr_sweep.Exact) ?(shards = 1)
    ?(shard_mode = Rsm.Shard_sweep.Domains) ?fused_cv ?fused_outputs
    ?(rescreen = false) () =
  let fail fmt = Printf.ksprintf (fun m -> Error (Error.Invalid_input m)) fmt in
  if folds < 2 then fail "folds must be at least 2, got %d" folds
  else if
    match sweep with
    | Rsm.Corr_sweep.Incremental { refresh } -> refresh < 0
    | Rsm.Corr_sweep.Exact -> false
  then fail "incremental sweep refresh cadence must be non-negative"
  else if shards < 1 then fail "shards must be positive, got %d" shards
  else if fused_cv = Some true && shards > 1 then
    (* Caught here, before any simulation spend; the same contradiction
       reaching the solver raises [Rsm.Select.Conflict] with the same
       category. *)
    Error
      (Error.Config
         (Printf.sprintf
            "--fused-cv conflicts with --shards %d: the sharded engine owns \
             each solver run's selection sweep, while fused CV shares one \
             sweep across all folds; drop --fused-cv or run with --shards 1"
            shards))
  else if fused_outputs = Some true && shards > 1 then
    Error
      (Error.Config
         (Printf.sprintf
            "--fused-outputs conflicts with --shards %d: the sharded engine \
             owns each solver run's selection sweep, while fused multi-output \
             fitting shares one sweep across all outputs and folds; drop \
             --fused-outputs or run with --shards 1"
            shards))
  else if max_lambda < 1 then fail "max_lambda must be positive, got %d" max_lambda
  else if samples < 1 then fail "samples must be positive, got %d" samples
  else if screen_threshold <= 0. then
    fail "screen threshold must be positive, got %g" screen_threshold
  else if not (screen_confidence > 0. && screen_confidence < 1.) then
    fail "screen confidence must lie in (0, 1), got %g" screen_confidence
  else if min_samples < 1 then
    fail "min_samples must be positive, got %d" min_samples
  else if min_samples > samples then
    fail "min_samples (%d) exceeds the requested sample count (%d)" min_samples
      samples
  else if not (quorum > 0. && quorum <= 1.) then
    fail "quorum must lie in (0, 1], got %g" quorum
  else if resume && checkpoint = None then
    fail "resume requires a checkpoint path"
  else if
    checkpoint <> None
    && not
         (match method_ with
         | Rsm.Solver.Star | Rsm.Solver.Lar | Rsm.Solver.Lasso | Rsm.Solver.Omp
           ->
             true
         | _ -> false)
  then
    fail "checkpointing supports the star, lar, lasso and omp methods only"
  else
    Ok
      {
        method_;
        folds;
        max_lambda;
        samples;
        screen;
        screen_threshold;
        screen_space;
        screen_confidence;
        faults;
        retry;
        adaptive;
        min_samples;
        quorum;
        streamed;
        checkpoint;
        resume;
        sweep;
        shards;
        shard_mode;
        fused_cv;
        fused_outputs;
        rescreen;
      }

type outcome = {
  model : Rsm.Model.t;
  dataset : Circuit.Simulator.dataset;
  run_report : Circuit.Simulator.run_report;
  screen_report : Screen.report option;
  point_report : Screen.point_report option;
  adaptive_report : Retry.report option;
}

let ( let* ) = Result.bind

(* Residual rescreen after a warm-start fit: score each row's residual
   on the robust MAD scale and, when rows cross the threshold, repair
   the active-set normal equations by *down-dating* the Gram factor one
   dropped row at a time (O(d·p²), [Cholesky.Grow.downdate_row]) instead
   of refactorizing from the surviving rows (O(K·p² + p³)). The support
   is kept; only the coefficients move. If the down-dated factor loses
   positive definiteness — too few surviving rows, near-duplicate
   support columns — the refit falls back to a cold [Rsm.Refit] solve on
   the kept rows, which always succeeds (ridge rung). *)
let screen_refit ?(threshold = Screen.default_threshold) src f model =
  if threshold <= 0. then
    invalid_arg "Pipeline.screen_refit: threshold must be positive";
  let n = Provider.rows src in
  if Array.length f <> n then
    invalid_arg "Pipeline.screen_refit: response length mismatch";
  let support = model.Rsm.Model.support in
  let p = Array.length support in
  if p = 0 then (model, [||])
  else begin
    let pred = Rsm.Model.predict_p model src in
    let res = Array.init n (fun i -> f.(i) -. pred.(i)) in
    let med = Stat.Descriptive.median res in
    let dev = Array.map (fun r -> Float.abs (r -. med)) res in
    let sigma = Screen.mad_consistency *. Stat.Descriptive.median dev in
    let dropped = ref [] in
    if sigma > 0. then
      for i = n - 1 downto 0 do
        if Float.abs (res.(i) -. med) /. sigma > threshold then
          dropped := i :: !dropped
      done;
    let dropped = Array.of_list !dropped in
    let d = Array.length dropped in
    if d = 0 then (model, [||])
    else if n - d < p then
      (* Fewer surviving rows than support columns: no refit can be
         better-determined than the warm start — keep it, annotated. *)
      ( Rsm.Model.add_note model
          (Printf.sprintf
             "rescreen: %d of %d rows flagged, too few left for the %d-column \
              support; model kept"
             d n p),
        dropped )
    else begin
      let cols = Array.map (fun j -> Provider.column src j) support in
      let is_dropped = Array.make n false in
      Array.iter (fun i -> is_dropped.(i) <- true) dropped;
      let coeffs, how =
        match
          let g = Linalg.Cholesky.Grow.create p in
          let b = Array.make p 0. in
          for q = 0 to p - 1 do
            let v =
              Array.init q (fun a -> Linalg.Vec.dot cols.(a) cols.(q))
            in
            Linalg.Cholesky.Grow.append g v (Linalg.Vec.dot cols.(q) cols.(q));
            b.(q) <- Linalg.Vec.dot cols.(q) f
          done;
          Array.iter
            (fun i ->
              let x = Array.map (fun col -> col.(i)) cols in
              Linalg.Cholesky.Grow.downdate_row g x;
              Array.iteri
                (fun q col -> b.(q) <- b.(q) -. (f.(i) *. col.(i)))
                cols)
            dropped;
          Linalg.Cholesky.Grow.solve g b
        with
        | coeffs -> (coeffs, "gram downdate")
        | exception Linalg.Cholesky.Not_positive_definite _ ->
            (* Down-dated Gram went indefinite: cold LS on the kept rows
               through the fallback ladder (ridge rung never fails). *)
            let kept = ref [] in
            for i = n - 1 downto 0 do
              if not is_dropped.(i) then kept := i :: !kept
            done;
            let kept = Array.of_list !kept in
            let gather col = Array.map (fun i -> col.(i)) kept in
            let f_kept = gather f in
            let coeffs, rung =
              Rsm.Refit.solve_cols (Array.map gather cols) f_kept
            in
            ( coeffs,
              match Rsm.Refit.note rung with
              | None -> "cold refit"
              | Some note -> Printf.sprintf "cold refit, %s" note )
      in
      let refit =
        Rsm.Model.make ~basis_size:model.Rsm.Model.basis_size ~support
          ~coeffs
      in
      let refit =
        Array.fold_left Rsm.Model.add_note refit (Rsm.Model.notes model)
      in
      ( Rsm.Model.add_note refit
          (Printf.sprintf "rescreen: dropped %d of %d rows (%s)" d n how),
        dropped )
    end
  end

(* The provenance line a quorum-degraded fit carries on the model
   itself: what was lost, where, and under which outage windows. One
   line, because notes serialize as single [#note] lines. *)
let degraded_note ~requested ~survived ~quorum
    (run : Circuit.Simulator.run_report) =
  let delivery_lost = run.Circuit.Simulator.requested - run.delivered in
  let screened = run.delivered - survived in
  let burst =
    if run.burst_windows > 0 then
      Printf.sprintf "; %d burst window(s) over %d sample(s)"
        run.burst_windows run.burst_samples
    else ""
  in
  let breaker =
    if run.breaker_trips > 0 then
      Printf.sprintf "; %d breaker trip(s)" run.breaker_trips
    else ""
  in
  Printf.sprintf
    "degraded: kept %d of %d requested rows (%d lost in delivery, %d \
     screened) above quorum %g%%%s%s"
    survived requested delivery_lost screened (100. *. quorum) burst breaker

let fit ?pool ?recovered cfg sim basis rng =
  let* data, run_report, adaptive_report =
    Error.guard (fun () ->
        match cfg.adaptive with
        | None ->
            let d, r =
              Circuit.Simulator.run_robust ?pool ~faults:cfg.faults
                ~retry:cfg.retry sim rng ~k:cfg.samples
            in
            (d, r, None)
        | Some policy ->
            let d, r =
              Retry.run ?pool ~faults:cfg.faults policy sim rng ~k:cfg.samples
            in
            (d, r.Retry.run, Some r))
  in
  let screen_response =
    cfg.screen
    && match cfg.screen_space with Response | Both -> true | Factor -> false
  in
  let screen_factor =
    cfg.screen
    && match cfg.screen_space with Factor | Both -> true | Response -> false
  in
  let* data, screen_report =
    if not screen_response then Ok (data, None)
    else
      let* d, r =
        match
          Error.guard (fun () ->
              Screen.screen ~threshold:cfg.screen_threshold data)
        with
        | Ok inner -> inner  (* the screen's own typed verdict *)
        | Error e -> Error e  (* the guard caught a raise *)
      in
      Ok (d, Some r)
  in
  let* data, point_report =
    if not screen_factor then Ok (data, None)
    else
      let* d, r =
        match
          Error.guard (fun () ->
              Screen.mahalanobis ~confidence:cfg.screen_confidence data)
        with
        | Ok inner -> inner
        | Error e -> Error e
      in
      Ok (d, Some r)
  in
  let n = Circuit.Simulator.dataset_size data in
  let quorum_floor =
    int_of_float (Float.ceil (cfg.quorum *. float_of_int cfg.samples))
  in
  if n < cfg.min_samples then
    Error
      (Error.Simulation
         (Printf.sprintf
            "only %d of %d requested samples survived delivery and screening \
             (minimum %d); raise the sample count, the retry budget, or the \
             screen threshold"
            n cfg.samples cfg.min_samples))
  else if n < quorum_floor then
    Error
      (Error.Simulation
         (Printf.sprintf
            "quorum lost: only %d of %d requested samples survived delivery \
             and screening, below the %g%% quorum (%d); raise the sample \
             count or the retry budget, or lower --quorum to accept a \
             degraded fit"
            n cfg.samples (100. *. cfg.quorum) quorum_floor))
  else
    let notes =
      if n >= cfg.samples then [||]
      else
        [|
          degraded_note ~requested:cfg.samples ~survived:n ~quorum:cfg.quorum
            run_report;
        |]
    in
    let* src =
      Error.guard (fun () ->
          let pts = data.Circuit.Simulator.points in
          if cfg.streamed then Provider.streamed basis pts
          else Provider.dense (Polybasis.Design.matrix_rows ?pool basis pts))
    in
    let* model =
      Error.guard (fun () ->
          Rsm.Solver.fit_cv_p ~folds:cfg.folds ~max_lambda:cfg.max_lambda
            ~on_singular:`Fallback ~sweep:cfg.sweep ~shards:cfg.shards
            ~shard_mode:cfg.shard_mode ?recovered ?fused:cfg.fused_cv
            ?cv_checkpoint:cfg.checkpoint ~cv_resume:cfg.resume ~notes rng src
            data.Circuit.Simulator.values cfg.method_)
    in
    let* model =
      if not cfg.rescreen then Ok model
      else
        Error.guard (fun () ->
            fst
              (screen_refit ~threshold:cfg.screen_threshold src
                 data.Circuit.Simulator.values model))
    in
    Ok
      {
        model;
        dataset = data;
        run_report;
        screen_report;
        point_report;
        adaptive_report;
      }

type multi_outcome = {
  models : Rsm.Model.t array;
  datasets : Circuit.Simulator.dataset array;
  m_run_report : Circuit.Simulator.run_report;
  screen_reports : Screen.report option array;
  m_point_report : Screen.point_report option;
}

(* Intersect per-output kept sets: a row survives only when every
   output's screen kept it, so all outputs keep one shared row set —
   and hence one design matrix. [kepts] are ascending index arrays in
   the same (delivered-row) index space. *)
let intersect_kept ~n kepts =
  let count = Array.make n 0 in
  Array.iter (Array.iter (fun i -> count.(i) <- count.(i) + 1)) kepts;
  let r = Array.length kepts in
  let shared = ref [] in
  for i = n - 1 downto 0 do
    if count.(i) = r then shared := i :: !shared
  done;
  Array.of_list !shared

let fit_multi ?pool ?recovered cfg sims basis rng =
  let outputs = Array.length sims in
  if outputs = 0 then
    Error (Error.Invalid_input "fit_multi: at least one simulator required")
  else if cfg.adaptive <> None then
    Error
      (Error.Config
         "adaptive retry is not available for multi-output fits: the breaker \
          driver owns the per-sample retry loop of a single simulator; use \
          the fixed retry policy or fit each output separately")
  else
    let* datasets, run_report =
      Error.guard (fun () ->
          Circuit.Simulator.run_robust_multi ?pool ~faults:cfg.faults
            ~retry:cfg.retry sims rng ~k:cfg.samples)
    in
    let screen_response =
      cfg.screen
      && match cfg.screen_space with Response | Both -> true | Factor -> false
    in
    let screen_factor =
      cfg.screen
      && match cfg.screen_space with Factor | Both -> true | Response -> false
    in
    let* datasets, screen_reports =
      if not screen_response then Ok (datasets, Array.map (fun _ -> None) sims)
      else
        (* Each output is screened on its own center/spread (a gain
           outlier says nothing about the power scale), then the kept
           sets are intersected so the surviving rows are shared. *)
        let rec screen_all r acc =
          if r = outputs then Ok (List.rev acc)
          else
            let* _, rep =
              match
                Error.guard (fun () ->
                    Screen.screen ~threshold:cfg.screen_threshold datasets.(r))
              with
              | Ok inner -> inner
              | Error e -> Error e
            in
            screen_all (r + 1) (rep :: acc)
        in
        let* reports = screen_all 0 [] in
        let reports = Array.of_list reports in
        let n = Circuit.Simulator.dataset_size datasets.(0) in
        let shared =
          intersect_kept ~n (Array.map (fun r -> r.Screen.kept) reports)
        in
        (* Split once so the surviving point array stays physically
           shared across the per-output datasets. *)
        let first = Circuit.Simulator.split datasets.(0) shared in
        Ok
          ( Array.map
              (fun d ->
                {
                  (Circuit.Simulator.split d shared) with
                  Circuit.Simulator.points = first.Circuit.Simulator.points;
                })
              datasets,
            Array.map (fun r -> Some r) reports )
    in
    let* datasets, point_report =
      if not screen_factor then Ok (datasets, None)
      else
        (* The factor points are shared across outputs, so the point
           screen runs once (on output 0's dataset) and its verdict is
           applied to every output. *)
        let* _, rep =
          match
            Error.guard (fun () ->
                Screen.mahalanobis ~confidence:cfg.screen_confidence
                  datasets.(0))
          with
          | Ok inner -> inner
          | Error e -> Error e
        in
        let first = Circuit.Simulator.split datasets.(0) rep.Screen.p_kept in
        Ok
          ( Array.map
              (fun d ->
                {
                  (Circuit.Simulator.split d rep.Screen.p_kept) with
                  Circuit.Simulator.points = first.Circuit.Simulator.points;
                })
              datasets,
            Some rep )
    in
    let n = Circuit.Simulator.dataset_size datasets.(0) in
    let quorum_floor =
      int_of_float (Float.ceil (cfg.quorum *. float_of_int cfg.samples))
    in
    if n < cfg.min_samples then
      Error
        (Error.Simulation
           (Printf.sprintf
              "only %d of %d requested samples survived delivery and \
               screening (minimum %d); raise the sample count, the retry \
               budget, or the screen threshold"
              n cfg.samples cfg.min_samples))
    else if n < quorum_floor then
      Error
        (Error.Simulation
           (Printf.sprintf
              "quorum lost: only %d of %d requested samples survived \
               delivery and screening, below the %g%% quorum (%d); raise the \
               sample count or the retry budget, or lower --quorum to accept \
               a degraded fit"
              n cfg.samples (100. *. cfg.quorum) quorum_floor))
    else
      let notes =
        if n >= cfg.samples then Array.make outputs [||]
        else
          Array.make outputs
            [|
              degraded_note ~requested:cfg.samples ~survived:n
                ~quorum:cfg.quorum run_report;
            |]
      in
      let* src =
        Error.guard (fun () ->
            let pts = datasets.(0).Circuit.Simulator.points in
            if cfg.streamed then Provider.streamed basis pts
            else Provider.dense (Polybasis.Design.matrix_rows ?pool basis pts))
      in
      let fs =
        Array.map (fun d -> d.Circuit.Simulator.values) datasets
      in
      let* models =
        Error.guard (fun () ->
            Rsm.Solver.fit_multi_p ~folds:cfg.folds ~max_lambda:cfg.max_lambda
              ~on_singular:`Fallback ~sweep:cfg.sweep ~shards:cfg.shards
              ~shard_mode:cfg.shard_mode ?recovered ?fused:cfg.fused_cv
              ?fused_outputs:cfg.fused_outputs ?cv_checkpoint:cfg.checkpoint
              ~cv_resume:cfg.resume ~notes rng src fs cfg.method_)
      in
      let* models =
        if not cfg.rescreen then Ok models
        else
          Error.guard (fun () ->
              Array.mapi
                (fun r m ->
                  fst
                    (screen_refit ~threshold:cfg.screen_threshold src fs.(r) m))
                models)
      in
      Ok
        {
          models;
          datasets;
          m_run_report = run_report;
          screen_reports;
          m_point_report = point_report;
        }

let outcome_summary o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Circuit.Simulator.report_summary o.run_report);
  Buffer.add_char buf '\n';
  (match o.adaptive_report with
  | Some r ->
      Buffer.add_string buf
        (Printf.sprintf
           "adaptive retry: %d event(s), %d retr%s granted, %d denied\n"
           (Array.length r.Retry.events)
           r.Retry.retries_granted
           (if r.Retry.retries_granted = 1 then "y" else "ies")
           r.Retry.retries_denied)
  | None -> ());
  (match (o.screen_report, o.point_report) with
  | None, None -> Buffer.add_string buf "screen: off\n"
  | sr, pr ->
      (match sr with
      | Some r ->
          Buffer.add_string buf (Screen.report_summary r);
          Buffer.add_char buf '\n'
      | None -> ());
      (match pr with
      | Some r ->
          Buffer.add_string buf (Screen.point_report_summary r);
          Buffer.add_char buf '\n'
      | None -> ()));
  Buffer.add_string buf
    (Printf.sprintf "model: %d bases selected from %d rows"
       (Rsm.Model.nnz o.model)
       (Circuit.Simulator.dataset_size o.dataset))
  ;
  Array.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "\nnote: %s" note))
    (Rsm.Model.notes o.model);
  Buffer.contents buf

let multi_outcome_summary ?names o =
  let outputs = Array.length o.models in
  let name r =
    match names with
    | Some ns when Array.length ns = outputs -> ns.(r)
    | _ -> Printf.sprintf "output %d" r
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Circuit.Simulator.report_summary o.m_run_report);
  Buffer.add_char buf '\n';
  let any_screen =
    Array.exists Option.is_some o.screen_reports || o.m_point_report <> None
  in
  if not any_screen then Buffer.add_string buf "screen: off\n"
  else begin
    Array.iteri
      (fun r rep ->
        match rep with
        | Some rep ->
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" (name r) (Screen.report_summary rep))
        | None -> ())
      o.screen_reports;
    match o.m_point_report with
    | Some rep ->
        Buffer.add_string buf (Screen.point_report_summary rep);
        Buffer.add_char buf '\n'
    | None -> ()
  end;
  let rows = Circuit.Simulator.dataset_size o.datasets.(0) in
  Array.iteri
    (fun r m ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %d bases selected from %d rows" (name r)
           (Rsm.Model.nnz m) rows);
      Array.iter
        (fun note ->
          Buffer.add_string buf (Printf.sprintf "\n%s note: %s" (name r) note))
        (Rsm.Model.notes m);
      Buffer.add_char buf '\n')
    o.models;
  (* Drop the trailing newline so the summary composes like
     [outcome_summary]'s. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

(* --- serving bridge ---------------------------------------------------

   A pipeline outcome is not the end of the line: the fitted model's
   whole purpose is to be evaluated at Monte-Carlo scale. [serve_yield]
   compiles the outcome's model to an instruction tape and streams the
   yield estimate through [Serve.Stream], threading the sampler and
   projection choices; failures surface as typed [Error.t] values like
   every other pipeline stage, never as escaping exceptions. *)

let serve_yield ?pool ?batch ?sampler ?project ?(samples = 100_000) o basis rng
    spec =
  if samples <= 0 then
    Error (Error.Invalid_input "serve_yield: samples must be positive")
  else if
    project = Some true && sampler <> Some Randkit.Gaussian.Ziggurat
  then
    Error
      (Error.Config
         "serve_yield: projection requires the ziggurat (counter) sampler")
  else
    match Serve.Eval.compile o.model basis with
    | exception Invalid_argument m -> Error (Error.Invalid_input m)
    | tape -> (
        match
          Serve.Stream.estimate ?pool ?batch ?sampler ?project ~samples tape
            rng spec
        with
        | e -> Ok e
        | exception Invalid_argument m -> Error (Error.Invalid_input m)
        | exception e -> Error (Error.Internal (Printexc.to_string e)))
