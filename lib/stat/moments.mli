(** Higher-order sample moments and moment-based quantiles.

    Quadratic response-surface models produce {e non-Gaussian}
    performance distributions (a quadratic form of Gaussians is skewed);
    skewness/kurtosis quantify the departure, and the Cornish–Fisher
    expansion turns the first four moments into corrected quantiles —
    the moment-matching style of analysis the paper's introduction
    cites (APEX, reference [8]). *)

val central_moment : int -> float array -> float
(** [central_moment r xs] is the [r]-th sample central moment
    [1/n·Σ(x − x̄)^r].
    @raise Invalid_argument on empty input or [r < 0]. *)

val skewness : float array -> float
(** Standardized third moment [m₃/m₂^{3/2}]; 0 for constant data. *)

val kurtosis_excess : float array -> float
(** Standardized fourth moment minus 3 ([0] for a Gaussian); 0 for
    constant data. *)

val summary : float array -> float * float * float * float
(** [(mean, std, skewness, excess kurtosis)] in one pass over the
    centered data. *)

val cornish_fisher_quantile :
  mean:float -> std:float -> skew:float -> kurt_excess:float -> float -> float
(** [cornish_fisher_quantile ~mean ~std ~skew ~kurt_excess p] is the
    third-order Cornish–Fisher approximation of the [p]-quantile of a
    distribution with the given first four moments. Reduces to the
    Gaussian quantile at [skew = kurt_excess = 0].
    @raise Invalid_argument when [std < 0] or [p] outside (0, 1). *)

val jarque_bera : float array -> float
(** The Jarque–Bera normality statistic
    [n/6·(S² + K²/4)] — asymptotically χ²(2) under normality, so values
    ≳ 6 reject normality at the 5% level. Used by tests to confirm that
    linear Hermite models produce Gaussian outputs and quadratic ones do
    not. *)
