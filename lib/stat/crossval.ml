type plan = { folds : int; assignment : int array }

let make_plan g ~n ~folds =
  { folds; assignment = Randkit.Sampling.fold_assignment g ~n ~folds }

let fold_indices plan q =
  if q < 0 || q >= plan.folds then invalid_arg "Crossval.fold_indices: bad fold";
  Randkit.Sampling.fold_split plan.assignment q

(* Run the Q fold bodies — fold-parallel when a pool is supplied — and
   collect one result per fold. The combination of the results always
   happens sequentially in fold order afterwards, so parallel execution
   never changes the bits of the averages. *)
let fold_results pool plan body =
  let out = Array.make plan.folds None in
  let run_fold q =
    let train, held_out = fold_indices plan q in
    out.(q) <- Some (body q ~train ~held_out)
  in
  (match pool with
  | None ->
      for q = 0 to plan.folds - 1 do
        run_fold q
      done
  | Some pool ->
      Parallel.Pool.parallel_for pool ~chunks:plan.folds ~lo:0 ~hi:plan.folds
        run_fold);
  Array.map (function Some r -> r | None -> assert false) out

let run ?pool plan ~fit ~error =
  let errs =
    fold_results pool plan (fun _ ~train ~held_out ->
        let model = fit ~train in
        error model ~held_out)
  in
  let total = ref 0. in
  for q = 0 to plan.folds - 1 do
    total := !total +. errs.(q)
  done;
  !total /. float_of_int plan.folds

type fold_cache = {
  load : int -> float array option;
  store : int -> float array -> unit;
}

let run_fold_curves ?pool ?cache plan ~fit_curve =
  (* Cached folds are looked up sequentially before the (possibly
     parallel) fold bodies run, so cache IO never races and a resume
     leaves the fold-order PRNG discipline of the caller untouched —
     streams are split before any fold runs either way. *)
  let cached = Array.make plan.folds None in
  (match cache with
  | None -> ()
  | Some c ->
      for q = 0 to plan.folds - 1 do
        cached.(q) <- c.load q
      done);
  fold_results pool plan (fun q ~train ~held_out ->
      match cached.(q) with
      | Some curve -> curve
      | None ->
          let curve = fit_curve q ~train ~held_out in
          (match cache with None -> () | Some c -> c.store q curve);
          curve)

(* Batched variant for fused fold fitting: all uncached folds are
   handed to [fit_curves] in one call (fold order preserved), so the
   caller can drive them in lockstep and share per-step work — the
   fused multi-residual CV sweep in [Rsm.Select]. Cache discipline is
   identical to [run_fold_curves]: loads happen sequentially up front,
   fresh curves are stored as they come back. *)
let run_fold_curves_batch ?cache plan ~fit_curves =
  let cached = Array.make plan.folds None in
  (match cache with
  | None -> ()
  | Some c ->
      for q = 0 to plan.folds - 1 do
        cached.(q) <- c.load q
      done);
  let pending = ref [] in
  for q = plan.folds - 1 downto 0 do
    if cached.(q) = None then begin
      let train, held_out = fold_indices plan q in
      pending := (q, train, held_out) :: !pending
    end
  done;
  let pending = Array.of_list !pending in
  let fresh = if Array.length pending = 0 then [||] else fit_curves pending in
  if Array.length fresh <> Array.length pending then
    invalid_arg "Crossval.run_fold_curves_batch: curve count mismatch";
  Array.iteri
    (fun i (q, _, _) ->
      (match cache with None -> () | Some c -> c.store q fresh.(i));
      cached.(q) <- Some fresh.(i))
    pending;
  Array.map (function Some r -> r | None -> assert false) cached

(* Multi-output extension of the batch driver: R responses share one
   fold plan, and every (output, fold) pair whose curve is not cached
   is handed to [fit_curves] in one flat call (output-major, fold
   ascending), so the caller can drive all R×Q solvers in lockstep and
   share each step's column generation across the whole grid. Cache
   discipline is per output — loads happen sequentially up front in
   output-major order, fresh curves are stored per (output, fold). *)
let run_fold_curves_multi ?caches ~outputs plan ~fit_curves =
  if outputs < 1 then
    invalid_arg "Crossval.run_fold_curves_multi: outputs must be positive";
  let cache_of r =
    match caches with
    | None -> None
    | Some cs ->
        if Array.length cs <> outputs then
          invalid_arg "Crossval.run_fold_curves_multi: cache count mismatch";
        cs.(r)
  in
  let cached = Array.init outputs (fun _ -> Array.make plan.folds None) in
  for r = 0 to outputs - 1 do
    match cache_of r with
    | None -> ()
    | Some c ->
        for q = 0 to plan.folds - 1 do
          cached.(r).(q) <- c.load q
        done
  done;
  let pending = ref [] in
  for r = outputs - 1 downto 0 do
    for q = plan.folds - 1 downto 0 do
      if cached.(r).(q) = None then begin
        let train, held_out = fold_indices plan q in
        pending := (r, q, train, held_out) :: !pending
      end
    done
  done;
  let pending = Array.of_list !pending in
  let fresh = if Array.length pending = 0 then [||] else fit_curves pending in
  if Array.length fresh <> Array.length pending then
    invalid_arg "Crossval.run_fold_curves_multi: curve count mismatch";
  Array.iteri
    (fun i (r, q, _, _) ->
      (match cache_of r with None -> () | Some c -> c.store q fresh.(i));
      cached.(r).(q) <- Some fresh.(i))
    pending;
  Array.map
    (Array.map (function Some c -> c | None -> assert false))
    cached

let run_curves ?pool plan ~fit_curve =
  let curves =
    run_fold_curves ?pool plan ~fit_curve:(fun _ ~train ~held_out ->
        fit_curve ~train ~held_out)
  in
  let acc = ref [||] in
  for q = 0 to plan.folds - 1 do
    let curve = curves.(q) in
    if q = 0 then acc := Array.map (fun e -> e /. float_of_int plan.folds) curve
    else begin
      if Array.length curve <> Array.length !acc then
        invalid_arg "Crossval.run_curves: runs returned curves of different lengths";
      Array.iteri
        (fun i e -> !acc.(i) <- !acc.(i) +. (e /. float_of_int plan.folds))
        curve
    end
  done;
  !acc

let argmin curve =
  if Array.length curve = 0 then invalid_arg "Crossval.argmin: empty curve";
  let best = ref 0 and best_v = ref Float.infinity in
  Array.iteri
    (fun i v ->
      if (not (Float.is_nan v)) && v < !best_v then begin
        best := i;
        best_v := v
      end)
    curve;
  !best
