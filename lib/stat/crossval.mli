(** Q-fold cross-validation (Section IV-C, Fig. 2 of the paper).

    The driver is generic: a [fit] function is trained on the union of
    Q−1 groups and an [error] function scores it on the held-out group;
    the per-fold errors are averaged. For λ-sweeps the fit returns a
    whole curve (error as a function of λ), matching the paper's
    description that "εq is not simply a value, but a 1-D function
    of λ". *)

type plan = { folds : int; assignment : int array }
(** A fold assignment over [n] sample indices. *)

val make_plan : Randkit.Prng.t -> n:int -> folds:int -> plan
(** Balanced random assignment (Fig. 2's partition into Q groups). *)

val fold_indices : plan -> int -> int array * int array
(** [fold_indices plan q] is [(train, held_out)] for run [q]. *)

val run :
  ?pool:Parallel.Pool.t -> plan -> fit:(train:int array -> 'model) ->
  error:('model -> held_out:int array -> float) -> float
(** [run plan ~fit ~error] executes the Q runs and returns the average
    held-out error [ (ε₁ + … + ε_Q)/Q ].

    With [?pool] the Q runs execute fold-parallel (one fold per chunk);
    [fit] and [error] are then called from several domains concurrently
    and must not share mutable state (capture a per-fold
    {!Randkit.Prng.split_n} stream, never one shared generator). The
    per-fold errors are summed in fold order after all folds complete,
    so the average is bitwise identical to the sequential run for every
    domain count. Without [?pool] the folds run sequentially, exactly as
    before — side-effecting closures remain safe. *)

type fold_cache = {
  load : int -> float array option;
      (** [load q] returns fold [q]'s previously computed curve, or
          [None] to fit it. Called sequentially, in fold order, before
          any fold body runs. *)
  store : int -> float array -> unit;
      (** [store q curve] persists a freshly fitted fold curve; called
          from the fold body (possibly from a worker domain — stores for
          distinct folds must not share unsynchronized state). *)
}
(** Hook for per-fold checkpointing of a λ-sweep: a killed CV run
    resumes at the first fold [load] cannot supply. The IO itself (file
    naming, validation against the plan) lives with the caller — see
    [Rsm.Select]. *)

val run_fold_curves :
  ?pool:Parallel.Pool.t -> ?cache:fold_cache -> plan ->
  fit_curve:(int -> train:int array -> held_out:int array -> float array) ->
  float array array
(** [run_fold_curves plan ~fit_curve] is the per-fold layer under
    {!run_curves}: it returns the Q raw curves in fold order without
    averaging (the caller may need the spread, e.g. a one-SE rule).
    [fit_curve] additionally receives the fold index. With [?cache],
    folds whose curve [load]s are skipped entirely and fresh curves are
    handed to [store]; because a stored curve is the bitwise result of
    the fold fit (text checkpoints must round-trip at full precision,
    e.g. ["%.17g"]), a resumed run averages to exactly the bits of an
    uninterrupted one. [?pool] as in {!run}. *)

val run_fold_curves_batch :
  ?cache:fold_cache ->
  plan ->
  fit_curves:((int * int array * int array) array -> float array array) ->
  float array array
(** [run_fold_curves_batch plan ~fit_curves] is {!run_fold_curves} with
    all uncached folds fitted by {e one} call:
    [fit_curves [| (q, train, held_out); … |]] (ascending fold order)
    must return one curve per entry, in order. This is the entry point
    for fused fold fitting — the caller runs all fold solvers in
    lockstep and shares each step's column generation across folds (see
    [Rsm.Select]); with per-fold results bitwise equal to independent
    fits, the returned curves equal {!run_fold_curves}'s. [?cache] as
    in {!run_fold_curves}: loads happen sequentially before fitting,
    fresh curves are stored per fold.
    @raise Invalid_argument when [fit_curves] returns the wrong number
    of curves. *)

val run_fold_curves_multi :
  ?caches:fold_cache option array ->
  outputs:int ->
  plan ->
  fit_curves:((int * int * int array * int array) array -> float array array) ->
  float array array array
(** [run_fold_curves_multi ~outputs plan ~fit_curves] extends
    {!run_fold_curves_batch} to [R = outputs] responses sharing one
    fold plan: every (output, fold) pair whose curve is not cached is
    handed to {e one} call
    [fit_curves [| (r, q, train, held_out); … |]] (output-major, folds
    ascending within each output), which must return one curve per
    entry, in order. The result is indexed [.(r).(q)]. This is the
    entry point for fused multi-output fitting — the caller runs all
    R×Q fold solvers in lockstep and shares each step's column
    generation across the whole grid (see [Rsm.Select]); with
    per-(output, fold) results bitwise equal to independent fits, the
    returned curves equal R separate {!run_fold_curves} runs. [?caches]
    supplies one optional {!fold_cache} per output; loads happen
    sequentially before fitting, fresh curves are stored per
    (output, fold).
    @raise Invalid_argument when [outputs < 1], when [caches] has the
    wrong length, or when [fit_curves] returns the wrong number of
    curves. *)

val run_curves :
  ?pool:Parallel.Pool.t -> plan ->
  fit_curve:(train:int array -> held_out:int array -> float array) ->
  float array
(** [run_curves plan ~fit_curve] supports λ-sweeps: each run returns the
    error at every candidate λ measured on its held-out group; the
    result is the pointwise average curve ε(λ). All runs must return
    curves of equal length. [?pool] has the same contract and
    determinism guarantee as in {!run}: fold-parallel fits, fold-order
    averaging, bitwise-stable result.
    @raise Invalid_argument on curves of different lengths. *)

val argmin : float array -> int
(** Index of the smallest entry (first on ties); NaNs are ignored unless
    all entries are NaN, in which case index 0 is returned. *)
