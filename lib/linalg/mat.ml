type t = { rows : int; cols : int; data : float array }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Mat: negative dimension"

let create r c =
  check_dims r c;
  { rows = r; cols = c; data = Array.make (r * c) 0. }

let init r c f =
  check_dims r c;
  let data = Array.make (r * c) 0. in
  for i = 0 to r - 1 do
    let base = i * c in
    for j = 0 to c - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows = r; cols = c; data }

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let c = Array.length rows_arr.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init r c (fun i j -> rows_arr.(i).(j))
  end

let to_arrays a =
  Array.init a.rows (fun i -> Array.sub a.data (i * a.cols) a.cols)

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let copy a = { a with data = Array.copy a.data }

let dims a = (a.rows, a.cols)

let rows a = a.rows

let cols a = a.cols

let check_index a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg
      (Printf.sprintf "Mat: index (%d,%d) out of bounds for %dx%d" i j a.rows
         a.cols)

let get a i j =
  check_index a i j;
  a.data.((i * a.cols) + j)

let set a i j v =
  check_index a i j;
  a.data.((i * a.cols) + j) <- v

let unsafe_get a i j = Array.unsafe_get a.data ((i * a.cols) + j)

let unsafe_set a i j v = Array.unsafe_set a.data ((i * a.cols) + j) v

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: out of bounds";
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: out of bounds";
  Array.init a.rows (fun i -> a.data.((i * a.cols) + j))

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  for i = 0 to a.rows - 1 do
    a.data.((i * a.cols) + j) <- v.(i)
  done

let transpose a = init a.cols a.rows (fun i j -> unsafe_get a j i)

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let smul s a = { a with data = Array.map (fun x -> s *. x) a.data }

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%dx%d · %dx%d)"
         a.rows a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  (* i-k-j loop order: the inner loop walks rows of [b] and [c]
     contiguously, which matters for large design matrices. *)
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols in
    let crow = i * b.cols in
    for k = 0 to a.cols - 1 do
      let aik = a.data.(arow + k) in
      if aik <> 0. then begin
        let brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(crow + j) <- c.data.(crow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  c

let mulv a x =
  if a.cols <> Array.length x then
    invalid_arg "Mat.mulv: dimension mismatch";
  let y = Array.make a.rows 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let tmulv a x =
  if a.rows <> Array.length x then
    invalid_arg "Mat.tmulv: dimension mismatch";
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

let gram a =
  let n = a.cols in
  let g = create n n in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for p = 0 to n - 1 do
      let v = a.data.(base + p) in
      if v <> 0. then
        for q = p to n - 1 do
          g.data.((p * n) + q) <- g.data.((p * n) + q) +. (v *. a.data.(base + q))
        done
    done
  done;
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      g.data.((q * n) + p) <- g.data.((p * n) + q)
    done
  done;
  g

let col_dot a j x =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col_dot: column out of bounds";
  if Array.length x <> a.rows then invalid_arg "Mat.col_dot: length mismatch";
  let acc = ref 0. in
  let idx = ref j in
  for i = 0 to a.rows - 1 do
    acc := !acc +. (a.data.(!idx) *. x.(i));
    idx := !idx + a.cols
  done;
  !acc

let col_col_dot a i j =
  if i < 0 || i >= a.cols || j < 0 || j >= a.cols then
    invalid_arg "Mat.col_col_dot: column out of bounds";
  let acc = ref 0. in
  let ii = ref i and jj = ref j in
  for _ = 0 to a.rows - 1 do
    acc :=
      !acc
      +. (Array.unsafe_get a.data !ii *. Array.unsafe_get a.data !jj);
    ii := !ii + a.cols;
    jj := !jj + a.cols
  done;
  !acc

let col_sub_dot a j k x =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col_sub_dot: column out of bounds";
  if k < 0 || k > a.rows || k > Array.length x then
    invalid_arg "Mat.col_sub_dot: prefix length out of bounds";
  let acc = ref 0. in
  let idx = ref j in
  for i = 0 to k - 1 do
    acc := !acc +. (a.data.(!idx) *. x.(i));
    idx := !idx + a.cols
  done;
  !acc

let select_cols a idx =
  Array.iter
    (fun j ->
      if j < 0 || j >= a.cols then
        invalid_arg "Mat.select_cols: column out of bounds")
    idx;
  init a.rows (Array.length idx) (fun i p -> unsafe_get a i idx.(p))

let select_rows a idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= a.rows then
        invalid_arg "Mat.select_rows: row out of bounds")
    idx;
  let out = create (Array.length idx) a.cols in
  Array.iteri
    (fun p i -> Array.blit a.data (i * a.cols) out.data (p * a.cols) a.cols)
    idx;
  out

let cols_gram a idx =
  let m = Array.length idx in
  Array.iter
    (fun j ->
      if j < 0 || j >= a.cols then
        invalid_arg "Mat.cols_gram: column out of bounds")
    idx;
  let g = create m m in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for p = 0 to m - 1 do
      let v = a.data.(base + idx.(p)) in
      if v <> 0. then
        for q = p to m - 1 do
          g.data.((p * m) + q) <- g.data.((p * m) + q) +. (v *. a.data.(base + idx.(q)))
        done
    done
  done;
  for p = 0 to m - 1 do
    for q = p + 1 to m - 1 do
      g.data.((q * m) + p) <- g.data.((p * m) + q)
    done
  done;
  g

let frobenius a = Vec.nrm2 a.data

let max_abs a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && Vec.approx_equal ~tol a.data b.data

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if Float.abs (unsafe_get a i j -. unsafe_get a j i) > tol then ok := false
    done
  done;
  !ok

let pp fmt a =
  Format.fprintf fmt "@[<v>%dx%d matrix@," a.rows a.cols;
  let show_r = min a.rows 8 and show_c = min a.cols 8 in
  for i = 0 to show_r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to show_c - 1 do
      if j > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%10.4g" (unsafe_get a i j)
    done;
    if a.cols > show_c then Format.fprintf fmt "; ...";
    Format.fprintf fmt "]@,"
  done;
  if a.rows > show_r then Format.fprintf fmt "...@,";
  Format.fprintf fmt "@]"
