(** Dense row-major matrices of floats.

    The representation is a flat [float array] of length [rows·cols]; entry
    [(i, j)] lives at index [i·cols + j]. Row-major layout keeps the inner
    loops of the regression kernels (correlations of one column against a
    residual, Gram-matrix assembly) cache-friendly for tall design matrices.

    Dimensions are validated on every operation; mismatches raise
    [Invalid_argument]. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** [create r c] is the zero matrix of shape [r×c]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] fills entry [(i, j)] with [f i j]. *)

val of_arrays : float array array -> t
(** [of_arrays rows] builds a matrix from an array of equal-length rows. *)

val to_arrays : t -> float array array

val identity : int -> t

val copy : t -> t

val dims : t -> int * int
(** [dims a] is [(rows, cols)]. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float

val unsafe_set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** [row a i] is a fresh copy of row [i]. *)

val col : t -> int -> Vec.t
(** [col a j] is a fresh copy of column [j]. *)

val set_row : t -> int -> Vec.t -> unit

val set_col : t -> int -> Vec.t -> unit

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val smul : float -> t -> t

val mul : t -> t -> t
(** [mul a b] is the matrix product [a·b]. *)

val mulv : t -> Vec.t -> Vec.t
(** [mulv a x] is [a·x]. *)

val tmulv : t -> Vec.t -> Vec.t
(** [tmulv a x] is [aᵀ·x], computed without forming the transpose. *)

val gram : t -> t
(** [gram a] is [aᵀ·a], exploiting symmetry (only the upper triangle is
    computed and mirrored). *)

val col_dot : t -> int -> Vec.t -> float
(** [col_dot a j x] is [⟨column j of a, x⟩] without copying the column. *)

val col_col_dot : t -> int -> int -> float
(** [col_col_dot a i j] is [⟨column i, column j⟩], accumulated over rows
    in ascending order — the one shared kernel behind the greedy
    solvers' active-set cross products (OMP steps 4–5, LARS Gram
    updates). Bitwise identical to [Vec.dot (col a i) (col a j)]. *)

val col_sub_dot : t -> int -> int -> Vec.t -> float
(** [col_sub_dot a j k x] is [Σ_{i<k} a(i,j)·x(i)]: the dot product of the
    first [k] entries of column [j] against the first [k] entries of [x]. *)

val cols_gram : t -> int array -> t
(** [cols_gram a idx] is the Gram matrix of the columns of [a] selected by
    [idx] (shape [|idx|×|idx|]). *)

val select_cols : t -> int array -> t
(** [select_cols a idx] is the submatrix of the columns listed in [idx]. *)

val select_rows : t -> int array -> t
(** [select_rows a idx] is the submatrix of the rows listed in [idx]
    (rows are block-copied). *)

val frobenius : t -> float
(** [frobenius a] is the Frobenius norm. *)

val max_abs : t -> float
(** [max_abs a] is [max |a(i,j)|]. *)

val approx_equal : ?tol:float -> t -> t -> bool

val is_symmetric : ?tol:float -> t -> bool

val pp : Format.formatter -> t -> unit
(** Pretty-printer; abbreviates matrices larger than 8×8. *)
