(** Least-squares front-end.

    Solves [argmin ‖A·x − b‖₂] for over-determined systems, choosing
    between the QR route (robust; default) and the normal-equations route
    (faster for very tall, well-conditioned matrices — one [n×n] Cholesky
    after a Gram product). The greedy solvers in [lib/core] use the
    column-subset variants to re-fit coefficients on a selected support. *)

type method_ = Qr | Normal

val solve : ?method_:method_ -> Mat.t -> Vec.t -> Vec.t
(** [solve a b] is the least-squares solution. Default method [Qr].
    @raise Invalid_argument when [a] has more columns than rows. *)

val solve_subset : Mat.t -> int array -> Vec.t -> Vec.t
(** [solve_subset a idx b] solves the least-squares problem restricted to
    the columns of [a] listed in [idx], by normal equations on the small
    Gram matrix (the subset is assumed small relative to the sample
    count, as in OMP's Step 6). Returns the coefficients in [idx] order. *)

val residual : Mat.t -> Vec.t -> Vec.t -> Vec.t
(** [residual a x b] is [b − A·x]. *)

val residual_subset : Mat.t -> int array -> Vec.t -> Vec.t -> Vec.t
(** [residual_subset a idx x b] is [b − A₍idx₎·x] without materializing
    the column subset. *)

val residual_cols : Vec.t array -> Vec.t -> Vec.t -> Vec.t
(** [residual_cols cols x b] is [b − Σₚ x.(p)·cols.(p)] over an array of
    already-materialized columns — the matrix-free solvers keep their
    small active set as a [K×p] column cache and never touch the full
    design matrix here. Columns are applied in ascending [p] with exact
    zeros skipped, bitwise matching {!residual_subset} on the same
    columns.
    @raise Invalid_argument on any length mismatch. *)
