exception Not_positive_definite of int

let factor a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Cholesky.factor: not square";
  let n = Mat.rows a in
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.unsafe_get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.unsafe_get l i k *. Mat.unsafe_get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise (Not_positive_definite i);
        Mat.unsafe_set l i i (sqrt !acc)
      end
      else Mat.unsafe_set l i j (!acc /. Mat.unsafe_get l j j)
    done
  done;
  l

let solve l b =
  let y = Tri.solve_lower l b in
  Tri.solve_lower_transposed l y

let spd_solve a b = solve (factor a) b

let log_det l =
  let n = Mat.rows l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.unsafe_get l i i)
  done;
  2. *. !acc

module Grow = struct
  type t = { mutable k : int; cap : int; l : Mat.t }

  let create cap =
    if cap <= 0 then invalid_arg "Cholesky.Grow.create: capacity must be positive";
    { k = 0; cap; l = Mat.create cap cap }

  let size g = g.k

  let append g v d =
    if g.k >= g.cap then invalid_arg "Cholesky.Grow.append: capacity exceeded";
    if Array.length v <> g.k then
      invalid_arg "Cholesky.Grow.append: off-diagonal block length mismatch";
    let k = g.k in
    (* New row w of L solves L_k · w = v; new diagonal is sqrt(d − ‖w‖²). *)
    let w = Tri.solve_lower_sub g.l k v in
    let s = ref d in
    for j = 0 to k - 1 do
      Mat.unsafe_set g.l k j w.(j);
      s := !s -. (w.(j) *. w.(j))
    done;
    if !s <= 0. then raise (Not_positive_definite k);
    Mat.unsafe_set g.l k k (sqrt !s);
    g.k <- k + 1

  let solve g b =
    if Array.length b <> g.k then
      invalid_arg "Cholesky.Grow.solve: right-hand side length mismatch";
    let y = Tri.solve_lower_sub g.l g.k b in
    Tri.solve_lower_transposed_sub g.l g.k y

  let remove_last g =
    if g.k = 0 then invalid_arg "Cholesky.Grow.remove_last: empty factor";
    g.k <- g.k - 1

  let downdate_row g x =
    if Array.length x <> g.k then
      invalid_arg "Cholesky.Grow.downdate_row: row length mismatch";
    (* Hyperbolic-rotation down-date of L·Lᵀ to L·Lᵀ − x·xᵀ, column by
       column (LINPACK dchdd): each rotation zeroes one entry of the
       carried copy of [x] against the matching diagonal. O(k²). *)
    let x = Array.copy x in
    let k = g.k in
    for j = 0 to k - 1 do
      let ljj = Mat.unsafe_get g.l j j in
      let r2 = (ljj *. ljj) -. (x.(j) *. x.(j)) in
      if r2 <= 0. then raise (Not_positive_definite j);
      let r = sqrt r2 in
      let c = r /. ljj and s = x.(j) /. ljj in
      Mat.unsafe_set g.l j j r;
      for i = j + 1 to k - 1 do
        let lij = (Mat.unsafe_get g.l i j -. (s *. x.(i))) /. c in
        Mat.unsafe_set g.l i j lij;
        x.(i) <- (c *. x.(i)) -. (s *. lij)
      done
    done

  let factor_copy g =
    Mat.init g.k g.k (fun i j -> if j <= i then Mat.unsafe_get g.l i j else 0.)
end
