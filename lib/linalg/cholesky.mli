(** Cholesky factorization of symmetric positive-definite matrices, plus the
    incremental "growing factor" used by the greedy regression solvers.

    [factor a] computes the lower-triangular [L] with [A = L·Lᵀ]. The
    incremental API maintains [L] for the Gram matrix of a column set that
    grows one column per OMP/LARS iteration: appending a column costs
    O(k²) instead of refactorizing at O(k³). *)

exception Not_positive_definite of int
(** Raised (with the offending pivot row) when the matrix is not
    numerically positive definite. *)

val factor : Mat.t -> Mat.t
(** [factor a] is the lower Cholesky factor of the SPD matrix [a].
    Only the lower triangle of [a] is read.
    @raise Not_positive_definite if a pivot is not strictly positive. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve l b] solves [L·Lᵀ·x = b] given a precomputed factor [l]. *)

val spd_solve : Mat.t -> Vec.t -> Vec.t
(** [spd_solve a b] factors [a] and solves [a·x = b]. *)

val log_det : Mat.t -> float
(** [log_det l] is [log det(L·Lᵀ) = 2·Σ log lᵢᵢ] for a factor [l]. *)

(** Growing Cholesky factor for an expanding SPD Gram matrix. *)
module Grow : sig
  type t

  val create : int -> t
  (** [create cap] allocates a factor able to grow to size [cap]. *)

  val size : t -> int
  (** Current dimension [k]. *)

  val append : t -> Vec.t -> float -> unit
  (** [append g v d] extends the factored matrix from [k×k] to
      [(k+1)×(k+1)] where [v] (length [k]) is the new off-diagonal block
      of the underlying SPD matrix and [d] its new diagonal entry.
      @raise Not_positive_definite if the extended matrix is not SPD.
      @raise Invalid_argument when capacity is exceeded. *)

  val solve : t -> Vec.t -> Vec.t
  (** [solve g b] solves [A·x = b] for the current [k×k] factored matrix. *)

  val remove_last : t -> unit
  (** [remove_last g] shrinks the factor by one (drops the most recently
      appended column) — O(1); used for backtracking in cross-validation
      sweeps and for the lasso drop step in LARS. *)

  val downdate_row : t -> Vec.t -> unit
  (** [downdate_row g x] down-dates the factored matrix from [A] to
      [A − x·xᵀ] in place at O(k²) — the Gram-matrix effect of removing
      one sample row whose per-column entries are [x] (length [k]).
      Removing [d] rows this way costs O(d·k²) instead of the
      O(K·k² + k³) of refactorizing from the surviving rows, which is
      what lets screening run after a warm start at large K.
      @raise Not_positive_definite when the down-dated matrix is no
      longer SPD (e.g. too few rows remain); the factor is then
      partially modified and must be discarded.
      @raise Invalid_argument on a length mismatch. *)

  val factor_copy : t -> Mat.t
  (** Current [k×k] lower factor, as a fresh matrix (for tests). *)
end
