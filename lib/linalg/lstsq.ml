type method_ = Qr | Normal

let solve ?(method_ = Qr) a b =
  if Mat.rows a < Mat.cols a then
    invalid_arg "Lstsq.solve: system is underdetermined (rows < cols)";
  if Array.length b <> Mat.rows a then
    invalid_arg "Lstsq.solve: right-hand side length mismatch";
  match method_ with
  | Qr -> Qr.lstsq a b
  | Normal ->
      let g = Mat.gram a in
      let rhs = Mat.tmulv a b in
      Cholesky.spd_solve g rhs

let solve_subset a idx b =
  if Array.length b <> Mat.rows a then
    invalid_arg "Lstsq.solve_subset: right-hand side length mismatch";
  let g = Mat.cols_gram a idx in
  let rhs = Array.map (fun j -> Mat.col_dot a j b) idx in
  Cholesky.spd_solve g rhs

let residual a x b =
  let ax = Mat.mulv a x in
  Vec.sub b ax

let residual_cols cols x b =
  if Array.length cols <> Array.length x then
    invalid_arg "Lstsq.residual_cols: column/coefficient length mismatch";
  let k = Array.length b in
  let res = Array.copy b in
  for p = 0 to Array.length cols - 1 do
    let col = cols.(p) and c = x.(p) in
    if Array.length col <> k then
      invalid_arg "Lstsq.residual_cols: column length mismatch";
    if c <> 0. then
      for i = 0 to k - 1 do
        res.(i) <- res.(i) -. (c *. col.(i))
      done
  done;
  res

let residual_subset a idx x b =
  if Array.length idx <> Array.length x then
    invalid_arg "Lstsq.residual_subset: support/coefficient length mismatch";
  let res = Array.copy b in
  let k = Mat.rows a in
  for p = 0 to Array.length idx - 1 do
    let j = idx.(p) and c = x.(p) in
    if c <> 0. then
      for i = 0 to k - 1 do
        res.(i) <- res.(i) -. (c *. Mat.unsafe_get a i j)
      done
  done;
  res
