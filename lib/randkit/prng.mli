(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through SplitMix64, giving
    reproducible streams across runs and platforms — essential for the
    benchmark harness, whose tables must be regenerable bit-for-bit from
    a seed. States are explicit values; nothing is global. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed via SplitMix64
    state expansion. Equal seeds give equal streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Used to give each cross-validation fold / workload its own stream so
    that changing one experiment does not perturb the others. *)

val split_n : t -> int -> t array
(** [split_n g n] derives [n] independent child generators from [g] in
    index order, advancing [g] by [n] splits. The children depend only
    on [g]'s state and their index — never on which domain later
    consumes them — so handing child [i] to parallel task [i] (a CV
    fold, a sample chunk) makes a parallel run draw exactly the streams
    a sequential run would, for every domain count.
    @raise Invalid_argument if [n < 0]. *)

val copy : t -> t
(** [copy g] duplicates the state; both copies then produce the same
    stream independently. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float g] is uniform on [[0, 1)] with 53-bit resolution. *)

val int : t -> int -> int
(** [int g n] is uniform on [[0, n-1]] (rejection sampling, unbiased).
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0..n-1]. *)
