(* Marsaglia polar method. Each acceptance yields two independent
   variates; we return both from [sample2] and do not cache across calls
   so that the stream consumed per call is a deterministic function of
   the accept/reject history only. *)

let rec sample2 g =
  let u = (2. *. Prng.float g) -. 1. in
  let v = (2. *. Prng.float g) -. 1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then sample2 g
  else begin
    let m = sqrt (-2. *. log s /. s) in
    (u *. m, v *. m)
  end

let sample g = fst (sample2 g)

let fill g out =
  let n = Array.length out in
  let i = ref 0 in
  while !i < n do
    let a, b = sample2 g in
    out.(!i) <- a;
    incr i;
    if !i < n then begin
      out.(!i) <- b;
      incr i
    end
  done

let vector g n =
  let out = Array.make n 0. in
  fill g out;
  out

let matrix g r c = Linalg.Mat.init r c (fun _ _ -> sample g)

let scaled g ~mean ~sigma = mean +. (sigma *. sample g)

type sampler = Polar | Ziggurat

let sampler_name = function Polar -> "polar" | Ziggurat -> "ziggurat"

let sampler_of_string = function
  | "polar" -> Some Polar
  | "ziggurat" -> Some Ziggurat
  | _ -> None

let fill_with = function Polar -> fill | Ziggurat -> Ziggurat.fill
