(** Ziggurat standard-normal sampling (Marsaglia & Tsang, 256 layers).

    The serving hot path draws hundreds of normals per Monte-Carlo
    point; Marsaglia polar ({!Gaussian}) pays ~4 uniforms plus a
    [log]/[sqrt] pair per accepted pair. The ziggurat spends one 64-bit
    word and one compare on the vast majority of draws — layer, sign
    and mantissa are carved from non-overlapping bits of a single word
    — falling back to the wedge test and the exact exponential-
    rejection tail only on the rare boundary cases, so the distribution
    is exactly N(0, 1), not an approximation.

    Two front-ends share the tables:

    - {!sample}/{!fill}/{!vector} consume a sequential {!Prng.t}
      (the [Gaussian.fill]-shaped API). Stream consumption differs from
      the polar sampler's, so switching samplers changes result bits —
      by design, the sampler choice is part of the recorded seed
      metadata.
    - {!normal_at} consumes a {!Counter.point}: the accepted variate is
      a pure function of [(key, point, coord)], with rejections walking
      the coordinate's private [draw] substream. This is the
      random-access form used by support-projected streaming
      ({!Serve.Stream}): drawing a subset of coordinates reproduces the
      full draw's bits on that subset. *)

val sample : Prng.t -> float
(** One N(0, 1) draw from a sequential generator. *)

val fill : Prng.t -> float array -> unit
(** [fill g out] overwrites [out] with iid N(0, 1) draws — same shape
    as [Gaussian.fill], different (ziggurat) stream consumption. *)

val vector : Prng.t -> int -> float array
(** [vector g n] is [n] iid N(0, 1) draws. *)

val normal_at : Counter.point -> coord:int -> float
(** [normal_at pk ~coord] is the N(0, 1) value of coordinate [coord] at
    the point keyed by [pk] — a pure function of
    [(key, point, coord)]. *)

val tail_start : float
(** The base-strip boundary r ≈ 3.654: draws beyond it come from the
    exact exponential-rejection tail (exposed for the GOF tests). *)
