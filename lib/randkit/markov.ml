type chain = { entry : float; exit : float }

let chain ~entry ~exit () =
  let bad name v =
    invalid_arg
      (Printf.sprintf "Markov.chain: %s must lie in [0, 1], got %g" name v)
  in
  if not (Float.is_finite entry) || entry < 0. || entry > 1. then
    bad "entry" entry;
  if not (Float.is_finite exit) || exit < 0. || exit > 1. then bad "exit" exit;
  { entry; exit }

let mean_burst_len c = if c.exit > 0. then 1. /. c.exit else Float.infinity

let of_mean_len ~entry ~mean_len () =
  if not (Float.is_finite mean_len) || mean_len < 1. then
    invalid_arg
      (Printf.sprintf "Markov.of_mean_len: mean length must be >= 1, got %g"
         mean_len);
  chain ~entry ~exit:(1. /. mean_len) ()

(* The chain is inherently sequential (state i+1 depends on state i), so
   the states are always generated in index order from one stream; the
   whole array is a pure function of (chain, seed, n) and is meant to be
   precomputed before any parallel work fans out. *)
let states c ~seed n =
  if n < 0 then invalid_arg "Markov.states: negative length";
  let g = Prng.create seed in
  let out = Array.make n false in
  let burst = ref false in
  for i = 0 to n - 1 do
    let u = Prng.float g in
    (burst := if !burst then u >= c.exit else u < c.entry);
    out.(i) <- !burst
  done;
  out

let windows states =
  let acc = ref [] in
  let start = ref (-1) in
  let n = Array.length states in
  for i = 0 to n - 1 do
    if states.(i) then begin
      if !start < 0 then start := i
    end
    else if !start >= 0 then begin
      acc := (!start, i - !start) :: !acc;
      start := -1
    end
  done;
  if !start >= 0 then acc := (!start, n - !start) :: !acc;
  Array.of_list (List.rev !acc)

let count states =
  Array.fold_left (fun n b -> if b then n + 1 else n) 0 states
