(** Standard normal sampling.

    The paper's variation model is jointly Gaussian after PCA; every
    Monte-Carlo sample the "simulator" consumes is a vector of iid
    standard normals drawn here. The Marsaglia polar method is used: no
    trig calls, and the discarded second variate is cached. *)

val sample : Prng.t -> float
(** One standard normal draw, N(0, 1). *)

val sample2 : Prng.t -> float * float
(** One independent pair of standard normal draws. *)

val vector : Prng.t -> int -> Linalg.Vec.t
(** [vector g n] is a vector of [n] iid N(0, 1) draws. *)

val fill : Prng.t -> Linalg.Vec.t -> unit
(** [fill g out] overwrites [out] with iid N(0, 1) draws — the
    allocation-free form of {!vector} (identical stream consumption),
    used by the streaming Monte-Carlo evaluator to reuse one point
    buffer per batch. *)

val matrix : Prng.t -> int -> int -> Linalg.Mat.t
(** [matrix g r c] is an [r×c] matrix of iid N(0, 1) draws, filled row by
    row (so the stream position after the call is deterministic). *)

val scaled : Prng.t -> mean:float -> sigma:float -> float
(** [scaled g ~mean ~sigma] is one N(mean, sigma²) draw. *)

type sampler = Polar | Ziggurat
(** Which normal sampler a Monte-Carlo consumer runs.

    - [Polar]: this module — sequential, and the historical default
      everywhere, so existing seeds keep their exact bit streams.
    - [Ziggurat]: {!Ziggurat} over the counter-mode generator
      ({!Counter}) where the consumer supports random access — each
      draw a pure function of [(key, point, coord)] — and the
      sequential {!Ziggurat.fill} otherwise.

    The two samplers consume different stream shapes, so estimates
    agree statistically but never bitwise; record the sampler next to
    the seed. *)

val sampler_name : sampler -> string
(** ["polar"] / ["ziggurat"] — the CLI/JSON spelling. *)

val sampler_of_string : string -> sampler option
(** Inverse of {!sampler_name}. *)

val fill_with : sampler -> Prng.t -> Linalg.Vec.t -> unit
(** [fill_with s] is the sequential fill of sampler [s]: {!fill} for
    [Polar], {!Ziggurat.fill} for [Ziggurat]. *)
