(** Standard normal sampling.

    The paper's variation model is jointly Gaussian after PCA; every
    Monte-Carlo sample the "simulator" consumes is a vector of iid
    standard normals drawn here. The Marsaglia polar method is used: no
    trig calls, and the discarded second variate is cached. *)

val sample : Prng.t -> float
(** One standard normal draw, N(0, 1). *)

val sample2 : Prng.t -> float * float
(** One independent pair of standard normal draws. *)

val vector : Prng.t -> int -> Linalg.Vec.t
(** [vector g n] is a vector of [n] iid N(0, 1) draws. *)

val fill : Prng.t -> Linalg.Vec.t -> unit
(** [fill g out] overwrites [out] with iid N(0, 1) draws — the
    allocation-free form of {!vector} (identical stream consumption),
    used by the streaming Monte-Carlo evaluator to reuse one point
    buffer per batch. *)

val matrix : Prng.t -> int -> int -> Linalg.Mat.t
(** [matrix g r c] is an [r×c] matrix of iid N(0, 1) draws, filled row by
    row (so the stream position after the call is deterministic). *)

val scaled : Prng.t -> mean:float -> sigma:float -> float
(** [scaled g ~mean ~sigma] is one N(mean, sigma²) draw. *)
