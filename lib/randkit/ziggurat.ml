(* 256-layer ziggurat for the standard normal (Marsaglia & Tsang 2000),
   with the exact exponential-rejection tail. One 64-bit word per
   attempt carries the layer index (low 8 bits), the sign (bit 8) and a
   53-bit mantissa draw (bits 11–63) with no overlap; the vast majority
   of attempts accept on a single compare with no transcendental call.
   Two front-ends share the tables: a sequential sampler over [Prng.t]
   and a counter-addressed sampler over [Counter.point] whose bits are
   a pure function of (key, point, coord). *)

let layers = 256

(* Standard 256-layer constants: [r] is the base-strip boundary, [v]
   the common strip area (each of the 256 strips, wedges and tail
   included, has area v). *)
let r = 3.6541528853610088
let v = 4.92867323399707195e-3
let inv_r = 1. /. r
let pdf x = exp (-0.5 *. x *. x)

(* Strip boundaries, decreasing: xtab.(1) = r down to xtab.(256) = 0,
   with the recurrence x_{i+1} = pdf⁻¹(v/x_i + pdf x_i) (equal strip
   areas). xtab.(0) = v / pdf r is the *virtual* width of the base
   strip, whose overhang past r stands in for the tail mass. The
   recurrence stops at x_255: x_256 is 0 by construction of (r, v), and
   computing it through the recurrence could round the log argument
   past 1 into a NaN. ytab.(i) = pdf xtab.(i); ytab.(0) is unused. *)
let xtab, ytab =
  let x = Array.make (layers + 1) 0. in
  let y = Array.make (layers + 1) 0. in
  x.(0) <- v /. pdf r;
  x.(1) <- r;
  for i = 2 to layers - 1 do
    let xi = x.(i - 1) in
    x.(i) <- sqrt (-2. *. log ((v /. xi) +. pdf xi))
  done;
  x.(layers) <- 0.;
  for i = 0 to layers do
    y.(i) <- pdf x.(i)
  done;
  (x, y)

let idx_of bits = Int64.to_int (Int64.logand bits 0xFFL)
let neg_of bits = Int64.logand bits 0x100L <> 0L
let u_of bits = Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1.0p-53

(* (0, 1] so the tail's logs are finite. *)
let upos_of bits =
  (Int64.to_float (Int64.shift_right_logical bits 11) +. 1.) *. 0x1.0p-53

let signed neg x = if neg then -.x else x

let rec sample g =
  let bits = Prng.bits64 g in
  let i = idx_of bits in
  let x = u_of bits *. xtab.(i) in
  if x < xtab.(i + 1) then signed (neg_of bits) x
  else if i = 0 then tail g (neg_of bits)
  else
    let y = ytab.(i) +. (Prng.float g *. (ytab.(i + 1) -. ytab.(i))) in
    if y < pdf x then signed (neg_of bits) x else sample g

and tail g neg =
  (* Exact tail past r: x ~ Exp(r) truncated by the Gaussian envelope
     (Marsaglia 1964). *)
  let x = -.log (upos_of (Prng.bits64 g)) *. inv_r in
  let y = -.log (upos_of (Prng.bits64 g)) in
  if y +. y >= x *. x then signed neg (r +. x) else tail g neg

let fill g out =
  for i = 0 to Array.length out - 1 do
    out.(i) <- sample g
  done

let vector g n =
  let out = Array.make n 0. in
  fill g out;
  out

(* Counter-addressed variant: draw [j] of coordinate [coord] is the
   word at address (key, point, coord, j); rejections walk j upward, so
   every coordinate owns an unbounded substream and the accepted value
   is a pure function of (key, point, coord). *)
let rec sample_at pk ~coord j =
  let bits = Counter.bits64 pk ~coord ~draw:j in
  let i = idx_of bits in
  let x = u_of bits *. xtab.(i) in
  if x < xtab.(i + 1) then signed (neg_of bits) x
  else if i = 0 then tail_at pk ~coord (j + 1) (neg_of bits)
  else
    let u2 = Counter.float pk ~coord ~draw:(j + 1) in
    let y = ytab.(i) +. (u2 *. (ytab.(i + 1) -. ytab.(i))) in
    if y < pdf x then signed (neg_of bits) x else sample_at pk ~coord (j + 2)

and tail_at pk ~coord j neg =
  let x = -.log (upos_of (Counter.bits64 pk ~coord ~draw:j)) *. inv_r in
  let y = -.log (upos_of (Counter.bits64 pk ~coord ~draw:(j + 1))) in
  if y +. y >= x *. x then signed neg (r +. x)
  else tail_at pk ~coord (j + 2) neg

let normal_at pk ~coord = sample_at pk ~coord 0

let tail_start = r
