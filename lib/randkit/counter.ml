(* Counter-mode PRNG: every output is a pure function of
   (key, point, coord, draw) pushed through rounds of the SplitMix64
   output finalizer — no sequential state, O(1) random access. Skipping
   a coordinate, a point, or a whole batch leaves every other draw's
   bits unchanged, which is exactly what makes support-projected
   sampling bitwise exact (see SERVING.md). *)

(* Odd 64-bit strides keep the three counter axes (point, coordinate,
   rejection draw) on distinct full-period lattices before the
   finalizer's avalanche mixes them. [golden] is SplitMix64's gamma;
   the other two are the xxhash64 primes. *)
let golden = 0x9E3779B97F4A7C15L
let coord_stride = 0xC2B2AE3D27D4EB4FL
let draw_stride = 0x165667B19E3779F9L

(* The SplitMix64 output finalizer (as in Prng.splitmix64_next): a
   bijection on 64-bit words with full avalanche. Two applications
   separate any output from its (key, point, coord, draw) address. *)
let finalize z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

type t = int64
type point = int64

let create seed =
  finalize (Int64.add (Int64.mul (Int64.of_int seed) golden) coord_stride)

let of_prng g = Prng.bits64 g
let key t = t
let at t p = finalize (Int64.add t (Int64.mul (Int64.of_int p) golden))

let bits64 pk ~coord ~draw =
  finalize
    (Int64.add
       (Int64.add pk (Int64.mul (Int64.of_int coord) coord_stride))
       (Int64.mul (Int64.of_int draw) draw_stride))

let float pk ~coord ~draw =
  (* Top 53 bits → [0, 1), matching Prng.float's resolution. *)
  Int64.to_float (Int64.shift_right_logical (bits64 pk ~coord ~draw) 11)
  *. 0x1.0p-53
