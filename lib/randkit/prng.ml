(* xoshiro256++ (Blackman & Vigna), seeded by SplitMix64. Both are public
   domain reference algorithms; implemented here directly on int64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* All-zero state is invalid for xoshiro; the SplitMix expansion cannot
     produce it for any seed, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  (* Expand a fresh state from the parent's next outputs through
     SplitMix64, so parent and child streams are decorrelated. *)
  let state = ref (bits64 g) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let split_n g n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  (* Children are derived in index order from the parent alone, before
     any of them is used: handing child i to the i-th parallel task
     gives every task the same stream regardless of execution order. *)
  let children = Array.make n g in
  for i = 0 to n - 1 do
    children.(i) <- split g
  done;
  children

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let float g =
  (* Top 53 bits → [0, 1) with full double resolution. *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 g) 1 in
    (* r uniform on [0, 2^63). *)
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int n64) in
    if r >= limit then draw () else Int64.to_int (Int64.rem r n64)
  in
  draw ()

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a
