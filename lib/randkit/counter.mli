(** Counter-mode (random-access) pseudo-random bits.

    The sequential generators in {!Prng} produce stream position [k]
    only after producing positions [0 … k−1]; a Monte-Carlo point's
    draws therefore depend on every draw before it, and skipping a
    coordinate shifts all later bits. This module removes the order
    dependence: each 64-bit output is a {e pure function} of
    [(key, point, coord, draw)], obtained by bijectively mixing the
    address into the key with the SplitMix64 finalizer (the
    Philox/Threefry idea of counter-mode generation, in its cheap
    splittable form).

    {2 Random-access determinism contract}

    - [bits64 (at key p) ~coord ~draw] depends on nothing but the four
      address components — not on which draws were made before, not on
      batch boundaries, not on how many other coordinates were drawn.
    - Hence: evaluating points in any order, partitioned into any
      batches, drawing any {e subset} of coordinates, reproduces the
      bits of a full in-order pass on the addresses it visits. This is
      what makes support-projected sampling ({!Serve.Stream} with
      [~project:true]) bitwise equal to a full-vector draw.
    - [draw] indexes the rejection substream of one coordinate: a
      rejection sampler (e.g. {!Ziggurat.normal_at}) consumes addresses
      [draw = 0, 1, 2, …] until acceptance, so each coordinate owns an
      unbounded substream and no address is ever reused.

    Keys derived from different seeds, and per-point keys of different
    points, are decorrelated by the finalizer's avalanche; the mixing
    constants are fixed — the same [(key, point, coord, draw)] yields
    the same bits in every build and at every domain count. *)

type t
(** A stream key — the immutable identity of one logical random
    stream. *)

val create : int -> t
(** [create seed] derives a key from an integer seed. Distinct from
    (and decorrelated with) [Prng.create seed]'s output stream. *)

val of_prng : Prng.t -> t
(** [of_prng g] draws one 64-bit word from [g] as the key, advancing
    [g] by exactly one output. Use this to nest a counter stream inside
    an existing seeded workflow: the key — and therefore every counter
    draw — is a deterministic function of [g]'s position. *)

val key : t -> int64
(** The raw 64-bit key (for logging/reproducing a run). *)

type point
(** A per-point key: the stream key with the point index mixed in, one
    finalizer round already applied. Hoist it with {!at} once per
    point, then address coordinates. *)

val at : t -> int -> point
(** [at t point_index] is the per-point key of Monte-Carlo point
    [point_index] (global index, not batch-relative). *)

val bits64 : point -> coord:int -> draw:int -> int64
(** [bits64 pk ~coord ~draw] is the 64-bit word at address
    [(key, point, coord, draw)] — a pure function of its arguments. *)

val float : point -> coord:int -> draw:int -> float
(** Top 53 bits of {!bits64} as a float in [0, 1) (same resolution as
    [Prng.float]). *)
