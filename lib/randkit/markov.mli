(** Two-state (Good/Burst) Markov chains over an index axis.

    Real simulation farms do not fail i.i.d.: a license-server or NFS
    outage takes out a {e window} of consecutive samples. The chain here
    models exactly that — state [false] (Good) enters a burst with
    probability [entry] per step, state [true] (Burst) leaves it with
    probability [exit] per step, so burst lengths are geometric with
    mean [1/exit]. The state array is generated from its own seed in
    index order, making it a pure function of [(chain, seed, n)]:
    bitwise identical at every domain or shard count, and independent of
    the sampling and fault streams it modulates. *)

type chain = private { entry : float; exit : float }

val chain : entry:float -> exit:float -> unit -> chain
(** Validated constructor; both probabilities must lie in [[0, 1]].
    @raise Invalid_argument otherwise. *)

val of_mean_len : entry:float -> mean_len:float -> unit -> chain
(** [of_mean_len ~entry ~mean_len ()] is [chain] with
    [exit = 1/mean_len] — bursts of geometric mean length [mean_len].
    @raise Invalid_argument when [mean_len < 1]. *)

val mean_burst_len : chain -> float
(** [1/exit], the expected burst length in steps ([infinity] for an
    absorbing burst state). *)

val states : chain -> seed:int -> int -> bool array
(** [states c ~seed n] draws the chain for [n] steps starting in Good;
    element [i] is [true] when step [i] lies inside a burst. Always
    generated sequentially from a fresh stream of [seed].
    @raise Invalid_argument on a negative length. *)

val windows : bool array -> (int * int) array
(** [(start, len)] of every maximal burst window, in index order. *)

val count : bool array -> int
(** Number of burst steps. *)
