module Provider = Polybasis.Design.Provider

let gram_tr ?pool src r = Provider.gram_tr ?pool src r

let argmax_abs ?pool ~skip src r = Provider.argmax_abs ?pool ~skip src r
