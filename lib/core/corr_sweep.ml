open Linalg

(* Per-chunk partial sweep: accumulate the [lo, hi) block of Gᵀ·r into
   [out], walking rows outermost so the row-major matrix streams through
   cache. Row order is ascending, matching Mat.col_dot bit for bit. *)
let sweep_block g r out ~lo ~hi =
  let k = Mat.rows g and m = Mat.cols g in
  let data = g.Mat.data in
  for i = 0 to k - 1 do
    let base = i * m in
    let ri = Array.unsafe_get r i in
    for j = lo to hi - 1 do
      Array.unsafe_set out j
        (Array.unsafe_get out j +. (Array.unsafe_get data (base + j) *. ri))
    done
  done

let check g r =
  if Array.length r <> Mat.rows g then
    invalid_arg "Corr_sweep: residual length mismatch"

let gram_tr ?pool g r =
  check g r;
  let m = Mat.cols g in
  let out = Array.make m 0. in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  Parallel.Pool.parallel_for_chunks pool ~lo:0 ~hi:m (fun ~lo ~hi ->
      sweep_block g r out ~lo ~hi);
  out

let argmax_abs ?pool ~skip g r =
  check g r;
  let m = Mat.cols g in
  if Array.length skip <> m then
    invalid_arg "Corr_sweep.argmax_abs: skip length mismatch";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  Parallel.Pool.parallel_reduce pool ?chunks:None ~lo:0 ~hi:m ~init:(-1, 0.)
    ~fold:(fun ~lo ~hi ->
      let dots = Array.make (hi - lo) 0. in
      let k = Mat.rows g in
      let data = g.Mat.data in
      for i = 0 to k - 1 do
        let base = (i * m) + lo in
        let ri = Array.unsafe_get r i in
        for j = 0 to hi - lo - 1 do
          Array.unsafe_set dots j
            (Array.unsafe_get dots j
            +. (Array.unsafe_get data (base + j) *. ri))
        done
      done;
      let best = ref (-1) and best_abs = ref 0. in
      for j = lo to hi - 1 do
        if not skip.(j) then begin
          let c = Float.abs dots.(j - lo) in
          if c > !best_abs then begin
            best := j;
            best_abs := c
          end
        end
      done;
      (!best, !best_abs))
    ~combine:(fun (ja, ca) (jb, cb) ->
      (* Strict > keeps the earlier chunk's winner on exact ties — the
         same column a sequential left-to-right scan would pick. *)
      if cb > ca then (jb, cb) else (ja, ca))
