module Provider = Polybasis.Design.Provider

type sweep = Exact | Incremental of { refresh : int }

let default_refresh = 16
let incremental ?(refresh = default_refresh) () = Incremental { refresh }

let sweep_of_string = function
  | "exact" -> Some Exact
  | "incremental" -> Some (Incremental { refresh = default_refresh })
  | _ -> None

let sweep_to_string = function
  | Exact -> "exact"
  | Incremental _ -> "incremental"

let gram_tr ?pool src r = Provider.gram_tr ?pool src r

let argmax_abs ?pool ~skip src r = Provider.argmax_abs ?pool ~skip src r

let gram_tr_multi ?pool src ~rows rs = Provider.gram_tr_multi ?pool src ~rows rs

let argmax_abs_multi ?pool ~skips src ~rows rs =
  Provider.argmax_abs_multi ?pool ~skips src ~rows rs

module Inc = struct
  type t = {
    src : Provider.t;
    pool : Parallel.Pool.t option;
    refresh_every : int;
    c : Linalg.Vec.t;
    (* j ↦ v_j = Gᵀ·g_j, built once when column j enters the active set. *)
    grams : (int, Linalg.Vec.t) Hashtbl.t;
    mutable since : int;
  }

  let create ?pool ~refresh src r =
    if refresh < 0 then
      invalid_arg "Corr_sweep.Inc.create: negative refresh cadence";
    {
      src;
      pool;
      refresh_every = refresh;
      c = Provider.gram_tr ?pool src r;
      grams = Hashtbl.create 32;
      since = 0;
    }

  let correlations t = t.c
  let cached t = Hashtbl.length t.grams

  let ensure_gram t j col =
    if not (Hashtbl.mem t.grams j) then
      Hashtbl.add t.grams j (Provider.gram_tr ?pool:t.pool t.src col)

  let gram t j =
    match Hashtbl.find_opt t.grams j with
    | Some v -> v
    | None ->
        invalid_arg "Corr_sweep.Inc: gram column was never cached (ensure_gram)"

  let pool_of t =
    match t.pool with Some p -> p | None -> Parallel.Pool.default ()

  (* c ← c − Σ_j Δβ_j·v_j at O(p·M) — the Gram-cached delta update that
     replaces the O(K·M) full sweep. Column-chunked with the deltas
     applied in the given order within each chunk, so every entry sees
     the same float sequence at any domain count. *)
  let apply_deltas t deltas =
    if Array.length deltas > 0 then begin
      let vs = Array.map (fun (j, _) -> gram t j) deltas in
      let m = Array.length t.c in
      let c = t.c in
      Parallel.Pool.parallel_for_chunks (pool_of t)
        ~grain:(Parallel.Pool.grain_for ~work:(Array.length deltas))
        ~lo:0 ~hi:m
        (fun ~lo ~hi ->
          Array.iteri
            (fun q (_, db) ->
              if db <> 0. then begin
                let v = Array.unsafe_get vs q in
                for jj = lo to hi - 1 do
                  Array.unsafe_set c jj
                    (Array.unsafe_get c jj -. (db *. Array.unsafe_get v jj))
                done
              end)
            deltas)
    end

  (* Σ_p w_p·v_{j_p} — the cached stand-in for Gᵀ·u when
     u = Σ_p w_p·g_{j_p} (LARS equiangular direction), at O(p·M)
     instead of an O(K·M) sweep. *)
  let combination t terms =
    let m = Array.length t.c in
    let out = Array.make m 0. in
    if Array.length terms > 0 then begin
      let vs = Array.map (fun (j, _) -> gram t j) terms in
      Parallel.Pool.parallel_for_chunks (pool_of t)
        ~grain:(Parallel.Pool.grain_for ~work:(Array.length terms))
        ~lo:0 ~hi:m
        (fun ~lo ~hi ->
          Array.iteri
            (fun q (_, w) ->
              if w <> 0. then begin
                let v = Array.unsafe_get vs q in
                for jj = lo to hi - 1 do
                  Array.unsafe_set out jj
                    (Array.unsafe_get out jj +. (w *. Array.unsafe_get v jj))
                done
              end)
            terms)
    end;
    out

  (* c ← c − γ·a for a precomputed direction image a = Gᵀ·u (the
     residual moved by γ along u). *)
  let retreat t gamma a =
    if Array.length a <> Array.length t.c then
      invalid_arg "Corr_sweep.Inc.retreat: direction length mismatch";
    let m = Array.length t.c in
    let c = t.c in
    Parallel.Pool.parallel_for_chunks (pool_of t)
      ~grain:(Parallel.Pool.grain_for ~work:1) ~lo:0 ~hi:m (fun ~lo ~hi ->
        for jj = lo to hi - 1 do
          Array.unsafe_set c jj
            (Array.unsafe_get c jj -. (gamma *. Array.unsafe_get a jj))
        done)

  let note_step t = t.since <- t.since + 1
  let due t = t.refresh_every > 0 && t.since >= t.refresh_every

  let refresh t r =
    let fresh = Provider.gram_tr ?pool:t.pool t.src r in
    Array.blit fresh 0 t.c 0 (Array.length t.c);
    t.since <- 0

  (* Sequential O(M) scan of the maintained vector — same strict [>] /
     lowest-index-on-tie rule as the provider's argmax. *)
  let argmax_abs ~skip t =
    if Array.length skip <> Array.length t.c then
      invalid_arg "Corr_sweep.Inc.argmax_abs: skip length mismatch";
    let best = ref (-1) and best_abs = ref 0. in
    Array.iteri
      (fun j cj ->
        if not (Array.unsafe_get skip j) then begin
          let a = Float.abs cj in
          if a > !best_abs then begin
            best := j;
            best_abs := a
          end
        end)
      t.c;
    (!best, !best_abs)
end
