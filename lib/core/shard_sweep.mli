(** Column-sharded dictionary sweep engine.

    Partitions the dictionary's columns into contiguous shards; each
    shard owns a {!Polybasis.Design.Provider.window} of the design
    source, its own column norms and skip masks, and (incremental
    mode) its own Gram-cache slab keyed by global column index.  The
    per-step O(K·M) sweeps of LAR/OMP/STAR then decompose into
    shard-local scans whose results merge through fixed-shape,
    left-biased tree reductions — bitwise identical to the sequential
    full-dictionary scan at {e any} shard count, because every local
    kernel runs the exact per-column float sequence of the full kernel
    and every combine (max, min, lowest-index argmax) is exact.

    Two execution modes:

    - {!Domains}: shards live in the calling image, driven in shard
      order.  Cheap; memory is the same as the unsharded fit.
    - {!Procs}: each shard is this same executable re-exec'd
      ([fork]+[exec] immediately, safe under OCaml 5 domains) with
      [RSM_SHARD_WORKER=1], talking Marshal over its stdin/stdout.
      Each worker's peak memory is its own window plus its slab —
      O(K·N·(order+1) + p·M/S) floats — which is what lets an M = 10⁶
      fit clear a single-image memory ceiling.  The parent keeps a
      replay log of every state-changing command; a worker that dies
      (crash, OOM kill) is respawned, replays the log, and rejoins the
      fleet bitwise — fits survive shard loss with identical output.

    Host executables that use [Procs] mode {b must} call
    {!worker_entry_if_requested} before anything else in [main]. *)

type mode = Domains | Procs

val mode_of_string : string -> mode option
(** ["domain"]/["domains"] and ["process"]/["procs"]. *)

val mode_to_string : mode -> string

(** A step direction shipped to the shards for the LARS γ-scan and
    commit: the K-vector u itself (exact sweep mode), or the active-set
    weights w with u = Σ wₚ·g_{jₚ} (incremental mode, resolved against
    each shard's Gram slab at O(p·M/S)). *)
type dir = Dense of Linalg.Vec.t | Weights of (int * float) array

(** Merged result of a LARS selection scan: C over non-banned columns,
    the entering candidate (lowest global index on ties), its
    normalized correlation value, and the correlation values at every
    active column (shard-ascending, hence global-ascending, order). *)
type pick = {
  big_c : float;
  enter : int;
  enter_abs : float;
  enter_val : float;
  act_c : (int * float) array;
}

type t

val create :
  ?pool:Parallel.Pool.t ->
  mode:mode ->
  shards:int ->
  sweep:Corr_sweep.sweep ->
  Polybasis.Design.Provider.t ->
  r0:Linalg.Vec.t ->
  t
(** [create ~mode ~shards ~sweep src ~r0] partitions [src]'s columns
    into [min shards (cols src)] contiguous shards and initializes
    every shard against the starting residual [r0] (incremental mode
    runs each window's initial exact sweep).  [pool] is used by
    in-image shards; process workers run single-domain pools of their
    own.  @raise Invalid_argument on [shards < 1] or a residual length
    mismatch. *)

val shutdown : t -> unit
(** Quit and reap process workers; no-op for in-image shards.  Wrap
    fits in [Fun.protect] so abandoned fleets never leak processes. *)

val shards : t -> int
(** Actual shard count after clamping to the column count. *)

val recovered : t -> int
(** Number of worker respawn+replay recoveries performed so far. *)

val raw_norms : t -> Linalg.Vec.t
(** Column norms gathered from the shards, without the [<= 0 → 1]
    fixup — bitwise [Provider.column_norms] of the full source. *)

val activate : t -> int -> Linalg.Vec.t -> unit
(** [activate t j col] marks global column [j] active (it leaves the
    entering scans) and, in incremental mode, has {e every} shard
    build its slab slice v_j = Gᵀ_win·[col] — the O(K·M) build,
    sharded, that later delta updates amortize. *)

val deactivate : t -> int -> unit
(** Lasso drop: [j] re-enters the entering scans.  Slab slices are
    retained (re-entry is free). *)

val ban : t -> int -> unit
(** Exclude [j] from every later scan (dependent-column fallback). *)

val apply_deltas : t -> (int * float) array -> unit
(** Incremental OMP/STAR update: c ← c − Σ Δβ_j·v_j on every shard's
    slice.  No-op in exact mode. *)

val refresh : t -> Linalg.Vec.t -> unit
(** Exact re-sweep of the given residual on every shard (the
    checkpoint-aligned refresh).  No-op in exact mode. *)

val select : t -> r:Linalg.Vec.t -> int * float
(** OMP/STAR selection: argmax of |⟨g_j, r⟩| over non-active,
    non-banned columns ([r] is ignored by incremental shards, which
    scan their maintained vectors).  Ties keep the lowest global
    index; [(-1, 0.)] when nothing is eligible. *)

val lars_select : t -> r:Linalg.Vec.t -> pick
(** LARS step-2 scan (see {!pick}); each shard retains its normalized
    correlation slice for the same step's {!lars_gamma}. *)

val lars_gamma : t -> cc:float -> a_a:float -> dir -> float
(** Minimum γ candidate over all shards ([infinity] when none); the
    caller folds it against the saturation step C/A and the lasso drop
    scan.  Shards retain the direction image Gᵀ·u for {!commit}. *)

val commit : t -> gamma:float -> dir:dir -> refresh:Linalg.Vec.t option -> unit
(** Advance every shard's maintained correlations by the committed
    step: c ← c − γ·(Gᵀu), then an optional exact refresh (the
    parent mirrors the non-sharded cadence).  The direction travels
    with the (logged) command so a respawned worker recomputes the
    identical Gᵀu slice from its replayed slab.  No-op in exact
    mode. *)

val peak_rss_kb : t -> float array
(** Per-shard VmHWM from /proc/self/status, in kB (process mode; the
    parent's own value per shard in domain mode).  0 where
    unavailable. *)

val worker_entry_if_requested : unit -> unit
(** When RSM_SHARD_WORKER=1 is set, runs the worker protocol loop on
    stdin/stdout and exits — never returns.  Otherwise does nothing.
    Call it as the first statement of any [main] that may drive
    process shards.

    The RSM_SHARD_FAULT environment variable (format ["<shard>:<n>"])
    makes that worker SIGKILL itself on its [n]-th selection query —
    the deterministic crash hook behind the recovery tests and the CI
    kill smoke.  Parents strip it when respawning, so the replacement
    survives. *)
