open Linalg
module Provider = Polybasis.Design.Provider

type mode = Lar | Lasso

type step = {
  added : int option;
  dropped : int option;
  max_corr : float;
  model : Model.t;
}

(* Internal working state over unit-normalized columns x_j = G_j/‖G_j‖.
   The normalized columns are never materialized: every x_j operation
   divides by the stored norm on the fly. Active columns are
   materialized once into the per-fit cache (K floats each) — the only
   columns LAR ever touches individually. *)
type state = {
  src : Provider.t;
  cache : Provider.Cache.t;
  norms : Vec.t;
  k : int;
  m : int;
  beta : Vec.t;  (* coefficients in normalized scale *)
  mu : Vec.t;  (* current fit G·alpha = X·beta *)
  mutable active : int list;  (* most recently added first *)
  in_active : bool array;
  banned : bool array;  (* dependent columns excluded under `Fallback *)
  mutable notes : string list;  (* degradation events, attached to models *)
  mutable chol : Cholesky.Grow.t;  (* gram factor of active columns, oldest first *)
}

let xxdot st i j =
  Provider.Cache.col_col_dot st.cache i j /. (st.norms.(i) *. st.norms.(j))

(* Active set in insertion (oldest-first) order, matching the Grow factor. *)
let active_oldest_first st = Array.of_list (List.rev st.active)

let append_to_chol st j =
  let act = active_oldest_first st in
  let cross = Array.map (fun i -> xxdot st i j) act in
  Cholesky.Grow.append st.chol cross 1.

let rebuild_chol st =
  let act = active_oldest_first st in
  let cap = min st.k st.m in
  let chol = Cholesky.Grow.create (max cap 1) in
  Array.iteri
    (fun p j ->
      let cross = Array.init p (fun q -> xxdot st act.(q) j) in
      Cholesky.Grow.append chol cross 1.)
    act;
  st.chol <- chol

let current_model st =
  let support = ref [] and coeffs = ref [] in
  for j = st.m - 1 downto 0 do
    if st.beta.(j) <> 0. then begin
      support := j :: !support;
      coeffs := (st.beta.(j) /. st.norms.(j)) :: !coeffs
    end
  done;
  let model =
    Model.make ~basis_size:st.m
      ~support:(Array.of_list !support)
      ~coeffs:(Array.of_list !coeffs)
  in
  List.fold_left Model.add_note model (List.rev st.notes)

let path_p ?(mode = Lar) ?(tol = 1e-10) ?pool ?(on_singular = `Stop) src f
    ~max_steps =
  let k = Provider.rows src and m = Provider.cols src in
  if Array.length f <> k then invalid_arg "Lars.path: response length mismatch";
  if max_steps <= 0 then invalid_arg "Lars.path: max_steps must be positive";
  let norms = Provider.column_norms ?pool src in
  Array.iteri
    (fun j n -> if n <= 0. then norms.(j) <- 1. else norms.(j) <- n)
    norms;
  let st =
    {
      src;
      cache = Provider.Cache.create src;
      norms;
      k;
      m;
      beta = Array.make m 0.;
      mu = Array.make k 0.;
      active = [];
      in_active = Array.make m false;
      banned = Array.make m false;
      notes = [];
      chol = Cholesky.Grow.create (max (min k m) 1);
    }
  in
  let steps = ref [] in
  let stop = ref false in
  let initial_c = ref 0. in
  let nsteps = ref 0 in
  let max_active = min k m in
  while (not !stop) && !nsteps < max_steps do
    incr nsteps;
    let res = Vec.sub f st.mu in
    (* Correlations of every column with the residual: a column-parallel
       Gᵀ·r sweep, bitwise equal to the sequential per-column xdot. *)
    let gtr = Corr_sweep.gram_tr ?pool st.src res in
    let c = Array.init m (fun j -> gtr.(j) /. st.norms.(j)) in
    (* C from the best column overall; the entering variable is the best
       inactive one. *)
    let big_c = ref 0. and enter = ref (-1) and enter_c = ref 0. in
    for j = 0 to m - 1 do
      let a = Float.abs c.(j) in
      if a > !big_c then big_c := a;
      if (not st.in_active.(j)) && (not st.banned.(j)) && a > !enter_c then begin
        enter := j;
        enter_c := a
      end
    done;
    if !nsteps = 1 then initial_c := !big_c;
    if !big_c <= tol *. Float.max !initial_c 1. then stop := true
    else begin
      (* Add the entering variable (unless the active set is saturated
         or a lasso drop just occurred and no variable may enter). *)
      let added =
        if
          !enter >= 0
          && List.length st.active < max_active
          && !enter_c >= !big_c -. (1e-9 *. !big_c) -. 1e-15
        then begin
          match append_to_chol st !enter with
          | () ->
              st.active <- !enter :: st.active;
              st.in_active.(!enter) <- true;
              Some !enter
          | exception Cholesky.Not_positive_definite _ -> (
              (* Entering column linearly dependent on the active set. *)
              match on_singular with
              | `Stop -> None
              | `Fallback ->
                  (* Exclude the dependent column from every later enter
                     scan so the path keeps moving instead of stalling on
                     it; record the event in the step models. *)
                  st.banned.(!enter) <- true;
                  st.notes <-
                    Printf.sprintf "lars: banned dependent column %d" !enter
                    :: st.notes;
                  None)
        end
        else None
      in
      if st.active = [] then stop := true
      else begin
        let act = active_oldest_first st in
        let s = Array.map (fun j -> if c.(j) >= 0. then 1. else -1.) act in
        (* Equiangular direction: z = Gram⁻¹·s, A = 1/√(sᵀz),
           coefficient direction d_j = A·z_j, fit direction u = Σ d_j x_j. *)
        let z = Cholesky.Grow.solve st.chol s in
        let sz = Vec.dot s z in
        if sz <= 0. then stop := true
        else begin
          let a_a = 1. /. sqrt sz in
          let d = Array.map (fun zj -> a_a *. zj) z in
          let u = Array.make k 0. in
          Array.iteri
            (fun p j ->
              let w = d.(p) /. st.norms.(j) in
              let colj = Provider.Cache.column st.cache j in
              for r = 0 to k - 1 do
                u.(r) <- u.(r) +. (w *. Array.unsafe_get colj r)
              done)
            act;
          (* C recomputed over the active set (they are all equal up to
             numerical noise; use the max for robustness). *)
          let cc =
            Array.fold_left
              (fun acc j -> Float.max acc (Float.abs c.(j)))
              0. act
          in
          (* Step length to the next entering variable. The inner
             products of every column with the equiangular direction u
             are the second Gᵀ·r-shaped sweep of the iteration; the
             O(M) min scan that follows stays sequential. *)
          let gu = Corr_sweep.gram_tr ?pool st.src u in
          let gamma = ref (cc /. a_a) in
          for j = 0 to m - 1 do
            if not st.in_active.(j) then begin
              let aj = gu.(j) /. st.norms.(j) in
              let cand1 = (cc -. c.(j)) /. (a_a -. aj) in
              let cand2 = (cc +. c.(j)) /. (a_a +. aj) in
              if cand1 > 1e-12 && cand1 < !gamma then gamma := cand1;
              if cand2 > 1e-12 && cand2 < !gamma then gamma := cand2
            end
          done;
          (* Lasso modification: first zero-crossing of an active
             coefficient bounds the step. *)
          let drop = ref (-1) in
          if mode = Lasso then
            Array.iteri
              (fun p j ->
                (* β_j moves by γ·d_j; it crosses zero at γ = −β_j/d_j. *)
                if d.(p) <> 0. then begin
                  let gz = -.st.beta.(j) /. d.(p) in
                  if gz > 1e-12 && gz < !gamma then begin
                    gamma := gz;
                    drop := j
                  end
                end)
              act;
          (* Advance. *)
          Array.iteri
            (fun p j -> st.beta.(j) <- st.beta.(j) +. (!gamma *. d.(p)))
            act;
          Vec.axpy !gamma u st.mu;
          let dropped =
            if !drop >= 0 then begin
              st.beta.(!drop) <- 0.;
              st.active <- List.filter (fun j -> j <> !drop) st.active;
              st.in_active.(!drop) <- false;
              (match rebuild_chol st with
              | () -> ()
              | exception (Cholesky.Not_positive_definite _ as e) -> (
                  match on_singular with
                  | `Stop -> raise e
                  | `Fallback ->
                      (* The remaining active Gram factor itself went
                         non-SPD: no usable direction is left; end the
                         path at the last consistent model. *)
                      st.notes <-
                        "lars: stopped on non-SPD active set after drop"
                        :: st.notes;
                      stop := true));
              Some !drop
            end
            else None
          in
          steps :=
            { added; dropped; max_corr = cc; model = current_model st }
            :: !steps
          (* When γ = C/A the full-LS endpoint of the active set was
             reached; the residual is then uncorrelated with every
             active column and the tol test stops the next iteration. *)
        end
      end
    end
  done;
  Array.of_list (List.rev !steps)

let fit_p ?mode ?tol ?pool ?on_singular src f ~lambda =
  if lambda <= 0 then invalid_arg "Lars.fit: lambda must be positive";
  (* Drops can make the path longer than the target support size. *)
  let max_steps = (2 * lambda) + 8 in
  let steps = path_p ?mode ?tol ?pool ?on_singular src f ~max_steps in
  let best = ref None in
  Array.iter
    (fun s -> if Model.nnz s.model <= lambda then best := Some s.model)
    steps;
  match !best with
  | Some m -> m
  | None ->
      Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]

let path ?mode ?tol ?pool ?on_singular g f ~max_steps =
  path_p ?mode ?tol ?pool ?on_singular (Provider.dense g) f ~max_steps

let fit ?mode ?tol ?pool ?on_singular g f ~lambda =
  fit_p ?mode ?tol ?pool ?on_singular (Provider.dense g) f ~lambda
