open Linalg
module Provider = Polybasis.Design.Provider

type mode = Lar | Lasso

type step = {
  added : int option;
  dropped : int option;
  max_corr : float;
  model : Model.t;
}

(* Internal working state over unit-normalized columns x_j = G_j/‖G_j‖.
   The normalized columns are never materialized: every x_j operation
   divides by the stored norm on the fly. Active columns are
   materialized once into the per-fit cache (K floats each) — the only
   columns LAR ever touches individually. *)
type state = {
  src : Provider.t;
  cache : Provider.Cache.t;
  norms : Vec.t;
  k : int;
  m : int;
  beta : Vec.t;  (* coefficients in normalized scale *)
  mu : Vec.t;  (* current fit G·alpha = X·beta *)
  mutable active : int list;  (* most recently added first *)
  in_active : bool array;
  banned : bool array;  (* dependent columns excluded under `Fallback *)
  mutable notes : string list;  (* degradation events, attached to models *)
  mutable chol : Cholesky.Grow.t;  (* gram factor of active columns, oldest first *)
}

let xxdot st i j =
  Provider.Cache.col_col_dot st.cache i j /. (st.norms.(i) *. st.norms.(j))

(* Active set in insertion (oldest-first) order, matching the Grow factor. *)
let active_oldest_first st = Array.of_list (List.rev st.active)

let append_to_chol st j =
  let act = active_oldest_first st in
  let cross = Array.map (fun i -> xxdot st i j) act in
  Cholesky.Grow.append st.chol cross 1.

let rebuild_chol st =
  let act = active_oldest_first st in
  let cap = min st.k st.m in
  let chol = Cholesky.Grow.create (max cap 1) in
  Array.iteri
    (fun p j ->
      let cross = Array.init p (fun q -> xxdot st act.(q) j) in
      Cholesky.Grow.append chol cross 1.)
    act;
  st.chol <- chol

let current_model st =
  let support = ref [] and coeffs = ref [] in
  for j = st.m - 1 downto 0 do
    if st.beta.(j) <> 0. then begin
      support := j :: !support;
      coeffs := (st.beta.(j) /. st.norms.(j)) :: !coeffs
    end
  done;
  let model =
    Model.make ~basis_size:st.m
      ~support:(Array.of_list !support)
      ~coeffs:(Array.of_list !coeffs)
  in
  List.fold_left Model.add_note model (List.rev st.notes)

module Ckpt = Serialize.Checkpoint.Lars

let mode_tag = function Lar -> "lar" | Lasso -> "lasso"

(* Residual-correlation signs of the active set, oldest first — a
   human-readable state fingerprint stored next to the mu/beta digests.
   The per-column dot over cached columns is bitwise equal to the
   corresponding entry of the live Gᵀ·r sweep. *)
let residual_signs st f =
  let res = Vec.sub f st.mu in
  Array.map
    (fun j ->
      if Provider.Cache.col_dot st.cache j res /. st.norms.(j) >= 0. then 1.
      else -1.)
    (active_oldest_first st)

let banned_columns st =
  let acc = ref [] in
  for j = st.m - 1 downto 0 do
    if st.banned.(j) then acc := j :: !acc
  done;
  Array.of_list !acc

(* Snapshot the walk for persistence: the event log (newest first here)
   plus the derived terminal state used to validate a later replay. *)
let capture st ~mode ~scale ~f events =
  {
    Ckpt.mode = mode_tag mode;
    k = st.k;
    m = st.m;
    scale;
    active = active_oldest_first st;
    signs = residual_signs st f;
    banned = banned_columns st;
    events = Array.of_list (List.rev events);
    notes = Array.of_list (List.rev st.notes);
    mu_digest = Ckpt.digest st.mu;
    beta_digest = Ckpt.digest st.beta;
  }

(* Replay the checkpointed event log against the design provider. The
   recorded gammas replace the two O(K·M) sweeps of every live step, so
   replay costs O(E·p·K) (active-column dots only) yet reproduces
   mu/beta/active/chol — and every step record — bit-for-bit: each
   arithmetic sequence below is the exact sequence the live loop runs.
   The terminal digests/sets in the checkpoint then guard against
   resuming with different data, mode or [on_singular] policy. *)
let replay st (ck : Ckpt.t) ~mode ~on_singular f steps stop =
  let fail msg = invalid_arg ("Lars.path: resume: " ^ msg) in
  if ck.Ckpt.k <> st.k || ck.Ckpt.m <> st.m then
    fail
      (Printf.sprintf "checkpoint shape %dx%d disagrees with problem %dx%d"
         ck.Ckpt.k ck.Ckpt.m st.k st.m);
  if ck.Ckpt.mode <> mode_tag mode then
    fail
      (Printf.sprintf "checkpoint mode %s disagrees with requested mode %s"
         ck.Ckpt.mode (mode_tag mode));
  Array.iter
    (fun (e : Ckpt.event) ->
      if !stop then fail "events continue past a terminal state";
      (* A live ban consumes its whole iteration as a zero-length step:
         no add, no drop, no movement. Replay it the same way. *)
      if e.banned >= 0 then begin
        (match on_singular with
        | `Stop ->
            fail
              "checkpoint recorded a banned column (was it written with \
               ~on_singular:`Fallback?)"
        | `Fallback -> ());
        if st.banned.(e.banned) then fail "column banned twice";
        if e.added >= 0 || e.dropped >= 0 || e.gamma <> 0. then
          fail "ban event must be a zero-length step";
        if st.active = [] then fail "ban event with an empty active set";
        st.banned.(e.banned) <- true;
        st.notes <-
          Printf.sprintf "lars: banned dependent column %d" e.banned
          :: st.notes;
        let act = active_oldest_first st in
        let res = Vec.sub f st.mu in
        let cc =
          Array.fold_left
            (fun acc j ->
              Float.max acc
                (Float.abs
                   (Provider.Cache.col_dot st.cache j res /. st.norms.(j))))
            0. act
        in
        steps :=
          { added = None; dropped = None; max_corr = cc;
            model = current_model st }
          :: !steps
      end
      else begin
      if e.added >= 0 then begin
        if st.in_active.(e.added) then fail "column added twice";
        (match append_to_chol st e.added with
        | () -> ()
        | exception Cholesky.Not_positive_definite _ ->
            fail "replayed entering column is linearly dependent");
        st.active <- e.added :: st.active;
        st.in_active.(e.added) <- true
      end;
      if st.active = [] then fail "step event with an empty active set";
      let act = active_oldest_first st in
      let res = Vec.sub f st.mu in
      let c =
        Array.map
          (fun j -> Provider.Cache.col_dot st.cache j res /. st.norms.(j))
          act
      in
      let s = Array.map (fun cj -> if cj >= 0. then 1. else -1.) c in
      let z = Cholesky.Grow.solve st.chol s in
      let sz = Vec.dot s z in
      if sz <= 0. then fail "non-positive equiangular normalization";
      let a_a = 1. /. sqrt sz in
      let d = Array.map (fun zj -> a_a *. zj) z in
      let u = Array.make st.k 0. in
      Array.iteri
        (fun p j ->
          let w = d.(p) /. st.norms.(j) in
          let colj = Provider.Cache.column st.cache j in
          for r = 0 to st.k - 1 do
            u.(r) <- u.(r) +. (w *. Array.unsafe_get colj r)
          done)
        act;
      let cc =
        Array.fold_left (fun acc cj -> Float.max acc (Float.abs cj)) 0. c
      in
      let gamma = e.Ckpt.gamma in
      Array.iteri
        (fun p j -> st.beta.(j) <- st.beta.(j) +. (gamma *. d.(p)))
        act;
      Vec.axpy gamma u st.mu;
      let dropped =
        if e.dropped >= 0 then begin
          if mode <> Lasso then fail "drop event outside lasso mode";
          if not st.in_active.(e.dropped) then
            fail "replayed drop of an inactive column";
          st.beta.(e.dropped) <- 0.;
          st.active <- List.filter (fun j -> j <> e.dropped) st.active;
          st.in_active.(e.dropped) <- false;
          (match rebuild_chol st with
          | () -> ()
          | exception Cholesky.Not_positive_definite _ -> (
              match on_singular with
              | `Stop -> fail "non-SPD active set after replayed drop"
              | `Fallback ->
                  st.notes <-
                    "lars: stopped on non-SPD active set after drop"
                    :: st.notes;
                  stop := true));
          Some e.Ckpt.dropped
        end
        else None
      in
      let added = if e.added >= 0 then Some e.Ckpt.added else None in
      steps :=
        { added; dropped; max_corr = cc; model = current_model st } :: !steps
      end)
    ck.Ckpt.events;
  if active_oldest_first st <> ck.Ckpt.active then
    fail "replayed active set disagrees with the checkpoint";
  if banned_columns st <> ck.Ckpt.banned then
    fail "replayed banned set disagrees with the checkpoint";
  if Array.of_list (List.rev st.notes) <> ck.Ckpt.notes then
    fail "replayed notes disagree with the checkpoint";
  if residual_signs st f <> ck.Ckpt.signs then
    fail "replayed correlation signs disagree with the checkpoint";
  if Ckpt.digest st.mu <> ck.Ckpt.mu_digest then
    fail "fit-vector digest mismatch (different data or flags?)";
  if Ckpt.digest st.beta <> ck.Ckpt.beta_digest then
    fail "coefficient digest mismatch (different data or flags?)"

let path_p ?(mode = Lar) ?(tol = 1e-10) ?pool ?(on_singular = `Stop)
    ?(checkpoint_every = 0) ?on_checkpoint ?resume
    ?(sweep = Corr_sweep.Exact) ?(shards = 1)
    ?(shard_mode = Shard_sweep.Domains) ?recovered src f ~max_steps =
  let k = Provider.rows src and m = Provider.cols src in
  if Array.length f <> k then invalid_arg "Lars.path: response length mismatch";
  if max_steps <= 0 then invalid_arg "Lars.path: max_steps must be positive";
  if checkpoint_every < 0 then
    invalid_arg "Lars.path: negative checkpoint interval";
  if shards < 1 then invalid_arg "Lars.path: shards must be positive";
  (* Column-sharded sweep engine: the per-step O(K·M) scans decompose
     over contiguous column shards and merge bitwise (see Shard_sweep).
     Created against f — with a resume, the post-replay residual is
     re-swept below, which is exactly the refresh the checkpoint
     emission ran. *)
  let eng =
    if shards > 1 then
      Some (Shard_sweep.create ?pool ~mode:shard_mode ~shards ~sweep src ~r0:f)
    else None
  in
  Fun.protect ~finally:(fun () ->
      match eng with
      | Some e ->
          (match recovered with
          | Some r -> r := !r + Shard_sweep.recovered e
          | None -> ());
          Shard_sweep.shutdown e
      | None -> ())
  @@ fun () ->
  let norms =
    match eng with
    | None -> Provider.column_norms ?pool src
    | Some e -> Shard_sweep.raw_norms e
  in
  Array.iteri
    (fun j n -> if n <= 0. then norms.(j) <- 1. else norms.(j) <- n)
    norms;
  let st =
    {
      src;
      cache = Provider.Cache.create src;
      norms;
      k;
      m;
      beta = Array.make m 0.;
      mu = Array.make k 0.;
      active = [];
      in_active = Array.make m false;
      banned = Array.make m false;
      notes = [];
      chol = Cholesky.Grow.create (max (min k m) 1);
    }
  in
  let steps = ref [] in
  let stop = ref false in
  let initial_c = ref 0. in
  let nsteps = ref 0 in
  (* Event log of the walk so far (newest first): one entry per pushed
     step, feeding checkpoint capture. *)
  let events = ref [] in
  let nevents = ref 0 in
  let last_ckpt = ref 0 in
  (match resume with
  | None -> ()
  | Some ck ->
      replay st ck ~mode ~on_singular f steps stop;
      (* Every non-terminal live iteration pushes exactly one step, so
         the iteration counter resumes at the event count. *)
      let n = Array.length ck.Ckpt.events in
      nsteps := n;
      nevents := n;
      last_ckpt := n;
      events := List.rev (Array.to_list ck.Ckpt.events);
      initial_c := ck.Ckpt.scale);
  (* Incremental correlation state, created after any resume replay so
     its initial exact sweep sees the resumed residual — the same
     refresh point the uninterrupted run hit when it emitted the
     checkpoint (emission forces an exact refresh below), which is what
     keeps resumed incremental runs bitwise equal to uninterrupted
     ones. Replayed active columns get their Gram columns rebuilt here
     (same O(K·M) sweeps, hence same values, as the original run's
     [ensure_gram] calls). *)
  let inc =
    match (sweep, eng) with
    | _, Some _ | Corr_sweep.Exact, None -> None
    | Corr_sweep.Incremental { refresh }, None ->
        let ic =
          Corr_sweep.Inc.create ?pool ~refresh src (Vec.sub f st.mu)
        in
        List.iter
          (fun j ->
            Corr_sweep.Inc.ensure_gram ic j (Provider.Cache.column st.cache j))
          (List.rev st.active);
        Some ic
  in
  (* Sharded post-replay sync — the same rebuild [inc] runs above: an
     exact re-sweep of the resumed residual, the replayed active set's
     Gram slices (oldest first), and the replayed bans. *)
  let sh_incremental =
    match sweep with Corr_sweep.Incremental _ -> true | Corr_sweep.Exact -> false
  in
  let refresh_every =
    match sweep with
    | Corr_sweep.Incremental { refresh } -> refresh
    | Corr_sweep.Exact -> 0
  in
  let since = ref 0 in
  (match eng with
  | None -> ()
  | Some e ->
      if Option.is_some resume then Shard_sweep.refresh e (Vec.sub f st.mu);
      List.iter
        (fun j -> Shard_sweep.activate e j (Provider.Cache.column st.cache j))
        (List.rev st.active);
      Array.iter (fun j -> Shard_sweep.ban e j) (banned_columns st));
  let emit_checkpoint () =
    match on_checkpoint with
    | None -> ()
    | Some cb ->
        cb (capture st ~mode ~scale:!initial_c ~f !events);
        last_ckpt := !nevents;
        (* Checkpoint-aligned exact refresh: see [inc] above. *)
        (match inc with
        | None -> ()
        | Some ic -> Corr_sweep.Inc.refresh ic (Vec.sub f st.mu));
        (match eng with
        | Some e when sh_incremental ->
            Shard_sweep.refresh e (Vec.sub f st.mu);
            since := 0
        | _ -> ())
  in
  let max_active = min k m in
  while (not !stop) && !nsteps < max_steps do
    incr nsteps;
    (* Correlations of every column with the residual. Exact mode runs
       the column-parallel Gᵀ·r sweep (bitwise equal to the sequential
       per-column xdot); incremental mode reads the delta-maintained
       vector — O(M) instead of O(K·M). *)
    (* C from the best column overall; the entering variable is the best
       inactive one.  [cval] reads the normalized correlation at a
       column the step later touches: the full vector when the scan ran
       here, the gathered active/entrant values when it ran sharded
       (those are the only columns the parent-side step reads). *)
    let big_c = ref 0. and enter = ref (-1) and enter_c = ref 0. in
    let cval =
      match eng with
      | None ->
          let gtr =
            match inc with
            | None -> Corr_sweep.gram_tr ?pool st.src (Vec.sub f st.mu)
            | Some ic -> Corr_sweep.Inc.correlations ic
          in
          let c = Array.init m (fun j -> gtr.(j) /. st.norms.(j)) in
          for j = 0 to m - 1 do
            let a = Float.abs c.(j) in
            (* Banned columns are out of the walk: letting one set C
               would hold the stop criterion hostage and fail the
               near-tie entry test against a correlation nothing can
               ever act on. *)
            if (not st.banned.(j)) && a > !big_c then big_c := a;
            if (not st.in_active.(j)) && (not st.banned.(j)) && a > !enter_c
            then begin
              enter := j;
              enter_c := a
            end
          done;
          fun j -> c.(j)
      | Some e ->
          let p = Shard_sweep.lars_select e ~r:(Vec.sub f st.mu) in
          big_c := p.Shard_sweep.big_c;
          enter := p.Shard_sweep.enter;
          enter_c := p.Shard_sweep.enter_abs;
          let tbl = Hashtbl.create 16 in
          Array.iter
            (fun (j, v) -> Hashtbl.replace tbl j v)
            p.Shard_sweep.act_c;
          if p.Shard_sweep.enter >= 0 then
            Hashtbl.replace tbl p.Shard_sweep.enter p.Shard_sweep.enter_val;
          fun j ->
            match Hashtbl.find_opt tbl j with
            | Some v -> v
            | None ->
                invalid_arg "Lars.path: internal: correlation not gathered"
    in
    if !nsteps = 1 then initial_c := !big_c;
    if !big_c <= tol *. Float.max !initial_c 1. then stop := true
    else begin
      (* Add the entering variable (unless the active set is saturated
         or a lasso drop just occurred and no variable may enter). *)
      let banned_now = ref (-1) in
      let added =
        if
          !enter >= 0
          && List.length st.active < max_active
          && !enter_c >= !big_c -. (1e-9 *. !big_c) -. 1e-15
        then begin
          match append_to_chol st !enter with
          | () ->
              st.active <- !enter :: st.active;
              st.in_active.(!enter) <- true;
              (* Entering column: cache v_j = Gᵀ·g_j once — the O(K·M)
                 build that every later delta update amortizes. *)
              (match inc with
              | None -> ()
              | Some ic ->
                  Corr_sweep.Inc.ensure_gram ic !enter
                    (Provider.Cache.column st.cache !enter));
              (match eng with
              | None -> ()
              | Some e ->
                  Shard_sweep.activate e !enter
                    (Provider.Cache.column st.cache !enter));
              Some !enter
          | exception Cholesky.Not_positive_definite _ -> (
              (* Entering column linearly dependent on the active set. *)
              match on_singular with
              | `Stop -> None
              | `Fallback ->
                  (* Exclude the dependent column from every later enter
                     scan so the path keeps moving instead of stalling on
                     it; record the event in the step models. *)
                  st.banned.(!enter) <- true;
                  (match eng with
                  | None -> ()
                  | Some e -> Shard_sweep.ban e !enter);
                  banned_now := !enter;
                  st.notes <-
                    Printf.sprintf "lars: banned dependent column %d" !enter
                    :: st.notes;
                  None)
        end
        else None
      in
      if st.active = [] then stop := true
      else if !banned_now >= 0 then begin
        (* A ban consumes the iteration without moving. The column that
           should enter instead is usually already at the correlation
           tie, so its γ candidate is ~0 and the scan below would
           reject it — the step would then run unbounded past the tie
           and leave the active set non-equicorrelated for good
           (observed as a 2-cycle that never reaches the LS point).
           Record a zero-length step so the ban lands in the path and
           the event log; the next iteration re-scans without the
           column and hands the step to the true entrant. *)
        let act = active_oldest_first st in
        let cc =
          Array.fold_left
            (fun acc j -> Float.max acc (Float.abs (cval j)))
            0. act
        in
        steps :=
          { added = None; dropped = None; max_corr = cc;
            model = current_model st }
          :: !steps;
        events :=
          { Ckpt.added = -1; banned = !banned_now; dropped = -1; gamma = 0. }
          :: !events;
        incr nevents;
        if checkpoint_every > 0 && !nevents mod checkpoint_every = 0 then
          emit_checkpoint ()
      end
      else begin
        let act = active_oldest_first st in
        let s = Array.map (fun j -> if cval j >= 0. then 1. else -1.) act in
        (* Equiangular direction: z = Gram⁻¹·s, A = 1/√(sᵀz),
           coefficient direction d_j = A·z_j, fit direction u = Σ d_j x_j. *)
        let z = Cholesky.Grow.solve st.chol s in
        let sz = Vec.dot s z in
        if sz <= 0. then stop := true
        else begin
          let a_a = 1. /. sqrt sz in
          let d = Array.map (fun zj -> a_a *. zj) z in
          let u = Array.make k 0. in
          Array.iteri
            (fun p j ->
              let w = d.(p) /. st.norms.(j) in
              let colj = Provider.Cache.column st.cache j in
              for r = 0 to k - 1 do
                u.(r) <- u.(r) +. (w *. Array.unsafe_get colj r)
              done)
            act;
          (* C recomputed over the active set (they are all equal up to
             numerical noise; use the max for robustness). *)
          let cc =
            Array.fold_left
              (fun acc j -> Float.max acc (Float.abs (cval j)))
              0. act
          in
          (* Step length to the next entering variable. The inner
             products of every column with the equiangular direction u
             are the second Gᵀ·r-shaped sweep of the iteration; the
             O(M) min scan that follows stays sequential. Incremental
             mode assembles Gᵀ·u from the cached Gram columns of the
             active set (u = Σ w_p·x_{j_p}) at O(p·M) — this is the
             sweep the Gram cache eliminates outright. Sharded runs
             push both the sweep and the min scan into the shards and
             fold the exact local minima. *)
          let gamma = ref (cc /. a_a) in
          let gu = ref [||] in
          let sh_dir = ref None in
          (match eng with
          | None ->
              let g =
                match inc with
                | None -> Corr_sweep.gram_tr ?pool st.src u
                | Some ic ->
                    Corr_sweep.Inc.combination ic
                      (Array.mapi (fun p j -> (j, d.(p) /. st.norms.(j))) act)
              in
              gu := g;
              for j = 0 to m - 1 do
                (* Banned columns can never enter, so letting them bound
                   the step stalls the walk at their crossing point —
                   skip them like active ones. *)
                if (not st.in_active.(j)) && not st.banned.(j) then begin
                  let aj = g.(j) /. st.norms.(j) in
                  let cand1 = (cc -. cval j) /. (a_a -. aj) in
                  let cand2 = (cc +. cval j) /. (a_a +. aj) in
                  if cand1 > 1e-12 && cand1 < !gamma then gamma := cand1;
                  if cand2 > 1e-12 && cand2 < !gamma then gamma := cand2
                end
              done
          | Some e ->
              let dir =
                if sh_incremental then
                  Shard_sweep.Weights
                    (Array.mapi (fun p j -> (j, d.(p) /. st.norms.(j))) act)
                else Shard_sweep.Dense u
              in
              sh_dir := Some dir;
              let g = Shard_sweep.lars_gamma e ~cc ~a_a dir in
              if g < !gamma then gamma := g);
          (* Lasso modification: first zero-crossing of an active
             coefficient bounds the step. *)
          let drop = ref (-1) in
          if mode = Lasso then
            Array.iteri
              (fun p j ->
                (* β_j moves by γ·d_j; it crosses zero at γ = −β_j/d_j. *)
                if d.(p) <> 0. then begin
                  let gz = -.st.beta.(j) /. d.(p) in
                  if gz > 1e-12 && gz < !gamma then begin
                    gamma := gz;
                    drop := j
                  end
                end)
              act;
          (* Advance. *)
          Array.iteri
            (fun p j -> st.beta.(j) <- st.beta.(j) +. (!gamma *. d.(p)))
            act;
          Vec.axpy !gamma u st.mu;
          (* The residual moved by −γ·u, so c moved by −γ·(Gᵀ·u) — the
             delta update replacing the next iteration's full sweep.
             Drops below only zero an already-crossed coefficient and
             rebuild the factor; they do not move mu, so c needs no
             further update. *)
          (match (eng, inc) with
          | Some e, _ ->
              if sh_incremental then begin
                (* Parent-mirrored cadence: the non-sharded Inc counts
                   movement steps and refreshes when due; the shards
                   receive retreat and refresh in one logged command so
                   a worker lost between them replays both. *)
                incr since;
                let due = refresh_every > 0 && !since >= refresh_every in
                let refresh_r = if due then Some (Vec.sub f st.mu) else None in
                Shard_sweep.commit e ~gamma:!gamma
                  ~dir:(Option.get !sh_dir) ~refresh:refresh_r;
                if due then since := 0
              end
          | None, Some ic ->
              Corr_sweep.Inc.retreat ic !gamma !gu;
              Corr_sweep.Inc.note_step ic;
              if Corr_sweep.Inc.due ic then
                Corr_sweep.Inc.refresh ic (Vec.sub f st.mu)
          | None, None -> ());
          let dropped =
            if !drop >= 0 then begin
              st.beta.(!drop) <- 0.;
              st.active <- List.filter (fun j -> j <> !drop) st.active;
              st.in_active.(!drop) <- false;
              (match eng with
              | None -> ()
              | Some e -> Shard_sweep.deactivate e !drop);
              (match rebuild_chol st with
              | () -> ()
              | exception (Cholesky.Not_positive_definite _ as e) -> (
                  match on_singular with
                  | `Stop -> raise e
                  | `Fallback ->
                      (* The remaining active Gram factor itself went
                         non-SPD: no usable direction is left; end the
                         path at the last consistent model. *)
                      st.notes <-
                        "lars: stopped on non-SPD active set after drop"
                        :: st.notes;
                      stop := true));
              Some !drop
            end
            else None
          in
          steps :=
            { added; dropped; max_corr = cc; model = current_model st }
            :: !steps;
          events :=
            {
              Ckpt.added = (match added with Some j -> j | None -> -1);
              banned = !banned_now;
              dropped = (match dropped with Some j -> j | None -> -1);
              gamma = !gamma;
            }
            :: !events;
          incr nevents;
          if checkpoint_every > 0 && !nevents mod checkpoint_every = 0 then
            emit_checkpoint ()
          (* When γ = C/A the full-LS endpoint of the active set was
             reached; the residual is then uncorrelated with every
             active column and the tol test stops the next iteration. *)
        end
      end
    end
  done;
  (* Terminal checkpoint: whatever the cadence, a completed path leaves
     a checkpoint of its full event log, so resuming from it replays the
     whole walk rather than a stale prefix. *)
  if !nevents > !last_ckpt then emit_checkpoint ();
  Array.of_list (List.rev !steps)

let fit_p ?mode ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint
    ?resume ?sweep ?shards ?shard_mode ?recovered src f ~lambda =
  if lambda <= 0 then invalid_arg "Lars.fit: lambda must be positive";
  (* Drops can make the path longer than the target support size. *)
  let base_steps = (2 * lambda) + 8 in
  let rec run max_steps =
    let steps =
      path_p ?mode ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint
        ?resume ?sweep ?shards ?shard_mode ?recovered src f ~max_steps
    in
    let best = ref None in
    Array.iter
      (fun s -> if Model.nnz s.model <= lambda then best := Some s.model)
      steps;
    match !best with
    | Some m -> m
    | None ->
        if Array.length steps >= max_steps && max_steps < 8 * base_steps then
          (* The step budget truncated the path (drops/bans ate it all)
             before any model fit inside the sparsity budget: extend the
             walk rather than silently giving up. Replay from the resume
             checkpoint (when any) is cheap, so re-running the path is
             dominated by the new live steps. *)
          run (2 * max_steps)
        else
          (* Genuinely no qualifying model even with headroom: say so on
             the returned model instead of handing back a bare zero fit. *)
          Model.add_note
            (Model.make ~basis_size:(Provider.cols src) ~support:[||]
               ~coeffs:[||])
            (Printf.sprintf
               "lars: path ended after %d steps with no model of at most %d \
                bases"
               (Array.length steps) lambda)
  in
  run base_steps

(* Externally-swept LAR walk for the fused lockstep drivers. The walk
   needs two Gᵀ·v sweeps per movement step — correlations against the
   residual, then step lengths against the equiangular direction — and
   the engine exposes exactly that seam: [request] names the K-vector
   whose sweep is needed next, [supply] feeds the M-length Gᵀ·v back
   and runs the loop body. Every arithmetic sequence is lifted verbatim
   from the exact-sweep, unsharded branch of [path_p], so an engine
   driven by [request]/[supply] with exact sweeps (in particular the
   per-entry results of {!Corr_sweep.gram_tr_multi}) records the same
   steps bit-for-bit. *)
module Engine = struct
  (* What the next [supply] will be fed: the correlation sweep of the
     residual, or the step-length sweep of the equiangular direction
     (with the first sweep's derived state carried across). *)
  type phase =
    | Corr
    | Dir of {
        added : int option;
        act : int array;
        c : float array;
        d : float array;
        u : Vec.t;
        cc : float;
        a_a : float;
      }
    | Done

  type t = {
    st : state;
    mode : mode;
    tol : float;
    on_singular : [ `Stop | `Fallback ];
    max_steps : int;
    max_active : int;
    f : Vec.t;
    mutable steps_rev : step list;
    mutable initial_c : float;
    mutable nsteps : int;
    mutable stop : bool;
    mutable phase : phase;
  }

  let create ?(mode = Lar) ?(tol = 1e-10) ?pool ?(on_singular = `Stop) src f
      ~max_steps =
    let k = Provider.rows src and m = Provider.cols src in
    if Array.length f <> k then
      invalid_arg "Lars.path: response length mismatch";
    if max_steps <= 0 then invalid_arg "Lars.path: max_steps must be positive";
    let norms = Provider.column_norms ?pool src in
    Array.iteri
      (fun j n -> if n <= 0. then norms.(j) <- 1. else norms.(j) <- n)
      norms;
    let st =
      {
        src;
        cache = Provider.Cache.create src;
        norms;
        k;
        m;
        beta = Array.make m 0.;
        mu = Array.make k 0.;
        active = [];
        in_active = Array.make m false;
        banned = Array.make m false;
        notes = [];
        chol = Cholesky.Grow.create (max (min k m) 1);
      }
    in
    {
      st;
      mode;
      tol;
      on_singular;
      max_steps;
      max_active = min k m;
      f;
      steps_rev = [];
      initial_c = 0.;
      nsteps = 0;
      stop = false;
      phase = Corr;
    }

  let finished t = t.phase = Done

  let request t =
    match t.phase with
    | Corr -> Vec.sub t.f t.st.mu
    | Dir { u; _ } -> u
    | Done -> invalid_arg "Lars.Engine.request: engine is finished"

  (* The loop-head test of [path_p]'s while: the walk continues only
     while not stopped and under the step budget. *)
  let settle t =
    if t.stop || t.nsteps >= t.max_steps then t.phase <- Done
    else t.phase <- Corr

  let supply_corr t gtr =
    let st = t.st in
    t.nsteps <- t.nsteps + 1;
    let m = st.m in
    if Array.length gtr <> m then
      invalid_arg "Lars.Engine.supply: sweep length mismatch";
    let big_c = ref 0. and enter = ref (-1) and enter_c = ref 0. in
    let c = Array.init m (fun j -> gtr.(j) /. st.norms.(j)) in
    for j = 0 to m - 1 do
      let a = Float.abs c.(j) in
      if (not st.banned.(j)) && a > !big_c then big_c := a;
      if (not st.in_active.(j)) && (not st.banned.(j)) && a > !enter_c
      then begin
        enter := j;
        enter_c := a
      end
    done;
    let cval j = c.(j) in
    if t.nsteps = 1 then t.initial_c <- !big_c;
    if !big_c <= t.tol *. Float.max t.initial_c 1. then begin
      t.stop <- true;
      settle t
    end
    else begin
      let banned_now = ref (-1) in
      let added =
        if
          !enter >= 0
          && List.length st.active < t.max_active
          && !enter_c >= !big_c -. (1e-9 *. !big_c) -. 1e-15
        then begin
          match append_to_chol st !enter with
          | () ->
              st.active <- !enter :: st.active;
              st.in_active.(!enter) <- true;
              Some !enter
          | exception Cholesky.Not_positive_definite _ -> (
              match t.on_singular with
              | `Stop -> None
              | `Fallback ->
                  st.banned.(!enter) <- true;
                  banned_now := !enter;
                  st.notes <-
                    Printf.sprintf "lars: banned dependent column %d" !enter
                    :: st.notes;
                  None)
        end
        else None
      in
      if st.active = [] then begin
        t.stop <- true;
        settle t
      end
      else if !banned_now >= 0 then begin
        (* Zero-length ban step, exactly as in [path_p]: the next
           correlation sweep re-scans without the banned column. *)
        let act = active_oldest_first st in
        let cc =
          Array.fold_left
            (fun acc j -> Float.max acc (Float.abs (cval j)))
            0. act
        in
        t.steps_rev <-
          { added = None; dropped = None; max_corr = cc;
            model = current_model st }
          :: t.steps_rev;
        settle t
      end
      else begin
        let act = active_oldest_first st in
        let s = Array.map (fun j -> if cval j >= 0. then 1. else -1.) act in
        let z = Cholesky.Grow.solve st.chol s in
        let sz = Vec.dot s z in
        if sz <= 0. then begin
          t.stop <- true;
          settle t
        end
        else begin
          let a_a = 1. /. sqrt sz in
          let d = Array.map (fun zj -> a_a *. zj) z in
          let u = Array.make st.k 0. in
          Array.iteri
            (fun p j ->
              let w = d.(p) /. st.norms.(j) in
              let colj = Provider.Cache.column st.cache j in
              for r = 0 to st.k - 1 do
                u.(r) <- u.(r) +. (w *. Array.unsafe_get colj r)
              done)
            act;
          let cc =
            Array.fold_left
              (fun acc j -> Float.max acc (Float.abs (cval j)))
              0. act
          in
          t.phase <- Dir { added; act; c; d; u; cc; a_a }
        end
      end
    end

  let supply_dir t ~added ~act ~c ~d ~u ~cc ~a_a g =
    let st = t.st in
    if Array.length g <> st.m then
      invalid_arg "Lars.Engine.supply: sweep length mismatch";
    let cval j = c.(j) in
    let gamma = ref (cc /. a_a) in
    for j = 0 to st.m - 1 do
      if (not st.in_active.(j)) && not st.banned.(j) then begin
        let aj = g.(j) /. st.norms.(j) in
        let cand1 = (cc -. cval j) /. (a_a -. aj) in
        let cand2 = (cc +. cval j) /. (a_a +. aj) in
        if cand1 > 1e-12 && cand1 < !gamma then gamma := cand1;
        if cand2 > 1e-12 && cand2 < !gamma then gamma := cand2
      end
    done;
    let drop = ref (-1) in
    if t.mode = Lasso then
      Array.iteri
        (fun p j ->
          if d.(p) <> 0. then begin
            let gz = -.st.beta.(j) /. d.(p) in
            if gz > 1e-12 && gz < !gamma then begin
              gamma := gz;
              drop := j
            end
          end)
        act;
    Array.iteri
      (fun p j -> st.beta.(j) <- st.beta.(j) +. (!gamma *. d.(p)))
      act;
    Vec.axpy !gamma u st.mu;
    let dropped =
      if !drop >= 0 then begin
        st.beta.(!drop) <- 0.;
        st.active <- List.filter (fun j -> j <> !drop) st.active;
        st.in_active.(!drop) <- false;
        (match rebuild_chol st with
        | () -> ()
        | exception (Cholesky.Not_positive_definite _ as e) -> (
            match t.on_singular with
            | `Stop -> raise e
            | `Fallback ->
                st.notes <-
                  "lars: stopped on non-SPD active set after drop"
                  :: st.notes;
                t.stop <- true));
        Some !drop
      end
      else None
    in
    t.steps_rev <-
      { added; dropped; max_corr = cc; model = current_model st }
      :: t.steps_rev;
    settle t

  let supply t g =
    match t.phase with
    | Corr -> supply_corr t g
    | Dir { added; act; c; d; u; cc; a_a } ->
        supply_dir t ~added ~act ~c ~d ~u ~cc ~a_a g
    | Done -> invalid_arg "Lars.Engine.supply: engine is finished"

  let steps t = Array.of_list (List.rev t.steps_rev)
end

let path ?mode ?tol ?pool ?on_singular g f ~max_steps =
  path_p ?mode ?tol ?pool ?on_singular (Provider.dense g) f ~max_steps

let fit ?mode ?tol ?pool ?on_singular g f ~lambda =
  fit_p ?mode ?tol ?pool ?on_singular (Provider.dense g) f ~lambda
