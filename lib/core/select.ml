module Provider = Polybasis.Design.Provider

type rule = Min_error | One_se

type result = { model : Model.t; lambda : int; curve : float array }

(* File-backed fold cache over [Serialize.Checkpoint.Cv]: every finished
   fold writes [<base>.fold<q>]; on resume, files whose shape and plan
   digest match are loaded back and their folds skipped. A checkpoint
   from a different seed, dataset size, fold count or lambda grid is a
   hard error, never silently blended into the average. *)
let fold_cache ~base ~resume ~folds ~n ~max_lambda ~plan_digest =
  let module Cv = Serialize.Checkpoint.Cv in
  let load q =
    if not resume then None
    else
      let path = Cv.fold_file base q in
      if not (Sys.file_exists path) then None
      else
        match Cv.load path with
        | Error e ->
            invalid_arg (Printf.sprintf "Select: fold checkpoint %s: %s" path e)
        | Ok c ->
            if c.Cv.fold <> q then
              invalid_arg
                (Printf.sprintf "Select: fold checkpoint %s is for fold %d"
                   path c.Cv.fold);
            if c.Cv.folds <> folds || c.Cv.n <> n || c.Cv.max_lambda <> max_lambda
            then
              invalid_arg
                (Printf.sprintf
                   "Select: fold checkpoint %s shape (%d folds, n=%d, \
                    max_lambda=%d) disagrees with the sweep (%d folds, n=%d, \
                    max_lambda=%d)"
                   path c.Cv.folds c.Cv.n c.Cv.max_lambda folds n max_lambda);
            if c.Cv.plan_digest <> plan_digest then
              invalid_arg
                (Printf.sprintf
                   "Select: fold checkpoint %s was written for a different \
                    fold plan (different seed or data?)"
                   path);
            Some c.Cv.curve
  in
  let store q curve =
    Cv.save (Cv.fold_file base q)
      { Cv.fold = q; folds; n; max_lambda; plan_digest; curve }
  in
  { Stat.Crossval.load; store }

(* Held-out error curve of a fitted fold path — shared verbatim by the
   per-fold and fused drivers so their curves come from the same float
   sequence. *)
let held_out_curve ~max_lambda src f models held_out =
  if Array.length models = 0 then
    invalid_arg "Select: solver produced an empty path";
  let src_ho = Provider.select_rows src held_out in
  let f_ho = Array.map (fun i -> f.(i)) held_out in
  Array.init max_lambda (fun l ->
      let m = models.(min l (Array.length models - 1)) in
      Model.error_on_p m src_ho f_ho)

let generic_impl ?(folds = 4) ?(rule = Min_error) ?pool ?checkpoint
    ?(resume = false) ?fused_curves rng ~max_lambda ~path_models src f =
  if max_lambda <= 0 then invalid_arg "Select: max_lambda must be positive";
  let n = Provider.rows src in
  let plan = Stat.Crossval.make_plan rng ~n ~folds in
  (* Per-fold streams are split from the master generator in fold order
     before any fold runs — also before any checkpointed fold is loaded
     and skipped — so a stochastic solver draws the same stream in fold
     q whether the folds run sequentially, in parallel, or resumed. *)
  let fold_rngs = Randkit.Prng.split_n rng folds in
  let refit_rng = Randkit.Prng.split rng in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let cache =
    match checkpoint with
    | None -> None
    | Some base ->
        let plan_digest =
          Serialize.Checkpoint.Cv.plan_digest plan.Stat.Crossval.assignment
        in
        Some (fold_cache ~base ~resume ~folds ~n ~max_lambda ~plan_digest)
  in
  (* Per-fold error curves: the mean gives the paper's epsilon(lambda),
     the spread gives the standard error the One_se rule needs. In the
     per-fold driver, folds are fitted in parallel (one chunk per
     fold); the fused driver instead runs all fold solvers in lockstep
     sharing one multi-residual sweep per step. Either way each fold
     owns its own slot and the averaging below runs in fold order, so
     the curve is bitwise independent of the driver and domain count. *)
  let fold_curves =
    match fused_curves with
    | Some fit_curves -> Stat.Crossval.run_fold_curves_batch ?cache plan ~fit_curves
    | None ->
        Stat.Crossval.run_fold_curves ~pool ?cache plan
          ~fit_curve:(fun q ~train ~held_out ->
            let src_tr = Provider.select_rows src train in
            let f_tr = Array.map (fun i -> f.(i)) train in
            let models =
              path_models ~rng:fold_rngs.(q) src_tr f_tr ~max_lambda
            in
            held_out_curve ~max_lambda src f models held_out)
  in
  let fq = float_of_int folds in
  let curve =
    Array.init max_lambda (fun l ->
        Array.fold_left (fun acc fc -> acc +. (fc.(l) /. fq)) 0. fold_curves)
  in
  let best = Stat.Crossval.argmin curve in
  let lambda =
    match rule with
    | Min_error -> best + 1
    | One_se ->
        (* Fold-to-fold standard error of the mean at the minimum. *)
        let at_min = Array.map (fun fc -> fc.(best)) fold_curves in
        let se =
          if folds < 2 then 0.
          else Stat.Descriptive.std at_min /. sqrt fq
        in
        let threshold = curve.(best) +. se in
        let l = ref best in
        (* Smallest lambda within one SE of the minimum. *)
        for cand = best - 1 downto 0 do
          if
            (not (Float.is_nan curve.(cand)))
            && curve.(cand) <= threshold
          then l := cand
        done;
        !l + 1
  in
  let final = path_models ~rng:refit_rng src f ~max_lambda:lambda in
  { model = final.(Array.length final - 1); lambda; curve }

let generic_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda
    ~path_models src f =
  generic_impl ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda
    ~path_models src f

let generic ?folds ?rule ?pool rng ~max_lambda ~path_models g f =
  generic_p ?folds ?rule ?pool rng ~max_lambda
    ~path_models:(fun ~rng src f ~max_lambda ->
      path_models ~rng (Provider.to_dense ?pool src) f ~max_lambda)
    (Provider.dense g) f

let clamp_lambda ~max_lambda cap =
  (* Paths cannot exceed the solver's own bound on a fold's training
     rows; the caller's max_lambda is clamped accordingly. *)
  min max_lambda cap

exception Conflict of string

(* Whether a fused lockstep drive applies: fused sweeps require the
   exact correlation engine (the incremental engine maintains per-fold
   state the multi sweep cannot share), and by default they are worth
   it exactly when column generation is the cost being amortized —
   streamed providers. [?fused] overrides the default either way.

   Sharding is the hard case: the sharded engine owns the selection
   sweep per solver run, while fused lockstep CV shares one sweep
   across folds — mutually exclusive. When the caller merely left
   [fused] unset the resolution silently prefers the sharded engine,
   but an {e explicit} [fused = Some true] cannot be honored, and
   silently ignoring an explicit flag once cost a user a day of
   benchmarking the wrong driver — that combination is a typed
   {!Conflict} instead. *)
let resolve_fused ~sweep ~fused ~shards src =
  let sharded = match shards with Some s -> s > 1 | None -> false in
  let exact =
    match sweep with
    | None | Some Corr_sweep.Exact -> true
    | Some (Corr_sweep.Incremental _) -> false
  in
  match fused with
  | Some true when sharded ->
      raise
        (Conflict
           "fused CV conflicts with sharded sweeps: the sharded engine owns \
            the selection sweep of each solver run, while fused CV shares one \
            sweep across all folds; drop --fused-cv or run with --shards 1")
  | Some b -> b && exact && not sharded
  | None -> exact && (not sharded) && Provider.is_streamed src

(* Fused lockstep job fitting: one solver engine per (response,
   training-rows) job — a fold of one output, or any (output, fold)
   cell of a multi-output grid — advanced in lockstep; each round
   computes every live job's selection with a single fused
   multi-residual sweep over the full provider (per-job training rows
   as index sets). A job's sweep accumulates over exactly its training
   rows in ascending order — bitwise the sweep over its [select_rows]
   provider — and the engines replay the monolithic loop bodies, so
   the resulting curves are bitwise identical to job-at-a-time fitting
   while streamed column generation is paid once per round instead of
   once per live job. Jobs are [(f, train, held_out)] with [f] the
   job's full-length response. *)
let fused_omp_jobs ?on_singular ?pool src ~max_lambda jobs =
  let engines =
    Array.map
      (fun (f, train, _) ->
        let src_tr = Provider.select_rows src train in
        let f_tr = Array.map (fun i -> f.(i)) train in
        let ml =
          min max_lambda (min (Provider.rows src_tr) (Provider.cols src_tr))
        in
        (Omp.Engine.create ?on_singular src_tr f_tr ~max_lambda:ml, train))
      jobs
  in
  let running = ref true in
  while !running do
    let live = ref [] in
    for i = Array.length engines - 1 downto 0 do
      if not (Omp.Engine.finished (fst engines.(i))) then live := i :: !live
    done;
    match !live with
    | [] -> running := false
    | live ->
        let live = Array.of_list live in
        let rows = Array.map (fun i -> snd engines.(i)) live in
        let rs =
          Array.map (fun i -> Omp.Engine.residual (fst engines.(i))) live
        in
        let skips =
          Array.map (fun i -> Omp.Engine.skip_mask (fst engines.(i))) live
        in
        let picks = Corr_sweep.argmax_abs_multi ?pool ~skips src ~rows rs in
        Array.iteri
          (fun ii i -> ignore (Omp.Engine.advance (fst engines.(i)) picks.(ii)))
          live
  done;
  Array.mapi
    (fun i (f, _, held_out) ->
      let models =
        Array.map (fun s -> s.Omp.model) (Omp.Engine.steps (fst engines.(i)))
      in
      held_out_curve ~max_lambda src f models held_out)
    jobs

let fused_star_jobs ?pool src ~max_lambda jobs =
  let engines =
    Array.map
      (fun (f, train, _) ->
        let src_tr = Provider.select_rows src train in
        let f_tr = Array.map (fun i -> f.(i)) train in
        (Star.Engine.create src_tr f_tr ~max_lambda, train))
      jobs
  in
  let running = ref true in
  while !running do
    let live = ref [] in
    for i = Array.length engines - 1 downto 0 do
      if not (Star.Engine.finished (fst engines.(i))) then live := i :: !live
    done;
    match !live with
    | [] -> running := false
    | live ->
        let live = Array.of_list live in
        let rows = Array.map (fun i -> snd engines.(i)) live in
        let rs =
          Array.map (fun i -> Star.Engine.residual (fst engines.(i))) live
        in
        let skips =
          Array.map (fun i -> Star.Engine.skip_mask (fst engines.(i))) live
        in
        let picks = Corr_sweep.argmax_abs_multi ?pool ~skips src ~rows rs in
        Array.iteri
          (fun ii i ->
            ignore (Star.Engine.advance (fst engines.(i)) picks.(ii)))
          live
  done;
  Array.mapi
    (fun i (f, _, held_out) ->
      let models =
        Array.map (fun s -> s.Star.model) (Star.Engine.steps (fst engines.(i)))
      in
      held_out_curve ~max_lambda src f models held_out)
    jobs

(* λ-indexed models from a LAR step sequence: entry λ−1 holds the last
   path model with at most λ active coefficients, so curves are indexed
   by support size exactly as for OMP/STAR (lasso drops make steps ≠
   support size). Shared by the per-fold and fused drivers. *)
let lars_lambda_models src ~max_lambda steps =
  if Array.length steps = 0 then [||]
  else begin
    let empty =
      Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
    in
    let models = Array.make max_lambda empty in
    Array.iter
      (fun s ->
        let n = Model.nnz s.Lars.model in
        if n >= 1 && n <= max_lambda then
          for l = n - 1 to max_lambda - 1 do
            models.(l) <- s.Lars.model
          done)
      steps;
    models
  end

(* The LAR walk needs two sweeps per movement step, so its lockstep
   loop feeds each live engine's requested vector — residual or
   equiangular direction, the engines are mutually independent — into
   one [gram_tr_multi] pass per round. *)
let fused_lars_jobs ?mode ?on_singular ?pool src ~max_lambda jobs =
  let max_steps = min ((2 * max_lambda) + 8) (4 * max_lambda) in
  let engines =
    Array.map
      (fun (f, train, _) ->
        let src_tr = Provider.select_rows src train in
        let f_tr = Array.map (fun i -> f.(i)) train in
        ( Lars.Engine.create ?mode ?pool ?on_singular src_tr f_tr ~max_steps,
          train ))
      jobs
  in
  let running = ref true in
  while !running do
    let live = ref [] in
    for i = Array.length engines - 1 downto 0 do
      if not (Lars.Engine.finished (fst engines.(i))) then live := i :: !live
    done;
    match !live with
    | [] -> running := false
    | live ->
        let live = Array.of_list live in
        let rows = Array.map (fun i -> snd engines.(i)) live in
        let rs =
          Array.map (fun i -> Lars.Engine.request (fst engines.(i))) live
        in
        let sweeps = Corr_sweep.gram_tr_multi ?pool src ~rows rs in
        Array.iteri
          (fun ii i -> Lars.Engine.supply (fst engines.(i)) sweeps.(ii))
          live
  done;
  Array.mapi
    (fun i (f, _, held_out) ->
      let steps = Lars.Engine.steps (fst engines.(i)) in
      let models = lars_lambda_models src ~max_lambda steps in
      held_out_curve ~max_lambda src f models held_out)
    jobs

let single_output_jobs f pending =
  Array.map (fun (_, train, held_out) -> (f, train, held_out)) pending

let fused_omp_curves ?on_singular ?pool src f ~max_lambda pending =
  fused_omp_jobs ?on_singular ?pool src ~max_lambda
    (single_output_jobs f pending)

let fused_star_curves ?pool src f ~max_lambda pending =
  fused_star_jobs ?pool src ~max_lambda (single_output_jobs f pending)

let fused_lars_curves ?mode ?on_singular ?pool src f ~max_lambda pending =
  fused_lars_jobs ?mode ?on_singular ?pool src ~max_lambda
    (single_output_jobs f pending)

let omp_p ?folds ?rule ?pool ?on_singular ?sweep ?shards ?shard_mode
    ?recovered ?fused ?checkpoint ?resume rng ~max_lambda src f =
  let cap_rows =
    (* smallest fold training size: n − ceil(n/Q) *)
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  let fused_curves =
    if resolve_fused ~sweep ~fused ~shards src then
      Some (fused_omp_curves ?on_singular ?pool src f ~max_lambda)
    else None
  in
  generic_impl ?folds ?rule ?pool ?checkpoint ?resume ?fused_curves rng
    ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_lambda =
        min max_lambda (min (Provider.rows src) (Provider.cols src))
      in
      Array.map
        (fun s -> s.Omp.model)
        (Omp.path_p ?pool ?on_singular ?sweep ?shards ?shard_mode ?recovered
           src f ~max_lambda))
    src f

let star_p ?folds ?rule ?pool ?sweep ?shards ?shard_mode ?recovered ?fused
    ?checkpoint ?resume rng ~max_lambda src f =
  let max_lambda = clamp_lambda ~max_lambda (Provider.cols src) in
  let fused_curves =
    if resolve_fused ~sweep ~fused ~shards src then
      Some (fused_star_curves ?pool src f ~max_lambda)
    else None
  in
  generic_impl ?folds ?rule ?pool ?checkpoint ?resume ?fused_curves rng
    ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      Array.map
        (fun s -> s.Star.model)
        (Star.path_p ?pool ?sweep ?shards ?shard_mode ?recovered src f
           ~max_lambda))
    src f

let lars_p ?folds ?rule ?mode ?pool ?on_singular ?sweep ?shards ?shard_mode
    ?recovered ?fused ?checkpoint ?resume rng ~max_lambda src f =
  let cap_rows =
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  let fused_curves =
    if resolve_fused ~sweep ~fused ~shards src then
      Some (fused_lars_curves ?mode ?on_singular ?pool src f ~max_lambda)
    else None
  in
  generic_impl ?folds ?rule ?pool ?checkpoint ?resume ?fused_curves rng
    ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_steps = min ((2 * max_lambda) + 8) (4 * max_lambda) in
      let steps =
        Lars.path_p ?mode ?pool ?on_singular ?sweep ?shards ?shard_mode
          ?recovered src f ~max_steps
      in
      lars_lambda_models src ~max_lambda steps)
    src f

(* Multi-output driver resolution: like [resolve_fused], but without
   the streamed-provider default — the fused grid amortizes each sweep
   across R×Q solvers, so it pays for dense providers too. Same typed
   conflict on an explicit fused request under sharding. *)
let resolve_fused_multi ~sweep ~fused ~shards =
  let sharded = match shards with Some s -> s > 1 | None -> false in
  let exact =
    match sweep with
    | None | Some Corr_sweep.Exact -> true
    | Some (Corr_sweep.Incremental _) -> false
  in
  match fused with
  | Some true when sharded ->
      raise
        (Conflict
           "fused multi-output fitting conflicts with sharded sweeps: the \
            sharded engine owns the selection sweep of each solver run, while \
            the fused driver shares one sweep across every output and fold; \
            drop --fused-outputs or run with --shards 1")
  | Some b -> b && exact && not sharded
  | None -> exact && not sharded

(* Multi-output λ selection: R responses share one fold plan, one
   fused lockstep grid of R×Q fold solvers, and R per-output refits.
   The PRNG draws mirror [generic_impl] exactly — one plan, Q fold
   streams, one refit stream, all from the caller's generator — and
   the path solvers ignore their fold streams, so output [r]'s result
   is bitwise the single-output run of [generic_impl] on [fs.(r)] with
   a copy of the same generator. *)
let generic_multi_impl ?(folds = 4) ?(rule = Min_error) ?checkpoint
    ?(resume = false) ~fit_jobs ~path_models rng ~max_lambda src fs =
  if max_lambda <= 0 then invalid_arg "Select: max_lambda must be positive";
  let outputs = Array.length fs in
  if outputs = 0 then invalid_arg "Select: at least one output required";
  let n = Provider.rows src in
  Array.iter
    (fun f ->
      if Array.length f <> n then
        invalid_arg "Select: response length mismatch")
    fs;
  let plan = Stat.Crossval.make_plan rng ~n ~folds in
  let _fold_rngs = Randkit.Prng.split_n rng folds in
  let refit_rng = Randkit.Prng.split rng in
  let caches =
    match checkpoint with
    | None -> None
    | Some base ->
        let module M = Serialize.Checkpoint.Multi in
        let plan_digest =
          Serialize.Checkpoint.Cv.plan_digest plan.Stat.Crossval.assignment
        in
        let manifest = { M.outputs; folds; n; max_lambda; plan_digest } in
        let mpath = M.manifest_file base in
        (if resume && Sys.file_exists mpath then
           match M.load mpath with
           | Error e ->
               invalid_arg
                 (Printf.sprintf "Select: multi checkpoint %s: %s" mpath e)
           | Ok m ->
               if m <> manifest then
                 invalid_arg
                   (Printf.sprintf
                      "Select: multi checkpoint %s grid (%d outputs, %d \
                       folds, n=%d, max_lambda=%d) disagrees with the sweep \
                       (%d outputs, %d folds, n=%d, max_lambda=%d) or was \
                       written for a different fold plan"
                      mpath m.M.outputs m.M.folds m.M.n m.M.max_lambda outputs
                      folds n max_lambda));
        M.save mpath manifest;
        Some
          (Array.init outputs (fun r ->
               Some
                 (fold_cache ~base:(M.output_base base r) ~resume ~folds ~n
                    ~max_lambda ~plan_digest)))
  in
  let grid =
    Stat.Crossval.run_fold_curves_multi ?caches ~outputs plan
      ~fit_curves:fit_jobs
  in
  let fq = float_of_int folds in
  Array.init outputs (fun r ->
      let fold_curves = grid.(r) in
      let curve =
        Array.init max_lambda (fun l ->
            Array.fold_left (fun acc fc -> acc +. (fc.(l) /. fq)) 0. fold_curves)
      in
      let best = Stat.Crossval.argmin curve in
      let lambda =
        match rule with
        | Min_error -> best + 1
        | One_se ->
            let at_min = Array.map (fun fc -> fc.(best)) fold_curves in
            let se =
              if folds < 2 then 0.
              else Stat.Descriptive.std at_min /. sqrt fq
            in
            let threshold = curve.(best) +. se in
            let l = ref best in
            for cand = best - 1 downto 0 do
              if
                (not (Float.is_nan curve.(cand)))
                && curve.(cand) <= threshold
              then l := cand
            done;
            !l + 1
      in
      let final = path_models ~rng:refit_rng src fs.(r) ~max_lambda:lambda in
      { model = final.(Array.length final - 1); lambda; curve })

(* The grid's fused fitter: map each (output, fold) cell to a lockstep
   job carrying that output's response. *)
let grid_jobs fs jobs =
  Array.map (fun (r, _, train, held_out) -> (fs.(r), train, held_out)) jobs

let omp_multi_p ?folds ?rule ?pool ?on_singular ?checkpoint ?resume rng
    ~max_lambda src fs =
  let cap_rows =
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  generic_multi_impl ?folds ?rule ?checkpoint ?resume
    ~fit_jobs:(fun jobs ->
      fused_omp_jobs ?on_singular ?pool src ~max_lambda (grid_jobs fs jobs))
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_lambda =
        min max_lambda (min (Provider.rows src) (Provider.cols src))
      in
      Array.map
        (fun s -> s.Omp.model)
        (Omp.path_p ?pool ?on_singular src f ~max_lambda))
    rng ~max_lambda src fs

let star_multi_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda src
    fs =
  let max_lambda = clamp_lambda ~max_lambda (Provider.cols src) in
  generic_multi_impl ?folds ?rule ?checkpoint ?resume
    ~fit_jobs:(fun jobs ->
      fused_star_jobs ?pool src ~max_lambda (grid_jobs fs jobs))
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      Array.map (fun s -> s.Star.model) (Star.path_p ?pool src f ~max_lambda))
    rng ~max_lambda src fs

let lars_multi_p ?folds ?rule ?mode ?pool ?on_singular ?checkpoint ?resume
    rng ~max_lambda src fs =
  let cap_rows =
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  generic_multi_impl ?folds ?rule ?checkpoint ?resume
    ~fit_jobs:(fun jobs ->
      fused_lars_jobs ?mode ?on_singular ?pool src ~max_lambda
        (grid_jobs fs jobs))
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_steps = min ((2 * max_lambda) + 8) (4 * max_lambda) in
      let steps =
        Lars.path_p ?mode ?pool ?on_singular src f ~max_steps
      in
      lars_lambda_models src ~max_lambda steps)
    rng ~max_lambda src fs

let omp ?folds ?rule ?pool ?on_singular rng ~max_lambda g f =
  omp_p ?folds ?rule ?pool ?on_singular rng ~max_lambda (Provider.dense g) f

let star ?folds ?rule ?pool rng ~max_lambda g f =
  star_p ?folds ?rule ?pool rng ~max_lambda (Provider.dense g) f

let lars ?folds ?rule ?mode ?pool ?on_singular rng ~max_lambda g f =
  lars_p ?folds ?rule ?mode ?pool ?on_singular rng ~max_lambda
    (Provider.dense g) f
