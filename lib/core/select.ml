module Provider = Polybasis.Design.Provider

type rule = Min_error | One_se

type result = { model : Model.t; lambda : int; curve : float array }

(* File-backed fold cache over [Serialize.Checkpoint.Cv]: every finished
   fold writes [<base>.fold<q>]; on resume, files whose shape and plan
   digest match are loaded back and their folds skipped. A checkpoint
   from a different seed, dataset size, fold count or lambda grid is a
   hard error, never silently blended into the average. *)
let fold_cache ~base ~resume ~folds ~n ~max_lambda ~plan_digest =
  let module Cv = Serialize.Checkpoint.Cv in
  let load q =
    if not resume then None
    else
      let path = Cv.fold_file base q in
      if not (Sys.file_exists path) then None
      else
        match Cv.load path with
        | Error e ->
            invalid_arg (Printf.sprintf "Select: fold checkpoint %s: %s" path e)
        | Ok c ->
            if c.Cv.fold <> q then
              invalid_arg
                (Printf.sprintf "Select: fold checkpoint %s is for fold %d"
                   path c.Cv.fold);
            if c.Cv.folds <> folds || c.Cv.n <> n || c.Cv.max_lambda <> max_lambda
            then
              invalid_arg
                (Printf.sprintf
                   "Select: fold checkpoint %s shape (%d folds, n=%d, \
                    max_lambda=%d) disagrees with the sweep (%d folds, n=%d, \
                    max_lambda=%d)"
                   path c.Cv.folds c.Cv.n c.Cv.max_lambda folds n max_lambda);
            if c.Cv.plan_digest <> plan_digest then
              invalid_arg
                (Printf.sprintf
                   "Select: fold checkpoint %s was written for a different \
                    fold plan (different seed or data?)"
                   path);
            Some c.Cv.curve
  in
  let store q curve =
    Cv.save (Cv.fold_file base q)
      { Cv.fold = q; folds; n; max_lambda; plan_digest; curve }
  in
  { Stat.Crossval.load; store }

let generic_p ?(folds = 4) ?(rule = Min_error) ?pool ?checkpoint
    ?(resume = false) rng ~max_lambda ~path_models src f =
  if max_lambda <= 0 then invalid_arg "Select: max_lambda must be positive";
  let n = Provider.rows src in
  let plan = Stat.Crossval.make_plan rng ~n ~folds in
  (* Per-fold streams are split from the master generator in fold order
     before any fold runs — also before any checkpointed fold is loaded
     and skipped — so a stochastic solver draws the same stream in fold
     q whether the folds run sequentially, in parallel, or resumed. *)
  let fold_rngs = Randkit.Prng.split_n rng folds in
  let refit_rng = Randkit.Prng.split rng in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let cache =
    match checkpoint with
    | None -> None
    | Some base ->
        let plan_digest =
          Serialize.Checkpoint.Cv.plan_digest plan.Stat.Crossval.assignment
        in
        Some (fold_cache ~base ~resume ~folds ~n ~max_lambda ~plan_digest)
  in
  (* Per-fold error curves: the mean gives the paper's epsilon(lambda),
     the spread gives the standard error the One_se rule needs. Folds
     are fitted in parallel (one chunk per fold); each writes only its
     own slot, and the averaging below runs in fold order, so the curve
     is bitwise independent of the domain count. *)
  let fold_curves =
    Stat.Crossval.run_fold_curves ~pool ?cache plan
      ~fit_curve:(fun q ~train ~held_out ->
        let src_tr = Provider.select_rows src train in
        let f_tr = Array.map (fun i -> f.(i)) train in
        let src_ho = Provider.select_rows src held_out in
        let f_ho = Array.map (fun i -> f.(i)) held_out in
        let models = path_models ~rng:fold_rngs.(q) src_tr f_tr ~max_lambda in
        if Array.length models = 0 then
          invalid_arg "Select: solver produced an empty path";
        Array.init max_lambda (fun l ->
            let m = models.(min l (Array.length models - 1)) in
            Model.error_on_p m src_ho f_ho))
  in
  let fq = float_of_int folds in
  let curve =
    Array.init max_lambda (fun l ->
        Array.fold_left (fun acc fc -> acc +. (fc.(l) /. fq)) 0. fold_curves)
  in
  let best = Stat.Crossval.argmin curve in
  let lambda =
    match rule with
    | Min_error -> best + 1
    | One_se ->
        (* Fold-to-fold standard error of the mean at the minimum. *)
        let at_min = Array.map (fun fc -> fc.(best)) fold_curves in
        let se =
          if folds < 2 then 0.
          else Stat.Descriptive.std at_min /. sqrt fq
        in
        let threshold = curve.(best) +. se in
        let l = ref best in
        (* Smallest lambda within one SE of the minimum. *)
        for cand = best - 1 downto 0 do
          if
            (not (Float.is_nan curve.(cand)))
            && curve.(cand) <= threshold
          then l := cand
        done;
        !l + 1
  in
  let final = path_models ~rng:refit_rng src f ~max_lambda:lambda in
  { model = final.(Array.length final - 1); lambda; curve }

let generic ?folds ?rule ?pool rng ~max_lambda ~path_models g f =
  generic_p ?folds ?rule ?pool rng ~max_lambda
    ~path_models:(fun ~rng src f ~max_lambda ->
      path_models ~rng (Provider.to_dense ?pool src) f ~max_lambda)
    (Provider.dense g) f

let clamp_lambda ~max_lambda cap =
  (* Paths cannot exceed the solver's own bound on a fold's training
     rows; the caller's max_lambda is clamped accordingly. *)
  min max_lambda cap

let omp_p ?folds ?rule ?pool ?on_singular ?checkpoint ?resume rng ~max_lambda
    src f =
  let cap_rows =
    (* smallest fold training size: n − ceil(n/Q) *)
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  generic_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_lambda =
        min max_lambda (min (Provider.rows src) (Provider.cols src))
      in
      Array.map
        (fun s -> s.Omp.model)
        (Omp.path_p ?pool ?on_singular src f ~max_lambda))
    src f

let star_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda src f =
  let max_lambda = clamp_lambda ~max_lambda (Provider.cols src) in
  generic_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      Array.map (fun s -> s.Star.model) (Star.path_p ?pool src f ~max_lambda))
    src f

let lars_p ?folds ?rule ?mode ?pool ?on_singular ?checkpoint ?resume rng
    ~max_lambda src f =
  let cap_rows =
    let n = Provider.rows src in
    let q = match folds with Some q -> q | None -> 4 in
    n - ((n + q - 1) / q)
  in
  let max_lambda =
    clamp_lambda ~max_lambda (min cap_rows (Provider.cols src))
  in
  generic_p ?folds ?rule ?pool ?checkpoint ?resume rng ~max_lambda
    ~path_models:(fun ~rng:_ src f ~max_lambda ->
      let max_steps = min ((2 * max_lambda) + 8) (4 * max_lambda) in
      let steps = Lars.path_p ?mode ?pool ?on_singular src f ~max_steps in
      if Array.length steps = 0 then [||]
      else begin
        (* Entry λ−1 holds the last path model with at most λ active
           coefficients, so the curve is indexed by support size exactly
           as for OMP/STAR (lasso drops make steps ≠ support size). *)
        let empty =
          Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
        in
        let models = Array.make max_lambda empty in
        Array.iter
          (fun s ->
            let n = Model.nnz s.Lars.model in
            if n >= 1 && n <= max_lambda then
              for l = n - 1 to max_lambda - 1 do
                models.(l) <- s.Lars.model
              done)
          steps;
        models
      end)
    src f

let omp ?folds ?rule ?pool ?on_singular rng ~max_lambda g f =
  omp_p ?folds ?rule ?pool ?on_singular rng ~max_lambda (Provider.dense g) f

let star ?folds ?rule ?pool rng ~max_lambda g f =
  star_p ?folds ?rule ?pool rng ~max_lambda (Provider.dense g) f

let lars ?folds ?rule ?mode ?pool ?on_singular rng ~max_lambda g f =
  lars_p ?folds ?rule ?mode ?pool ?on_singular rng ~max_lambda
    (Provider.dense g) f
