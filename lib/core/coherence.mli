(** Dictionary-conditioning diagnostics for sparse recovery.

    Section IV-B's guarantee ("if the linear equation is
    well-conditioned, the solution is almost uniquely determined from
    O(P·log M) samples") is conditional on properties of the sampled
    dictionary. Two measurable proxies:

    - {e mutual coherence} μ: the largest absolute inner product
      between distinct normalized columns. Exact-recovery guarantees of
      OMP hold when the sparsity P < ½(1 + 1/μ) (Tropp 2004) — a
      pessimistic but computable certificate.
    - {e restricted condition numbers}: the spread of singular values
      of random column subsets of size s — an empirical RIP probe.

    These let the library {e say in advance} whether a given sampling
    plan is adequate, instead of discovering failure post hoc. *)

val mutual_coherence : Linalg.Mat.t -> float
(** [mutual_coherence g] is [max_{i≠j} |⟨gᵢ, gⱼ⟩|/(‖gᵢ‖·‖gⱼ‖)]; zero
    columns are skipped. O(K·M²) — intended for diagnostics, not inner
    loops.
    @raise Invalid_argument with fewer than 2 columns. *)

val coherence_recovery_bound : Linalg.Mat.t -> float
(** The largest sparsity P for which Tropp's coherence condition
    [P < ½(1 + 1/μ)] certifies exact OMP recovery. *)

val babel : Linalg.Mat.t -> int -> float
(** [babel g s] is the Babel function μ₁(s): the maximum over columns
    of the sum of the [s] largest absolute normalized inner products
    with other columns — a tighter certificate than s·μ.
    @raise Invalid_argument when [s] is out of range. *)

val subset_condition :
  ?trials:int -> Randkit.Prng.t -> Linalg.Mat.t -> s:int -> float * float
(** [(mean, max)] condition number of [trials] (default 20) random
    [K×s] column submatrices — an empirical restricted-isometry probe.
    @raise Invalid_argument when [s] exceeds [min(K, M)]. *)
