(** Worst-case corner extraction from fitted models.

    Classical worst-case analysis (the paper's reference [6]) asks: at a
    given process "radius" (k-sigma ball in the independent factor
    space), what is the worst value a performance can take, and at which
    corner? For a {e linear} Hermite model [f = α₀ + Σ αᵢ·Δyᵢ] the
    answer is closed-form: the extremum over [‖ΔY‖₂ ≤ k] lies at
    [ΔY = ±k·α/‖α‖] with value [α₀ ± k·‖α‖]. For nonlinear models a
    projected-gradient ascent on the sphere is provided.

    The extracted corner is an actual factor vector — it can be handed
    back to the simulator substrate for verification, which is exactly
    how corner files are used in a real flow. *)

type extremum = { value : float; corner : Linalg.Vec.t }

val linear_worst :
  Model.t -> Polybasis.Basis.t -> sigma:float -> maximize:bool -> extremum
(** Closed-form extremum of a linear model over the [sigma]-radius ball.
    @raise Invalid_argument when the model has terms of degree ≥ 2 or
    [sigma < 0]. *)

val search_worst :
  ?iters:int -> ?step:float -> Model.t -> Polybasis.Basis.t -> sigma:float ->
  maximize:bool -> Randkit.Prng.t -> extremum
(** Projected-gradient search on the sphere [‖ΔY‖₂ = sigma] for general
    (e.g. quadratic) models, with finite-difference gradients restricted
    to the factors in the model's support (all others are provably
    irrelevant). Multi-started from the linear corner and [3] random
    points; [iters] (default 200) steps of size [step] (default
    [0.05·sigma]). Deterministic given the PRNG. *)
