open Linalg

type fallback = Direct | Qr_fallback | Ridge_fallback of float

let note = function
  | Direct -> None
  | Qr_fallback -> Some "refit: qr fallback"
  | Ridge_fallback eps ->
      Some (Printf.sprintf "refit: ridge fallback (jitter %.3g)" eps)

let gram cols =
  let p = Array.length cols in
  let a = Mat.create p p in
  for i = 0 to p - 1 do
    for j = 0 to i do
      let d = Vec.dot cols.(i) cols.(j) in
      Mat.unsafe_set a i j d;
      Mat.unsafe_set a j i d
    done
  done;
  a

let solve_cols cols f =
  let p = Array.length cols in
  if p = 0 then ([||], Direct)
  else begin
    let a = gram cols in
    let b = Array.map (fun c -> Vec.dot c f) cols in
    match Cholesky.spd_solve a b with
    | x -> (x, Direct)
    | exception Cholesky.Not_positive_definite _ -> (
        (* Rung 2: Householder QR on the K×p active-column matrix. The
           condition number enters once instead of squared, so QR
           survives Gram matrices that are merely ill-conditioned. *)
        let k = Array.length f in
        let qr_solve () =
          let m = Mat.init k p (fun i q -> cols.(q).(i)) in
          Qr.lstsq m f
        in
        match qr_solve () with
        | x -> (x, Qr_fallback)
        | exception (Tri.Singular _ | Invalid_argument _) ->
            (* Rung 3: ridge-jittered normal equations. The active set is
               genuinely rank-deficient; a tiny L2 jitter picks the
               minimum-norm-ish solution and always succeeds for a large
               enough jitter (escalated x100 per try). *)
            let mean_diag =
              let acc = ref 0. in
              for i = 0 to p - 1 do
                acc := !acc +. Mat.unsafe_get a i i
              done;
              Float.max (!acc /. float_of_int p) 1e-300
            in
            let rec attempt eps tries =
              let aj =
                Mat.init p p (fun i j ->
                    Mat.unsafe_get a i j +. if i = j then eps else 0.)
              in
              match Cholesky.spd_solve aj b with
              | x -> (x, Ridge_fallback eps)
              | exception Cholesky.Not_positive_definite _ when tries < 20 ->
                  attempt (eps *. 100.) (tries + 1)
            in
            attempt (1e-10 *. mean_diag) 0)
  end
