open Linalg
module Provider = Polybasis.Design.Provider

type step = {
  index : int;
  correlation : float;
  residual_norm : float;
  model : Model.t;
}

(* The per-step state machine behind [path_p], exposed so the fused CV
   driver in [Select] can run Q fold solvers in lockstep: each round it
   computes all Q selections with one fused multi-residual sweep and
   feeds them to [advance]. [advance] applies exactly the statements the
   historical loop body ran, in the same order, so driving an engine
   with selections from [Corr_sweep.argmax_abs] reproduces the
   monolithic loop bit for bit. *)
module Engine = struct
  type t = {
    k : int;
    m : int;
    tol : float;
    on_singular : [ `Stop | `Fallback ];
    max_lambda : int;
    f : Vec.t;
    selected : bool array;
    support : int array;
    rhs : float array;
    (* Gram factor of the selected columns, grown one column per step. *)
    chol : Cholesky.Grow.t;
    (* Active-set columns are touched every remaining iteration (cross
       products, re-fit residual); cache them once materialized — λ
       columns of K floats, never the full matrix. *)
    cache : Provider.Cache.t;
    res : Vec.t;
    mutable steps_rev : step list;
    mutable stop : bool;
    mutable initial_corr : float;
    mutable p : int;
    (* Once the Gram factor went non-SPD and `Fallback was requested,
       the incremental factor is abandoned and every re-fit runs the
       Refit ladder over the cached active columns; the rung that fired
       is recorded in the step's model notes. Clean paths never enter
       this mode, so their bits are untouched. *)
    mutable degraded : bool;
    mutable fallback_note : string option;
    mutable coeffs : float array;
  }

  let create ?(tol = 1e-12) ?(on_singular = `Stop) src f ~max_lambda =
    let k = Provider.rows src and m = Provider.cols src in
    if Array.length f <> k then
      invalid_arg "Omp.path: response length mismatch";
    if max_lambda <= 0 then invalid_arg "Omp.path: max_lambda must be positive";
    if max_lambda > min k m then
      invalid_arg "Omp.path: max_lambda exceeds min(samples, basis size)";
    {
      k;
      m;
      tol;
      on_singular;
      max_lambda;
      f;
      selected = Array.make m false;
      support = Array.make (max max_lambda 1) 0;
      rhs = Array.make (max max_lambda 1) 0.;
      chol = Cholesky.Grow.create (max max_lambda 1);
      cache = Provider.Cache.create src;
      res = Array.copy f;
      steps_rev = [];
      stop = false;
      initial_corr = 0.;
      p = 0;
      degraded = false;
      fallback_note = None;
      coeffs = [||];
    }

  let size t = t.p
  let finished t = t.stop || t.p >= t.max_lambda
  let residual t = t.res
  let skip_mask t = t.selected
  let support t = Array.sub t.support 0 t.p
  let coeffs t = t.coeffs
  let scale t = t.initial_corr
  let column t j = Provider.Cache.column t.cache j
  let steps t = Array.of_list (List.rev t.steps_rev)

  (* Accept column [j]: extend the Gram factor (or enter degraded mode),
     record support and right-hand side. Returns false when the path
     must stop instead ([`Stop] on a dependent column). Shared by live
     selection and checkpoint replay so both degrade identically. *)
  let accept t j =
    let ok =
      if t.degraded then true
      else begin
        let cross =
          Array.init t.p (fun q ->
              Provider.Cache.col_col_dot t.cache t.support.(q) j)
        in
        let diag = Provider.Cache.col_col_dot t.cache j j in
        match Cholesky.Grow.append t.chol cross diag with
        | () -> true
        | exception Cholesky.Not_positive_definite _ -> (
            (* Column linearly dependent on the selected set: the plain
               LS re-fit would be singular. *)
            match t.on_singular with
            | `Stop -> false
            | `Fallback ->
                t.degraded <- true;
                true)
      end
    in
    if ok then begin
      t.support.(t.p) <- j;
      t.selected.(j) <- true;
      t.rhs.(t.p) <- Provider.Cache.col_dot t.cache j t.f;
      t.p <- t.p + 1
    end;
    ok

  (* Step 6: re-fit all selected coefficients (eq. (22)) — through the
     incremental factor normally, through the fallback ladder once
     degraded. *)
  let refit_coeffs t =
    if not t.degraded then Cholesky.Grow.solve t.chol (Array.sub t.rhs 0 t.p)
    else begin
      let cols =
        Array.map (Provider.Cache.column t.cache) (Array.sub t.support 0 t.p)
      in
      let coeffs, fb = Refit.solve_cols cols t.f in
      t.fallback_note <- Refit.note fb;
      coeffs
    end

  let make_model t coeffs =
    let model =
      Model.make ~basis_size:t.m ~support:(Array.sub t.support 0 t.p) ~coeffs
    in
    match t.fallback_note with
    | None -> model
    | Some note -> Model.add_note model note

  let residual_refresh t coeffs =
    let sub = Array.sub t.support 0 t.p in
    let cols = Array.map (Provider.Cache.column t.cache) sub in
    let new_res = Lstsq.residual_cols cols coeffs t.f in
    Array.blit new_res 0 t.res 0 t.k

  (* Apply one selection (the [Corr_sweep.argmax_abs] result on this
     engine's residual). Returns true when a step was recorded — false
     means the path stopped without moving. *)
  let advance t (best, best_abs) =
    if finished t then false
    else begin
      if t.p = 0 then t.initial_corr <- best_abs;
      if best < 0 || best_abs <= t.tol *. Float.max t.initial_corr 1. then begin
        t.stop <- true;
        false
      end
      else if not (accept t best) then begin
        t.stop <- true;
        false
      end
      else begin
        let coeffs = refit_coeffs t in
        (* Step 7: fresh residual from the re-fitted model, applied over
           the cached support columns. *)
        residual_refresh t coeffs;
        t.coeffs <- coeffs;
        t.steps_rev <-
          {
            index = best;
            correlation = best_abs /. float_of_int t.k;
            residual_norm = Vec.nrm2 t.res;
            model = make_model t coeffs;
          }
          :: t.steps_rev;
        if Vec.nrm2 t.res <= 1e-14 *. Float.max (Vec.nrm2 t.f) 1. then
          t.stop <- true;
        true
      end
    end

  (* Resume: replay checkpointed selections without the O(K·M)
     correlation sweeps, then run one re-fit and residual refresh —
     bitwise the state an uninterrupted run had after the same steps. *)
  let replay t ~scale support =
    if Array.length support > t.max_lambda then
      invalid_arg "Omp.path: checkpoint support exceeds max_lambda";
    t.initial_corr <- scale;
    Array.iter
      (fun j ->
        if t.selected.(j) then
          invalid_arg "Omp.path: duplicate support index in checkpoint";
        if not (accept t j) then
          invalid_arg
            "Omp.path: checkpoint replays a singular step (was it written \
             with ~on_singular:`Fallback?)")
      support;
    if t.p > 0 then begin
      let coeffs = refit_coeffs t in
      residual_refresh t coeffs;
      t.coeffs <- coeffs;
      let rn = Vec.nrm2 t.res in
      t.steps_rev <-
        [
          {
            index = t.support.(t.p - 1);
            correlation = 0.;
            residual_norm = rn;
            model = make_model t coeffs;
          };
        ];
      if rn <= 1e-14 *. Float.max (Vec.nrm2 t.f) 1. then t.stop <- true
    end
end

let path_p ?tol ?pool ?on_singular ?(checkpoint_every = 0) ?on_checkpoint
    ?resume ?(sweep = Corr_sweep.Exact) ?(shards = 1)
    ?(shard_mode = Shard_sweep.Domains) ?recovered src f ~max_lambda =
  if checkpoint_every < 0 then
    invalid_arg "Omp.path: negative checkpoint interval";
  if shards < 1 then invalid_arg "Omp.path: shards must be positive";
  let eng = Engine.create ?tol ?on_singular src f ~max_lambda in
  let k = eng.Engine.k and m = eng.Engine.m in
  let last_ckpt = ref 0 in
  (match resume with
  | None -> ()
  | Some c ->
      let open Serialize.Checkpoint in
      if c.solver <> "omp" then
        invalid_arg
          (Printf.sprintf "Omp.path: checkpoint is for solver %S" c.solver);
      if c.k <> k || c.m <> m then
        invalid_arg
          (Printf.sprintf
             "Omp.path: checkpoint shape %dx%d disagrees with problem %dx%d"
             c.k c.m k m);
      Engine.replay eng ~scale:c.scale c.support);
  last_ckpt := Engine.size eng;
  (* Column-sharded selection engine, created after any resume replay
     so its (incremental) initial sweeps see the resumed residual;
     replayed support columns are re-activated so every shard's Gram
     slab and skip mask match an uninterrupted run's. *)
  let sh =
    if shards > 1 then begin
      let e =
        Shard_sweep.create ?pool ~mode:shard_mode ~shards ~sweep src
          ~r0:(Engine.residual eng)
      in
      Array.iter
        (fun j -> Shard_sweep.activate e j (Engine.column eng j))
        (Engine.support eng);
      Some e
    end
    else None
  in
  Fun.protect ~finally:(fun () ->
      match sh with
      | Some e ->
          (match recovered with
          | Some r -> r := !r + Shard_sweep.recovered e
          | None -> ());
          Shard_sweep.shutdown e
      | None -> ())
  @@ fun () ->
  let sh_incremental =
    match sweep with Corr_sweep.Incremental _ -> true | Corr_sweep.Exact -> false
  in
  let refresh_every =
    match sweep with
    | Corr_sweep.Incremental { refresh } -> refresh
    | Corr_sweep.Exact -> 0
  in
  let since = ref 0 in
  (* Incremental mode: maintain c = Gᵀ·res through cached Gram columns.
     Created after any resume replay so the initial exact sweep sees the
     resumed residual — the same refresh point the uninterrupted run hit
     when it emitted the checkpoint. Replayed support columns are cached
     up front: the first live delta update touches every support
     coefficient, not just the entering one. *)
  let inc =
    match (sweep, sh) with
    | _, Some _ | Corr_sweep.Exact, None -> None
    | Corr_sweep.Incremental { refresh }, None ->
        let ic =
          Corr_sweep.Inc.create ?pool ~refresh src (Engine.residual eng)
        in
        Array.iter
          (fun j -> Corr_sweep.Inc.ensure_gram ic j (Engine.column eng j))
          (Engine.support eng);
        Some ic
  in
  let prev_coeffs = ref (Array.copy (Engine.coeffs eng)) in
  let emit_now () =
    match on_checkpoint with
    | None -> ()
    | Some cb ->
        cb
          {
            Serialize.Checkpoint.solver = "omp";
            k;
            m;
            scale = Engine.scale eng;
            support = Engine.support eng;
          };
        last_ckpt := Engine.size eng;
        (* Checkpoint-aligned exact refresh: a resumed incremental run
           rebuilds c from an exact sweep here, so refreshing now keeps
           the uninterrupted run bitwise equal to any resumed one. *)
        (match inc with
        | None -> ()
        | Some ic -> Corr_sweep.Inc.refresh ic (Engine.residual eng));
        (match sh with
        | Some e when sh_incremental ->
            Shard_sweep.refresh e (Engine.residual eng);
            since := 0
        | _ -> ())
  in
  let emit_checkpoint () =
    if checkpoint_every > 0 && Engine.size eng mod checkpoint_every = 0 then
      emit_now ()
  in
  while not (Engine.finished eng) do
    (* Step 3: inner products of the residual with every basis vector.
       The 1/K factor of eq. (18) is a monotone scaling; the argmax is
       unaffected, so we keep raw dot products. Exact mode sweeps all
       columns (bitwise equal to the sequential scan); incremental mode
       scans the delta-maintained correlation vector. *)
    let pick =
      match (sh, inc) with
      | Some e, _ -> Shard_sweep.select e ~r:(Engine.residual eng)
      | None, None ->
          Corr_sweep.argmax_abs ?pool ~skip:(Engine.skip_mask eng) src
            (Engine.residual eng)
      | None, Some ic ->
          Corr_sweep.Inc.argmax_abs ~skip:(Engine.skip_mask eng) ic
    in
    if Engine.advance eng pick then begin
      (match (sh, inc) with
      | Some e, _ ->
          let sup = Engine.support eng and cur = Engine.coeffs eng in
          let np = Array.length sup in
          let jnew = sup.(np - 1) in
          Shard_sweep.activate e jnew (Engine.column eng jnew);
          if sh_incremental then begin
            let prev = !prev_coeffs in
            let deltas =
              Array.init np (fun q ->
                  ( sup.(q),
                    cur.(q)
                    -. (if q < Array.length prev then prev.(q) else 0.) ))
            in
            Shard_sweep.apply_deltas e deltas;
            prev_coeffs := Array.copy cur;
            incr since;
            if refresh_every > 0 && !since >= refresh_every then begin
              Shard_sweep.refresh e (Engine.residual eng);
              since := 0
            end
          end
      | None, None -> ()
      | None, Some ic ->
          let sup = Engine.support eng and cur = Engine.coeffs eng in
          let np = Array.length sup in
          let jnew = sup.(np - 1) in
          Corr_sweep.Inc.ensure_gram ic jnew (Engine.column eng jnew);
          let prev = !prev_coeffs in
          let deltas =
            Array.init np (fun q ->
                ( sup.(q),
                  cur.(q) -. (if q < Array.length prev then prev.(q) else 0.)
                ))
          in
          Corr_sweep.Inc.apply_deltas ic deltas;
          prev_coeffs := Array.copy cur;
          Corr_sweep.Inc.note_step ic;
          if Corr_sweep.Inc.due ic then
            Corr_sweep.Inc.refresh ic (Engine.residual eng));
      emit_checkpoint ()
    end
  done;
  (* Terminal checkpoint: when lambda is not a multiple of the cadence
     the mod test above skips the final selections, and a resume would
     replay a stale prefix — always leave the completed support. *)
  if Engine.size eng > !last_ckpt then emit_now ();
  Engine.steps eng

let fit_p ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint ?resume
    ?sweep ?shards ?shard_mode ?recovered src f ~lambda =
  let steps =
    path_p ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint ?resume
      ?sweep ?shards ?shard_mode ?recovered src f ~max_lambda:lambda
  in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model

let path ?tol ?pool ?on_singular g f ~max_lambda =
  path_p ?tol ?pool ?on_singular (Provider.dense g) f ~max_lambda

let fit ?tol ?pool ?on_singular g f ~lambda =
  fit_p ?tol ?pool ?on_singular (Provider.dense g) f ~lambda
