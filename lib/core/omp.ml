open Linalg
module Provider = Polybasis.Design.Provider

type step = {
  index : int;
  correlation : float;
  residual_norm : float;
  model : Model.t;
}

let path_p ?(tol = 1e-12) ?pool src f ~max_lambda =
  let k = Provider.rows src and m = Provider.cols src in
  if Array.length f <> k then invalid_arg "Omp.path: response length mismatch";
  if max_lambda <= 0 then invalid_arg "Omp.path: max_lambda must be positive";
  if max_lambda > min k m then
    invalid_arg "Omp.path: max_lambda exceeds min(samples, basis size)";
  let selected = Array.make m false in
  let support = Array.make max_lambda 0 in
  let rhs = Array.make max_lambda 0. in
  (* Gram factor of the selected columns, grown one column per step. *)
  let chol = Cholesky.Grow.create max_lambda in
  (* Active-set columns are touched every remaining iteration (cross
     products, re-fit residual); cache them once materialized — λ
     columns of K floats, never the full matrix. *)
  let cache = Provider.Cache.create src in
  let res = Array.copy f in
  let steps = ref [] in
  let stop = ref false in
  let initial_corr = ref 0. in
  let p = ref 0 in
  while (not !stop) && !p < max_lambda do
    (* Step 3: inner products of the residual with every basis vector.
       The 1/K factor of eq. (18) is a monotone scaling; the argmax is
       unaffected, so we keep raw dot products. The sweep is
       column-parallel and bitwise equal to this sequential scan. *)
    let best, best_abs = Corr_sweep.argmax_abs ?pool ~skip:selected src res in
    if !p = 0 then initial_corr := best_abs;
    if best < 0 || best_abs <= tol *. Float.max !initial_corr 1. then
      stop := true
    else begin
      let j = best in
      (* Steps 4–5: extend the selected set. Cross products against the
         selected columns go through the one shared column-dot kernel
         (cached columns, rows ascending — same bits as the dense
         Mat-based loops this replaced). *)
      let cross =
        Array.init !p (fun q -> Provider.Cache.col_col_dot cache support.(q) j)
      in
      let diag = Provider.Cache.col_col_dot cache j j in
      match Cholesky.Grow.append chol cross diag with
      | exception Cholesky.Not_positive_definite _ ->
          (* Column linearly dependent on the selected set: the LS re-fit
             would be singular. Stop the path here. *)
          stop := true
      | () ->
          support.(!p) <- j;
          selected.(j) <- true;
          rhs.(!p) <- Provider.Cache.col_dot cache j f;
          incr p;
          (* Step 6: re-fit all selected coefficients (eq. (22)). *)
          let coeffs = Cholesky.Grow.solve chol (Array.sub rhs 0 !p) in
          (* Step 7: fresh residual from the re-fitted model, applied
             over the cached support columns. *)
          let sub = Array.sub support 0 !p in
          let cols = Array.map (Provider.Cache.column cache) sub in
          let new_res = Lstsq.residual_cols cols coeffs f in
          Array.blit new_res 0 res 0 k;
          let model =
            Model.make ~basis_size:m ~support:(Array.copy sub) ~coeffs
          in
          steps :=
            {
              index = j;
              correlation = best_abs /. float_of_int k;
              residual_norm = Vec.nrm2 res;
              model;
            }
            :: !steps;
          if Vec.nrm2 res <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
    end
  done;
  Array.of_list (List.rev !steps)

let fit_p ?tol ?pool src f ~lambda =
  let steps = path_p ?tol ?pool src f ~max_lambda:lambda in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model

let path ?tol ?pool g f ~max_lambda =
  path_p ?tol ?pool (Provider.dense g) f ~max_lambda

let fit ?tol ?pool g f ~lambda = fit_p ?tol ?pool (Provider.dense g) f ~lambda
