open Linalg
module Provider = Polybasis.Design.Provider

type step = {
  index : int;
  correlation : float;
  residual_norm : float;
  model : Model.t;
}

let path_p ?(tol = 1e-12) ?pool ?(on_singular = `Stop) ?(checkpoint_every = 0)
    ?on_checkpoint ?resume src f ~max_lambda =
  let k = Provider.rows src and m = Provider.cols src in
  if Array.length f <> k then invalid_arg "Omp.path: response length mismatch";
  if max_lambda <= 0 then invalid_arg "Omp.path: max_lambda must be positive";
  if max_lambda > min k m then
    invalid_arg "Omp.path: max_lambda exceeds min(samples, basis size)";
  if checkpoint_every < 0 then
    invalid_arg "Omp.path: negative checkpoint interval";
  let selected = Array.make m false in
  let support = Array.make (max max_lambda 1) 0 in
  let rhs = Array.make (max max_lambda 1) 0. in
  (* Gram factor of the selected columns, grown one column per step. *)
  let chol = Cholesky.Grow.create (max max_lambda 1) in
  (* Active-set columns are touched every remaining iteration (cross
     products, re-fit residual); cache them once materialized — λ
     columns of K floats, never the full matrix. *)
  let cache = Provider.Cache.create src in
  let res = Array.copy f in
  let steps = ref [] in
  let stop = ref false in
  let initial_corr = ref 0. in
  let p = ref 0 in
  (* Once the Gram factor went non-SPD and `Fallback was requested, the
     incremental factor is abandoned and every re-fit runs the
     Refit ladder over the cached active columns; the rung that fired is
     recorded in the step's model notes. Clean paths never enter this
     mode, so their bits are untouched. *)
  let degraded = ref false in
  let fallback_note = ref None in
  (* Accept column [j]: extend the Gram factor (or enter degraded mode),
     record support and right-hand side. Returns false when the path
     must stop instead ([`Stop] on a dependent column). Shared by live
     selection and checkpoint replay so both degrade identically. *)
  let accept j =
    let ok =
      if !degraded then true
      else begin
        let cross =
          Array.init !p (fun q -> Provider.Cache.col_col_dot cache support.(q) j)
        in
        let diag = Provider.Cache.col_col_dot cache j j in
        match Cholesky.Grow.append chol cross diag with
        | () -> true
        | exception Cholesky.Not_positive_definite _ -> (
            (* Column linearly dependent on the selected set: the plain
               LS re-fit would be singular. *)
            match on_singular with
            | `Stop -> false
            | `Fallback ->
                degraded := true;
                true)
      end
    in
    if ok then begin
      support.(!p) <- j;
      selected.(j) <- true;
      rhs.(!p) <- Provider.Cache.col_dot cache j f;
      incr p
    end;
    ok
  in
  (* Step 6: re-fit all selected coefficients (eq. (22)) — through the
     incremental factor normally, through the fallback ladder once
     degraded. *)
  let refit_coeffs () =
    if not !degraded then Cholesky.Grow.solve chol (Array.sub rhs 0 !p)
    else begin
      let cols =
        Array.map (Provider.Cache.column cache) (Array.sub support 0 !p)
      in
      let coeffs, fb = Refit.solve_cols cols f in
      fallback_note := Refit.note fb;
      coeffs
    end
  in
  let make_model coeffs =
    let model =
      Model.make ~basis_size:m ~support:(Array.sub support 0 !p) ~coeffs
    in
    match !fallback_note with
    | None -> model
    | Some note -> Model.add_note model note
  in
  let residual_refresh coeffs =
    let sub = Array.sub support 0 !p in
    let cols = Array.map (Provider.Cache.column cache) sub in
    let new_res = Lstsq.residual_cols cols coeffs f in
    Array.blit new_res 0 res 0 k
  in
  let last_ckpt = ref 0 in
  let emit_now () =
    match on_checkpoint with
    | None -> ()
    | Some cb ->
        cb
          {
            Serialize.Checkpoint.solver = "omp";
            k;
            m;
            scale = !initial_corr;
            support = Array.sub support 0 !p;
          };
        last_ckpt := !p
  in
  let emit_checkpoint () =
    if checkpoint_every > 0 && !p mod checkpoint_every = 0 then emit_now ()
  in
  (* Resume: replay the checkpointed selections without the O(K·M)
     correlation sweeps, then run one re-fit and residual refresh —
     bitwise the state an uninterrupted run had after the same steps. *)
  (match resume with
  | None -> ()
  | Some c ->
      let open Serialize.Checkpoint in
      if c.solver <> "omp" then
        invalid_arg
          (Printf.sprintf "Omp.path: checkpoint is for solver %S" c.solver);
      if c.k <> k || c.m <> m then
        invalid_arg
          (Printf.sprintf
             "Omp.path: checkpoint shape %dx%d disagrees with problem %dx%d"
             c.k c.m k m);
      if Array.length c.support > max_lambda then
        invalid_arg "Omp.path: checkpoint support exceeds max_lambda";
      initial_corr := c.scale;
      Array.iter
        (fun j ->
          if selected.(j) then
            invalid_arg "Omp.path: duplicate support index in checkpoint";
          if not (accept j) then
            invalid_arg
              "Omp.path: checkpoint replays a singular step (was it written \
               with ~on_singular:`Fallback?)")
        c.support;
      if !p > 0 then begin
        let coeffs = refit_coeffs () in
        residual_refresh coeffs;
        let rn = Vec.nrm2 res in
        steps :=
          [
            {
              index = support.(!p - 1);
              correlation = 0.;
              residual_norm = rn;
              model = make_model coeffs;
            };
          ];
        if rn <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
      end);
  last_ckpt := !p;
  while (not !stop) && !p < max_lambda do
    (* Step 3: inner products of the residual with every basis vector.
       The 1/K factor of eq. (18) is a monotone scaling; the argmax is
       unaffected, so we keep raw dot products. The sweep is
       column-parallel and bitwise equal to this sequential scan. *)
    let best, best_abs = Corr_sweep.argmax_abs ?pool ~skip:selected src res in
    if !p = 0 then initial_corr := best_abs;
    if best < 0 || best_abs <= tol *. Float.max !initial_corr 1. then
      stop := true
    else if not (accept best) then stop := true
    else begin
      let coeffs = refit_coeffs () in
      (* Step 7: fresh residual from the re-fitted model, applied over
         the cached support columns. *)
      residual_refresh coeffs;
      steps :=
        {
          index = best;
          correlation = best_abs /. float_of_int k;
          residual_norm = Vec.nrm2 res;
          model = make_model coeffs;
        }
        :: !steps;
      emit_checkpoint ();
      if Vec.nrm2 res <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
    end
  done;
  (* Terminal checkpoint: when lambda is not a multiple of the cadence
     the mod test above skips the final selections, and a resume would
     replay a stale prefix — always leave the completed support. *)
  if !p > !last_ckpt then emit_now ();
  Array.of_list (List.rev !steps)

let fit_p ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint ?resume src f
    ~lambda =
  let steps =
    path_p ?tol ?pool ?on_singular ?checkpoint_every ?on_checkpoint ?resume src
      f ~max_lambda:lambda
  in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model

let path ?tol ?pool ?on_singular g f ~max_lambda =
  path_p ?tol ?pool ?on_singular (Provider.dense g) f ~max_lambda

let fit ?tol ?pool ?on_singular g f ~lambda =
  fit_p ?tol ?pool ?on_singular (Provider.dense g) f ~lambda
