(** Adaptive sample allocation: grow the training set until the
    cross-validated model stops improving.

    The paper fixes the training-set size per experiment; in practice a
    designer wants the {e smallest} simulation budget that reaches
    stable accuracy, because every extra sample is a Spectre run. This
    driver doubles the training set, refits with cross-validated
    sparsity, and stops when the relative improvement of the CV error
    falls below a tolerance for [patience] consecutive rounds — an
    automated version of reading Fig. 4's flattening curves. *)

type round = {
  samples : int;  (** training-set size this round *)
  cv_error : float;  (** cross-validated error at the chosen λ *)
  lambda : int;
  model : Model.t;
}

type result = {
  rounds : round array;  (** one entry per refit, increasing sample count *)
  final : Model.t;
  converged : bool;  (** false when [max_samples] was exhausted first *)
}

val run :
  ?initial:int -> ?growth:float -> ?tol:float -> ?patience:int ->
  ?max_lambda:int -> ?folds:int ->
  max_samples:int ->
  sample:(int -> Linalg.Mat.t * Linalg.Vec.t) ->
  Randkit.Prng.t -> result
(** [run ~max_samples ~sample rng] drives the loop. [sample k] must
    return the design matrix and responses of the {e first} [k]
    training points (prefixes of one growing sample stream, so earlier
    simulations are reused — the caller typically wraps
    [Mat.select_rows] over a lazily-extended dataset).

    Defaults: [initial = 50], [growth = 2.0] (doubling), [tol = 0.05]
    (5% relative improvement), [patience = 1], [max_lambda = 100],
    [folds = 4].
    @raise Invalid_argument on non-positive sizes, growth ≤ 1, or
    [initial > max_samples]. *)
