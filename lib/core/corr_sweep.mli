(** The greedy correlation step shared by the sparse solvers.

    Every iteration of OMP (Algorithm 1, Step 3), STAR and LAR scans the
    inner products of the current residual with all [M] dictionary
    columns — the [Gᵀ·r] sweep that dominates the paper's fitting-cost
    analysis at O(K·M) per iteration. This module evaluates that sweep
    column-chunk-parallel over a {!Parallel.Pool}:

    - each chunk owns a contiguous column block and walks the row-major
      design matrix row-by-row (the cache-friendly order), accumulating
      its block of [Gᵀ·r] partial sums locally — no atomics, no shared
      accumulation;
    - each column's dot product is accumulated over rows in ascending
      order exactly as the sequential [Mat.col_dot], so every entry of
      the result is {e bitwise identical} to the sequential sweep for
      every domain count;
    - the argmax combine keeps the strictly larger magnitude and, on
      exact ties, the lower column index — the same winner a sequential
      first-strictly-greater scan selects.

    Passing no [?pool] uses {!Parallel.Pool.default}. *)

val gram_tr :
  ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [gram_tr g r] is the length-[M] vector [Gᵀ·r]. Bitwise identical to
    [Array.init m (fun j -> Mat.col_dot g j r)] for every domain count.
    @raise Invalid_argument on a length mismatch. *)

val argmax_abs :
  ?pool:Parallel.Pool.t ->
  skip:bool array ->
  Linalg.Mat.t ->
  Linalg.Vec.t ->
  int * float
(** [argmax_abs ~skip g r] is [(j*, |⟨G_{j*}, r⟩|)] over the columns
    with [skip.(j) = false] — the eq. (18) selection (the paper's 1/K
    factor is a monotone scaling and is left to the caller). Returns
    [(-1, 0.)] when every column is skipped or all correlations are
    zero. Deterministic for every domain count (see above).
    @raise Invalid_argument when [skip] is not of length [M] or [r] not
    of length [K]. *)
