(** The greedy correlation step shared by the sparse solvers.

    Every iteration of OMP (Algorithm 1, Step 3), STAR and LAR scans the
    inner products of the current residual with all [M] dictionary
    columns — the [Gᵀ·r] sweep that dominates the paper's fitting-cost
    analysis at O(K·M) per iteration. The sweep consumes a
    {!Polybasis.Design.Provider}, so the same solver code runs against a
    materialized matrix or the matrix-free Hermite-table generator:

    - each chunk owns a contiguous column block; dense providers walk
      the row-major matrix row-by-row (the cache-friendly order),
      streamed providers fuse column generation into the dot product —
      no atomics, no shared accumulation either way;
    - each column's dot product is accumulated over rows in ascending
      order exactly as the sequential [Mat.col_dot], so every entry of
      the result is {e bitwise identical} to the sequential dense sweep
      for every domain count and either provider form;
    - the argmax combine keeps the strictly larger magnitude and, on
      exact ties, the lower column index — the same winner a sequential
      first-strictly-greater scan selects.

    Two cost levers beyond the exact sweep (this PR's engine):

    - {b Incremental mode} ({!sweep} = [Incremental]): cache
      [v_j = Gᵀ·g_j] once when column j enters the active set, then
      update [c' = c − Σ_{j∈A} Δβ_j·v_j] at O(p·M) per step instead of
      O(K·M) (Efron et al. 2004, §"computations"). Numerically
      different from the exact sweep (float drift, bounded by the
      [refresh] cadence of exact re-sweeps), hence opt-in — solvers
      default to [Exact].
    - {b Fused multi-residual sweeps} ({!gram_tr_multi} /
      {!argmax_abs_multi}): generate each column once and dot it
      against Q fold residuals — bitwise identical to Q independent
      sweeps; this is how fused CV pays streamed column generation once
      per step instead of once per fold.

    Passing no [?pool] uses {!Parallel.Pool.default}. *)

type sweep =
  | Exact  (** full O(K·M) sweep every step — bitwise reference mode *)
  | Incremental of { refresh : int }
      (** Gram-cached delta updates, with an exact full-sweep refresh
          every [refresh] movement steps ([0] = never refresh on
          cadence; an exact refresh still happens at every checkpoint
          emission so resumed runs stay bitwise equal to uninterrupted
          ones). *)

val default_refresh : int
(** Default refresh cadence (16 steps) for incremental mode. *)

val incremental : ?refresh:int -> unit -> sweep
(** [incremental ()] is [Incremental { refresh = default_refresh }]. *)

val sweep_of_string : string -> sweep option
(** Parses ["exact"] / ["incremental"] (default cadence). *)

val sweep_to_string : sweep -> string

val gram_tr :
  ?pool:Parallel.Pool.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** [gram_tr src r] is the length-[M] vector [Gᵀ·r]. Bitwise identical
    to [Array.init m (fun j -> Mat.col_dot g j r)] on the dense form for
    every domain count.
    @raise Invalid_argument on a length mismatch. *)

val argmax_abs :
  ?pool:Parallel.Pool.t ->
  skip:bool array ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  int * float
(** [argmax_abs ~skip src r] is [(j*, |⟨G_{j*}, r⟩|)] over the columns
    with [skip.(j) = false] — the eq. (18) selection (the paper's 1/K
    factor is a monotone scaling and is left to the caller). Returns
    [(-1, 0.)] when every column is skipped or all correlations are
    zero. Deterministic for every domain count (see above).
    @raise Invalid_argument when [skip] is not of length [M] or [r] not
    of length [K]. *)

val gram_tr_multi :
  ?pool:Parallel.Pool.t ->
  Polybasis.Design.Provider.t ->
  rows:int array array ->
  Linalg.Vec.t array ->
  Linalg.Vec.t array
(** Re-export of {!Polybasis.Design.Provider.gram_tr_multi}: per-fold
    [Gᵀ·r] with each column generated once — bitwise identical to the Q
    independent per-fold sweeps. *)

val argmax_abs_multi :
  ?pool:Parallel.Pool.t ->
  skips:bool array array ->
  Polybasis.Design.Provider.t ->
  rows:int array array ->
  Linalg.Vec.t array ->
  (int * float) array
(** Re-export of {!Polybasis.Design.Provider.argmax_abs_multi}: the
    fused selection kernel of the lockstep CV driver in {!Select}. *)

(** The Gram-cached incremental correlation state.

    Maintains the correlation vector [c = Gᵀ·r] across solver steps via
    cached Gram columns instead of full sweeps. Cost model per step:
    O(K·M) once per {e entering} column ({!ensure_gram}) plus O(p·M)
    for the delta update, against O(K·M) for every exact sweep — the
    win grows with K/p (the LAR path additionally replaces its second
    per-step sweep, [Gᵀ·u], with the O(p·M) {!combination}). Memory:
    O(M) per cached active column, O(M·p) total.

    Not bitwise: each update introduces rounding the exact sweep does
    not; the [refresh] cadence (plus a forced refresh at every
    checkpoint emission) bounds the drift, and the test suite validates
    ≤1e-10 relative agreement of the resulting models. *)
module Inc : sig
  type t

  val create :
    ?pool:Parallel.Pool.t ->
    refresh:int ->
    Polybasis.Design.Provider.t ->
    Linalg.Vec.t ->
    t
  (** [create ~refresh src r] performs one exact sweep of [r] and
      starts the maintained state. [refresh = 0] disables cadence-based
      refreshes. @raise Invalid_argument on negative [refresh]. *)

  val correlations : t -> Linalg.Vec.t
  (** The maintained [c] — a live buffer, mutated by the update calls;
      copy before storing. *)

  val cached : t -> int
  (** Number of cached Gram columns (= memory in units of M floats). *)

  val ensure_gram : t -> int -> Linalg.Vec.t -> unit
  (** [ensure_gram t j col] caches [v_j = Gᵀ·col] (one O(K·M) sweep) if
      column [j] has no cached Gram column yet. [col] must be the
      materialized column [j] — the solvers pass their active-set cache
      entry, so no extra column generation happens. *)

  val apply_deltas : t -> (int * float) array -> unit
  (** [apply_deltas t deltas] applies [c ← c − Σ Δβ_j·v_j] for
      [(j, Δβ_j)] pairs, O(p·M). Every listed column must have been
      {!ensure_gram}'d. *)

  val combination : t -> (int * float) array -> Linalg.Vec.t
  (** [combination t terms] is [Σ w_j·v_j] for [(j, w_j)] pairs — the
      cached image [Gᵀ·u] of a direction [u = Σ w_j·g_j], O(p·M). *)

  val retreat : t -> float -> Linalg.Vec.t -> unit
  (** [retreat t γ a] applies [c ← c − γ·a] for a precomputed direction
      image [a] (e.g. the {!combination} result), O(M). *)

  val note_step : t -> unit
  (** Count one completed movement step toward the refresh cadence. *)

  val due : t -> bool
  (** Whether the cadence calls for an exact refresh now. *)

  val refresh : t -> Linalg.Vec.t -> unit
  (** [refresh t r] replaces [c] by an exact sweep of [r] and resets
      the cadence counter. Solvers call this on cadence {e and} at
      every checkpoint emission, so a resumed run (which starts from an
      exact sweep at the checkpoint) stays bitwise equal to the
      uninterrupted run. *)

  val argmax_abs : skip:bool array -> t -> int * float
  (** Selection over the maintained vector — sequential O(M), same
      strict [>] / lowest-index tie rule as the exact {!argmax_abs}. *)
end
