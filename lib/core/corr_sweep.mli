(** The greedy correlation step shared by the sparse solvers.

    Every iteration of OMP (Algorithm 1, Step 3), STAR and LAR scans the
    inner products of the current residual with all [M] dictionary
    columns — the [Gᵀ·r] sweep that dominates the paper's fitting-cost
    analysis at O(K·M) per iteration. The sweep consumes a
    {!Polybasis.Design.Provider}, so the same solver code runs against a
    materialized matrix or the matrix-free Hermite-table generator:

    - each chunk owns a contiguous column block; dense providers walk
      the row-major matrix row-by-row (the cache-friendly order),
      streamed providers fuse column generation into the dot product —
      no atomics, no shared accumulation either way;
    - each column's dot product is accumulated over rows in ascending
      order exactly as the sequential [Mat.col_dot], so every entry of
      the result is {e bitwise identical} to the sequential dense sweep
      for every domain count and either provider form;
    - the argmax combine keeps the strictly larger magnitude and, on
      exact ties, the lower column index — the same winner a sequential
      first-strictly-greater scan selects.

    Passing no [?pool] uses {!Parallel.Pool.default}. *)

val gram_tr :
  ?pool:Parallel.Pool.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** [gram_tr src r] is the length-[M] vector [Gᵀ·r]. Bitwise identical
    to [Array.init m (fun j -> Mat.col_dot g j r)] on the dense form for
    every domain count.
    @raise Invalid_argument on a length mismatch. *)

val argmax_abs :
  ?pool:Parallel.Pool.t ->
  skip:bool array ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  int * float
(** [argmax_abs ~skip src r] is [(j*, |⟨G_{j*}, r⟩|)] over the columns
    with [skip.(j) = false] — the eq. (18) selection (the paper's 1/K
    factor is a monotone scaling and is left to the caller). Returns
    [(-1, 0.)] when every column is skipped or all correlations are
    zero. Deterministic for every domain count (see above).
    @raise Invalid_argument when [skip] is not of length [M] or [r] not
    of length [K]. *)
