(** Cross-validated choice of the sparsity level λ (Section IV-C).

    For each fold, the solver's whole path (λ = 1 … max_lambda) is fit
    on the training groups and scored on the held-out group, giving the
    per-run error {e function} ε_q(λ); the averaged curve ε(λ) is
    minimized over λ and the winning λ is refit on the full data — the
    exact procedure of Fig. 2 and the surrounding text.

    The [_p] variants consume a {!Polybasis.Design.Provider}, so the
    whole CV loop runs matrix-free: fold providers are row-subset
    rebuilds (no K×M gather), held-out scoring streams only the support
    columns. Dense and matrix-free runs select the same λ and model,
    bit for bit.

    {2 Parallelism and determinism}

    The Q fold fits are independent and run fold-parallel over [?pool]
    (default: {!Parallel.Pool.default}); the underlying solvers also
    parallelize their own Gᵀ·r correlation sweeps over the same pool.
    Each fold receives its own PRNG stream, split from the master
    generator {e in fold order before any fold runs}
    ({!Randkit.Prng.split_n}), and the fold curves are averaged in fold
    order after all folds complete. The selected λ, the curve and the
    refit model are therefore bitwise identical to a sequential run for
    a fixed seed, at {e every} domain count. *)

type rule =
  | Min_error  (** λ at the minimum of ε(λ) — the paper's choice *)
  | One_se
      (** the smallest λ whose ε(λ) is within one fold-to-fold standard
          error of the minimum — the classic parsimony-biased variant
          (Hastie et al. §7.10); picks visibly sparser models when the
          CV curve has a flat valley *)

type result = {
  model : Model.t;  (** refit on all data at the chosen λ *)
  lambda : int;  (** chosen sparsity level (1-based) *)
  curve : float array;  (** ε(λ) for λ = 1 … max_lambda *)
}

val omp_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** Default [folds = 4] (the paper's Fig. 2 setting) and
    [rule = Min_error]. [on_singular] is forwarded to {!Omp.path_p} for
    every fold fit and the final refit. [checkpoint]/[resume] as in
    {!generic_p}.

    [sweep] (default [Exact]) is forwarded to the fold fits and the
    final refit. [fused] controls the {e fused lockstep} fold driver:
    all fold solvers advance in lockstep, each round computing every
    live fold's selection with one {!Corr_sweep.argmax_abs_multi}
    sweep, so streamed column generation is paid once per round instead
    of once per fold — with curves, λ and model bitwise identical to
    the fold-at-a-time driver. Default: on for streamed providers with
    the exact sweep, off otherwise; an [Incremental] sweep forces it
    off (per-fold incremental state cannot share one sweep).

    [shards]/[shard_mode]/[recovered] (see {!Omp.path_p}) are forwarded
    to every fold fit and the final refit; [shards > 1] also forces the
    fused driver off (the sharded engine owns the selection sweep of a
    single solver run, while fused CV shares one sweep across folds).
    The selected λ, curve and model stay bitwise identical to the
    unsharded run. *)

val star_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** [sweep]/[shards]/[shard_mode]/[recovered]/[fused] as in {!omp_p}. *)

val lars_p :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?checkpoint:string -> ?resume:bool ->
  Randkit.Prng.t -> max_lambda:int -> Polybasis.Design.Provider.t ->
  Linalg.Vec.t -> result
(** [on_singular] is forwarded to {!Lars.path_p} for every fold fit and
    the final refit. [checkpoint]/[resume] as in {!generic_p}. [sweep]
    and [shards]/[shard_mode]/[recovered] as in {!omp_p} (no fused
    driver for the LAR walk — its per-step state is not a single argmax
    selection). *)

val generic_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int ->
  path_models:
    (rng:Randkit.Prng.t -> Polybasis.Design.Provider.t -> Linalg.Vec.t ->
     max_lambda:int -> Model.t array) ->
  Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** The underlying driver: [path_models] maps a training design/response
    to the per-λ models (an array shorter than [max_lambda] is padded by
    repeating its last model — an early-stopped path keeps its final
    error for larger λ). Exposed for user-supplied solvers.

    [path_models] may be called concurrently from several domains (one
    per fold) and must not share mutable state across calls; the [rng]
    it receives is the fold's own deterministic stream (the final refit
    gets one more dedicated stream), so stochastic solvers stay
    reproducible under fold-parallel execution.

    With [checkpoint = base], every finished fold writes a
    {!Serialize.Checkpoint.Cv} file at [base.fold<q>] (atomic rename).
    With [resume = true] (requires [checkpoint]), matching fold files
    are loaded back and their fits skipped, so a killed sweep resumes at
    the first unfinished fold; per-fold PRNG streams are split before
    any fold runs either way, and loaded curves round-trip at full
    precision, so the selected λ, curve and refit model are bitwise
    identical to an uninterrupted run at every domain count. A fold file
    whose shape or fold-plan digest disagrees with the sweep (different
    seed, data size, fold count or λ grid) raises [Invalid_argument]
    rather than polluting the average.
    @raise Invalid_argument if a fold produces an empty path. *)

val omp :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Randkit.Prng.t ->
  max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result
(** {!omp_p} over [Provider.dense g]. *)

val star :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t -> Randkit.Prng.t ->
  max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result

val lars :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  Randkit.Prng.t -> max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result

val generic :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t -> Randkit.Prng.t ->
  max_lambda:int ->
  path_models:
    (rng:Randkit.Prng.t -> Linalg.Mat.t -> Linalg.Vec.t -> max_lambda:int ->
     Model.t array) ->
  Linalg.Mat.t -> Linalg.Vec.t -> result
(** {!generic_p} over [Provider.dense g]; [path_models] receives each
    fold's materialized training matrix (free for a dense provider). *)
