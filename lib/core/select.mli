(** Cross-validated choice of the sparsity level λ (Section IV-C).

    For each fold, the solver's whole path (λ = 1 … max_lambda) is fit
    on the training groups and scored on the held-out group, giving the
    per-run error {e function} ε_q(λ); the averaged curve ε(λ) is
    minimized over λ and the winning λ is refit on the full data — the
    exact procedure of Fig. 2 and the surrounding text.

    The [_p] variants consume a {!Polybasis.Design.Provider}, so the
    whole CV loop runs matrix-free: fold providers are row-subset
    rebuilds (no K×M gather), held-out scoring streams only the support
    columns. Dense and matrix-free runs select the same λ and model,
    bit for bit.

    {2 Parallelism and determinism}

    The Q fold fits are independent and run fold-parallel over [?pool]
    (default: {!Parallel.Pool.default}); the underlying solvers also
    parallelize their own Gᵀ·r correlation sweeps over the same pool.
    Each fold receives its own PRNG stream, split from the master
    generator {e in fold order before any fold runs}
    ({!Randkit.Prng.split_n}), and the fold curves are averaged in fold
    order after all folds complete. The selected λ, the curve and the
    refit model are therefore bitwise identical to a sequential run for
    a fixed seed, at {e every} domain count. *)

type rule =
  | Min_error  (** λ at the minimum of ε(λ) — the paper's choice *)
  | One_se
      (** the smallest λ whose ε(λ) is within one fold-to-fold standard
          error of the minimum — the classic parsimony-biased variant
          (Hastie et al. §7.10); picks visibly sparser models when the
          CV curve has a flat valley *)

type result = {
  model : Model.t;  (** refit on all data at the chosen λ *)
  lambda : int;  (** chosen sparsity level (1-based) *)
  curve : float array;  (** ε(λ) for λ = 1 … max_lambda *)
}

exception Conflict of string
(** An explicit driver request that cannot be honored — today, an
    explicit [~fused:true] together with [shards > 1] (the sharded
    engine owns each solver run's selection sweep, while fused CV
    shares one sweep across folds). Auto mode ([?fused] unset) resolves
    the same combination silently in favor of the sharded engine; only
    an explicit, contradictory flag raises. {!Robust.Error.of_exn}
    classifies it as a [Config] error (exit-2 [rsm: config:] line in
    the CLI). *)

val omp_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** Default [folds = 4] (the paper's Fig. 2 setting) and
    [rule = Min_error]. [on_singular] is forwarded to {!Omp.path_p} for
    every fold fit and the final refit. [checkpoint]/[resume] as in
    {!generic_p}.

    [sweep] (default [Exact]) is forwarded to the fold fits and the
    final refit. [fused] controls the {e fused lockstep} fold driver:
    all fold solvers advance in lockstep, each round computing every
    live fold's selection with one {!Corr_sweep.argmax_abs_multi}
    sweep, so streamed column generation is paid once per round instead
    of once per fold — with curves, λ and model bitwise identical to
    the fold-at-a-time driver. Default: on for streamed providers with
    the exact sweep, off otherwise; an [Incremental] sweep forces it
    off (per-fold incremental state cannot share one sweep).

    [shards]/[shard_mode]/[recovered] (see {!Omp.path_p}) are forwarded
    to every fold fit and the final refit; [shards > 1] forces the
    fused driver off in auto mode (the sharded engine owns the
    selection sweep of a single solver run, while fused CV shares one
    sweep across folds), and an {e explicit} [~fused:true] together
    with [shards > 1] raises {!Conflict} rather than silently ignoring
    the flag. The selected λ, curve and model stay bitwise identical to
    the unsharded run. *)

val star_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** [sweep]/[shards]/[shard_mode]/[recovered]/[fused] as in {!omp_p}. *)

val lars_p :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?checkpoint:string -> ?resume:bool ->
  Randkit.Prng.t -> max_lambda:int -> Polybasis.Design.Provider.t ->
  Linalg.Vec.t -> result
(** [on_singular] is forwarded to {!Lars.path_p} for every fold fit and
    the final refit. [checkpoint]/[resume] as in {!generic_p}. [sweep],
    [shards]/[shard_mode]/[recovered] and [fused] as in {!omp_p}: the
    fused fold driver runs each fold's walk on a {!Lars.Engine} and
    serves both of its per-step sweeps from one
    {!Corr_sweep.gram_tr_multi} pass per lockstep round — curves, λ and
    model bitwise identical to the fold-at-a-time driver. *)

val generic_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int ->
  path_models:
    (rng:Randkit.Prng.t -> Polybasis.Design.Provider.t -> Linalg.Vec.t ->
     max_lambda:int -> Model.t array) ->
  Polybasis.Design.Provider.t -> Linalg.Vec.t -> result
(** The underlying driver: [path_models] maps a training design/response
    to the per-λ models (an array shorter than [max_lambda] is padded by
    repeating its last model — an early-stopped path keeps its final
    error for larger λ). Exposed for user-supplied solvers.

    [path_models] may be called concurrently from several domains (one
    per fold) and must not share mutable state across calls; the [rng]
    it receives is the fold's own deterministic stream (the final refit
    gets one more dedicated stream), so stochastic solvers stay
    reproducible under fold-parallel execution.

    With [checkpoint = base], every finished fold writes a
    {!Serialize.Checkpoint.Cv} file at [base.fold<q>] (atomic rename).
    With [resume = true] (requires [checkpoint]), matching fold files
    are loaded back and their fits skipped, so a killed sweep resumes at
    the first unfinished fold; per-fold PRNG streams are split before
    any fold runs either way, and loaded curves round-trip at full
    precision, so the selected λ, curve and refit model are bitwise
    identical to an uninterrupted run at every domain count. A fold file
    whose shape or fold-plan digest disagrees with the sweep (different
    seed, data size, fold count or λ grid) raises [Invalid_argument]
    rather than polluting the average.
    @raise Invalid_argument if a fold produces an empty path. *)

(** {2 Multi-output selection}

    R performance metrics of one circuit share the design matrix; the
    [_multi_p] drivers share everything else too: one fold plan, one
    fused lockstep grid of R×Q fold solvers whose greedy steps are all
    served by a single multi-residual sweep per round (each streamed
    column generated {e once} per step for every output and fold), and
    R per-output refits. Output [r]'s result — λ, curve, model — is
    bitwise identical to the corresponding single-output [_p] call on
    [fs.(r)] with a {!Randkit.Prng.copy} of the same generator. *)

val resolve_fused_multi :
  sweep:Corr_sweep.sweep option ->
  fused:bool option ->
  shards:int option ->
  bool
(** Whether the fused multi-output grid driver applies: requires the
    exact sweep and no sharding; defaults {e on} whenever legal (the
    grid amortizes every sweep across R×Q solvers, dense providers
    included). An explicit [fused = Some true] under [shards > 1]
    raises {!Conflict}; [Some false] always resolves to per-output
    fitting. Exposed for {!Solver.fit_multi_p}'s driver choice. *)

val omp_multi_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t array ->
  result array
(** Fused multi-output OMP selection, one {!result} per response in
    order. Exact sweep, unsharded (the caller chooses per-output
    fitting otherwise — see {!resolve_fused_multi}).

    [checkpoint]/[resume]: with [checkpoint = base], the grid writes a
    {!Serialize.Checkpoint.Multi} manifest at [base.multi] and each
    finished (output, fold) cell as an ordinary Cv fold file at
    [base.out<r>.fold<q>]; with [resume], matching cell files are
    loaded and their fits skipped — bitwise identical to an
    uninterrupted run. A manifest or cell file disagreeing with the
    grid shape or fold plan raises [Invalid_argument]. The per-output
    bases are exactly the per-output checkpoint paths the non-fused
    driver uses, so a run interrupted in one mode can resume in the
    other. *)

val star_multi_p :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t array ->
  result array
(** As {!omp_multi_p} for STAR. *)

val lars_multi_p :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint:string -> ?resume:bool -> Randkit.Prng.t ->
  max_lambda:int -> Polybasis.Design.Provider.t -> Linalg.Vec.t array ->
  result array
(** As {!omp_multi_p} for the LAR/lasso walk: every fold×output walk
    runs on a {!Lars.Engine}, and each lockstep round serves all live
    walks' sweeps — correlation and step-length phases mixed freely —
    from one {!Corr_sweep.gram_tr_multi} pass. *)

val omp :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Randkit.Prng.t ->
  max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result
(** {!omp_p} over [Provider.dense g]. *)

val star :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t -> Randkit.Prng.t ->
  max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result

val lars :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  Randkit.Prng.t -> max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result

val generic :
  ?folds:int -> ?rule:rule -> ?pool:Parallel.Pool.t -> Randkit.Prng.t ->
  max_lambda:int ->
  path_models:
    (rng:Randkit.Prng.t -> Linalg.Mat.t -> Linalg.Vec.t -> max_lambda:int ->
     Model.t array) ->
  Linalg.Mat.t -> Linalg.Vec.t -> result
(** {!generic_p} over [Provider.dense g]; [path_models] receives each
    fold's materialized training matrix (free for a dense provider). *)
