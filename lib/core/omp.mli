(** Orthogonal matching pursuit — Algorithm 1 of the paper.

    Given the underdetermined system [G·α = F], OMP iteratively selects
    the basis vector most correlated with the current residual
    (eq. (18)), re-solves the least-squares coefficients of {e all}
    selected vectors (Step 6, eq. (22)), and recomputes the residual
    (Step 7). Unselected coefficients are exactly zero (Step 9).

    The re-fit is done incrementally: the Cholesky factor of the
    selected-column Gram matrix grows by one row per iteration
    ([Linalg.Cholesky.Grow]), so iteration [p] costs
    O(K·M) for the correlation scan plus O(K·p + p²) for the re-fit —
    the correlation scan dominates, exactly as in the paper's complexity
    discussion.

    The solver consumes a {!Polybasis.Design.Provider} ([_p] variants),
    so it runs unchanged against a materialized matrix or the
    matrix-free Hermite-table generator — bitwise-identical paths either
    way. Active-set columns (cross products, re-fit residuals) are
    materialized once into a per-fit column cache: O(K·λ) extra memory,
    never O(K·M). *)

type step = {
  index : int;  (** basis selected at this iteration *)
  correlation : float;  (** |ξ| that won the selection *)
  residual_norm : float;  (** ‖Res‖₂ after the re-fit *)
  model : Model.t;  (** model after this iteration *)
}

(** The per-step OMP state machine behind {!path_p}, exposed for the
    fused lockstep CV driver in {!Select}: create one engine per fold,
    compute all live folds' selections with one
    {!Corr_sweep.argmax_abs_multi} call, feed each to {!Engine.advance}.
    Driving an engine with the selections {!Corr_sweep.argmax_abs}
    produces on its own residual replays the monolithic loop bit for
    bit, so fused CV is bitwise identical to fold-at-a-time CV. *)
module Engine : sig
  type t

  val create :
    ?tol:float ->
    ?on_singular:[ `Stop | `Fallback ] ->
    Polybasis.Design.Provider.t ->
    Linalg.Vec.t ->
    max_lambda:int ->
    t
  (** Same validation and defaults as {!path_p}. *)

  val finished : t -> bool
  (** True once the path stopped or reached [max_lambda] steps. *)

  val size : t -> int
  (** Number of selected columns so far. *)

  val residual : t -> Linalg.Vec.t
  (** Live residual buffer (read-only; refreshed by {!advance}). *)

  val skip_mask : t -> bool array
  (** Live selected-column mask — the [~skip] argument for the sweep. *)

  val advance : t -> int * float -> bool
  (** [advance t (j*, |c*|)] applies one selection; true iff a step was
      recorded (false = the path stopped without moving). *)

  val steps : t -> step array
  (** Steps recorded so far, oldest first. *)
end

val path_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  max_lambda:int ->
  step array
(** [path_p src f ~max_lambda] runs up to [max_lambda] iterations and
    returns one step record per iteration. Stops early when the largest
    residual correlation falls below [tol] (default [1e-12]) relative to
    the initial one, or when the residual is numerically zero.

    [on_singular] decides what happens when the next selected column is
    linearly dependent on the active set (the incremental Gram factor
    raises {!Linalg.Cholesky.Not_positive_definite}): [`Stop] (default,
    the historical behavior) ends the path; [`Fallback] accepts the
    column and routes every further re-fit through the {!Refit}
    degradation ladder (Cholesky → QR → ridge jitter), recording the
    rung that fired in the step models' {!Model.notes}. Clean paths are
    bitwise unaffected by the choice.

    With [checkpoint_every = n > 0] and an [on_checkpoint] callback, the
    selection state is handed out every [n] completed iterations (the
    callback typically writes it with {!Serialize.Checkpoint.save}), and
    once more when the path ends with selections past the last cadence
    point — a completed path always leaves its full support, even when
    the iteration count is not a multiple of [n].
    [resume] replays a previous checkpoint before the first sweep:
    selections are re-accepted and re-fit from the provider without the
    O(K·M) correlation scans, after which the path continues exactly
    where it stopped — the final model is bitwise identical to an
    uninterrupted run with the same inputs. The replayed state is
    returned as one leading step (its [correlation] is 0).

    [sweep] selects the correlation engine (default
    {!Corr_sweep.Exact}). [Incremental] maintains the correlation
    vector through Gram-cached delta updates (O(p·M) per step after an
    O(K·M) cache build per entering column) with exact refreshes on the
    configured cadence and at every checkpoint emission; selections may
    differ from the exact sweep within float-drift tolerance (validated
    ≤1e-10 relative in the test suite), so the mode is opt-in. For OMP
    the entering column's cache build costs what the sweep it replaces
    did, so this mode is roughly cost-neutral per step — the LAR path
    (two sweeps, one eliminated outright) is where it pays; it is
    supported here for mode-uniformity across solvers.

    The O(K·M) Step-3 correlation sweep — the dominant cost per
    iteration — runs column-parallel over [pool] (default:
    {!Parallel.Pool.default}) via {!Corr_sweep}; the selected support,
    coefficients and residuals are bitwise identical to the sequential
    dense scan for every domain count and either provider form (each
    column's dot product is accumulated whole, never split).

    [shards > 1] routes the selection sweep through the column-sharded
    engine ({!Shard_sweep}): supports, coefficients and residuals are
    bitwise identical to [shards = 1] at every shard count, in both
    sweep modes and both shard modes ([Domains] in-image, [Procs]
    re-exec'd workers with crash recovery). [recovered] (when given)
    accumulates worker recoveries. A resume under [shards > 1]
    re-activates the replayed support on every shard, so resumed
    sharded runs match uninterrupted ones bitwise too.
    @raise Invalid_argument when [max_lambda] exceeds [min(K, M)] or is
    not positive, when the checkpoint interval is negative, or when
    [resume] disagrees with the problem (wrong solver, shape, duplicate
    or out-of-range support, more support than [max_lambda]). *)

val fit_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  lambda:int ->
  Model.t
(** [fit_p src f ~lambda] is the model after [lambda] iterations (fewer
    if the path stopped early; the last available model is returned). *)

val path :
  ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t -> Linalg.Vec.t ->
  max_lambda:int -> step array
(** [path g f ~max_lambda] is {!path_p} over [Provider.dense g]. *)

val fit :
  ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t -> Linalg.Vec.t ->
  lambda:int -> Model.t
(** [fit g f ~lambda] is {!fit_p} over [Provider.dense g]. *)
