(** Orthogonal matching pursuit — Algorithm 1 of the paper.

    Given the underdetermined system [G·α = F], OMP iteratively selects
    the basis vector most correlated with the current residual
    (eq. (18)), re-solves the least-squares coefficients of {e}all{i}
    selected vectors (Step 6, eq. (22)), and recomputes the residual
    (Step 7). Unselected coefficients are exactly zero (Step 9).

    The re-fit is done incrementally: the Cholesky factor of the
    selected-column Gram matrix grows by one row per iteration
    ([Linalg.Cholesky.Grow]), so iteration [p] costs
    O(K·M) for the correlation scan plus O(K·p + p²) for the re-fit —
    the correlation scan dominates, exactly as in the paper's complexity
    discussion.

    The solver consumes a {!Polybasis.Design.Provider} ([_p] variants),
    so it runs unchanged against a materialized matrix or the
    matrix-free Hermite-table generator — bitwise-identical paths either
    way. Active-set columns (cross products, re-fit residuals) are
    materialized once into a per-fit column cache: O(K·λ) extra memory,
    never O(K·M). *)

type step = {
  index : int;  (** basis selected at this iteration *)
  correlation : float;  (** |ξ| that won the selection *)
  residual_norm : float;  (** ‖Res‖₂ after the re-fit *)
  model : Model.t;  (** model after this iteration *)
}

val path_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  max_lambda:int ->
  step array
(** [path_p src f ~max_lambda] runs up to [max_lambda] iterations and
    returns one step record per iteration. Stops early when the largest
    residual correlation falls below [tol] (default [1e-12]) relative to
    the initial one, when the residual is numerically zero, or when the
    next column is linearly dependent on the selected set.

    The O(K·M) Step-3 correlation sweep — the dominant cost per
    iteration — runs column-parallel over [pool] (default:
    {!Parallel.Pool.default}) via {!Corr_sweep}; the selected support,
    coefficients and residuals are bitwise identical to the sequential
    dense scan for every domain count and either provider form (each
    column's dot product is accumulated whole, never split).
    @raise Invalid_argument when [max_lambda] exceeds [min(K, M)] or is
    not positive. *)

val fit_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  lambda:int ->
  Model.t
(** [fit_p src f ~lambda] is the model after [lambda] iterations (fewer
    if the path stopped early; the last available model is returned). *)

val path :
  ?tol:float -> ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t ->
  max_lambda:int -> step array
(** [path g f ~max_lambda] is {!path_p} over [Provider.dense g]. *)

val fit :
  ?tol:float -> ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t ->
  lambda:int -> Model.t
(** [fit g f ~lambda] is {!fit_p} over [Provider.dense g]. *)
