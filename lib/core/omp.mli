(** Orthogonal matching pursuit — Algorithm 1 of the paper.

    Given the underdetermined system [G·α = F], OMP iteratively selects
    the basis vector most correlated with the current residual
    (eq. (18)), re-solves the least-squares coefficients of {e}all{i}
    selected vectors (Step 6, eq. (22)), and recomputes the residual
    (Step 7). Unselected coefficients are exactly zero (Step 9).

    The re-fit is done incrementally: the Cholesky factor of the
    selected-column Gram matrix grows by one row per iteration
    ([Linalg.Cholesky.Grow]), so iteration [p] costs
    O(K·M) for the correlation scan plus O(K·p + p²) for the re-fit —
    the correlation scan dominates, exactly as in the paper's complexity
    discussion.

    The solver consumes a {!Polybasis.Design.Provider} ([_p] variants),
    so it runs unchanged against a materialized matrix or the
    matrix-free Hermite-table generator — bitwise-identical paths either
    way. Active-set columns (cross products, re-fit residuals) are
    materialized once into a per-fit column cache: O(K·λ) extra memory,
    never O(K·M). *)

type step = {
  index : int;  (** basis selected at this iteration *)
  correlation : float;  (** |ξ| that won the selection *)
  residual_norm : float;  (** ‖Res‖₂ after the re-fit *)
  model : Model.t;  (** model after this iteration *)
}

val path_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  max_lambda:int ->
  step array
(** [path_p src f ~max_lambda] runs up to [max_lambda] iterations and
    returns one step record per iteration. Stops early when the largest
    residual correlation falls below [tol] (default [1e-12]) relative to
    the initial one, or when the residual is numerically zero.

    [on_singular] decides what happens when the next selected column is
    linearly dependent on the active set (the incremental Gram factor
    raises {!Linalg.Cholesky.Not_positive_definite}): [`Stop] (default,
    the historical behavior) ends the path; [`Fallback] accepts the
    column and routes every further re-fit through the {!Refit}
    degradation ladder (Cholesky → QR → ridge jitter), recording the
    rung that fired in the step models' {!Model.notes}. Clean paths are
    bitwise unaffected by the choice.

    With [checkpoint_every = n > 0] and an [on_checkpoint] callback, the
    selection state is handed out every [n] completed iterations (the
    callback typically writes it with {!Serialize.Checkpoint.save}), and
    once more when the path ends with selections past the last cadence
    point — a completed path always leaves its full support, even when
    the iteration count is not a multiple of [n].
    [resume] replays a previous checkpoint before the first sweep:
    selections are re-accepted and re-fit from the provider without the
    O(K·M) correlation scans, after which the path continues exactly
    where it stopped — the final model is bitwise identical to an
    uninterrupted run with the same inputs. The replayed state is
    returned as one leading step (its [correlation] is 0).

    The O(K·M) Step-3 correlation sweep — the dominant cost per
    iteration — runs column-parallel over [pool] (default:
    {!Parallel.Pool.default}) via {!Corr_sweep}; the selected support,
    coefficients and residuals are bitwise identical to the sequential
    dense scan for every domain count and either provider form (each
    column's dot product is accumulated whole, never split).
    @raise Invalid_argument when [max_lambda] exceeds [min(K, M)] or is
    not positive, when the checkpoint interval is negative, or when
    [resume] disagrees with the problem (wrong solver, shape, duplicate
    or out-of-range support, more support than [max_lambda]). *)

val fit_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  lambda:int ->
  Model.t
(** [fit_p src f ~lambda] is the model after [lambda] iterations (fewer
    if the path stopped early; the last available model is returned). *)

val path :
  ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t -> Linalg.Vec.t ->
  max_lambda:int -> step array
(** [path g f ~max_lambda] is {!path_p} over [Provider.dense g]. *)

val fit :
  ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t -> Linalg.Vec.t ->
  lambda:int -> Model.t
(** [fit g f ~lambda] is {!fit_p} over [Provider.dense g]. *)
