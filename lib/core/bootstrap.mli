(** Bootstrap diagnostics for sparse model stability.

    A sparse model's {e support} is itself an estimate: with another
    draw of the same K training samples, would OMP pick the same basis
    functions? Resampling the training rows with replacement and
    refitting answers this — selection frequencies near 1 mark robust
    variation sources, frequencies near 1/2 mark interchangeable
    correlated factors (e.g. two halves of a differential pair), and a
    long tail of small frequencies is the sampling noise floor. This is
    the practical companion to the paper's Section IV-B "almost uniquely
    determined" guarantee. *)

type report = {
  replicates : int;
  frequencies : (int * float) array;
      (** (basis index, fraction of replicates that selected it), every
          basis selected at least once, sorted by decreasing
          frequency. *)
  mean_nnz : float;  (** average support size across replicates *)
  coeff_mean : (int * float) array;
      (** mean coefficient per basis over the replicates where it was
          selected, same order as [frequencies] *)
  coeff_std : (int * float) array;
      (** std of the coefficient over selecting replicates *)
}

val run :
  ?replicates:int -> ?lambda:int -> Randkit.Prng.t -> Linalg.Mat.t ->
  Linalg.Vec.t -> report
(** [run rng g f] refits OMP on [replicates] (default 50) bootstrap
    resamples of the rows of [(g, f)]. [lambda] defaults to the support
    size of a plain OMP fit at λ = K/4 (capped at 100). Each replicate
    draws K rows with replacement; duplicated rows are handled
    naturally by least squares.
    @raise Invalid_argument on non-positive replicate counts. *)

val stable_support : ?threshold:float -> report -> int array
(** Basis indices selected in at least [threshold] (default 0.8) of the
    replicates — the robust core of the model, sorted ascending. *)
