open Linalg
module Provider = Polybasis.Design.Provider
module Basis = Polybasis.Basis
module Shard = Parallel.Shard

type mode = Domains | Procs

let mode_of_string = function
  | "domain" | "domains" -> Some Domains
  | "process" | "procs" -> Some Procs
  | _ -> None

let mode_to_string = function Domains -> "domain" | Procs -> "process"

type dir = Dense of Vec.t | Weights of (int * float) array

type pick = {
  big_c : float;
  enter : int;
  enter_abs : float;
  enter_val : float;
  act_c : (int * float) array;
}

(* ------------------------------------------------------------------ *)
(* Shard-local state.  One [local] owns a contiguous column window
   [jlo, jhi) of the dictionary: its own provider window, its own
   norms, its own skip masks, and (incremental mode) its own Gram-cache
   slab.  Every operation below touches local columns only, with the
   exact per-column float sequences of the full-dictionary kernels, so
   shard-local results merge bitwise into the sequential scan.  The
   same code runs in-image (Domains) and inside worker processes
   (Procs). *)

type local = {
  shard : int;
  jlo : int;
  jhi : int;
  win : Provider.t;
  raw_norms : Vec.t;
  norms : Vec.t; (* raw with the <=0 -> 1 fixup, matching the solvers *)
  active : bool array; (* local index *)
  banned : bool array;
  mutable c : Vec.t; (* normalized correlations from the last select *)
  mutable gu : Vec.t option; (* raw Gᵀu slice retained select->commit *)
  inc : Corr_sweep.Inc.t option;
  lpool : Parallel.Pool.t option;
}

let local_create ?pool ~sweep ~shard ~jlo ~jhi win r0 =
  let raw = Provider.column_norms ?pool win in
  let norms = Array.map (fun n -> if n <= 0. then 1. else n) raw in
  let w = jhi - jlo in
  let inc =
    match sweep with
    | Corr_sweep.Exact -> None
    | Corr_sweep.Incremental _ ->
        (* refresh:0 — the parent mirrors the cadence and ships refresh
           residuals explicitly, so every shard refreshes on exactly the
           steps the non-sharded Inc did. *)
        Some (Corr_sweep.Inc.create ?pool ~refresh:0 win r0)
  in
  {
    shard;
    jlo;
    jhi;
    win;
    raw_norms = raw;
    norms;
    active = Array.make w false;
    banned = Array.make w false;
    c = [||];
    gu = None;
    inc;
    lpool = pool;
  }

let local_width l = l.jhi - l.jlo

let raw_corr l r =
  match l.inc with
  | Some ic -> Corr_sweep.Inc.correlations ic
  | None -> Provider.gram_tr ?pool:l.lpool l.win r

(* Gram-cache slabs are keyed by *global* column index so the parent's
   delta and direction weights apply unchanged on every shard. *)
let local_activate l j col =
  if j >= l.jlo && j < l.jhi then l.active.(j - l.jlo) <- true;
  match l.inc with
  | Some ic -> Corr_sweep.Inc.ensure_gram ic j col
  | None -> ()

let local_deactivate l j =
  if j >= l.jlo && j < l.jhi then l.active.(j - l.jlo) <- false

let local_ban l j = if j >= l.jlo && j < l.jhi then l.banned.(j - l.jlo) <- true

let local_deltas l deltas =
  match l.inc with
  | Some ic -> Corr_sweep.Inc.apply_deltas ic deltas
  | None -> ()

let local_refresh l r =
  match l.inc with Some ic -> Corr_sweep.Inc.refresh ic r | None -> ()

(* OMP/STAR selection: local argmax over non-skipped columns, strict [>]
   so the lowest local (hence global) index wins ties — the left-biased
   shard merge then reproduces the sequential lowest-index rule. *)
let local_select l r =
  let w = local_width l in
  let skip = Array.init w (fun j -> l.active.(j) || l.banned.(j)) in
  let j, a =
    match l.inc with
    | Some ic -> Corr_sweep.Inc.argmax_abs ~skip ic
    | None -> Provider.argmax_abs ?pool:l.lpool ~skip l.win r
  in
  ((if j >= 0 then l.jlo + j else -1), a)

(* LARS step-2 scan over the window: C (all non-banned), the entering
   candidate (inactive, non-banned, strict [>]), and the correlation
   values at the locally active columns — everything the parent's step
   needs from this slice.  The normalized vector is retained for the
   gamma scan of the same step. *)
let local_lars_select l r =
  let gtr = raw_corr l r in
  let w = local_width l in
  let c = Array.init w (fun j -> gtr.(j) /. l.norms.(j)) in
  l.c <- c;
  let big_c = ref 0. and enter = ref (-1) and enter_abs = ref 0. in
  for j = 0 to w - 1 do
    let a = Float.abs c.(j) in
    if (not l.banned.(j)) && a > !big_c then big_c := a;
    if (not l.active.(j)) && (not l.banned.(j)) && a > !enter_abs then begin
      enter := j;
      enter_abs := a
    end
  done;
  let act = ref [] in
  for j = w - 1 downto 0 do
    if l.active.(j) then act := (l.jlo + j, c.(j)) :: !act
  done;
  {
    big_c = !big_c;
    enter = (if !enter >= 0 then l.jlo + !enter else -1);
    enter_abs = !enter_abs;
    enter_val = (if !enter >= 0 then c.(!enter) else 0.);
    act_c = Array.of_list !act;
  }

let local_gu l dirv =
  match (dirv, l.inc) with
  | Dense u, _ -> Provider.gram_tr ?pool:l.lpool l.win u
  | Weights terms, Some ic -> Corr_sweep.Inc.combination ic terms
  | Weights _, None ->
      invalid_arg "Shard_sweep: weighted direction requires incremental sweep"

(* LARS step-length scan: the local minimum over this window's gamma
   candidates.  The sequential scan's running-min acceptance
   (cand > 1e-12 && cand < gamma) reduces to min(init, min of all
   candidates > 1e-12), and float min is exact, so folding the local
   minima reproduces the sequential result bit for bit. *)
let local_gamma l ~cc ~a_a dirv =
  let gu = local_gu l dirv in
  l.gu <- Some gu;
  let w = local_width l in
  if Array.length l.c <> w then
    invalid_arg "Shard_sweep: gamma scan before select";
  let best = ref infinity in
  for j = 0 to w - 1 do
    if (not l.active.(j)) && not l.banned.(j) then begin
      let aj = gu.(j) /. l.norms.(j) in
      let cand1 = (cc -. l.c.(j)) /. (a_a -. aj) in
      let cand2 = (cc +. l.c.(j)) /. (a_a +. aj) in
      if cand1 > 1e-12 && cand1 < !best then best := cand1;
      if cand2 > 1e-12 && cand2 < !best then best := cand2
    end
  done;
  !best

(* Advance the maintained correlations by the committed step.  The
   direction travels with the command so a respawned worker (whose
   retained [gu] died with it) recomputes the identical slice from its
   replayed Gram cache. *)
let local_commit l ~gamma ~dirv ~refresh =
  (match l.inc with
  | None -> ()
  | Some ic ->
      let gu = match l.gu with Some g -> g | None -> local_gu l dirv in
      Corr_sweep.Inc.retreat ic gamma gu);
  l.gu <- None;
  match refresh with None -> () | Some r -> local_refresh l r

(* ------------------------------------------------------------------ *)
(* Wire protocol (Procs mode).  Commands flow parent -> worker, each
   answered by exactly one reply; a missing or truncated reply is the
   death signal that triggers recovery.  All payloads are plain data
   (arrays, variants) — Marshal-stable within one executable. *)

type spec_payload =
  | PDense of Mat.t
  | PStreamed of int * Polybasis.Term.t array * Vec.t array

type init_payload = {
  i_shard : int;
  i_jlo : int;
  i_jhi : int;
  i_sweep : Corr_sweep.sweep;
  i_spec : spec_payload;
  i_r0 : Vec.t;
}

type cmd =
  | Init of init_payload
  | Activate of int * Vec.t
  | Deactivate of int
  | Ban of int
  | Deltas of (int * float) array
  | Refresh of Vec.t
  | Commit of { gamma : float; cdir : dir; refresh : Vec.t option }
  | Select of Vec.t
  | LarsSelect of Vec.t
  | Gamma of { cc : float; a_a : float; gdir : dir }
  | Norms
  | PeakRss
  | Quit

type reply =
  | RHello
  | RUnit
  | RSelect of int * float
  | RPick of pick
  | RGamma of float
  | RNorms of Vec.t
  | RRss of float

let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.
  | ic ->
      let rec scan () =
        match input_line ic with
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
              let v = String.trim (String.sub line 6 (String.length line - 6)) in
              let v =
                match String.index_opt v ' ' with
                | Some i -> String.sub v 0 i
                | None -> v
              in
              close_in ic;
              match float_of_string_opt v with Some x -> x | None -> 0.
            end
            else scan ()
        | exception End_of_file ->
            close_in ic;
            0.
      in
      scan ()

let build_window = function
  | PDense g -> Provider.dense g
  | PStreamed (dim, terms, samples) ->
      Provider.streamed (Basis.create dim terms) samples

let exec_local l (c : cmd) : reply =
  match c with
  | Init _ | Quit -> RUnit
  | Activate (j, col) ->
      local_activate l j col;
      RUnit
  | Deactivate j ->
      local_deactivate l j;
      RUnit
  | Ban j ->
      local_ban l j;
      RUnit
  | Deltas d ->
      local_deltas l d;
      RUnit
  | Refresh r ->
      local_refresh l r;
      RUnit
  | Commit { gamma; cdir; refresh } ->
      local_commit l ~gamma ~dirv:cdir ~refresh;
      RUnit
  | Select r ->
      let j, a = local_select l r in
      RSelect (j, a)
  | LarsSelect r -> RPick (local_lars_select l r)
  | Gamma { cc; a_a; gdir } -> RGamma (local_gamma l ~cc ~a_a gdir)
  | Norms -> RNorms (Array.copy l.raw_norms)
  | PeakRss -> RRss (vmhwm_kb ())

(* ------------------------------------------------------------------ *)
(* Worker side.  A process shard is this same executable re-exec'd with
   RSM_SHARD_WORKER=1 (spawned via fork+exec, which is safe under OCaml 5
   domains where a bare fork is not); host mains must call
   [worker_entry_if_requested] before anything else. *)

let worker_env_var = "RSM_SHARD_WORKER"
let fault_env_var = "RSM_SHARD_FAULT"

(* Host binaries can print to stdout from module initializers that run
   before the worker hook (test runners announce random seeds, CLIs may
   log); the sentinel lets the parent discard that prefix before the
   binary Marshal stream starts. *)
let ready_sentinel = "RSM_SHARD_READY"

(* "<shard>:<n>" — SIGKILL ourselves on the n-th selection query
   addressed to that shard.  The deterministic crash hook behind the CI
   recovery smoke; parents strip the variable when respawning. *)
let fault_spec () =
  match Sys.getenv_opt fault_env_var with
  | None -> None
  | Some s -> (
      match String.index_opt s ':' with
      | None -> None
      | Some i -> (
          match
            ( int_of_string_opt (String.sub s 0 i),
              int_of_string_opt
                (String.sub s (i + 1) (String.length s - i - 1)) )
          with
          | Some sh, Some n -> Some (sh, n)
          | _ -> None))

let worker_loop ic oc =
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let reply r =
    Marshal.to_channel oc (r : reply) [];
    flush oc
  in
  output_string oc ("\n" ^ ready_sentinel ^ "\n");
  reply RHello;
  let l = ref None in
  let fault = fault_spec () in
  let nsel = ref 0 in
  let maybe_die shard =
    incr nsel;
    match fault with
    | Some (fs, fn) when fs = shard && fn = !nsel ->
        Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let rec loop () =
    match (Marshal.from_channel ic : cmd) with
    | exception End_of_file -> exit 0
    | Quit ->
        reply RUnit;
        exit 0
    | Init p ->
        let pool = Parallel.Pool.create ~domains:1 () in
        l :=
          Some
            (local_create ~pool ~sweep:p.i_sweep ~shard:p.i_shard
               ~jlo:p.i_jlo ~jhi:p.i_jhi (build_window p.i_spec) p.i_r0);
        reply RUnit;
        loop ()
    | c ->
        let l =
          match !l with
          | Some l -> l
          | None -> failwith "Shard_sweep worker: command before Init"
        in
        (match c with Select _ | LarsSelect _ -> maybe_die l.shard | _ -> ());
        reply (exec_local l c);
        loop ()
  in
  loop ()

let worker_entry_if_requested () =
  if Sys.getenv_opt worker_env_var = Some "1" then
    match worker_loop stdin stdout with
    | () -> exit 0
    | exception _ -> exit 1

(* ------------------------------------------------------------------ *)
(* Parent side. *)

type worker = {
  wshard : int;
  mutable pid : int;
  mutable to_w : out_channel;
  mutable from_w : in_channel;
}

type pstate = {
  workers : worker array;
  (* Replay log, newest first: every state-changing command already
     acknowledged by the fleet.  A respawned shard re-runs it in order
     — each command is deterministic on the shard's slice, so the
     rebuilt slab, masks and maintained correlations are bitwise the
     dead worker's. *)
  mutable wlog : cmd list;
  (* The current step's selection query: re-issued after a replay so
     the worker's retained [c] matches the live step again. *)
  mutable cur_select : cmd option;
}

type backend = InImage of local array | Procs of pstate

type t = {
  src : Provider.t;
  sweep : Corr_sweep.sweep;
  ranges : Shard.range array;
  r0 : Vec.t;
  backend : backend;
  mutable recovered : int;
}

exception Worker_dead

let send w c =
  try
    Marshal.to_channel w.to_w (c : cmd) [];
    flush w.to_w
  with Sys_error _ | Unix.Unix_error _ -> raise Worker_dead

let recv w : reply =
  try Marshal.from_channel w.from_w
  with End_of_file | Sys_error _ | Failure _ | Unix.Unix_error _ ->
    raise Worker_dead

let expect_unit = function
  | RUnit -> ()
  | _ -> failwith "Shard_sweep: protocol error (expected ack)"

let payload ~src ~sweep ~r0 (rg : Shard.range) shard =
  let spec =
    match Provider.spec src with
    | `Dense _ -> (
        match Provider.spec (Provider.window src ~jlo:rg.Shard.lo ~jhi:rg.hi)
        with
        | `Dense g -> PDense g
        | `Streamed _ -> assert false)
    | `Streamed (basis, samples) ->
        let w = rg.Shard.hi - rg.lo in
        let terms = Array.init w (fun dj -> Basis.term basis (rg.lo + dj)) in
        PStreamed (Basis.dim basis, terms, samples)
  in
  Init
    {
      i_shard = shard;
      i_jlo = rg.Shard.lo;
      i_jhi = rg.hi;
      i_sweep = sweep;
      i_spec = spec;
      i_r0 = r0;
    }

let spawn_process ~strip_fault =
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let keep s =
    (not (has_prefix (worker_env_var ^ "=") s))
    && not (strip_fault && has_prefix (fault_env_var ^ "=") s)
  in
  let env =
    Array.of_list
      ((worker_env_var ^ "=1")
      :: List.filter keep (Array.to_list (Unix.environment ())))
  in
  (* cloexec on every parent-held end: workers must not inherit their
     siblings' pipes, or a dead sibling's EOF would never arrive. *)
  let c_in, p_out = Unix.pipe ~cloexec:true () in
  let p_in, c_out = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env c_in c_out Unix.stderr
  in
  Unix.close c_in;
  Unix.close c_out;
  let to_w = Unix.out_channel_of_descr p_out in
  let from_w = Unix.in_channel_of_descr p_in in
  set_binary_mode_out to_w true;
  set_binary_mode_in from_w true;
  (pid, to_w, from_w)

(* Discard host-initializer chatter up to the worker's sentinel line —
   only then does the binary Marshal stream begin.  Bounded so a binary
   without the hook (which echoes nothing) fails fast instead of
   blocking on a never-arriving sentinel. *)
let await_sentinel from_w =
  let rec scan n =
    if n > 1000 then false
    else
      match input_line from_w with
      | line -> line = ready_sentinel || scan (n + 1)
      | exception End_of_file -> false
  in
  scan 0

let start_worker ~strip_fault ~src ~sweep ~r0 ranges shard =
  let pid, to_w, from_w = spawn_process ~strip_fault in
  let w = { wshard = shard; pid; to_w; from_w } in
  (match if await_sentinel from_w then recv w else RUnit with
  | RHello -> ()
  | _ | (exception Worker_dead) ->
      failwith
        "Shard_sweep: worker handshake failed — the host executable must \
         call Shard_sweep.worker_entry_if_requested () before anything else");
  send w (payload ~src ~sweep ~r0 ranges.(shard) shard);
  expect_unit (recv w);
  w

let dispose_worker w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try close_out w.to_w with Sys_error _ -> ());
  (try close_in w.from_w with Sys_error _ -> ());
  try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ()

(* Respawn a dead shard and replay it back to the live state: Init from
   the original problem, the full command log, then the current step's
   selection.  Every replayed command is acknowledged, so on return the
   worker is bitwise where the fleet is. *)
let recover t ps w =
  let rec go attempts =
    if attempts <= 0 then
      failwith
        (Printf.sprintf "Shard_sweep: shard %d keeps dying during recovery"
           w.wshard);
    dispose_worker w;
    match
      let nw =
        start_worker ~strip_fault:true ~src:t.src ~sweep:t.sweep ~r0:t.r0
          t.ranges w.wshard
      in
      w.pid <- nw.pid;
      w.to_w <- nw.to_w;
      w.from_w <- nw.from_w;
      List.iter
        (fun c ->
          send w c;
          expect_unit (recv w))
        (List.rev ps.wlog);
      match ps.cur_select with
      | None -> ()
      | Some c ->
          send w c;
          ignore (recv w)
    with
    | () -> t.recovered <- t.recovered + 1
    | exception Worker_dead -> go (attempts - 1)
  in
  go 3

let rec roundtrip ?(tries = 3) t ps w c =
  match
    send w c;
    recv w
  with
  | r -> r
  | exception Worker_dead ->
      if tries <= 1 then
        failwith
          (Printf.sprintf "Shard_sweep: shard %d is unrecoverable" w.wshard);
      recover t ps w;
      roundtrip ~tries:(tries - 1) t ps w c

let logged = function
  | Activate _ | Deactivate _ | Ban _ | Deltas _ | Refresh _ | Commit _ ->
      true
  | Init _ | Select _ | LarsSelect _ | Gamma _ | Norms | PeakRss | Quit ->
      false

(* Broadcast one command to every shard (in shard order) and gather the
   replies.  State-changing commands are appended to the replay log
   only after the whole fleet acknowledged them: a worker that dies
   mid-broadcast replays the log *without* the in-flight command and
   then receives it exactly once via the retry. *)
let exec t (c : cmd) : reply array =
  match t.backend with
  | InImage locals -> Array.map (fun l -> exec_local l c) locals
  | Procs ps ->
      (match c with
      | Select _ | LarsSelect _ -> ps.cur_select <- Some c
      | _ -> ());
      let rs = Array.map (fun w -> roundtrip t ps w c) ps.workers in
      if logged c then ps.wlog <- c :: ps.wlog;
      rs

let create ?pool ~mode ~shards ~sweep src ~r0 =
  if shards < 1 then invalid_arg "Shard_sweep.create: shards must be >= 1";
  let m = Provider.cols src in
  if Array.length r0 <> Provider.rows src then
    invalid_arg "Shard_sweep.create: residual length mismatch";
  let ranges = Shard.ranges ~n:m ~shards in
  let r0 = Array.copy r0 in
  let backend =
    match mode with
    | Domains ->
        InImage
          (Array.mapi
             (fun i (rg : Shard.range) ->
               local_create ?pool ~sweep ~shard:i ~jlo:rg.Shard.lo
                 ~jhi:rg.hi
                 (Provider.window src ~jlo:rg.Shard.lo ~jhi:rg.hi)
                 r0)
             ranges)
    | Procs ->
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ | Sys_error _ -> ());
        Procs
          {
            workers =
              Array.init (Array.length ranges)
                (start_worker ~strip_fault:false ~src ~sweep ~r0 ranges);
            wlog = [];
            cur_select = None;
          }
  in
  { src; sweep; ranges; r0; backend; recovered = 0 }

let shards t = Array.length t.ranges
let recovered t = t.recovered

let shutdown t =
  match t.backend with
  | InImage _ -> ()
  | Procs ps ->
      Array.iter
        (fun w ->
          (try
             send w Quit;
             ignore (recv w)
           with Worker_dead -> ());
          dispose_worker w)
        ps.workers

(* Gathered raw column norms — per-column sums over ascending rows on
   each window, hence bitwise the full provider's column_norms. *)
let raw_norms t =
  let m = Provider.cols t.src in
  let out = Array.make m 0. in
  Array.iteri
    (fun i r ->
      match r with
      | RNorms v -> Array.blit v 0 out t.ranges.(i).Shard.lo (Array.length v)
      | _ -> failwith "Shard_sweep: protocol error (norms)")
    (exec t Norms);
  out

let activate t j col = Array.iter expect_unit (exec t (Activate (j, col)))
let deactivate t j = Array.iter expect_unit (exec t (Deactivate j))
let ban t j = Array.iter expect_unit (exec t (Ban j))
let apply_deltas t deltas = Array.iter expect_unit (exec t (Deltas deltas))
let refresh t r = Array.iter expect_unit (exec t (Refresh (Array.copy r)))

let commit t ~gamma ~dir ~refresh =
  Array.iter expect_unit
    (exec t
       (Commit
          {
            gamma;
            cdir = dir;
            refresh = Option.map Array.copy refresh;
          }))

(* Left-biased tree merge: on a tie in |correlation| the earlier shard
   — hence the lower global index — survives, matching the sequential
   strict-[>] scan at every shard count. *)
let select t ~r =
  let locals =
    Array.map
      (function
        | RSelect (j, a) -> (j, a)
        | _ -> failwith "Shard_sweep: protocol error (select)")
      (exec t (Select (Array.copy r)))
  in
  Shard.merge_argmax locals

let merge_pick a b =
  let enter, enter_abs, enter_val =
    if b.enter_abs > a.enter_abs then (b.enter, b.enter_abs, b.enter_val)
    else (a.enter, a.enter_abs, a.enter_val)
  in
  {
    big_c = Float.max a.big_c b.big_c;
    enter;
    enter_abs;
    enter_val;
    act_c = Array.append a.act_c b.act_c;
  }

let lars_select t ~r =
  let picks =
    Array.map
      (function
        | RPick p -> p
        | _ -> failwith "Shard_sweep: protocol error (lars_select)")
      (exec t (LarsSelect (Array.copy r)))
  in
  Shard.tree_reduce merge_pick picks

let lars_gamma t ~cc ~a_a dir =
  let best = ref infinity in
  Array.iter
    (function
      | RGamma g -> if g < !best then best := g
      | _ -> failwith "Shard_sweep: protocol error (gamma)")
    (exec t (Gamma { cc; a_a; gdir = dir }));
  !best

let peak_rss_kb t =
  Array.map
    (function
      | RRss x -> x
      | _ -> failwith "Shard_sweep: protocol error (rss)")
    (exec t PeakRss)
