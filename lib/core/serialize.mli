(** Plain-text persistence for fitted models.

    A fitted sparse model is tiny (tens of coefficients for a
    21 311-function dictionary), so a human-readable format costs
    nothing and lets models move between runs, the CLI and other tools.

    Format (version 1):
    {v
    rsm-model 1
    #note <text>            (0+ lines: model provenance notes)
    basis_size <M>
    nnz <n>
    <index> <coefficient>   (n lines, %.17g round-trip precision)
    v}
    Lines starting with [#] are ignored, except [#note ] lines which
    round-trip the model's {!Model.notes} (older parsers skip them as
    comments). *)

val to_string : Model.t -> string

val of_string : string -> (Model.t, string) result
(** Parse; [Error msg] describes the first problem found (bad header,
    wrong counts, duplicate or out-of-range indices, malformed
    numbers). *)

val save : string -> Model.t -> unit
(** [save path m] writes the model to [path] (truncating).
    @raise Sys_error on IO failure. *)

val load : string -> (Model.t, string) result
(** [load path] reads a model back. IO failures are reported as
    [Error]. *)

(** Crash-safe persistence of greedy-solver progress.

    A long OMP/STAR fit on a large dictionary can run for hours; a
    killed process should not mean starting over. The checkpoint records
    the selected support (plus the initial-correlation scale of the
    relative stopping test) — everything else (Gram factor, coefficients,
    residual) is replayed bit-for-bit from the design provider on
    resume, at O(K·p²) replay cost instead of O(K·M·p) fitting cost.

    Format (version 1):
    {v
    rsm-ckpt 1
    solver <omp|star>
    k <K>
    m <M>
    scale <initial correlation, %.17g>
    iter <p>
    support <j_0> ... <j_{p-1}>
    v} *)
module Checkpoint : sig
  type t = {
    solver : string;  (** "omp" or "star" *)
    k : int;  (** sample count the fit ran with *)
    m : int;  (** dictionary size the fit ran with *)
    scale : float;  (** initial correlation (stopping-test reference) *)
    support : int array;  (** columns selected so far, selection order *)
  }

  val to_string : t -> string

  val of_string : string -> (t, string) result

  val save : string -> t -> unit
  (** Atomic write (temp file + rename): a crash mid-checkpoint never
      corrupts the previous good checkpoint.
      @raise Sys_error on IO failure. *)

  val load : string -> (t, string) result
end

val to_expression : Model.t -> Polybasis.Basis.t -> string
(** Human-readable analytic form of the model, e.g.
    ["f = 893.25 + 22.53*y3 - 6.17*(y9^2 - 1)/sqrt2 + ..."] — the
    response-surface equation a datasheet or report would quote.
    Normalized Hermite factors are spelled out so the expression is
    directly evaluable.
    @raise Invalid_argument when the basis size disagrees. *)
