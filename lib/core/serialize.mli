(** Plain-text persistence for fitted models.

    A fitted sparse model is tiny (tens of coefficients for a
    21 311-function dictionary), so a human-readable format costs
    nothing and lets models move between runs, the CLI and other tools.

    Format (version 1):
    {v
    rsm-model 1
    #note <text>            (0+ lines: model provenance notes)
    basis_size <M>
    nnz <n>
    <index> <coefficient>   (n lines, %.17g round-trip precision)
    v}
    Lines starting with [#] are ignored, except [#note ] lines which
    round-trip the model's {!Model.notes} (older parsers skip them as
    comments). *)

val to_string : Model.t -> string

val of_string : string -> (Model.t, string) result
(** Parse; [Error msg] describes the first problem found (bad header,
    wrong counts, duplicate or out-of-range indices, malformed
    numbers). *)

val save : string -> Model.t -> unit
(** [save path m] writes the model to [path] (truncating).
    @raise Sys_error on IO failure. *)

val load : string -> (Model.t, string) result
(** [load path] reads a model back. IO failures are reported as
    [Error]. *)

val digest_string : string -> int64
(** FNV-1a 64-bit digest of a byte string. The serving registry
    ([Serve.Registry]) keys compiled evaluator tapes by the digest of
    the model file's bytes, so a re-served file never recompiles and a
    swapped file never hits a stale tape. *)

val digest : Model.t -> int64
(** [digest m] is {!digest_string} of {!to_string}[ m] — the content
    identity a saved copy of [m] would have. Sensitive to notes and to
    coefficient bit patterns. *)

val file_digest : string -> (int64, string) result
(** [file_digest path] digests the raw bytes of [path] (read in binary
    mode). IO failures are reported as [Error]. *)

(** Crash-safe persistence of greedy-solver progress.

    A long OMP/STAR fit on a large dictionary can run for hours; a
    killed process should not mean starting over. The checkpoint records
    the selected support (plus the initial-correlation scale of the
    relative stopping test) — everything else (Gram factor, coefficients,
    residual) is replayed bit-for-bit from the design provider on
    resume, at O(K·p²) replay cost instead of O(K·M·p) fitting cost.

    Format (version 1):
    {v
    rsm-ckpt 1
    solver <omp|star>
    k <K>
    m <M>
    scale <initial correlation, %.17g>
    iter <p>
    support <j_0> ... <j_{p-1}>
    v} *)
module Checkpoint : sig
  type t = {
    solver : string;  (** "omp" or "star" *)
    k : int;  (** sample count the fit ran with *)
    m : int;  (** dictionary size the fit ran with *)
    scale : float;  (** initial correlation (stopping-test reference) *)
    support : int array;  (** columns selected so far, selection order *)
  }

  val to_string : t -> string

  val of_string : string -> (t, string) result

  val save : string -> t -> unit
  (** Atomic write (temp file + rename): a crash mid-checkpoint never
      corrupts the previous good checkpoint.
      @raise Sys_error on IO failure. *)

  val load : string -> (t, string) result

  (** Versioned checkpoint of the LARS equiangular walk.

      Unlike OMP/STAR, the LARS path state is not just a support: the
      walk's history (entering order, signs, per-step gamma, lasso
      drops, banned dependent columns) determines every later step. The
      record is an event log — one line per path step — replayed
      bit-for-bit against the design provider on resume, at O(K·p²)
      replay cost (no O(K·M) correlation sweeps). FNV-1a digests of the
      [mu]/[beta] vectors guard against resuming with a different
      dataset, mode or [on_singular] policy than the one that wrote the
      checkpoint.

      Format (version 2):
      {v
      rsm-ckpt 2
      solver lars
      mode <lar|lasso>
      k <K>
      m <M>
      scale <initial correlation, %.17g>
      active <j_0> ... <j_{a-1}>     (insertion order)
      signs <s_0> ... <s_{a-1}>      (+1/-1, aligned with active)
      banned <j> ...                 (possibly empty)
      nsteps <E>
      event <added> <banned> <dropped> <gamma>   (E lines, -1 = none)
      nnotes <N>
      note <text>                    (N lines)
      mu_digest <hex64>
      beta_digest <hex64>
      v} *)
  module Lars : sig
    type event = {
      added : int;  (** entering column this step, or -1 *)
      banned : int;  (** column banned as dependent this step, or -1 *)
      dropped : int;  (** lasso zero-crossing drop this step, or -1 *)
      gamma : float;  (** step length taken along the equiangular direction *)
    }

    type t = {
      mode : string;  (** "lar" or "lasso" *)
      k : int;
      m : int;
      scale : float;  (** initial correlation (stopping-test reference) *)
      active : int array;  (** active set in insertion order *)
      signs : float array;  (** correlation signs, aligned with [active] *)
      banned : int array;  (** columns excluded as linearly dependent *)
      events : event array;  (** one entry per completed path step *)
      notes : string array;  (** degradation notes accumulated so far *)
      mu_digest : int64;  (** FNV-1a digest of the fit vector's float bits *)
      beta_digest : int64;  (** FNV-1a digest of the coefficient vector *)
    }

    val digest : float array -> int64
    (** FNV-1a 64-bit over the IEEE-754 bit patterns, in index order.
        Bitwise-sensitive: any ULP difference changes the digest. *)

    val to_string : t -> string

    val of_string : string -> (t, string) result

    val save : string -> t -> unit
    (** Atomic write, like {!Checkpoint.save}.
        @raise Sys_error on IO failure. *)

    val load : string -> (t, string) result
  end

  (** Per-fold checkpoints for cross-validation sweeps.

      A killed CV run resumes at the first unfinished fold: each
      completed fold writes [<base>.fold<q>] holding its full error
      curve at %.17g (exact double round-trip), so averaging loaded and
      refitted curves in fold order is bitwise identical to the
      uninterrupted sweep. [plan_digest] fingerprints the shuffled
      fold-assignment plan, so a checkpoint from a different seed,
      dataset size or fold count is rejected rather than silently
      blended in.

      Format (version 1):
      {v
      rsm-cv-ckpt 1
      fold <q>
      folds <Q>
      n <samples>
      max_lambda <L>
      plan_digest <hex64>
      curve <e_1> ... <e_L>          (%.17g)
      v} *)
  module Cv : sig
    type t = {
      fold : int;  (** fold index in [0, folds) *)
      folds : int;
      n : int;  (** dataset size the plan was built for *)
      max_lambda : int;
      plan_digest : int64;  (** FNV-1a digest of the fold-assignment plan *)
      curve : float array;  (** held-out error per lambda, length max_lambda *)
    }

    val plan_digest : int array -> int64
    (** FNV-1a 64-bit over the per-sample fold assignments. *)

    val fold_file : string -> int -> string
    (** [fold_file base q] is the checkpoint path for fold [q]:
        ["<base>.fold<q>"]. *)

    val to_string : t -> string

    val of_string : string -> (t, string) result

    val save : string -> t -> unit
    (** Atomic write, like {!Checkpoint.save}.
        @raise Sys_error on IO failure. *)

    val load : string -> (t, string) result
  end

  (** Multi-output CV manifest. One file at ["<base>.multi"] records
      the (outputs × folds) grid shape; each output [r]'s fold curves
      are ordinary {!Cv} files under the per-output base
      [output_base base r], i.e. at ["<base>.out<r>.fold<q>"]. Format:
      {v
      rsm-multi-ckpt 1
      outputs <R>
      folds <Q>
      n <samples>
      max_lambda <L>
      plan_digest <hex64>
      v} *)
  module Multi : sig
    type t = {
      outputs : int;
      folds : int;
      n : int;  (** dataset size the plan was built for *)
      max_lambda : int;
      plan_digest : int64;  (** FNV-1a digest of the fold-assignment plan *)
    }

    val manifest_file : string -> string
    (** [manifest_file base] is ["<base>.multi"]. *)

    val output_base : string -> int -> string
    (** [output_base base r] is ["<base>.out<r>"] — the {!Cv} base for
        output [r]'s fold files. *)

    val to_string : t -> string

    val of_string : string -> (t, string) result

    val save : string -> t -> unit
    (** Atomic write, like {!Checkpoint.save}.
        @raise Sys_error on IO failure. *)

    val load : string -> (t, string) result
  end
end

val to_expression : Model.t -> Polybasis.Basis.t -> string
(** Human-readable analytic form of the model, e.g.
    ["f = 893.25 + 22.53*y3 - 6.17*(y9^2 - 1)/sqrt2 + ..."] — the
    response-surface equation a datasheet or report would quote.
    Normalized Hermite factors are spelled out so the expression is
    directly evaluable.
    @raise Invalid_argument when the basis size disagrees. *)
