type spec = { lower : float; upper : float }

let spec_both ~lower ~upper =
  if lower > upper then invalid_arg "Yield.spec_both: empty window";
  { lower; upper }

let spec_min lower = { lower; upper = Float.infinity }

let spec_max upper = { lower = Float.neg_infinity; upper }

let passes spec x = x >= spec.lower && x <= spec.upper

let gaussian model basis spec =
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Yield.gaussian: basis size disagrees with model";
  Array.iter
    (fun j ->
      if Polybasis.Term.total_degree (Polybasis.Basis.term basis j) > 1 then
        invalid_arg
          "Yield.gaussian: model has nonlinear terms; use monte_carlo")
    model.Model.support;
  let mean = Sensitivity.mean model basis in
  let sigma = sqrt (Sensitivity.total_variance model basis) in
  if sigma = 0. then if passes spec mean then 1. else 0.
  else
    Stat.Distribution.gaussian_yield ~mean ~sigma ~lower:spec.lower
      ~upper:spec.upper

let monte_carlo_values ?(samples = 10_000) ?eval
    ?(sampler = Randkit.Gaussian.Polar) ?touched model basis rng =
  if samples <= 0 then invalid_arg "Yield.monte_carlo_values: samples <= 0";
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Yield.monte_carlo_values: basis size disagrees with model";
  let eval =
    match eval with Some f -> f | None -> Model.predict_point model basis
  in
  let n = Polybasis.Basis.dim basis in
  match (sampler : Randkit.Gaussian.sampler) with
  | Polar ->
      (* Sequential draw: the full factor vector per sample keeps the
         stream deterministic, then [eval] — by default the naive
         term-by-term walk, or a compiled tape (Serve.Eval.evaluator)
         that is bitwise equal to it. The polar stream cannot skip
         coordinates without shifting later bits, so [?touched] is
         rejected here. *)
      if touched <> None then
        invalid_arg
          "Yield.monte_carlo_values: ~touched requires ~sampler:Ziggurat";
      Array.init samples (fun _ ->
          let dy = Randkit.Gaussian.vector rng n in
          eval dy)
  | Ziggurat ->
      (* Counter-mode draw: coordinate [c] of sample [s] is a pure
         function of (key, s, c), so restricting the fill to [touched]
         reproduces the full draw's bits on those coordinates — the
         values are identical as long as [eval] reads only touched
         coordinates (untouched entries of the shared buffer stay 0). *)
      let key = Randkit.Counter.of_prng rng in
      Option.iter
        (Array.iter (fun c ->
             if c < 0 || c >= n then
               invalid_arg
                 "Yield.monte_carlo_values: touched coordinate out of range"))
        touched;
      let dy = Array.make n 0. in
      Array.init samples (fun s ->
          let pk = Randkit.Counter.at key s in
          (match touched with
          | Some vars ->
              Array.iter
                (fun c -> dy.(c) <- Randkit.Ziggurat.normal_at pk ~coord:c)
                vars
          | None ->
              for c = 0 to n - 1 do
                dy.(c) <- Randkit.Ziggurat.normal_at pk ~coord:c
              done);
          eval dy)

let joint_monte_carlo ?(samples = 10_000) specs basis rng =
  if specs = [] then invalid_arg "Yield.joint_monte_carlo: no specs";
  if samples <= 0 then invalid_arg "Yield.joint_monte_carlo: samples <= 0";
  List.iter
    (fun (m, _) ->
      if Polybasis.Basis.size basis <> m.Model.basis_size then
        invalid_arg "Yield.joint_monte_carlo: basis size disagrees with a model")
    specs;
  let n = Polybasis.Basis.dim basis in
  let pass = ref 0 in
  for _ = 1 to samples do
    let dy = Randkit.Gaussian.vector rng n in
    if
      List.for_all
        (fun (m, spec) -> passes spec (Model.predict_point m basis dy))
        specs
    then incr pass
  done;
  let y = float_of_int !pass /. float_of_int samples in
  let se = sqrt (Float.max (y *. (1. -. y)) 0. /. float_of_int samples) in
  (y, se)

let monte_carlo ?samples ?eval ?sampler ?touched model basis rng spec =
  let values =
    monte_carlo_values ?samples ?eval ?sampler ?touched model basis rng
  in
  let k = Array.length values in
  let pass = Array.fold_left (fun acc v -> if passes spec v then acc + 1 else acc) 0 values in
  let y = float_of_int pass /. float_of_int k in
  let se = sqrt (Float.max (y *. (1. -. y)) 0. /. float_of_int k) in
  (y, se)
