open Linalg

type t = {
  basis_size : int;
  support : int array;
  coeffs : Vec.t;
  notes : string array;
}

let make ~basis_size ~support ~coeffs =
  if Array.length support <> Array.length coeffs then
    invalid_arg "Model.make: support/coefficient length mismatch";
  Array.iter
    (fun j ->
      if j < 0 || j >= basis_size then
        invalid_arg "Model.make: support index out of range")
    support;
  (* Sort by index, carry coefficients along, drop exact zeros. *)
  let order = Array.init (Array.length support) (fun i -> i) in
  Array.sort (fun a b -> compare support.(a) support.(b)) order;
  let pairs =
    Array.to_list order
    |> List.filter_map (fun i ->
           if coeffs.(i) = 0. then None else Some (support.(i), coeffs.(i)))
  in
  let rec check_distinct = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg "Model.make: duplicate support index";
        check_distinct rest
    | _ -> ()
  in
  check_distinct pairs;
  {
    basis_size;
    support = Array.of_list (List.map fst pairs);
    coeffs = Array.of_list (List.map snd pairs);
    notes = [||];
  }

let notes m = m.notes

let with_notes m notes = { m with notes }

let add_note m note =
  if Array.exists (String.equal note) m.notes then m
  else { m with notes = Array.append m.notes [| note |] }

let dense ~basis_size alpha =
  if Array.length alpha <> basis_size then
    invalid_arg "Model.dense: coefficient vector length mismatch";
  let support = ref [] and coeffs = ref [] in
  for j = basis_size - 1 downto 0 do
    if alpha.(j) <> 0. then begin
      support := j :: !support;
      coeffs := alpha.(j) :: !coeffs
    end
  done;
  {
    basis_size;
    support = Array.of_list !support;
    coeffs = Array.of_list !coeffs;
    notes = [||];
  }

let nnz m = Array.length m.support

let to_dense m =
  let alpha = Array.make m.basis_size 0. in
  Array.iteri (fun p j -> alpha.(j) <- m.coeffs.(p)) m.support;
  alpha

let coeff m j =
  if j < 0 || j >= m.basis_size then invalid_arg "Model.coeff: index out of range";
  let rec bsearch lo hi =
    if lo >= hi then 0.
    else
      let mid = (lo + hi) / 2 in
      if m.support.(mid) = j then m.coeffs.(mid)
      else if m.support.(mid) < j then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length m.support)

let predict_design m g =
  if Mat.cols g <> m.basis_size then
    invalid_arg "Model.predict_design: design width mismatch";
  let k = Mat.rows g in
  let out = Array.make k 0. in
  Array.iteri
    (fun p j ->
      let c = m.coeffs.(p) in
      for i = 0 to k - 1 do
        out.(i) <- out.(i) +. (c *. Mat.unsafe_get g i j)
      done)
    m.support;
  out

let predict_point m b dy =
  if Polybasis.Basis.size b <> m.basis_size then
    invalid_arg "Model.predict_point: basis size mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun p j ->
      acc := !acc +. (m.coeffs.(p) *. Polybasis.Term.eval (Polybasis.Basis.term b j) dy))
    m.support;
  !acc

let predict_p m src =
  if Polybasis.Design.Provider.cols src <> m.basis_size then
    invalid_arg "Model.predict_p: design width mismatch";
  let k = Polybasis.Design.Provider.rows src in
  let out = Array.make k 0. in
  let buf = Array.make k 0. in
  (* Same support order and per-row accumulation as [predict_design] —
     bitwise identical on the dense form. *)
  Array.iteri
    (fun p j ->
      let c = m.coeffs.(p) in
      Polybasis.Design.Provider.column_into src j buf;
      for i = 0 to k - 1 do
        out.(i) <- out.(i) +. (c *. Array.unsafe_get buf i)
      done)
    m.support;
  out

let error_on m g f =
  let pred = predict_design m g in
  Stat.Metrics.relative_rms ~pred ~truth:f

let error_on_p m src f =
  let pred = predict_p m src in
  Stat.Metrics.relative_rms ~pred ~truth:f

let pp fmt m =
  Format.fprintf fmt "@[<v>sparse model: %d / %d non-zero@," (nnz m) m.basis_size;
  let shown = min (nnz m) 10 in
  for p = 0 to shown - 1 do
    Format.fprintf fmt "  alpha[%d] = %+.6g@," m.support.(p) m.coeffs.(p)
  done;
  if nnz m > shown then Format.fprintf fmt "  ...@,";
  Format.fprintf fmt "@]"
