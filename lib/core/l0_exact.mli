(** Exact L0-constrained least squares by exhaustive subset search.

    The paper's eq. (11) is NP-hard in general; for small dictionaries
    it can be solved {e exactly} by enumerating all supports of size
    ≤ λ and least-squares-fitting each. This gives a ground-truth
    optimum against which the heuristics (OMP, LAR, STAR) can be
    measured — the suboptimality-gap ablation. Complexity is
    O(C(M, λ)·(K·λ² + λ³)): keep [M ≤ ~30] and [λ ≤ ~4]. *)

type solution = {
  model : Model.t;
  residual_norm : float;  (** ‖G·α − F‖₂ at the optimum *)
  subsets_tried : int;
}

val solve : ?max_subsets:int -> Linalg.Mat.t -> Linalg.Vec.t -> lambda:int -> solution
(** [solve g f ~lambda] minimizes [‖G·α − F‖₂] over all supports of
    size exactly [min lambda (min K M)] (smaller supports are never
    better on noisy data, and ties resolve to the first found).
    Singular subsets (dependent columns) are skipped.
    @param max_subsets safety cap (default 2,000,000) — exceeding it
    raises [Invalid_argument] before any work is done.
    @raise Invalid_argument when [lambda] is not positive. *)

val count_subsets : m:int -> lambda:int -> int
(** C(m, λ), saturating at [max_int] — for feasibility checks. *)
