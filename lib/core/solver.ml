open Linalg
module Provider = Polybasis.Design.Provider

type method_ = Ls | Star | Lar | Lasso | Omp | Stomp | Cosamp

let all = [ Ls; Star; Lar; Omp ]

let name = function
  | Ls -> "LS"
  | Star -> "STAR"
  | Lar -> "LAR"
  | Lasso -> "LASSO"
  | Omp -> "OMP"
  | Stomp -> "StOMP"
  | Cosamp -> "CoSaMP"

let of_name s =
  match String.lowercase_ascii s with
  | "ls" | "least-squares" -> Some Ls
  | "star" -> Some Star
  | "lar" | "lars" -> Some Lar
  | "lasso" -> Some Lasso
  | "omp" -> Some Omp
  | "stomp" -> Some Stomp
  | "cosamp" -> Some Cosamp
  | _ -> None

let needs_overdetermined = function Ls -> true | _ -> false

let default_lambda g = max 1 (min (Mat.rows g) (Mat.cols g) / 2)

let fit ?lambda g f m =
  let lambda = match lambda with Some l -> l | None -> default_lambda g in
  match m with
  | Ls -> Ls.fit g f
  | Star -> Star.fit g f ~lambda
  | Lar -> Lars.fit ~mode:Lars.Lar g f ~lambda
  | Lasso -> Lars.fit ~mode:Lars.Lasso g f ~lambda
  | Omp -> Omp.fit g f ~lambda:(min lambda (min (Mat.rows g) (Mat.cols g)))
  | Stomp -> Stomp.fit ~max_selected:(min lambda (min (Mat.rows g) (Mat.cols g))) g f
  | Cosamp ->
      Cosamp.fit g f ~s:(max 1 (min lambda (min (Mat.rows g / 3) (Mat.cols g))))

let fit_cv ?folds ?max_lambda rng g f m =
  let max_lambda =
    match max_lambda with
    | Some l -> l
    | None -> max 1 (min (min (Mat.rows g / 2) (Mat.cols g)) 200)
  in
  match m with
  | Ls -> Ls.fit g f
  | Star -> (Select.star ?folds rng ~max_lambda g f).Select.model
  | Lar -> (Select.lars ?folds ~mode:Lars.Lar rng ~max_lambda g f).Select.model
  | Lasso ->
      (Select.lars ?folds ~mode:Lars.Lasso rng ~max_lambda g f).Select.model
  | Omp -> (Select.omp ?folds rng ~max_lambda g f).Select.model
  | Stomp ->
      (* StOMP's threshold, not lambda, is its knob; CV over a small
         threshold grid. *)
      let thresholds = [| 2.0; 2.5; 3.0 |] in
      let n = Mat.rows g in
      let folds_n = match folds with Some q -> q | None -> 4 in
      let plan = Stat.Crossval.make_plan rng ~n ~folds:folds_n in
      let curve =
        Stat.Crossval.run_curves plan ~fit_curve:(fun ~train ~held_out ->
            let g_tr = Mat.select_rows g train in
            let f_tr = Array.map (fun i -> f.(i)) train in
            let g_ho = Mat.select_rows g held_out in
            let f_ho = Array.map (fun i -> f.(i)) held_out in
            Array.map
              (fun t ->
                let m = Stomp.fit ~threshold:t g_tr f_tr in
                Model.error_on m g_ho f_ho)
              thresholds)
      in
      Stomp.fit ~threshold:thresholds.(Stat.Crossval.argmin curve) g f
  | Cosamp ->
      (* CV over the target sparsity s, like lambda for OMP. *)
      let smax = max 1 (min (max_lambda / 2) (min (Mat.rows g / 3) (Mat.cols g))) in
      let grid = Array.init (min smax 12) (fun i -> ((i + 1) * smax / min smax 12) |> max 1) in
      let n = Mat.rows g in
      let folds_n = match folds with Some q -> q | None -> 4 in
      let plan = Stat.Crossval.make_plan rng ~n ~folds:folds_n in
      let curve =
        Stat.Crossval.run_curves plan ~fit_curve:(fun ~train ~held_out ->
            let g_tr = Mat.select_rows g train in
            let f_tr = Array.map (fun i -> f.(i)) train in
            let g_ho = Mat.select_rows g held_out in
            let f_ho = Array.map (fun i -> f.(i)) held_out in
            Array.map
              (fun s ->
                match Cosamp.fit g_tr f_tr ~s with
                | m -> Model.error_on m g_ho f_ho
                | exception Invalid_argument _ -> Float.nan)
              grid)
      in
      let s = grid.(Stat.Crossval.argmin curve) in
      Cosamp.fit g f ~s

let fit_cv_p ?folds ?max_lambda ?on_singular ?sweep ?shards ?shard_mode
    ?recovered ?fused ?cv_checkpoint ?cv_resume ?(notes = [||]) rng src f m =
  let max_lambda =
    match max_lambda with
    | Some l -> l
    | None ->
        max 1 (min (min (Provider.rows src / 2) (Provider.cols src)) 200)
  in
  let checkpoint = cv_checkpoint and resume = cv_resume in
  let model =
  match m with
  | Star ->
      (Select.star_p ?folds ?sweep ?shards ?shard_mode ?recovered ?fused
         ?checkpoint ?resume rng ~max_lambda src f)
        .Select.model
  | Lar ->
      (Select.lars_p ?folds ~mode:Lars.Lar ?on_singular ?sweep ?shards
         ?shard_mode ?recovered ?fused ?checkpoint ?resume rng ~max_lambda src
         f)
        .Select.model
  | Lasso ->
      (Select.lars_p ?folds ~mode:Lars.Lasso ?on_singular ?sweep ?shards
         ?shard_mode ?recovered ?fused ?checkpoint ?resume rng ~max_lambda src
         f)
        .Select.model
  | Omp ->
      (Select.omp_p ?folds ?on_singular ?sweep ?shards ?shard_mode ?recovered
         ?fused ?checkpoint ?resume rng ~max_lambda src f)
        .Select.model
  | Ls | Stomp | Cosamp ->
      (* These paths need the materialized matrix (full LS / batch
         thresholding); free for a dense provider. *)
      fit_cv ?folds ~max_lambda rng (Provider.to_dense src) f m
  in
  (* Provenance notes (e.g. a quorum-degraded delivery) ride on the
     model itself so a served artifact carries its history. *)
  Array.fold_left Model.add_note model notes

(* Multi-output fitting: R responses over one design. The fused driver
   (default whenever the exact sweep runs unsharded) selects every
   output's λ from one lockstep grid of R×Q fold solvers — each
   streamed column generated once per greedy step for the whole grid —
   and is bitwise identical to R independent [fit_cv_p] calls seeded
   with copies of the same generator; the per-output driver IS those R
   independent calls. Either way output [r] checkpoints under
   [Serialize.Checkpoint.Multi.output_base base r], so a run
   interrupted in one mode resumes in the other. *)
let fit_multi_p ?folds ?max_lambda ?on_singular ?sweep ?shards ?shard_mode
    ?recovered ?fused ?fused_outputs ?cv_checkpoint ?cv_resume ?notes rng src
    fs m =
  let outputs = Array.length fs in
  if outputs = 0 then
    invalid_arg "Solver.fit_multi_p: at least one output required";
  let notes_of r =
    match notes with
    | None -> [||]
    | Some ns ->
        if Array.length ns <> outputs then
          invalid_arg "Solver.fit_multi_p: notes count disagrees with outputs";
        ns.(r)
  in
  let max_lambda =
    match max_lambda with
    | Some l -> l
    | None ->
        max 1 (min (min (Provider.rows src / 2) (Provider.cols src)) 200)
  in
  let path_method =
    match m with Star | Lar | Lasso | Omp -> true | Ls | Stomp | Cosamp -> false
  in
  let fused_on =
    path_method
    && Select.resolve_fused_multi ~sweep ~fused:fused_outputs ~shards
  in
  if fused_on then begin
    let checkpoint = cv_checkpoint and resume = cv_resume in
    let results =
      match m with
      | Star ->
          Select.star_multi_p ?folds ?checkpoint ?resume rng ~max_lambda src fs
      | Lar ->
          Select.lars_multi_p ?folds ~mode:Lars.Lar ?on_singular ?checkpoint
            ?resume rng ~max_lambda src fs
      | Lasso ->
          Select.lars_multi_p ?folds ~mode:Lars.Lasso ?on_singular ?checkpoint
            ?resume rng ~max_lambda src fs
      | Omp ->
          Select.omp_multi_p ?folds ?on_singular ?checkpoint ?resume rng
            ~max_lambda src fs
      | Ls | Stomp | Cosamp -> assert false
    in
    Array.mapi
      (fun r sel ->
        Array.fold_left Model.add_note sel.Select.model (notes_of r))
      results
  end
  else
    (* Per-output: R independent single-output fits, each from a copy
       of the caller's generator so every output sees the same plan and
       streams the fused driver derives — the parity the fused/≡/
       per-output gates check bitwise. *)
    Array.mapi
      (fun r f ->
        let cv_checkpoint =
          Option.map
            (fun base -> Serialize.Checkpoint.Multi.output_base base r)
            cv_checkpoint
        in
        fit_cv_p ?folds ~max_lambda ?on_singular ?sweep ?shards ?shard_mode
          ?recovered ?fused ?cv_checkpoint ?cv_resume ~notes:(notes_of r)
          (Randkit.Prng.copy rng) src f m)
      fs
