(** Stagewise orthogonal matching pursuit (StOMP, Donoho et al. 2012) —
    an extension solver.

    Where OMP admits exactly one basis vector per iteration, StOMP
    admits {e every} vector whose residual correlation exceeds a
    threshold proportional to the residual's noise level
    [t·‖Res‖₂/√K], then re-fits all selected coefficients by least
    squares. With only a handful of stages it covers supports that cost
    OMP one full correlation scan per element — the relevant regime for
    the paper's largest dictionaries, where the O(K·M) scan dominates
    (Section IV's complexity discussion). The ablation bench compares
    the two at equal accuracy. *)

type step = {
  added : int array;  (** basis indices admitted this stage *)
  threshold : float;  (** the correlation threshold used *)
  residual_norm : float;
  model : Model.t;
}

val path :
  ?threshold:float -> ?max_stages:int -> ?max_selected:int -> Linalg.Mat.t ->
  Linalg.Vec.t -> step array
(** [path g f] runs up to [max_stages] (default 10) stages with
    threshold parameter [threshold] (default 2.5, Donoho's recommended
    2–3 range), stopping early when a stage admits nothing, when the
    residual is numerically zero, or when [max_selected] (default
    [min(K, M)]) columns are active. Within each stage, candidate
    columns are admitted in decreasing correlation order and any column
    that is linearly dependent on the current selection is skipped. *)

val fit :
  ?threshold:float -> ?max_stages:int -> ?max_selected:int -> Linalg.Mat.t ->
  Linalg.Vec.t -> Model.t
(** The final model of {!path} (empty model if no stage admitted
    anything). *)
