(** Sparse response-surface models.

    A fitted model is a support — the indices of the selected basis
    functions within a dictionary of [basis_size] candidates — together
    with their coefficients. All other coefficients are exactly zero
    (Step 9 of Algorithm 1). Models predict either through a design
    matrix (when the basis rows are already evaluated) or pointwise
    through a [Polybasis.Basis.t]. *)

type t = private {
  basis_size : int;  (** M: dictionary size *)
  support : int array;  (** selected basis indices, strictly increasing *)
  coeffs : Linalg.Vec.t;  (** coefficient per support entry *)
  notes : string array;
      (** provenance metadata (numerical fallbacks fired during the fit,
          degradation events); empty for a clean fit *)
}

val make : basis_size:int -> support:int array -> coeffs:Linalg.Vec.t -> t
(** Validates lengths, index range; sorts the support (with matching
    coefficient permutation) and drops exact zeros. The built model has
    no notes; attach provenance with {!with_notes}/{!add_note}.
    @raise Invalid_argument on duplicates or out-of-range indices. *)

val notes : t -> string array
(** Provenance notes attached during fitting — e.g. which rung of the
    {!Refit} fallback ladder fired. Empty for a clean fit. *)

val with_notes : t -> string array -> t

val add_note : t -> string -> t
(** [add_note m s] appends [s] unless an identical note is present. *)

val dense : basis_size:int -> Linalg.Vec.t -> t
(** [dense ~basis_size alpha] builds a model from a full coefficient
    vector, keeping the non-zeros (LS fitting produces these). *)

val nnz : t -> int
(** Number of selected basis functions — the paper's ‖α‖₀. *)

val to_dense : t -> Linalg.Vec.t
(** Full-length coefficient vector α with zeros filled in. *)

val coeff : t -> int -> float
(** [coeff m j] is α_j (possibly 0). *)

val predict_design : t -> Linalg.Mat.t -> Linalg.Vec.t
(** [predict_design m g] is [G·α] touching only the support columns. *)

val predict_point : t -> Polybasis.Basis.t -> Linalg.Vec.t -> float
(** [predict_point m b dy] evaluates only the selected basis functions
    at [dy] — independent of M, but re-running the Hermite recurrence
    for every factor of every term. This is the reference evaluator:
    for serving-scale workloads, [Serve.Eval.compile] produces a flat
    tape that hoists the shared recurrences and is bitwise equal to
    this function (see SERVING.md). *)

val predict_p : t -> Polybasis.Design.Provider.t -> Linalg.Vec.t
(** [predict_p m src] is [G·α] streaming only the support columns from
    the provider (one reusable K buffer) — bitwise identical to
    {!predict_design} on the dense form. *)

val error_on : t -> Linalg.Mat.t -> Linalg.Vec.t -> float
(** [error_on m g f] is the relative-RMS modeling error of the model's
    predictions [G·α] against the reference responses [f]
    (see {!Stat.Metrics.relative_rms}). *)

val error_on_p : t -> Polybasis.Design.Provider.t -> Linalg.Vec.t -> float
(** {!error_on} over a provider; bitwise identical on the dense form. *)

val pp : Format.formatter -> t -> unit
