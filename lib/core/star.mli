(** STAR — statistical regression (Li & Liu, DAC 2008; reference [1] of
    the paper).

    STAR shares OMP's selection criterion — pick the basis vector whose
    inner product with the residual is largest — but {e skips the
    least-squares re-fit}: the coefficient of the newly selected basis
    function is set directly to the inner-product estimate
    [ξ_s = (1/K)·G_sᵀ·Res] of eq. (18) (a plain matching pursuit).
    Previously assigned coefficients are never revisited. The paper's
    Section V attributes OMP's 1.5–5× accuracy edge precisely to this
    difference, which the A1 ablation bench isolates.

    Consumes a {!Polybasis.Design.Provider} ([_p] variants): dense and
    matrix-free runs are bitwise identical. Selected columns are cached
    (K floats each) for the coefficient estimate and residual update. *)

type step = {
  index : int;
  coefficient : float;  (** the inner-product estimate used as α_s *)
  residual_norm : float;
  model : Model.t;
}

(** Per-step STAR state machine — same contract as {!Omp.Engine}, used
    by the fused lockstep CV driver in {!Select}. [advance] returns the
    matching-pursuit coefficient when a step was recorded. *)
module Engine : sig
  type t

  val create :
    ?tol:float ->
    Polybasis.Design.Provider.t ->
    Linalg.Vec.t ->
    max_lambda:int ->
    t

  val finished : t -> bool
  val size : t -> int
  val residual : t -> Linalg.Vec.t
  val skip_mask : t -> bool array
  val advance : t -> int * float -> float option
  val steps : t -> step array
end

val path_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  max_lambda:int ->
  step array
(** Same contract as {!Omp.path_p}: one record per iteration, early stop
    on vanishing correlation. [max_lambda] may not exceed [M] (there is
    no LS system to keep over-determined, so [K] is not a bound).

    [checkpoint_every]/[on_checkpoint]/[resume] follow the
    {!Omp.path_p} checkpoint contract with solver tag ["star"]: the
    checkpoint stores the selection order, and a resume replays the
    matching-pursuit coefficient and residual updates from the provider
    (no correlation sweeps), after which the continued path is bitwise
    identical to an uninterrupted run. The replayed state is returned as
    one leading step.

    The eq. (18) correlation sweep runs column-parallel over [pool]
    (default: {!Parallel.Pool.default}); selections and coefficients are
    bitwise identical to the sequential dense scan for every domain
    count and either provider form.

    [sweep] follows the {!Omp.path_p} contract: [Incremental] maintains
    the correlation vector through Gram-cached delta updates (here a
    single [(j, α)] delta per step — STAR never revisits coefficients)
    with exact refreshes on cadence and at checkpoint emissions;
    numerically ≤1e-10-validated rather than bitwise, so opt-in.

    [shards]/[shard_mode]/[recovered] follow the {!Omp.path_p}
    contract: the sharded selection path is bitwise identical to
    [shards = 1] at every shard count. *)

val fit_p :
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.t -> unit) ->
  ?resume:Serialize.Checkpoint.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  lambda:int ->
  Model.t
(** The model after the last path step. *)

val path :
  ?tol:float -> ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t ->
  max_lambda:int -> step array
(** {!path_p} over [Provider.dense g]. *)

val fit :
  ?tol:float -> ?pool:Parallel.Pool.t -> Linalg.Mat.t -> Linalg.Vec.t ->
  lambda:int -> Model.t
(** {!fit_p} over [Provider.dense g]. *)
