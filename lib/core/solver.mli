(** Unified solver front-end: the four techniques compared throughout
    the paper's Section V, behind one dispatch type. The benches,
    examples and CLI all go through this module so that every experiment
    treats the methods symmetrically. *)

type method_ =
  | Ls  (** least-squares fitting [21] — needs K ≥ M *)
  | Star  (** statistical regression, DAC 2008 [1] *)
  | Lar  (** least angle regression, DAC 2009 [2] *)
  | Lasso  (** LARS with the lasso modification (extension) *)
  | Omp  (** orthogonal matching pursuit (the TCAD paper's method) *)
  | Stomp  (** stagewise OMP (extension) *)
  | Cosamp  (** CoSaMP with support pruning (extension) *)

val all : method_ list
(** The paper's four, in table order: [Ls; Star; Lar; Omp]. *)

val name : method_ -> string

val of_name : string -> method_ option
(** Case-insensitive parse of [name]; ["lar"], ["lars"], ["lasso"],
    ["stomp"] and ["cosamp"] are all understood. *)

val needs_overdetermined : method_ -> bool
(** True only for [Ls]. *)

val fit :
  ?lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> method_ -> Model.t
(** [fit g f m] with a fixed sparsity budget [lambda] (ignored by [Ls]).
    Default [lambda] is [min(K, M)/2] — prefer {!fit_cv} in real use.
    @raise Invalid_argument when [Ls] is asked to fit an
    underdetermined system. *)

val fit_cv :
  ?folds:int -> ?max_lambda:int -> Randkit.Prng.t -> Linalg.Mat.t ->
  Linalg.Vec.t -> method_ -> Model.t
(** Cross-validated fit: sparsity chosen per Section IV-C for the path
    methods; plain LS for [Ls] (λ is meaningless there). Default
    [max_lambda] is [min(K/2, M, 200)]. *)

val fit_cv_p :
  ?folds:int -> ?max_lambda:int -> ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool ->
  ?cv_checkpoint:string -> ?cv_resume:bool -> ?notes:string array ->
  Randkit.Prng.t ->
  Polybasis.Design.Provider.t -> Linalg.Vec.t -> method_ -> Model.t
(** {!fit_cv} over a design provider. The greedy path methods (STAR,
    LAR, LASSO, OMP) run fully matrix-free on a streamed provider,
    bitwise matching the dense run; [Ls], [Stomp] and [Cosamp]
    materialize the matrix (free when the provider is dense).

    [on_singular] selects the degenerate-Gram policy for the OMP and
    LAR/LASSO fits (see {!Omp.path_p} and {!Lars.path_p}); [`Fallback]
    routes singular active-set re-fits through the {!Refit} ladder
    instead of stopping, recording the rung in {!Model.notes}. Ignored
    by the other methods.

    [sweep] selects the correlation engine for the path methods (default
    {!Corr_sweep.Exact}); [fused] controls the fused lockstep CV driver
    for OMP/STAR/LAR/LASSO — both forwarded to the {!Select} [_p] entry
    points (see {!Select.omp_p}). Ignored by [Ls]/[Stomp]/[Cosamp].

    [shards]/[shard_mode]/[recovered] route the path methods' selection
    sweeps through the column-sharded engine ({!Shard_sweep}, see
    {!Select.omp_p}): selections stay bitwise identical to the
    unsharded run at every shard count. Ignored by
    [Ls]/[Stomp]/[Cosamp].

    [cv_checkpoint]/[cv_resume] enable per-fold CV checkpointing for the
    path methods (STAR, LAR, LASSO, OMP) — see {!Select.generic_p}.
    Ignored by [Ls]/[Stomp]/[Cosamp], which have no λ sweep to
    checkpoint.

    [notes] are provenance lines appended to the fitted model's
    {!Model.notes} (deduplicated by {!Model.add_note}) — how the
    pipeline records a quorum-degraded delivery on the artifact itself,
    so the note survives serialization and serving. *)

val fit_multi_p :
  ?folds:int -> ?max_lambda:int -> ?on_singular:[ `Stop | `Fallback ] ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int -> ?shard_mode:Shard_sweep.mode -> ?recovered:int ref ->
  ?fused:bool -> ?fused_outputs:bool ->
  ?cv_checkpoint:string -> ?cv_resume:bool -> ?notes:string array array ->
  Randkit.Prng.t ->
  Polybasis.Design.Provider.t -> Linalg.Vec.t array -> method_ ->
  Model.t array
(** [fit_multi_p rng src fs m] fits one model per response in [fs] over
    the shared design — the multi-output extension of {!fit_cv_p}, one
    model per output in order.

    [fused_outputs] picks the driver. The {e fused} grid (default
    whenever the path method runs the exact sweep unsharded — see
    {!Select.resolve_fused_multi}; an explicit [true] under
    [shards > 1] raises {!Select.Conflict}) selects every output's λ
    from one lockstep grid of outputs×folds fold solvers, generating
    each streamed column once per greedy step for the whole grid. The
    {e per-output} driver runs R independent {!fit_cv_p} calls, each
    seeded with a {!Randkit.Prng.copy} of [rng] (the caller's generator
    is not consumed) — and the fused driver's per-output results are
    bitwise identical to it, at every domain count and in both provider
    forms. Non-path methods ([Ls]/[Stomp]/[Cosamp]) always fit
    per-output.

    [fused] (the per-fold CV driver flag) applies to the per-output
    driver only; the fused grid subsumes it. [cv_checkpoint = base]
    checkpoints output [r] under
    {!Serialize.Checkpoint.Multi.output_base}[ base r] in either mode
    (the fused grid additionally writes a manifest at [base.multi]), so
    a run interrupted in one mode resumes bitwise in the other.

    [notes] supplies one provenance-note array per output.
    @raise Invalid_argument when [fs] is empty or [notes] disagrees in
    length. *)
