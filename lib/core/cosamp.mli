(** CoSaMP — compressive sampling matching pursuit (Needell & Tropp
    2009) — an extension solver with {e backtracking}.

    OMP never revisits a selection; CoSaMP does. Each iteration merges
    the current support with the 2s largest residual correlations,
    least-squares-fits on the merged set (≤ 3s columns), and {e prunes
    back} to the s largest coefficients. Early wrong picks get evicted
    — the failure mode OMP cannot repair — at the price of a bigger LS
    solve per iteration. Completes the greedy family (STAR: no re-fit;
    OMP: re-fit, no pruning; StOMP: batched; CoSaMP: re-fit + pruning). *)

type step = {
  support : int array;  (** support after pruning, sorted *)
  residual_norm : float;
  model : Model.t;
}

val path :
  ?max_iters:int -> ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t -> s:int ->
  step array
(** [path g f ~s] targets sparsity [s]; stops when the residual stalls
    (relative improvement below [tol], default 1e-7), the support
    repeats, the residual is numerically zero, or [max_iters] (default
    50) is reached.
    @raise Invalid_argument when [s] is not in [1, min(K/3, M)] — the
    merged LS solve needs [3s ≤ K]. *)

val fit :
  ?max_iters:int -> ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t -> s:int ->
  Model.t
(** Model of the best (lowest-residual) step of the path. *)
