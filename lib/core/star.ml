open Linalg
module Provider = Polybasis.Design.Provider

type step = {
  index : int;
  coefficient : float;
  residual_norm : float;
  model : Model.t;
}

(* Per-step state machine behind [path_p] — same role as [Omp.Engine]:
   the fused CV driver in [Select] runs Q fold engines in lockstep with
   one fused multi-residual sweep per round. [advance] runs exactly the
   historical loop body, so the fused drive is bitwise identical. *)
module Engine = struct
  type t = {
    k : int;
    m : int;
    kf : float;
    tol : float;
    max_lambda : int;
    f : Vec.t;
    selected : bool array;
    cache : Provider.Cache.t;
    mutable support_rev : int list;
    mutable coeffs_rev : float list;
    res : Vec.t;
    mutable steps_rev : step list;
    mutable stop : bool;
    mutable initial_corr : float;
    mutable p : int;
  }

  let create ?(tol = 1e-12) src f ~max_lambda =
    let k = Provider.rows src and m = Provider.cols src in
    if Array.length f <> k then
      invalid_arg "Star.path: response length mismatch";
    if max_lambda <= 0 then
      invalid_arg "Star.path: max_lambda must be positive";
    if max_lambda > m then
      invalid_arg "Star.path: max_lambda exceeds basis size";
    {
      k;
      m;
      kf = float_of_int k;
      tol;
      max_lambda;
      f;
      selected = Array.make m false;
      cache = Provider.Cache.create src;
      support_rev = [];
      coeffs_rev = [];
      res = Array.copy f;
      steps_rev = [];
      stop = false;
      initial_corr = 0.;
      p = 0;
    }

  let size t = t.p
  let finished t = t.stop || t.p >= t.max_lambda
  let residual t = t.res
  let skip_mask t = t.selected
  let scale t = t.initial_corr
  let column t j = Provider.Cache.column t.cache j
  let support_newest_last t = Array.of_list (List.rev t.support_rev)
  let steps t = Array.of_list (List.rev t.steps_rev)

  (* Accept column [j]: matching-pursuit coefficient from the current
     residual, subtract its contribution. The exact operation order is
     shared by live selection and checkpoint replay, so a resumed path
     reproduces an uninterrupted run bit for bit. *)
  let accept t j =
    let colj = Provider.Cache.column t.cache j in
    let alpha = Vec.dot colj t.res /. t.kf in
    t.selected.(j) <- true;
    t.support_rev <- j :: t.support_rev;
    t.coeffs_rev <- alpha :: t.coeffs_rev;
    t.p <- t.p + 1;
    for i = 0 to t.k - 1 do
      t.res.(i) <- t.res.(i) -. (alpha *. Array.unsafe_get colj i)
    done;
    alpha

  let make_model t =
    Model.make ~basis_size:t.m
      ~support:(Array.of_list t.support_rev)
      ~coeffs:(Array.of_list t.coeffs_rev)

  (* Apply one selection; [Some alpha] when a step was recorded. *)
  let advance t (best, best_abs) =
    if finished t then None
    else begin
      if t.p = 0 then t.initial_corr <- best_abs;
      if best < 0 || best_abs <= t.tol *. Float.max t.initial_corr 1. then begin
        t.stop <- true;
        None
      end
      else begin
        (* Coefficient taken directly from the eq. (18) estimator —
           no re-fit of previously selected coefficients. The selected
           column is materialized once and reused for the residual
           update. *)
        let alpha = accept t best in
        t.steps_rev <-
          {
            index = best;
            coefficient = alpha;
            residual_norm = Vec.nrm2 t.res;
            model = make_model t;
          }
          :: t.steps_rev;
        if Vec.nrm2 t.res <= 1e-14 *. Float.max (Vec.nrm2 t.f) 1. then
          t.stop <- true;
        Some alpha
      end
    end

  let replay t ~scale support =
    if Array.length support > t.max_lambda then
      invalid_arg "Star.path: checkpoint support exceeds max_lambda";
    t.initial_corr <- scale;
    let last_alpha = ref 0. and last_j = ref (-1) in
    Array.iter
      (fun j ->
        if t.selected.(j) then
          invalid_arg "Star.path: duplicate support index in checkpoint";
        last_alpha := accept t j;
        last_j := j)
      support;
    if t.p > 0 then begin
      let rn = Vec.nrm2 t.res in
      t.steps_rev <-
        [
          {
            index = !last_j;
            coefficient = !last_alpha;
            residual_norm = rn;
            model = make_model t;
          };
        ];
      if rn <= 1e-14 *. Float.max (Vec.nrm2 t.f) 1. then t.stop <- true
    end
end

let path_p ?tol ?pool ?(checkpoint_every = 0) ?on_checkpoint ?resume
    ?(sweep = Corr_sweep.Exact) ?(shards = 1)
    ?(shard_mode = Shard_sweep.Domains) ?recovered src f ~max_lambda =
  if checkpoint_every < 0 then
    invalid_arg "Star.path: negative checkpoint interval";
  if shards < 1 then invalid_arg "Star.path: shards must be positive";
  let eng = Engine.create ?tol src f ~max_lambda in
  let k = eng.Engine.k and m = eng.Engine.m in
  let last_ckpt = ref 0 in
  (match resume with
  | None -> ()
  | Some c ->
      let open Serialize.Checkpoint in
      if c.solver <> "star" then
        invalid_arg
          (Printf.sprintf "Star.path: checkpoint is for solver %S" c.solver);
      if c.k <> k || c.m <> m then
        invalid_arg
          (Printf.sprintf
             "Star.path: checkpoint shape %dx%d disagrees with problem %dx%d"
             c.k c.m k m);
      Engine.replay eng ~scale:c.scale c.support);
  last_ckpt := Engine.size eng;
  (* Column-sharded selection engine, created after any resume replay
     (see Omp.path_p). *)
  let sh =
    if shards > 1 then begin
      let e =
        Shard_sweep.create ?pool ~mode:shard_mode ~shards ~sweep src
          ~r0:(Engine.residual eng)
      in
      Array.iter
        (fun j -> Shard_sweep.activate e j (Engine.column eng j))
        (Engine.support_newest_last eng);
      Some e
    end
    else None
  in
  Fun.protect ~finally:(fun () ->
      match sh with
      | Some e ->
          (match recovered with
          | Some r -> r := !r + Shard_sweep.recovered e
          | None -> ());
          Shard_sweep.shutdown e
      | None -> ())
  @@ fun () ->
  let sh_incremental =
    match sweep with Corr_sweep.Incremental _ -> true | Corr_sweep.Exact -> false
  in
  let refresh_every =
    match sweep with
    | Corr_sweep.Incremental { refresh } -> refresh
    | Corr_sweep.Exact -> 0
  in
  let since = ref 0 in
  (* Incremental correlation state — created after any resume replay so
     its initial exact sweep sees the resumed residual (the refresh
     point the uninterrupted run hit when emitting the checkpoint). *)
  let inc =
    match (sweep, sh) with
    | _, Some _ | Corr_sweep.Exact, None -> None
    | Corr_sweep.Incremental { refresh }, None ->
        Some (Corr_sweep.Inc.create ?pool ~refresh src (Engine.residual eng))
  in
  let emit_now () =
    match on_checkpoint with
    | None -> ()
    | Some cb ->
        (* Selection order, newest last — the replay order. *)
        cb
          {
            Serialize.Checkpoint.solver = "star";
            k;
            m;
            scale = Engine.scale eng;
            support = Engine.support_newest_last eng;
          };
        last_ckpt := Engine.size eng;
        (match inc with
        | None -> ()
        | Some ic -> Corr_sweep.Inc.refresh ic (Engine.residual eng));
        (match sh with
        | Some e when sh_incremental ->
            Shard_sweep.refresh e (Engine.residual eng);
            since := 0
        | _ -> ())
  in
  let emit_checkpoint () =
    if checkpoint_every > 0 && Engine.size eng mod checkpoint_every = 0 then
      emit_now ()
  in
  while not (Engine.finished eng) do
    (* Column-parallel eq. (18) sweep, bitwise equal to the sequential
       scan for every domain count; incremental mode scans the
       delta-maintained correlation vector instead. *)
    let pick =
      match (sh, inc) with
      | Some e, _ -> Shard_sweep.select e ~r:(Engine.residual eng)
      | None, None ->
          Corr_sweep.argmax_abs ?pool ~skip:(Engine.skip_mask eng) src
            (Engine.residual eng)
      | None, Some ic ->
          Corr_sweep.Inc.argmax_abs ~skip:(Engine.skip_mask eng) ic
    in
    let best = fst pick in
    match Engine.advance eng pick with
    | None -> ()
    | Some alpha ->
        (match (sh, inc) with
        | Some e, _ ->
            Shard_sweep.activate e best (Engine.column eng best);
            if sh_incremental then begin
              (* Matching pursuit never revisits coefficients: the only
                 delta this step is α on the entering column. *)
              Shard_sweep.apply_deltas e [| (best, alpha) |];
              incr since;
              if refresh_every > 0 && !since >= refresh_every then begin
                Shard_sweep.refresh e (Engine.residual eng);
                since := 0
              end
            end
        | None, None -> ()
        | None, Some ic ->
            Corr_sweep.Inc.ensure_gram ic best (Engine.column eng best);
            Corr_sweep.Inc.apply_deltas ic [| (best, alpha) |];
            Corr_sweep.Inc.note_step ic;
            if Corr_sweep.Inc.due ic then
              Corr_sweep.Inc.refresh ic (Engine.residual eng));
        emit_checkpoint ()
  done;
  (* Terminal checkpoint: when lambda is not a multiple of the cadence
     the mod test above skips the final selections, and a resume would
     replay a stale prefix — always leave the completed support. *)
  if Engine.size eng > !last_ckpt then emit_now ();
  Engine.steps eng

let fit_p ?tol ?pool ?checkpoint_every ?on_checkpoint ?resume ?sweep ?shards
    ?shard_mode ?recovered src f ~lambda =
  let steps =
    path_p ?tol ?pool ?checkpoint_every ?on_checkpoint ?resume ?sweep ?shards
      ?shard_mode ?recovered src f ~max_lambda:lambda
  in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model

let path ?tol ?pool g f ~max_lambda =
  path_p ?tol ?pool (Provider.dense g) f ~max_lambda

let fit ?tol ?pool g f ~lambda = fit_p ?tol ?pool (Provider.dense g) f ~lambda
