open Linalg
module Provider = Polybasis.Design.Provider

type step = {
  index : int;
  coefficient : float;
  residual_norm : float;
  model : Model.t;
}

let path_p ?(tol = 1e-12) ?pool ?(checkpoint_every = 0) ?on_checkpoint ?resume
    src f ~max_lambda =
  let k = Provider.rows src and m = Provider.cols src in
  if Array.length f <> k then invalid_arg "Star.path: response length mismatch";
  if max_lambda <= 0 then invalid_arg "Star.path: max_lambda must be positive";
  if max_lambda > m then invalid_arg "Star.path: max_lambda exceeds basis size";
  if checkpoint_every < 0 then
    invalid_arg "Star.path: negative checkpoint interval";
  let kf = float_of_int k in
  let selected = Array.make m false in
  let cache = Provider.Cache.create src in
  let support = ref [] and coeffs = ref [] in
  let res = Array.copy f in
  let steps = ref [] in
  let stop = ref false in
  let initial_corr = ref 0. in
  let p = ref 0 in
  (* Accept column [j]: matching-pursuit coefficient from the current
     residual, subtract its contribution. The exact operation order is
     shared by live selection and checkpoint replay, so a resumed path
     reproduces an uninterrupted run bit for bit. *)
  let accept j =
    let colj = Provider.Cache.column cache j in
    let alpha = Vec.dot colj res /. kf in
    selected.(j) <- true;
    support := j :: !support;
    coeffs := alpha :: !coeffs;
    incr p;
    for i = 0 to k - 1 do
      res.(i) <- res.(i) -. (alpha *. Array.unsafe_get colj i)
    done;
    alpha
  in
  let make_model () =
    Model.make ~basis_size:m
      ~support:(Array.of_list !support)
      ~coeffs:(Array.of_list !coeffs)
  in
  let last_ckpt = ref 0 in
  let emit_now () =
    match on_checkpoint with
    | None -> ()
    | Some cb ->
        (* Selection order, newest last — the replay order. *)
        cb
          {
            Serialize.Checkpoint.solver = "star";
            k;
            m;
            scale = !initial_corr;
            support = Array.of_list (List.rev !support);
          };
        last_ckpt := !p
  in
  let emit_checkpoint () =
    if checkpoint_every > 0 && !p mod checkpoint_every = 0 then emit_now ()
  in
  (match resume with
  | None -> ()
  | Some c ->
      let open Serialize.Checkpoint in
      if c.solver <> "star" then
        invalid_arg
          (Printf.sprintf "Star.path: checkpoint is for solver %S" c.solver);
      if c.k <> k || c.m <> m then
        invalid_arg
          (Printf.sprintf
             "Star.path: checkpoint shape %dx%d disagrees with problem %dx%d"
             c.k c.m k m);
      if Array.length c.support > max_lambda then
        invalid_arg "Star.path: checkpoint support exceeds max_lambda";
      initial_corr := c.scale;
      let last_alpha = ref 0. and last_j = ref (-1) in
      Array.iter
        (fun j ->
          if selected.(j) then
            invalid_arg "Star.path: duplicate support index in checkpoint";
          last_alpha := accept j;
          last_j := j)
        c.support;
      if !p > 0 then begin
        let rn = Vec.nrm2 res in
        steps :=
          [
            {
              index = !last_j;
              coefficient = !last_alpha;
              residual_norm = rn;
              model = make_model ();
            };
          ];
        if rn <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
      end);
  last_ckpt := !p;
  while (not !stop) && !p < max_lambda do
    (* Column-parallel eq. (18) sweep, bitwise equal to the sequential
       scan for every domain count. *)
    let best, best_abs = Corr_sweep.argmax_abs ?pool ~skip:selected src res in
    if !p = 0 then initial_corr := best_abs;
    if best < 0 || best_abs <= tol *. Float.max !initial_corr 1. then
      stop := true
    else begin
      (* Coefficient taken directly from the eq. (18) estimator —
         no re-fit of previously selected coefficients. The selected
         column is materialized once and reused for the residual
         update. *)
      let alpha = accept best in
      steps :=
        {
          index = best;
          coefficient = alpha;
          residual_norm = Vec.nrm2 res;
          model = make_model ();
        }
        :: !steps;
      emit_checkpoint ();
      if Vec.nrm2 res <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
    end
  done;
  (* Terminal checkpoint: when lambda is not a multiple of the cadence
     the mod test above skips the final selections, and a resume would
     replay a stale prefix — always leave the completed support. *)
  if !p > !last_ckpt then emit_now ();
  Array.of_list (List.rev !steps)

let fit_p ?tol ?pool ?checkpoint_every ?on_checkpoint ?resume src f ~lambda =
  let steps =
    path_p ?tol ?pool ?checkpoint_every ?on_checkpoint ?resume src f
      ~max_lambda:lambda
  in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Provider.cols src) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model

let path ?tol ?pool g f ~max_lambda =
  path_p ?tol ?pool (Provider.dense g) f ~max_lambda

let fit ?tol ?pool g f ~lambda = fit_p ?tol ?pool (Provider.dense g) f ~lambda
