(** Degradation ladder for the active-set least-squares re-fit.

    The greedy solvers re-fit the coefficients of their selected columns
    every iteration through a growing Cholesky factor of the Gram
    matrix. On clean data that factor is SPD by construction; on
    corrupted or degenerate data (duplicated basis columns, a sample set
    too small for the support, outlier-poisoned correlations) the
    factorization raises {!Linalg.Cholesky.Not_positive_definite}. When
    a solver runs with [~on_singular:`Fallback], it routes the re-fit
    through this ladder instead of aborting:

    + normal equations via Cholesky (the fast path, [Direct]);
    + Householder QR on the K×p active-column matrix ([Qr_fallback]);
    + ridge-jittered normal equations with an escalating jitter
      ([Ridge_fallback]), which always succeeds.

    Which rung fired is recorded in the fitted {!Model.t}'s notes. *)

type fallback =
  | Direct  (** plain Cholesky succeeded — no degradation *)
  | Qr_fallback  (** Cholesky failed; QR least squares succeeded *)
  | Ridge_fallback of float
      (** QR failed too; solved with this L2 jitter on the Gram diagonal *)

val note : fallback -> string option
(** Model-metadata note for a fallback, [None] for [Direct]. *)

val solve_cols : Linalg.Vec.t array -> Linalg.Vec.t -> Linalg.Vec.t * fallback
(** [solve_cols cols f] is the least-squares coefficient vector for
    [argmin ‖cols·x − f‖₂] over the materialized active columns,
    together with the ladder rung that produced it. An empty column set
    returns [([||], Direct)]. *)
