(** Ridge (L2-regularized) regression — an extension baseline.

    Solves [(GᵀG + λ_reg·I)·α = Gᵀ·F]. Unlike the L0/L1 methods it
    produces dense coefficients, but it is well-posed even for
    underdetermined systems, making it a useful control: it shows that
    {e shrinkage alone}, without sparsity, does not reach the paper's
    accuracy at small K (ablation bench A1). *)

val fit :
  ?unpenalized:int array -> Linalg.Mat.t -> Linalg.Vec.t -> reg:float ->
  Model.t
(** [unpenalized] lists columns exempt from the L2 penalty — pass
    [[|0|]] when column 0 is the constant basis, so a large response
    mean is absorbed by the intercept instead of being shrunk away.
    @raise Invalid_argument when [reg <= 0] (the unregularized case is
    [Ls.fit]) or an exempt column is out of range. *)

val fit_cv :
  ?unpenalized:int array -> Randkit.Prng.t -> folds:int -> regs:float array ->
  Linalg.Mat.t -> Linalg.Vec.t -> Model.t * float
(** Pick the regularization weight by Q-fold cross-validation over the
    candidate grid; returns the refit on all data and the chosen weight. *)
