let to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "rsm-model 1\n";
  (* Notes ride as comment lines: older parsers skip them, this one
     round-trips them. Newlines inside a note would break the framing. *)
  Array.iter
    (fun note ->
      let flat =
        String.map (function '\n' | '\r' -> ' ' | c -> c) note
      in
      Buffer.add_string buf ("#note " ^ flat ^ "\n"))
    (Model.notes m);
  Buffer.add_string buf (Printf.sprintf "basis_size %d\n" m.Model.basis_size);
  Buffer.add_string buf (Printf.sprintf "nnz %d\n" (Model.nnz m));
  Array.iteri
    (fun p j ->
      Buffer.add_string buf (Printf.sprintf "%d %.17g\n" j m.Model.coeffs.(p)))
    m.Model.support;
  Buffer.contents buf

let note_prefix = "#note "

let of_string s =
  let raw = String.split_on_char '\n' s |> List.map String.trim in
  let notes =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:note_prefix l then
          Some (String.sub l (String.length note_prefix)
                  (String.length l - String.length note_prefix))
        else None)
      raw
  in
  let lines =
    raw
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | header :: rest when String.trim header = "rsm-model 1" -> (
      let parse_field name line =
        match String.split_on_char ' ' line with
        | [ key; v ] when key = name -> int_of_string_opt v
        | _ -> None
      in
      match rest with
      | size_line :: nnz_line :: coeff_lines -> (
          match
            (parse_field "basis_size" size_line, parse_field "nnz" nnz_line)
          with
          | Some basis_size, Some nnz ->
              if basis_size < 0 then Error "negative basis_size"
              else if List.length coeff_lines <> nnz then
                Error
                  (Printf.sprintf "expected %d coefficient lines, found %d" nnz
                     (List.length coeff_lines))
              else begin
                let parsed =
                  List.map
                    (fun line ->
                      match String.split_on_char ' ' line with
                      | [ idx; value ] -> (
                          match
                            (int_of_string_opt idx, float_of_string_opt value)
                          with
                          | Some i, Some v -> Ok (i, v)
                          | _ -> Error ("malformed coefficient line: " ^ line))
                      | _ -> Error ("malformed coefficient line: " ^ line))
                    coeff_lines
                in
                let rec collect acc = function
                  | [] -> Ok (List.rev acc)
                  | Ok x :: tl -> collect (x :: acc) tl
                  | Error e :: _ -> Error e
                in
                match collect [] parsed with
                | Error e -> Error e
                | Ok pairs -> (
                    let support = Array.of_list (List.map fst pairs) in
                    let coeffs = Array.of_list (List.map snd pairs) in
                    match Model.make ~basis_size ~support ~coeffs with
                    | m -> Ok (Model.with_notes m (Array.of_list notes))
                    | exception Invalid_argument e -> Error e)
              end
          | _ -> Error "missing basis_size or nnz header field")
      | _ -> Error "truncated header")
  | first :: _ -> Error ("unrecognized header: " ^ first)
  | [] -> Error "empty input"

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))

(* FNV-1a 64 over raw bytes: the content digest the serving registry
   keys compiled tapes by. Same primitive as the checkpoint digests,
   but over the serialized text instead of float bit patterns. *)
let digest_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let digest m = digest_string (to_string m)

let file_digest path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (digest_string (really_input_string ic n)))

let term_expression t =
  if Array.length t = 0 then ""
  else
    String.concat "*"
      (Array.to_list
         (Array.map
            (fun (v, d) ->
              match d with
              | 1 -> Printf.sprintf "y%d" v
              | 2 -> Printf.sprintf "((y%d^2 - 1)/sqrt2)" v
              | 3 -> Printf.sprintf "((y%d^3 - 3*y%d)/sqrt6)" v v
              | _ -> Printf.sprintf "He%d(y%d)" d v)
            t))

let to_expression m basis =
  if Polybasis.Basis.size basis <> m.Model.basis_size then
    invalid_arg "Serialize.to_expression: basis size disagrees with model";
  if Model.nnz m = 0 then "f = 0"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "f =";
    Array.iteri
      (fun p j ->
        let c = m.Model.coeffs.(p) in
        let term = Polybasis.Basis.term basis j in
        let sign = if c >= 0. then (if p = 0 then " " else " + ") else " - " in
        Buffer.add_string buf sign;
        Buffer.add_string buf (Printf.sprintf "%.6g" (Float.abs c));
        let e = term_expression term in
        if e <> "" then begin
          Buffer.add_char buf '*';
          Buffer.add_string buf e
        end)
      m.Model.support;
    Buffer.contents buf
  end

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          of_string s)

module Checkpoint = struct
  type t = {
    solver : string;
    k : int;
    m : int;
    scale : float;
    support : int array;
  }

  let to_string c =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "rsm-ckpt 1\n";
    Buffer.add_string buf (Printf.sprintf "solver %s\n" c.solver);
    Buffer.add_string buf (Printf.sprintf "k %d\n" c.k);
    Buffer.add_string buf (Printf.sprintf "m %d\n" c.m);
    Buffer.add_string buf (Printf.sprintf "scale %.17g\n" c.scale);
    Buffer.add_string buf (Printf.sprintf "iter %d\n" (Array.length c.support));
    Buffer.add_string buf "support";
    Array.iter (fun j -> Buffer.add_string buf (Printf.sprintf " %d" j)) c.support;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let field name conv line =
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name -> (
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match conv (String.trim rest) with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "malformed %s field: %s" name line))
      | _ -> Error (Printf.sprintf "expected '%s <value>', got: %s" name line)
    in
    let ( let* ) = Result.bind in
    match lines with
    | header :: solver_l :: k_l :: m_l :: scale_l :: iter_l :: support_l :: []
      when header = "rsm-ckpt 1" ->
        let* solver = field "solver" Option.some solver_l in
        let* k = field "k" int_of_string_opt k_l in
        let* m = field "m" int_of_string_opt m_l in
        let* scale = field "scale" float_of_string_opt scale_l in
        let* iter = field "iter" int_of_string_opt iter_l in
        let* support =
          field "support"
            (fun rest ->
              let toks =
                String.split_on_char ' ' rest
                |> List.filter (fun t -> t <> "")
              in
              let parsed = List.map int_of_string_opt toks in
              if List.exists Option.is_none parsed then None
              else Some (Array.of_list (List.map Option.get parsed)))
            support_l
        in
        if k <= 0 || m <= 0 then Error "non-positive problem shape"
        else if not (Float.is_finite scale) then Error "non-finite scale"
        else if Array.length support <> iter then
          Error
            (Printf.sprintf "iter %d disagrees with %d support entries" iter
               (Array.length support))
        else if Array.exists (fun j -> j < 0 || j >= m) support then
          Error "support index out of range"
        else Ok { solver; k; m; scale; support }
    | first :: _ when first <> "rsm-ckpt 1" ->
        Error ("unrecognized checkpoint header: " ^ first)
    | _ -> Error "truncated checkpoint"

  (* Write-then-rename: a crash mid-write never clobbers the previous
     good checkpoint, which is the whole point of having one. *)
  let atomic_write path s =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s);
    Sys.rename tmp path

  let read_file path of_string =
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            of_string (really_input_string ic n))

  let save path c = atomic_write path (to_string c)

  let load path = read_file path of_string

  (* FNV-1a over the raw bytes, the state-digest primitive of the LARS
     and CV checkpoint records. *)
  let fnv_offset = 0xcbf29ce484222325L
  let fnv_prime = 0x100000001b3L

  let fnv_fold_int64 h bits =
    let h = ref h in
    for b = 0 to 7 do
      let byte =
        Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * b)) 0xffL)
      in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
    done;
    !h

  let digest_floats v =
    Array.fold_left
      (fun h x -> fnv_fold_int64 h (Int64.bits_of_float x))
      fnv_offset v

  let digest_ints v =
    Array.fold_left (fun h x -> fnv_fold_int64 h (Int64.of_int x)) fnv_offset v

  (* Shared line-parsing helpers for the v2 records. *)
  let field_of name conv line =
    let fail () =
      Error (Printf.sprintf "expected '%s <value>', got: %s" name line)
    in
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = name -> (
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match conv (String.trim rest) with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "malformed %s field: %s" name line))
    | None when line = name -> (
        (* A list field with zero elements prints as the bare name. *)
        match conv "" with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "malformed %s field: %s" name line))
    | _ -> fail ()

  let int_list_of_string s =
    let toks = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
    let parsed = List.map int_of_string_opt toks in
    if List.exists Option.is_none parsed then None
    else Some (Array.of_list (List.map Option.get parsed))

  let hex64_of_string s =
    match Int64.of_string_opt ("0x" ^ s) with Some v -> Some v | None -> None

  let rec take_fields acc n parse = function
    | rest when n = 0 -> Ok (List.rev acc, rest)
    | [] -> Error "truncated checkpoint: missing repeated fields"
    | line :: rest -> (
        match parse line with
        | Ok v -> take_fields (v :: acc) (n - 1) parse rest
        | Error e -> Error e)

  module Lars = struct
    type event = {
      added : int;  (* entering column, or -1 *)
      banned : int;  (* column banned as dependent this step, or -1 *)
      dropped : int;  (* lasso drop, or -1 *)
      gamma : float;  (* the step length actually taken *)
    }

    type t = {
      mode : string;
      k : int;
      m : int;
      scale : float;
      active : int array;
      signs : float array;
      banned : int array;
      events : event array;
      notes : string array;
      mu_digest : int64;
      beta_digest : int64;
    }

    let digest = digest_floats

    let to_string c =
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "rsm-ckpt 2\n";
      Buffer.add_string buf "solver lars\n";
      Buffer.add_string buf (Printf.sprintf "mode %s\n" c.mode);
      Buffer.add_string buf (Printf.sprintf "k %d\n" c.k);
      Buffer.add_string buf (Printf.sprintf "m %d\n" c.m);
      Buffer.add_string buf (Printf.sprintf "scale %.17g\n" c.scale);
      let ints name a =
        Buffer.add_string buf name;
        Array.iter (fun j -> Buffer.add_string buf (Printf.sprintf " %d" j)) a;
        Buffer.add_char buf '\n'
      in
      ints "active" c.active;
      ints "signs" (Array.map (fun s -> if s >= 0. then 1 else -1) c.signs);
      ints "banned" c.banned;
      Buffer.add_string buf (Printf.sprintf "nsteps %d\n" (Array.length c.events));
      Array.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "event %d %d %d %.17g\n" e.added e.banned e.dropped
               e.gamma))
        c.events;
      Buffer.add_string buf (Printf.sprintf "nnotes %d\n" (Array.length c.notes));
      Array.iter
        (fun note ->
          let flat =
            String.map (function '\n' | '\r' -> ' ' | ch -> ch) note
          in
          Buffer.add_string buf (Printf.sprintf "note %s\n" flat))
        c.notes;
      Buffer.add_string buf (Printf.sprintf "mu_digest %Lx\n" c.mu_digest);
      Buffer.add_string buf (Printf.sprintf "beta_digest %Lx\n" c.beta_digest);
      Buffer.contents buf

    let of_string s =
      let lines =
        String.split_on_char '\n' s
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      let ( let* ) = Result.bind in
      match lines with
      | header :: solver_l :: mode_l :: k_l :: m_l :: scale_l :: active_l
        :: signs_l :: banned_l :: nsteps_l :: rest
        when header = "rsm-ckpt 2" ->
          let* solver = field_of "solver" Option.some solver_l in
          if solver <> "lars" then
            Error ("checkpoint is for solver " ^ solver ^ ", expected lars")
          else
            let* mode = field_of "mode" Option.some mode_l in
            let* k = field_of "k" int_of_string_opt k_l in
            let* m = field_of "m" int_of_string_opt m_l in
            let* scale = field_of "scale" float_of_string_opt scale_l in
            let* active = field_of "active" int_list_of_string active_l in
            let* sign_ints = field_of "signs" int_list_of_string signs_l in
            let* banned = field_of "banned" int_list_of_string banned_l in
            let* nsteps = field_of "nsteps" int_of_string_opt nsteps_l in
            let parse_event line =
              match
                String.split_on_char ' ' line
                |> List.filter (fun t -> t <> "")
              with
              | [ "event"; a; b; d; g ] -> (
                  match
                    ( int_of_string_opt a,
                      int_of_string_opt b,
                      int_of_string_opt d,
                      float_of_string_opt g )
                  with
                  | Some added, Some banned, Some dropped, Some gamma ->
                      Ok { added; banned; dropped; gamma }
                  | _ -> Error ("malformed event line: " ^ line))
              | _ -> Error ("malformed event line: " ^ line)
            in
            let* events, rest = take_fields [] nsteps parse_event rest in
            let* nnotes, rest =
              match rest with
              | l :: rest ->
                  let* n = field_of "nnotes" int_of_string_opt l in
                  if n < 0 then Error "negative note count" else Ok (n, rest)
              | [] -> Error "truncated checkpoint: missing nnotes"
            in
            let* notes, rest =
              take_fields [] nnotes (field_of "note" Option.some) rest
            in
            let* mu_digest, beta_digest =
              match rest with
              | [ mu_l; beta_l ] ->
                  let* mu = field_of "mu_digest" hex64_of_string mu_l in
                  let* beta = field_of "beta_digest" hex64_of_string beta_l in
                  Ok (mu, beta)
              | _ -> Error "truncated checkpoint: missing state digests"
            in
            if k <= 0 || m <= 0 then Error "non-positive problem shape"
            else if mode <> "lar" && mode <> "lasso" then
              Error ("unknown lars mode: " ^ mode)
            else if not (Float.is_finite scale) then Error "non-finite scale"
            else if Array.length sign_ints <> Array.length active then
              Error "signs do not align with the active set"
            else if
              Array.exists (fun j -> j < 0 || j >= m) active
              || Array.exists (fun j -> j < 0 || j >= m) banned
            then Error "column index out of range"
            else if Array.exists (fun v -> v <> 1 && v <> -1) sign_ints then
              Error "signs must be +/-1"
            else if
              List.exists
                (fun e ->
                  e.added < -1 || e.added >= m || e.banned < -1 || e.banned >= m
                  || e.dropped < -1 || e.dropped >= m
                  || not (Float.is_finite e.gamma))
                events
            then Error "event out of range or non-finite gamma"
            else
              Ok
                {
                  mode;
                  k;
                  m;
                  scale;
                  active;
                  signs = Array.map float_of_int sign_ints;
                  banned;
                  events = Array.of_list events;
                  notes = Array.of_list notes;
                  mu_digest;
                  beta_digest;
                }
      | first :: _ when first <> "rsm-ckpt 2" ->
          Error ("unrecognized checkpoint header: " ^ first)
      | _ -> Error "truncated checkpoint"

    let save path c = atomic_write path (to_string c)

    let load path = read_file path of_string
  end

  module Cv = struct
    type t = {
      fold : int;
      folds : int;
      n : int;
      max_lambda : int;
      plan_digest : int64;
      curve : float array;
    }

    let plan_digest = digest_ints

    let fold_file base q = Printf.sprintf "%s.fold%d" base q

    let to_string c =
      let buf = Buffer.create 512 in
      Buffer.add_string buf "rsm-cv-ckpt 1\n";
      Buffer.add_string buf (Printf.sprintf "fold %d\n" c.fold);
      Buffer.add_string buf (Printf.sprintf "folds %d\n" c.folds);
      Buffer.add_string buf (Printf.sprintf "n %d\n" c.n);
      Buffer.add_string buf (Printf.sprintf "max_lambda %d\n" c.max_lambda);
      Buffer.add_string buf (Printf.sprintf "plan_digest %Lx\n" c.plan_digest);
      Buffer.add_string buf "curve";
      Array.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf " %.17g" e))
        c.curve;
      Buffer.add_char buf '\n';
      Buffer.contents buf

    let of_string s =
      let lines =
        String.split_on_char '\n' s
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      let ( let* ) = Result.bind in
      match lines with
      | [ header; fold_l; folds_l; n_l; ml_l; digest_l; curve_l ]
        when header = "rsm-cv-ckpt 1" ->
          let* fold = field_of "fold" int_of_string_opt fold_l in
          let* folds = field_of "folds" int_of_string_opt folds_l in
          let* n = field_of "n" int_of_string_opt n_l in
          let* max_lambda = field_of "max_lambda" int_of_string_opt ml_l in
          let* plan_digest = field_of "plan_digest" hex64_of_string digest_l in
          let* curve =
            field_of "curve"
              (fun rest ->
                let toks =
                  String.split_on_char ' ' rest
                  |> List.filter (fun t -> t <> "")
                in
                let parsed = List.map float_of_string_opt toks in
                if List.exists Option.is_none parsed then None
                else Some (Array.of_list (List.map Option.get parsed)))
              curve_l
          in
          if folds < 2 then Error "fewer than 2 folds"
          else if fold < 0 || fold >= folds then Error "fold index out of range"
          else if n <= 0 then Error "non-positive sample count"
          else if max_lambda <= 0 then Error "non-positive max_lambda"
          else if Array.length curve <> max_lambda then
            Error
              (Printf.sprintf "curve has %d entries, expected %d"
                 (Array.length curve) max_lambda)
          else Ok { fold; folds; n; max_lambda; plan_digest; curve }
      | first :: _ when first <> "rsm-cv-ckpt 1" ->
          Error ("unrecognized fold-checkpoint header: " ^ first)
      | _ -> Error "truncated fold checkpoint"

    let save path c = atomic_write path (to_string c)

    let load path = read_file path of_string
  end

  (* Multi-output CV manifest: one file naming the (outputs × folds)
     grid, with each output's fold curves checkpointed as ordinary Cv
     files under a per-output base — a resumed multi-output sweep
     validates the grid shape once here and then reuses the whole Cv
     load/validate path per fold file. *)
  module Multi = struct
    type t = {
      outputs : int;
      folds : int;
      n : int;
      max_lambda : int;
      plan_digest : int64;
    }

    let manifest_file base = base ^ ".multi"

    let output_base base r = Printf.sprintf "%s.out%d" base r

    let to_string c =
      let buf = Buffer.create 128 in
      Buffer.add_string buf "rsm-multi-ckpt 1\n";
      Buffer.add_string buf (Printf.sprintf "outputs %d\n" c.outputs);
      Buffer.add_string buf (Printf.sprintf "folds %d\n" c.folds);
      Buffer.add_string buf (Printf.sprintf "n %d\n" c.n);
      Buffer.add_string buf (Printf.sprintf "max_lambda %d\n" c.max_lambda);
      Buffer.add_string buf (Printf.sprintf "plan_digest %Lx\n" c.plan_digest);
      Buffer.contents buf

    let of_string s =
      let lines =
        String.split_on_char '\n' s
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      let ( let* ) = Result.bind in
      match lines with
      | [ header; outputs_l; folds_l; n_l; ml_l; digest_l ]
        when header = "rsm-multi-ckpt 1" ->
          let* outputs = field_of "outputs" int_of_string_opt outputs_l in
          let* folds = field_of "folds" int_of_string_opt folds_l in
          let* n = field_of "n" int_of_string_opt n_l in
          let* max_lambda = field_of "max_lambda" int_of_string_opt ml_l in
          let* plan_digest = field_of "plan_digest" hex64_of_string digest_l in
          if outputs < 1 then Error "non-positive output count"
          else if folds < 2 then Error "fewer than 2 folds"
          else if n <= 0 then Error "non-positive sample count"
          else if max_lambda <= 0 then Error "non-positive max_lambda"
          else Ok { outputs; folds; n; max_lambda; plan_digest }
      | first :: _ when first <> "rsm-multi-ckpt 1" ->
          Error ("unrecognized multi-checkpoint header: " ^ first)
      | _ -> Error "truncated multi checkpoint"

    let save path c = atomic_write path (to_string c)

    let load path = read_file path of_string
  end
end
