let to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "rsm-model 1\n";
  (* Notes ride as comment lines: older parsers skip them, this one
     round-trips them. Newlines inside a note would break the framing. *)
  Array.iter
    (fun note ->
      let flat =
        String.map (function '\n' | '\r' -> ' ' | c -> c) note
      in
      Buffer.add_string buf ("#note " ^ flat ^ "\n"))
    (Model.notes m);
  Buffer.add_string buf (Printf.sprintf "basis_size %d\n" m.Model.basis_size);
  Buffer.add_string buf (Printf.sprintf "nnz %d\n" (Model.nnz m));
  Array.iteri
    (fun p j ->
      Buffer.add_string buf (Printf.sprintf "%d %.17g\n" j m.Model.coeffs.(p)))
    m.Model.support;
  Buffer.contents buf

let note_prefix = "#note "

let of_string s =
  let raw = String.split_on_char '\n' s |> List.map String.trim in
  let notes =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:note_prefix l then
          Some (String.sub l (String.length note_prefix)
                  (String.length l - String.length note_prefix))
        else None)
      raw
  in
  let lines =
    raw
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | header :: rest when String.trim header = "rsm-model 1" -> (
      let parse_field name line =
        match String.split_on_char ' ' line with
        | [ key; v ] when key = name -> int_of_string_opt v
        | _ -> None
      in
      match rest with
      | size_line :: nnz_line :: coeff_lines -> (
          match
            (parse_field "basis_size" size_line, parse_field "nnz" nnz_line)
          with
          | Some basis_size, Some nnz ->
              if basis_size < 0 then Error "negative basis_size"
              else if List.length coeff_lines <> nnz then
                Error
                  (Printf.sprintf "expected %d coefficient lines, found %d" nnz
                     (List.length coeff_lines))
              else begin
                let parsed =
                  List.map
                    (fun line ->
                      match String.split_on_char ' ' line with
                      | [ idx; value ] -> (
                          match
                            (int_of_string_opt idx, float_of_string_opt value)
                          with
                          | Some i, Some v -> Ok (i, v)
                          | _ -> Error ("malformed coefficient line: " ^ line))
                      | _ -> Error ("malformed coefficient line: " ^ line))
                    coeff_lines
                in
                let rec collect acc = function
                  | [] -> Ok (List.rev acc)
                  | Ok x :: tl -> collect (x :: acc) tl
                  | Error e :: _ -> Error e
                in
                match collect [] parsed with
                | Error e -> Error e
                | Ok pairs -> (
                    let support = Array.of_list (List.map fst pairs) in
                    let coeffs = Array.of_list (List.map snd pairs) in
                    match Model.make ~basis_size ~support ~coeffs with
                    | m -> Ok (Model.with_notes m (Array.of_list notes))
                    | exception Invalid_argument e -> Error e)
              end
          | _ -> Error "missing basis_size or nnz header field")
      | _ -> Error "truncated header")
  | first :: _ -> Error ("unrecognized header: " ^ first)
  | [] -> Error "empty input"

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))

let term_expression t =
  if Array.length t = 0 then ""
  else
    String.concat "*"
      (Array.to_list
         (Array.map
            (fun (v, d) ->
              match d with
              | 1 -> Printf.sprintf "y%d" v
              | 2 -> Printf.sprintf "((y%d^2 - 1)/sqrt2)" v
              | 3 -> Printf.sprintf "((y%d^3 - 3*y%d)/sqrt6)" v v
              | _ -> Printf.sprintf "He%d(y%d)" d v)
            t))

let to_expression m basis =
  if Polybasis.Basis.size basis <> m.Model.basis_size then
    invalid_arg "Serialize.to_expression: basis size disagrees with model";
  if Model.nnz m = 0 then "f = 0"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "f =";
    Array.iteri
      (fun p j ->
        let c = m.Model.coeffs.(p) in
        let term = Polybasis.Basis.term basis j in
        let sign = if c >= 0. then (if p = 0 then " " else " + ") else " - " in
        Buffer.add_string buf sign;
        Buffer.add_string buf (Printf.sprintf "%.6g" (Float.abs c));
        let e = term_expression term in
        if e <> "" then begin
          Buffer.add_char buf '*';
          Buffer.add_string buf e
        end)
      m.Model.support;
    Buffer.contents buf
  end

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          of_string s)

module Checkpoint = struct
  type t = {
    solver : string;
    k : int;
    m : int;
    scale : float;
    support : int array;
  }

  let to_string c =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "rsm-ckpt 1\n";
    Buffer.add_string buf (Printf.sprintf "solver %s\n" c.solver);
    Buffer.add_string buf (Printf.sprintf "k %d\n" c.k);
    Buffer.add_string buf (Printf.sprintf "m %d\n" c.m);
    Buffer.add_string buf (Printf.sprintf "scale %.17g\n" c.scale);
    Buffer.add_string buf (Printf.sprintf "iter %d\n" (Array.length c.support));
    Buffer.add_string buf "support";
    Array.iter (fun j -> Buffer.add_string buf (Printf.sprintf " %d" j)) c.support;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let field name conv line =
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name -> (
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match conv (String.trim rest) with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "malformed %s field: %s" name line))
      | _ -> Error (Printf.sprintf "expected '%s <value>', got: %s" name line)
    in
    let ( let* ) = Result.bind in
    match lines with
    | header :: solver_l :: k_l :: m_l :: scale_l :: iter_l :: support_l :: []
      when header = "rsm-ckpt 1" ->
        let* solver = field "solver" Option.some solver_l in
        let* k = field "k" int_of_string_opt k_l in
        let* m = field "m" int_of_string_opt m_l in
        let* scale = field "scale" float_of_string_opt scale_l in
        let* iter = field "iter" int_of_string_opt iter_l in
        let* support =
          field "support"
            (fun rest ->
              let toks =
                String.split_on_char ' ' rest
                |> List.filter (fun t -> t <> "")
              in
              let parsed = List.map int_of_string_opt toks in
              if List.exists Option.is_none parsed then None
              else Some (Array.of_list (List.map Option.get parsed)))
            support_l
        in
        if k <= 0 || m <= 0 then Error "non-positive problem shape"
        else if not (Float.is_finite scale) then Error "non-finite scale"
        else if Array.length support <> iter then
          Error
            (Printf.sprintf "iter %d disagrees with %d support entries" iter
               (Array.length support))
        else if Array.exists (fun j -> j < 0 || j >= m) support then
          Error "support index out of range"
        else Ok { solver; k; m; scale; support }
    | first :: _ when first <> "rsm-ckpt 1" ->
        Error ("unrecognized checkpoint header: " ^ first)
    | _ -> Error "truncated checkpoint"

  let save path c =
    (* Write-then-rename: a crash mid-write never clobbers the previous
       good checkpoint, which is the whole point of having one. *)
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string c));
    Sys.rename tmp path

  let load path =
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            of_string (really_input_string ic n))
end
