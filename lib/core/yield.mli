(** Parametric-yield estimation from fitted performance models.

    The downstream use of RSM the paper's introduction motivates: once
    [f(ΔY)] is an analytic model, performance distributions and yield
    come from cheap model evaluations instead of transistor-level
    simulation. Three estimators:

    - {!gaussian}: exact for {e linear} models — a linear combination
      of standard normals is N(α₀, Σα²).
    - {!monte_carlo}: model Monte Carlo for any model (e.g. quadratic),
      with a binomial standard error.
    - {!monte_carlo_values}: the raw model samples, for histograms and
      quantiles.

    {2 Evaluation cost: naive vs compiled}

    By default each sample is evaluated by [Model.predict_point] — a
    term-by-term walk that re-runs the 1-D Hermite recurrence for every
    factor of every term. That is already independent of the dictionary
    size [M], but a variable shared by ten support terms pays for its
    polynomial values ten times per point. For serving-scale runs
    (10⁷–10⁸ samples) pass [?eval] a compiled instruction tape
    ([Serve.Eval.evaluator]), which hoists the shared Hermite
    recurrences — once per touched variable per point — and is bitwise
    equal to the naive walk; or use [Serve.Stream], which streams
    batches through a domain pool without materializing the sample
    array. See SERVING.md. *)

type spec = { lower : float; upper : float }
(** Acceptance window; use [neg_infinity]/[infinity] for one-sided
    specs. *)

val spec_both : lower:float -> upper:float -> spec

val spec_min : float -> spec
(** Lower-bounded spec ("gain ≥ 60 dB"). *)

val spec_max : float -> spec
(** Upper-bounded spec ("delay ≤ 1 ns"). *)

val gaussian : Model.t -> Polybasis.Basis.t -> spec -> float
(** Closed-form yield assuming the model is linear in the factors.
    @raise Invalid_argument if the model contains any term of degree
    ≥ 2 (the Gaussian assumption would be wrong — use
    {!monte_carlo}). *)

val monte_carlo_values :
  ?samples:int ->
  ?eval:(Linalg.Vec.t -> float) ->
  ?sampler:Randkit.Gaussian.sampler ->
  ?touched:int array ->
  Model.t -> Polybasis.Basis.t -> Randkit.Prng.t -> float array
(** [samples] (default 10 000) model evaluations at fresh standard-normal
    factor draws. [?eval] overrides the per-point evaluator (default
    [Model.predict_point model basis] — per-sample cost O(tape), i.e.
    one Hermite recurrence {e per factor of every term}); pass a
    compiled tape closure ([Serve.Eval.evaluator]) to hoist shared
    recurrences without changing a single result bit. The factor draws
    (and hence the PRNG stream) do not depend on [?eval].

    [?sampler] (default [Polar], the historical bit stream) selects the
    normal sampler. Under [Ziggurat] each coordinate of each sample is
    a pure function of [(key, sample, coordinate)] with the key drawn
    once from [rng] ([Randkit.Counter.of_prng]) — the same addressing
    as [Serve.Stream], so a ziggurat estimate here is bitwise equal to
    the streamed one. [?touched] (ziggurat only) restricts the draw to
    the listed coordinates — bitwise identical results whenever [eval]
    reads only those coordinates (e.g. the compiled tape's
    [Serve.Eval.touched_vars]); draw cost then scales with the support,
    not the ambient dimension.
    @raise Invalid_argument when [?touched] is passed with the polar
    sampler or lists a coordinate outside the basis dimension. *)

val monte_carlo :
  ?samples:int ->
  ?eval:(Linalg.Vec.t -> float) ->
  ?sampler:Randkit.Gaussian.sampler ->
  ?touched:int array ->
  Model.t -> Polybasis.Basis.t -> Randkit.Prng.t -> spec ->
  float * float
(** [(yield, standard_error)] by model Monte Carlo; [?eval],
    [?sampler], [?touched] as in {!monte_carlo_values}. *)

val passes : spec -> float -> bool

val joint_monte_carlo :
  ?samples:int -> (Model.t * spec) list -> Polybasis.Basis.t ->
  Randkit.Prng.t -> float * float
(** [(yield, standard_error)] of meeting {e every} spec
    simultaneously, with all models evaluated at the {e same} factor
    draws — the correlations between metrics (e.g. gain and bandwidth
    both ride on gm1) are captured automatically because the models
    share factors. Multiplying marginal yields would ignore them.
    @raise Invalid_argument on an empty spec list or a model whose
    basis size disagrees with the shared basis. *)
