(** Least angle regression (Efron, Hastie, Johnstone & Tibshirani 2004)
    — the algorithm of the target DAC 2009 paper ("LAR", reference [2]),
    which relaxes the L0 constraint of eq. (11) to an L1 constraint and
    traces the resulting regularization path.

    Geometry: at each step the coefficient vector moves along the
    {e equiangular} direction of the active basis vectors — the
    direction making equal angles with all of them — exactly until some
    inactive vector becomes as correlated with the residual as the
    active ones, which is then added. With the lasso modification, an
    active coefficient that would cross zero is instead dropped at the
    crossing and the direction recomputed, making the path coincide
    with the lasso solution path.

    Columns are normalized to unit Euclidean norm internally (Hermite
    basis columns have norm ≈ √K already; normalization removes the
    sampling fluctuation) and coefficients are reported in the original
    column scale.

    Consumes a {!Polybasis.Design.Provider} ([_p] variants): the two
    per-step sweeps stream columns on demand, active columns are cached
    (K floats each) for Gram updates and the equiangular direction —
    dense and matrix-free runs are bitwise identical. *)

type mode = Lar | Lasso

type step = {
  added : int option;  (** basis entering the active set this step *)
  dropped : int option;  (** basis leaving (lasso mode only) *)
  max_corr : float;  (** C: common absolute correlation of the active set *)
  model : Model.t;  (** coefficients after the step (LARS shrinkage) *)
}

val path_p :
  ?mode:mode ->
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.Lars.t -> unit) ->
  ?resume:Serialize.Checkpoint.Lars.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  max_steps:int ->
  step array
(** [path_p src f ~max_steps] traces up to [max_steps] path steps
    (default mode [Lar]). Stops early when the maximal correlation falls
    below [tol] relative to its initial value (default [1e-10]), when
    the active set saturates at [min(K, M)], or at the final
    unrestricted LS point of the active set.

    [on_singular] governs degenerate Gram factors. With [`Stop] (the
    default, the historical behavior) a linearly dependent entering
    column is simply not added this step, and a non-SPD rebuild after a
    lasso drop raises. With [`Fallback] a dependent entering column is
    {e banned} — excluded from C, the enter scan and the γ scan from
    then on — and the iteration is recorded as a {e zero-length step}
    (no coefficient movement), so the next iteration hands the step to
    the true entrant; advancing past a ban instead would overshoot the
    correlation tie and leave the active set non-equicorrelated. A
    non-SPD rebuild after a lasso drop ends the path at the last
    consistent model. Both events are recorded in the step models'
    {!Model.notes}. Clean paths are bitwise unaffected by the choice.

    The two O(K·M) sweeps of every step — the correlations [Gᵀ·res] and
    the step-length inner products [Gᵀ·u] against the equiangular
    direction — run column-parallel over [pool] (default:
    {!Parallel.Pool.default}); entering/leaving variables, step lengths
    and coefficients are bitwise identical to the sequential dense
    sweeps for every domain count and either provider form (each dot
    product is accumulated whole).

    Checkpointing: with [checkpoint_every = n > 0],
    [on_checkpoint] receives a {!Serialize.Checkpoint.Lars.t} event-log
    snapshot of the walk every [n] completed steps, and (whatever the
    cadence, including [checkpoint_every = 0]) once more when the path
    ends, so a finished run always leaves its full log. [resume] replays
    a snapshot's event log against the provider before any live step:
    recorded gammas replace the two O(K·M) sweeps, so replay costs
    O(steps·active·K) and reproduces every step record — models, notes,
    order — bit-for-bit at any domain count. Resuming with a different
    dataset, [mode] or [on_singular] policy than the checkpoint was
    written under raises [Invalid_argument] (terminal digests and
    active/banned/sign sets are all validated).

    [sweep] selects the correlation engine (default
    {!Corr_sweep.Exact}). [Incremental] is where the Gram cache pays on
    this solver: of the two O(K·M) sweeps per step, the correlation
    sweep becomes an O(M) read of the delta-maintained vector and the
    [Gᵀ·u] sweep becomes an O(p·M) combination of cached Gram columns —
    only entering columns still cost one O(K·M) cache build. Exact
    refreshes run on the [refresh] cadence of movement steps and at
    every checkpoint emission, so a resumed incremental run (whose
    replay rebuilds the cache and re-sweeps at the checkpoint) stays
    bitwise equal to an uninterrupted incremental run in every step's
    state — entries, drops, coefficients, models. The one exception is
    the diagnostic [max_corr] of {e replayed} steps: replay recomputes
    it with exact per-column dots, while the interrupted run read it
    from the delta-maintained vector, so the two may differ by ~1 ulp
    between refresh points (the live continuation past the checkpoint
    is bitwise, [max_corr] included). Against [Exact] the mode is
    ≤1e-10-validated, not bitwise — hence opt-in.

    [shards > 1] routes both per-step sweeps through the
    column-sharded engine ({!Shard_sweep}): each shard owns a
    contiguous column window (and, incremental mode, its own Gram
    slab), local scans merge through exact left-biased reductions, and
    the path — entries, bans, drops, step lengths, models — is bitwise
    identical to [shards = 1] at every shard count, in both provider
    forms and both sweep modes. [shard_mode] picks in-image shards
    ([Domains], the default) or re-exec'd worker processes ([Procs]),
    whose per-worker memory is O(K·M/S) and which survive worker death
    by replaying the engine's command log — also bitwise. [recovered]
    (when given) accumulates the number of worker recoveries, so
    drivers can report survived crashes without touching model
    notes. *)

val fit_p :
  ?mode:mode ->
  ?tol:float ->
  ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Serialize.Checkpoint.Lars.t -> unit) ->
  ?resume:Serialize.Checkpoint.Lars.t ->
  ?sweep:Corr_sweep.sweep ->
  ?shards:int ->
  ?shard_mode:Shard_sweep.mode ->
  ?recovered:int ref ->
  Polybasis.Design.Provider.t ->
  Linalg.Vec.t ->
  lambda:int ->
  Model.t
(** [fit_p src f ~lambda] is the last path model with at most [lambda]
    active coefficients — λ plays the same sparsity-budget role as in
    Algorithm 1. The step budget starts at [2·lambda + 8] and doubles
    (up to 8×) while the budget truncates the path before any model fits
    the sparsity bound; if even then no step qualifies, the returned
    empty model carries a [Model.notes] entry saying so rather than
    being silently zero. Checkpoint arguments behave as in {!path_p}. *)

(** Externally-swept LAR walk — the fused lockstep drivers' seam.

    The walk needs two [Gᵀ·v] sweeps per movement step (correlations
    against the residual, then step lengths against the equiangular
    direction). The engine suspends at each: {!Engine.request} names
    the K-vector whose sweep is needed next, {!Engine.supply} feeds the
    M-length [Gᵀ·v] back and runs the loop body. Driven with exact
    sweeps — in particular the per-entry results of
    {!Corr_sweep.gram_tr_multi}, which are bitwise equal to independent
    per-fold sweeps — the recorded steps are bit-for-bit those of
    {!path_p} with the exact sweep, unsharded and uncheckpointed.
    Requests from distinct engines are mutually independent, so a fused
    driver may batch a mix of correlation- and direction-phase requests
    into one multi sweep. *)
module Engine : sig
  type t

  val create :
    ?mode:mode ->
    ?tol:float ->
    ?pool:Parallel.Pool.t ->
    ?on_singular:[ `Stop | `Fallback ] ->
    Polybasis.Design.Provider.t ->
    Linalg.Vec.t ->
    max_steps:int ->
    t
  (** Same validation and defaults as {!path_p}; [pool] is used only
      for the one-time column-norms sweep. *)

  val finished : t -> bool
  (** True once the walk stopped or exhausted [max_steps]. *)

  val request : t -> Linalg.Vec.t
  (** The K-vector whose [Gᵀ·v] sweep the engine needs next: the
      current residual (correlation phase) or the equiangular direction
      (step-length phase).
      @raise Invalid_argument once {!finished}. *)

  val supply : t -> Linalg.Vec.t -> unit
  (** [supply t g] feeds the M-length sweep of the last {!request}ed
      vector and advances the walk to its next suspension point.
      @raise Invalid_argument on a length mismatch or once {!finished};
      propagates {!Linalg.Cholesky.Not_positive_definite} after a lasso
      drop under [~on_singular:`Stop], as {!path_p} does. *)

  val steps : t -> step array
  (** Steps recorded so far, oldest first. *)
end

val path :
  ?mode:mode -> ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t ->
  Linalg.Vec.t -> max_steps:int -> step array
(** {!path_p} over [Provider.dense g]. *)

val fit :
  ?mode:mode -> ?tol:float -> ?pool:Parallel.Pool.t ->
  ?on_singular:[ `Stop | `Fallback ] -> Linalg.Mat.t ->
  Linalg.Vec.t -> lambda:int -> Model.t
(** {!fit_p} over [Provider.dense g]. *)
