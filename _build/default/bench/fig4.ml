(* Figure 4: linear modeling error vs number of training samples for the
   two-stage OpAmp — four metrics (a) gain, (b) bandwidth, (c) power,
   (d) offset, and four methods (LS, STAR, LAR, OMP).

   The paper's qualitative content: the three sparse methods reach low
   error with far fewer samples than LS (which cannot run at all below
   K = M), STAR trails OMP/LAR, and the curves fall with K. *)

let paper_note =
  "Paper Fig. 4: sparse methods need ~2x fewer samples than LS at equal \
   error; OMP reduces error up to 1.5-5x vs STAR; LAR occasionally wins \
   (e.g. bandwidth)."

let run ~quick () =
  let amp =
    if quick then Circuit.Opamp.build ~n_parasitics:50 ()
    else Circuit.Opamp.build ()
  in
  let dim = Circuit.Opamp.dim amp in
  let counts =
    if quick then [ 50; 100; 200; 300 ] else [ 100; 200; 400; 600; 800; 1200 ]
  in
  let test = if quick then 1000 else 3000 in
  let max_train = List.fold_left max 0 counts in
  let basis = Polybasis.Basis.constant_linear dim in
  Printf.printf "\n=== Fig. 4: OpAmp linear modeling error vs training samples ===\n";
  Printf.printf "(%d independent factors, %d basis functions, testing set %d)\n"
    dim (Polybasis.Basis.size basis) test;
  print_endline paper_note;
  let methods = Rsm.Solver.all in
  List.iter
    (fun metric ->
      let sim = Circuit.Opamp.simulator amp metric in
      let rng = Randkit.Prng.create Bench_util.default_seed in
      let prep = Bench_util.prepare basis sim rng ~train:max_train ~test in
      let rows =
        List.map
          (fun k ->
            let cells =
              List.map
                (fun m ->
                  if Rsm.Solver.needs_overdetermined m && k <= dim then "-"
                  else
                    let o =
                      Bench_util.run_method ~train_sub:(Some k)
                        ~max_lambda:(min (k / 4) 100)
                        prep m
                    in
                    Bench_util.pct o.Bench_util.error)
                methods
            in
            string_of_int k :: cells)
          counts
      in
      Bench_util.print_table
        ~title:
          (Printf.sprintf "Fig. 4 (%s): testing error vs K"
             (Circuit.Opamp.metric_name metric))
        ~header:("K" :: List.map Rsm.Solver.name methods)
        rows)
    Circuit.Opamp.all_metrics
