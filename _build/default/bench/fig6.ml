(* Figure 6: magnitude of the SRAM read-delay linear model coefficients
   estimated by OMP — a sorted spectrum showing that out of the full
   dictionary only a few dozen coefficients are materially non-zero,
   plus the paper's headline count ("only 36 basis functions are
   selected"). Rendered as a text histogram over coefficient rank. *)

let run ~quick ~full () =
  let cells =
    if full then Circuit.Sram.paper_cells else if quick then 30 else 80
  in
  let sram = Circuit.Sram.build ~cells () in
  let dim = Circuit.Sram.dim sram in
  let basis = Polybasis.Basis.constant_linear dim in
  let k = if quick then 250 else 1000 in
  Printf.printf
    "\n=== Fig. 6: sparsity of the SRAM read-delay model (%d basis functions) \
     ===\n"
    (Polybasis.Basis.size basis);
  Printf.printf
    "Paper: 21311 bases, 36 selected; all other coefficients ~ zero.\n";
  let sim = Circuit.Sram.simulator sram in
  let rng = Randkit.Prng.create Bench_util.default_seed in
  let prep = Bench_util.prepare basis sim rng ~train:k ~test:(k / 2) in
  let sel_rng = Randkit.Prng.create (Bench_util.default_seed + 3) in
  let r =
    Rsm.Select.omp sel_rng ~max_lambda:(min (k / 5) 100) prep.Bench_util.g_train
      prep.Bench_util.f_train
  in
  let model = r.Rsm.Select.model in
  Printf.printf
    "OMP selected %d of %d basis functions (cross-validated lambda = %d); \
     testing error %s.\n"
    (Rsm.Model.nnz model)
    (Polybasis.Basis.size basis)
    r.Rsm.Select.lambda
    (Bench_util.pct
       (Rsm.Model.error_on model prep.Bench_util.g_test prep.Bench_util.f_test));
  (* Sorted |coefficient| spectrum, excluding the constant term whose
     magnitude is the nominal delay. *)
  let mags =
    Array.of_list
      (List.filter_map
         (fun p ->
           if model.Rsm.Model.support.(p) = 0 then None
           else Some (Float.abs model.Rsm.Model.coeffs.(p)))
         (List.init (Rsm.Model.nnz model) Fun.id))
  in
  Array.sort (fun a b -> compare b a) mags;
  let top = Float.max (if Array.length mags > 0 then mags.(0) else 1.) 1e-12 in
  Printf.printf "\nrank  |coefficient| (ps per sigma)\n";
  Array.iteri
    (fun i m ->
      if i < 40 then begin
        let bar = int_of_float (50. *. m /. top) in
        Printf.printf "%4d  %10.4f  %s\n" (i + 1) m (String.make (max bar 1) '#')
      end)
    mags;
  (* The background: how much response energy the unselected ~M bases
     carry, via the residual correlation spectrum. *)
  let res =
    Linalg.Vec.sub prep.Bench_util.f_train
      (Rsm.Model.predict_design model prep.Bench_util.g_train)
  in
  let kf = float_of_int (Linalg.Mat.rows prep.Bench_util.g_train) in
  let max_unselected = ref 0. in
  for j = 0 to Linalg.Mat.cols prep.Bench_util.g_train - 1 do
    if Rsm.Model.coeff model j = 0. then
      max_unselected :=
        Float.max !max_unselected
          (Float.abs (Linalg.Mat.col_dot prep.Bench_util.g_train j res) /. kf)
  done;
  Printf.printf
    "\nLargest unselected-coefficient estimate: %.4f ps (%.1fx below the \
     largest selected) - the near-zero background of Fig. 6.\n"
    !max_unselected
    (top /. Float.max !max_unselected 1e-12)
