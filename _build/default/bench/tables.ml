(* Tables I-IV of the paper.

   Table I   — OpAmp linear modeling cost (LS at 1200 samples vs sparse
               methods at 600).
   Table II  — OpAmp quadratic modeling error over the most important
               process parameters.
   Table III — OpAmp quadratic modeling cost.
   Table IV  — SRAM read-path linear modeling error and cost.

   Simulation cost is accounted at the paper's per-sample Spectre cost
   (13.45 s OpAmp / 29.13 s SRAM read path); fitting cost is measured
   wall-clock on this implementation. The `--full` flag uses the paper's
   problem sizes where memory allows; the default is a scaled instance
   with the same shape (see DESIGN.md substitution 3). *)

open Bench_util

let paper_table1 =
  "Paper Table I: LS 1200 samples / 16142 s total; STAR/LAR/OMP 600 \
   samples / ~8.1e3 s total => ~2x total-cost speedup."

let table1 ~quick () =
  let amp =
    if quick then Circuit.Opamp.build ~n_parasitics:50 ()
    else Circuit.Opamp.build ()
  in
  let dim = Circuit.Opamp.dim amp in
  let basis = Polybasis.Basis.constant_linear dim in
  let k_ls = if quick then 300 else 1200 in
  let k_sparse = if quick then 150 else 600 in
  let test = if quick then 1000 else 3000 in
  Printf.printf "\n=== Table I: OpAmp linear modeling cost (metric: gain) ===\n";
  print_endline paper_table1;
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Gain in
  let rng = Randkit.Prng.create default_seed in
  let prep = prepare basis sim rng ~train:k_ls ~test in
  let outcomes =
    List.map
      (fun m ->
        let k = if Rsm.Solver.needs_overdetermined m then k_ls else k_sparse in
        run_method ~train_sub:(Some k) ~max_lambda:(min (k / 4) 100) prep m)
      Rsm.Solver.all
  in
  print_table
    ~title:
      (Printf.sprintf "Table I (K_LS = %d, K_sparse = %d samples)" k_ls k_sparse)
    ~header:cost_header (cost_rows outcomes);
  speedup_line outcomes

(* Rank process parameters by |linear coefficient| from a preliminary
   sparse linear model — the paper's Section V-A.2 selection step. *)
let top_parameters prep ~dim ~take =
  let rng = Randkit.Prng.create (default_seed + 1) in
  let r = Rsm.Select.omp rng ~max_lambda:(min (Linalg.Mat.rows prep.g_train / 4) 120)
      prep.g_train prep.f_train
  in
  let dense = Rsm.Model.to_dense r.Rsm.Select.model in
  let scored = Array.init dim (fun j -> (Float.abs dense.(j + 1), j)) in
  Array.sort (fun (a, _) (b, _) -> compare b a) scored;
  (* Keep every factor the linear model used, padded by index order up to
     [take]. *)
  let chosen = Array.map snd (Array.sub scored 0 take) in
  Array.sort compare chosen;
  chosen

let paper_table23 =
  "Paper Tables II-III: quadratic model over the 200 most important \
   parameters (20301 coefficients); LS needs 25000 samples / 4 days, the \
   sparse methods 1000 samples / ~4 h (24x); OMP error: gain 4.39%, \
   bandwidth 2.94%, power 1.17%, offset 1.88% (1.5-3x better than \
   STAR/LAR)."

let tables_2_3 ~quick ~full () =
  let amp =
    if quick then Circuit.Opamp.build ~n_parasitics:50 ()
    else Circuit.Opamp.build ()
  in
  let dim = Circuit.Opamp.dim amp in
  let n_top = if full then 200 else if quick then 20 else 60 in
  let m_quad = Polybasis.Basis.quadratic_size n_top in
  let k_sparse = if quick then 300 else 1000 in
  (* LS needs K >= M; at the paper's full size that is 25000 samples and a
     20301^2 normal-equation solve - reported but skipped unless feasible. *)
  let k_ls = m_quad + (m_quad / 10) in
  let ls_feasible = (not full) && m_quad <= 4000 in
  let k_train = max k_sparse (if ls_feasible then k_ls else k_sparse) in
  let test = if quick then 1000 else 3000 in
  Printf.printf
    "\n=== Tables II-III: OpAmp quadratic modeling (%d top parameters -> %d \
     coefficients) ===\n"
    n_top m_quad;
  print_endline paper_table23;
  if not ls_feasible then
    Printf.printf
      "LS at this size needs %d samples and a %dx%d dense solve - \
       infeasible, exactly the paper's point; LS row omitted.\n"
      k_ls m_quad m_quad;
  let lin_basis = Polybasis.Basis.constant_linear dim in
  let err_rows = ref [] and cost_rows_acc = ref [] in
  List.iter
    (fun metric ->
      let sim = Circuit.Opamp.simulator amp metric in
      let rng = Randkit.Prng.create default_seed in
      (* Preliminary linear model on a modest budget selects parameters. *)
      let lin_prep = prepare lin_basis sim rng ~train:(min k_sparse 600) ~test:500 in
      let top = top_parameters lin_prep ~dim ~take:n_top in
      let quad_basis = Polybasis.Basis.quadratic_subset ~dim top in
      let rng2 = Randkit.Prng.create (default_seed + 2) in
      let prep = prepare quad_basis sim rng2 ~train:k_train ~test in
      let methods =
        if ls_feasible then Rsm.Solver.all
        else List.filter (fun m -> not (Rsm.Solver.needs_overdetermined m)) Rsm.Solver.all
      in
      let outcomes =
        List.map
          (fun m ->
            let k = if Rsm.Solver.needs_overdetermined m then k_ls else k_sparse in
            run_method ~train_sub:(Some (min k k_train))
              ~max_lambda:(min (k_sparse / 4) 120)
              prep m)
          methods
      in
      err_rows :=
        (Circuit.Opamp.metric_name metric
        :: List.map (fun o -> pct o.error) outcomes)
        :: !err_rows;
      if metric = Circuit.Opamp.Gain then
        cost_rows_acc := cost_rows outcomes)
    Circuit.Opamp.all_metrics;
  let methods_hdr =
    if ls_feasible then List.map Rsm.Solver.name Rsm.Solver.all
    else List.map Rsm.Solver.name [ Rsm.Solver.Star; Rsm.Solver.Lar; Rsm.Solver.Omp ]
  in
  print_table ~title:"Table II: quadratic modeling error"
    ~header:("metric" :: methods_hdr)
    (List.rev !err_rows);
  print_table ~title:"Table III: quadratic modeling cost (metric: gain)"
    ~header:cost_header !cost_rows_acc

let paper_table4 =
  "Paper Table IV: SRAM read path, 21311 basis functions; LS 25000 \
   samples / 8.5 days / 9.78% error; OMP 1000 samples / 8.2 h / 4.09% \
   error (25x speedup, most accurate of the four)."

let table4 ~quick ~full () =
  let cells = if full then Circuit.Sram.paper_cells else if quick then 30 else 80 in
  let sram = Circuit.Sram.build ~cells () in
  let dim = Circuit.Sram.dim sram in
  let basis = Polybasis.Basis.constant_linear dim in
  let m = Polybasis.Basis.size basis in
  let k_sparse = if quick then 200 else 1000 in
  let k_ls = m + (m / 8) in
  let ls_feasible = m <= 3000 in
  let k_train = if ls_feasible then max k_sparse k_ls else k_sparse in
  let test = if quick then 800 else 2000 in
  Printf.printf
    "\n=== Table IV: SRAM read path linear modeling (%d cells, %d factors, %d \
     basis functions) ===\n"
    cells dim m;
  print_endline paper_table4;
  if not ls_feasible then
    Printf.printf
      "LS at this size needs %d samples and a %dx%d dense solve - omitted \
       (the paper's point).\n"
      k_ls m m;
  let sim = Circuit.Sram.simulator sram in
  let rng = Randkit.Prng.create default_seed in
  let prep = prepare basis sim rng ~train:k_train ~test in
  let methods =
    if ls_feasible then Rsm.Solver.all
    else List.filter (fun mth -> not (Rsm.Solver.needs_overdetermined mth)) Rsm.Solver.all
  in
  let outcomes =
    List.map
      (fun mth ->
        let k = if Rsm.Solver.needs_overdetermined mth then k_ls else k_sparse in
        run_method ~train_sub:(Some (min k k_train))
          ~max_lambda:(min (k_sparse / 5) 100)
          prep mth)
      methods
  in
  print_table
    ~title:(Printf.sprintf "Table IV (K_sparse = %d samples)" k_sparse)
    ~header:cost_header (cost_rows outcomes);
  speedup_line outcomes
