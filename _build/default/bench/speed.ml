(* Bechamel micro-benchmarks: one Test.make per paper table, timing the
   fitting kernel that dominates each table's "fitting cost" row at a
   reduced-but-same-shape size, plus the shared design-matrix kernel. *)

open Bechamel
open Toolkit

let make_problem ~k ~m ~p seed =
  let rng = Randkit.Prng.create seed in
  let g = Randkit.Gaussian.matrix rng k m in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f =
    Array.init k (fun i ->
        let acc = ref (0.1 *. Randkit.Gaussian.sample rng) in
        Array.iter (fun j -> acc := !acc +. Linalg.Mat.get g i j) support;
        !acc)
  in
  (g, f)

let tests () =
  (* Table I shape: OpAmp linear, K = 600, M = 631. *)
  let g1, f1 = make_problem ~k:600 ~m:631 ~p:30 1 in
  (* Tables II-III shape: quadratic dictionary, K = 500, M ~ 1891. *)
  let g2, f2 = make_problem ~k:500 ~m:1891 ~p:60 2 in
  (* Table IV shape: SRAM linear, K = 500, M = 1510. *)
  let g4, f4 = make_problem ~k:500 ~m:1510 ~p:40 3 in
  (* LS baseline shape: over-determined 700x631 normal equations. *)
  let gls, fls = make_problem ~k:700 ~m:631 ~p:30 4 in
  let amp = Circuit.Opamp.build ~n_parasitics:50 () in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  let rng = Randkit.Prng.create 5 in
  let pts = Array.init 100 (fun _ -> Randkit.Gaussian.vector rng (Circuit.Opamp.dim amp)) in
  [
    Test.make ~name:"table1: OMP linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g1 f1 ~lambda:30)));
    Test.make ~name:"table2/3: OMP quadratic 500x1891"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g2 f2 ~lambda:60)));
    Test.make ~name:"table4: OMP sram 500x1510"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g4 f4 ~lambda:40)));
    Test.make ~name:"table1: LS baseline 700x631"
      (Staged.stage (fun () -> ignore (Rsm.Ls.fit ~method_:Linalg.Lstsq.Normal gls fls)));
    Test.make ~name:"fig4: LAR linear 600x631"
      (Staged.stage (fun () ->
           ignore (Rsm.Lars.fit ~mode:Rsm.Lars.Lar g1 f1 ~lambda:30)));
    Test.make ~name:"fig4: STAR linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Star.fit g1 f1 ~lambda:30)));
    Test.make ~name:"design matrix 100x131"
      (Staged.stage (fun () -> ignore (Polybasis.Design.matrix_rows basis pts)));
  ]

let run () =
  Printf.printf "\n=== Bechamel fitting-kernel timings ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        stats)
    (tests ())
