(* Ablation A2: the K = O(P log M) scaling law behind Section IV-B's
   guarantee (Tropp & Gilbert). For random Gaussian dictionaries of M
   columns and P-sparse ground truth, measure the empirical probability
   that OMP recovers the exact support from K samples. The transition
   front should move as P log M. *)

open Bench_util

let trial rng ~k ~m ~p =
  let g = Randkit.Gaussian.matrix rng k m in
  (* Random support and +-1-ish coefficients. *)
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  Array.sort compare support;
  let coeffs =
    Array.init p (fun _ ->
        let s = if Randkit.Prng.bool rng then 1. else -1. in
        s *. (0.5 +. Randkit.Prng.float rng))
  in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun q j -> acc := !acc +. (coeffs.(q) *. Linalg.Mat.get g i j))
          support;
        !acc)
  in
  match Rsm.Omp.fit g f ~lambda:p with
  | model -> model.Rsm.Model.support = support
  | exception _ -> false

let recovery_rate rng ~k ~m ~p ~trials =
  let ok = ref 0 in
  for _ = 1 to trials do
    if trial rng ~k ~m ~p then incr ok
  done;
  float_of_int !ok /. float_of_int trials

let run ~quick () =
  let trials = if quick then 10 else 25 in
  let m = if quick then 200 else 400 in
  let ps = [ 4; 8; 16 ] in
  let ks = [ 10; 20; 40; 80; 160 ] in
  Printf.printf
    "\n=== Recovery phase diagram: P(exact support) for OMP, M = %d ===\n" m;
  Printf.printf
    "Section IV-B: K = O(P log M) samples suffice; the success front \
     should shift right roughly linearly in P.\n";
  let rng = Randkit.Prng.create default_seed in
  let rows =
    List.map
      (fun p ->
        string_of_int p
        :: List.map
             (fun k ->
               if k <= p then "-"
               else Printf.sprintf "%.0f%%" (100. *. recovery_rate rng ~k ~m ~p ~trials))
             ks)
      ps
  in
  print_table
    ~title:(Printf.sprintf "exact-recovery probability (%d trials/cell)" trials)
    ~header:("P \\ K" :: List.map string_of_int ks)
    rows;
  (* The scaling-law check the paper cites: K needed for >=90% recovery,
     divided by P log M, should be roughly constant in P. *)
  let logm = log (float_of_int m) in
  List.iter
    (fun p ->
      let needed =
        List.find_opt
          (fun k -> k > p && recovery_rate rng ~k ~m ~p ~trials >= 0.9)
          ks
      in
      match needed with
      | Some k ->
          Printf.printf "P = %2d: K90 ~ %3d, K90 / (P log M) = %.2f\n" p k
            (float_of_int k /. (float_of_int p *. logm))
      | None -> Printf.printf "P = %2d: K90 beyond the sweep\n" p)
    ps;
  (* Dictionary conditioning: the "well-conditioned" premise of
     Section IV-B, measured on both a random Gaussian dictionary and a
     sampled Hermite dictionary of the same shape. *)
  Printf.printf "\nDictionary conditioning (K = 160, M = %d):\n" (min m 300);
  let mm = min m 300 in
  let gauss = Randkit.Gaussian.matrix rng 160 mm in
  let hermite =
    let nvars = 16 in
    let b = Polybasis.Basis.quadratic nvars in
    let pts = Array.init 160 (fun _ -> Randkit.Gaussian.vector rng nvars) in
    let d = Polybasis.Design.matrix_rows b pts in
    Linalg.Mat.select_cols d (Array.init (min mm (Polybasis.Basis.size b)) Fun.id)
  in
  List.iter
    (fun (name, dict) ->
      let mu = Rsm.Coherence.mutual_coherence dict in
      let bound = Rsm.Coherence.coherence_recovery_bound dict in
      let mean_k, max_k = Rsm.Coherence.subset_condition rng dict ~s:12 in
      Printf.printf
        "  %-18s coherence %.3f, certified P < %.1f, 12-column condition \
         mean/max %.2f / %.2f\n"
        name mu bound mean_k max_k)
    [ ("random Gaussian", gauss); ("sampled Hermite", hermite) ]
