(* Ablation A1 (DESIGN.md): isolate the design choices the paper credits
   for OMP's advantage.

   (a) Coefficient re-fit: run OMP and STAR to identical lambda on the
       same data - the selection rule is shared, so the error gap is
       attributable to Step 6's least-squares re-fit.
   (b) L1 path vs greedy L0: LAR vs lasso-LARS vs OMP at matched sparsity.
   (c) Cross-validation fold count Q: the paper uses Q = 4 (Fig. 2);
       sweep Q and report the chosen lambda and testing error.
   (d) Shrinkage-only control: ridge (dense L2) shows sparsity, not just
       regularization, is what makes small-K modeling work.
   (e) Stagewise selection (StOMP): admit whole batches per stage
       instead of one basis per iteration - accuracy vs stage count.
   (f) Sparsity boundary: the ring oscillator's frequency loads every
       stage equally; when the ground truth is not profoundly sparse,
       the sparse methods' advantage over the dense L2 baseline
       shrinks - the necessary-condition caveat of Section III.
   (g) Adaptive sampling: grow K until the CV error plateaus - the
       automated version of reading Fig. 4's flattening curves.
   (h) Sampling plan: Latin hypercube vs iid Monte Carlo at equal K -
       does stratifying the factor draws sharpen the inner-product
       estimators of eq. (14)?
   (i) Model order: linear vs quadratic vs cubic dictionaries over the
       most important parameters - where does the paper's "strongly
       nonlinear" story saturate?
   (j) Suboptimality: the L0 problem (eq. 11) is NP-hard; on small
       dictionaries the exact optimum is computable by enumeration -
       how close do the heuristics get? *)

open Bench_util

let run ~quick () =
  let amp =
    if quick then Circuit.Opamp.build ~n_parasitics:50 ()
    else Circuit.Opamp.build ()
  in
  let dim = Circuit.Opamp.dim amp in
  let basis = Polybasis.Basis.constant_linear dim in
  let k = if quick then 150 else 400 in
  let test = if quick then 800 else 2000 in
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Offset in
  let rng = Randkit.Prng.create default_seed in
  let prep = prepare basis sim rng ~train:k ~test in
  let gt = prep.g_train and ft = prep.f_train in
  let ge = prep.g_test and fe = prep.f_test in

  Printf.printf "\n=== Ablation A1: what makes OMP accurate (OpAmp offset, K = %d) ===\n" k;

  (* (a) re-fit vs inner-product coefficients at matched lambda. *)
  let lambdas = [ 5; 10; 20; 40 ] in
  let rows =
    List.map
      (fun l ->
        let omp = Rsm.Omp.fit gt ft ~lambda:l in
        let star = Rsm.Star.fit gt ft ~lambda:l in
        (* STAR's support, re-fit by least squares: the hybrid isolates
           the coefficient rule from the selection rule. *)
        let star_refit =
          let sup = star.Rsm.Model.support in
          Rsm.Model.make ~basis_size:(Linalg.Mat.cols gt) ~support:sup
            ~coeffs:(Linalg.Lstsq.solve_subset gt sup ft)
        in
        [
          string_of_int l;
          pct (Rsm.Model.error_on omp ge fe);
          pct (Rsm.Model.error_on star ge fe);
          pct (Rsm.Model.error_on star_refit ge fe);
        ])
      lambdas
  in
  print_table ~title:"(a) coefficient re-fit ablation"
    ~header:[ "lambda"; "OMP"; "STAR"; "STAR sel. + LS re-fit" ]
    rows;
  Printf.printf
    "Re-fitting STAR's own selection recovers most of OMP's gap: the \
     coefficient rule, not the selection rule, is the difference.\n";

  (* (b) greedy L0 vs L1 path at matched sparsity. *)
  let rows =
    List.map
      (fun l ->
        let omp = Rsm.Omp.fit gt ft ~lambda:l in
        let lar = Rsm.Lars.fit ~mode:Rsm.Lars.Lar gt ft ~lambda:l in
        let lasso = Rsm.Lars.fit ~mode:Rsm.Lars.Lasso gt ft ~lambda:l in
        [
          string_of_int l;
          pct (Rsm.Model.error_on omp ge fe);
          pct (Rsm.Model.error_on lar ge fe);
          pct (Rsm.Model.error_on lasso ge fe);
        ])
      lambdas
  in
  print_table ~title:"(b) greedy L0 (OMP) vs L1 path (LAR / lasso-LARS)"
    ~header:[ "lambda"; "OMP"; "LAR"; "LASSO" ]
    rows;

  (* (c) CV fold count. *)
  let rows =
    List.map
      (fun q ->
        let rng = Randkit.Prng.create (default_seed + q) in
        let r = Rsm.Select.omp ~folds:q rng ~max_lambda:(min (k / 4) 80) gt ft in
        [
          string_of_int q;
          string_of_int r.Rsm.Select.lambda;
          pct (Rsm.Model.error_on r.Rsm.Select.model ge fe);
        ])
      [ 2; 4; 8 ]
  in
  print_table ~title:"(c) cross-validation fold count (paper: Q = 4)"
    ~header:[ "Q"; "chosen lambda"; "test error" ]
    rows;

  (* (d) shrinkage-only control. *)
  let rng = Randkit.Prng.create (default_seed + 40) in
  let ridge, reg =
    Rsm.Ridge.fit_cv rng ~folds:4
      ~regs:(Array.init 7 (fun i -> 10. ** float_of_int (i - 3)))
      gt ft
  in
  let omp_cv =
    let rng = Randkit.Prng.create (default_seed + 41) in
    (Rsm.Select.omp rng ~max_lambda:(min (k / 4) 80) gt ft).Rsm.Select.model
  in
  print_table ~title:"(d) sparsity vs plain shrinkage at K << M"
    ~header:[ "model"; "test error"; "non-zeros" ]
    [
      [
        "OMP (sparse)";
        pct (Rsm.Model.error_on omp_cv ge fe);
        string_of_int (Rsm.Model.nnz omp_cv);
      ];
      [
        Printf.sprintf "ridge (reg = %g)" reg;
        pct (Rsm.Model.error_on ridge ge fe);
        string_of_int (Rsm.Model.nnz ridge);
      ];
    ];

  (* (e) stagewise selection. *)
  let rows =
    List.map
      (fun t ->
        let steps = Rsm.Stomp.path ~threshold:t gt ft in
        let model =
          if Array.length steps = 0 then
            Rsm.Model.make ~basis_size:(Linalg.Mat.cols gt) ~support:[||] ~coeffs:[||]
          else steps.(Array.length steps - 1).Rsm.Stomp.model
        in
        [
          Printf.sprintf "%.1f" t;
          string_of_int (Array.length steps);
          string_of_int (Rsm.Model.nnz model);
          pct (Rsm.Model.error_on model ge fe);
        ])
      [ 2.0; 2.5; 3.0 ]
  in
  print_table
    ~title:"(e) StOMP: batch selection vs one-at-a-time (compare OMP in (a))"
    ~header:[ "threshold"; "stages"; "bases"; "test error" ]
    rows;

  (* (f) sparsity boundary: ring oscillator. *)
  let ring = Circuit.Ring_osc.build ~stages:(if quick then 21 else 51) () in
  let rsim = Circuit.Ring_osc.simulator ring Circuit.Ring_osc.Frequency in
  let rng = Randkit.Prng.create (default_seed + 50) in
  let rprep =
    prepare
      (Polybasis.Basis.constant_linear (Circuit.Ring_osc.dim ring))
      rsim rng ~train:k ~test
  in
  let omp_r = run_method ~max_lambda:(min (k / 4) 80) rprep Rsm.Solver.Omp in
  let ridge_r, _ =
    Rsm.Ridge.fit_cv ~unpenalized:[| 0 |]
      (Randkit.Prng.create (default_seed + 51))
      ~folds:4
      ~regs:(Array.init 7 (fun i -> 10. ** float_of_int (i - 3)))
      rprep.g_train rprep.f_train
  in
  let star_r = run_method ~max_lambda:(min (k / 4) 80) rprep Rsm.Solver.Star in
  print_table
    ~title:
      (Printf.sprintf
         "(f) non-sparse ground truth: ring oscillator frequency (%d equal \
          stages, %d factors)"
         (Circuit.Ring_osc.stages ring) (Circuit.Ring_osc.dim ring))
    ~header:[ "model"; "test error"; "non-zeros" ]
    [
      [ "OMP"; pct omp_r.error; string_of_int omp_r.nnz ];
      [ "STAR"; pct star_r.error; string_of_int star_r.nnz ];
      [
        "ridge (dense)";
        pct (Rsm.Model.error_on ridge_r rprep.g_test rprep.f_test);
        string_of_int (Rsm.Model.nnz ridge_r);
      ];
    ];
  Printf.printf
    "When every stage matters equally, sparse selection loses its edge and \
     dense shrinkage catches up - sparsity is the necessary condition \
     (Section III).\n";

  (* (g) adaptive sample allocation on the offset model. *)
  let budget = if quick then 400 else 1000 in
  let sim_stream = Randkit.Prng.create (default_seed + 60) in
  let full = Circuit.Simulator.run sim sim_stream ~k:budget in
  let basis_dim = Polybasis.Basis.constant_linear dim in
  let g_full = Polybasis.Design.matrix_rows basis_dim full.Circuit.Simulator.points in
  let sample ks =
    ( Linalg.Mat.select_rows g_full (Array.init ks (fun i -> i)),
      Array.sub full.Circuit.Simulator.values 0 ks )
  in
  let r =
    Rsm.Incremental.run ~initial:(if quick then 40 else 60) ~max_samples:budget
      ~sample
      (Randkit.Prng.create (default_seed + 61))
  in
  let rows =
    Array.to_list
      (Array.map
         (fun round ->
           [
             string_of_int round.Rsm.Incremental.samples;
             string_of_int round.Rsm.Incremental.lambda;
             pct round.Rsm.Incremental.cv_error;
           ])
         r.Rsm.Incremental.rounds)
  in
  print_table ~title:"(g) adaptive sample allocation (offset model)"
    ~header:[ "K"; "lambda"; "CV error" ]
    rows;
  Printf.printf
    "Converged: %b - stopped at %d of %d budgeted simulations; test error of \
     the final model: %s.\n"
    r.Rsm.Incremental.converged
    r.Rsm.Incremental.rounds.(Array.length r.Rsm.Incremental.rounds - 1)
      .Rsm.Incremental.samples
    budget
    (pct (Rsm.Model.error_on r.Rsm.Incremental.final ge fe));

  (* (h) sampling plan: LHS vs iid MC at matched K. *)
  let ks = if quick then [ 50; 100 ] else [ 100; 200; 400 ] in
  let eval_offset dy = Circuit.Opamp.eval amp Circuit.Opamp.Offset dy in
  let fit_on points =
    let gk = Polybasis.Design.matrix_rows basis points in
    let fk = Array.map eval_offset points in
    let model = Rsm.Omp.fit gk fk ~lambda:(min (Array.length points / 4) 40) in
    Rsm.Model.error_on model ge fe
  in
  let rows =
    List.map
      (fun kk ->
        let g_mc = Randkit.Prng.create (default_seed + 70 + kk) in
        let mc_pts = Array.init kk (fun _ -> Randkit.Gaussian.vector g_mc dim) in
        let g_lhs = Randkit.Prng.create (default_seed + 71 + kk) in
        let lhs_pts = Randkit.Lhs.gaussian_points g_lhs ~k:kk ~n:dim in
        [ string_of_int kk; pct (fit_on mc_pts); pct (fit_on lhs_pts) ])
      ks
  in
  print_table ~title:"(h) sampling plan: iid Monte Carlo vs Latin hypercube"
    ~header:[ "K"; "iid MC"; "LHS" ]
    rows;
  Printf.printf
    "LHS stratifies marginals only; in a %d-dimensional space with sparse \
     structure it buys little over iid MC - consistent with the paper's \
     choice of plain random sampling (Section IV-A).\n"
    dim;

  (* (i) model order sweep on the nonlinear power metric. *)
  let psim = Circuit.Opamp.simulator amp Circuit.Opamp.Power in
  let prng = Randkit.Prng.create (default_seed + 80) in
  let pexp = Circuit.Testbench.generate psim prng ~train:(if quick then 300 else 800) ~test in
  let tr_pts = pexp.Circuit.Testbench.train.Circuit.Simulator.points in
  let te_pts = pexp.Circuit.Testbench.test.Circuit.Simulator.points in
  let f_trp = pexp.Circuit.Testbench.train.Circuit.Simulator.values in
  let f_tep = pexp.Circuit.Testbench.test.Circuit.Simulator.values in
  (* Important parameters from a linear probe. *)
  let lin_g = Polybasis.Design.matrix_rows basis tr_pts in
  let probe = Rsm.Omp.fit lin_g f_trp ~lambda:40 in
  let dense = Rsm.Model.to_dense probe in
  let scored = Array.init dim (fun j -> (Float.abs dense.(j + 1), j)) in
  Array.sort (fun (a, _) (b, _) -> compare b a) scored;
  let n_top = if quick then 8 else 12 in
  let top = Array.map snd (Array.sub scored 0 n_top) in
  Array.sort compare top;
  let rows =
    List.map
      (fun degree ->
        let b =
          Polybasis.Basis.embed
            (Polybasis.Basis.total_degree n_top degree)
            top ~dim
        in
        let gk = Polybasis.Design.matrix_rows b tr_pts in
        let gke = Polybasis.Design.matrix_rows b te_pts in
        let r =
          Rsm.Select.omp
            (Randkit.Prng.create (default_seed + 81))
            ~max_lambda:(min (Array.length tr_pts / 4) 100)
            gk f_trp
        in
        [
          string_of_int degree;
          string_of_int (Polybasis.Basis.size b);
          string_of_int (Rsm.Model.nnz r.Rsm.Select.model);
          pct (Rsm.Model.error_on r.Rsm.Select.model gke f_tep);
        ])
      [ 1; 2; 3 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "(i) model order over the %d most important parameters (power)" n_top)
    ~header:[ "degree"; "dictionary"; "bases used"; "test error" ]
    rows;

  (* (j) suboptimality against the exact L0 optimum. *)
  let trials = if quick then 8 else 20 in
  let ratios = Hashtbl.create 4 in
  let record name r =
    let cur = try Hashtbl.find ratios name with Not_found -> [] in
    Hashtbl.replace ratios name (r :: cur)
  in
  for t = 0 to trials - 1 do
    let gen = Randkit.Prng.create (default_seed + 90 + t) in
    let gk = Randkit.Gaussian.matrix gen 30 14 in
    let fk =
      Array.init 30 (fun i ->
          (2. *. Linalg.Mat.get gk i 1)
          -. (1.5 *. Linalg.Mat.get gk i 7)
          +. (0.8 *. Linalg.Mat.get gk i 12)
          +. (0.4 *. Randkit.Gaussian.sample gen))
    in
    let exact = Rsm.L0_exact.solve gk fk ~lambda:3 in
    let opt = Float.max exact.Rsm.L0_exact.residual_norm 1e-12 in
    List.iter
      (fun (name, model) ->
        let res =
          Linalg.Vec.nrm2
            (Linalg.Vec.sub fk (Rsm.Model.predict_design model gk))
        in
        record name (res /. opt))
      [
        ("OMP", Rsm.Omp.fit gk fk ~lambda:3);
        ("STAR", Rsm.Star.fit gk fk ~lambda:3);
        ("LAR", Rsm.Lars.fit gk fk ~lambda:3);
        ("CoSaMP", Rsm.Cosamp.fit gk fk ~s:3);
      ]
  done;
  let rows =
    List.map
      (fun name ->
        let rs = Array.of_list (Hashtbl.find ratios name) in
        let optimal = Array.fold_left (fun a r -> if r <= 1.0000001 then a + 1 else a) 0 rs in
        [
          name;
          Printf.sprintf "%.4f" (Stat.Descriptive.mean rs);
          Printf.sprintf "%.4f" (Array.fold_left Float.max 1. rs);
          Printf.sprintf "%d/%d" optimal trials;
        ])
      [ "OMP"; "STAR"; "LAR"; "CoSaMP" ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "(j) residual vs the exact L0 optimum (30x14, lambda = 3, %d trials)"
         trials)
    ~header:[ "method"; "mean ratio"; "worst ratio"; "exactly optimal" ]
    rows
