bench/main.mli:
