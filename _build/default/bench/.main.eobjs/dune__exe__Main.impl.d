bench/main.ml: Ablation Arg Cmd Cmdliner Fig4 Fig6 Printf Recovery Speed Tables Term
