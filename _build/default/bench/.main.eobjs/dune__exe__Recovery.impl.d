bench/recovery.ml: Array Bench_util Fun Linalg List Polybasis Printf Randkit Rsm
