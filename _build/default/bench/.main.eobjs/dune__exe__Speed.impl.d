bench/speed.ml: Analyze Array Bechamel Benchmark Circuit Fun Hashtbl Instance Linalg List Measure Polybasis Printf Randkit Rsm Staged Test Time Toolkit
