bench/fig6.ml: Array Bench_util Circuit Float Fun Linalg List Polybasis Printf Randkit Rsm String
