bench/tables.ml: Array Bench_util Circuit Float Linalg List Polybasis Printf Randkit Rsm
