bench/fig4.ml: Bench_util Circuit List Polybasis Printf Randkit Rsm
