bench/bench_util.ml: Array Circuit Linalg List Lstsq Mat Polybasis Printf Randkit Rsm String
