bench/ablation.ml: Array Bench_util Circuit Float Hashtbl Linalg List Polybasis Printf Randkit Rsm Stat
