open Test_util
open Linalg

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_exact_recovery () =
  let support = [| 4; 11; 29; 47 |] and coeffs = [| 3.; -2.; 1.5; 0.9 |] in
  let g, f = sparse_problem ~k:80 ~m:60 ~support ~coeffs 701 in
  let m = Rsm.Cosamp.fit g f ~s:4 in
  Alcotest.(check (array int)) "support" support m.Rsm.Model.support;
  check_vec ~eps:1e-8 "coefficients" coeffs m.Rsm.Model.coeffs

let test_support_size_bounded () =
  let g, f =
    sparse_problem ~noise:0.4 ~k:90 ~m:50 ~support:[| 3; 20 |]
      ~coeffs:[| 2.; -1. |] 702
  in
  let steps = Rsm.Cosamp.path g f ~s:5 in
  Array.iter
    (fun st ->
      check_bool "pruned to s" true (Array.length st.Rsm.Cosamp.support <= 5))
    steps

let test_backtracking_repairs_omp_failure () =
  (* A correlated design where OMP's first pick can be wrong: CoSaMP's
     pruning must do at least as well in residual at equal sparsity. *)
  let gen = Randkit.Prng.create 703 in
  let k = 60 and m = 40 in
  let g = Mat.create k m in
  (* Column 0 is an imperfect decoy aligned with col1 + col2: it wins
     OMP's first correlation scan but cannot (with one more column)
     reach the residual of the true pair {1, 2}. *)
  let base = Array.init m (fun _ -> Randkit.Gaussian.vector gen k) in
  for i = 0 to k - 1 do
    for j = 1 to m - 1 do
      Mat.set g i j base.(j).(i)
    done;
    Mat.set g i 0
      (((base.(1).(i) +. base.(2).(i)) /. sqrt 2.)
      +. (0.3 *. base.(0).(i)))
  done;
  let f = Array.init k (fun i -> Mat.get g i 1 +. Mat.get g i 2) in
  let omp = Rsm.Omp.fit g f ~lambda:2 in
  let cosamp = Rsm.Cosamp.fit g f ~s:2 in
  let resid model = Vec.nrm2 (Vec.sub f (Rsm.Model.predict_design model g)) in
  (* OMP is stuck with the decoy in its support; CoSaMP prunes it away. *)
  check_bool "omp picked the decoy first" true
    (Array.mem 0 omp.Rsm.Model.support);
  Alcotest.(check (array int)) "cosamp finds the true pair" [| 1; 2 |]
    cosamp.Rsm.Model.support;
  check_bool "cosamp strictly better residual" true
    (resid cosamp < resid omp)

let test_residual_best_step_selected () =
  let g, f =
    sparse_problem ~noise:0.3 ~k:70 ~m:30 ~support:[| 2; 9; 21 |]
      ~coeffs:[| 1.; -1.; 0.5 |] 704
  in
  let steps = Rsm.Cosamp.path g f ~s:3 in
  let best = Rsm.Cosamp.fit g f ~s:3 in
  let best_res = Vec.nrm2 (Vec.sub f (Rsm.Model.predict_design best g)) in
  Array.iter
    (fun st ->
      check_bool "fit picks the best step" true
        (best_res <= st.Rsm.Cosamp.residual_norm +. 1e-9))
    steps

let test_validation () =
  let g, f = sparse_problem ~k:20 ~m:10 ~support:[| 1 |] ~coeffs:[| 1. |] 705 in
  check_raises_invalid "s = 0" (fun () -> ignore (Rsm.Cosamp.path g f ~s:0));
  check_raises_invalid "3s > K" (fun () -> ignore (Rsm.Cosamp.path g f ~s:7))

let prop_recovery =
  qtest ~count:15 "CoSaMP exact recovery on random 3-sparse problems"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let support = [| 2; 19; 33 |] and coeffs = [| 1.; -2.; 0.5 |] in
      let g, f = sparse_problem ~k:60 ~m:40 ~support ~coeffs seed in
      let m = Rsm.Cosamp.fit g f ~s:3 in
      m.Rsm.Model.support = support)

let suite =
  ( "cosamp",
    [
      case "exact recovery" test_exact_recovery;
      case "support pruned to s" test_support_size_bounded;
      case "backtracking beats greedy on decoys" test_backtracking_repairs_omp_failure;
      case "fit returns best step" test_residual_best_step_selected;
      case "validation" test_validation;
      prop_recovery;
    ] )
