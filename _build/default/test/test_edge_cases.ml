(* Degenerate and boundary inputs across the stack: tiny systems,
   constant responses, zero columns, single samples. A production
   library must fail loudly or behave sensibly on all of these. *)
open Test_util
open Linalg

(* --- solvers on tiny systems --- *)

let test_omp_single_column () =
  let g = Mat.of_arrays [| [| 2. |]; [| 1. |]; [| -1. |] |] in
  let f = [| 4.; 2.; -2. |] in
  let m = Rsm.Omp.fit g f ~lambda:1 in
  check_int "one basis" 1 (Rsm.Model.nnz m);
  check_float ~eps:1e-12 "coefficient" 2. (Rsm.Model.coeff m 0)

let test_omp_single_sample () =
  (* K = 1: one equation, any single column fits it exactly. *)
  let g = Mat.of_arrays [| [| 3.; 1. |] |] in
  let f = [| 6. |] in
  let m = Rsm.Omp.fit g f ~lambda:1 in
  check_int "one basis" 1 (Rsm.Model.nnz m);
  check_float ~eps:1e-10 "exact fit" 0.
    (Vec.nrm2 (Vec.sub f (Rsm.Model.predict_design m g)))

let test_omp_zero_response () =
  let gen = Randkit.Prng.create 101 in
  let g = Randkit.Gaussian.matrix gen 10 5 in
  let f = Array.make 10 0. in
  let steps = Rsm.Omp.path g f ~max_lambda:5 in
  check_int "nothing selected for zero response" 0 (Array.length steps)

let test_omp_zero_column () =
  (* An all-zero column can never be selected. *)
  let gen = Randkit.Prng.create 102 in
  let g = Mat.init 20 6 (fun _ j -> if j = 2 then 0. else Randkit.Gaussian.sample gen) in
  let f = Array.init 20 (fun i -> Mat.get g i 0) in
  let steps = Rsm.Omp.path g f ~max_lambda:5 in
  Array.iter
    (fun s ->
      check_bool "zero column never selected" false
        (Array.mem 2 s.Rsm.Omp.model.Rsm.Model.support))
    steps

let test_star_zero_response () =
  let gen = Randkit.Prng.create 103 in
  let g = Randkit.Gaussian.matrix gen 10 5 in
  let steps = Rsm.Star.path g (Array.make 10 0.) ~max_lambda:5 in
  check_int "no steps" 0 (Array.length steps)

let test_lars_zero_response () =
  let gen = Randkit.Prng.create 104 in
  let g = Randkit.Gaussian.matrix gen 10 5 in
  let steps = Rsm.Lars.path g (Array.make 10 0.) ~max_steps:5 in
  check_int "no steps" 0 (Array.length steps)

let test_lars_single_column () =
  let g = Mat.of_arrays [| [| 1. |]; [| 2. |]; [| 3. |] |] in
  let f = [| 2.; 4.; 6. |] in
  let steps = Rsm.Lars.path g f ~max_steps:3 in
  check_bool "at least one step" true (Array.length steps >= 1);
  let final = steps.(Array.length steps - 1).Rsm.Lars.model in
  (* LAR's final step reaches the full LS solution: coefficient 2. *)
  check_float ~eps:1e-8 "reaches LS endpoint" 2. (Rsm.Model.coeff final 0)

let test_stomp_zero_response () =
  let gen = Randkit.Prng.create 105 in
  let g = Randkit.Gaussian.matrix gen 10 5 in
  let m = Rsm.Stomp.fit g (Array.make 10 0.) in
  check_int "empty model" 0 (Rsm.Model.nnz m)

let test_lasso_cd_zero_design () =
  let g = Mat.create 5 3 in
  let f = [| 1.; 2.; 3.; 4.; 5. |] in
  (* All-zero columns: coordinate descent must terminate with zeros. *)
  let m = Rsm.Lasso_cd.fit g f ~reg:0.1 in
  check_int "all zero" 0 (Rsm.Model.nnz m)

(* --- constant-response metric edge --- *)

let test_relative_rms_constant_pred () =
  let truth = [| 1.; 2.; 3. |] in
  let e = Stat.Metrics.relative_rms ~pred:(Array.make 3 0.) ~truth in
  check_bool "well defined, > 1" true (Float.is_finite e && e > 1.)

(* --- CV with minimal folds/data --- *)

let test_cv_two_points_two_folds () =
  let g = rng () in
  let plan = Stat.Crossval.make_plan g ~n:2 ~folds:2 in
  let e =
    Stat.Crossval.run plan
      ~fit:(fun ~train -> Array.length train)
      ~error:(fun n ~held_out:_ -> float_of_int n)
  in
  check_float "each fold trains on 1" 1. e

let test_select_minimum_viable () =
  (* Smallest workable CV problem: 8 samples, 4 folds. *)
  let gen = Randkit.Prng.create 106 in
  let g = Randkit.Gaussian.matrix gen 8 4 in
  let f = Array.init 8 (fun i -> 2. *. Mat.get g i 1) in
  let r = Rsm.Select.omp (rng ()) ~max_lambda:3 g f in
  check_bool "lambda in range" true
    (r.Rsm.Select.lambda >= 1 && r.Rsm.Select.lambda <= 3)

(* --- basis / design degeneracies --- *)

let test_basis_zero_dim () =
  (* A 0-variable basis still has the constant term via total_degree. *)
  let b = Polybasis.Basis.constant_linear 0 in
  check_int "just the constant" 1 (Polybasis.Basis.size b);
  let row = Polybasis.Basis.eval_point b [||] in
  check_vec "constant row" [| 1. |] row

let test_design_no_samples () =
  let b = Polybasis.Basis.constant_linear 3 in
  let g = Polybasis.Design.matrix_rows b [||] in
  check_int "zero rows" 0 (Mat.rows g)

let test_quadratic_n1 () =
  (* n = 1: constant, linear, square — no cross terms. *)
  let b = Polybasis.Basis.quadratic 1 in
  check_int "three terms" 3 (Polybasis.Basis.size b)

(* --- model numerics --- *)

let test_model_huge_indices () =
  (* Paper-scale dictionary indices must work through coeff lookup. *)
  let m =
    Rsm.Model.make ~basis_size:1_000_000
      ~support:[| 0; 999_999 |]
      ~coeffs:[| 1.; -1. |]
  in
  check_float "first" 1. (Rsm.Model.coeff m 0);
  check_float "last" (-1.) (Rsm.Model.coeff m 999_999);
  check_float "middle" 0. (Rsm.Model.coeff m 500_000)

let test_yield_degenerate_model () =
  (* A constant-only model: yield is 0 or 1 depending on the spec. *)
  let b = Polybasis.Basis.constant_linear 2 in
  let m = Rsm.Model.make ~basis_size:3 ~support:[| 0 |] ~coeffs:[| 5. |] in
  check_float "inside" 1. (Rsm.Yield.gaussian m b (Rsm.Yield.spec_min 4.));
  check_float "outside" 0. (Rsm.Yield.gaussian m b (Rsm.Yield.spec_min 6.))

let test_corner_zero_model () =
  let b = Polybasis.Basis.constant_linear 2 in
  let m = Rsm.Model.make ~basis_size:3 ~support:[||] ~coeffs:[||] in
  let e = Rsm.Corner.linear_worst m b ~sigma:3. ~maximize:true in
  check_float "no variation" 0. e.Rsm.Corner.value;
  check_float "corner at origin" 0. (Vec.nrm2 e.Rsm.Corner.corner)

(* --- simulator bounds --- *)

let test_simulator_validation () =
  check_raises_invalid "dim 0" (fun () ->
      ignore (Circuit.Simulator.make ~name:"x" ~dim:0 ~seconds_per_sample:1. (fun _ -> 0.)));
  check_raises_invalid "negative cost" (fun () ->
      ignore
        (Circuit.Simulator.make ~name:"x" ~dim:1 ~seconds_per_sample:(-1.)
           (fun _ -> 0.)));
  let sim = Circuit.Simulator.make ~name:"x" ~dim:1 ~seconds_per_sample:1. (fun v -> v.(0)) in
  check_raises_invalid "k = 0" (fun () ->
      ignore (Circuit.Simulator.run sim (rng ()) ~k:0))

let suite =
  ( "edge-cases",
    [
      case "omp: single column" test_omp_single_column;
      case "omp: single sample" test_omp_single_sample;
      case "omp: zero response" test_omp_zero_response;
      case "omp: zero column never selected" test_omp_zero_column;
      case "star: zero response" test_star_zero_response;
      case "lars: zero response" test_lars_zero_response;
      case "lars: single column reaches LS" test_lars_single_column;
      case "stomp: zero response" test_stomp_zero_response;
      case "lasso-cd: zero design" test_lasso_cd_zero_design;
      case "metrics: constant prediction" test_relative_rms_constant_pred;
      case "crossval: two points" test_cv_two_points_two_folds;
      case "select: minimum viable" test_select_minimum_viable;
      case "basis: zero dimension" test_basis_zero_dim;
      case "design: no samples" test_design_no_samples;
      case "basis: quadratic n=1" test_quadratic_n1;
      case "model: million-entry dictionary" test_model_huge_indices;
      case "yield: constant model" test_yield_degenerate_model;
      case "corner: zero model" test_corner_zero_model;
      case "simulator: validation" test_simulator_validation;
    ] )
