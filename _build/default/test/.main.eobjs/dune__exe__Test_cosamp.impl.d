test/test_cosamp.ml: Alcotest Array Linalg Mat QCheck Randkit Rsm Test_util Vec
