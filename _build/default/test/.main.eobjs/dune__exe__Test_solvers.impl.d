test/test_solvers.ml: Alcotest Array Float Linalg List Lstsq Mat Polybasis QCheck Randkit Rsm Stat Test_util Vec
