test/test_randkit.ml: Alcotest Array Float Fun Hashtbl Linalg List Mat Printf QCheck Randkit Stat Test_util
