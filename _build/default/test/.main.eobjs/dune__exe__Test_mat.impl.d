test/test_mat.ml: Array Linalg Mat QCheck Randkit Test_util Vec
