test/test_extensions.ml: Alcotest Array Circuit Float Fun Linalg Polybasis Printf Randkit Rsm Stat Test_util
