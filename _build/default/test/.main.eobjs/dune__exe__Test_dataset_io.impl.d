test/test_dataset_io.ml: Alcotest Array Buffer Circuit Filename Fun Polybasis Rsm Sys Test_util
