test/main.mli:
