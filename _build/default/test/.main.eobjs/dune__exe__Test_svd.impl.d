test/test_svd.ml: Array Eigen Float Linalg Mat Printf QCheck Randkit Rsm Svd Test_util Vec
