test/test_edge_cases.ml: Array Circuit Float Linalg Mat Polybasis Randkit Rsm Stat Test_util Vec
