test/test_vec.ml: Alcotest Array Float Gen Linalg QCheck Test_util Vec
