test/test_integration.ml: Array Circuit Float Linalg Polybasis Printf Randkit Rsm Test_util
