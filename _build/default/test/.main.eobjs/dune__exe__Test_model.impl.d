test/test_model.ml: Alcotest Linalg Mat Polybasis Rsm Test_util
