test/test_circuit.ml: Alcotest Array Circuit Float Hashtbl Linalg List Mosfet Opamp Process Simulator Sram Stat Test_util Testbench
