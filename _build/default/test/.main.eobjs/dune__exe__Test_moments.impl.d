test/test_moments.ml: Array Float List Polybasis Printf Randkit Rsm Stat Test_util
