test/test_util.ml: Alcotest Linalg QCheck QCheck_alcotest Randkit
