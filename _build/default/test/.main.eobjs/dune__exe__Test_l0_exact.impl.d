test/test_l0_exact.ml: Alcotest Array Linalg List Mat Printf Randkit Rsm Test_util Vec
