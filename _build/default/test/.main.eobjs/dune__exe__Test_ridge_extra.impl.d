test/test_ridge_extra.ml: Array Circuit Float Linalg Mat Randkit Rsm Stat Test_util
