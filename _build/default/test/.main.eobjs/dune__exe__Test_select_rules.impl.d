test/test_select_rules.ml: Alcotest Array Linalg List Mat Randkit Rsm Test_util
