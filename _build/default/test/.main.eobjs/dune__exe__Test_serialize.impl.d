test/test_serialize.ml: Alcotest Array Filename Fun Linalg Randkit Rsm Sys Test_util
