test/test_misc_api.ml: Alcotest Array Float Format Fun Gen Linalg Mat Polybasis QCheck Qr Randkit Rsm Stat String Test_util Vec
