test/test_select.ml: Alcotest Array Linalg List Mat Randkit Rsm Test_util
