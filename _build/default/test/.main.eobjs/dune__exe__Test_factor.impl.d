test/test_factor.ml: Alcotest Array Cholesky Eigen Linalg Lstsq Mat QCheck Qr Randkit Test_util Tri Vec
