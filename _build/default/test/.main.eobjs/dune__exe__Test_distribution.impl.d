test/test_distribution.ml: Alcotest Array Float List Printf QCheck Randkit Stat String Test_util
