test/test_polybasis.ml: Alcotest Array Basis Design Float Hermite Linalg List Mat Polybasis Printf QCheck Randkit Term Test_util
