test/test_diagnostics.ml: Array Circuit Float Linalg Mat Polybasis Printf Randkit Rsm Test_util Vec
