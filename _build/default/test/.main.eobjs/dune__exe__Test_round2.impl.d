test/test_round2.ml: Alcotest Array Cholesky Float Linalg Lu Mat Polybasis Printf Randkit Rsm Stat Svd Test_util
