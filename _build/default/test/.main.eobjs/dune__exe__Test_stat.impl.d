test/test_stat.ml: Array Float Gen Hashtbl Linalg Mat QCheck Randkit Stat Test_util
