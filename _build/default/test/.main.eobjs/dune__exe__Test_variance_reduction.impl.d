test/test_variance_reduction.ml: Array Circuit Float Polybasis Printf Randkit Rsm Stat Test_util
