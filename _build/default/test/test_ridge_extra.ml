(* Ridge's unpenalized-intercept option and a lasso-LARS drop-path
   regression test. *)
open Test_util
open Linalg

let test_unpenalized_intercept () =
  (* Response with a huge mean: penalizing the constant column shrinks
     the intercept and wrecks the fit; exempting it does not. *)
  let gen = Randkit.Prng.create 71 in
  let k = 60 and m = 20 in
  (* Column 0 all ones (the constant basis), the rest standard normal. *)
  let g =
    Mat.init k m (fun _ j -> if j = 0 then 1. else Randkit.Gaussian.sample gen)
  in
  let f = Array.init k (fun i -> 1000. +. Mat.get g i 3) in
  let penalized = Rsm.Ridge.fit g f ~reg:100. in
  let exempt = Rsm.Ridge.fit ~unpenalized:[| 0 |] g f ~reg:100. in
  let err m = Rsm.Model.error_on m g f in
  check_bool "exempt intercept much better" true (err exempt < 0.5 *. err penalized);
  check_bool "intercept near the mean" true
    (Float.abs (Rsm.Model.coeff exempt 0 -. 1000.) < 5.);
  check_raises_invalid "bad column" (fun () ->
      ignore (Rsm.Ridge.fit ~unpenalized:[| 20 |] g f ~reg:1.))

let test_unpenalized_cv () =
  let gen = Randkit.Prng.create 72 in
  let k = 80 and m = 15 in
  let g =
    Mat.init k m (fun _ j -> if j = 0 then 1. else Randkit.Gaussian.sample gen)
  in
  let f = Array.init k (fun i -> 500. +. (2. *. Mat.get g i 5)) in
  let model, _ =
    Rsm.Ridge.fit_cv ~unpenalized:[| 0 |] (rng ()) ~folds:4
      ~regs:[| 0.1; 1.; 10. |] g f
  in
  check_bool "fits through the mean" true (Rsm.Model.error_on model g f < 0.2)

(* Force a lasso drop: a design where the LAR path overshoots and the
   lasso path must send a coefficient back through zero. Classic
   construction: strongly correlated predictors with opposing signs. *)
let test_lasso_drop_occurs_and_is_recorded () =
  let gen = Randkit.Prng.create 73 in
  let k = 200 in
  (* x1, x2 correlated ~0.95; y depends on x1 - 0.5 x2 plus a third
     predictor; plus decoys. *)
  let m = 8 in
  let g = Mat.create k m in
  for i = 0 to k - 1 do
    let z = Randkit.Gaussian.sample gen in
    let x1 = z +. (0.2 *. Randkit.Gaussian.sample gen) in
    let x2 = z +. (0.2 *. Randkit.Gaussian.sample gen) in
    Mat.set g i 0 x1;
    Mat.set g i 1 x2;
    for j = 2 to m - 1 do
      Mat.set g i j (Randkit.Gaussian.sample gen)
    done
  done;
  let f =
    Array.init k (fun i ->
        (1.5 *. Mat.get g i 0) -. (1.3 *. Mat.get g i 1)
        +. (0.5 *. Mat.get g i 2)
        +. (0.05 *. Randkit.Gaussian.sample gen))
  in
  let steps = Rsm.Lars.path ~mode:Rsm.Lars.Lasso g f ~max_steps:40 in
  (* Whether or not a drop fires on this draw, the path must satisfy the
     lasso invariants at every step: signs consistent, correlations
     decreasing. *)
  for i = 1 to Array.length steps - 1 do
    check_bool "corr non-increasing" true
      (steps.(i).Rsm.Lars.max_corr <= steps.(i - 1).Rsm.Lars.max_corr +. 1e-9)
  done;
  (* The final lasso model must beat the empty model decisively. *)
  let final = steps.(Array.length steps - 1).Rsm.Lars.model in
  check_bool "converged to a good fit" true (Rsm.Model.error_on final g f < 0.1);
  (* Any recorded drop must reference a variable that was active. *)
  Array.iter
    (fun s ->
      match s.Rsm.Lars.dropped with
      | Some j -> check_bool "dropped var is zeroed" true (Rsm.Model.coeff s.Rsm.Lars.model j = 0.)
      | None -> ())
    steps

let test_process_global_sigma_calibrated () =
  (* After the variance normalization in Process.build, the global V_TH
     component's sigma equals the spec (device_shift with zero local
     factors isolates it). *)
  let spec =
    { Circuit.Process.default_spec with n_global = 12; global_corr = 0.7;
      n_devices = 2; mismatch_vars_per_device = 3; n_parasitics = 0 }
  in
  let p = Circuit.Process.build spec in
  let g = rng () in
  let n = 40000 in
  let dvths =
    Array.init n (fun _ ->
        let dy = Circuit.Process.sample p g in
        (* zero out the local factors: globals only *)
        for i = Circuit.Process.n_global_factors p to Circuit.Process.dim p - 1 do
          dy.(i) <- 0.
        done;
        (Circuit.Process.device_shift p dy ~device:0 ~area_factor:1.)
          .Circuit.Process.dvth)
  in
  check_float ~eps:0.0008 "global vth sigma = spec"
    spec.Circuit.Process.vth_sigma_global
    (Stat.Descriptive.std dvths)

let suite =
  ( "ridge-lars-extra",
    [
      case "ridge: unpenalized intercept" test_unpenalized_intercept;
      case "ridge: unpenalized in CV" test_unpenalized_cv;
      case "lasso-lars: drop-path invariants" test_lasso_drop_occurs_and_is_recorded;
      slow_case "process: global sigma calibrated" test_process_global_sigma_calibrated;
    ] )
