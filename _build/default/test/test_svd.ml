open Linalg
open Test_util

let random_mat g r c = Mat.init r c (fun _ _ -> Randkit.Prng.float g -. 0.5)

let test_diag () =
  let a = Mat.of_arrays [| [| 3.; 0. |]; [| 0.; -4. |] |] in
  let d = Svd.decompose a in
  check_float ~eps:1e-10 "sigma1" 4. d.Svd.sigma.(0);
  check_float ~eps:1e-10 "sigma2" 3. d.Svd.sigma.(1)

let test_reconstruct () =
  let g = rng () in
  let a = random_mat g 8 5 in
  let d = Svd.decompose a in
  check_mat ~eps:1e-8 "U S V^T = A" a (Svd.reconstruct d)

let test_orthogonality () =
  let g = rng () in
  let a = random_mat g 7 4 in
  let d = Svd.decompose a in
  check_mat ~eps:1e-8 "U^T U = I" (Mat.identity 4) (Mat.gram d.Svd.u);
  check_mat ~eps:1e-8 "V^T V = I" (Mat.identity 4) (Mat.gram d.Svd.v)

let test_singular_values_sorted_nonneg () =
  let g = rng () in
  let d = Svd.decompose (random_mat g 10 6) in
  Array.iteri
    (fun i s ->
      check_bool "non-negative" true (s >= 0.);
      if i > 0 then check_bool "sorted" true (s <= d.Svd.sigma.(i - 1)))
    d.Svd.sigma

let test_rank_deficient () =
  (* Two identical columns: rank 1. *)
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 2.; 2. |]; [| 3.; 3. |] |] in
  let d = Svd.decompose a in
  check_int "rank" 1 (Svd.rank d);
  check_bool "condition infinite" true (Svd.condition_number d = Float.infinity)

let test_condition_number () =
  let a = Mat.of_arrays [| [| 10.; 0. |]; [| 0.; 0.1 |] |] in
  let d = Svd.decompose a in
  check_float ~eps:1e-8 "kappa" 100. (Svd.condition_number d)

let test_sigma_vs_eigen () =
  (* Singular values of A = sqrt of eigenvalues of A^T A. *)
  let g = rng () in
  let a = random_mat g 9 4 in
  let d = Svd.decompose a in
  let e = Eigen.symmetric (Mat.gram a) in
  for i = 0 to 3 do
    check_float ~eps:1e-7
      (Printf.sprintf "sigma%d" i)
      (sqrt (Float.max e.Eigen.values.(i) 0.))
      d.Svd.sigma.(i)
  done

let test_pseudo_inverse () =
  let g = rng () in
  let a = random_mat g 8 4 in
  let d = Svd.decompose a in
  let pinv = Svd.pseudo_inverse d in
  (* A+ A = I for full column rank. *)
  check_mat ~eps:1e-8 "A+ A = I" (Mat.identity 4) (Mat.mul pinv a)

let test_min_norm_solution () =
  (* Underdetermined (via transpose trick): among all LS solutions the
     SVD one has minimal norm. Compare with the QR LS solution on an
     over-determined consistent system: they agree. *)
  let g = rng () in
  let a = random_mat g 10 5 in
  let x_true = Array.init 5 (fun i -> float_of_int i -. 2.) in
  let b = Mat.mulv a x_true in
  let d = Svd.decompose a in
  check_vec ~eps:1e-7 "min-norm = exact for consistent full-rank" x_true
    (Svd.solve_min_norm d b)

let test_min_norm_dense_vs_sparse () =
  (* The L2 minimum-norm answer to an underdetermined sparse problem is
     dense and wrong, while OMP recovers the truth: the contrast the
     paper's Section III draws. A^T has shape 5x10 -> solve with pinv of
     the transpose. *)
  let g = rng () in
  let wide = random_mat g 30 60 in
  let x_sparse = Array.make 60 0. in
  x_sparse.(7) <- 2.;
  x_sparse.(41) <- -1.;
  let b = Mat.mulv wide x_sparse in
  (* min-norm via pinv of wide = (pinv of wide^T)^T trick: decompose
     wide^T (60x30, m>=n ok). pinv(A) = pinv(A^T)^T. *)
  let d = Svd.decompose (Mat.transpose wide) in
  let pinv_t = Svd.pseudo_inverse d in
  let x_l2 = Mat.mulv (Mat.transpose pinv_t) b in
  check_bool "L2 solution is dense" true (Vec.norm0 ~tol:1e-6 x_l2 > 20);
  let omp = Rsm.Omp.fit wide b ~lambda:2 in
  check_vec ~eps:1e-6 "OMP finds the sparse truth" x_sparse
    (Rsm.Model.to_dense omp)

let prop_reconstruct_random =
  qtest ~count:20 "SVD reconstructs random matrices"
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (m0, n0) ->
      let m = max m0 n0 and n = min m0 n0 in
      let g = rng () in
      let a = random_mat g m n in
      Mat.approx_equal ~tol:1e-7 a (Svd.reconstruct (Svd.decompose a)))

let prop_frobenius_invariant =
  qtest ~count:20 "Frobenius norm = l2 norm of singular values"
    QCheck.(int_range 1 8)
    (fun n ->
      let g = rng () in
      let a = random_mat g (n + 3) n in
      let d = Svd.decompose a in
      Float.abs (Mat.frobenius a -. Vec.nrm2 d.Svd.sigma) < 1e-8)

let suite =
  ( "svd",
    [
      case "diagonal" test_diag;
      case "reconstruction" test_reconstruct;
      case "orthogonal factors" test_orthogonality;
      case "singular values sorted" test_singular_values_sorted_nonneg;
      case "rank deficiency" test_rank_deficient;
      case "condition number" test_condition_number;
      case "sigma = sqrt eig(A^T A)" test_sigma_vs_eigen;
      case "pseudo-inverse" test_pseudo_inverse;
      case "min-norm solve" test_min_norm_solution;
      case "L2 dense vs OMP sparse (Section III)" test_min_norm_dense_vs_sparse;
      prop_reconstruct_random;
      prop_frobenius_invariant;
    ] )
