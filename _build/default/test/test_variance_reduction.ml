open Test_util

(* A "simulator": linear Gaussian function plus a small nonlinearity the
   model does not capture. *)
let basis2 = Polybasis.Basis.constant_linear 2

let sim_eval dy = 10. +. (3. *. dy.(0)) +. (4. *. dy.(1)) +. (0.1 *. dy.(0) *. dy.(0))

let fitted_model () =
  (* Fit the linear model from samples of the simulator itself. *)
  let g = Randkit.Prng.create 601 in
  let pts = Array.init 200 (fun _ -> Randkit.Gaussian.vector g 2) in
  let design = Polybasis.Design.matrix_rows basis2 pts in
  let f = Array.map sim_eval pts in
  Rsm.Omp.fit design f ~lambda:3

(* --- control variates --- *)

let test_cv_unbiased_and_tighter () =
  let model = fitted_model () in
  let e =
    Rsm.Variance_reduction.control_variate_mean ~samples:400 sim_eval model
      basis2 (rng ())
  in
  (* True mean = 10 + 0.1·E[y²] = 10.1. *)
  check_bool "CV estimate near truth" true
    (Float.abs (e.Rsm.Variance_reduction.mean -. 10.1)
    < 5. *. e.Rsm.Variance_reduction.std_error +. 0.02);
  check_bool "large variance reduction" true
    (e.Rsm.Variance_reduction.variance_reduction > 20.);
  check_bool "CV se below plain se" true
    (e.Rsm.Variance_reduction.std_error < e.Rsm.Variance_reduction.plain_std_error)

let test_cv_useless_model_harmless () =
  (* A zero model: CV reduces to plain MC (ratio ~ 1). *)
  let zero = Rsm.Model.make ~basis_size:3 ~support:[||] ~coeffs:[||] in
  let e =
    Rsm.Variance_reduction.control_variate_mean ~samples:300 sim_eval zero
      basis2 (rng ())
  in
  check_float ~eps:1e-9 "same estimate" e.Rsm.Variance_reduction.plain_mean
    e.Rsm.Variance_reduction.mean;
  check_float ~eps:1e-9 "ratio 1" 1. e.Rsm.Variance_reduction.variance_reduction

let test_cv_validation () =
  let model = fitted_model () in
  check_raises_invalid "one sample" (fun () ->
      ignore
        (Rsm.Variance_reduction.control_variate_mean ~samples:1 sim_eval model
           basis2 (rng ())))

(* --- importance sampling --- *)

let test_is_matches_closed_form () =
  (* Pure linear simulator: f ~ N(10, 25); P(f > 25) = 1 − Φ(3) ≈ 1.35e-3.
     Plain MC with 2000 samples sees ~2.7 events; IS nails it. *)
  let lin_eval dy = 10. +. (3. *. dy.(0)) +. (4. *. dy.(1)) in
  let model =
    Rsm.Model.make ~basis_size:3 ~support:[| 0; 1; 2 |] ~coeffs:[| 10.; 3.; 4. |]
  in
  let e =
    Rsm.Variance_reduction.importance_sampling_tail ~samples:4000 lin_eval
      model basis2 (rng ()) ~threshold:25.
  in
  let truth = 1. -. Stat.Distribution.cdf 3. in
  check_bool
    (Printf.sprintf "IS %.2e vs truth %.2e" e.Rsm.Variance_reduction.probability truth)
    true
    (Float.abs (e.Rsm.Variance_reduction.probability -. truth)
    < Float.max (5. *. e.Rsm.Variance_reduction.std_error) (0.3 *. truth));
  (* The shifted proposal concentrates the weight where failures live:
     the relative precision of the tail estimate is what matters (the
     raw effective-sample count is dominated by the non-failing bulk). *)
  check_bool "tight relative standard error" true
    (e.Rsm.Variance_reduction.std_error
    < 0.3 *. e.Rsm.Variance_reduction.probability)

let test_is_deep_tail () =
  (* P(f > mean + 5 sigma) ≈ 2.87e-7: unreachable by plain MC at any
     sane budget, routine for IS. *)
  let lin_eval dy = 10. +. (3. *. dy.(0)) +. (4. *. dy.(1)) in
  let model =
    Rsm.Model.make ~basis_size:3 ~support:[| 0; 1; 2 |] ~coeffs:[| 10.; 3.; 4. |]
  in
  let e =
    Rsm.Variance_reduction.importance_sampling_tail ~samples:6000 lin_eval
      model basis2 (rng ()) ~threshold:35.
  in
  let truth = 1. -. Stat.Distribution.cdf 5. in
  check_bool
    (Printf.sprintf "5-sigma: IS %.2e vs truth %.2e" e.Rsm.Variance_reduction.probability truth)
    true
    (e.Rsm.Variance_reduction.probability > 0.2 *. truth
    && e.Rsm.Variance_reduction.probability < 5. *. truth)

let test_is_requires_linear_part () =
  let zero = Rsm.Model.make ~basis_size:3 ~support:[||] ~coeffs:[||] in
  check_raises_invalid "no linear part" (fun () ->
      ignore
        (Rsm.Variance_reduction.importance_sampling_tail sim_eval zero basis2
           (rng ()) ~threshold:20.))

let test_is_on_circuit_model () =
  (* End to end on the SRAM: estimate the probability of a read slower
     than nominal + 5 sigma using the fitted model to steer sampling,
     with the real simulator in the loop. *)
  let sram = Circuit.Sram.build ~cells:40 () in
  let sim = Circuit.Sram.simulator sram in
  let g = rng () in
  let data = Circuit.Simulator.run sim g ~k:250 in
  let basis = Polybasis.Basis.constant_linear (Circuit.Sram.dim sram) in
  let design = Polybasis.Design.matrix_rows basis data.Circuit.Simulator.points in
  let model = Rsm.Omp.fit design data.Circuit.Simulator.values ~lambda:40 in
  let mu = Stat.Descriptive.mean data.Circuit.Simulator.values in
  let sd = Stat.Descriptive.std data.Circuit.Simulator.values in
  let threshold = mu +. (5. *. sd) in
  let e =
    Rsm.Variance_reduction.importance_sampling_tail ~samples:1500
      (fun dy -> Circuit.Sram.read_delay_ps sram dy)
      model basis g ~threshold
  in
  (* Ground truth ~ Phi-bar(5) if the delay were exactly the linear
     model; the simulator's nonlinearity moves it, so only demand the
     right order of magnitude. *)
  check_bool
    (Printf.sprintf "5-sigma delay probability %.2e plausible"
       e.Rsm.Variance_reduction.probability)
    true
    (e.Rsm.Variance_reduction.probability > 1e-9
    && e.Rsm.Variance_reduction.probability < 1e-4)

let suite =
  ( "variance-reduction",
    [
      case "cv: unbiased and tighter" test_cv_unbiased_and_tighter;
      case "cv: useless model harmless" test_cv_useless_model_harmless;
      case "cv: validation" test_cv_validation;
      slow_case "is: matches closed form at 3 sigma" test_is_matches_closed_form;
      slow_case "is: reaches the 5-sigma tail" test_is_deep_tail;
      case "is: requires linear part" test_is_requires_linear_part;
      slow_case "is: end-to-end on the SRAM" test_is_on_circuit_model;
    ] )
