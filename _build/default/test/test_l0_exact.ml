open Test_util
open Linalg

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_count_subsets () =
  check_int "C(5,2)" 10 (Rsm.L0_exact.count_subsets ~m:5 ~lambda:2);
  check_int "C(20,3)" 1140 (Rsm.L0_exact.count_subsets ~m:20 ~lambda:3);
  check_int "C(n,0)" 1 (Rsm.L0_exact.count_subsets ~m:5 ~lambda:0);
  check_int "lambda > m" 0 (Rsm.L0_exact.count_subsets ~m:3 ~lambda:5)

let test_exact_finds_planted_support () =
  let support = [| 2; 11 |] and coeffs = [| 2.; -1. |] in
  let g, f = sparse_problem ~k:40 ~m:15 ~support ~coeffs 401 in
  let sol = Rsm.L0_exact.solve g f ~lambda:2 in
  Alcotest.(check (array int)) "support" support sol.Rsm.L0_exact.model.Rsm.Model.support;
  check_float ~eps:1e-8 "zero residual" 0. sol.Rsm.L0_exact.residual_norm;
  check_int "tried all C(15,2)" 105 sol.Rsm.L0_exact.subsets_tried

let test_omp_never_beats_exact () =
  (* The NP-hard optimum lower-bounds every heuristic's residual. *)
  List.iter
    (fun seed ->
      let g, f =
        sparse_problem ~noise:0.5 ~k:30 ~m:12
          ~support:[| 1; 7; 10 |] ~coeffs:[| 1.; -2.; 0.5 |] seed
      in
      let exact = Rsm.L0_exact.solve g f ~lambda:3 in
      List.iter
        (fun (name, model) ->
          let res = Vec.nrm2 (Vec.sub f (Rsm.Model.predict_design model g)) in
          check_bool
            (Printf.sprintf "%s >= exact at seed %d" name seed)
            true
            (res >= exact.Rsm.L0_exact.residual_norm -. 1e-9))
        [
          ("OMP", Rsm.Omp.fit g f ~lambda:3);
          ("STAR", Rsm.Star.fit g f ~lambda:3);
          ("LAR", Rsm.Lars.fit g f ~lambda:3);
        ])
    [ 402; 403; 404; 405 ]

let test_omp_usually_matches_exact () =
  (* On incoherent problems OMP typically attains the exact optimum. *)
  let hits = ref 0 in
  let total = 10 in
  for seed = 500 to 500 + total - 1 do
    let g, f =
      sparse_problem ~noise:0.2 ~k:50 ~m:14 ~support:[| 0; 8 |]
        ~coeffs:[| 2.; 1.5 |] seed
    in
    let exact = Rsm.L0_exact.solve g f ~lambda:2 in
    let omp = Rsm.Omp.fit g f ~lambda:2 in
    let res = Vec.nrm2 (Vec.sub f (Rsm.Model.predict_design omp g)) in
    if res <= exact.Rsm.L0_exact.residual_norm +. 1e-9 then incr hits
  done;
  check_bool
    (Printf.sprintf "OMP optimal in %d/%d cases" !hits total)
    true
    (!hits >= 8)

let test_exact_validation () =
  let g, f = sparse_problem ~k:10 ~m:8 ~support:[| 1 |] ~coeffs:[| 1. |] 406 in
  check_raises_invalid "lambda 0" (fun () ->
      ignore (Rsm.L0_exact.solve g f ~lambda:0));
  check_raises_invalid "cap exceeded" (fun () ->
      ignore (Rsm.L0_exact.solve ~max_subsets:5 g f ~lambda:3))

let suite =
  ( "l0-exact",
    [
      case "subset counting" test_count_subsets;
      case "finds planted support" test_exact_finds_planted_support;
      case "heuristics never beat the optimum" test_omp_never_beats_exact;
      case "OMP usually attains the optimum" test_omp_usually_matches_exact;
      case "validation" test_exact_validation;
    ] )
