open Test_util

let test_central_moments_known () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "m0" 1. (Stat.Moments.central_moment 0 xs);
  check_float ~eps:1e-12 "m1 = 0" 0. (Stat.Moments.central_moment 1 xs);
  check_float ~eps:1e-12 "m2" 2. (Stat.Moments.central_moment 2 xs);
  check_float ~eps:1e-12 "m3 symmetric" 0. (Stat.Moments.central_moment 3 xs);
  check_raises_invalid "empty" (fun () ->
      ignore (Stat.Moments.central_moment 2 [||]))

let test_skewness_sign () =
  (* Right-skewed data (exponential-ish) has positive skewness. *)
  let g = rng () in
  let right = Array.init 20000 (fun _ -> -.log (1. -. Randkit.Prng.float g)) in
  check_bool "exponential skew ~ 2" true
    (Stat.Moments.skewness right > 1.5 && Stat.Moments.skewness right < 2.5);
  let left = Array.map Float.neg right in
  check_bool "negated flips sign" true (Stat.Moments.skewness left < -1.5);
  check_float "constant" 0. (Stat.Moments.skewness [| 3.; 3.; 3. |])

let test_kurtosis_gaussian_zero () =
  let g = rng () in
  let z = Randkit.Gaussian.vector g 100000 in
  check_float ~eps:0.1 "gaussian excess kurtosis" 0. (Stat.Moments.kurtosis_excess z);
  check_float ~eps:0.05 "gaussian skewness" 0. (Stat.Moments.skewness z)

let test_summary_consistent () =
  let g = rng () in
  let xs = Array.init 5000 (fun _ -> (3. *. Randkit.Gaussian.sample g) +. 7.) in
  let mean, std, skew, kurt = Stat.Moments.summary xs in
  check_float ~eps:1e-10 "mean" (Stat.Descriptive.mean xs) mean;
  check_float ~eps:1e-10 "skew" (Stat.Moments.skewness xs) skew;
  check_float ~eps:1e-10 "kurt" (Stat.Moments.kurtosis_excess xs) kurt;
  (* summary's std uses the population convention (moments), so compare
     against sqrt of central_moment 2. *)
  check_float ~eps:1e-10 "std" (sqrt (Stat.Moments.central_moment 2 xs)) std

let test_cornish_fisher_gaussian_limit () =
  (* With zero skew/kurtosis CF is exactly the Gaussian quantile. *)
  List.iter
    (fun p ->
      check_float ~eps:1e-12
        (Printf.sprintf "CF = Gaussian at p=%g" p)
        (10. +. (2. *. Stat.Distribution.quantile p))
        (Stat.Moments.cornish_fisher_quantile ~mean:10. ~std:2. ~skew:0.
           ~kurt_excess:0. p))
    [ 0.01; 0.5; 0.99 ]

let test_cornish_fisher_skew_shifts_tail () =
  (* Positive skew pushes the upper quantile out and pulls the lower in. *)
  let hi_skew =
    Stat.Moments.cornish_fisher_quantile ~mean:0. ~std:1. ~skew:0.8
      ~kurt_excess:0. 0.99
  in
  let hi_sym =
    Stat.Moments.cornish_fisher_quantile ~mean:0. ~std:1. ~skew:0.
      ~kurt_excess:0. 0.99
  in
  check_bool "upper tail stretched" true (hi_skew > hi_sym);
  check_raises_invalid "bad std" (fun () ->
      ignore
        (Stat.Moments.cornish_fisher_quantile ~mean:0. ~std:(-1.) ~skew:0.
           ~kurt_excess:0. 0.5))

let test_cornish_fisher_vs_chi2 () =
  (* A shifted chi-square-like sample: CF quantile should beat the plain
     Gaussian quantile at the 95th percentile. *)
  let g = rng () in
  let xs =
    Array.init 50000 (fun _ ->
        let z = Randkit.Gaussian.sample g in
        z *. z)
  in
  let mean, std, skew, kurt = Stat.Moments.summary xs in
  let true_q95 = Stat.Descriptive.quantile xs 0.95 in
  let cf = Stat.Moments.cornish_fisher_quantile ~mean ~std ~skew ~kurt_excess:kurt 0.95 in
  let gauss = mean +. (std *. Stat.Distribution.quantile 0.95) in
  check_bool
    (Printf.sprintf "CF (%.3f) closer than Gaussian (%.3f) to true %.3f" cf gauss true_q95)
    true
    (Float.abs (cf -. true_q95) < Float.abs (gauss -. true_q95))

let test_jarque_bera () =
  let g = rng () in
  let gauss = Randkit.Gaussian.vector g 5000 in
  check_bool "gaussian accepted" true (Stat.Moments.jarque_bera gauss < 6.);
  let skewed = Array.map (fun x -> x *. x) gauss in
  check_bool "chi2 rejected" true (Stat.Moments.jarque_bera skewed > 100.)

let test_model_output_normality () =
  (* A linear Hermite model of Gaussian factors is Gaussian; adding a
     quadratic term breaks normality — measurable via Jarque-Bera on
     model Monte Carlo. *)
  let basis = Polybasis.Basis.quadratic 3 in
  let lin_idx =
    let rec go i =
      if Polybasis.Term.equal (Polybasis.Basis.term basis i) (Polybasis.Term.linear 0)
      then i
      else go (i + 1)
    in
    go 0
  in
  let sq_idx =
    let rec go i =
      if Polybasis.Term.equal (Polybasis.Basis.term basis i) (Polybasis.Term.square 1)
      then i
      else go (i + 1)
    in
    go 0
  in
  let linear =
    Rsm.Model.make ~basis_size:(Polybasis.Basis.size basis) ~support:[| lin_idx |]
      ~coeffs:[| 2. |]
  in
  let quad =
    Rsm.Model.make ~basis_size:(Polybasis.Basis.size basis)
      ~support:[| lin_idx; sq_idx |] ~coeffs:[| 1.; 1.5 |]
  in
  let g = rng () in
  let v_lin = Rsm.Yield.monte_carlo_values ~samples:20000 linear basis g in
  let v_quad = Rsm.Yield.monte_carlo_values ~samples:20000 quad basis g in
  check_bool "linear model output is Gaussian" true
    (Stat.Moments.jarque_bera v_lin < 8.);
  check_bool "quadratic model output is not" true
    (Stat.Moments.jarque_bera v_quad > 100.)

let suite =
  ( "moments",
    [
      case "central moments" test_central_moments_known;
      slow_case "skewness sign" test_skewness_sign;
      slow_case "gaussian kurtosis" test_kurtosis_gaussian_zero;
      case "summary consistency" test_summary_consistent;
      case "cornish-fisher gaussian limit" test_cornish_fisher_gaussian_limit;
      case "cornish-fisher skew behaviour" test_cornish_fisher_skew_shifts_tail;
      slow_case "cornish-fisher beats gaussian on chi2" test_cornish_fisher_vs_chi2;
      case "jarque-bera" test_jarque_bera;
      slow_case "linear models are Gaussian, quadratic are not"
        test_model_output_normality;
    ] )
