(* Normal distribution functions and histograms. *)
open Test_util

let test_pdf () =
  check_float ~eps:1e-12 "phi(0)" 0.3989422804014327 (Stat.Distribution.pdf 0.);
  check_float ~eps:1e-10 "phi symmetric" (Stat.Distribution.pdf 1.3)
    (Stat.Distribution.pdf (-1.3));
  check_bool "decreasing in |x|" true
    (Stat.Distribution.pdf 2. < Stat.Distribution.pdf 1.)

let test_cdf_known_values () =
  check_float ~eps:1e-6 "Phi(0)" 0.5 (Stat.Distribution.cdf 0.);
  check_float ~eps:1e-5 "Phi(1.96)" 0.975 (Stat.Distribution.cdf 1.96);
  check_float ~eps:1e-6 "Phi(-1) + Phi(1) = 1"
    1.
    (Stat.Distribution.cdf (-1.) +. Stat.Distribution.cdf 1.);
  check_float ~eps:1e-4 "Phi(3)" 0.99865 (Stat.Distribution.cdf 3.);
  check_bool "tails" true
    (Stat.Distribution.cdf (-8.) < 1e-14 && Stat.Distribution.cdf 8. > 1. -. 1e-14)

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      check_float ~eps:1e-5
        (Printf.sprintf "cdf(q(%g))" p)
        p
        (Stat.Distribution.cdf (Stat.Distribution.quantile p)))
    [ 1e-6; 0.001; 0.025; 0.3; 0.5; 0.7; 0.975; 0.999; 1. -. 1e-6 ]

let test_quantile_known () =
  check_float ~eps:1e-5 "q(0.5)" 0. (Stat.Distribution.quantile 0.5);
  check_float ~eps:1e-4 "q(0.975)" 1.959964 (Stat.Distribution.quantile 0.975);
  check_raises_invalid "q(0)" (fun () -> ignore (Stat.Distribution.quantile 0.));
  check_raises_invalid "q(1)" (fun () -> ignore (Stat.Distribution.quantile 1.))

let test_gaussian_yield () =
  check_float ~eps:1e-5 "symmetric window"
    (Stat.Distribution.sigma_to_yield 1.)
    (Stat.Distribution.gaussian_yield ~mean:10. ~sigma:2. ~lower:8. ~upper:12.);
  check_float ~eps:1e-4 "3 sigma" 0.9973 (Stat.Distribution.sigma_to_yield 3.);
  check_float ~eps:1e-6 "one-sided" 0.5
    (Stat.Distribution.gaussian_yield ~mean:0. ~sigma:1. ~lower:0.
       ~upper:Float.infinity);
  check_raises_invalid "bad sigma" (fun () ->
      ignore (Stat.Distribution.gaussian_yield ~mean:0. ~sigma:0. ~lower:0. ~upper:1.))

let test_cdf_mc_agreement () =
  (* Monte-Carlo check of cdf against actual Gaussian samples. *)
  let g = rng () in
  let n = 50000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Randkit.Gaussian.sample g < 1.2 then incr below
  done;
  check_float ~eps:0.01 "MC agreement"
    (Stat.Distribution.cdf 1.2)
    (float_of_int !below /. float_of_int n)

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Stat.Histogram.create ~bins:4 ~range:(0., 4.) [| 0.5; 1.5; 1.6; 2.5; 3.5 |] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 1; 1 |] h.Stat.Histogram.counts;
  check_int "total" 5 h.Stat.Histogram.total;
  check_int "mode" 1 (Stat.Histogram.mode_bin h)

let test_histogram_overflow () =
  let h = Stat.Histogram.create ~bins:2 ~range:(0., 1.) [| -1.; 0.5; 2. |] in
  check_int "under" 1 h.Stat.Histogram.n_underflow;
  check_int "over" 1 h.Stat.Histogram.n_overflow

let test_histogram_density_normalized () =
  let g = rng () in
  let data = Randkit.Gaussian.vector g 20000 in
  let h = Stat.Histogram.create ~bins:40 ~range:(-4., 4.) data in
  let d = Stat.Histogram.densities h in
  let w = 8. /. 40. in
  let integral = Array.fold_left (fun acc x -> acc +. (x *. w)) 0. d in
  check_float ~eps:1e-9 "integrates to 1" 1. integral;
  (* Peak near zero, matching the normal density. *)
  let centers = Stat.Histogram.bin_centers h in
  check_bool "mode near 0" true (Float.abs centers.(Stat.Histogram.mode_bin h) < 0.5)

let test_histogram_edge_cases () =
  check_raises_invalid "empty" (fun () -> ignore (Stat.Histogram.create [||]));
  check_raises_invalid "bins 0" (fun () ->
      ignore (Stat.Histogram.create ~bins:0 [| 1. |]));
  (* Constant data gets a synthetic window. *)
  let h = Stat.Histogram.create [| 5.; 5.; 5. |] in
  check_int "all binned" 3
    (Array.fold_left ( + ) 0 h.Stat.Histogram.counts)

let test_histogram_render () =
  let h = Stat.Histogram.create ~bins:3 ~range:(0., 3.) [| 0.5; 1.5; 1.7 |] in
  let s = Stat.Histogram.render ~width:10 h in
  check_bool "has bars" true (String.contains s '#');
  check_bool "three lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 3)

let test_chi2_distance () =
  let g = rng () in
  let a = Randkit.Gaussian.vector g 5000 in
  let b = Randkit.Gaussian.vector g 5000 in
  let shifted = Array.map (fun x -> x +. 3.) b in
  let range = (-6., 6.) in
  let ha = Stat.Histogram.create ~bins:24 ~range a in
  let hb = Stat.Histogram.create ~bins:24 ~range b in
  let hs = Stat.Histogram.create ~bins:24 ~range shifted in
  check_float ~eps:1e-12 "self distance" 0. (Stat.Histogram.chi2_distance ha ha);
  check_bool "same distribution close" true
    (Stat.Histogram.chi2_distance ha hb < 0.05);
  check_bool "shifted far" true
    (Stat.Histogram.chi2_distance ha hs > 10. *. Stat.Histogram.chi2_distance ha hb);
  let other = Stat.Histogram.create ~bins:10 ~range a in
  check_raises_invalid "binning mismatch" (fun () ->
      ignore (Stat.Histogram.chi2_distance ha other))

let prop_quantile_monotone =
  qtest ~count:50 "normal quantile is monotone"
    QCheck.(pair (float_range 0.01 0.98) (float_range 0.001 0.01))
    (fun (p, dp) ->
      Stat.Distribution.quantile p < Stat.Distribution.quantile (p +. dp))

let suite =
  ( "distribution",
    [
      case "pdf" test_pdf;
      case "cdf known values" test_cdf_known_values;
      case "quantile roundtrip" test_quantile_roundtrip;
      case "quantile known values" test_quantile_known;
      case "gaussian yield" test_gaussian_yield;
      slow_case "cdf vs Monte Carlo" test_cdf_mc_agreement;
      case "histogram: basic" test_histogram_basic;
      case "histogram: overflow" test_histogram_overflow;
      case "histogram: density normalization" test_histogram_density_normalized;
      case "histogram: edge cases" test_histogram_edge_cases;
      case "histogram: render" test_histogram_render;
      case "histogram: chi2 distance" test_chi2_distance;
      prop_quantile_monotone;
    ] )
