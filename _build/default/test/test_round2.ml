(* Second-round extensions: LU, FISTA, coherence diagnostics, Latin
   hypercube sampling, Kolmogorov-Smirnov, joint yield. *)
open Test_util
open Linalg

(* --- LU --- *)

let random_square g n = Mat.init n n (fun _ _ -> Randkit.Prng.float g -. 0.5)

let test_lu_solve () =
  let g = rng () in
  let a = random_square g 7 in
  let x_true = Array.init 7 (fun i -> float_of_int (i - 3)) in
  let b = Mat.mulv a x_true in
  check_vec ~eps:1e-8 "solve" x_true (Lu.lu_solve a b)

let test_lu_pivoting_needed () =
  (* Zero on the leading diagonal: fails without pivoting. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec ~eps:1e-12 "swap solve" [| 2.; 1. |] (Lu.lu_solve a [| 1.; 2. |])

let test_lu_det () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float ~eps:1e-12 "diag det" 6. (Lu.det (Lu.factor a));
  (* Permutation parity: swapping rows flips the sign. *)
  let b = Mat.of_arrays [| [| 0.; 3. |]; [| 2.; 0. |] |] in
  check_float ~eps:1e-12 "swapped det" (-6.) (Lu.det (Lu.factor b))

let test_lu_det_vs_cholesky () =
  let g = rng () in
  let b = random_square g 5 in
  let a = Mat.add (Mat.gram b) (Mat.smul 5. (Mat.identity 5)) in
  let l = Cholesky.factor a in
  check_float ~eps:1e-6 "log det agreement" (Cholesky.log_det l)
    (log (Lu.det (Lu.factor a)))

let test_lu_inverse () =
  let g = rng () in
  let a = random_square g 6 in
  let inv = Lu.inverse (Lu.factor a) in
  check_mat ~eps:1e-8 "A A^-1 = I" (Mat.identity 6) (Mat.mul a inv)

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

(* --- FISTA --- *)

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_lipschitz_vs_svd () =
  let g = rng () in
  let a = Randkit.Gaussian.matrix g 30 10 in
  let l = Rsm.Fista.lipschitz ~iters:200 a in
  let d = Svd.decompose a in
  check_float ~eps:1e-4 "L = sigma_max^2" (d.Svd.sigma.(0) ** 2.) l

let test_fista_matches_cd () =
  (* Same convex program, same solution: FISTA vs coordinate descent. *)
  let g, f =
    sparse_problem ~noise:0.2 ~k:80 ~m:40 ~support:[| 3; 20 |]
      ~coeffs:[| 2.; -1. |] 201
  in
  let reg = 0.2 *. Rsm.Lasso_cd.max_reg g f in
  let cd = Rsm.Lasso_cd.fit ~tol:1e-12 g f ~reg in
  let fista = Rsm.Fista.fit ~max_iters:5000 ~tol:1e-14 g f ~reg in
  let o_cd = Rsm.Fista.objective g f ~reg cd in
  let o_fista = Rsm.Fista.objective g f ~reg fista in
  check_float ~eps:1e-4 "objectives equal" o_cd o_fista;
  check_vec ~eps:1e-3 "solutions equal" (Rsm.Model.to_dense cd)
    (Rsm.Model.to_dense fista)

let test_fista_zero_at_max_reg () =
  let g, f =
    sparse_problem ~k:50 ~m:20 ~support:[| 5 |] ~coeffs:[| 1. |] 202
  in
  let m = Rsm.Fista.fit g f ~reg:(Rsm.Lasso_cd.max_reg g f *. 1.01) in
  check_int "all zeros above max penalty" 0 (Rsm.Model.nnz m)

let test_fista_validation () =
  let g, f = sparse_problem ~k:10 ~m:5 ~support:[| 1 |] ~coeffs:[| 1. |] 203 in
  check_raises_invalid "negative reg" (fun () ->
      ignore (Rsm.Fista.fit g f ~reg:(-1.)))

(* --- Coherence --- *)

let test_coherence_orthogonal () =
  check_float "identity columns" 0. (Rsm.Coherence.mutual_coherence (Mat.identity 5));
  check_bool "infinite bound" true
    (Rsm.Coherence.coherence_recovery_bound (Mat.identity 5) = Float.infinity)

let test_coherence_duplicate_columns () =
  let a = Mat.of_arrays [| [| 1.; 1.; 0. |]; [| 0.; 0.; 1. |] |] in
  check_float ~eps:1e-12 "identical columns" 1. (Rsm.Coherence.mutual_coherence a)

let test_coherence_random_gaussian () =
  (* Random K x M Gaussian: coherence ~ sqrt(log M / K), well below 1. *)
  let g = rng () in
  let a = Randkit.Gaussian.matrix g 200 50 in
  let mu = Rsm.Coherence.mutual_coherence a in
  check_bool "moderate coherence" true (mu > 0.05 && mu < 0.5)

let test_babel_bounds () =
  let g = rng () in
  let a = Randkit.Gaussian.matrix g 100 20 in
  let mu = Rsm.Coherence.mutual_coherence a in
  let b1 = Rsm.Coherence.babel a 1 in
  let b3 = Rsm.Coherence.babel a 3 in
  check_float ~eps:1e-12 "babel(1) = mu" mu b1;
  check_bool "monotone in s" true (b3 >= b1);
  check_bool "babel(s) <= s mu" true (b3 <= (3. *. mu) +. 1e-12)

let test_subset_condition () =
  let g = rng () in
  let a = Randkit.Gaussian.matrix g 150 40 in
  let mean_k, max_k = Rsm.Coherence.subset_condition (rng ()) a ~s:5 in
  check_bool "mean <= max" true (mean_k <= max_k +. 1e-12);
  check_bool "well conditioned subsets" true (max_k < 3.);
  check_raises_invalid "s too big" (fun () ->
      ignore (Rsm.Coherence.subset_condition (rng ()) a ~s:41))

let test_hermite_dictionary_certificate () =
  (* The sampled Hermite dictionary used in the paper's regime passes
     the empirical conditioning probe. *)
  let b = Polybasis.Basis.quadratic 8 in
  let g = rng () in
  let pts = Array.init 300 (fun _ -> Randkit.Gaussian.vector g 8) in
  let design = Polybasis.Design.matrix_rows b pts in
  let mean_k, _ = Rsm.Coherence.subset_condition (rng ()) design ~s:10 in
  check_bool "restricted condition under 3" true (mean_k < 3.)

(* --- LHS --- *)

let test_lhs_stratification () =
  let g = rng () in
  let pts = Randkit.Lhs.uniform_points g ~k:32 ~n:3 in
  check_int "count" 32 (Array.length pts);
  (* Each dimension has exactly one point per stratum. *)
  for d = 0 to 2 do
    let seen = Array.make 32 false in
    Array.iter
      (fun p ->
        let s = int_of_float (p.(d) *. 32.) in
        check_bool "stratum unique" false seen.(s);
        seen.(s) <- true)
      pts
  done

let test_lhs_gaussian_marginals () =
  let g = rng () in
  let pts = Randkit.Lhs.gaussian_points g ~k:2000 ~n:2 in
  let col d = Array.map (fun p -> p.(d)) pts in
  (* Stratified normal: mean and variance extremely close to 0/1. *)
  check_float ~eps:0.01 "mean" 0. (Stat.Descriptive.mean (col 0));
  check_float ~eps:0.02 "variance" 1. (Stat.Descriptive.variance (col 1));
  (* Quantile transform agrees with Stat.Distribution. *)
  let u = 0.3 in
  let via_stat = Stat.Distribution.quantile u in
  let pts1 = Randkit.Lhs.gaussian_points (Randkit.Prng.create 1) ~k:1 ~n:1 in
  ignore pts1;
  check_bool "transform sane" true (Float.abs via_stat < 1.)

let test_lhs_validation () =
  let g = rng () in
  check_raises_invalid "k = 0" (fun () ->
      ignore (Randkit.Lhs.uniform_points g ~k:0 ~n:1))

let test_lhs_reduces_mean_estimator_variance () =
  (* The stratified plan's sample mean of a monotone function has lower
     variance than iid MC: check across repeated runs. *)
  let f p = p.(0) +. (0.5 *. p.(1)) in
  let runs = 40 and k = 64 in
  let means plan =
    Array.init runs (fun r ->
        let g = Randkit.Prng.create (1000 + r) in
        let pts = plan g in
        Stat.Descriptive.mean (Array.map f pts))
  in
  let lhs_var =
    Stat.Descriptive.variance (means (fun g -> Randkit.Lhs.gaussian_points g ~k ~n:2))
  in
  let mc_var =
    Stat.Descriptive.variance
      (means (fun g -> Array.init k (fun _ -> Randkit.Gaussian.vector g 2)))
  in
  check_bool
    (Printf.sprintf "LHS variance (%.2e) well below MC (%.2e)" lhs_var mc_var)
    true
    (lhs_var < 0.3 *. mc_var)

(* --- GOF --- *)

let test_ks_identical () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "identical" 0. (Stat.Gof.ks_two_sample a a)

let test_ks_disjoint () =
  let a = [| 1.; 2. |] and b = [| 10.; 11. |] in
  check_float "disjoint = 1" 1. (Stat.Gof.ks_two_sample a b)

let test_ks_same_distribution_small () =
  let g = rng () in
  let a = Randkit.Gaussian.vector g 3000 in
  let b = Randkit.Gaussian.vector g 3000 in
  let d = Stat.Gof.ks_two_sample a b in
  check_bool "below critical" true
    (d < Stat.Gof.ks_critical ~alpha:0.01 ~n1:3000 ~n2:3000)

let test_ks_shifted_detected () =
  let g = rng () in
  let a = Randkit.Gaussian.vector g 2000 in
  let b = Array.map (fun x -> x +. 0.3) (Randkit.Gaussian.vector g 2000) in
  check_bool "shift rejected" true
    (Stat.Gof.ks_two_sample a b > Stat.Gof.ks_critical ~alpha:0.01 ~n1:2000 ~n2:2000)

let test_ks_normal () =
  let g = rng () in
  let a = Array.map (fun x -> (2. *. x) +. 5.) (Randkit.Gaussian.vector g 4000) in
  let d_right = Stat.Gof.ks_normal ~mean:5. ~sigma:2. a in
  let d_wrong = Stat.Gof.ks_normal ~mean:0. ~sigma:1. a in
  check_bool "right parameters fit" true (d_right < 0.03);
  check_bool "wrong parameters do not" true (d_wrong > 0.5)

(* --- joint yield --- *)

let test_joint_yield_correlated_specs () =
  let b = Polybasis.Basis.constant_linear 1 in
  (* Two perfectly correlated metrics: f1 = y0, f2 = 2 y0. Joint yield
     of {f1 <= 0} and {f2 <= 0} is 0.5, not 0.25. *)
  let m1 = Rsm.Model.make ~basis_size:2 ~support:[| 1 |] ~coeffs:[| 1. |] in
  let m2 = Rsm.Model.make ~basis_size:2 ~support:[| 1 |] ~coeffs:[| 2. |] in
  let g = rng () in
  let y, se =
    Rsm.Yield.joint_monte_carlo ~samples:40000
      [ (m1, Rsm.Yield.spec_max 0.); (m2, Rsm.Yield.spec_max 0.) ]
      b g
  in
  check_bool "joint = marginal for perfectly correlated" true
    (Float.abs (y -. 0.5) < 4. *. se)

let test_joint_yield_independent_specs () =
  let b = Polybasis.Basis.constant_linear 2 in
  (* Independent metrics: f1 = y0, f2 = y1: joint {<=0, <=0} = 0.25. *)
  let m1 = Rsm.Model.make ~basis_size:3 ~support:[| 1 |] ~coeffs:[| 1. |] in
  let m2 = Rsm.Model.make ~basis_size:3 ~support:[| 2 |] ~coeffs:[| 1. |] in
  let g = rng () in
  let y, se =
    Rsm.Yield.joint_monte_carlo ~samples:40000
      [ (m1, Rsm.Yield.spec_max 0.); (m2, Rsm.Yield.spec_max 0.) ]
      b g
  in
  check_bool "joint = product for independent" true
    (Float.abs (y -. 0.25) < 4. *. se)

let test_joint_yield_validation () =
  let b = Polybasis.Basis.constant_linear 1 in
  check_raises_invalid "empty" (fun () ->
      ignore (Rsm.Yield.joint_monte_carlo [] b (rng ())))

let suite =
  ( "round2",
    [
      case "lu: solve" test_lu_solve;
      case "lu: pivoting" test_lu_pivoting_needed;
      case "lu: determinant" test_lu_det;
      case "lu: det vs cholesky" test_lu_det_vs_cholesky;
      case "lu: inverse" test_lu_inverse;
      case "lu: singular" test_lu_singular;
      case "fista: lipschitz = sigma_max^2" test_lipschitz_vs_svd;
      case "fista: matches coordinate descent" test_fista_matches_cd;
      case "fista: zero at max reg" test_fista_zero_at_max_reg;
      case "fista: validation" test_fista_validation;
      case "coherence: orthogonal" test_coherence_orthogonal;
      case "coherence: duplicates" test_coherence_duplicate_columns;
      case "coherence: random gaussian" test_coherence_random_gaussian;
      case "coherence: babel bounds" test_babel_bounds;
      case "coherence: subset conditioning" test_subset_condition;
      slow_case "coherence: Hermite dictionary certificate"
        test_hermite_dictionary_certificate;
      case "lhs: stratification" test_lhs_stratification;
      slow_case "lhs: gaussian marginals" test_lhs_gaussian_marginals;
      case "lhs: validation" test_lhs_validation;
      slow_case "lhs: variance reduction" test_lhs_reduces_mean_estimator_variance;
      case "ks: identical" test_ks_identical;
      case "ks: disjoint" test_ks_disjoint;
      slow_case "ks: same distribution" test_ks_same_distribution_small;
      slow_case "ks: shift detected" test_ks_shifted_detected;
      slow_case "ks: one-sample normal" test_ks_normal;
      slow_case "joint yield: correlated" test_joint_yield_correlated_specs;
      slow_case "joint yield: independent" test_joint_yield_independent_specs;
      case "joint yield: validation" test_joint_yield_validation;
    ] )
