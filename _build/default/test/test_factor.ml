(* Triangular solves, Cholesky (incl. the growing factor), QR, eigen. *)
open Linalg
open Test_util

let spd g n =
  (* Random SPD: A = B·Bᵀ + n·I. *)
  let b = Mat.init n n (fun _ _ -> Randkit.Prng.float g -. 0.5) in
  Mat.add (Mat.gram (Mat.transpose b)) (Mat.smul (float_of_int n) (Mat.identity n))

(* --- Tri --- *)

let test_solve_lower () =
  let l = Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  let x = Tri.solve_lower l [| 4.; 11. |] in
  check_vec "forward" [| 2.; 3. |] x

let test_solve_upper () =
  let u = Mat.of_arrays [| [| 2.; 1. |]; [| 0.; 3. |] |] in
  let x = Tri.solve_upper u [| 7.; 9. |] in
  check_vec "backward" [| 2.; 3. |] x

let test_solve_lower_transposed () =
  let l = Mat.of_arrays [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 6. |] in
  let x = Tri.solve_lower_transposed l b in
  check_vec "L^T x = b" b (Mat.mulv (Mat.transpose l) x)

let test_singular () =
  let l = Mat.of_arrays [| [| 0.; 0. |]; [| 1.; 3. |] |] in
  (match Tri.solve_lower l [| 1.; 1. |] with
  | exception Tri.Singular 0 -> ()
  | _ -> Alcotest.fail "expected Singular 0");
  check_raises_invalid "rhs mismatch" (fun () -> Tri.solve_lower l [| 1. |])

let test_sub_solvers () =
  let l = Mat.of_arrays [| [| 2.; 0.; 9. |]; [| 1.; 3.; 9. |]; [| 9.; 9.; 9. |] |] in
  (* Leading 2×2 block only; junk elsewhere must be ignored. *)
  let x = Tri.solve_lower_sub l 2 [| 4.; 11. |] in
  check_vec "sub forward" [| 2.; 3. |] x

(* --- Cholesky --- *)

let test_factor_reconstruct () =
  let g = rng () in
  let a = spd g 6 in
  let l = Cholesky.factor a in
  check_mat ~eps:1e-9 "L L^T = A" a (Mat.mul l (Mat.transpose l))

let test_factor_not_pd () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  match Cholesky.factor a with
  | exception Cholesky.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "expected Not_positive_definite"

let test_spd_solve () =
  let g = rng () in
  let a = spd g 5 in
  let x_true = Array.init 5 (fun i -> float_of_int i -. 2.) in
  let b = Mat.mulv a x_true in
  check_vec ~eps:1e-8 "solve" x_true (Cholesky.spd_solve a b)

let test_log_det () =
  let a = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  let l = Cholesky.factor a in
  check_float ~eps:1e-12 "log det" (log 36.) (Cholesky.log_det l)

let test_grow_matches_direct () =
  let g = rng () in
  let a = spd g 7 in
  let grow = Cholesky.Grow.create 7 in
  for k = 0 to 6 do
    let v = Array.init k (fun i -> Mat.get a k i) in
    Cholesky.Grow.append grow v (Mat.get a k k);
    check_int "size" (k + 1) (Cholesky.Grow.size grow)
  done;
  let direct = Cholesky.factor a in
  check_mat ~eps:1e-9 "grown factor = direct factor" direct
    (Cholesky.Grow.factor_copy grow);
  let b = Array.init 7 (fun i -> float_of_int (i + 1)) in
  check_vec ~eps:1e-8 "grow solve" (Cholesky.spd_solve a b)
    (Cholesky.Grow.solve grow b)

let test_grow_remove_last () =
  let g = rng () in
  let a = spd g 5 in
  let grow = Cholesky.Grow.create 5 in
  for k = 0 to 4 do
    Cholesky.Grow.append grow (Array.init k (fun i -> Mat.get a k i)) (Mat.get a k k)
  done;
  Cholesky.Grow.remove_last grow;
  Cholesky.Grow.remove_last grow;
  check_int "shrunk" 3 (Cholesky.Grow.size grow);
  (* Re-append and verify the factor is still exact. *)
  for k = 3 to 4 do
    Cholesky.Grow.append grow (Array.init k (fun i -> Mat.get a k i)) (Mat.get a k k)
  done;
  check_mat ~eps:1e-9 "refilled" (Cholesky.factor a) (Cholesky.Grow.factor_copy grow)

let test_grow_capacity_and_pd () =
  let grow = Cholesky.Grow.create 1 in
  Cholesky.Grow.append grow [||] 4.;
  check_raises_invalid "capacity" (fun () -> Cholesky.Grow.append grow [| 1. |] 1.);
  let grow2 = Cholesky.Grow.create 2 in
  Cholesky.Grow.append grow2 [||] 1.;
  (match Cholesky.Grow.append grow2 [| 1. |] 1. with
  (* new column equal to the first: gram [[1,1],[1,1]] is singular *)
  | exception Cholesky.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "expected Not_positive_definite on dependent column")

(* --- QR --- *)

let random_tall g m n = Mat.init m n (fun _ _ -> Randkit.Prng.float g -. 0.5)

let test_qr_reconstruct () =
  let g = rng () in
  let a = random_tall g 8 5 in
  let f = Qr.factor a in
  let q = Qr.q f and r = Qr.r f in
  check_mat ~eps:1e-9 "QR = A" a (Mat.mul q r);
  (* Orthonormal columns. *)
  check_mat ~eps:1e-9 "Q^T Q = I" (Mat.identity 5) (Mat.gram q)

let test_qr_r_upper_triangular () =
  let g = rng () in
  let f = Qr.factor (random_tall g 6 4) in
  let r = Qr.r f in
  for i = 1 to 3 do
    for j = 0 to i - 1 do
      check_float "below diag" 0. (Mat.get r i j)
    done
  done

let test_qr_solve_exact () =
  let g = rng () in
  let a = random_tall g 6 6 in
  let x_true = Array.init 6 (fun i -> float_of_int (i - 3)) in
  let b = Mat.mulv a x_true in
  check_vec ~eps:1e-8 "square solve" x_true (Qr.lstsq a b)

let test_qr_lstsq_normal_equations () =
  (* The LS solution must satisfy A^T(Ax − b) = 0. *)
  let g = rng () in
  let a = random_tall g 12 5 in
  let b = Array.init 12 (fun _ -> Randkit.Prng.float g) in
  let x = Qr.lstsq a b in
  let grad = Mat.tmulv a (Lstsq.residual a x b) in
  check_bool "gradient zero" true (Vec.nrm2 grad < 1e-9)

let test_qt_apply () =
  let g = rng () in
  let a = random_tall g 7 4 in
  let f = Qr.factor a in
  let b = Array.init 7 (fun _ -> Randkit.Prng.float g) in
  let explicit = Mat.tmulv (Qr.q f) b in
  check_vec ~eps:1e-9 "qt_apply" explicit (Qr.qt_apply f b)

let test_qr_underdetermined_rejected () =
  check_raises_invalid "wide rejected" (fun () -> Qr.factor (Mat.create 2 5))

(* --- Eigen --- *)

let test_eigen_diag () =
  let a = Mat.of_arrays [| [| 3.; 0. |]; [| 0.; 1. |] |] in
  let d = Eigen.symmetric a in
  check_float "largest" 3. d.Eigen.values.(0);
  check_float "smallest" 1. d.Eigen.values.(1)

let test_eigen_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let d = Eigen.symmetric a in
  check_float ~eps:1e-10 "ev1" 3. d.Eigen.values.(0);
  check_float ~eps:1e-10 "ev2" 1. d.Eigen.values.(1)

let test_eigen_reconstruct () =
  let g = rng () in
  let a = spd g 6 in
  let d = Eigen.symmetric a in
  check_mat ~eps:1e-8 "V D V^T = A" a (Eigen.reconstruct d)

let test_eigen_orthonormal_vectors () =
  let g = rng () in
  let a = spd g 5 in
  let d = Eigen.symmetric a in
  check_mat ~eps:1e-8 "V^T V = I" (Mat.identity 5) (Mat.gram d.Eigen.vectors)

let test_eigen_rejects_asymmetric () =
  check_raises_invalid "asym" (fun () ->
      ignore (Eigen.symmetric (Mat.of_arrays [| [| 1.; 2. |]; [| 0.; 1. |] |])))

let test_eigen_trace_preserved () =
  let g = rng () in
  let a = spd g 7 in
  let d = Eigen.symmetric a in
  let tr = ref 0. in
  for i = 0 to 6 do
    tr := !tr +. Mat.get a i i
  done;
  check_float ~eps:1e-8 "trace = sum of eigenvalues" !tr (Vec.sum d.Eigen.values)

(* --- Lstsq --- *)

let test_lstsq_methods_agree () =
  let g = rng () in
  let a = random_tall g 15 6 in
  let b = Array.init 15 (fun _ -> Randkit.Prng.float g) in
  let x_qr = Lstsq.solve ~method_:Lstsq.Qr a b in
  let x_ne = Lstsq.solve ~method_:Lstsq.Normal a b in
  check_vec ~eps:1e-7 "QR vs normal equations" x_qr x_ne

let test_solve_subset () =
  let g = rng () in
  let a = random_tall g 20 8 in
  let b = Array.init 20 (fun _ -> Randkit.Prng.float g) in
  let idx = [| 1; 4; 6 |] in
  let coef = Lstsq.solve_subset a idx b in
  let direct = Lstsq.solve (Mat.select_cols a idx) b in
  check_vec ~eps:1e-8 "subset = direct on selected columns" direct coef

let test_residual_subset () =
  let g = rng () in
  let a = random_tall g 10 5 in
  let b = Array.init 10 (fun _ -> Randkit.Prng.float g) in
  let idx = [| 0; 3 |] in
  let x = [| 2.; -1. |] in
  let direct = Lstsq.residual (Mat.select_cols a idx) x b in
  check_vec ~eps:1e-12 "residual_subset" direct (Lstsq.residual_subset a idx x b)

let test_lstsq_underdetermined_rejected () =
  check_raises_invalid "underdetermined" (fun () ->
      ignore (Lstsq.solve (Mat.create 3 5) [| 1.; 2.; 3. |]))

let prop_cholesky_solve_random =
  qtest ~count:30 "cholesky solves random SPD systems" QCheck.(int_range 1 8)
    (fun n ->
      let g = rng () in
      let a = spd g n in
      let x = Array.init n (fun i -> float_of_int i -. (float_of_int n /. 2.)) in
      let b = Mat.mulv a x in
      Vec.approx_equal ~tol:1e-6 x (Cholesky.spd_solve a b))

let prop_qr_solution_optimal =
  qtest ~count:30 "QR least-squares is optimal vs perturbations"
    QCheck.(int_range 2 6)
    (fun n ->
      let g = rng () in
      let a = random_tall g (2 * n) n in
      let b = Array.init (2 * n) (fun _ -> Randkit.Prng.float g) in
      let x = Qr.lstsq a b in
      let base = Vec.nrm2 (Lstsq.residual a x b) in
      (* Any perturbation of the solution can only increase the residual. *)
      let ok = ref true in
      for j = 0 to n - 1 do
        let xp = Array.copy x in
        xp.(j) <- xp.(j) +. 0.01;
        if Vec.nrm2 (Lstsq.residual a xp b) < base -. 1e-12 then ok := false
      done;
      !ok)

let suite =
  ( "factorizations",
    [
      case "tri: solve_lower" test_solve_lower;
      case "tri: solve_upper" test_solve_upper;
      case "tri: lower transposed" test_solve_lower_transposed;
      case "tri: singular" test_singular;
      case "tri: sub-block solvers" test_sub_solvers;
      case "cholesky: reconstruct" test_factor_reconstruct;
      case "cholesky: rejects indefinite" test_factor_not_pd;
      case "cholesky: spd_solve" test_spd_solve;
      case "cholesky: log_det" test_log_det;
      case "cholesky.grow: matches direct" test_grow_matches_direct;
      case "cholesky.grow: remove_last" test_grow_remove_last;
      case "cholesky.grow: capacity & dependent column" test_grow_capacity_and_pd;
      case "qr: reconstruct" test_qr_reconstruct;
      case "qr: R upper triangular" test_qr_r_upper_triangular;
      case "qr: exact square solve" test_qr_solve_exact;
      case "qr: normal equations hold" test_qr_lstsq_normal_equations;
      case "qr: qt_apply" test_qt_apply;
      case "qr: rejects wide" test_qr_underdetermined_rejected;
      case "eigen: diagonal" test_eigen_diag;
      case "eigen: known 2x2" test_eigen_known;
      case "eigen: reconstruct" test_eigen_reconstruct;
      case "eigen: orthonormal vectors" test_eigen_orthonormal_vectors;
      case "eigen: rejects asymmetric" test_eigen_rejects_asymmetric;
      case "eigen: trace preserved" test_eigen_trace_preserved;
      case "lstsq: methods agree" test_lstsq_methods_agree;
      case "lstsq: solve_subset" test_solve_subset;
      case "lstsq: residual_subset" test_residual_subset;
      case "lstsq: rejects underdetermined" test_lstsq_underdetermined_rejected;
      prop_cholesky_solve_random;
      prop_qr_solution_optimal;
    ] )
