open Polybasis
open Test_util

(* --- Hermite --- *)

let test_low_degrees () =
  (* Eq. (3) of the paper: g1 = 1, g2 = y, g3 = (y² − 1)/√2. *)
  List.iter
    (fun y ->
      check_float "g0" 1. (Hermite.eval 0 y);
      check_float "g1" y (Hermite.eval 1 y);
      check_float ~eps:1e-12 "g2" (((y *. y) -. 1.) /. sqrt 2.) (Hermite.eval 2 y);
      check_float ~eps:1e-12 "g3"
        (((y *. y *. y) -. (3. *. y)) /. sqrt 6.)
        (Hermite.eval 3 y))
    [ -2.3; -0.5; 0.; 0.7; 1.9 ]

let test_unnormalized () =
  check_float "He2" 3. (Hermite.unnormalized 2 2.);
  check_float "He3" 2. (Hermite.unnormalized 3 2.);
  (* g_n = He_n / sqrt(n!) *)
  check_float ~eps:1e-12 "normalization factor"
    (Hermite.unnormalized 4 1.3 /. sqrt 24.)
    (Hermite.eval 4 1.3)

let test_eval_all_consistent () =
  let ys = Hermite.eval_all 6 0.8 in
  for n = 0 to 6 do
    check_float ~eps:1e-12 (Printf.sprintf "eval_all %d" n) (Hermite.eval n 0.8)
      ys.(n)
  done

let test_coefficients () =
  (* He_3 = y³ − 3y. *)
  check_vec "He3 coeffs" [| 0.; -3.; 0.; 1. |] (Hermite.coefficients 3);
  check_vec "He0" [| 1. |] (Hermite.coefficients 0);
  check_vec "He1" [| 0.; 1. |] (Hermite.coefficients 1)

let test_negative_degree () =
  check_raises_invalid "negative" (fun () -> ignore (Hermite.eval (-1) 0.))

let mc_inner_product ?(n = 200000) f g =
  (* Monte-Carlo estimate of E[f(y)·g(y)] under the standard normal. *)
  let r = rng () in
  let acc = ref 0. in
  for _ = 1 to n do
    let y = Randkit.Gaussian.sample r in
    acc := !acc +. (f y *. g y)
  done;
  !acc /. float_of_int n

let test_orthonormality_mc () =
  (* Eq. (2): E[gᵢ gⱼ] = δᵢⱼ, verified by Monte Carlo. *)
  for i = 0 to 3 do
    for j = 0 to 3 do
      let est = mc_inner_product (Hermite.eval i) (Hermite.eval j) in
      let expected = if i = j then 1. else 0. in
      check_float ~eps:0.05
        (Printf.sprintf "E[g%d g%d]" i j)
        expected est
    done
  done

(* --- Term --- *)

let test_term_constructors () =
  check_bool "constant empty" true (Term.constant = [||]);
  check_int "linear degree" 1 (Term.total_degree (Term.linear 3));
  check_int "square degree" 2 (Term.total_degree (Term.square 3));
  check_int "cross degree" 2 (Term.total_degree (Term.cross 1 5));
  check_bool "cross order-insensitive" true
    (Term.equal (Term.cross 5 1) (Term.cross 1 5));
  check_raises_invalid "cross same var" (fun () -> ignore (Term.cross 2 2))

let test_term_make () =
  let t = Term.make [ (3, 1); (1, 2); (3, 1) ] in
  (* merged: y1² · y3² *)
  check_int "degree" 4 (Term.total_degree t);
  check_int "max var" 3 (Term.max_var t);
  Alcotest.(check (list int)) "vars" [ 1; 3 ] (Term.vars t);
  check_bool "zero degrees dropped" true
    (Term.equal Term.constant (Term.make [ (0, 0) ]));
  check_raises_invalid "negative var" (fun () -> ignore (Term.make [ (-1, 1) ]))

let test_term_eval () =
  let dy = [| 0.5; -1.2; 2.0 |] in
  check_float "constant" 1. (Term.eval Term.constant dy);
  check_float "linear" (-1.2) (Term.eval (Term.linear 1) dy);
  check_float ~eps:1e-12 "cross" (0.5 *. 2.0) (Term.eval (Term.cross 0 2) dy);
  check_float ~eps:1e-12 "square"
    (((2.0 *. 2.0) -. 1.) /. sqrt 2.)
    (Term.eval (Term.square 2) dy);
  check_raises_invalid "var out of range" (fun () ->
      ignore (Term.eval (Term.linear 5) dy))

let test_term_ordering () =
  check_bool "constant < linear" true (Term.compare Term.constant (Term.linear 0) < 0);
  check_bool "linear < quadratic" true
    (Term.compare (Term.linear 9) (Term.square 0) < 0);
  check_bool "graded lex within degree" true
    (Term.compare (Term.linear 1) (Term.linear 2) < 0)

let test_term_to_string () =
  Alcotest.(check string) "constant" "1" (Term.to_string Term.constant);
  Alcotest.(check string) "linear" "y4" (Term.to_string (Term.linear 4));
  Alcotest.(check string) "square" "y2^2" (Term.to_string (Term.square 2));
  Alcotest.(check string) "cross" "y1*y7" (Term.to_string (Term.cross 7 1))

(* --- Basis --- *)

let test_constant_linear () =
  let b = Basis.constant_linear 4 in
  check_int "size" 5 (Basis.size b);
  check_int "dim" 4 (Basis.dim b);
  check_bool "first constant" true (Term.equal Term.constant (Basis.term b 0));
  check_bool "then linear" true (Term.equal (Term.linear 2) (Basis.term b 3))

let test_quadratic_counts () =
  (* Paper Section V-A.2: 200-dimensional quadratic model has 20301
     coefficients. *)
  check_int "paper count" 20301 (Basis.quadratic_size 200);
  let b = Basis.quadratic 4 in
  check_int "n=4" (1 + 8 + 6) (Basis.size b);
  check_int "matches closed form" (Basis.quadratic_size 4) (Basis.size b)

let test_quadratic_subset () =
  let b = Basis.quadratic_subset ~dim:10 [| 2; 7; 9 |] in
  check_int "size" (Basis.quadratic_size 3) (Basis.size b);
  check_int "embedded dim" 10 (Basis.dim b);
  (* Every term only references the selected variables. *)
  for m = 0 to Basis.size b - 1 do
    List.iter
      (fun v -> check_bool "var in subset" true (List.mem v [ 2; 7; 9 ]))
      (Term.vars (Basis.term b m))
  done;
  check_raises_invalid "duplicate" (fun () ->
      ignore (Basis.quadratic_subset ~dim:10 [| 1; 1 |]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Basis.quadratic_subset ~dim:10 [| 10 |]))

let test_total_degree_basis () =
  let b = Basis.total_degree 3 2 in
  (* C(3+2,2) = 10 terms of degree ≤ 2 in 3 variables. *)
  check_int "count" 10 (Basis.size b);
  check_int "max degree" 2 (Basis.max_degree b);
  let b3 = Basis.total_degree 2 3 in
  check_int "C(5,3)" 10 (Basis.size b3);
  check_int "cubic present" 3 (Basis.max_degree b3)

let test_eval_point_matches_terms () =
  let b = Basis.quadratic 3 in
  let g = rng () in
  let dy = Randkit.Gaussian.vector g 3 in
  let row = Basis.eval_point b dy in
  for m = 0 to Basis.size b - 1 do
    check_float ~eps:1e-12
      (Printf.sprintf "term %d" m)
      (Term.eval (Basis.term b m) dy)
      row.(m)
  done

let test_basis_validation () =
  check_raises_invalid "term exceeds dim" (fun () ->
      ignore (Basis.create 2 [| Term.linear 2 |]))

let test_embed () =
  (* Local quadratic over 2 variables, embedded at factors {5, 9} of a
     12-dimensional space. *)
  let local = Basis.total_degree 2 2 in
  let b = Basis.embed local [| 5; 9 |] ~dim:12 in
  check_int "size preserved" (Basis.size local) (Basis.size b);
  check_int "dim retargeted" 12 (Basis.dim b);
  for m = 0 to Basis.size b - 1 do
    List.iter
      (fun v -> check_bool "vars mapped" true (v = 5 || v = 9))
      (Term.vars (Basis.term b m))
  done;
  (* Evaluation agrees with the local basis at the projected point. *)
  let g = rng () in
  let dy = Randkit.Gaussian.vector g 12 in
  let local_row = Basis.eval_point local [| dy.(5); dy.(9) |] in
  let embedded_row = Basis.eval_point b dy in
  let sort a = let c = Array.copy a in Array.sort compare c; c in
  (* Term order may differ after re-normalization; compare as multisets. *)
  check_vec ~eps:1e-12 "values agree as multisets" (sort local_row)
    (sort embedded_row);
  check_raises_invalid "duplicate target" (fun () ->
      ignore (Basis.embed local [| 3; 3 |] ~dim:12));
  check_raises_invalid "out of range" (fun () ->
      ignore (Basis.embed local [| 5; 12 |] ~dim:12));
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Basis.embed local [| 5 |] ~dim:12))

let test_multidim_orthonormality_mc () =
  (* Eq. (4): 2-D Hermite functions are orthonormal under iid N(0,1). *)
  let b = Basis.quadratic 2 in
  let g = rng () in
  let n = 100000 in
  let sz = Basis.size b in
  let acc = Array.make_matrix sz sz 0. in
  for _ = 1 to n do
    let dy = Randkit.Gaussian.vector g 2 in
    let row = Basis.eval_point b dy in
    for i = 0 to sz - 1 do
      for j = i to sz - 1 do
        acc.(i).(j) <- acc.(i).(j) +. (row.(i) *. row.(j))
      done
    done
  done;
  for i = 0 to sz - 1 do
    for j = i to sz - 1 do
      let est = acc.(i).(j) /. float_of_int n in
      let expected = if i = j then 1. else 0. in
      check_float ~eps:0.06 (Printf.sprintf "E[g%d g%d]" i j) expected est
    done
  done

(* --- Design --- *)

let test_design_matrix () =
  let open Linalg in
  let b = Basis.constant_linear 2 in
  let samples = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let g = Design.matrix b samples in
  check_mat "linear design"
    (Mat.of_arrays [| [| 1.; 1.; 2. |]; [| 1.; 3.; 4. |] |])
    g

let test_design_rows_equals_matrix () =
  let open Linalg in
  let b = Basis.quadratic 3 in
  let g = rng () in
  let pts = Array.init 5 (fun _ -> Randkit.Gaussian.vector g 3) in
  let m1 = Design.matrix_rows b pts in
  let m2 = Design.matrix b (Mat.init 5 3 (fun i j -> pts.(i).(j))) in
  check_mat ~eps:1e-12 "two builders agree" m1 m2

let test_design_column_norms () =
  let open Linalg in
  let g = Mat.of_arrays [| [| 3.; 0. |]; [| 4.; 1. |] |] in
  check_vec ~eps:1e-12 "norms" [| 5.; 1. |] (Design.column_norms g)

let test_design_columns_near_unit_variance () =
  (* Sampled Hermite columns have norm ≈ √K: the dictionary is roughly
     normalized, which the solvers rely on. *)
  let b = Basis.quadratic 4 in
  let g = rng () in
  let k = 4000 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector g 4) in
  let d = Design.matrix_rows b pts in
  let norms = Design.column_norms d in
  let root_k = sqrt (float_of_int k) in
  Array.iteri
    (fun j n ->
      check_bool
        (Printf.sprintf "col %d norm within 10%% of sqrt K" j)
        true
        (Float.abs ((n /. root_k) -. 1.) < 0.1))
    norms

let prop_eval_point_dimension =
  qtest ~count:30 "eval_point length = basis size" QCheck.(int_range 1 6)
    (fun n ->
      let b = Basis.quadratic n in
      let g = rng () in
      let dy = Randkit.Gaussian.vector g n in
      Array.length (Basis.eval_point b dy) = Basis.size b)

let prop_quadratic_size_formula =
  qtest ~count:50 "quadratic size matches formula" QCheck.(int_range 0 60)
    (fun n -> Basis.size (Basis.quadratic n) = 1 + (2 * n) + (n * (n - 1) / 2))

let suite =
  ( "polybasis",
    [
      case "hermite: low degrees (paper eq. 3)" test_low_degrees;
      case "hermite: unnormalized" test_unnormalized;
      case "hermite: eval_all" test_eval_all_consistent;
      case "hermite: coefficients" test_coefficients;
      case "hermite: rejects negative degree" test_negative_degree;
      slow_case "hermite: MC orthonormality (paper eq. 2)" test_orthonormality_mc;
      case "term: constructors" test_term_constructors;
      case "term: make merges/sorts" test_term_make;
      case "term: eval" test_term_eval;
      case "term: graded ordering" test_term_ordering;
      case "term: to_string" test_term_to_string;
      case "basis: constant+linear" test_constant_linear;
      case "basis: quadratic counts (paper 20301)" test_quadratic_counts;
      case "basis: quadratic subset" test_quadratic_subset;
      case "basis: total degree" test_total_degree_basis;
      case "basis: eval_point vs terms" test_eval_point_matches_terms;
      case "basis: validation" test_basis_validation;
      case "basis: embed" test_embed;
      slow_case "basis: 2-D MC orthonormality (paper eq. 4)"
        test_multidim_orthonormality_mc;
      case "design: linear matrix" test_design_matrix;
      case "design: rows = matrix" test_design_rows_equals_matrix;
      case "design: column norms" test_design_column_norms;
      slow_case "design: columns near sqrt K" test_design_columns_near_unit_variance;
      prop_eval_point_dimension;
      prop_quadratic_size_formula;
    ] )
