open Test_util

(* --- Descriptive --- *)

let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]

let test_mean () = check_float "mean" 5. (Stat.Descriptive.mean xs)

let test_variance_std () =
  (* Known dataset: population variance 4, sample variance 32/7. *)
  check_float ~eps:1e-12 "sample variance" (32. /. 7.) (Stat.Descriptive.variance xs);
  check_float ~eps:1e-12 "std" (sqrt (32. /. 7.)) (Stat.Descriptive.std xs);
  check_float "singleton" 0. (Stat.Descriptive.variance [| 42. |])

let test_welford_stability () =
  (* Large offset must not destroy precision. *)
  let shifted = Array.map (fun x -> x +. 1e9) xs in
  check_float ~eps:1e-4 "shifted variance" (32. /. 7.)
    (Stat.Descriptive.variance shifted)

let test_min_max () =
  let lo, hi = Stat.Descriptive.min_max xs in
  check_float "min" 2. lo;
  check_float "max" 9. hi

let test_quantiles () =
  check_float "median even" 4.5 (Stat.Descriptive.median xs);
  check_float "q0" 2. (Stat.Descriptive.quantile xs 0.);
  check_float "q1" 9. (Stat.Descriptive.quantile xs 1.);
  check_float "median odd" 3. (Stat.Descriptive.median [| 1.; 3.; 5. |]);
  (* Interpolation: quantile 0.25 of [0,1,2,3] = 0.75. *)
  check_float "interpolated" 0.75 (Stat.Descriptive.quantile [| 0.; 1.; 2.; 3. |] 0.25);
  check_raises_invalid "p > 1" (fun () ->
      ignore (Stat.Descriptive.quantile xs 1.5))

let test_covariance_correlation () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let b = [| 2.; 4.; 6.; 8. |] in
  check_float ~eps:1e-12 "corr perfect" 1. (Stat.Descriptive.correlation a b);
  let c = [| -2.; -4.; -6.; -8. |] in
  check_float ~eps:1e-12 "corr anti" (-1.) (Stat.Descriptive.correlation a c);
  check_float "corr constant" 0. (Stat.Descriptive.correlation a [| 5.; 5.; 5.; 5. |]);
  check_float ~eps:1e-12 "cov" (Stat.Descriptive.variance a *. 2.)
    (Stat.Descriptive.covariance a b)

let test_covariance_matrix () =
  let open Linalg in
  let d = Mat.of_arrays [| [| 1.; 10. |]; [| 2.; 20. |]; [| 3.; 30. |] |] in
  let c = Stat.Descriptive.covariance_matrix d in
  check_float ~eps:1e-12 "var col0" 1. (Mat.get c 0 0);
  check_float ~eps:1e-12 "var col1" 100. (Mat.get c 1 1);
  check_float ~eps:1e-12 "cov" 10. (Mat.get c 0 1);
  check_bool "symmetric" true (Mat.is_symmetric c)

let test_standardize () =
  let s = Stat.Descriptive.standardize xs in
  check_float ~eps:1e-12 "mean 0" 0. (Stat.Descriptive.mean s);
  check_float ~eps:1e-12 "std 1" 1. (Stat.Descriptive.std s);
  check_vec "constant -> zeros" [| 0.; 0. |]
    (Stat.Descriptive.standardize [| 3.; 3. |])

(* --- Metrics --- *)

let test_rmse_mae () =
  let pred = [| 1.; 2.; 3. |] and truth = [| 1.; 1.; 5. |] in
  check_float ~eps:1e-12 "rmse" (sqrt (5. /. 3.)) (Stat.Metrics.rmse ~pred ~truth);
  check_float "mae" 1. (Stat.Metrics.mae ~pred ~truth)

let test_relative_rms () =
  (* Predicting the mean exactly scores 100%. *)
  let truth = [| 1.; 2.; 3.; 4. |] in
  let mean_pred = Array.make 4 2.5 in
  check_float ~eps:1e-12 "mean predictor = 1.0"
    1. (Stat.Metrics.relative_rms ~pred:mean_pred ~truth);
  check_float "perfect = 0" 0. (Stat.Metrics.relative_rms ~pred:truth ~truth);
  check_bool "constant truth = nan" true
    (Float.is_nan (Stat.Metrics.relative_rms ~pred:truth ~truth:(Array.make 4 1.)))

let test_r_squared () =
  let truth = [| 1.; 2.; 3.; 4. |] in
  check_float "perfect" 1. (Stat.Metrics.r_squared ~pred:truth ~truth);
  check_float ~eps:1e-12 "mean predictor" 0.
    (Stat.Metrics.r_squared ~pred:(Array.make 4 2.5) ~truth)

let test_max_abs_error_mape () =
  let pred = [| 1.; 2.; 0. |] and truth = [| 2.; 2.; 4. |] in
  check_float "max abs" 4. (Stat.Metrics.max_abs_error ~pred ~truth);
  check_float ~eps:1e-12 "mape" ((0.5 +. 0. +. 1.) /. 3.)
    (Stat.Metrics.mape ~pred ~truth);
  check_raises_invalid "length" (fun () ->
      ignore (Stat.Metrics.rmse ~pred:[| 1. |] ~truth:[| 1.; 2. |]))

(* --- PCA --- *)

let test_pca_whitening_identity_cov () =
  let open Linalg in
  (* Diagonal covariance: whitening just rescales. *)
  let sigma = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 1. |] |] in
  let p = Stat.Pca.of_covariance sigma in
  check_int "in dim" 2 (Stat.Pca.input_dim p);
  check_int "out dim" 2 (Stat.Pca.output_dim p);
  let y = Stat.Pca.whiten p [| 2.; 1. |] in
  (* First component (largest eigenvalue 4) is x0/2 = 1 up to sign. *)
  check_float ~eps:1e-10 "unit magnitude both" 1. (Float.abs y.(0));
  check_float ~eps:1e-10 "second" 1. (Float.abs y.(1))

let test_pca_roundtrip () =
  let open Linalg in
  let sigma =
    Mat.of_arrays [| [| 2.; 0.5; 0.1 |]; [| 0.5; 1.; 0.2 |]; [| 0.1; 0.2; 0.8 |] |]
  in
  let p = Stat.Pca.of_covariance sigma in
  let x = [| 0.3; -0.7; 1.1 |] in
  check_vec ~eps:1e-9 "unwhiten (whiten x) = x" x
    (Stat.Pca.unwhiten p (Stat.Pca.whiten p x))

let test_pca_whitened_samples_standard () =
  let open Linalg in
  let sigma = Mat.of_arrays [| [| 2.; 0.9 |]; [| 0.9; 1. |] |] in
  let s = Randkit.Mvn.of_covariance sigma in
  let p = Stat.Pca.of_covariance sigma in
  let g = rng () in
  let n = 20000 in
  let whitened =
    Mat.init n 2 (fun _ _ -> 0.) |> fun m ->
    for i = 0 to n - 1 do
      Mat.set_row m i (Stat.Pca.whiten p (Randkit.Mvn.sample s g))
    done;
    m
  in
  let cov = Stat.Descriptive.covariance_matrix whitened in
  check_float ~eps:0.05 "whitened var 1" 1. (Mat.get cov 0 0);
  check_float ~eps:0.05 "whitened var 2" 1. (Mat.get cov 1 1);
  check_float ~eps:0.05 "whitened independent" 0. (Mat.get cov 0 1)

let test_pca_truncation () =
  let open Linalg in
  (* Rank-1 covariance: second component must be dropped. *)
  let sigma = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let p = Stat.Pca.of_covariance sigma in
  check_int "rank-1 keeps one factor" 1 (Stat.Pca.output_dim p)

let test_pca_explained_variance () =
  let open Linalg in
  let sigma = Mat.of_arrays [| [| 3.; 0. |]; [| 0.; 1. |] |] in
  let p = Stat.Pca.of_covariance sigma in
  let r = Stat.Pca.explained_variance_ratio p in
  check_float ~eps:1e-12 "leading share" 0.75 r.(0);
  check_float ~eps:1e-12 "sums to 1" 1. (r.(0) +. r.(1))

let test_pca_of_data () =
  let open Linalg in
  let g = rng () in
  let n = 5000 in
  (* x1 = z, x2 = 3 + 2 z: data with a mean and rank-1 structure. *)
  let d =
    Mat.init n 2 (fun _ _ -> 0.) |> fun m ->
    for i = 0 to n - 1 do
      let z = Randkit.Gaussian.sample g in
      Mat.set m i 0 z;
      Mat.set m i 1 (3. +. (2. *. z))
    done;
    m
  in
  let p = Stat.Pca.of_data d in
  check_int "rank 1 detected" 1 (Stat.Pca.output_dim p);
  (* Whiten must remove the mean: whitening the column means gives 0. *)
  let y = Stat.Pca.whiten p [| 0.; 3. |] in
  check_float ~eps:0.05 "centered" 0. y.(0)

(* --- Crossval --- *)

let test_plan_and_indices () =
  let g = rng () in
  let plan = Stat.Crossval.make_plan g ~n:20 ~folds:4 in
  for q = 0 to 3 do
    let train, held = Stat.Crossval.fold_indices plan q in
    check_int "sizes" 20 (Array.length train + Array.length held);
    check_int "held size" 5 (Array.length held)
  done;
  check_raises_invalid "fold oob" (fun () ->
      ignore (Stat.Crossval.fold_indices plan 4))

let test_run_average () =
  let g = rng () in
  let plan = Stat.Crossval.make_plan g ~n:12 ~folds:3 in
  (* error = size of held-out group = 4 for every fold. *)
  let e =
    Stat.Crossval.run plan
      ~fit:(fun ~train -> Array.length train)
      ~error:(fun _model ~held_out -> float_of_int (Array.length held_out))
  in
  check_float "average" 4. e

let test_run_curves () =
  let g = rng () in
  let plan = Stat.Crossval.make_plan g ~n:10 ~folds:5 in
  let curve =
    Stat.Crossval.run_curves plan ~fit_curve:(fun ~train:_ ~held_out:_ ->
        [| 3.; 1.; 2. |])
  in
  check_vec ~eps:1e-12 "constant curves average to themselves" [| 3.; 1.; 2. |]
    curve;
  check_int "argmin" 1 (Stat.Crossval.argmin curve)

let test_argmin_nan () =
  check_int "nan skipped" 2 (Stat.Crossval.argmin [| Float.nan; 5.; 1. |]);
  check_int "all nan" 0 (Stat.Crossval.argmin [| Float.nan; Float.nan |])

let test_crossval_detects_overfit () =
  (* A model that memorizes training indices has zero training error but
     the CV error stays high: the held-out error of predicting noise. *)
  let g = rng () in
  let n = 40 in
  let values = Array.init n (fun _ -> Randkit.Gaussian.sample g) in
  let plan = Stat.Crossval.make_plan g ~n ~folds:4 in
  let e =
    Stat.Crossval.run plan
      ~fit:(fun ~train ->
        let tbl = Hashtbl.create 16 in
        Array.iter (fun i -> Hashtbl.replace tbl i values.(i)) train;
        tbl)
      ~error:(fun tbl ~held_out ->
        let pred =
          Array.map (fun i -> try Hashtbl.find tbl i with Not_found -> 0.) held_out
        in
        let truth = Array.map (fun i -> values.(i)) held_out in
        Stat.Metrics.rmse ~pred ~truth)
  in
  check_bool "held-out error not fooled by memorization" true (e > 0.5)

let prop_quantile_monotone =
  qtest ~count:50 "quantile is monotone in p"
    QCheck.(array_of_size Gen.(2 -- 30) (float_range (-50.) 50.))
    (fun a ->
      let q1 = Stat.Descriptive.quantile a 0.25 in
      let q2 = Stat.Descriptive.quantile a 0.5 in
      let q3 = Stat.Descriptive.quantile a 0.75 in
      q1 <= q2 +. 1e-12 && q2 <= q3 +. 1e-12)

let prop_variance_nonnegative =
  qtest ~count:50 "variance is non-negative"
    QCheck.(array_of_size Gen.(1 -- 40) (float_range (-100.) 100.))
    (fun a -> Stat.Descriptive.variance a >= 0.)

let suite =
  ( "stat",
    [
      case "descriptive: mean" test_mean;
      case "descriptive: variance/std" test_variance_std;
      case "descriptive: welford stability" test_welford_stability;
      case "descriptive: min/max" test_min_max;
      case "descriptive: quantiles" test_quantiles;
      case "descriptive: covariance/correlation" test_covariance_correlation;
      case "descriptive: covariance matrix" test_covariance_matrix;
      case "descriptive: standardize" test_standardize;
      case "metrics: rmse/mae" test_rmse_mae;
      case "metrics: relative rms" test_relative_rms;
      case "metrics: r squared" test_r_squared;
      case "metrics: max abs / mape" test_max_abs_error_mape;
      case "pca: diagonal whitening" test_pca_whitening_identity_cov;
      case "pca: roundtrip" test_pca_roundtrip;
      case "pca: whitened samples standard" test_pca_whitened_samples_standard;
      case "pca: truncation" test_pca_truncation;
      case "pca: explained variance" test_pca_explained_variance;
      case "pca: from data" test_pca_of_data;
      case "crossval: plan/indices" test_plan_and_indices;
      case "crossval: run average" test_run_average;
      case "crossval: curves" test_run_curves;
      case "crossval: argmin with NaN" test_argmin_nan;
      case "crossval: detects overfitting" test_crossval_detects_overfit;
      prop_quantile_monotone;
      prop_variance_nonnegative;
    ] )
