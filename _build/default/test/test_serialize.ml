open Test_util

let model () =
  Rsm.Model.make ~basis_size:21311 ~support:[| 0; 7; 20310; 21310 |]
    ~coeffs:[| 893.25; -1.5e-7; 0.3333333333333333; 2.7182818284590452 |]

let test_roundtrip_string () =
  let m = model () in
  match Rsm.Serialize.of_string (Rsm.Serialize.to_string m) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m' ->
      check_int "basis size" m.Rsm.Model.basis_size m'.Rsm.Model.basis_size;
      Alcotest.(check (array int)) "support" m.Rsm.Model.support m'.Rsm.Model.support;
      check_vec ~eps:0. "coefficients bit-exact" m.Rsm.Model.coeffs
        m'.Rsm.Model.coeffs

let test_roundtrip_file () =
  let m = model () in
  let path = Filename.temp_file "rsm_model" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rsm.Serialize.save path m;
      match Rsm.Serialize.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok m' ->
          check_vec ~eps:0. "coefficients" m.Rsm.Model.coeffs m'.Rsm.Model.coeffs)

let test_empty_model () =
  let m = Rsm.Model.make ~basis_size:10 ~support:[||] ~coeffs:[||] in
  match Rsm.Serialize.of_string (Rsm.Serialize.to_string m) with
  | Ok m' -> check_int "nnz" 0 (Rsm.Model.nnz m')
  | Error e -> Alcotest.failf "empty model failed: %s" e

let expect_error name s =
  match Rsm.Serialize.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name

let test_rejects_garbage () =
  expect_error "empty" "";
  expect_error "bad header" "not-a-model\n";
  expect_error "wrong version" "rsm-model 2\nbasis_size 3\nnnz 0\n";
  expect_error "count mismatch" "rsm-model 1\nbasis_size 3\nnnz 2\n0 1.0\n";
  expect_error "index out of range" "rsm-model 1\nbasis_size 3\nnnz 1\n5 1.0\n";
  expect_error "duplicate index" "rsm-model 1\nbasis_size 5\nnnz 2\n1 1.0\n1 2.0\n";
  expect_error "bad float" "rsm-model 1\nbasis_size 3\nnnz 1\n0 abc\n"

let test_comments_ignored () =
  let s = "rsm-model 1\n# a comment\nbasis_size 4\nnnz 1\n# another\n2 1.5\n" in
  match Rsm.Serialize.of_string s with
  | Ok m -> check_float "value" 1.5 (Rsm.Model.coeff m 2)
  | Error e -> Alcotest.failf "comments broke parsing: %s" e

let test_predictions_survive_roundtrip () =
  let gen = Randkit.Prng.create 91 in
  let g = Randkit.Gaussian.matrix gen 40 25 in
  let f = Array.init 40 (fun i -> Linalg.Mat.get g i 3 -. (2. *. Linalg.Mat.get g i 11)) in
  let m = Rsm.Omp.fit g f ~lambda:2 in
  match Rsm.Serialize.of_string (Rsm.Serialize.to_string m) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok m' ->
      check_vec ~eps:0. "identical predictions"
        (Rsm.Model.predict_design m g)
        (Rsm.Model.predict_design m' g)

let suite =
  ( "serialize",
    [
      case "roundtrip via string" test_roundtrip_string;
      case "roundtrip via file" test_roundtrip_file;
      case "empty model" test_empty_model;
      case "rejects garbage" test_rejects_garbage;
      case "comments ignored" test_comments_ignored;
      case "predictions survive roundtrip" test_predictions_survive_roundtrip;
    ] )
