(* Extension features: sensitivity, yield, StOMP, incremental sampling,
   ring oscillator. *)
open Test_util

(* A hand-built quadratic model over 3 factors:
   f = 5 + 2·y0 + 1·y1 + 0.5·(y0² − 1)/√2-term + 0.3·y1·y2. *)
let basis3 = Polybasis.Basis.quadratic 3

let find_term t =
  let rec go i =
    if i >= Polybasis.Basis.size basis3 then
      Alcotest.failf "term %s not in basis" (Polybasis.Term.to_string t)
    else if Polybasis.Term.equal (Polybasis.Basis.term basis3 i) t then i
    else go (i + 1)
  in
  go 0

let handmade () =
  let support =
    [|
      find_term Polybasis.Term.constant;
      find_term (Polybasis.Term.linear 0);
      find_term (Polybasis.Term.linear 1);
      find_term (Polybasis.Term.square 0);
      find_term (Polybasis.Term.cross 1 2);
    |]
  in
  Rsm.Model.make ~basis_size:(Polybasis.Basis.size basis3) ~support
    ~coeffs:[| 5.; 2.; 1.; 0.5; 0.3 |]

(* --- Sensitivity --- *)

let test_total_variance () =
  let m = handmade () in
  (* Orthonormal basis: Var = 2² + 1² + 0.5² + 0.3². *)
  check_float ~eps:1e-12 "variance" (4. +. 1. +. 0.25 +. 0.09)
    (Rsm.Sensitivity.total_variance m basis3);
  check_float ~eps:1e-12 "mean" 5. (Rsm.Sensitivity.mean m basis3)

let test_variance_matches_mc () =
  (* The closed form must match Monte Carlo of the model itself. *)
  let m = handmade () in
  let g = rng () in
  let vals = Rsm.Yield.monte_carlo_values ~samples:200000 m basis3 g in
  check_float ~eps:0.06 "MC variance" (Rsm.Sensitivity.total_variance m basis3)
    (Stat.Descriptive.variance vals);
  check_float ~eps:0.02 "MC mean" 5. (Stat.Descriptive.mean vals)

let test_factor_shares () =
  let m = handmade () in
  let total = 4. +. 1. +. 0.25 +. 0.09 in
  let s = Rsm.Sensitivity.factor_shares m basis3 in
  check_float ~eps:1e-12 "y0 share" ((4. +. 0.25) /. total) s.(0);
  check_float ~eps:1e-12 "y1 share" ((1. +. 0.09) /. total) s.(1);
  check_float ~eps:1e-12 "y2 share (interaction only)" (0.09 /. total) s.(2)

let test_main_effects_and_interaction () =
  let m = handmade () in
  let total = 4. +. 1. +. 0.25 +. 0.09 in
  let main = Rsm.Sensitivity.main_effect_shares m basis3 in
  check_float ~eps:1e-12 "y2 no main effect" 0. main.(2);
  check_float ~eps:1e-12 "interaction share" (0.09 /. total)
    (Rsm.Sensitivity.interaction_share m basis3)

let test_top_factors () =
  let m = handmade () in
  let top = Rsm.Sensitivity.top_factors ~n:2 m basis3 in
  check_int "two entries" 2 (Array.length top);
  check_int "y0 first" 0 (fst top.(0));
  check_int "y1 second" 1 (fst top.(1))

let test_sensitivity_empty_model () =
  let m = Rsm.Model.make ~basis_size:(Polybasis.Basis.size basis3) ~support:[||] ~coeffs:[||] in
  check_float "zero variance" 0. (Rsm.Sensitivity.total_variance m basis3);
  check_vec "zero shares" (Array.make 3 0.) (Rsm.Sensitivity.factor_shares m basis3)

(* --- Yield --- *)

let linear_model () =
  let b = Polybasis.Basis.constant_linear 2 in
  ( b,
    Rsm.Model.make ~basis_size:3 ~support:[| 0; 1; 2 |] ~coeffs:[| 10.; 3.; 4. |] )

let test_yield_gaussian () =
  (* f = 10 + 3 y0 + 4 y1 ~ N(10, 25). *)
  let b, m = linear_model () in
  check_float ~eps:1e-6 "one-sided"
    (Stat.Distribution.cdf 1.)
    (Rsm.Yield.gaussian m b (Rsm.Yield.spec_max 15.));
  check_float ~eps:1e-6 "window"
    (Stat.Distribution.sigma_to_yield 2.)
    (Rsm.Yield.gaussian m b (Rsm.Yield.spec_both ~lower:0. ~upper:20.))

let test_yield_gaussian_rejects_quadratic () =
  let m = handmade () in
  check_raises_invalid "nonlinear" (fun () ->
      ignore (Rsm.Yield.gaussian m basis3 (Rsm.Yield.spec_max 5.)))

let test_yield_mc_matches_gaussian () =
  let b, m = linear_model () in
  let g = rng () in
  let spec = Rsm.Yield.spec_both ~lower:2. ~upper:18. in
  let y_mc, se = Rsm.Yield.monte_carlo ~samples:40000 m b g spec in
  let y_exact = Rsm.Yield.gaussian m b spec in
  check_bool "within 4 standard errors" true
    (Float.abs (y_mc -. y_exact) < 4. *. Float.max se 1e-4)

let test_yield_spec_validation () =
  check_raises_invalid "empty window" (fun () ->
      ignore (Rsm.Yield.spec_both ~lower:1. ~upper:0.));
  check_bool "passes" true (Rsm.Yield.passes (Rsm.Yield.spec_min 1.) 2.);
  check_bool "fails" false (Rsm.Yield.passes (Rsm.Yield.spec_min 1.) 0.)

(* --- StOMP --- *)

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Linalg.Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_stomp_recovers_support () =
  let support = [| 4; 11; 29; 47 |] and coeffs = [| 3.; -2.; 1.5; 0.9 |] in
  let g, f = sparse_problem ~k:100 ~m:80 ~support ~coeffs 51 in
  let model = Rsm.Stomp.fit g f in
  Array.iter
    (fun j ->
      check_bool (Printf.sprintf "true support %d found" j) true
        (Rsm.Model.coeff model j <> 0.))
    support

let test_stomp_fewer_stages_than_omp_iterations () =
  let support = Array.init 12 (fun i -> i * 6) in
  let coeffs = Array.init 12 (fun i -> 1. +. (0.1 *. float_of_int i)) in
  let g, f = sparse_problem ~k:150 ~m:100 ~support ~coeffs 52 in
  let steps = Rsm.Stomp.path g f in
  check_bool "selects in few stages" true (Array.length steps <= 5);
  let final = steps.(Array.length steps - 1).Rsm.Stomp.model in
  check_bool "covers the support" true (Rsm.Model.nnz final >= 12)

let test_stomp_residual_decreasing () =
  let g, f =
    sparse_problem ~noise:0.3 ~k:80 ~m:60 ~support:[| 3; 17 |] ~coeffs:[| 2.; -1. |] 53
  in
  let steps = Rsm.Stomp.path g f in
  for i = 1 to Array.length steps - 1 do
    check_bool "monotone" true
      (steps.(i).Rsm.Stomp.residual_norm
      <= steps.(i - 1).Rsm.Stomp.residual_norm +. 1e-9)
  done

let test_stomp_validation () =
  let g, f =
    sparse_problem ~k:20 ~m:10 ~support:[| 1 |] ~coeffs:[| 1. |] 54
  in
  check_raises_invalid "threshold" (fun () ->
      ignore (Rsm.Stomp.path ~threshold:0. g f));
  check_raises_invalid "stages" (fun () ->
      ignore (Rsm.Stomp.path ~max_stages:0 g f));
  check_raises_invalid "max_selected" (fun () ->
      ignore (Rsm.Stomp.path ~max_selected:100 g f))

let test_stomp_noise_robust () =
  let g, f =
    sparse_problem ~noise:0.5 ~k:200 ~m:120 ~support:[| 10; 50; 90 |]
      ~coeffs:[| 3.; 2.; -2. |] 55
  in
  let model = Rsm.Stomp.fit g f in
  (* With noise the threshold keeps the selection modest. *)
  check_bool "not grossly over-selected" true (Rsm.Model.nnz model < 40);
  check_bool "error small" true (Rsm.Model.error_on model g f < 0.3)

(* --- Incremental --- *)

let test_incremental_converges () =
  let support = [| 5; 20; 40 |] and coeffs = [| 2.; -1.; 1.5 |] in
  let full_g, full_f = sparse_problem ~noise:0.1 ~k:800 ~m:60 ~support ~coeffs 56 in
  let sample k =
    ( Linalg.Mat.select_rows full_g (Array.init k Fun.id),
      Array.sub full_f 0 k )
  in
  let r =
    Rsm.Incremental.run ~initial:40 ~max_samples:800 ~sample
      (Randkit.Prng.create 57)
  in
  check_bool "converged" true r.Rsm.Incremental.converged;
  check_bool "several rounds" true (Array.length r.Rsm.Incremental.rounds >= 2);
  (* Sample counts strictly increase. *)
  let rounds = r.Rsm.Incremental.rounds in
  for i = 1 to Array.length rounds - 1 do
    check_bool "growing" true
      (rounds.(i).Rsm.Incremental.samples > rounds.(i - 1).Rsm.Incremental.samples)
  done;
  (* Stops well before the budget on this easy problem. *)
  check_bool "saves samples" true
    (rounds.(Array.length rounds - 1).Rsm.Incremental.samples < 800);
  Array.iter
    (fun j -> check_bool "support found" true (Rsm.Model.coeff r.Rsm.Incremental.final j <> 0.))
    support

let test_incremental_budget_exhaustion () =
  (* A tight budget with high patience runs out of samples before the
     patience counter can trip: converged must be false and the final
     size must respect max_samples exactly. *)
  let support = [| 5; 20 |] and coeffs = [| 2.; -1. |] in
  let full_g, full_f = sparse_problem ~noise:0.2 ~k:120 ~m:40 ~support ~coeffs 58 in
  let sample k =
    (Linalg.Mat.select_rows full_g (Array.init k Fun.id), Array.sub full_f 0 k)
  in
  let r =
    Rsm.Incremental.run ~initial:50 ~patience:5 ~max_samples:120 ~sample
      (Randkit.Prng.create 59)
  in
  check_bool "budget exhausted before convergence" true
    (not r.Rsm.Incremental.converged);
  let last = r.Rsm.Incremental.rounds.(Array.length r.Rsm.Incremental.rounds - 1) in
  check_int "ends exactly at the budget" 120 last.Rsm.Incremental.samples

let test_incremental_validation () =
  let sample k = (Linalg.Mat.create k 3, Array.make k 0.) in
  check_raises_invalid "initial > max" (fun () ->
      ignore
        (Rsm.Incremental.run ~initial:100 ~max_samples:50 ~sample
           (Randkit.Prng.create 1)));
  check_raises_invalid "growth" (fun () ->
      ignore
        (Rsm.Incremental.run ~growth:1. ~max_samples:50 ~sample
           (Randkit.Prng.create 1)))

(* --- Ring oscillator --- *)

let ring = Circuit.Ring_osc.build ~stages:21 ()

let test_ring_dims () =
  check_int "dim" (10 + (2 * 21 * 3)) (Circuit.Ring_osc.dim ring);
  check_int "stages" 21 (Circuit.Ring_osc.stages ring);
  check_raises_invalid "even stages" (fun () ->
      ignore (Circuit.Ring_osc.build ~stages:4 ()))

let test_ring_nominal () =
  let f = Circuit.Ring_osc.nominal ring Circuit.Ring_osc.Frequency in
  check_bool "frequency in plausible range" true (f > 10. && f < 100000.);
  let p = Circuit.Ring_osc.nominal ring Circuit.Ring_osc.Power in
  check_bool "power positive" true (p > 0.)

let test_ring_slow_devices_lower_frequency () =
  let dy = Linalg.Vec.create (Circuit.Ring_osc.dim ring) in
  let p = Circuit.Ring_osc.process ring in
  (* Raise V_TH of stage 0's NMOS. *)
  dy.(Circuit.Process.mismatch_factor_index p ~device:0 ~which:0) <- 3.;
  check_bool "slower" true
    (Circuit.Ring_osc.eval ring Circuit.Ring_osc.Frequency dy
    < Circuit.Ring_osc.nominal ring Circuit.Ring_osc.Frequency)

let test_ring_stage_weights_equal () =
  (* Perturbing any stage has (nearly) the same effect: equal-weight,
     non-profoundly-sparse structure. *)
  let p = Circuit.Ring_osc.process ring in
  let effect stage =
    let dy = Linalg.Vec.create (Circuit.Ring_osc.dim ring) in
    dy.(Circuit.Process.mismatch_factor_index p ~device:(2 * stage) ~which:0) <- 1.;
    Circuit.Ring_osc.nominal ring Circuit.Ring_osc.Frequency
    -. Circuit.Ring_osc.eval ring Circuit.Ring_osc.Frequency dy
  in
  let e0 = effect 0 and e10 = effect 10 and e20 = effect 20 in
  check_float ~eps:1e-9 "stage 0 = stage 10" e0 e10;
  check_float ~eps:1e-9 "stage 0 = stage 20" e0 e20;
  check_bool "nonzero" true (Float.abs e0 > 0.)

let test_ring_model_uses_globals () =
  (* The fitted sparse model should attribute most variance to the 10
     inter-die factors (locals average out over 42 devices). *)
  let sim = Circuit.Ring_osc.simulator ring Circuit.Ring_osc.Frequency in
  let g = rng () in
  let e = Circuit.Testbench.generate sim g ~train:200 ~test:400 in
  let basis = Polybasis.Basis.constant_linear (Circuit.Ring_osc.dim ring) in
  let g_tr =
    Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points
  in
  let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
  let r = Rsm.Select.omp (rng ()) ~max_lambda:40 g_tr f_tr in
  let model = r.Rsm.Select.model in
  let shares = Rsm.Sensitivity.factor_shares model basis in
  let global_share = ref 0. in
  for i = 0 to 9 do
    global_share := !global_share +. shares.(i)
  done;
  check_bool
    (Printf.sprintf "globals carry most variance (%.2f)" !global_share)
    true (!global_share > 0.5)

let suite =
  ( "extensions",
    [
      case "sensitivity: total variance" test_total_variance;
      slow_case "sensitivity: matches model MC" test_variance_matches_mc;
      case "sensitivity: factor shares" test_factor_shares;
      case "sensitivity: main effects / interaction" test_main_effects_and_interaction;
      case "sensitivity: top factors" test_top_factors;
      case "sensitivity: empty model" test_sensitivity_empty_model;
      case "yield: gaussian closed form" test_yield_gaussian;
      case "yield: rejects nonlinear" test_yield_gaussian_rejects_quadratic;
      slow_case "yield: MC matches gaussian" test_yield_mc_matches_gaussian;
      case "yield: spec validation" test_yield_spec_validation;
      case "stomp: support recovery" test_stomp_recovers_support;
      case "stomp: few stages" test_stomp_fewer_stages_than_omp_iterations;
      case "stomp: residual decreasing" test_stomp_residual_decreasing;
      case "stomp: validation" test_stomp_validation;
      case "stomp: noise robustness" test_stomp_noise_robust;
      slow_case "incremental: converges and saves samples" test_incremental_converges;
      case "incremental: budget exhaustion" test_incremental_budget_exhaustion;
      case "incremental: validation" test_incremental_validation;
      case "ring: dimensions" test_ring_dims;
      case "ring: nominal" test_ring_nominal;
      case "ring: vth slows it" test_ring_slow_devices_lower_frequency;
      case "ring: equal stage weights" test_ring_stage_weights_equal;
      slow_case "ring: globals dominate fitted model" test_ring_model_uses_globals;
    ] )
