open Test_util

(* --- Prng --- *)

let test_determinism () =
  let a = Randkit.Prng.create 123 and b = Randkit.Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Randkit.Prng.bits64 a)
      (Randkit.Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Randkit.Prng.create 1 and b = Randkit.Prng.create 2 in
  check_bool "different streams" true
    (Randkit.Prng.bits64 a <> Randkit.Prng.bits64 b)

let test_copy () =
  let a = Randkit.Prng.create 9 in
  ignore (Randkit.Prng.bits64 a);
  let b = Randkit.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Randkit.Prng.bits64 a)
    (Randkit.Prng.bits64 b)

let test_split_independent () =
  let a = Randkit.Prng.create 5 in
  let child = Randkit.Prng.split a in
  check_bool "child differs from parent" true
    (Randkit.Prng.bits64 child <> Randkit.Prng.bits64 a)

let test_float_range () =
  let g = rng () in
  for _ = 1 to 1000 do
    let x = Randkit.Prng.float g in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let g = rng () in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Randkit.Prng.float g
  done;
  check_float ~eps:0.01 "uniform mean" 0.5 (!acc /. float_of_int n)

let test_int_bounds () =
  let g = rng () in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let v = Randkit.Prng.int g 7 in
    check_bool "in range" true (v >= 0 && v < 7);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d populated" i) true (c > 700))
    counts;
  check_raises_invalid "bound 0" (fun () -> ignore (Randkit.Prng.int g 0))

let test_permutation () =
  let g = rng () in
  let p = Randkit.Prng.permutation g 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check_bool "is a permutation" true
    (Array.to_list sorted = List.init 50 Fun.id)

let test_shuffle_preserves_multiset () =
  let g = rng () in
  let a = [| 1; 1; 2; 3; 5; 8 |] in
  let b = Array.copy a in
  Randkit.Prng.shuffle g b;
  Array.sort compare b;
  Alcotest.(check (array int)) "multiset preserved" a b

(* --- Gaussian --- *)

let test_gaussian_moments () =
  let g = rng () in
  let n = 50000 in
  let v = Randkit.Gaussian.vector g n in
  check_float ~eps:0.02 "mean 0" 0. (Stat.Descriptive.mean v);
  check_float ~eps:0.03 "variance 1" 1. (Stat.Descriptive.variance v);
  (* Third standardized moment (skewness numerator) near 0. *)
  let m3 = Array.fold_left (fun acc x -> acc +. (x *. x *. x)) 0. v in
  check_float ~eps:0.1 "skew 0" 0. (m3 /. float_of_int n)

let test_gaussian_tails () =
  let g = rng () in
  let n = 50000 in
  let beyond2 = ref 0 in
  for _ = 1 to n do
    if Float.abs (Randkit.Gaussian.sample g) > 2. then incr beyond2
  done;
  (* P(|Z| > 2) ≈ 4.55%. *)
  let frac = float_of_int !beyond2 /. float_of_int n in
  check_bool "2-sigma tail mass" true (frac > 0.035 && frac < 0.056)

let test_gaussian_scaled () =
  let g = rng () in
  let v = Array.init 20000 (fun _ -> Randkit.Gaussian.scaled g ~mean:5. ~sigma:2.) in
  check_float ~eps:0.08 "mean" 5. (Stat.Descriptive.mean v);
  check_float ~eps:0.1 "sigma" 2. (Stat.Descriptive.std v)

let test_gaussian_matrix_shape () =
  let g = rng () in
  let m = Randkit.Gaussian.matrix g 3 4 in
  check_int "rows" 3 (Linalg.Mat.rows m);
  check_int "cols" 4 (Linalg.Mat.cols m)

(* --- Mvn --- *)

let test_mvn_covariance_recovered () =
  let open Linalg in
  let sigma = Mat.of_arrays [| [| 2.; 0.8 |]; [| 0.8; 1. |] |] in
  let s = Randkit.Mvn.of_covariance sigma in
  check_int "dim" 2 (Randkit.Mvn.dim s);
  let g = rng () in
  let n = 30000 in
  let data = Randkit.Mvn.sample_n s g n in
  let cov = Stat.Descriptive.covariance_matrix data in
  check_float ~eps:0.08 "var1" 2. (Mat.get cov 0 0);
  check_float ~eps:0.05 "var2" 1. (Mat.get cov 1 1);
  check_float ~eps:0.05 "cov" 0.8 (Mat.get cov 0 1)

let test_mvn_factor () =
  let open Linalg in
  let sigma = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  let s = Randkit.Mvn.of_covariance sigma in
  let l = Randkit.Mvn.covariance_factor s in
  check_float "l00" 2. (Mat.get l 0 0);
  check_float "l11" 3. (Mat.get l 1 1)

(* --- Sampling --- *)

let test_train_test_split () =
  let g = rng () in
  let train, test = Randkit.Sampling.train_test_split g ~n:100 ~test_fraction:0.3 in
  check_int "test size" 30 (Array.length test);
  check_int "train size" 70 (Array.length train);
  let all = Array.append train test in
  Array.sort compare all;
  check_bool "partition" true (Array.to_list all = List.init 100 Fun.id);
  check_raises_invalid "bad fraction" (fun () ->
      ignore (Randkit.Sampling.train_test_split g ~n:10 ~test_fraction:1.5))

let test_fold_assignment_balanced () =
  let g = rng () in
  let a = Randkit.Sampling.fold_assignment g ~n:103 ~folds:4 in
  let counts = Array.make 4 0 in
  Array.iter (fun q -> counts.(q) <- counts.(q) + 1) a;
  let lo, hi = Stat.Descriptive.min_max (Array.map float_of_int counts) in
  check_bool "balanced within 1" true (hi -. lo <= 1.);
  check_raises_invalid "folds > n" (fun () ->
      ignore (Randkit.Sampling.fold_assignment g ~n:3 ~folds:5))

let test_fold_split () =
  let g = rng () in
  let a = Randkit.Sampling.fold_assignment g ~n:20 ~folds:4 in
  let train, held = Randkit.Sampling.fold_split a 2 in
  check_int "total" 20 (Array.length train + Array.length held);
  Array.iter (fun i -> check_int "held fold id" 2 a.(i)) held;
  Array.iter (fun i -> check_bool "train not fold 2" true (a.(i) <> 2)) train

let test_subsample () =
  let g = rng () in
  let idx = Array.init 30 (fun i -> i * 10) in
  let s = Randkit.Sampling.subsample g idx 10 in
  check_int "size" 10 (Array.length s);
  let seen = Hashtbl.create 10 in
  Array.iter
    (fun v ->
      check_bool "from population" true (v mod 10 = 0 && v < 300);
      check_bool "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    s;
  check_raises_invalid "too many" (fun () ->
      ignore (Randkit.Sampling.subsample g idx 31))

let prop_permutation_valid =
  qtest ~count:50 "permutation is always a bijection" QCheck.(int_range 1 200)
    (fun n ->
      let g = rng () in
      let p = Randkit.Prng.permutation g n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      Array.to_list sorted = List.init n Fun.id)

let prop_split_partition =
  qtest ~count:50 "train/test split partitions indices"
    QCheck.(pair (int_range 2 300) (float_range 0.05 0.95))
    (fun (n, frac) ->
      let g = rng () in
      let train, test = Randkit.Sampling.train_test_split g ~n ~test_fraction:frac in
      let all = Array.append train test in
      Array.sort compare all;
      Array.to_list all = List.init n Fun.id)

let suite =
  ( "randkit",
    [
      case "prng: determinism" test_determinism;
      case "prng: seeds differ" test_different_seeds;
      case "prng: copy" test_copy;
      case "prng: split" test_split_independent;
      case "prng: float range" test_float_range;
      case "prng: float mean" test_float_mean;
      case "prng: int bounds & uniformity" test_int_bounds;
      case "prng: permutation" test_permutation;
      case "prng: shuffle multiset" test_shuffle_preserves_multiset;
      case "gaussian: moments" test_gaussian_moments;
      case "gaussian: tails" test_gaussian_tails;
      case "gaussian: scaled" test_gaussian_scaled;
      case "gaussian: matrix shape" test_gaussian_matrix_shape;
      case "mvn: covariance recovered" test_mvn_covariance_recovered;
      case "mvn: factor" test_mvn_factor;
      case "sampling: train/test split" test_train_test_split;
      case "sampling: folds balanced" test_fold_assignment_balanced;
      case "sampling: fold_split" test_fold_split;
      case "sampling: subsample" test_subsample;
      prop_permutation_valid;
      prop_split_partition;
    ] )
