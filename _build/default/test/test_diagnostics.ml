(* Bootstrap stability and worst-case corner extraction. *)
open Test_util
open Linalg

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

(* --- Bootstrap --- *)

let test_bootstrap_stable_on_strong_signal () =
  let support = [| 3; 20; 40 |] and coeffs = [| 3.; -2.; 2.5 |] in
  let g, f = sparse_problem ~noise:0.1 ~k:150 ~m:60 ~support ~coeffs 81 in
  let report = Rsm.Bootstrap.run ~replicates:30 (rng ()) g f in
  check_int "replicates recorded" 30 report.Rsm.Bootstrap.replicates;
  let stable = Rsm.Bootstrap.stable_support ~threshold:0.9 report in
  Array.iter
    (fun j ->
      check_bool (Printf.sprintf "true factor %d stable" j) true
        (Array.mem j stable))
    support;
  (* The stable core should not be much larger than the truth. *)
  check_bool "no large stable halo" true (Array.length stable <= 6)

let test_bootstrap_frequencies_sorted_and_valid () =
  let g, f =
    sparse_problem ~noise:0.3 ~k:100 ~m:40 ~support:[| 5 |] ~coeffs:[| 1. |] 82
  in
  let report = Rsm.Bootstrap.run ~replicates:20 ~lambda:5 (rng ()) g f in
  let freqs = report.Rsm.Bootstrap.frequencies in
  Array.iteri
    (fun i (j, fr) ->
      check_bool "index in range" true (j >= 0 && j < 40);
      check_bool "frequency in (0,1]" true (fr > 0. && fr <= 1.);
      if i > 0 then check_bool "sorted" true (fr <= snd freqs.(i - 1)))
    freqs;
  check_bool "mean nnz near lambda" true
    (report.Rsm.Bootstrap.mean_nnz > 1. && report.Rsm.Bootstrap.mean_nnz <= 5.01)

let test_bootstrap_coefficient_stats () =
  let support = [| 7 |] and coeffs = [| 2.0 |] in
  let g, f = sparse_problem ~noise:0.05 ~k:120 ~m:30 ~support ~coeffs 83 in
  let report = Rsm.Bootstrap.run ~replicates:25 ~lambda:1 (rng ()) g f in
  let j0, mean0 = report.Rsm.Bootstrap.coeff_mean.(0) in
  check_int "top factor is the truth" 7 j0;
  check_float ~eps:0.1 "coefficient mean near truth" 2.0 mean0;
  let _, std0 = report.Rsm.Bootstrap.coeff_std.(0) in
  check_bool "small std on strong signal" true (std0 < 0.2)

let test_bootstrap_validation () =
  let g, f = sparse_problem ~k:20 ~m:10 ~support:[| 1 |] ~coeffs:[| 1. |] 84 in
  check_raises_invalid "replicates" (fun () ->
      ignore (Rsm.Bootstrap.run ~replicates:0 (rng ()) g f))

(* --- Corner --- *)

let lin_basis = Polybasis.Basis.constant_linear 4

let lin_model () =
  (* f = 1 + 3 y0 − 4 y2 *)
  Rsm.Model.make ~basis_size:5 ~support:[| 0; 1; 3 |] ~coeffs:[| 1.; 3.; -4. |]

let test_linear_worst_closed_form () =
  let m = lin_model () in
  let hi = Rsm.Corner.linear_worst m lin_basis ~sigma:3. ~maximize:true in
  (* ‖(3, 0, −4, 0)‖ = 5 → max = 1 + 15. *)
  check_float ~eps:1e-12 "max value" 16. hi.Rsm.Corner.value;
  check_float ~eps:1e-12 "corner radius" 3. (Vec.nrm2 hi.Rsm.Corner.corner);
  check_float ~eps:1e-12 "corner y0" (3. *. 3. /. 5.) hi.Rsm.Corner.corner.(0);
  check_float ~eps:1e-12 "corner y2" (-3. *. 4. /. 5.) hi.Rsm.Corner.corner.(2);
  let lo = Rsm.Corner.linear_worst m lin_basis ~sigma:3. ~maximize:false in
  check_float ~eps:1e-12 "min value" (-14.) lo.Rsm.Corner.value

let test_linear_worst_at_corner_evaluates () =
  (* Evaluating the model at the returned corner gives the returned value. *)
  let m = lin_model () in
  let e = Rsm.Corner.linear_worst m lin_basis ~sigma:2. ~maximize:true in
  check_float ~eps:1e-10 "consistent"
    e.Rsm.Corner.value
    (Rsm.Model.predict_point m lin_basis e.Rsm.Corner.corner)

let test_linear_worst_rejects_quadratic () =
  let b = Polybasis.Basis.quadratic 3 in
  let sq =
    (* find the y0^2 term *)
    let rec go i =
      if Polybasis.Term.equal (Polybasis.Basis.term b i) (Polybasis.Term.square 0)
      then i
      else go (i + 1)
    in
    go 0
  in
  let m = Rsm.Model.make ~basis_size:(Polybasis.Basis.size b) ~support:[| sq |] ~coeffs:[| 1. |] in
  check_raises_invalid "quadratic" (fun () ->
      ignore (Rsm.Corner.linear_worst m b ~sigma:1. ~maximize:true))

let test_search_matches_closed_form_on_linear () =
  let m = lin_model () in
  let exact = Rsm.Corner.linear_worst m lin_basis ~sigma:2. ~maximize:true in
  let found =
    Rsm.Corner.search_worst m lin_basis ~sigma:2. ~maximize:true (rng ())
  in
  check_bool "search reaches >= 99% of the exact optimum" true
    (found.Rsm.Corner.value >= 0.99 *. exact.Rsm.Corner.value)

let test_search_on_quadratic () =
  (* f = y0² Hermite-style: g = (y0²−1)/√2 with coefficient √2 → y0² − 1.
     On the sphere of radius 2 in 2 variables the max of y0² − 1 is 3. *)
  let b = Polybasis.Basis.quadratic 2 in
  let sq =
    let rec go i =
      if Polybasis.Term.equal (Polybasis.Basis.term b i) (Polybasis.Term.square 0)
      then i
      else go (i + 1)
    in
    go 0
  in
  let m =
    Rsm.Model.make ~basis_size:(Polybasis.Basis.size b) ~support:[| sq |]
      ~coeffs:[| sqrt 2. |]
  in
  let e = Rsm.Corner.search_worst ~iters:400 m b ~sigma:2. ~maximize:true (rng ()) in
  check_bool
    (Printf.sprintf "found %.3f of max 3.0" e.Rsm.Corner.value)
    true
    (e.Rsm.Corner.value > 2.8);
  (* The corner lies on the sphere. *)
  check_float ~eps:1e-6 "on sphere" 2. (Vec.nrm2 e.Rsm.Corner.corner)

let test_corner_roundtrip_through_simulator () =
  (* End-to-end: fit the OpAmp offset model, extract the 3-sigma worst
     corner, and verify the simulator really is bad there. *)
  let amp = Circuit.Opamp.build ~n_parasitics:20 () in
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Offset in
  let g = rng () in
  let data = Circuit.Simulator.run sim g ~k:300 in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  let design = Polybasis.Design.matrix_rows basis data.Circuit.Simulator.points in
  let model = Rsm.Omp.fit design data.Circuit.Simulator.values ~lambda:10 in
  let e = Rsm.Corner.linear_worst model basis ~sigma:3. ~maximize:true in
  let simulated = Circuit.Opamp.eval amp Circuit.Opamp.Offset e.Rsm.Corner.corner in
  (* The corner's simulated offset should be close to the model's claim
     and far outside the typical spread (sigma ~ 12 mV). *)
  check_bool "extreme at the corner" true (simulated > 20.);
  check_bool "model's claim holds within 20%" true
    (Float.abs (simulated -. e.Rsm.Corner.value) < 0.2 *. Float.abs e.Rsm.Corner.value)

let suite =
  ( "diagnostics",
    [
      slow_case "bootstrap: stable support" test_bootstrap_stable_on_strong_signal;
      case "bootstrap: frequencies valid" test_bootstrap_frequencies_sorted_and_valid;
      case "bootstrap: coefficient stats" test_bootstrap_coefficient_stats;
      case "bootstrap: validation" test_bootstrap_validation;
      case "corner: closed form" test_linear_worst_closed_form;
      case "corner: corner evaluates to value" test_linear_worst_at_corner_evaluates;
      case "corner: rejects quadratic" test_linear_worst_rejects_quadratic;
      case "corner: search matches closed form" test_search_matches_closed_form_on_linear;
      case "corner: search on quadratic" test_search_on_quadratic;
      slow_case "corner: roundtrip through simulator" test_corner_roundtrip_through_simulator;
    ] )
