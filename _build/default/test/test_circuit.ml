open Circuit
open Test_util

(* --- Process --- *)

let small_spec =
  {
    Process.default_spec with
    n_global = 4;
    n_devices = 3;
    mismatch_vars_per_device = 3;
    n_parasitics = 5;
  }

let test_process_dim () =
  let p = Process.build small_spec in
  check_int "dim" (4 + 9 + 5) (Process.dim p);
  check_int "globals" 4 (Process.n_global_factors p)

let test_process_validation () =
  check_raises_invalid "corr >= 1" (fun () ->
      ignore (Process.build { small_spec with global_corr = 1.0 }));
  check_raises_invalid "no globals" (fun () ->
      ignore (Process.build { small_spec with n_global = 0 }));
  check_raises_invalid "few mismatch vars" (fun () ->
      ignore (Process.build { small_spec with mismatch_vars_per_device = 2 }))

let test_factor_indices_disjoint () =
  let p = Process.build small_spec in
  let seen = Hashtbl.create 32 in
  for d = 0 to 2 do
    for w = 0 to 2 do
      let i = Process.mismatch_factor_index p ~device:d ~which:w in
      check_bool "unique" false (Hashtbl.mem seen i);
      Hashtbl.add seen i ();
      check_bool "above globals" true (i >= 4)
    done
  done;
  for q = 0 to 4 do
    let i = Process.parasitic_factor_index p ~parasitic:q in
    check_bool "parasitic unique" false (Hashtbl.mem seen i);
    Hashtbl.add seen i ();
    check_bool "in range" true (i < Process.dim p)
  done

let test_device_shift_zero_at_nominal () =
  let p = Process.build small_spec in
  let dy = Linalg.Vec.create (Process.dim p) in
  let s = Process.device_shift p dy ~device:0 ~area_factor:1. in
  check_float "dvth" 0. s.Process.dvth;
  check_float "dbeta" 0. s.Process.dbeta_rel;
  check_float "dlen" 0. s.Process.dlen_rel

let test_device_shift_locality () =
  (* Perturbing device 1's mismatch factor must not move device 0. *)
  let p = Process.build small_spec in
  let dy = Linalg.Vec.create (Process.dim p) in
  dy.(Process.mismatch_factor_index p ~device:1 ~which:0) <- 3.;
  let s0 = Process.device_shift p dy ~device:0 ~area_factor:1. in
  let s1 = Process.device_shift p dy ~device:1 ~area_factor:1. in
  check_float "device 0 untouched" 0. s0.Process.dvth;
  check_bool "device 1 shifted" true (Float.abs s1.Process.dvth > 0.01)

let test_global_shift_shared () =
  (* Perturbing a global factor moves every device identically (same
     area), i.e. inter-die variation is common-mode. *)
  let p = Process.build small_spec in
  let dy = Linalg.Vec.create (Process.dim p) in
  dy.(0) <- 2.;
  let s0 = Process.device_shift p dy ~device:0 ~area_factor:1. in
  let s1 = Process.device_shift p dy ~device:1 ~area_factor:1. in
  check_float ~eps:1e-12 "common vth" s0.Process.dvth s1.Process.dvth;
  check_bool "nonzero" true (Float.abs s0.Process.dvth > 1e-6)

let test_pelgrom_scaling () =
  (* Mismatch shrinks as 1/sqrt(area). *)
  let p = Process.build small_spec in
  let dy = Linalg.Vec.create (Process.dim p) in
  dy.(Process.mismatch_factor_index p ~device:0 ~which:0) <- 1.;
  let s1 = Process.device_shift p dy ~device:0 ~area_factor:1. in
  let s4 = Process.device_shift p dy ~device:0 ~area_factor:4. in
  check_float ~eps:1e-12 "half sigma at 4x area" (s1.Process.dvth /. 2.)
    s4.Process.dvth

let test_mismatch_sigma_statistics () =
  (* Over many draws the local V_TH sigma of a unit device matches spec
     plus the global component in quadrature. *)
  let p = Process.build small_spec in
  let g = rng () in
  let n = 20000 in
  let vths =
    Array.init n (fun _ ->
        let dy = Process.sample p g in
        (Process.device_shift p dy ~device:0 ~area_factor:1.).Process.dvth)
  in
  check_float ~eps:0.002 "mean 0" 0. (Stat.Descriptive.mean vths);
  let sd = Stat.Descriptive.std vths in
  check_bool "sigma at least local" true (sd >= small_spec.Process.vth_sigma_local);
  check_bool "sigma bounded" true (sd < 3. *. small_spec.Process.vth_sigma_local)

(* --- Mosfet --- *)

let test_square_law () =
  let d = Mosfet.nominal Mosfet.nmos_unit in
  check_float "off" 0. (Mosfet.id_sat d ~vgs:0.2 ~vds:1.);
  let id = Mosfet.id_sat d ~vgs:0.85 ~vds:0. in
  (* 0.5 · 2e-3 · 0.5² = 0.25 mA *)
  check_float ~eps:1e-12 "saturation current" 2.5e-4 id

let test_vgs_inverse () =
  let d = Mosfet.nominal Mosfet.nmos_unit in
  let id = 1e-4 in
  let vgs = Mosfet.vgs_for_current d ~id in
  check_float ~eps:1e-9 "inverse of square law" id (Mosfet.id_sat d ~vgs ~vds:0.)

let test_gm_gds () =
  let d = Mosfet.nominal Mosfet.nmos_unit in
  let id = 1e-4 in
  check_float ~eps:1e-12 "gm" (sqrt (2. *. 2e-3 *. id)) (Mosfet.gm d ~id);
  check_float ~eps:1e-12 "gds" (0.15 *. id) (Mosfet.gds d ~id);
  check_float "gm at zero current" 0. (Mosfet.gm d ~id:0.)

let test_vth_shift_reduces_current () =
  let shifted =
    { Mosfet.p = Mosfet.nmos_unit;
      shift = { Process.dvth = 0.05; dbeta_rel = 0.; dlen_rel = 0. } }
  in
  let nominal = Mosfet.nominal Mosfet.nmos_unit in
  check_bool "higher vth -> less current" true
    (Mosfet.id_sat shifted ~vgs:0.8 ~vds:0.5
    < Mosfet.id_sat nominal ~vgs:0.8 ~vds:0.5)

let test_scaled () =
  let d2 = Mosfet.nominal (Mosfet.scaled Mosfet.nmos_unit 2.) in
  let d1 = Mosfet.nominal Mosfet.nmos_unit in
  check_float ~eps:1e-15 "beta doubles"
    (2. *. Mosfet.id_sat d1 ~vgs:0.8 ~vds:0.)
    (Mosfet.id_sat d2 ~vgs:0.8 ~vds:0.);
  check_raises_invalid "bad scale" (fun () -> ignore (Mosfet.scaled Mosfet.nmos_unit 0.))

(* --- Opamp --- *)

let amp = Opamp.build ~n_parasitics:50 ()

let test_opamp_dims () =
  check_int "reduced dim" (20 + 60 + 50) (Opamp.dim amp);
  let full = Opamp.build () in
  check_int "paper dim 630" 630 (Opamp.dim full)

let test_opamp_nominal_sane () =
  let gain = Opamp.nominal amp Opamp.Gain in
  check_bool "gain 40..100 dB" true (gain > 40. && gain < 100.);
  let bw = Opamp.nominal amp Opamp.Bandwidth in
  check_bool "bandwidth 10..1000 MHz" true (bw > 10. && bw < 1000.);
  let pw = Opamp.nominal amp Opamp.Power in
  check_bool "power 10..5000 uW" true (pw > 10. && pw < 5000.);
  check_float ~eps:1e-9 "offset zero at nominal" 0. (Opamp.nominal amp Opamp.Offset)

let test_opamp_offset_antisymmetric () =
  (* Swapping the input pair's V_TH mismatch flips the offset sign. *)
  let p = Opamp.process amp in
  let dy = Linalg.Vec.create (Opamp.dim amp) in
  let i1 = Process.mismatch_factor_index p ~device:Opamp.Device.m1 ~which:0 in
  let i2 = Process.mismatch_factor_index p ~device:Opamp.Device.m2 ~which:0 in
  dy.(i1) <- 1.;
  let v1 = Opamp.eval amp Opamp.Offset dy in
  dy.(i1) <- 0.;
  dy.(i2) <- 1.;
  let v2 = Opamp.eval amp Opamp.Offset dy in
  check_float ~eps:1e-9 "antisymmetric" (-.v1) v2;
  check_bool "nonzero" true (Float.abs v1 > 1.)

let test_opamp_offset_sparse () =
  (* Mismatch of the second stage must not move the input offset. *)
  let p = Opamp.process amp in
  let dy = Linalg.Vec.create (Opamp.dim amp) in
  dy.(Process.mismatch_factor_index p ~device:Opamp.Device.m6 ~which:0) <- 2.;
  check_float ~eps:1e-9 "M6 does not affect offset" 0.
    (Opamp.eval amp Opamp.Offset dy)

let test_opamp_bandwidth_depends_on_cc () =
  let p = Opamp.process amp in
  let dy = Linalg.Vec.create (Opamp.dim amp) in
  dy.(Process.parasitic_factor_index p ~parasitic:1) <- 2.;
  let bw_hi_cc = Opamp.eval amp Opamp.Bandwidth dy in
  check_bool "larger Cc -> lower bandwidth" true
    (bw_hi_cc < Opamp.nominal amp Opamp.Bandwidth)

let test_opamp_power_depends_on_bias_r () =
  let p = Opamp.process amp in
  let dy = Linalg.Vec.create (Opamp.dim amp) in
  dy.(Process.parasitic_factor_index p ~parasitic:0) <- 2.;
  let pw = Opamp.eval amp Opamp.Power dy in
  check_bool "larger bias R -> lower power" true
    (pw < Opamp.nominal amp Opamp.Power)

let test_opamp_distal_parasitic_negligible () =
  let p = Opamp.process amp in
  let dy = Linalg.Vec.create (Opamp.dim amp) in
  dy.(Process.parasitic_factor_index p ~parasitic:45) <- 3.;
  let g0 = Opamp.nominal amp Opamp.Gain in
  let g1 = Opamp.eval amp Opamp.Gain dy in
  check_bool "tiny but non-zero" true
    (Float.abs (g1 -. g0) > 0. && Float.abs (g1 -. g0) < 0.01 *. Float.abs g0)

let test_opamp_eval_dim_check () =
  check_raises_invalid "dim mismatch" (fun () ->
      ignore (Opamp.eval amp Opamp.Gain [| 0. |]))

let test_metric_names () =
  Alcotest.(check (list string))
    "names"
    [ "gain"; "bandwidth"; "power"; "offset" ]
    (List.map Opamp.metric_name Opamp.all_metrics)

(* --- Sram --- *)

let sram = Sram.build ~cells:60 ()

let test_sram_dims () =
  check_int "60 cells" ((18 * 60) + 60 + 10) (Sram.dim sram);
  check_int "paper cells give 21310"
    21310
    ((18 * Sram.paper_cells) + 60 + 10)

let test_sram_nominal_positive () =
  let d = Sram.nominal_delay_ps sram in
  check_bool "positive, sub-10ns" true (d > 100. && d < 10000.)

let test_sram_accessed_cell_matters () =
  let p = Sram.process sram in
  let dy = Linalg.Vec.create (Sram.dim sram) in
  (* Raise the accessed cell's pull-down V_TH: discharge is slower. *)
  dy.(Process.mismatch_factor_index p ~device:(6 * Sram.accessed_cell) ~which:0) <- 3.;
  let d = Sram.read_delay_ps sram dy in
  check_bool "slower" true (d > Sram.nominal_delay_ps sram)

let test_sram_far_cell_negligible () =
  let p = Sram.process sram in
  let dy = Linalg.Vec.create (Sram.dim sram) in
  (* A random unaccessed cell's devices barely matter (leakage only). *)
  let far = 40 in
  for t = 0 to 5 do
    dy.(Process.mismatch_factor_index p ~device:((6 * far) + t) ~which:0) <- 3.
  done;
  let d0 = Sram.nominal_delay_ps sram in
  let d1 = Sram.read_delay_ps sram dy in
  check_bool "relative effect under 1%" true (Float.abs (d1 -. d0) /. d0 < 0.01)

let test_sram_sense_offset_matters () =
  let p = Sram.process sram in
  let dy = Linalg.Vec.create (Sram.dim sram) in
  let sense0 = (6 * 60) + 0 in
  dy.(Process.mismatch_factor_index p ~device:sense0 ~which:0) <- 3.;
  let d = Sram.read_delay_ps sram dy in
  check_bool "sense offset shifts delay" true
    (Float.abs (d -. Sram.nominal_delay_ps sram) > 1.)

let test_sram_important_factors () =
  let f = Sram.important_factors sram in
  check_bool "a few dozen" true (Array.length f > 20 && Array.length f < 200);
  Array.iter
    (fun i -> check_bool "in range" true (i >= 0 && i < Sram.dim sram))
    f;
  (* Strictly increasing means sorted and duplicate-free. *)
  for i = 1 to Array.length f - 1 do
    check_bool "sorted distinct" true (f.(i) > f.(i - 1))
  done

let test_sram_validation () =
  check_raises_invalid "too few cells" (fun () -> ignore (Sram.build ~cells:5 ()))

(* --- Simulator / Testbench --- *)

let test_simulator_run () =
  let sim = Simulator.make ~name:"sq" ~dim:3 ~seconds_per_sample:2. (fun v ->
      Linalg.Vec.nrm2_sq v)
  in
  let g = rng () in
  let d = Simulator.run sim g ~k:50 in
  check_int "size" 50 (Simulator.dataset_size d);
  Array.iteri
    (fun i p ->
      check_float ~eps:1e-12 "consistent" (Linalg.Vec.nrm2_sq p)
        d.Simulator.values.(i))
    d.Simulator.points;
  check_float "cost" 100. (Simulator.simulated_cost sim ~k:50)

let test_simulator_noise () =
  let sim = Simulator.make ~name:"lin" ~dim:1 ~seconds_per_sample:1. (fun v -> v.(0)) in
  let g = rng () in
  let d = Simulator.run ~noise_rel:0.5 sim g ~k:2000 in
  (* With 50% relative noise the values no longer match the evaluator. *)
  let mismatches =
    Array.to_list (Array.mapi (fun i p -> Float.abs (d.Simulator.values.(i) -. p.(0))) d.Simulator.points)
  in
  check_bool "noise present" true (List.exists (fun x -> x > 0.01) mismatches)

let test_simulator_split () =
  let sim = Simulator.make ~name:"id" ~dim:2 ~seconds_per_sample:0. (fun v -> v.(0)) in
  let g = rng () in
  let d = Simulator.run sim g ~k:10 in
  let s = Simulator.split d [| 2; 5; 7 |] in
  check_int "split size" 3 (Simulator.dataset_size s);
  check_float "values follow" d.Simulator.values.(5) s.Simulator.values.(1)

let test_points_matrix () =
  let sim = Simulator.make ~name:"id" ~dim:3 ~seconds_per_sample:0. (fun v -> v.(0)) in
  let g = rng () in
  let d = Simulator.run sim g ~k:4 in
  let m = Simulator.points_matrix d in
  check_int "rows" 4 (Linalg.Mat.rows m);
  check_int "cols" 3 (Linalg.Mat.cols m);
  check_float "entry" d.Simulator.points.(2).(1) (Linalg.Mat.get m 2 1)

let test_testbench_generate () =
  let sim = Simulator.make ~name:"id" ~dim:2 ~seconds_per_sample:3. (fun v -> v.(0)) in
  let g = rng () in
  let e = Testbench.generate sim g ~train:20 ~test:30 in
  check_int "train" 20 (Simulator.dataset_size e.Testbench.train);
  check_int "test" 30 (Simulator.dataset_size e.Testbench.test);
  check_float "training cost" 60. (Testbench.training_cost e)

let test_testbench_independent_sets () =
  (* Train and test come from split streams: no shared points. *)
  let sim = Simulator.make ~name:"id" ~dim:2 ~seconds_per_sample:0. (fun v -> v.(0)) in
  let g = rng () in
  let e = Testbench.generate sim g ~train:10 ~test:10 in
  Array.iter
    (fun pt ->
      Array.iter
        (fun pt' ->
          check_bool "distinct points" true
            (Linalg.Vec.dist2 pt pt' > 1e-12))
        e.Testbench.test.Simulator.points)
    e.Testbench.train.Simulator.points

let suite =
  ( "circuit",
    [
      case "process: dimension" test_process_dim;
      case "process: validation" test_process_validation;
      case "process: factor indices disjoint" test_factor_indices_disjoint;
      case "process: nominal shift zero" test_device_shift_zero_at_nominal;
      case "process: mismatch locality" test_device_shift_locality;
      case "process: globals are common-mode" test_global_shift_shared;
      case "process: Pelgrom area scaling" test_pelgrom_scaling;
      slow_case "process: mismatch sigma statistics" test_mismatch_sigma_statistics;
      case "mosfet: square law" test_square_law;
      case "mosfet: vgs inverse" test_vgs_inverse;
      case "mosfet: gm/gds" test_gm_gds;
      case "mosfet: vth sensitivity" test_vth_shift_reduces_current;
      case "mosfet: scaling" test_scaled;
      case "opamp: dimensions (630)" test_opamp_dims;
      case "opamp: nominal sanity" test_opamp_nominal_sane;
      case "opamp: offset antisymmetry" test_opamp_offset_antisymmetric;
      case "opamp: offset sparsity" test_opamp_offset_sparse;
      case "opamp: bandwidth vs Cc" test_opamp_bandwidth_depends_on_cc;
      case "opamp: power vs bias R" test_opamp_power_depends_on_bias_r;
      case "opamp: distal parasitics negligible" test_opamp_distal_parasitic_negligible;
      case "opamp: eval dim check" test_opamp_eval_dim_check;
      case "opamp: metric names" test_metric_names;
      case "sram: dimensions (21310 at paper size)" test_sram_dims;
      case "sram: nominal delay" test_sram_nominal_positive;
      case "sram: accessed cell matters" test_sram_accessed_cell_matters;
      case "sram: far cell negligible" test_sram_far_cell_negligible;
      case "sram: sense offset matters" test_sram_sense_offset_matters;
      case "sram: important factors" test_sram_important_factors;
      case "sram: validation" test_sram_validation;
      case "simulator: run" test_simulator_run;
      case "simulator: noise injection" test_simulator_noise;
      case "simulator: split" test_simulator_split;
      case "simulator: points matrix" test_points_matrix;
      case "testbench: generate" test_testbench_generate;
      case "testbench: independent sets" test_testbench_independent_sets;
    ] )
