(* The One_se selection rule and solver scale/permutation properties. *)
open Test_util
open Linalg

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_one_se_never_larger () =
  (* One_se picks a lambda no larger than Min_error on the same folds. *)
  List.iter
    (fun seed ->
      let g, f =
        sparse_problem ~noise:0.4 ~k:100 ~m:50 ~support:[| 3; 20; 40 |]
          ~coeffs:[| 2.; -1.; 1.5 |] seed
      in
      let r_min =
        Rsm.Select.omp ~rule:Rsm.Select.Min_error (Randkit.Prng.create 7)
          ~max_lambda:15 g f
      in
      let r_se =
        Rsm.Select.omp ~rule:Rsm.Select.One_se (Randkit.Prng.create 7)
          ~max_lambda:15 g f
      in
      check_bool "one-se at most min-error" true
        (r_se.Rsm.Select.lambda <= r_min.Rsm.Select.lambda))
    [ 301; 302; 303 ]

let test_one_se_still_accurate () =
  let g, f =
    sparse_problem ~noise:0.1 ~k:120 ~m:60 ~support:[| 5; 25 |]
      ~coeffs:[| 2.; 2. |] 304
  in
  let r = Rsm.Select.omp ~rule:Rsm.Select.One_se (rng ()) ~max_lambda:12 g f in
  check_bool "true support kept" true
    (Rsm.Model.coeff r.Rsm.Select.model 5 <> 0.
    && Rsm.Model.coeff r.Rsm.Select.model 25 <> 0.)

let test_rules_agree_on_sharp_minimum () =
  (* Noise-free problem: the CV curve has a sharp minimum at the true
     sparsity and both rules agree. *)
  let g, f =
    sparse_problem ~k:100 ~m:40 ~support:[| 2; 30 |] ~coeffs:[| 3.; -2. |] 305
  in
  let r_min =
    Rsm.Select.omp ~rule:Rsm.Select.Min_error (Randkit.Prng.create 9)
      ~max_lambda:10 g f
  in
  let r_se =
    Rsm.Select.omp ~rule:Rsm.Select.One_se (Randkit.Prng.create 9)
      ~max_lambda:10 g f
  in
  check_int "both find the truth" r_min.Rsm.Select.lambda r_se.Rsm.Select.lambda;
  check_int "which is 2" 2 r_se.Rsm.Select.lambda

(* --- solver invariances --- *)

let test_omp_column_permutation_equivariant () =
  let g, f =
    sparse_problem ~noise:0.2 ~k:60 ~m:30 ~support:[| 4; 17 |]
      ~coeffs:[| 2.; -1. |] 306
  in
  let m = Mat.cols g in
  let perm = Randkit.Prng.permutation (Randkit.Prng.create 11) m in
  let g_perm = Mat.select_cols g perm in
  let base = Rsm.Omp.fit g f ~lambda:4 in
  let permuted = Rsm.Omp.fit g_perm f ~lambda:4 in
  (* Same predictions: the model is the same function of the data. *)
  check_vec ~eps:1e-8 "predictions equal"
    (Rsm.Model.predict_design base g)
    (Rsm.Model.predict_design permuted g_perm);
  (* Support maps through the permutation. *)
  let mapped =
    Array.map (fun j -> perm.(j)) permuted.Rsm.Model.support
  in
  Array.sort compare mapped;
  Alcotest.(check (array int)) "support permuted" base.Rsm.Model.support mapped

let test_lars_column_scaling_invariant_predictions () =
  (* LARS normalizes columns internally: scaling any column leaves the
     fitted predictions unchanged (the coefficient rescales). *)
  let g, f =
    sparse_problem ~noise:0.1 ~k:80 ~m:20 ~support:[| 3; 12 |]
      ~coeffs:[| 2.; -1. |] 307
  in
  let scaled = Mat.init 80 20 (fun i j -> Mat.get g i j *. if j = 3 then 100. else 1.) in
  let base = Rsm.Lars.fit g f ~lambda:4 in
  let s = Rsm.Lars.fit scaled f ~lambda:4 in
  check_vec ~eps:1e-6 "same predictions"
    (Rsm.Model.predict_design base g)
    (Rsm.Model.predict_design s scaled);
  check_float ~eps:1e-8 "coefficient rescaled"
    (Rsm.Model.coeff base 3 /. 100.)
    (Rsm.Model.coeff s 3)

let test_omp_response_scaling_equivariant () =
  let g, f =
    sparse_problem ~noise:0.2 ~k:60 ~m:25 ~support:[| 1; 9 |]
      ~coeffs:[| 1.; 1. |] 308
  in
  let f2 = Array.map (fun x -> 7. *. x) f in
  let base = Rsm.Omp.fit g f ~lambda:3 in
  let scaled = Rsm.Omp.fit g f2 ~lambda:3 in
  check_vec ~eps:1e-8 "coefficients scale with the response"
    (Array.map (fun c -> 7. *. c) base.Rsm.Model.coeffs)
    scaled.Rsm.Model.coeffs

let test_solver_determinism () =
  let g, f =
    sparse_problem ~noise:0.3 ~k:70 ~m:35 ~support:[| 2; 22 |]
      ~coeffs:[| 1.; -1. |] 309
  in
  List.iter
    (fun meth ->
      let a = Rsm.Solver.fit ~lambda:5 g f meth in
      let b = Rsm.Solver.fit ~lambda:5 g f meth in
      check_vec ~eps:0.
        (Rsm.Solver.name meth ^ " deterministic")
        (Rsm.Model.to_dense a) (Rsm.Model.to_dense b))
    [ Rsm.Solver.Star; Rsm.Solver.Lar; Rsm.Solver.Omp ]

let suite =
  ( "select-rules",
    [
      case "one-se: never larger than min-error" test_one_se_never_larger;
      case "one-se: keeps the true support" test_one_se_still_accurate;
      case "rules agree on sharp minima" test_rules_agree_on_sharp_minimum;
      case "omp: column-permutation equivariance" test_omp_column_permutation_equivariant;
      case "lars: column-scaling invariance" test_lars_column_scaling_invariant_predictions;
      case "omp: response-scaling equivariance" test_omp_response_scaling_equivariant;
      case "solver determinism" test_solver_determinism;
    ] )
