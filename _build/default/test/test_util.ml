(* Shared helpers for the test suites. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Linalg.Vec.approx_equal ~tol:eps expected actual) then
    Alcotest.failf "%s: vectors differ:@ %a@ vs@ %a" msg Linalg.Vec.pp expected
      Linalg.Vec.pp actual

let check_mat ?(eps = 1e-9) msg expected actual =
  if not (Linalg.Mat.approx_equal ~tol:eps expected actual) then
    Alcotest.failf "%s: matrices differ" msg

let rng () = Randkit.Prng.create 20260705

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f
