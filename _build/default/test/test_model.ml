open Test_util
open Linalg

let test_make_sorts () =
  let m = Rsm.Model.make ~basis_size:10 ~support:[| 7; 2 |] ~coeffs:[| 1.; 2. |] in
  Alcotest.(check (array int)) "sorted" [| 2; 7 |] m.Rsm.Model.support;
  check_vec "coeffs follow" [| 2.; 1. |] m.Rsm.Model.coeffs

let test_make_drops_zeros () =
  let m =
    Rsm.Model.make ~basis_size:5 ~support:[| 0; 1; 2 |] ~coeffs:[| 1.; 0.; 3. |]
  in
  check_int "nnz" 2 (Rsm.Model.nnz m);
  Alcotest.(check (array int)) "support" [| 0; 2 |] m.Rsm.Model.support

let test_make_validation () =
  check_raises_invalid "duplicate" (fun () ->
      ignore (Rsm.Model.make ~basis_size:5 ~support:[| 1; 1 |] ~coeffs:[| 1.; 2. |]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Rsm.Model.make ~basis_size:5 ~support:[| 5 |] ~coeffs:[| 1. |]));
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Rsm.Model.make ~basis_size:5 ~support:[| 1 |] ~coeffs:[| 1.; 2. |]))

let test_dense_roundtrip () =
  let alpha = [| 0.; 1.5; 0.; -2.; 0. |] in
  let m = Rsm.Model.dense ~basis_size:5 alpha in
  check_int "nnz" 2 (Rsm.Model.nnz m);
  check_vec "roundtrip" alpha (Rsm.Model.to_dense m)

let test_coeff_lookup () =
  let m = Rsm.Model.make ~basis_size:100 ~support:[| 3; 50; 99 |]
      ~coeffs:[| 1.; 2.; 3. |]
  in
  check_float "hit" 2. (Rsm.Model.coeff m 50);
  check_float "miss" 0. (Rsm.Model.coeff m 51);
  check_float "first" 1. (Rsm.Model.coeff m 3);
  check_float "last" 3. (Rsm.Model.coeff m 99);
  check_raises_invalid "oob" (fun () -> ignore (Rsm.Model.coeff m 100))

let test_predict_design () =
  let g = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let m = Rsm.Model.make ~basis_size:3 ~support:[| 0; 2 |] ~coeffs:[| 1.; 2. |] in
  check_vec "sparse predict" [| 7.; 16. |] (Rsm.Model.predict_design m g);
  (* Must equal the dense product. *)
  check_vec "dense agrees" (Mat.mulv g (Rsm.Model.to_dense m))
    (Rsm.Model.predict_design m g)

let test_predict_point () =
  let b = Polybasis.Basis.constant_linear 3 in
  let m = Rsm.Model.make ~basis_size:4 ~support:[| 0; 2 |] ~coeffs:[| 10.; 2. |] in
  (* 10·1 + 2·y1 *)
  check_float ~eps:1e-12 "point" 11. (Rsm.Model.predict_point m b [| 9.; 0.5; 9. |])

let test_error_on () =
  let g = Mat.of_arrays [| [| 1. |]; [| 2. |]; [| 3. |] |] in
  let m = Rsm.Model.make ~basis_size:1 ~support:[| 0 |] ~coeffs:[| 1. |] in
  let f = [| 1.; 2.; 3. |] in
  check_float "exact fit" 0. (Rsm.Model.error_on m g f)

let suite =
  ( "model",
    [
      case "make sorts support" test_make_sorts;
      case "make drops zeros" test_make_drops_zeros;
      case "make validation" test_make_validation;
      case "dense roundtrip" test_dense_roundtrip;
      case "coeff binary search" test_coeff_lookup;
      case "predict via design" test_predict_design;
      case "predict pointwise" test_predict_point;
      case "error_on" test_error_on;
    ] )
