open Linalg
open Test_util

let test_create_init () =
  let v = Vec.create 4 in
  check_vec "zeros" [| 0.; 0.; 0.; 0. |] v;
  let w = Vec.init 3 (fun i -> float_of_int (i * i)) in
  check_vec "init" [| 0.; 1.; 4. |] w;
  check_int "dim" 3 (Vec.dim w)

let test_copy_independent () =
  let v = [| 1.; 2. |] in
  let w = Vec.copy v in
  w.(0) <- 9.;
  check_float "original untouched" 1. v.(0)

let test_dot () =
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "dot empty" 0. (Vec.dot [||] [||]);
  check_raises_invalid "dot mismatch" (fun () -> Vec.dot [| 1. |] [| 1.; 2. |])

let test_nrm2 () =
  check_float "3-4-5" 5. (Vec.nrm2 [| 3.; 4. |]);
  check_float "zero" 0. (Vec.nrm2 [| 0.; 0. |]);
  check_float "empty" 0. (Vec.nrm2 [||]);
  (* Scaling protects against overflow. *)
  let big = Vec.nrm2 [| 1e200; 1e200 |] in
  check_bool "no overflow" true (Float.is_finite big);
  check_float ~eps:1e186 "scaled value" (sqrt 2. *. 1e200) big

let test_nrm2_sq () = check_float "nrm2_sq" 25. (Vec.nrm2_sq [| 3.; 4. |])

let test_asum_norm0 () =
  check_float "asum" 6. (Vec.asum [| 1.; -2.; 3. |]);
  check_int "norm0" 2 (Vec.norm0 [| 0.; -2.; 3. |]);
  check_int "norm0 tol" 1 (Vec.norm0 ~tol:2.5 [| 0.; -2.; 3. |])

let test_amax () =
  check_int "amax" 1 (Vec.amax [| 1.; -5.; 3. |]);
  check_int "amax first" 0 (Vec.amax [| 2.; -2. |]);
  check_raises_invalid "amax empty" (fun () -> Vec.amax [||])

let test_scal_axpy () =
  let v = [| 1.; 2. |] in
  Vec.scal 3. v;
  check_vec "scal" [| 3.; 6. |] v;
  let y = [| 1.; 1. |] in
  Vec.axpy 2. [| 1.; 2. |] y;
  check_vec "axpy" [| 3.; 5. |] y

let test_add_sub_smul_neg () =
  check_vec "add" [| 4.; 6. |] (Vec.add [| 1.; 2. |] [| 3.; 4. |]);
  check_vec "sub" [| -2.; -2. |] (Vec.sub [| 1.; 2. |] [| 3.; 4. |]);
  check_vec "smul" [| 2.; 4. |] (Vec.smul 2. [| 1.; 2. |]);
  check_vec "neg" [| -1.; 2. |] (Vec.neg [| 1.; -2. |])

let test_sum_kahan () =
  (* Compensated summation keeps tiny terms that naive addition drops. *)
  let n = 10000 in
  let v = Array.make (n + 1) 1e-12 in
  v.(0) <- 1e4;
  let s = Vec.sum v in
  check_float ~eps:1e-16 "kahan" (1e4 +. (float_of_int n *. 1e-12)) s

let test_mean () =
  check_float "mean" 2. (Vec.mean [| 1.; 2.; 3. |]);
  check_raises_invalid "mean empty" (fun () -> Vec.mean [||])

let test_dist2 () =
  check_float "dist" 5. (Vec.dist2 [| 0.; 0. |] [| 3.; 4. |])

let test_fill () =
  let v = Vec.create 3 in
  Vec.fill v 7.;
  check_vec "fill" [| 7.; 7.; 7. |] v

let test_of_to_list () =
  check_vec "of_list" [| 1.; 2. |] (Vec.of_list [ 1.; 2. ]);
  Alcotest.(check (list (float 0.))) "to_list" [ 1.; 2. ] (Vec.to_list [| 1.; 2. |])

let prop_dot_commutative =
  qtest "dot commutative"
    QCheck.(pair (array_of_size Gen.(1 -- 20) (float_bound_exclusive 100.))
              (array_of_size Gen.(1 -- 20) (float_bound_exclusive 100.)))
    (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_triangle_inequality =
  qtest "norm triangle inequality"
    QCheck.(array_of_size Gen.(1 -- 20) (float_range (-100.) 100.))
    (fun a ->
      let b = Array.map (fun x -> x *. 0.7 +. 1.) a in
      Vec.nrm2 (Vec.add a b) <= Vec.nrm2 a +. Vec.nrm2 b +. 1e-9)

let prop_cauchy_schwarz =
  qtest "Cauchy-Schwarz"
    QCheck.(array_of_size Gen.(1 -- 20) (float_range (-10.) 10.))
    (fun a ->
      let b = Array.mapi (fun i x -> x +. float_of_int i) a in
      Float.abs (Vec.dot a b) <= (Vec.nrm2 a *. Vec.nrm2 b) +. 1e-9)

let suite =
  ( "vec",
    [
      case "create/init" test_create_init;
      case "copy independence" test_copy_independent;
      case "dot" test_dot;
      case "nrm2" test_nrm2;
      case "nrm2_sq" test_nrm2_sq;
      case "asum/norm0" test_asum_norm0;
      case "amax" test_amax;
      case "scal/axpy" test_scal_axpy;
      case "add/sub/smul/neg" test_add_sub_smul_neg;
      case "kahan sum" test_sum_kahan;
      case "mean" test_mean;
      case "dist2" test_dist2;
      case "fill" test_fill;
      case "of/to list" test_of_to_list;
      prop_dot_commutative;
      prop_triangle_inequality;
      prop_cauchy_schwarz;
    ] )
