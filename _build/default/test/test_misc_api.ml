(* Coverage of the remaining public API surface: pretty-printers,
   rank-revealing diagnostics, PRNG stream independence, PCA accessors,
   sensitivity on fitted circuit models, serialization fuzzing. *)
open Test_util
open Linalg

let test_pp_smoke_no_str () =
  (* Without depending on Str: just smoke the matrix and model printers. *)
  let m = Mat.identity 10 in
  let s = Format.asprintf "%a" Mat.pp m in
  check_bool "mat pp mentions shape" true (String.length s > 20);
  let model = Rsm.Model.make ~basis_size:50 ~support:[| 1; 2 |] ~coeffs:[| 1.; 2. |] in
  let s = Format.asprintf "%a" Rsm.Model.pp model in
  check_bool "model pp" true (String.length s > 10);
  let t = Format.asprintf "%a" Polybasis.Term.pp (Polybasis.Term.cross 1 2) in
  Alcotest.(check string) "term pp" "y1*y2" t;
  let b = Format.asprintf "%a" Polybasis.Basis.pp (Polybasis.Basis.quadratic 3) in
  check_bool "basis pp" true (String.length b > 20)

let test_qr_rank_revealing () =
  (* Rank-deficient matrix: trailing |R| diagonal entries collapse. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let f = Qr.factor a in
  let d = Qr.rank_revealing_diag f in
  check_bool "leading pivot healthy" true (d.(0) > 1.);
  check_bool "trailing pivot collapsed" true (d.(1) < 1e-10)

let test_prng_split_decorrelated () =
  (* Parent and child streams should be statistically independent:
     correlation of their outputs near zero. *)
  let parent = Randkit.Prng.create 777 in
  let child = Randkit.Prng.split parent in
  let n = 20000 in
  let a = Array.init n (fun _ -> Randkit.Prng.float parent) in
  let b = Array.init n (fun _ -> Randkit.Prng.float child) in
  check_bool "decorrelated" true
    (Float.abs (Stat.Descriptive.correlation a b) < 0.03)

let test_pca_eigenvalues_accessor () =
  let sigma = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 1. |] |] in
  let p = Stat.Pca.of_covariance sigma in
  check_vec ~eps:1e-10 "eigenvalues sorted" [| 4.; 1. |] (Stat.Pca.eigenvalues p)

let test_sensitivity_on_fitted_quadratic () =
  (* Fit a quadratic model of a known function and check the shares. *)
  let basis = Polybasis.Basis.quadratic 4 in
  let truth dy = (3. *. dy.(0)) +. (dy.(1) *. dy.(2)) in
  let g = rng () in
  let pts = Array.init 300 (fun _ -> Randkit.Gaussian.vector g 4) in
  let design = Polybasis.Design.matrix_rows basis pts in
  let f = Array.map truth pts in
  let model = Rsm.Omp.fit design f ~lambda:4 in
  let shares = Rsm.Sensitivity.factor_shares model basis in
  (* Var = 9 (y0) + 1 (y1 y2): shares 0.9, 0.1, 0.1, 0. *)
  check_float ~eps:0.02 "y0 share" 0.9 shares.(0);
  check_float ~eps:0.02 "y1 share" 0.1 shares.(1);
  check_float ~eps:0.02 "y2 share" 0.1 shares.(2);
  check_float ~eps:0.01 "y3 untouched" 0. shares.(3);
  check_float ~eps:0.02 "interaction share" 0.1
    (Rsm.Sensitivity.interaction_share model basis)

let serialize_fuzz =
  qtest ~count:50 "serialize roundtrips random models"
    QCheck.(pair (int_range 1 200) (int_range 0 12))
    (fun (basis_size, nnz0) ->
      let nnz = min nnz0 basis_size in
      let g = Randkit.Prng.create (basis_size * 31 + nnz) in
      let support =
        Randkit.Sampling.subsample g (Array.init basis_size Fun.id) nnz
      in
      Array.sort compare support;
      let coeffs =
        Array.init nnz (fun _ -> (Randkit.Prng.float g -. 0.5) *. 1e6)
      in
      let m = Rsm.Model.make ~basis_size ~support ~coeffs in
      match Rsm.Serialize.of_string (Rsm.Serialize.to_string m) with
      | Ok m' ->
          m'.Rsm.Model.support = m.Rsm.Model.support
          && Vec.approx_equal ~tol:0. m'.Rsm.Model.coeffs m.Rsm.Model.coeffs
      | Error _ -> false)

let omp_path_support_growth =
  qtest ~count:25 "OMP path support grows by one per step"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Randkit.Prng.create seed in
      let design = Randkit.Gaussian.matrix g 40 25 in
      let f =
        Array.init 40 (fun i ->
            Mat.get design i 3 +. (0.5 *. Randkit.Gaussian.sample g))
      in
      let steps = Rsm.Omp.path design f ~max_lambda:6 in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          if Rsm.Model.nnz s.Rsm.Omp.model <> i + 1 then ok := false)
        steps;
      !ok)

let histogram_counts_conserved =
  qtest ~count:40 "histogram counts are conserved"
    QCheck.(array_of_size Gen.(1 -- 60) (float_range (-50.) 50.))
    (fun xs ->
      let h = Stat.Histogram.create ~bins:7 ~range:(-25., 25.) xs in
      Array.fold_left ( + ) 0 h.Stat.Histogram.counts
      + h.Stat.Histogram.n_underflow + h.Stat.Histogram.n_overflow
      = Array.length xs)

let suite =
  ( "misc-api",
    [
      case "pretty printers" test_pp_smoke_no_str;
      case "qr: rank revealing diagonal" test_qr_rank_revealing;
      slow_case "prng: split decorrelated" test_prng_split_decorrelated;
      case "pca: eigenvalues accessor" test_pca_eigenvalues_accessor;
      case "sensitivity: fitted quadratic" test_sensitivity_on_fitted_quadratic;
      serialize_fuzz;
      omp_path_support_growth;
      histogram_counts_conserved;
    ] )
