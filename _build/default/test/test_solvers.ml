(* OMP, STAR, LARS, LS, ridge and coordinate-descent lasso. *)
open Test_util
open Linalg

(* A reproducible sparse problem: K samples, M columns, P-sparse truth. *)
let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let std_support = [| 4; 11; 29; 47 |]
let std_coeffs = [| 3.; -2.; 1.5; 0.9 |]

let std_problem ?noise seed =
  sparse_problem ?noise ~k:60 ~m:80 ~support:std_support ~coeffs:std_coeffs seed

(* --- OMP --- *)

let test_omp_exact_recovery () =
  let g, f = std_problem 1 in
  let model = Rsm.Omp.fit g f ~lambda:4 in
  Alcotest.(check (array int)) "support found" std_support model.Rsm.Model.support;
  check_vec ~eps:1e-8 "coefficients exact" std_coeffs model.Rsm.Model.coeffs

let test_omp_residual_orthogonal () =
  (* Fig. 1's geometry: after each step the residual is orthogonal to
     every selected basis vector. *)
  let g, f = std_problem ~noise:0.2 2 in
  let steps = Rsm.Omp.path g f ~max_lambda:6 in
  Array.iter
    (fun s ->
      let res =
        Vec.sub f (Rsm.Model.predict_design s.Rsm.Omp.model g)
      in
      Array.iter
        (fun j ->
          check_bool "orthogonal" true (Float.abs (Mat.col_dot g j res) < 1e-7))
        s.Rsm.Omp.model.Rsm.Model.support)
    steps

let test_omp_residual_decreasing () =
  let g, f = std_problem ~noise:0.5 3 in
  let steps = Rsm.Omp.path g f ~max_lambda:10 in
  for i = 1 to Array.length steps - 1 do
    check_bool "monotone" true
      (steps.(i).Rsm.Omp.residual_norm
      <= steps.(i - 1).Rsm.Omp.residual_norm +. 1e-9)
  done

let test_omp_two_column_example () =
  (* The worked 2-D example of Fig. 1: F = a1·G1 + a2·G2 recovered in
     exactly two iterations. *)
  let g = Mat.of_arrays [| [| 1.; 0.2 |]; [| 0.; 1. |]; [| 0.5; -0.3 |] |] in
  let f = Mat.mulv g [| 2.; -1. |] in
  let steps = Rsm.Omp.path g f ~max_lambda:2 in
  check_int "two steps" 2 (Array.length steps);
  let final = steps.(1).Rsm.Omp.model in
  check_vec ~eps:1e-10 "both coefficients" [| 2.; -1. |] final.Rsm.Model.coeffs

let test_omp_refit_changes_coefficients () =
  (* The coefficient of the first-selected vector must be re-computed
     when the second enters (paper: "α_s1 calculated by (16) may be
     different from that calculated by (20)"). Use correlated columns. *)
  let g =
    Mat.of_arrays
      [| [| 1.; 0.9 |]; [| 1.; 0.8 |]; [| 1.; 1.1 |]; [| -1.; 0.1 |] |]
  in
  let f = Mat.mulv g [| 1.; 1. |] in
  let steps = Rsm.Omp.path g f ~max_lambda:2 in
  let c1_first = steps.(0).Rsm.Omp.model.Rsm.Model.coeffs.(0) in
  let m2 = steps.(1).Rsm.Omp.model in
  let first_sel = steps.(0).Rsm.Omp.index in
  let c1_after = Rsm.Model.coeff m2 first_sel in
  check_bool "re-fit moved the first coefficient" true
    (Float.abs (c1_first -. c1_after) > 1e-6)

let test_omp_early_stop_on_exact_fit () =
  let g, f = std_problem 4 in
  (* Asking for far more iterations than needed stops at ~P. *)
  let steps = Rsm.Omp.path g f ~max_lambda:40 in
  check_bool "stopped early" true (Array.length steps <= 8)

let test_omp_lambda_validation () =
  let g, f = std_problem 5 in
  check_raises_invalid "lambda 0" (fun () -> ignore (Rsm.Omp.path g f ~max_lambda:0));
  check_raises_invalid "lambda > K" (fun () ->
      ignore (Rsm.Omp.path g f ~max_lambda:61))

let test_omp_dependent_columns () =
  (* Duplicate columns: OMP must not crash, and never selects both. *)
  let g0, f = std_problem 6 in
  let g = Mat.init 60 81 (fun i j -> if j = 80 then Mat.get g0 i 4 else Mat.get g0 i j) in
  let steps = Rsm.Omp.path g f ~max_lambda:10 in
  Array.iter
    (fun s ->
      let sup = s.Rsm.Omp.model.Rsm.Model.support in
      check_bool "not both duplicates" false
        (Array.mem 4 sup && Array.mem 80 sup))
    steps

(* --- STAR --- *)

let test_star_selects_true_support_orthogonal () =
  (* With near-orthogonal (large K) columns STAR finds the support. *)
  let g, f =
    sparse_problem ~k:400 ~m:50 ~support:[| 3; 17 |] ~coeffs:[| 2.; -1. |] 7
  in
  let model = Rsm.Star.fit g f ~lambda:2 in
  Alcotest.(check (array int)) "support" [| 3; 17 |] model.Rsm.Model.support

let test_star_no_refit () =
  (* STAR's first-step coefficient stays frozen: fit with λ=1 and λ=2
     give the same coefficient for the first selection. *)
  let g, f = std_problem 8 in
  let s = Rsm.Star.path g f ~max_lambda:2 in
  let first = s.(0).Rsm.Star.index in
  check_float ~eps:1e-12 "frozen coefficient"
    (Rsm.Model.coeff s.(0).Rsm.Star.model first)
    (Rsm.Model.coeff s.(1).Rsm.Star.model first)

let test_star_worse_than_omp () =
  (* The paper's headline comparison: at equal λ, OMP's re-fit beats
     STAR's inner-product coefficients on correlated sampled columns. *)
  let g, f = std_problem ~noise:0.1 9 in
  let omp = Rsm.Omp.fit g f ~lambda:4 in
  let star = Rsm.Star.fit g f ~lambda:4 in
  let e_omp = Rsm.Model.error_on omp g f in
  let e_star = Rsm.Model.error_on star g f in
  check_bool "OMP at least as accurate" true (e_omp <= e_star +. 1e-12)

let test_star_residual_decreasing () =
  let g, f = std_problem ~noise:0.3 10 in
  let steps = Rsm.Star.path g f ~max_lambda:10 in
  for i = 1 to Array.length steps - 1 do
    check_bool "monotone" true
      (steps.(i).Rsm.Star.residual_norm
      <= steps.(i - 1).Rsm.Star.residual_norm +. 1e-9)
  done

(* --- LARS --- *)

let test_lars_recovers_support () =
  let g, f = std_problem 11 in
  let model = Rsm.Lars.fit g f ~lambda:4 in
  Alcotest.(check (array int)) "support" std_support model.Rsm.Model.support

let test_lars_correlations_decrease () =
  let g, f = std_problem ~noise:0.2 12 in
  let steps = Rsm.Lars.path g f ~max_steps:8 in
  for i = 1 to Array.length steps - 1 do
    check_bool "max corr decreasing" true
      (steps.(i).Rsm.Lars.max_corr <= steps.(i - 1).Rsm.Lars.max_corr +. 1e-9)
  done

let test_lars_equiangular_property () =
  (* After each step, all active columns share (within tolerance) the
     same absolute correlation with the residual — the defining
     property of least angle regression. *)
  let g, f = std_problem ~noise:0.2 13 in
  let norms = Polybasis.Design.column_norms g in
  let steps = Rsm.Lars.path g f ~max_steps:6 in
  Array.iter
    (fun s ->
      let res = Vec.sub f (Rsm.Model.predict_design s.Rsm.Lars.model g) in
      let cors =
        Array.map
          (fun j -> Float.abs (Mat.col_dot g j res) /. norms.(j))
          s.Rsm.Lars.model.Rsm.Model.support
      in
      if Array.length cors > 1 then begin
        let lo, hi = Stat.Descriptive.min_max cors in
        check_bool "equal correlations" true (hi -. lo < 1e-6 *. Float.max hi 1.)
      end)
    steps

let test_lars_shrinks_vs_ls () =
  (* LARS coefficients at an intermediate step are shrunk relative to
     the LS fit on the same support. *)
  let g, f = std_problem ~noise:0.1 14 in
  let steps = Rsm.Lars.path g f ~max_steps:3 in
  let s = steps.(2) in
  let sup = s.Rsm.Lars.model.Rsm.Model.support in
  let ls_coeffs = Lstsq.solve_subset g sup f in
  let lars_l1 = Vec.asum s.Rsm.Lars.model.Rsm.Model.coeffs in
  let ls_l1 = Vec.asum ls_coeffs in
  check_bool "L1 shrinkage" true (lars_l1 <= ls_l1 +. 1e-9)

let test_lasso_mode_signs_consistent () =
  (* Lasso solutions never have a coefficient whose sign opposes its
     correlation at entry; a weak but useful invariant: the KKT sign
     condition on the active set. *)
  let g, f = std_problem ~noise:0.3 15 in
  let steps = Rsm.Lars.path ~mode:Rsm.Lars.Lasso g f ~max_steps:10 in
  let final = steps.(Array.length steps - 1).Rsm.Lars.model in
  let res = Vec.sub f (Rsm.Model.predict_design final g) in
  Array.iteri
    (fun p j ->
      let c = Mat.col_dot g j res in
      let coef = final.Rsm.Model.coeffs.(p) in
      (* Correlation and coefficient must agree in sign on the active set. *)
      check_bool "KKT sign" true (c *. coef >= -1e-6))
    final.Rsm.Model.support

let test_lasso_path_matches_cd () =
  (* The lasso-LARS path and coordinate descent solve the same convex
     program: compare at a matched penalty. From a lasso-LARS step with
     max_corr C (on unit-normalized columns), the equivalent CD penalty
     on raw columns is reg = C·norm (uniform norms here ≈ √K). *)
  let g, f = std_problem ~noise:0.2 16 in
  let steps = Rsm.Lars.path ~mode:Rsm.Lars.Lasso g f ~max_steps:6 in
  let s = steps.(4) in
  let norms = Polybasis.Design.column_norms g in
  (* Use per-column norms: CD works on raw columns, so its KKT threshold
     for column j is reg; LARS's is C·norms(j). Equal norms hold only
     approximately, so compare predictions rather than coefficients. *)
  let c = s.Rsm.Lars.max_corr in
  let reg = c *. Stat.Descriptive.mean norms in
  let cd = Rsm.Lasso_cd.fit g f ~reg in
  let pred_lars = Rsm.Model.predict_design s.Rsm.Lars.model g in
  let pred_cd = Rsm.Model.predict_design cd g in
  let denom = Float.max (Vec.nrm2 pred_lars) 1e-9 in
  check_bool "solutions close" true
    (Vec.dist2 pred_lars pred_cd /. denom < 0.15)

(* --- LS --- *)

let tall_problem ?noise seed =
  sparse_problem ?noise ~k:120 ~m:40 ~support:[| 4; 11; 29 |]
    ~coeffs:[| 3.; -2.; 1.5 |] seed

let test_ls_exact_on_overdetermined () =
  let g, f = tall_problem 17 in
  let model = Rsm.Ls.fit g f in
  check_float ~eps:1e-8 "zero training error" 0. (Rsm.Model.error_on model g f)

let test_ls_rejects_underdetermined () =
  let g = Mat.create 5 10 in
  check_raises_invalid "K < M" (fun () -> ignore (Rsm.Ls.fit g (Array.make 5 0.)))

let test_ls_methods_agree () =
  let g, f = tall_problem ~noise:0.5 18 in
  let m1 = Rsm.Ls.fit ~method_:Lstsq.Qr g f in
  let m2 = Rsm.Ls.fit ~method_:Lstsq.Normal g f in
  check_vec ~eps:1e-6 "QR vs normal" (Rsm.Model.to_dense m1) (Rsm.Model.to_dense m2)

(* --- Ridge --- *)

let test_ridge_shrinks_towards_zero () =
  let g, f = std_problem ~noise:0.2 19 in
  let weak = Rsm.Ridge.fit g f ~reg:1e-6 in
  let strong = Rsm.Ridge.fit g f ~reg:1e6 in
  check_bool "heavy penalty shrinks" true
    (Vec.nrm2 (Rsm.Model.to_dense strong) < 0.01 *. Vec.nrm2 (Rsm.Model.to_dense weak))

let test_ridge_works_underdetermined () =
  (* K < M: LS would be ill-posed, ridge is fine. *)
  let gen = Randkit.Prng.create 20 in
  let g = Randkit.Gaussian.matrix gen 10 30 in
  let f = Array.init 10 (fun i -> Mat.get g i 0) in
  let m = Rsm.Ridge.fit g f ~reg:1. in
  check_int "dense model" 30 m.Rsm.Model.basis_size;
  check_bool "finite" true (Float.is_finite (Vec.nrm2 (Rsm.Model.to_dense m)))

let test_ridge_validation () =
  let g, f = std_problem 21 in
  check_raises_invalid "reg 0" (fun () -> ignore (Rsm.Ridge.fit g f ~reg:0.))

let test_ridge_cv () =
  let g, f = std_problem ~noise:0.3 22 in
  let rngv = rng () in
  let model, reg = Rsm.Ridge.fit_cv rngv ~folds:4 ~regs:[| 0.1; 1.; 10. |] g f in
  check_bool "chose from grid" true (List.mem reg [ 0.1; 1.; 10. ]);
  check_bool "sane error" true (Rsm.Model.error_on model g f < 0.8)

(* --- Lasso CD --- *)

let test_lasso_cd_zero_at_max_reg () =
  let g, f = std_problem 23 in
  let reg = Rsm.Lasso_cd.max_reg g f in
  let m = Rsm.Lasso_cd.fit g f ~reg in
  check_int "all zero" 0 (Rsm.Model.nnz m)

let test_lasso_cd_dense_at_zero_reg () =
  let g, f = std_problem 24 in
  let m = Rsm.Lasso_cd.fit g f ~reg:1e-10 in
  (* Effectively unpenalized: training error ~ 0 like LS. *)
  check_bool "near-exact" true (Rsm.Model.error_on m g f < 1e-3)

let test_lasso_cd_kkt () =
  (* KKT conditions of the lasso: |G_jᵀr| ≤ reg for inactive j,
     G_jᵀr = reg·sign(α_j) for active j. *)
  let g, f = std_problem ~noise:0.2 25 in
  let reg = 0.3 *. Rsm.Lasso_cd.max_reg g f in
  let m = Rsm.Lasso_cd.fit ~tol:1e-12 g f ~reg in
  let res = Vec.sub f (Rsm.Model.predict_design m g) in
  let alpha = Rsm.Model.to_dense m in
  for j = 0 to Mat.cols g - 1 do
    let c = Mat.col_dot g j res in
    if alpha.(j) = 0. then
      check_bool "inactive KKT" true (Float.abs c <= reg +. 1e-6)
    else
      check_float ~eps:1e-5 "active KKT"
        (reg *. Float.of_int (compare alpha.(j) 0.))
        c
  done

let test_lasso_cd_path_monotone_sparsity () =
  let g, f = std_problem ~noise:0.2 26 in
  let top = Rsm.Lasso_cd.max_reg g f in
  let regs = Array.init 6 (fun i -> top *. (0.5 ** float_of_int i)) in
  let models = Rsm.Lasso_cd.path g f ~regs in
  for i = 1 to 5 do
    check_bool "sparsity non-increasing penalty -> non-decreasing nnz" true
      (Rsm.Model.nnz models.(i) >= Rsm.Model.nnz models.(i - 1))
  done

let prop_omp_recovers_random_sparse =
  qtest ~count:20 "OMP exact recovery on random 3-sparse problems"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let support = [| 2; 19; 33 |] and coeffs = [| 1.; -2.; 0.5 |] in
      let g, f = sparse_problem ~k:50 ~m:40 ~support ~coeffs seed in
      let m = Rsm.Omp.fit g f ~lambda:3 in
      m.Rsm.Model.support = support
      && Vec.approx_equal ~tol:1e-6 coeffs m.Rsm.Model.coeffs)

let prop_lars_nnz_bounded =
  qtest ~count:20 "LARS fit respects the sparsity budget"
    QCheck.(pair (int_range 1 6) (int_range 0 10000))
    (fun (lambda, seed) ->
      let g, f = std_problem ~noise:0.3 seed in
      let m = Rsm.Lars.fit g f ~lambda in
      Rsm.Model.nnz m <= lambda)

let prop_omp_nnz_equals_lambda =
  qtest ~count:20 "OMP fit uses exactly lambda bases on noisy data"
    QCheck.(pair (int_range 1 8) (int_range 0 10000))
    (fun (lambda, seed) ->
      let g, f = std_problem ~noise:0.5 seed in
      let m = Rsm.Omp.fit g f ~lambda in
      Rsm.Model.nnz m = lambda)

let suite =
  ( "solvers",
    [
      case "omp: exact recovery" test_omp_exact_recovery;
      case "omp: residual orthogonality (Fig. 1)" test_omp_residual_orthogonal;
      case "omp: residual decreasing" test_omp_residual_decreasing;
      case "omp: 2-column worked example" test_omp_two_column_example;
      case "omp: re-fit changes earlier coefficients" test_omp_refit_changes_coefficients;
      case "omp: early stop on exact fit" test_omp_early_stop_on_exact_fit;
      case "omp: lambda validation" test_omp_lambda_validation;
      case "omp: duplicate columns" test_omp_dependent_columns;
      case "star: support on orthogonal design" test_star_selects_true_support_orthogonal;
      case "star: coefficients frozen" test_star_no_refit;
      case "star: OMP at least as accurate" test_star_worse_than_omp;
      case "star: residual decreasing" test_star_residual_decreasing;
      case "lars: support recovery" test_lars_recovers_support;
      case "lars: correlations decrease" test_lars_correlations_decrease;
      case "lars: equiangular property" test_lars_equiangular_property;
      case "lars: shrinkage vs LS" test_lars_shrinks_vs_ls;
      case "lasso-lars: KKT signs" test_lasso_mode_signs_consistent;
      case "lasso-lars vs coordinate descent" test_lasso_path_matches_cd;
      case "ls: exact on overdetermined" test_ls_exact_on_overdetermined;
      case "ls: rejects underdetermined" test_ls_rejects_underdetermined;
      case "ls: methods agree" test_ls_methods_agree;
      case "ridge: shrinkage" test_ridge_shrinks_towards_zero;
      case "ridge: underdetermined ok" test_ridge_works_underdetermined;
      case "ridge: validation" test_ridge_validation;
      case "ridge: cross-validated" test_ridge_cv;
      case "lasso-cd: zero at max penalty" test_lasso_cd_zero_at_max_reg;
      case "lasso-cd: dense at zero penalty" test_lasso_cd_dense_at_zero_reg;
      case "lasso-cd: KKT conditions" test_lasso_cd_kkt;
      case "lasso-cd: path sparsity monotone" test_lasso_cd_path_monotone_sparsity;
      prop_omp_recovers_random_sparse;
      prop_lars_nnz_bounded;
      prop_omp_nnz_equals_lambda;
    ] )
