(* End-to-end integration: circuit simulator → Hermite design matrix →
   sparse solvers → testing-set validation, i.e. the paper's full flow
   at reduced scale. *)
open Test_util

let build_experiment ?(train = 250) ?(test = 800) ~metric () =
  let amp = Circuit.Opamp.build ~n_parasitics:30 () in
  let sim = Circuit.Opamp.simulator amp metric in
  let g = rng () in
  let e = Circuit.Testbench.generate sim g ~train ~test in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  let g_tr = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points in
  let g_te = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.test.Circuit.Simulator.points in
  ( g_tr,
    e.Circuit.Testbench.train.Circuit.Simulator.values,
    g_te,
    e.Circuit.Testbench.test.Circuit.Simulator.values,
    amp )

let test_offset_model_is_sparse_and_accurate () =
  let g_tr, f_tr, g_te, f_te, _ = build_experiment ~metric:Circuit.Opamp.Offset () in
  let r = Rsm.Select.omp (rng ()) ~max_lambda:40 g_tr f_tr in
  let err = Rsm.Model.error_on r.Rsm.Select.model g_te f_te in
  check_bool "testing error under 10%" true (err < 0.10);
  check_bool "sparse" true (Rsm.Model.nnz r.Rsm.Select.model < 40)

let test_offset_selects_input_pair () =
  (* The selected factors must include the input-pair V_TH mismatch —
     the physically dominant offset source (paper Section V-A). *)
  let g_tr, f_tr, _, _, amp = build_experiment ~metric:Circuit.Opamp.Offset () in
  let p = Circuit.Opamp.process amp in
  let model = Rsm.Omp.fit g_tr f_tr ~lambda:10 in
  let vth_m1 =
    Circuit.Process.mismatch_factor_index p ~device:Circuit.Opamp.Device.m1 ~which:0
  in
  let vth_m2 =
    Circuit.Process.mismatch_factor_index p ~device:Circuit.Opamp.Device.m2 ~which:0
  in
  (* Basis index = 1 + factor index (constant first). *)
  check_bool "m1 vth selected" true (Rsm.Model.coeff model (vth_m1 + 1) <> 0.);
  check_bool "m2 vth selected" true (Rsm.Model.coeff model (vth_m2 + 1) <> 0.);
  (* And with opposite signs (differential pair). *)
  check_bool "opposite signs" true
    (Rsm.Model.coeff model (vth_m1 + 1) *. Rsm.Model.coeff model (vth_m2 + 1) < 0.)

let test_sparse_methods_beat_ls_sample_for_sample () =
  (* The paper's core claim: at K < M, the sparse methods deliver a
     usable model while LS cannot even run; at K slightly above M, the
     sparse methods still beat LS on the testing set. *)
  let g_tr, f_tr, g_te, f_te, _ = build_experiment ~train:180 ~metric:Circuit.Opamp.Offset () in
  (* K = 180 < M = 111? no — reduced opamp has dim 110, so M = 111 and
     K = 180 is slightly over-determined: LS runs but overfits noise-
     free? Compare testing errors. *)
  let ls = Rsm.Ls.fit g_tr f_tr in
  let omp = Rsm.Omp.fit g_tr f_tr ~lambda:20 in
  let e_ls = Rsm.Model.error_on ls g_te f_te in
  let e_omp = Rsm.Model.error_on omp g_te f_te in
  check_bool "OMP no worse than 1.2x LS" true (e_omp < Float.max (1.2 *. e_ls) 0.1)

let test_quadratic_improves_on_linear () =
  (* Power is mildly nonlinear through the bias loop: a quadratic model
     over the top linear factors must beat the pure linear model. *)
  let amp = Circuit.Opamp.build ~n_parasitics:30 () in
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Power in
  let g = rng () in
  let e = Circuit.Testbench.generate sim g ~train:500 ~test:1500 in
  let n = Circuit.Opamp.dim amp in
  let lin_basis = Polybasis.Basis.constant_linear n in
  let tr_pts = e.Circuit.Testbench.train.Circuit.Simulator.points in
  let te_pts = e.Circuit.Testbench.test.Circuit.Simulator.points in
  let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
  let f_te = e.Circuit.Testbench.test.Circuit.Simulator.values in
  let g_tr = Polybasis.Design.matrix_rows lin_basis tr_pts in
  let g_te = Polybasis.Design.matrix_rows lin_basis te_pts in
  let lin = Rsm.Omp.fit g_tr f_tr ~lambda:40 in
  let e_lin = Rsm.Model.error_on lin g_te f_te in
  (* Rank factors by linear coefficient magnitude, quadratic on top 12
     (the paper's Section V-A.2 flow with 200 → here 12). *)
  let dense = Rsm.Model.to_dense lin in
  let scored = Array.init n (fun j -> (Float.abs dense.(j + 1), j)) in
  Array.sort (fun (a, _) (b, _) -> compare b a) scored;
  let top = Array.map snd (Array.sub scored 0 12) in
  let quad_basis = Polybasis.Basis.quadratic_subset ~dim:n top in
  let gq_tr = Polybasis.Design.matrix_rows quad_basis tr_pts in
  let gq_te = Polybasis.Design.matrix_rows quad_basis te_pts in
  let quad = Rsm.Omp.fit gq_tr f_tr ~lambda:60 in
  let e_quad = Rsm.Model.error_on quad gq_te f_te in
  check_bool
    (Printf.sprintf "quadratic (%.4f) <= linear (%.4f)" e_quad e_lin)
    true (e_quad <= e_lin +. 0.005)

let test_sram_flow_small () =
  (* SRAM read delay at reduced scale: underdetermined linear modeling,
     K = 150 samples, M = 18·40+70+1 ≈ 791 coefficients. *)
  let sram = Circuit.Sram.build ~cells:40 () in
  let sim = Circuit.Sram.simulator sram in
  let g = rng () in
  let e = Circuit.Testbench.generate sim g ~train:150 ~test:500 in
  let basis = Polybasis.Basis.constant_linear (Circuit.Sram.dim sram) in
  let g_tr = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points in
  let g_te = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.test.Circuit.Simulator.points in
  let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
  let f_te = e.Circuit.Testbench.test.Circuit.Simulator.values in
  check_bool "underdetermined" true (Linalg.Mat.rows g_tr < Linalg.Mat.cols g_tr);
  let model = Rsm.Omp.fit g_tr f_tr ~lambda:50 in
  let err = Rsm.Model.error_on model g_te f_te in
  check_bool (Printf.sprintf "testing error %.4f under 30%%" err) true (err < 0.30);
  (* Fig. 6's sparsity: the selected factors are a tiny fraction of M. *)
  check_bool "sparse vs dictionary" true
    (float_of_int (Rsm.Model.nnz model) < 0.1 *. float_of_int (Linalg.Mat.cols g_tr))

let test_sram_selected_factors_physical () =
  (* The factors OMP picks should largely be the physically important
     ones (accessed cell, sense amp, drivers, globals). *)
  let sram = Circuit.Sram.build ~cells:40 () in
  let sim = Circuit.Sram.simulator sram in
  let g = rng () in
  let e = Circuit.Testbench.generate sim g ~train:200 ~test:100 in
  let basis = Polybasis.Basis.constant_linear (Circuit.Sram.dim sram) in
  let g_tr = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points in
  let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
  let model = Rsm.Omp.fit g_tr f_tr ~lambda:20 in
  let important = Circuit.Sram.important_factors sram in
  let is_important j = Array.mem j important in
  let hits = ref 0 and total = ref 0 in
  Array.iter
    (fun bidx ->
      if bidx > 0 then begin
        incr total;
        if is_important (bidx - 1) then incr hits
      end)
    model.Rsm.Model.support;
  (* Replica cells are important-but-unlisted, so demand a majority,
     not unanimity. *)
  check_bool
    (Printf.sprintf "%d/%d selected factors are physical" !hits !total)
    true
    (float_of_int !hits >= 0.5 *. float_of_int !total)

let test_seed_reproducibility () =
  (* The whole flow is a pure function of the seed. *)
  let run () =
    let amp = Circuit.Opamp.build ~n_parasitics:20 () in
    let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Gain in
    let g = Randkit.Prng.create 777 in
    let e = Circuit.Testbench.generate sim g ~train:100 ~test:50 in
    let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
    let g_tr = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points in
    let model = Rsm.Omp.fit g_tr e.Circuit.Testbench.train.Circuit.Simulator.values ~lambda:10 in
    Rsm.Model.to_dense model
  in
  check_vec ~eps:0. "bit-identical across runs" (run ()) (run ())

let suite =
  ( "integration",
    [
      slow_case "opamp offset: sparse & accurate" test_offset_model_is_sparse_and_accurate;
      slow_case "opamp offset: physically meaningful support" test_offset_selects_input_pair;
      slow_case "opamp: OMP competitive with LS" test_sparse_methods_beat_ls_sample_for_sample;
      slow_case "opamp power: quadratic beats linear" test_quadratic_improves_on_linear;
      slow_case "sram: underdetermined flow" test_sram_flow_small;
      slow_case "sram: physical support" test_sram_selected_factors_physical;
      case "reproducibility" test_seed_reproducibility;
    ] )
