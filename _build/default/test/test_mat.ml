open Linalg
open Test_util

let a23 () = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_create_dims () =
  let a = Mat.create 2 3 in
  check_int "rows" 2 (Mat.rows a);
  check_int "cols" 3 (Mat.cols a);
  check_float "zero" 0. (Mat.get a 1 2)

let test_of_arrays () =
  let a = a23 () in
  check_float "get" 6. (Mat.get a 1 2);
  check_raises_invalid "ragged" (fun () ->
      Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |])

let test_get_set_bounds () =
  let a = Mat.create 2 2 in
  Mat.set a 0 1 5.;
  check_float "set/get" 5. (Mat.get a 0 1);
  check_raises_invalid "row oob" (fun () -> Mat.get a 2 0);
  check_raises_invalid "col oob" (fun () -> Mat.get a 0 2);
  check_raises_invalid "negative" (fun () -> Mat.get a (-1) 0)

let test_identity () =
  let i3 = Mat.identity 3 in
  check_float "diag" 1. (Mat.get i3 1 1);
  check_float "off" 0. (Mat.get i3 0 1)

let test_row_col () =
  let a = a23 () in
  check_vec "row" [| 4.; 5.; 6. |] (Mat.row a 1);
  check_vec "col" [| 2.; 5. |] (Mat.col a 1);
  let r = Mat.row a 0 in
  r.(0) <- 99.;
  check_float "row is a copy" 1. (Mat.get a 0 0)

let test_set_row_col () =
  let a = Mat.create 2 2 in
  Mat.set_row a 0 [| 1.; 2. |];
  Mat.set_col a 1 [| 7.; 8. |];
  check_float "set_row" 1. (Mat.get a 0 0);
  check_float "set_col wins" 7. (Mat.get a 0 1);
  check_float "set_col" 8. (Mat.get a 1 1)

let test_transpose () =
  let a = a23 () in
  let t = Mat.transpose a in
  check_int "t rows" 3 (Mat.rows t);
  check_float "entry" 6. (Mat.get t 2 1);
  check_mat "double transpose" a (Mat.transpose t)

let test_add_sub_smul () =
  let a = a23 () in
  check_mat "a+a = 2a" (Mat.smul 2. a) (Mat.add a a);
  let z = Mat.sub a a in
  check_float "a-a" 0. (Mat.frobenius z)

let test_mul () =
  let a = a23 () in
  let b = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let c = Mat.mul a b in
  check_mat "product" (Mat.of_arrays [| [| 4.; 5. |]; [| 10.; 11. |] |]) c;
  check_raises_invalid "dim mismatch" (fun () -> Mat.mul a a)

let test_mul_identity () =
  let a = a23 () in
  check_mat "a*I" a (Mat.mul a (Mat.identity 3));
  check_mat "I*a" a (Mat.mul (Mat.identity 2) a)

let test_mulv_tmulv () =
  let a = a23 () in
  check_vec "mulv" [| 14.; 32. |] (Mat.mulv a [| 1.; 2.; 3. |]);
  check_vec "tmulv" [| 9.; 12.; 15. |] (Mat.tmulv a [| 1.; 2. |]);
  (* tmulv must agree with explicit transpose multiply. *)
  check_vec "tmulv = (a^T)v" (Mat.mulv (Mat.transpose a) [| 1.; 2. |])
    (Mat.tmulv a [| 1.; 2. |])

let test_gram () =
  let a = a23 () in
  let g = Mat.gram a in
  check_mat "gram = a^T a" (Mat.mul (Mat.transpose a) a) g;
  check_bool "symmetric" true (Mat.is_symmetric g)

let test_col_dot () =
  let a = a23 () in
  check_float "col_dot" (Vec.dot (Mat.col a 1) [| 3.; 4. |])
    (Mat.col_dot a 1 [| 3.; 4. |]);
  check_raises_invalid "col oob" (fun () -> Mat.col_dot a 3 [| 1.; 2. |])

let test_col_sub_dot () =
  let a = a23 () in
  check_float "prefix 1" 2. (Mat.col_sub_dot a 1 1 [| 1.; 99. |]);
  check_float "full" (Mat.col_dot a 1 [| 1.; 2. |])
    (Mat.col_sub_dot a 1 2 [| 1.; 2. |])

let test_select_cols_rows () =
  let a = a23 () in
  let s = Mat.select_cols a [| 2; 0 |] in
  check_mat "select_cols" (Mat.of_arrays [| [| 3.; 1. |]; [| 6.; 4. |] |]) s;
  let r = Mat.select_rows a [| 1 |] in
  check_mat "select_rows" (Mat.of_arrays [| [| 4.; 5.; 6. |] |]) r;
  check_raises_invalid "col oob" (fun () -> Mat.select_cols a [| 5 |]);
  check_raises_invalid "row oob" (fun () -> Mat.select_rows a [| 2 |])

let test_cols_gram () =
  let a = a23 () in
  let idx = [| 0; 2 |] in
  check_mat "cols_gram"
    (Mat.gram (Mat.select_cols a idx))
    (Mat.cols_gram a idx)

let test_frobenius_max_abs () =
  let a = Mat.of_arrays [| [| 3.; 0. |]; [| 0.; -4. |] |] in
  check_float "frobenius" 5. (Mat.frobenius a);
  check_float "max_abs" 4. (Mat.max_abs a)

let test_is_symmetric () =
  check_bool "sym" true (Mat.is_symmetric (Mat.identity 3));
  check_bool "not sym" false (Mat.is_symmetric (a23 ()));
  check_bool "asym" false
    (Mat.is_symmetric (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 1. |] |]))

let random_mat g r c =
  Mat.init r c (fun _ _ -> Randkit.Prng.float g -. 0.5)

let prop_mul_associative =
  qtest ~count:30 "matrix multiply associative" QCheck.(int_range 1 6)
    (fun n ->
      let g = rng () in
      let a = random_mat g n n and b = random_mat g n n and c = random_mat g n n in
      Mat.approx_equal ~tol:1e-9 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))

let prop_transpose_product =
  qtest ~count:30 "(ab)^T = b^T a^T" QCheck.(int_range 1 6)
    (fun n ->
      let g = rng () in
      let a = random_mat g n (n + 1) and b = random_mat g (n + 1) n in
      Mat.approx_equal ~tol:1e-9
        (Mat.transpose (Mat.mul a b))
        (Mat.mul (Mat.transpose b) (Mat.transpose a)))

let prop_gram_psd =
  qtest ~count:30 "gram is PSD on random vectors" QCheck.(int_range 1 6)
    (fun n ->
      let g = rng () in
      let a = random_mat g (n + 2) n in
      let gr = Mat.gram a in
      let x = Array.init n (fun _ -> Randkit.Prng.float g -. 0.5) in
      Vec.dot x (Mat.mulv gr x) >= -1e-9)

let suite =
  ( "mat",
    [
      case "create/dims" test_create_dims;
      case "of_arrays" test_of_arrays;
      case "get/set bounds" test_get_set_bounds;
      case "identity" test_identity;
      case "row/col" test_row_col;
      case "set_row/set_col" test_set_row_col;
      case "transpose" test_transpose;
      case "add/sub/smul" test_add_sub_smul;
      case "mul" test_mul;
      case "mul identity" test_mul_identity;
      case "mulv/tmulv" test_mulv_tmulv;
      case "gram" test_gram;
      case "col_dot" test_col_dot;
      case "col_sub_dot" test_col_sub_dot;
      case "select cols/rows" test_select_cols_rows;
      case "cols_gram" test_cols_gram;
      case "frobenius/max_abs" test_frobenius_max_abs;
      case "is_symmetric" test_is_symmetric;
      prop_mul_associative;
      prop_transpose_product;
      prop_gram_psd;
    ] )
