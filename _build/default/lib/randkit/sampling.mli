(** Sampling plans: train/test splits and fold assignment.

    These are the bookkeeping primitives under the paper's methodology —
    independent training and testing sets (Section V) and the Q-fold
    partition of Fig. 2. Assignments are index-based so the (possibly
    huge) design matrices are never copied per fold. *)

val train_test_split :
  Prng.t -> n:int -> test_fraction:float -> int array * int array
(** [train_test_split g ~n ~test_fraction] partitions [0..n-1] at random
    into [(train, test)] index arrays. Fractions are clamped so both
    sides are non-empty whenever [n >= 2].
    @raise Invalid_argument if [n < 2] or the fraction is outside (0,1). *)

val fold_assignment : Prng.t -> n:int -> folds:int -> int array
(** [fold_assignment g ~n ~folds] assigns each of [0..n-1] a fold id in
    [0..folds-1], balanced to within one element, randomly permuted.
    @raise Invalid_argument if [folds < 2] or [folds > n]. *)

val fold_split : int array -> int -> int array * int array
(** [fold_split assignment q] is [(train_idx, held_out_idx)] for fold
    [q]: indices whose assignment differs from / equals [q]. *)

val subsample : Prng.t -> int array -> int -> int array
(** [subsample g idx k] draws [k] distinct elements of [idx] uniformly
    (partial Fisher–Yates).
    @raise Invalid_argument if [k > Array.length idx]. *)
