let train_test_split g ~n ~test_fraction =
  if n < 2 then invalid_arg "Sampling.train_test_split: need at least 2 points";
  if test_fraction <= 0. || test_fraction >= 1. then
    invalid_arg "Sampling.train_test_split: fraction must be in (0,1)";
  let n_test =
    let raw = int_of_float (Float.round (test_fraction *. float_of_int n)) in
    max 1 (min (n - 1) raw)
  in
  let perm = Prng.permutation g n in
  let test = Array.sub perm 0 n_test in
  let train = Array.sub perm n_test (n - n_test) in
  Array.sort compare train;
  Array.sort compare test;
  (train, test)

let fold_assignment g ~n ~folds =
  if folds < 2 then invalid_arg "Sampling.fold_assignment: need at least 2 folds";
  if folds > n then invalid_arg "Sampling.fold_assignment: more folds than points";
  (* Balanced ids 0,1,...,Q-1,0,1,... then a random permutation of slots. *)
  let ids = Array.init n (fun i -> i mod folds) in
  Prng.shuffle g ids;
  ids

let fold_split assignment q =
  let n = Array.length assignment in
  let held = ref [] and train = ref [] in
  for i = n - 1 downto 0 do
    if assignment.(i) = q then held := i :: !held else train := i :: !train
  done;
  (Array.of_list !train, Array.of_list !held)

let subsample g idx k =
  let n = Array.length idx in
  if k > n then invalid_arg "Sampling.subsample: sample larger than population";
  let a = Array.copy idx in
  (* Partial Fisher–Yates: after k swaps the prefix is a uniform sample. *)
  for i = 0 to k - 1 do
    let j = i + Prng.int g (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k
