lib/randkit/mvn.ml: Array Cholesky Gaussian Linalg Mat
