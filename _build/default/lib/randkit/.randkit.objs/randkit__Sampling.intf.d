lib/randkit/sampling.mli: Prng
