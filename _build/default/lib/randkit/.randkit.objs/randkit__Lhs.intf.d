lib/randkit/lhs.mli: Linalg Prng
