lib/randkit/gaussian.ml: Array Linalg Prng
