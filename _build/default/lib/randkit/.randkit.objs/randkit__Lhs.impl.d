lib/randkit/lhs.ml: Array Float Prng
