lib/randkit/sampling.ml: Array Float Prng
