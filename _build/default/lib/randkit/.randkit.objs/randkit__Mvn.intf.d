lib/randkit/mvn.mli: Linalg Prng
