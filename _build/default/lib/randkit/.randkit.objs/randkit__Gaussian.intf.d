lib/randkit/gaussian.mli: Linalg Prng
