lib/randkit/prng.ml: Array Int64
