lib/randkit/prng.mli:
