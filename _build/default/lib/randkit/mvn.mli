(** Correlated multivariate normal sampling.

    Models the pre-PCA process parameters [ΔX ~ N(0, Σ)]: a sampler is
    built once from the covariance (one Cholesky factorization) and then
    produces draws at O(n²) each. The circuit substrate uses this to
    generate correlated inter-die variations which PCA subsequently
    whitens into the independent factors [ΔY]. *)

type t
(** A prepared sampler for a fixed covariance. *)

val of_covariance : Linalg.Mat.t -> t
(** [of_covariance sigma] prepares a sampler for [N(0, sigma)].
    @raise Linalg.Cholesky.Not_positive_definite when [sigma] is not SPD. *)

val dim : t -> int

val sample : t -> Prng.t -> Linalg.Vec.t
(** One draw [L·z] with [z] iid standard normal and [Σ = L·Lᵀ]. *)

val sample_n : t -> Prng.t -> int -> Linalg.Mat.t
(** [sample_n s g k] stacks [k] draws as rows of a [k×n] matrix. *)

val covariance_factor : t -> Linalg.Mat.t
(** The lower Cholesky factor [L] (fresh copy, for tests). *)
