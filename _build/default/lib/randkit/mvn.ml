open Linalg

type t = { n : int; l : Mat.t }

let of_covariance sigma =
  if Mat.rows sigma <> Mat.cols sigma then
    invalid_arg "Mvn.of_covariance: covariance must be square";
  { n = Mat.rows sigma; l = Cholesky.factor sigma }

let dim s = s.n

let sample s g =
  let z = Gaussian.vector g s.n in
  (* x = L·z, reading only the lower triangle. *)
  let x = Array.make s.n 0. in
  for i = 0 to s.n - 1 do
    let acc = ref 0. in
    for j = 0 to i do
      acc := !acc +. (Mat.unsafe_get s.l i j *. z.(j))
    done;
    x.(i) <- !acc
  done;
  x

let sample_n s g k =
  let m = Mat.create k s.n in
  for i = 0 to k - 1 do
    Mat.set_row m i (sample s g)
  done;
  m

let covariance_factor s = Mat.copy s.l
