let uniform_points g ~k ~n =
  if k <= 0 || n <= 0 then invalid_arg "Lhs: k and n must be positive";
  let pts = Array.init k (fun _ -> Array.make n 0.) in
  for d = 0 to n - 1 do
    let perm = Prng.permutation g k in
    for i = 0 to k - 1 do
      (* Stratum [perm(i)] of dimension d, jittered within the stratum. *)
      pts.(i).(d) <- (float_of_int perm.(i) +. Prng.float g) /. float_of_int k
    done
  done;
  pts

(* Inverse-normal transform of the stratified uniforms. Acklam's
   rational approximation (the same construction as
   Stat.Distribution.quantile, duplicated here because randkit sits
   below stat in the dependency order; covered by cross-checking
   tests). *)
let normal_quantile p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let horner coeffs x =
    Array.fold_left (fun acc cc -> (acc *. x) +. cc) 0. coeffs
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2. *. log p) in
    horner c q /. ((horner d q *. q) +. 1.)
  end
  else if p <= 1. -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    horner a r *. q /. ((horner b r *. r) +. 1.)
  end
  else begin
    let q = sqrt (-2. *. log (1. -. p)) in
    -.(horner c q) /. ((horner d q *. q) +. 1.)
  end

let gaussian_points g ~k ~n =
  let pts = uniform_points g ~k ~n in
  Array.iter
    (fun p ->
      for d = 0 to n - 1 do
        (* Clamp away from 0/1: the jitter cannot reach them exactly but
           guard against rounding. *)
        let u = Float.min (Float.max p.(d) 1e-12) (1. -. 1e-12) in
        p.(d) <- normal_quantile u
      done)
    pts;
  pts
