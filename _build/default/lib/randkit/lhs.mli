(** Latin hypercube sampling of standard-normal factors.

    An alternative sampling plan to iid Monte Carlo: each of the [n]
    dimensions is stratified into [k] equal-probability slices, one
    sample per slice, with the slices randomly permuted per dimension.
    Marginals are near-perfectly uniform over the strata, which reduces
    the variance of the inner-product estimators (eq. (14)) that drive
    basis selection — the A1(g)-adjacent sampling ablation uses this to
    ask whether a smarter plan buys accuracy at equal K. *)

val gaussian_points : Prng.t -> k:int -> n:int -> Linalg.Vec.t array
(** [gaussian_points g ~k ~n] is [k] points in [n] dimensions whose
    marginals are stratified standard normal (the uniform stratum
    sample is pushed through the normal quantile).
    @raise Invalid_argument on non-positive [k] or [n]. *)

val uniform_points : Prng.t -> k:int -> n:int -> Linalg.Vec.t array
(** Same stratification on [[0, 1)ⁿ] without the Gaussian transform. *)
