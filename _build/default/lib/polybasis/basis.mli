(** Basis sets: ordered collections of orthonormal Hermite terms.

    A basis fixes the dictionary [{g_m}] of eq. (1): the candidate
    functions from which the sparse solvers select. Standard
    constructions cover the paper's two model classes — linear
    ([1 + N] functions) and quadratic ([1 + 2N + N(N−1)/2] functions,
    i.e. constant, linear, squares, and pairwise cross terms; this is
    the "N-dimensional quadratic coefficient matrix" counted as
    [N(N+1)/2 + N + 1] coefficients in the paper, e.g. 20 301 for
    N = 200). *)

type t = private { dim : int; terms : Term.t array }

val create : int -> Term.t array -> t
(** [create dim terms] validates that every term fits in [dim]
    variables; terms keep the given order (the solvers report selected
    indices into it). *)

val size : t -> int
(** Number of basis functions [M]. *)

val dim : t -> int
(** Number of independent factors [N]. *)

val term : t -> int -> Term.t

val constant_linear : int -> t
(** [constant_linear n]: [1, Δy₀, …, Δy_{n−1}] — [n + 1] functions. *)

val linear_only : int -> t
(** [linear_only n]: the [n] linear terms without the constant (for
    centered responses). *)

val quadratic : int -> t
(** [quadratic n]: constant, linear, squares, and cross terms, graded
    order — [1 + 2n + n(n−1)/2] functions. *)

val quadratic_subset : dim:int -> int array -> t
(** [quadratic_subset ~dim vars] is the quadratic basis over the listed
    variable subset only, embedded in a [dim]-dimensional factor space.
    This is the paper's Section V-A.2 construction: quadratic modeling
    over the 200 most important parameters of a 630-dimensional space.
    @raise Invalid_argument on duplicate or out-of-range variables. *)

val total_degree : int -> int -> t
(** [total_degree n d]: all terms of total degree ≤ [d] over [n]
    variables, graded-lexicographic order. Sizes grow as C(n+d, d);
    intended for small [n]. *)

val embed : t -> int array -> dim:int -> t
(** [embed b vars ~dim] re-targets a basis built over local variables
    [0 … Basis.dim b − 1] onto the global factors [vars] inside a
    [dim]-dimensional space (local variable [i] becomes [vars.(i)]).
    Composing [total_degree s d] with [embed] gives degree-[d] models
    over an important-parameter subset — the cubic extension of the
    paper's Section V-A.2 flow.
    @raise Invalid_argument on length mismatch, duplicates or
    out-of-range targets. *)

val max_degree : t -> int
(** Largest total degree among the terms. *)

val eval_point : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [eval_point b dy] is the design-matrix row
    [| g₀(dy); …; g_{M−1}(dy) |]. Hermite values are computed once per
    variable per degree, then shared across terms. *)

val quadratic_size : int -> int
(** [quadratic_size n] = [1 + 2n + n(n−1)/2], without building it. *)

val make_tables : t -> float array array
(** [make_tables b] allocates a per-variable Hermite table sized for the
    basis: [tbl.(v).(d)] will hold [g_d] of variable [v]. Pair with
    [fill_tables] to evaluate many points without re-allocating. *)

val fill_tables : t -> float array array -> Linalg.Vec.t -> unit
(** [fill_tables b tbl dy] fills [tbl] with the Hermite values of the
    point [dy] by the three-term recurrence. *)

val pp : Format.formatter -> t -> unit
