lib/polybasis/term.ml: Array Format Hashtbl Hermite List Printf Stdlib String
