lib/polybasis/design.ml: Array Basis Linalg Mat Term
