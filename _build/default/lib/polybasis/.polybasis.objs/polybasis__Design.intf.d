lib/polybasis/design.mli: Basis Linalg
