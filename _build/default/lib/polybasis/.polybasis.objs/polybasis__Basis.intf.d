lib/polybasis/basis.mli: Format Linalg Term
