lib/polybasis/basis.ml: Array Format Hashtbl List Term
