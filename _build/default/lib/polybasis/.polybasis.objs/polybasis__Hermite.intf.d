lib/polybasis/hermite.mli:
