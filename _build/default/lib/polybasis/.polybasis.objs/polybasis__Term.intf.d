lib/polybasis/term.mli: Format Linalg
