type t = (int * int) array

let constant = [||]

let linear v =
  if v < 0 then invalid_arg "Term.linear: negative variable";
  [| (v, 1) |]

let square v =
  if v < 0 then invalid_arg "Term.square: negative variable";
  [| (v, 2) |]

let cross u v =
  if u < 0 || v < 0 then invalid_arg "Term.cross: negative variable";
  if u = v then invalid_arg "Term.cross: variables must differ (use square)";
  if u < v then [| (u, 1); (v, 1) |] else [| (v, 1); (u, 1) |]

let make pairs =
  List.iter
    (fun (v, d) ->
      if v < 0 then invalid_arg "Term.make: negative variable";
      if d < 0 then invalid_arg "Term.make: negative degree")
    pairs;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, d) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0 in
      Hashtbl.replace tbl v (cur + d))
    pairs;
  let merged =
    Hashtbl.fold (fun v d acc -> if d > 0 then (v, d) :: acc else acc) tbl []
  in
  let arr = Array.of_list merged in
  Array.sort (fun (u, _) (v, _) -> Stdlib.compare u v) arr;
  arr

let total_degree t = Array.fold_left (fun acc (_, d) -> acc + d) 0 t

let max_var t = Array.fold_left (fun acc (v, _) -> max acc v) (-1) t

let vars t = Array.to_list (Array.map fst t)

let eval t dy =
  let acc = ref 1. in
  Array.iter
    (fun (v, d) ->
      if v >= Array.length dy then invalid_arg "Term.eval: variable out of range";
      acc := !acc *. Hermite.eval d dy.(v))
    t;
  !acc

let eval_tables t tbl =
  let acc = ref 1. in
  Array.iter (fun (v, d) -> acc := !acc *. tbl.(v).(d)) t;
  !acc

let compare a b =
  let da = total_degree a and db = total_degree b in
  if da <> db then Stdlib.compare da db
  else Stdlib.compare (Array.to_list a) (Array.to_list b)

let equal a b = compare a b = 0

let to_string t =
  if Array.length t = 0 then "1"
  else
    String.concat "*"
      (Array.to_list
         (Array.map
            (fun (v, d) ->
              if d = 1 then Printf.sprintf "y%d" v
              else Printf.sprintf "y%d^%d" v d)
            t))

let pp fmt t = Format.pp_print_string fmt (to_string t)
