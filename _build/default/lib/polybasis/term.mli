(** Multi-index monomial terms over the independent factors ΔY.

    A term is a sparse multi-index: a sorted array of
    [(variable, degree)] pairs with strictly increasing variable indices
    and strictly positive degrees. The associated basis function is the
    product of normalized 1-D Hermite polynomials
    [g_T(ΔY) = Π g_{d_v}(Δy_v)], which keeps the multi-dimensional family
    orthonormal under the independent standard-normal measure
    (eq. (2) and (4) of the paper). The constant term is the empty
    array. *)

type t = (int * int) array

val constant : t

val linear : int -> t
(** [linear v] is the term [Δy_v]. *)

val square : int -> t
(** [square v] is the degree-2 term in variable [v]
    (basis function [(Δy_v² − 1)/√2]). *)

val cross : int -> int -> t
(** [cross u v] is the term [Δy_u·Δy_v], [u ≠ v] (order-insensitive).
    @raise Invalid_argument when [u = v]. *)

val make : (int * int) list -> t
(** [make pairs] normalizes an association list of (variable, degree):
    merges duplicate variables, drops zero degrees, sorts.
    @raise Invalid_argument on negative variables or degrees. *)

val total_degree : t -> int
(** Sum of degrees (0 for the constant term). *)

val max_var : t -> int
(** Largest variable index, or [-1] for the constant term. *)

val vars : t -> int list

val eval : t -> Linalg.Vec.t -> float
(** [eval t dy] is [Π g_{d_v}(dy.(v))]. *)

val eval_tables : t -> float array array -> float
(** [eval_tables t tbl] evaluates using precomputed per-variable Hermite
    tables: [tbl.(v).(d) = g_d(dy.(v))]. Used by the design-matrix
    builder to avoid recomputing Hermite values term by term. *)

val compare : t -> t -> int
(** Graded ordering: by total degree first, then lexicographic — so the
    constant sorts first, then linear terms in variable order, then
    degree-2 terms. *)

val equal : t -> t -> bool

val to_string : t -> string
(** E.g. ["1"], ["y3"], ["y1*y7"], ["y2^2"]. *)

val pp : Format.formatter -> t -> unit
