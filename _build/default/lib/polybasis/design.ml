open Linalg

let matrix_rows b samples =
  let k = Array.length samples in
  let m = Basis.size b in
  let g = Mat.create k m in
  if k > 0 then begin
    Array.iter
      (fun s ->
        if Array.length s <> Basis.dim b then
          invalid_arg "Design.matrix_rows: sample dimension mismatch")
      samples;
    if Basis.dim b = 0 then
      for i = 0 to k - 1 do
        for j = 0 to m - 1 do
          Mat.unsafe_set g i j (Term.eval (Basis.term b j) samples.(i))
        done
      done
    else begin
      let tbl = Basis.make_tables b in
      for i = 0 to k - 1 do
        Basis.fill_tables b tbl samples.(i);
        for j = 0 to m - 1 do
          Mat.unsafe_set g i j (Term.eval_tables (Basis.term b j) tbl)
        done
      done
    end
  end;
  g

let matrix b samples =
  if Mat.cols samples <> Basis.dim b then
    invalid_arg "Design.matrix: sample dimension mismatch";
  matrix_rows b (Array.init (Mat.rows samples) (fun i -> Mat.row samples i))

let row = Basis.eval_point

let column_norms g =
  let k = Mat.rows g and m = Mat.cols g in
  let out = Array.make m 0. in
  for i = 0 to k - 1 do
    for j = 0 to m - 1 do
      let v = Mat.unsafe_get g i j in
      out.(j) <- out.(j) +. (v *. v)
    done
  done;
  Array.map sqrt out
