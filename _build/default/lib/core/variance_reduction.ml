open Linalg

type cv_estimate = {
  mean : float;
  plain_mean : float;
  std_error : float;
  plain_std_error : float;
  variance_reduction : float;
}

let control_variate_mean ?(samples = 500) sim_eval model basis rng =
  if samples <= 1 then
    invalid_arg "Variance_reduction.control_variate_mean: need at least 2 samples";
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Variance_reduction.control_variate_mean: basis mismatch";
  let n = Polybasis.Basis.dim basis in
  let model_mean = Sensitivity.mean model basis in
  let sim_vals = Array.make samples 0. in
  let diff_vals = Array.make samples 0. in
  for i = 0 to samples - 1 do
    let dy = Randkit.Gaussian.vector rng n in
    let s = sim_eval dy in
    sim_vals.(i) <- s;
    diff_vals.(i) <- s -. Model.predict_point model basis dy
  done;
  let fs = float_of_int samples in
  let plain_mean = Stat.Descriptive.mean sim_vals in
  let plain_var = Stat.Descriptive.variance sim_vals in
  let diff_var = Stat.Descriptive.variance diff_vals in
  {
    mean = Stat.Descriptive.mean diff_vals +. model_mean;
    plain_mean;
    std_error = sqrt (diff_var /. fs);
    plain_std_error = sqrt (plain_var /. fs);
    variance_reduction =
      (if diff_var > 0. then plain_var /. diff_var else Float.infinity);
  }

type is_estimate = {
  probability : float;
  std_error : float;
  shift_norm : float;
  effective_samples : float;
}

let importance_sampling_tail ?(samples = 2000) sim_eval model basis rng
    ~threshold =
  if samples <= 1 then
    invalid_arg "Variance_reduction.importance_sampling_tail: need samples";
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Variance_reduction.importance_sampling_tail: basis mismatch";
  let n = Polybasis.Basis.dim basis in
  (* Linear direction of the model: the steepest-ascent axis. *)
  let lin = Array.make n 0. in
  let mean0 = Sensitivity.mean model basis in
  Array.iteri
    (fun p j ->
      let term = Polybasis.Basis.term basis j in
      if Polybasis.Term.total_degree term = 1 then
        let v = List.hd (Polybasis.Term.vars term) in
        lin.(v) <- lin.(v) +. model.Model.coeffs.(p))
    model.Model.support;
  let norm = Vec.nrm2 lin in
  if norm = 0. then
    invalid_arg
      "Variance_reduction.importance_sampling_tail: model has no linear part";
  (* Shift so the proposal mean sits at the threshold along the model:
     mean0 + k·norm = threshold → k = (t − mean0)/norm, capped. *)
  let kshift =
    Float.max 0. (Float.min ((threshold -. mean0) /. norm) 6.)
  in
  let shift = Array.map (fun a -> kshift *. a /. norm) lin in
  (* Draw from N(shift, I); weight = φ(x)/φ(x − shift)
     = exp(−xᵀs + ‖s‖²/2). *)
  let acc = ref 0. and acc2 = ref 0. in
  let wsum = ref 0. and w2sum = ref 0. in
  let half_s2 = 0.5 *. Vec.nrm2_sq shift in
  for _ = 1 to samples do
    let x = Randkit.Gaussian.vector rng n in
    Vec.axpy 1. shift x;
    let log_w = -.Vec.dot x shift +. half_s2 in
    let w = exp log_w in
    wsum := !wsum +. w;
    w2sum := !w2sum +. (w *. w);
    if sim_eval x > threshold then begin
      acc := !acc +. w;
      acc2 := !acc2 +. (w *. w)
    end
  done;
  let fs = float_of_int samples in
  let p = !acc /. fs in
  let var = Float.max 0. ((!acc2 /. fs) -. (p *. p)) /. fs in
  {
    probability = p;
    std_error = sqrt var;
    shift_norm = kshift;
    effective_samples =
      (if !w2sum > 0. then !wsum *. !wsum /. !w2sum else 0.);
  }
