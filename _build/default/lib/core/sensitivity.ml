let check model basis =
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Sensitivity: basis size disagrees with model"

(* Iterate the model's non-constant terms as (term, alpha^2). *)
let iter_variance_terms model basis f =
  Array.iteri
    (fun p j ->
      let term = Polybasis.Basis.term basis j in
      if Polybasis.Term.total_degree term > 0 then
        f term (model.Model.coeffs.(p) *. model.Model.coeffs.(p)))
    model.Model.support

let total_variance model basis =
  check model basis;
  let acc = ref 0. in
  iter_variance_terms model basis (fun _ v -> acc := !acc +. v);
  !acc

let mean model basis =
  check model basis;
  let acc = ref 0. in
  Array.iteri
    (fun p j ->
      if Polybasis.Term.total_degree (Polybasis.Basis.term basis j) = 0 then
        acc := !acc +. model.Model.coeffs.(p))
    model.Model.support;
  !acc

let shares_with ~keep model basis =
  check model basis;
  let n = Polybasis.Basis.dim basis in
  let shares = Linalg.Vec.create n in
  let total = total_variance model basis in
  if total > 0. then
    iter_variance_terms model basis (fun term v ->
        if keep term then
          List.iter (fun var -> shares.(var) <- shares.(var) +. (v /. total))
            (Polybasis.Term.vars term));
  shares

let factor_shares model basis = shares_with ~keep:(fun _ -> true) model basis

let main_effect_shares model basis =
  shares_with
    ~keep:(fun term -> List.length (Polybasis.Term.vars term) = 1)
    model basis

let interaction_share model basis =
  check model basis;
  let total = total_variance model basis in
  if total = 0. then 0.
  else begin
    let acc = ref 0. in
    iter_variance_terms model basis (fun term v ->
        if List.length (Polybasis.Term.vars term) >= 2 then acc := !acc +. v);
    !acc /. total
  end

let top_factors ?(n = 10) model basis =
  let shares = factor_shares model basis in
  let idx =
    Array.to_list (Array.mapi (fun i s -> (i, s)) shares)
    |> List.filter (fun (_, s) -> s > 0.)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Array.of_list (List.filteri (fun i _ -> i < n) idx)
