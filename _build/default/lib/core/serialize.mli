(** Plain-text persistence for fitted models.

    A fitted sparse model is tiny (tens of coefficients for a
    21 311-function dictionary), so a human-readable format costs
    nothing and lets models move between runs, the CLI and other tools.

    Format (version 1):
    {v
    rsm-model 1
    basis_size <M>
    nnz <n>
    <index> <coefficient>   (n lines, %.17g round-trip precision)
    v}
    Lines starting with [#] are ignored. *)

val to_string : Model.t -> string

val of_string : string -> (Model.t, string) result
(** Parse; [Error msg] describes the first problem found (bad header,
    wrong counts, duplicate or out-of-range indices, malformed
    numbers). *)

val save : string -> Model.t -> unit
(** [save path m] writes the model to [path] (truncating).
    @raise Sys_error on IO failure. *)

val load : string -> (Model.t, string) result
(** [load path] reads a model back. IO failures are reported as
    [Error]. *)

val to_expression : Model.t -> Polybasis.Basis.t -> string
(** Human-readable analytic form of the model, e.g.
    ["f = 893.25 + 22.53*y3 - 6.17*(y9^2 - 1)/sqrt2 + ..."] — the
    response-surface equation a datasheet or report would quote.
    Normalized Hermite factors are spelled out so the expression is
    directly evaluable.
    @raise Invalid_argument when the basis size disagrees. *)
