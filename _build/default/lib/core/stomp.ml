open Linalg

type step = {
  added : int array;
  threshold : float;
  residual_norm : float;
  model : Model.t;
}

let path ?(threshold = 2.5) ?(max_stages = 10) ?max_selected g f =
  let k = Mat.rows g and m = Mat.cols g in
  if Array.length f <> k then invalid_arg "Stomp.path: response length mismatch";
  if threshold <= 0. then invalid_arg "Stomp.path: threshold must be positive";
  if max_stages <= 0 then invalid_arg "Stomp.path: max_stages must be positive";
  let cap =
    match max_selected with
    | None -> min k m
    | Some c ->
        if c <= 0 || c > min k m then
          invalid_arg "Stomp.path: max_selected outside (0, min(K, M)]";
        c
  in
  let norms = Polybasis.Design.column_norms g in
  let selected = Array.make m false in
  let support = Array.make cap 0 in
  let rhs = Array.make cap 0. in
  let chol = Cholesky.Grow.create cap in
  let n_sel = ref 0 in
  let res = Array.copy f in
  let steps = ref [] in
  let stop = ref false in
  let stage = ref 0 in
  while (not !stop) && !stage < max_stages do
    incr stage;
    let res_norm = Vec.nrm2 res in
    if res_norm <= 1e-14 *. Float.max (Vec.nrm2 f) 1. then stop := true
    else begin
      (* Donoho's threshold: admit columns whose normalized correlation
         exceeds t times the per-column noise level sigma = ||Res||/sqrt K. *)
      let thr = threshold *. res_norm /. sqrt (float_of_int k) in
      let candidates = ref [] in
      for j = 0 to m - 1 do
        if (not selected.(j)) && norms.(j) > 0. then begin
          let c = Float.abs (Mat.col_dot g j res) /. norms.(j) in
          if c > thr then candidates := (c, j) :: !candidates
        end
      done;
      let cands =
        List.sort (fun (a, _) (b, _) -> compare b a) !candidates
      in
      if cands = [] then stop := true
      else begin
        let added = ref [] in
        List.iter
          (fun (_, j) ->
            if !n_sel < cap then begin
              let cross =
                Array.init !n_sel (fun q ->
                    let jq = support.(q) in
                    let acc = ref 0. in
                    for i = 0 to k - 1 do
                      acc := !acc +. (Mat.unsafe_get g i jq *. Mat.unsafe_get g i j)
                    done;
                    !acc)
              in
              let diag =
                let acc = ref 0. in
                for i = 0 to k - 1 do
                  let v = Mat.unsafe_get g i j in
                  acc := !acc +. (v *. v)
                done;
                !acc
              in
              match Cholesky.Grow.append chol cross diag with
              | () ->
                  support.(!n_sel) <- j;
                  rhs.(!n_sel) <- Mat.col_dot g j f;
                  selected.(j) <- true;
                  incr n_sel;
                  added := j :: !added
              | exception Cholesky.Not_positive_definite _ ->
                  (* Dependent on the current selection: skip. *)
                  ()
            end)
          cands;
        if !added = [] then stop := true
        else begin
          (* Re-fit all selected coefficients, recompute the residual. *)
          let sub = Array.sub support 0 !n_sel in
          let coeffs = Cholesky.Grow.solve chol (Array.sub rhs 0 !n_sel) in
          let new_res = Lstsq.residual_subset g sub coeffs f in
          Array.blit new_res 0 res 0 k;
          let model =
            Model.make ~basis_size:m ~support:(Array.copy sub) ~coeffs
          in
          steps :=
            {
              added = Array.of_list (List.rev !added);
              threshold = thr;
              residual_norm = Vec.nrm2 res;
              model;
            }
            :: !steps;
          if !n_sel >= cap then stop := true
        end
      end
    end
  done;
  Array.of_list (List.rev !steps)

let fit ?threshold ?max_stages ?max_selected g f =
  let steps = path ?threshold ?max_stages ?max_selected g f in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Mat.cols g) ~support:[||] ~coeffs:[||]
  else steps.(Array.length steps - 1).model
