open Linalg

let lipschitz ?(iters = 50) g =
  let m = Mat.cols g in
  if m = 0 then 0.
  else begin
    (* Power iteration on GᵀG without forming it. *)
    let v = ref (Array.init m (fun i -> 1. /. sqrt (float_of_int (i + 1)))) in
    let lambda = ref 0. in
    for _ = 1 to iters do
      let gv = Mat.mulv g !v in
      let w = Mat.tmulv g gv in
      let n = Vec.nrm2 w in
      if n > 0. then begin
        Vec.scal (1. /. n) w;
        lambda := n;
        v := w
      end
    done;
    !lambda
  end

let soft x t = if x > t then x -. t else if x < -.t then x +. t else 0.

let objective g f ~reg model =
  let res = Vec.sub f (Model.predict_design model g) in
  (0.5 *. Vec.nrm2_sq res) +. (reg *. Vec.asum (Model.to_dense model))

let fit ?(max_iters = 2000) ?(tol = 1e-10) g f ~reg =
  if reg < 0. then invalid_arg "Fista.fit: negative penalty";
  if Array.length f <> Mat.rows g then
    invalid_arg "Fista.fit: response length mismatch";
  let m = Mat.cols g in
  let l = Float.max (lipschitz g) 1e-12 in
  let step = 1. /. l in
  let alpha = Array.make m 0. in
  let y = Array.make m 0. in
  let t = ref 1. in
  let obj alpha_arr =
    let res = Vec.sub f (Mat.mulv g alpha_arr) in
    (0.5 *. Vec.nrm2_sq res) +. (reg *. Vec.asum alpha_arr)
  in
  let prev_obj = ref (obj alpha) in
  let iter = ref 0 and converged = ref false in
  while (not !converged) && !iter < max_iters do
    incr iter;
    (* Gradient of the smooth part at y: Gᵀ(G·y − F). *)
    let gy = Mat.mulv g y in
    let grad = Mat.tmulv g (Vec.sub gy f) in
    let next = Array.init m (fun j -> soft (y.(j) -. (step *. grad.(j))) (step *. reg)) in
    let t_next = (1. +. sqrt (1. +. (4. *. !t *. !t))) /. 2. in
    let momentum = (!t -. 1.) /. t_next in
    for j = 0 to m - 1 do
      y.(j) <- next.(j) +. (momentum *. (next.(j) -. alpha.(j)));
      alpha.(j) <- next.(j)
    done;
    t := t_next;
    if !iter mod 10 = 0 then begin
      let o = obj alpha in
      if Float.abs (!prev_obj -. o) <= tol *. Float.max (Float.abs o) 1. then
        converged := true;
      prev_obj := o
    end
  done;
  (* Snap near-zero survivors of the proximal map to exact zeros. *)
  let top = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. alpha in
  Array.iteri (fun j x -> if Float.abs x < 1e-12 *. Float.max top 1. then alpha.(j) <- 0.) alpha;
  Model.dense ~basis_size:m alpha
