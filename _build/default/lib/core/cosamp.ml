open Linalg

type step = { support : int array; residual_norm : float; model : Model.t }

(* Indices of the [n] largest |values| (stable order not required). *)
let top_indices values n =
  let idx = Array.init (Array.length values) Fun.id in
  Array.sort
    (fun a b -> compare (Float.abs values.(b)) (Float.abs values.(a)))
    idx;
  Array.sub idx 0 (min n (Array.length idx))

let path ?(max_iters = 50) ?(tol = 1e-7) g f ~s =
  let k = Mat.rows g and m = Mat.cols g in
  if Array.length f <> k then invalid_arg "Cosamp.path: response length mismatch";
  if s < 1 || 3 * s > k || s > m then
    invalid_arg "Cosamp.path: s must satisfy 1 <= s, 3s <= K, s <= M";
  let res = ref (Array.copy f) in
  let support = ref [||] in
  let steps = ref [] in
  let stop = ref false in
  let prev_res_norm = ref (Vec.nrm2 f) in
  let iter = ref 0 in
  while (not !stop) && !iter < max_iters do
    incr iter;
    (* Signal proxy: residual correlations; take the 2s strongest. *)
    let corr = Array.init m (fun j -> Mat.col_dot g j !res) in
    let proxy = top_indices corr (2 * s) in
    (* Merge with the current support. *)
    let merged = Hashtbl.create (3 * s) in
    Array.iter (fun j -> Hashtbl.replace merged j ()) !support;
    Array.iter (fun j -> Hashtbl.replace merged j ()) proxy;
    let cand = Array.of_seq (Hashtbl.to_seq_keys merged) in
    Array.sort compare cand;
    (* LS on the merged candidate set; prune to the s largest. *)
    (match Lstsq.solve_subset g cand f with
    | coeffs ->
        let keep = top_indices coeffs s in
        let new_support = Array.map (fun p -> cand.(p)) keep in
        Array.sort compare new_support;
        let final_coeffs = Lstsq.solve_subset g new_support f in
        let new_res = Lstsq.residual_subset g new_support final_coeffs f in
        let rn = Vec.nrm2 new_res in
        let model =
          Model.make ~basis_size:m ~support:new_support ~coeffs:final_coeffs
        in
        let repeated = new_support = !support in
        support := new_support;
        res := new_res;
        steps := { support = new_support; residual_norm = rn; model } :: !steps;
        if
          repeated
          || rn <= 1e-14 *. Float.max (Vec.nrm2 f) 1.
          || Float.abs (!prev_res_norm -. rn) <= tol *. Float.max !prev_res_norm 1e-30
        then stop := true;
        prev_res_norm := rn
    | exception Cholesky.Not_positive_definite _ ->
        (* Degenerate merged set: stop with what we have. *)
        stop := true)
  done;
  Array.of_list (List.rev !steps)

let fit ?max_iters ?tol g f ~s =
  let steps = path ?max_iters ?tol g f ~s in
  if Array.length steps = 0 then
    Model.make ~basis_size:(Mat.cols g) ~support:[||] ~coeffs:[||]
  else begin
    let best = ref steps.(0) in
    Array.iter
      (fun st -> if st.residual_norm < !best.residual_norm then best := st)
      steps;
    !best.model
  end
