lib/core/bootstrap.ml: Array Float Hashtbl Linalg List Mat Model Omp Randkit
