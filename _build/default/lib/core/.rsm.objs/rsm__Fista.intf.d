lib/core/fista.mli: Linalg Model
