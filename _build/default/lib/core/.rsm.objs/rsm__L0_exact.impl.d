lib/core/l0_exact.ml: Array Cholesky Float Linalg Lstsq Mat Model Printf Vec
