lib/core/model.mli: Format Linalg Polybasis
