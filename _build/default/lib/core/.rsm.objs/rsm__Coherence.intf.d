lib/core/coherence.mli: Linalg Randkit
