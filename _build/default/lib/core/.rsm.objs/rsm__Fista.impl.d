lib/core/fista.ml: Array Float Linalg Mat Model Vec
