lib/core/stomp.ml: Array Cholesky Float Linalg List Lstsq Mat Model Polybasis Vec
