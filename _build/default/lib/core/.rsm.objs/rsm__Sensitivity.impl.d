lib/core/sensitivity.ml: Array Linalg List Model Polybasis
