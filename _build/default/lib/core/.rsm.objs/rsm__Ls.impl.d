lib/core/ls.ml: Linalg Lstsq Mat Model
