lib/core/ls.mli: Linalg Model
