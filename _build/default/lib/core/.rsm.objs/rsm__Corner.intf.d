lib/core/corner.mli: Linalg Model Polybasis Randkit
