lib/core/omp.ml: Array Cholesky Float Linalg List Lstsq Mat Model Vec
