lib/core/lasso_cd.ml: Array Float Linalg Mat Model
