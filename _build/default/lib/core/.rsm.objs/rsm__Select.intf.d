lib/core/select.mli: Lars Linalg Model Randkit
