lib/core/omp.mli: Linalg Model
