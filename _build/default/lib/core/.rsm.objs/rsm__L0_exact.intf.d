lib/core/l0_exact.mli: Linalg Model
