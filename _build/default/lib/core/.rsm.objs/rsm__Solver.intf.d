lib/core/solver.mli: Linalg Model Randkit
