lib/core/model.ml: Array Format Linalg List Mat Polybasis Stat Vec
