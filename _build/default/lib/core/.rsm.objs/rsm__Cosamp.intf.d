lib/core/cosamp.mli: Linalg Model
