lib/core/stomp.mli: Linalg Model
