lib/core/select.ml: Array Float Lars Linalg Mat Model Omp Star Stat
