lib/core/star.mli: Linalg Model
