lib/core/ridge.ml: Array Cholesky Linalg Mat Model Stat
