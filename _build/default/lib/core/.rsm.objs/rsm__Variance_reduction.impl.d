lib/core/variance_reduction.ml: Array Float Linalg List Model Polybasis Randkit Sensitivity Stat Vec
