lib/core/lars.ml: Array Cholesky Float Linalg List Mat Model Polybasis Vec
