lib/core/coherence.ml: Array Float Fun Linalg Mat Polybasis Randkit Svd
