lib/core/corner.ml: Array Float Linalg List Model Polybasis Randkit Vec
