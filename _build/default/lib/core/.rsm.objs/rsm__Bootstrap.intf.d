lib/core/bootstrap.mli: Linalg Randkit
