lib/core/solver.ml: Array Cosamp Float Lars Linalg Ls Mat Model Omp Select Star Stat Stomp String
