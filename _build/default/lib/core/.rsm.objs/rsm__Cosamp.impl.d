lib/core/cosamp.ml: Array Cholesky Float Fun Hashtbl Linalg List Lstsq Mat Model Vec
