lib/core/lars.mli: Linalg Model
