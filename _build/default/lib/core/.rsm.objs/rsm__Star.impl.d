lib/core/star.ml: Array Float Linalg List Mat Model Vec
