lib/core/lasso_cd.mli: Linalg Model
