lib/core/incremental.ml: Array Linalg List Model Randkit Select
