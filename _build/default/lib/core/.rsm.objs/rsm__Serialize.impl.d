lib/core/serialize.ml: Array Buffer Float Fun List Model Polybasis Printf String
