lib/core/serialize.mli: Model Polybasis
