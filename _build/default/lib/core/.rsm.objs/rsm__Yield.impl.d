lib/core/yield.ml: Array Float List Model Polybasis Randkit Sensitivity Stat
