lib/core/incremental.mli: Linalg Model Randkit
