lib/core/variance_reduction.mli: Linalg Model Polybasis Randkit
