lib/core/yield.mli: Model Polybasis Randkit
