lib/core/ridge.mli: Linalg Model Randkit
