lib/core/sensitivity.mli: Linalg Model Polybasis
