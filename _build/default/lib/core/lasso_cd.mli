(** Lasso by cyclic coordinate descent — an extension solver.

    Minimizes [½‖G·α − F‖₂² + λ_reg·‖α‖₁] by soft-thresholding one
    coordinate at a time. This is the "modern" route to the same L1
    relaxation that LAR traces path-wise; having both lets the ablation
    bench check that the two agree at matched penalties (they solve the
    same convex program). *)

val fit :
  ?max_sweeps:int -> ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t ->
  reg:float -> Model.t
(** [fit g f ~reg] iterates full coordinate sweeps until the largest
    coefficient change in a sweep falls below [tol] (default 1e-8
    relative to the largest coefficient) or [max_sweeps] (default 1000).
    @raise Invalid_argument when [reg < 0]. *)

val max_reg : Linalg.Mat.t -> Linalg.Vec.t -> float
(** Smallest penalty for which the solution is identically zero:
    [max_j |G_jᵀ·F|]. Grids are usually geometric fractions of this. *)

val path :
  ?max_sweeps:int -> ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t ->
  regs:float array -> Model.t array
(** Warm-started solutions along a penalty grid (descending order is
    fastest, but any order is accepted). *)
