open Linalg

let fit ?(unpenalized = [||]) g f ~reg =
  if reg <= 0. then invalid_arg "Ridge.fit: regularization must be positive";
  if Array.length f <> Mat.rows g then
    invalid_arg "Ridge.fit: response length mismatch";
  let m = Mat.cols g in
  let exempt = Array.make m false in
  Array.iter
    (fun j ->
      if j < 0 || j >= m then invalid_arg "Ridge.fit: unpenalized column out of range";
      exempt.(j) <- true)
    unpenalized;
  let gram = Mat.gram g in
  for j = 0 to m - 1 do
    if not exempt.(j) then
      Mat.unsafe_set gram j j (Mat.unsafe_get gram j j +. reg)
  done;
  let rhs = Mat.tmulv g f in
  let alpha = Cholesky.spd_solve gram rhs in
  Model.dense ~basis_size:m alpha

let fit_cv ?unpenalized rng ~folds ~regs g f =
  if Array.length regs = 0 then invalid_arg "Ridge.fit_cv: empty grid";
  let n = Mat.rows g in
  let plan = Stat.Crossval.make_plan rng ~n ~folds in
  let curve =
    Stat.Crossval.run_curves plan ~fit_curve:(fun ~train ~held_out ->
        let g_tr = Mat.select_rows g train in
        let f_tr = Array.map (fun i -> f.(i)) train in
        let g_ho = Mat.select_rows g held_out in
        let f_ho = Array.map (fun i -> f.(i)) held_out in
        Array.map
          (fun reg ->
            let m = fit ?unpenalized g_tr f_tr ~reg in
            Model.error_on m g_ho f_ho)
          regs)
  in
  let best = Stat.Crossval.argmin curve in
  (fit ?unpenalized g f ~reg:regs.(best), regs.(best))
