open Linalg

let normalized_inner g norms i j =
  let acc = ref 0. in
  for r = 0 to Mat.rows g - 1 do
    acc := !acc +. (Mat.unsafe_get g r i *. Mat.unsafe_get g r j)
  done;
  !acc /. (norms.(i) *. norms.(j))

let valid_norms g =
  Array.map (fun n -> if n > 0. then n else Float.nan) (Polybasis.Design.column_norms g)

let mutual_coherence g =
  let m = Mat.cols g in
  if m < 2 then invalid_arg "Coherence.mutual_coherence: need at least 2 columns";
  let norms = valid_norms g in
  let best = ref 0. in
  for i = 0 to m - 2 do
    if not (Float.is_nan norms.(i)) then
      for j = i + 1 to m - 1 do
        if not (Float.is_nan norms.(j)) then
          best := Float.max !best (Float.abs (normalized_inner g norms i j))
      done
  done;
  !best

let coherence_recovery_bound g =
  let mu = mutual_coherence g in
  if mu = 0. then Float.infinity else 0.5 *. (1. +. (1. /. mu))

let babel g s =
  let m = Mat.cols g in
  if s < 1 || s >= m then invalid_arg "Coherence.babel: s out of range";
  let norms = valid_norms g in
  let worst = ref 0. in
  for i = 0 to m - 1 do
    if not (Float.is_nan norms.(i)) then begin
      let others = ref [] in
      for j = 0 to m - 1 do
        if j <> i && not (Float.is_nan norms.(j)) then
          others := Float.abs (normalized_inner g norms i j) :: !others
      done;
      let arr = Array.of_list !others in
      Array.sort (fun a b -> compare b a) arr;
      let acc = ref 0. in
      for q = 0 to min s (Array.length arr) - 1 do
        acc := !acc +. arr.(q)
      done;
      worst := Float.max !worst !acc
    end
  done;
  !worst

let subset_condition ?(trials = 20) rng g ~s =
  let k = Mat.rows g and m = Mat.cols g in
  if s < 1 || s > min k m then
    invalid_arg "Coherence.subset_condition: s out of range";
  if trials <= 0 then invalid_arg "Coherence.subset_condition: trials";
  let sum = ref 0. and worst = ref 0. in
  for _ = 1 to trials do
    let cols = Randkit.Sampling.subsample rng (Array.init m Fun.id) s in
    let sub = Mat.select_cols g cols in
    let d = Svd.decompose sub in
    let kappa = Svd.condition_number d in
    sum := !sum +. kappa;
    worst := Float.max !worst kappa
  done;
  (!sum /. float_of_int trials, !worst)
