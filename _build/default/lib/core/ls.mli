(** Traditional least-squares fitting (reference [21]) — the baseline
    the paper compares against.

    Solves the over-determined system of eq. (6) by minimizing
    [‖G·α − F‖₂²]; requires [K ≥ M] sampling points, which is precisely
    the cost the sparse methods avoid. All M coefficients come out
    (generically) non-zero. *)

val fit : ?method_:Linalg.Lstsq.method_ -> Linalg.Mat.t -> Linalg.Vec.t -> Model.t
(** [fit g f] is the dense least-squares model. Default method is QR
    (numerically robust); [~method_:Normal] solves the normal equations
    — faster for very tall systems, as used in the cost benches.
    @raise Invalid_argument when [K < M] (the system is underdetermined
    and LS is not applicable — use OMP/LAR/STAR). *)

val min_samples : Linalg.Mat.t -> int
(** The number of samples LS needs for this design: its column count. *)
