open Linalg

type report = {
  replicates : int;
  frequencies : (int * float) array;
  mean_nnz : float;
  coeff_mean : (int * float) array;
  coeff_std : (int * float) array;
}

let run ?(replicates = 50) ?lambda rng g f =
  if replicates <= 0 then invalid_arg "Bootstrap.run: replicates must be positive";
  let k = Mat.rows g in
  if Array.length f <> k then invalid_arg "Bootstrap.run: response length mismatch";
  let lambda =
    match lambda with
    | Some l -> l
    | None ->
        let probe = Omp.fit g f ~lambda:(max 1 (min (k / 4) 100)) in
        max 1 (Model.nnz probe)
  in
  let counts = Hashtbl.create 64 in
  let sums = Hashtbl.create 64 in
  let sq_sums = Hashtbl.create 64 in
  let bump tbl j v =
    let cur = try Hashtbl.find tbl j with Not_found -> 0. in
    Hashtbl.replace tbl j (cur +. v)
  in
  let total_nnz = ref 0 in
  for _ = 1 to replicates do
    (* Resample rows with replacement. *)
    let idx = Array.init k (fun _ -> Randkit.Prng.int rng k) in
    let g_b = Mat.select_rows g idx in
    let f_b = Array.map (fun i -> f.(i)) idx in
    let lambda_b = min lambda (min (Mat.rows g_b) (Mat.cols g_b)) in
    let model = Omp.fit g_b f_b ~lambda:lambda_b in
    total_nnz := !total_nnz + Model.nnz model;
    Array.iteri
      (fun p j ->
        bump counts j 1.;
        bump sums j model.Model.coeffs.(p);
        bump sq_sums j (model.Model.coeffs.(p) *. model.Model.coeffs.(p)))
      model.Model.support
  done;
  let entries =
    Hashtbl.fold
      (fun j c acc ->
        let s = Hashtbl.find sums j and ss = Hashtbl.find sq_sums j in
        let mean = s /. c in
        let var = Float.max 0. ((ss /. c) -. (mean *. mean)) in
        (j, c /. float_of_int replicates, mean, sqrt var) :: acc)
      counts []
    |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a)
    |> Array.of_list
  in
  {
    replicates;
    frequencies = Array.map (fun (j, fr, _, _) -> (j, fr)) entries;
    mean_nnz = float_of_int !total_nnz /. float_of_int replicates;
    coeff_mean = Array.map (fun (j, _, m, _) -> (j, m)) entries;
    coeff_std = Array.map (fun (j, _, _, s) -> (j, s)) entries;
  }

let stable_support ?(threshold = 0.8) report =
  let out =
    Array.to_list report.frequencies
    |> List.filter_map (fun (j, fr) -> if fr >= threshold then Some j else None)
    |> Array.of_list
  in
  Array.sort compare out;
  out
