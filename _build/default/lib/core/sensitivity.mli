(** Global variance decomposition of fitted models.

    Because the dictionary is orthonormal under the sampling measure
    (eq. (2)), a fitted model [f ≈ Σ α_m·g_m] has closed-form Sobol-style
    variance structure: [Var f = Σ_{m ≠ const} α_m²], and the share of
    any input factor is the sum of [α_m²] over the terms that involve
    it. This turns a sparse RSM directly into a variation-source
    ranking — the designer-facing payoff of the paper's models (e.g.
    "offset is dominated by the input-pair mismatch"). *)

val total_variance : Model.t -> Polybasis.Basis.t -> float
(** Model variance under the standard-normal factor distribution:
    [Σ α_m²] over non-constant terms.
    @raise Invalid_argument when the basis size disagrees with the
    model. *)

val mean : Model.t -> Polybasis.Basis.t -> float
(** Model mean: the constant term's coefficient (0 if unselected). *)

val factor_shares : Model.t -> Polybasis.Basis.t -> Linalg.Vec.t
(** [factor_shares m b] has one entry per input factor: the fraction of
    model variance carried by terms involving that factor (total-effect
    index). Interaction terms count toward every participating factor,
    so the entries can sum to more than 1. Zero vector when the model
    has no variance. *)

val main_effect_shares : Model.t -> Polybasis.Basis.t -> Linalg.Vec.t
(** Like {!factor_shares} but counting only the univariate terms of each
    factor (first-order Sobol indices); entries sum to ≤ 1, with the
    deficit being the interaction share. *)

val interaction_share : Model.t -> Polybasis.Basis.t -> float
(** Fraction of model variance in terms touching ≥ 2 factors. *)

val top_factors : ?n:int -> Model.t -> Polybasis.Basis.t -> (int * float) array
(** The [n] (default 10) largest total-effect factors as
    [(factor, share)], sorted by decreasing share; factors with zero
    share are omitted. *)
