(** Cross-validated choice of the sparsity level λ (Section IV-C).

    For each fold, the solver's whole path (λ = 1 … max_lambda) is fit
    on the training groups and scored on the held-out group, giving the
    per-run error {e}function{i} ε_q(λ); the averaged curve ε(λ) is
    minimized over λ and the winning λ is refit on the full data — the
    exact procedure of Fig. 2 and the surrounding text. *)

type rule =
  | Min_error  (** λ at the minimum of ε(λ) — the paper's choice *)
  | One_se
      (** the smallest λ whose ε(λ) is within one fold-to-fold standard
          error of the minimum — the classic parsimony-biased variant
          (Hastie et al. §7.10); picks visibly sparser models when the
          CV curve has a flat valley *)

type result = {
  model : Model.t;  (** refit on all data at the chosen λ *)
  lambda : int;  (** chosen sparsity level (1-based) *)
  curve : float array;  (** ε(λ) for λ = 1 … max_lambda *)
}

val omp :
  ?folds:int -> ?rule:rule -> Randkit.Prng.t -> max_lambda:int ->
  Linalg.Mat.t -> Linalg.Vec.t -> result
(** Default [folds = 4] (the paper's Fig. 2 setting) and
    [rule = Min_error]. *)

val star :
  ?folds:int -> ?rule:rule -> Randkit.Prng.t -> max_lambda:int ->
  Linalg.Mat.t -> Linalg.Vec.t -> result

val lars :
  ?folds:int -> ?rule:rule -> ?mode:Lars.mode -> Randkit.Prng.t ->
  max_lambda:int -> Linalg.Mat.t -> Linalg.Vec.t -> result

val generic :
  ?folds:int -> ?rule:rule -> Randkit.Prng.t -> max_lambda:int ->
  path_models:(Linalg.Mat.t -> Linalg.Vec.t -> max_lambda:int -> Model.t array) ->
  Linalg.Mat.t -> Linalg.Vec.t -> result
(** The underlying driver: [path_models] maps a training design/response
    to the per-λ models (an array shorter than [max_lambda] is padded by
    repeating its last model — an early-stopped path keeps its final
    error for larger λ). Exposed for user-supplied solvers.
    @raise Invalid_argument if a fold produces an empty path. *)
