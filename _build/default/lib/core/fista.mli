(** FISTA — fast iterative shrinkage-thresholding (Beck & Teboulle 2009)
    — a third route to the lasso, as an extension and a cross-check.

    Minimizes [½‖G·α − F‖₂² + reg·‖α‖₁] by accelerated proximal
    gradient: gradient steps of size [1/L] (L the largest eigenvalue of
    [GᵀG], estimated by power iteration) followed by soft-thresholding,
    with Nesterov momentum. Converges at O(1/k²) versus coordinate
    descent's problem-dependent rate; because both solve the same
    strictly convex-in-the-fit program, their solutions must agree —
    which the test suite checks, giving three mutually-verifying lasso
    implementations (lasso-LARS, CD, FISTA). *)

val lipschitz : ?iters:int -> Linalg.Mat.t -> float
(** Largest eigenvalue of [GᵀG] by power iteration ([iters] default 50)
    — the gradient Lipschitz constant. *)

val fit :
  ?max_iters:int -> ?tol:float -> Linalg.Mat.t -> Linalg.Vec.t ->
  reg:float -> Model.t
(** [fit g f ~reg] runs until the relative change of the objective
    falls below [tol] (default 1e-10) or [max_iters] (default 2000).
    @raise Invalid_argument when [reg < 0]. *)

val objective : Linalg.Mat.t -> Linalg.Vec.t -> reg:float -> Model.t -> float
(** The lasso objective value of a model — for convergence checks. *)
