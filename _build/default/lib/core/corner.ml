open Linalg

type extremum = { value : float; corner : Vec.t }

let linear_coeffs model basis =
  let n = Polybasis.Basis.dim basis in
  let alpha0 = ref 0. in
  let lin = Array.make n 0. in
  Array.iteri
    (fun p j ->
      let term = Polybasis.Basis.term basis j in
      match Polybasis.Term.total_degree term with
      | 0 -> alpha0 := !alpha0 +. model.Model.coeffs.(p)
      | 1 ->
          let v = List.hd (Polybasis.Term.vars term) in
          lin.(v) <- lin.(v) +. model.Model.coeffs.(p)
      | _ -> invalid_arg "Corner.linear_worst: model has nonlinear terms")
    model.Model.support;
  (!alpha0, lin)

let linear_worst model basis ~sigma ~maximize =
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Corner: basis size disagrees with model";
  if sigma < 0. then invalid_arg "Corner.linear_worst: negative sigma";
  let alpha0, lin = linear_coeffs model basis in
  let norm = Vec.nrm2 lin in
  if norm = 0. then { value = alpha0; corner = Vec.create (Array.length lin) }
  else begin
    let sign = if maximize then 1. else -1. in
    let corner = Array.map (fun a -> sign *. sigma *. a /. norm) lin in
    { value = alpha0 +. (sign *. sigma *. norm); corner }
  end

let project_to_sphere sigma v =
  let n = Vec.nrm2 v in
  if n = 0. then v else Vec.smul (sigma /. n) v

let search_worst ?(iters = 200) ?step model basis ~sigma ~maximize rng =
  if Polybasis.Basis.size basis <> model.Model.basis_size then
    invalid_arg "Corner: basis size disagrees with model";
  if sigma < 0. then invalid_arg "Corner.search_worst: negative sigma";
  let n = Polybasis.Basis.dim basis in
  let step = match step with Some s -> s | None -> 0.05 *. sigma in
  let sign = if maximize then 1. else -1. in
  let eval dy = sign *. Model.predict_point model basis dy in
  (* Only factors appearing in the support can change the prediction. *)
  let relevant = Array.make n false in
  Array.iter
    (fun j ->
      List.iter
        (fun v -> relevant.(v) <- true)
        (Polybasis.Term.vars (Polybasis.Basis.term basis j)))
    model.Model.support;
  let ascend start =
    let x = ref (project_to_sphere sigma (Vec.copy start)) in
    let fx = ref (eval !x) in
    let h = 1e-5 *. Float.max sigma 1. in
    for _ = 1 to iters do
      (* Finite-difference gradient on the relevant coordinates. *)
      let grad = Array.make n 0. in
      for v = 0 to n - 1 do
        if relevant.(v) then begin
          let save = !x.(v) in
          !x.(v) <- save +. h;
          let fp = eval !x in
          !x.(v) <- save -. h;
          let fm = eval !x in
          !x.(v) <- save;
          grad.(v) <- (fp -. fm) /. (2. *. h)
        end
      done;
      let gn = Vec.nrm2 grad in
      if gn > 0. then begin
        let cand = Vec.copy !x in
        Vec.axpy (step /. gn) grad cand;
        let cand = project_to_sphere sigma cand in
        let fc = eval cand in
        if fc > !fx then begin
          x := cand;
          fx := fc
        end
      end
    done;
    (!fx, !x)
  in
  (* Multi-start: the linear corner plus random sphere points. *)
  let lin_start =
    match linear_worst model basis ~sigma ~maximize with
    | e -> e.corner
    | exception Invalid_argument _ ->
        (* Nonlinear model: start from the linear part alone. *)
        let start = Array.make n 0. in
        Array.iteri
          (fun p j ->
            let term = Polybasis.Basis.term basis j in
            if Polybasis.Term.total_degree term = 1 then
              let v = List.hd (Polybasis.Term.vars term) in
              start.(v) <- sign *. model.Model.coeffs.(p))
          model.Model.support;
        project_to_sphere sigma start
  in
  let starts =
    lin_start
    :: List.init 3 (fun _ ->
           let v = Randkit.Gaussian.vector rng n in
           (* Zero the irrelevant coordinates so the start lies in the
              subspace that matters. *)
           Array.iteri (fun i r -> if not r then v.(i) <- 0.) relevant;
           project_to_sphere sigma v)
  in
  let best =
    List.fold_left
      (fun acc s ->
        let fx, x = ascend s in
        match acc with
        | Some (bf, _) when bf >= fx -> acc
        | _ -> Some (fx, x))
      None starts
  in
  match best with
  | Some (fx, x) -> { value = sign *. fx; corner = x }
  | None -> { value = 0.; corner = Vec.create n }
