let to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "rsm-model 1\n";
  Buffer.add_string buf (Printf.sprintf "basis_size %d\n" m.Model.basis_size);
  Buffer.add_string buf (Printf.sprintf "nnz %d\n" (Model.nnz m));
  Array.iteri
    (fun p j ->
      Buffer.add_string buf (Printf.sprintf "%d %.17g\n" j m.Model.coeffs.(p)))
    m.Model.support;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | header :: rest when String.trim header = "rsm-model 1" -> (
      let parse_field name line =
        match String.split_on_char ' ' line with
        | [ key; v ] when key = name -> int_of_string_opt v
        | _ -> None
      in
      match rest with
      | size_line :: nnz_line :: coeff_lines -> (
          match
            (parse_field "basis_size" size_line, parse_field "nnz" nnz_line)
          with
          | Some basis_size, Some nnz ->
              if basis_size < 0 then Error "negative basis_size"
              else if List.length coeff_lines <> nnz then
                Error
                  (Printf.sprintf "expected %d coefficient lines, found %d" nnz
                     (List.length coeff_lines))
              else begin
                let parsed =
                  List.map
                    (fun line ->
                      match String.split_on_char ' ' line with
                      | [ idx; value ] -> (
                          match
                            (int_of_string_opt idx, float_of_string_opt value)
                          with
                          | Some i, Some v -> Ok (i, v)
                          | _ -> Error ("malformed coefficient line: " ^ line))
                      | _ -> Error ("malformed coefficient line: " ^ line))
                    coeff_lines
                in
                let rec collect acc = function
                  | [] -> Ok (List.rev acc)
                  | Ok x :: tl -> collect (x :: acc) tl
                  | Error e :: _ -> Error e
                in
                match collect [] parsed with
                | Error e -> Error e
                | Ok pairs -> (
                    let support = Array.of_list (List.map fst pairs) in
                    let coeffs = Array.of_list (List.map snd pairs) in
                    match Model.make ~basis_size ~support ~coeffs with
                    | m -> Ok m
                    | exception Invalid_argument e -> Error e)
              end
          | _ -> Error "missing basis_size or nnz header field")
      | _ -> Error "truncated header")
  | first :: _ -> Error ("unrecognized header: " ^ first)
  | [] -> Error "empty input"

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))

let term_expression t =
  if Array.length t = 0 then ""
  else
    String.concat "*"
      (Array.to_list
         (Array.map
            (fun (v, d) ->
              match d with
              | 1 -> Printf.sprintf "y%d" v
              | 2 -> Printf.sprintf "((y%d^2 - 1)/sqrt2)" v
              | 3 -> Printf.sprintf "((y%d^3 - 3*y%d)/sqrt6)" v v
              | _ -> Printf.sprintf "He%d(y%d)" d v)
            t))

let to_expression m basis =
  if Polybasis.Basis.size basis <> m.Model.basis_size then
    invalid_arg "Serialize.to_expression: basis size disagrees with model";
  if Model.nnz m = 0 then "f = 0"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "f =";
    Array.iteri
      (fun p j ->
        let c = m.Model.coeffs.(p) in
        let term = Polybasis.Basis.term basis j in
        let sign = if c >= 0. then (if p = 0 then " " else " + ") else " - " in
        Buffer.add_string buf sign;
        Buffer.add_string buf (Printf.sprintf "%.6g" (Float.abs c));
        let e = term_expression term in
        if e <> "" then begin
          Buffer.add_char buf '*';
          Buffer.add_string buf e
        end)
      m.Model.support;
    Buffer.contents buf
  end

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          of_string s)
