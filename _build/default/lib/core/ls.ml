open Linalg

let fit ?method_ g f =
  if Mat.rows g < Mat.cols g then
    invalid_arg
      "Ls.fit: fewer samples than coefficients; least-squares fitting needs \
       an over-determined system (use Omp/Lars/Star for the underdetermined \
       case)";
  let alpha = Lstsq.solve ?method_ g f in
  Model.dense ~basis_size:(Mat.cols g) alpha

let min_samples g = Mat.cols g
