open Linalg

let soft_threshold x t =
  if x > t then x -. t else if x < -.t then x +. t else 0.

let max_reg g f =
  let m = Mat.cols g in
  let best = ref 0. in
  for j = 0 to m - 1 do
    best := Float.max !best (Float.abs (Mat.col_dot g j f))
  done;
  !best

(* One problem solved from a warm start [alpha]; mutates and returns it. *)
let solve_inplace ~max_sweeps ~tol g f ~reg alpha =
  let k = Mat.rows g and m = Mat.cols g in
  let col_sq = Array.make m 0. in
  for j = 0 to m - 1 do
    let acc = ref 0. in
    for i = 0 to k - 1 do
      let v = Mat.unsafe_get g i j in
      acc := !acc +. (v *. v)
    done;
    col_sq.(j) <- !acc
  done;
  (* Residual for the warm start. *)
  let res = Array.copy f in
  for j = 0 to m - 1 do
    let a = alpha.(j) in
    if a <> 0. then
      for i = 0 to k - 1 do
        res.(i) <- res.(i) -. (a *. Mat.unsafe_get g i j)
      done
  done;
  let sweep = ref 0 and converged = ref false in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    let max_change = ref 0. and max_coef = ref 0. in
    for j = 0 to m - 1 do
      if col_sq.(j) > 0. then begin
        let old_a = alpha.(j) in
        (* Partial residual correlation: G_jᵀ·res + ‖G_j‖²·α_j. *)
        let rho = Mat.col_dot g j res +. (col_sq.(j) *. old_a) in
        let new_a = soft_threshold rho reg /. col_sq.(j) in
        if new_a <> old_a then begin
          let delta = new_a -. old_a in
          for i = 0 to k - 1 do
            res.(i) <- res.(i) -. (delta *. Mat.unsafe_get g i j)
          done;
          alpha.(j) <- new_a;
          max_change := Float.max !max_change (Float.abs delta)
        end;
        max_coef := Float.max !max_coef (Float.abs new_a)
      end
    done;
    if !max_change <= tol *. Float.max !max_coef 1e-12 then converged := true
  done;
  alpha

let fit ?(max_sweeps = 1000) ?(tol = 1e-8) g f ~reg =
  if reg < 0. then invalid_arg "Lasso_cd.fit: negative penalty";
  if Array.length f <> Mat.rows g then
    invalid_arg "Lasso_cd.fit: response length mismatch";
  let alpha =
    solve_inplace ~max_sweeps ~tol g f ~reg (Array.make (Mat.cols g) 0.)
  in
  Model.dense ~basis_size:(Mat.cols g) alpha

let path ?(max_sweeps = 1000) ?(tol = 1e-8) g f ~regs =
  if Array.length f <> Mat.rows g then
    invalid_arg "Lasso_cd.path: response length mismatch";
  let alpha = Array.make (Mat.cols g) 0. in
  Array.map
    (fun reg ->
      if reg < 0. then invalid_arg "Lasso_cd.path: negative penalty";
      let a = solve_inplace ~max_sweeps ~tol g f ~reg alpha in
      Model.dense ~basis_size:(Mat.cols g) (Array.copy a))
    regs
