open Linalg

type solution = { model : Model.t; residual_norm : float; subsets_tried : int }

let count_subsets ~m ~lambda =
  if lambda < 0 || lambda > m then 0
  else begin
    let acc = ref 1. in
    for i = 0 to lambda - 1 do
      acc := !acc *. float_of_int (m - i) /. float_of_int (i + 1)
    done;
    if !acc >= float_of_int max_int then max_int
    else int_of_float (Float.round !acc)
  end

let solve ?(max_subsets = 2_000_000) g f ~lambda =
  let k = Mat.rows g and m = Mat.cols g in
  if Array.length f <> k then invalid_arg "L0_exact.solve: response length mismatch";
  if lambda <= 0 then invalid_arg "L0_exact.solve: lambda must be positive";
  let s = min lambda (min k m) in
  let n_subsets = count_subsets ~m ~lambda:s in
  if n_subsets > max_subsets then
    invalid_arg
      (Printf.sprintf
         "L0_exact.solve: C(%d, %d) = %d subsets exceeds the cap %d" m s
         n_subsets max_subsets);
  let best_res = ref Float.infinity in
  let best_support = ref [||] and best_coeffs = ref [||] in
  let tried = ref 0 in
  let subset = Array.make s 0 in
  (* Enumerate increasing index tuples recursively. *)
  let rec go pos lo =
    if pos = s then begin
      incr tried;
      match Lstsq.solve_subset g subset f with
      | coeffs ->
          let res = Vec.nrm2 (Lstsq.residual_subset g subset coeffs f) in
          if res < !best_res then begin
            best_res := res;
            best_support := Array.copy subset;
            best_coeffs := coeffs
          end
      | exception Cholesky.Not_positive_definite _ -> ()
    end
    else
      for j = lo to m - (s - pos) do
        subset.(pos) <- j;
        go (pos + 1) (j + 1)
      done
  in
  go 0 0;
  if !best_support = [||] && s > 0 && !tried > 0 && !best_res = Float.infinity
  then
    (* Every subset was singular: return the empty model. *)
    {
      model = Model.make ~basis_size:m ~support:[||] ~coeffs:[||];
      residual_norm = Vec.nrm2 f;
      subsets_tried = !tried;
    }
  else
    {
      model = Model.make ~basis_size:m ~support:!best_support ~coeffs:!best_coeffs;
      residual_norm = !best_res;
      subsets_tried = !tried;
    }
