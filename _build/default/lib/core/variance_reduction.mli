(** Model-assisted variance reduction for simulator Monte Carlo.

    Two classic estimators that use a fitted RSM to squeeze more
    accuracy out of a fixed transistor-level simulation budget — the
    natural second life of the paper's models.

    {b Control variates}: estimate [E f_sim] as
    [mean(f_sim − f_model) + E f_model], where [E f_model] is known in
    closed form (Hermite models: the constant coefficient). The
    corrected estimator's variance shrinks by [1 − ρ²] with ρ the
    model/simulator correlation — a 4%-error model cuts the needed
    simulations by ~600×.

    {b Importance sampling}: estimate a far-tail failure probability
    [P(f_sim > t)] by drawing factors from a mean-shifted Gaussian
    centered on the model's worst-case direction and re-weighting by
    the likelihood ratio — the standard "high-sigma" technique for SRAM
    failure rates that plain MC cannot reach. *)

type cv_estimate = {
  mean : float;  (** control-variate estimate of [E f_sim] *)
  plain_mean : float;  (** plain MC estimate from the same runs *)
  std_error : float;  (** standard error of the CV estimate *)
  plain_std_error : float;
  variance_reduction : float;
      (** plain variance / CV variance (≥ 1 when the model helps) *)
}

val control_variate_mean :
  ?samples:int -> (Linalg.Vec.t -> float) -> Model.t -> Polybasis.Basis.t ->
  Randkit.Prng.t -> cv_estimate
(** [control_variate_mean sim_eval model basis rng] runs [samples]
    (default 500) simulator evaluations at fresh standard-normal factor
    draws and applies the control-variate correction.
    @raise Invalid_argument on non-positive sample counts or a basis
    mismatch. *)

type is_estimate = {
  probability : float;  (** importance-sampled P(f > threshold) *)
  std_error : float;
  shift_norm : float;  (** ‖mean shift‖₂ used for the proposal *)
  effective_samples : float;  (** 1/Σwᵢ² (normalized) — proposal quality *)
}

val importance_sampling_tail :
  ?samples:int -> (Linalg.Vec.t -> float) -> Model.t -> Polybasis.Basis.t ->
  Randkit.Prng.t -> threshold:float -> is_estimate
(** [importance_sampling_tail sim_eval model basis rng ~threshold]
    estimates [P(f_sim > threshold)]. The proposal is a standard
    Gaussian shifted along the model's linear-coefficient direction to
    put the threshold at the proposal mean (capped at 6σ). Weights are
    exact Gaussian likelihood ratios. Requires a model with a linear
    part; @raise Invalid_argument otherwise. *)
