type round = { samples : int; cv_error : float; lambda : int; model : Model.t }

type result = { rounds : round array; final : Model.t; converged : bool }

let run ?(initial = 50) ?(growth = 2.0) ?(tol = 0.05) ?(patience = 1)
    ?(max_lambda = 100) ?(folds = 4) ~max_samples ~sample rng =
  if initial <= 0 then invalid_arg "Incremental.run: initial must be positive";
  if growth <= 1. then invalid_arg "Incremental.run: growth must exceed 1";
  if initial > max_samples then
    invalid_arg "Incremental.run: initial exceeds max_samples";
  if tol < 0. then invalid_arg "Incremental.run: negative tolerance";
  if patience <= 0 then invalid_arg "Incremental.run: patience must be positive";
  let rounds = ref [] in
  let still = ref patience in
  let converged = ref false in
  let k = ref initial in
  let finished = ref false in
  while not !finished do
    let g, f = sample !k in
    if Linalg.Mat.rows g <> !k || Array.length f <> !k then
      invalid_arg "Incremental.run: sample returned the wrong number of rows";
    let r =
      Select.omp ~folds (Randkit.Prng.split rng)
        ~max_lambda:(min max_lambda (max 1 (!k / folds * (folds - 1))))
        g f
    in
    let err = r.Select.curve.(r.Select.lambda - 1) in
    let this =
      { samples = !k; cv_error = err; lambda = r.Select.lambda; model = r.Select.model }
    in
    (match !rounds with
    | prev :: _ ->
        let improvement =
          if prev.cv_error <= 0. then 0.
          else (prev.cv_error -. err) /. prev.cv_error
        in
        if improvement < tol then decr still else still := patience
    | [] -> ());
    rounds := this :: !rounds;
    if !still <= 0 then begin
      converged := true;
      finished := true
    end
    else if !k >= max_samples then finished := true
    else k := min max_samples (int_of_float (ceil (float_of_int !k *. growth)))
  done;
  let rounds = Array.of_list (List.rev !rounds) in
  {
    rounds;
    final = rounds.(Array.length rounds - 1).model;
    converged = !converged;
  }
