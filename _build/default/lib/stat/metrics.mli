(** Model-accuracy metrics.

    The paper reports "modeling error" as a percentage measured on an
    independent testing set (e.g. 4.09% for OMP on the SRAM read path).
    Following the convention of Li's RSM papers, [relative_rms] is the
    primary metric: the RMS prediction error normalized by the RMS of
    the true performance *variation* (standard deviation), so a model
    predicting only the mean scores 100%. *)

val rmse : pred:float array -> truth:float array -> float
(** Root-mean-square error. *)

val mae : pred:float array -> truth:float array -> float
(** Mean absolute error. *)

val relative_rms : pred:float array -> truth:float array -> float
(** [‖pred − truth‖₂ / ‖truth − mean(truth)‖₂]: the paper's modeling
    error. Returns [nan] when the truth is constant. *)

val max_abs_error : pred:float array -> truth:float array -> float

val r_squared : pred:float array -> truth:float array -> float
(** Coefficient of determination [1 − SSE/SST]. *)

val mape : pred:float array -> truth:float array -> float
(** Mean absolute percentage error, skipping entries where
    [truth = 0]. *)
