(** Fixed-width histograms with a terminal renderer.

    Used by the examples and the benchmark harness to show performance
    distributions (model Monte Carlo vs simulator Monte Carlo) without a
    plotting stack. *)

type t = {
  lo : float;
  hi : float;
  counts : int array;
  total : int;
  n_underflow : int;
  n_overflow : int;
}

val create : ?bins:int -> ?range:float * float -> float array -> t
(** [create xs] bins the data into [bins] (default 30) equal-width bins.
    The range defaults to the data min/max (degenerate data gets a unit
    window around the value); out-of-range points are counted in the
    under/overflow fields.
    @raise Invalid_argument on empty data, non-positive bin count or an
    empty range. *)

val bin_centers : t -> float array

val densities : t -> float array
(** Counts normalized to integrate to 1 over the histogram range. *)

val mode_bin : t -> int
(** Index of the fullest bin (first on ties). *)

val render : ?width:int -> t -> string
(** Multi-line ASCII rendering, one row per bin. *)

val chi2_distance : t -> t -> float
(** Symmetric χ² distance between two histograms over the same binning:
    [Σ (p_i − q_i)²/(p_i + q_i)] on normalized bin masses (0 = equal).
    @raise Invalid_argument when the binnings differ. *)
