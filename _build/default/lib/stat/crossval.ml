type plan = { folds : int; assignment : int array }

let make_plan g ~n ~folds =
  { folds; assignment = Randkit.Sampling.fold_assignment g ~n ~folds }

let fold_indices plan q =
  if q < 0 || q >= plan.folds then invalid_arg "Crossval.fold_indices: bad fold";
  Randkit.Sampling.fold_split plan.assignment q

let run plan ~fit ~error =
  let total = ref 0. in
  for q = 0 to plan.folds - 1 do
    let train, held_out = fold_indices plan q in
    let model = fit ~train in
    total := !total +. error model ~held_out
  done;
  !total /. float_of_int plan.folds

let run_curves plan ~fit_curve =
  let acc = ref [||] in
  for q = 0 to plan.folds - 1 do
    let train, held_out = fold_indices plan q in
    let curve = fit_curve ~train ~held_out in
    if q = 0 then acc := Array.map (fun e -> e /. float_of_int plan.folds) curve
    else begin
      if Array.length curve <> Array.length !acc then
        invalid_arg "Crossval.run_curves: runs returned curves of different lengths";
      Array.iteri
        (fun i e -> !acc.(i) <- !acc.(i) +. (e /. float_of_int plan.folds))
        curve
    end
  done;
  !acc

let argmin curve =
  if Array.length curve = 0 then invalid_arg "Crossval.argmin: empty curve";
  let best = ref 0 and best_v = ref Float.infinity in
  Array.iteri
    (fun i v ->
      if (not (Float.is_nan v)) && v < !best_v then begin
        best := i;
        best_v := v
      end)
    curve;
  !best
