(** Descriptive statistics over float arrays.

    Variance uses Welford's single-pass algorithm; quantiles use linear
    interpolation (type-7, the R default). All functions raise
    [Invalid_argument] on empty input. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (divides by [n − 1]); 0 for singletons. *)

val std : float array -> float

val min_max : float array -> float * float

val quantile : float array -> float -> float
(** [quantile xs p] for [p ∈ [0,1]], linear interpolation between order
    statistics. The input is not modified (a sorted copy is taken). *)

val median : float array -> float

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length series. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either series is constant. *)

val covariance_matrix : Linalg.Mat.t -> Linalg.Mat.t
(** [covariance_matrix d] for data rows: the [p×p] unbiased sample
    covariance of the columns of the [n×p] matrix [d].
    @raise Invalid_argument when [n < 2]. *)

val standardize : float array -> float array
(** [(x − mean)/std]; returns zeros if the series is constant. *)
