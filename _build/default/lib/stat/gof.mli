(** Goodness-of-fit: Kolmogorov–Smirnov distances.

    Used to answer "does the model's output distribution match the
    simulator's?" more sharply than a binned χ² — the validation step
    behind trusting model Monte Carlo for yield. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample KS statistic: the sup-distance between the empirical
    CDFs. In [[0, 1]]; 0 for identical samples.
    @raise Invalid_argument on empty input. *)

val ks_normal : mean:float -> sigma:float -> float array -> float
(** One-sample KS distance to N(mean, sigma²).
    @raise Invalid_argument when [sigma <= 0] or the data is empty. *)

val ks_critical : alpha:float -> n1:int -> n2:int -> float
(** Asymptotic two-sample critical value
    [c(α)·√((n₁+n₂)/(n₁·n₂))] with [c(α) = √(−ln(α/2)/2)] — reject
    equality when the statistic exceeds it.
    @raise Invalid_argument when [alpha] outside (0, 1). *)
