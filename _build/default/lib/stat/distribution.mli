(** The standard normal distribution (pdf / cdf / quantile) and
    Gaussian-model helpers.

    Once a response-surface model is fitted, performance distributions
    and parametric yield are evaluated analytically or by cheap model
    Monte Carlo (the use case motivating RSM in the paper's
    introduction, and the APEX line of work it cites as [8]). These are
    the numerical primitives for that. *)

val pdf : float -> float
(** Standard normal density φ(x). *)

val cdf : float -> float
(** Standard normal distribution function Φ(x), via a Chebyshev-fit
    [erfc]; relative error below 1.2e-7. *)

val quantile : float -> float
(** Inverse of {!cdf} (Acklam's rational approximation with one Newton
    polish step; relative error < 1e-9).
    @raise Invalid_argument outside (0, 1). *)

val cdf_mean_sigma : mean:float -> sigma:float -> float -> float
(** Φ((x − mean)/sigma).
    @raise Invalid_argument when [sigma <= 0]. *)

val gaussian_yield : mean:float -> sigma:float -> lower:float -> upper:float -> float
(** P(lower ≤ X ≤ upper) for X ~ N(mean, sigma²). Use
    [neg_infinity]/[infinity] for one-sided specs. *)

val sigma_to_yield : float -> float
(** [sigma_to_yield k] = P(|Z| ≤ k): the two-sided "k-sigma" yield
    (e.g. 3 → 99.73%). *)
