open Linalg

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let mean xs =
  check_nonempty "mean" xs;
  Vec.mean xs

(* Welford's online algorithm: numerically stable single pass. *)
let mean_and_m2 xs =
  let mu = ref 0. and m2 = ref 0. in
  Array.iteri
    (fun i x ->
      let delta = x -. !mu in
      mu := !mu +. (delta /. float_of_int (i + 1));
      m2 := !m2 +. (delta *. (x -. !mu)))
    xs;
  (!mu, !m2)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let _, m2 = mean_and_m2 xs in
    m2 /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let quantile xs p =
  check_nonempty "quantile" xs;
  if p < 0. || p > 1. then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    let w = h -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let covariance xs ys =
  check_nonempty "covariance" xs;
  if Array.length xs <> Array.length ys then
    invalid_arg "Descriptive.covariance: length mismatch";
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0. || sy = 0. then 0. else covariance xs ys /. (sx *. sy)

let covariance_matrix d =
  let n = Mat.rows d and p = Mat.cols d in
  if n < 2 then invalid_arg "Descriptive.covariance_matrix: need at least 2 rows";
  let mu = Array.init p (fun j -> Vec.mean (Mat.col d j)) in
  let centered = Mat.init n p (fun i j -> Mat.unsafe_get d i j -. mu.(j)) in
  Mat.smul (1. /. float_of_int (n - 1)) (Mat.gram centered)

let standardize xs =
  let mu = mean xs and s = std xs in
  if s = 0. then Array.make (Array.length xs) 0.
  else Array.map (fun x -> (x -. mu) /. s) xs
