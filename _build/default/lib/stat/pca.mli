(** Principal component analysis.

    Section II of the paper: correlated jointly-normal process variations
    [ΔX] are whitened by PCA into independent standard-normal factors
    [ΔY]. A transform is built either from a known covariance (the
    foundry model, which is what the circuit substrate uses) or
    estimated from data rows.

    With [Σ = V·Λ·Vᵀ], the whitening map is [ΔY = Λ^{-1/2}·Vᵀ·ΔX] and
    its inverse is [ΔX = V·Λ^{1/2}·ΔY]. Components with eigenvalues
    below [truncate_below] (relative to the largest) are dropped, which
    is how the dimension of the independent factor space can be smaller
    than the raw parameter count. *)

type t

val of_covariance : ?truncate_below:float -> Linalg.Mat.t -> t
(** Build the transform from a covariance matrix (mean assumed zero).
    [truncate_below] is relative to the leading eigenvalue
    (default [1e-12]). Negative eigenvalues from numerical noise are
    treated as zero. *)

val of_data : ?truncate_below:float -> Linalg.Mat.t -> t
(** Estimate covariance from data rows, then build the transform. The
    estimated column means are recorded and subtracted by [whiten]. *)

val input_dim : t -> int
(** Dimension of the raw parameter space. *)

val output_dim : t -> int
(** Number of retained independent factors. *)

val eigenvalues : t -> Linalg.Vec.t
(** Retained eigenvalues, decreasing. *)

val whiten : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [whiten t dx] maps a raw variation vector to independent
    standard-normal factor scores. *)

val unwhiten : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [unwhiten t dy] maps factor scores back to the raw space (adds the
    recorded mean back when the transform came from data). *)

val explained_variance_ratio : t -> Linalg.Vec.t
(** Fraction of total variance captured by each retained component. *)
