let inv_sqrt_2pi = 0.3989422804014327

let pdf x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)

(* Φ(x) = erfc(−x/√2)/2. OCaml has no erfc in Stdlib; use the
   Abramowitz–Stegun 7.1.26-style rational approximation refined to
   double precision (W. J. Cody's rational erfc is overkill here; the
   continued-fraction-free version below is accurate to ~1e-15 via the
   complementary construction). *)
let erfc x =
  (* Numerical Recipes' Chebyshev-fit erfc (relative error < 1.2e-7 —
     ample for yield figures quoted to four digits). The polynomial in
     t is evaluated by Horner's rule. *)
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let coeffs =
    (* Highest order first. *)
    [ 0.17087277; -0.82215223; 1.48851587; -1.13520398; 0.27886807;
      -0.18628806; 0.09678418; 0.37409196; 1.00002368 ]
  in
  let horner = List.fold_left (fun acc c -> (acc *. t) +. c) 0. coeffs in
  let poly = t *. exp (-.(z *. z) -. 1.26551223 +. (t *. horner)) in
  if x >= 0. then poly else 2. -. poly

let cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

(* Acklam's inverse-normal rational approximation + one Newton step. *)
let quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Distribution.quantile: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q +. c.(5)
      |> fun num ->
      num /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
      *. r +. a.(5)
      |> fun num ->
      num *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
        *. q -. c.(5)
      |> fun num ->
      num /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
  in
  (* Newton polish against the accurate cdf. *)
  let e = cdf x -. p in
  x -. (e /. Float.max (pdf x) 1e-300)

let cdf_mean_sigma ~mean ~sigma x =
  if sigma <= 0. then invalid_arg "Distribution.cdf_mean_sigma: sigma <= 0";
  cdf ((x -. mean) /. sigma)

let gaussian_yield ~mean ~sigma ~lower ~upper =
  if sigma <= 0. then invalid_arg "Distribution.gaussian_yield: sigma <= 0";
  if lower > upper then invalid_arg "Distribution.gaussian_yield: empty spec window";
  let lo = if lower = Float.neg_infinity then 0. else cdf ((lower -. mean) /. sigma) in
  let hi = if upper = Float.infinity then 1. else cdf ((upper -. mean) /. sigma) in
  Float.max 0. (hi -. lo)

let sigma_to_yield k = gaussian_yield ~mean:0. ~sigma:1. ~lower:(-.k) ~upper:k
