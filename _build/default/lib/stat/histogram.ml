type t = {
  lo : float;
  hi : float;
  counts : int array;
  total : int;
  n_underflow : int;
  n_overflow : int;
}

let create ?(bins = 30) ?range xs =
  if Array.length xs = 0 then invalid_arg "Histogram.create: empty data";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  let lo, hi =
    match range with
    | Some (lo, hi) ->
        if hi <= lo then invalid_arg "Histogram.create: empty range";
        (lo, hi)
    | None ->
        let lo, hi = Descriptive.min_max xs in
        if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5)
  in
  let counts = Array.make bins 0 in
  let under = ref 0 and over = ref 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x < lo then incr under
      else if x > hi then incr over
      else begin
        let b = min (bins - 1) (int_of_float ((x -. lo) /. w)) in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  { lo; hi; counts; total = Array.length xs; n_underflow = !under; n_overflow = !over }

let bin_centers h =
  let bins = Array.length h.counts in
  let w = (h.hi -. h.lo) /. float_of_int bins in
  Array.init bins (fun i -> h.lo +. (w *. (float_of_int i +. 0.5)))

let densities h =
  let bins = Array.length h.counts in
  let w = (h.hi -. h.lo) /. float_of_int bins in
  let in_range = h.total - h.n_underflow - h.n_overflow in
  if in_range = 0 then Array.make bins 0.
  else
    Array.map (fun c -> float_of_int c /. (float_of_int in_range *. w)) h.counts

let mode_bin h =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > h.counts.(!best) then best := i) h.counts;
  !best

let render ?(width = 50) h =
  let buf = Buffer.create 1024 in
  let peak = Array.fold_left max 1 h.counts in
  let centers = bin_centers h in
  Array.iteri
    (fun i c ->
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "%12.4g | %-*s %d\n" centers.(i) width
           (String.make bar '#') c))
    h.counts;
  if h.n_underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "(underflow: %d)\n" h.n_underflow);
  if h.n_overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "(overflow: %d)\n" h.n_overflow);
  Buffer.contents buf

let chi2_distance a b =
  if Array.length a.counts <> Array.length b.counts || a.lo <> b.lo || a.hi <> b.hi
  then invalid_arg "Histogram.chi2_distance: binnings differ";
  let na = float_of_int (max a.total 1) and nb = float_of_int (max b.total 1) in
  let acc = ref 0. in
  Array.iteri
    (fun i ca ->
      let p = float_of_int ca /. na in
      let q = float_of_int b.counts.(i) /. nb in
      if p +. q > 0. then acc := !acc +. ((p -. q) ** 2. /. (p +. q)))
    a.counts;
  !acc
