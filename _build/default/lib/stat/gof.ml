let ks_two_sample a b =
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Gof.ks_two_sample: empty sample";
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort compare sa;
  Array.sort compare sb;
  let na = Array.length sa and nb = Array.length sb in
  let fa = float_of_int na and fb = float_of_int nb in
  (* Merge walk over both sorted samples tracking the CDF gap; ties are
     consumed from both sides before the gap is measured, so identical
     samples give distance 0. *)
  let i = ref 0 and j = ref 0 and d = ref 0. in
  while !i < na && !j < nb do
    let v = Float.min sa.(!i) sb.(!j) in
    while !i < na && sa.(!i) = v do
      incr i
    done;
    while !j < nb && sb.(!j) = v do
      incr j
    done;
    let cdf_a = float_of_int !i /. fa in
    let cdf_b = float_of_int !j /. fb in
    d := Float.max !d (Float.abs (cdf_a -. cdf_b))
  done;
  !d

let ks_normal ~mean ~sigma xs =
  if sigma <= 0. then invalid_arg "Gof.ks_normal: sigma <= 0";
  if Array.length xs = 0 then invalid_arg "Gof.ks_normal: empty sample";
  let s = Array.copy xs in
  Array.sort compare s;
  let n = Array.length s in
  let fn = float_of_int n in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = Distribution.cdf ((x -. mean) /. sigma) in
      (* Compare against the empirical CDF on both sides of the jump. *)
      d := Float.max !d (Float.abs (f -. (float_of_int i /. fn)));
      d := Float.max !d (Float.abs (f -. (float_of_int (i + 1) /. fn))))
    s;
  !d

let ks_critical ~alpha ~n1 ~n2 =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Gof.ks_critical: bad alpha";
  if n1 <= 0 || n2 <= 0 then invalid_arg "Gof.ks_critical: bad sample sizes";
  let c = sqrt (-.log (alpha /. 2.) /. 2.) in
  c *. sqrt (float_of_int (n1 + n2) /. float_of_int (n1 * n2))
