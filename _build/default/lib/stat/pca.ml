open Linalg

type t = {
  mean : Vec.t;  (* subtracted before whitening *)
  vectors : Mat.t;  (* n×r retained eigenvector columns *)
  values : Vec.t;  (* r retained eigenvalues, decreasing *)
  total_variance : float;  (* trace of the full covariance *)
}

let build ?(truncate_below = 1e-12) mean sigma =
  let { Eigen.values; vectors } = Eigen.symmetric sigma in
  let n = Mat.rows sigma in
  let lead = Float.max values.(0) 0. in
  let keep = ref 0 in
  for i = 0 to n - 1 do
    if values.(i) > truncate_below *. lead && values.(i) > 0. then incr keep
  done;
  let r = max 1 !keep in
  let total_variance =
    Array.fold_left (fun acc v -> acc +. Float.max v 0.) 0. values
  in
  {
    mean;
    vectors = Mat.init n r (fun i j -> Mat.unsafe_get vectors i j);
    values = Array.sub values 0 r;
    total_variance;
  }

let of_covariance ?truncate_below sigma =
  build ?truncate_below (Vec.create (Mat.rows sigma)) sigma

let of_data ?truncate_below d =
  let p = Mat.cols d in
  let mean = Array.init p (fun j -> Vec.mean (Mat.col d j)) in
  build ?truncate_below mean (Descriptive.covariance_matrix d)

let input_dim t = Mat.rows t.vectors

let output_dim t = Mat.cols t.vectors

let eigenvalues t = Vec.copy t.values

let whiten t dx =
  if Array.length dx <> input_dim t then
    invalid_arg "Pca.whiten: dimension mismatch";
  let centered = Vec.sub dx t.mean in
  let proj = Mat.tmulv t.vectors centered in
  Array.mapi (fun j v -> v /. sqrt t.values.(j)) proj

let unwhiten t dy =
  if Array.length dy <> output_dim t then
    invalid_arg "Pca.unwhiten: dimension mismatch";
  let scaled = Array.mapi (fun j v -> v *. sqrt t.values.(j)) dy in
  Vec.add (Mat.mulv t.vectors scaled) t.mean

let explained_variance_ratio t =
  if t.total_variance = 0. then Array.make (output_dim t) 0.
  else Array.map (fun v -> v /. t.total_variance) t.values
