let central_moment r xs =
  if Array.length xs = 0 then invalid_arg "Moments.central_moment: empty input";
  if r < 0 then invalid_arg "Moments.central_moment: negative order";
  if r = 0 then 1.
  else begin
    let mu = Descriptive.mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. mu) ** float_of_int r)) xs;
    !acc /. float_of_int (Array.length xs)
  end

let skewness xs =
  let m2 = central_moment 2 xs in
  if m2 = 0. then 0. else central_moment 3 xs /. (m2 ** 1.5)

let kurtosis_excess xs =
  let m2 = central_moment 2 xs in
  if m2 = 0. then 0. else (central_moment 4 xs /. (m2 *. m2)) -. 3.

let summary xs =
  let mu = Descriptive.mean xs in
  let m2 = ref 0. and m3 = ref 0. and m4 = ref 0. in
  Array.iter
    (fun x ->
      let d = x -. mu in
      let d2 = d *. d in
      m2 := !m2 +. d2;
      m3 := !m3 +. (d2 *. d);
      m4 := !m4 +. (d2 *. d2))
    xs;
  let n = float_of_int (Array.length xs) in
  let m2 = !m2 /. n and m3 = !m3 /. n and m4 = !m4 /. n in
  if m2 = 0. then (mu, 0., 0., 0.)
  else (mu, sqrt m2, m3 /. (m2 ** 1.5), (m4 /. (m2 *. m2)) -. 3.)

let cornish_fisher_quantile ~mean ~std ~skew ~kurt_excess p =
  if std < 0. then invalid_arg "Moments.cornish_fisher_quantile: negative std";
  let z = Distribution.quantile p in
  (* Third-order Cornish-Fisher expansion. *)
  let z2 = z *. z in
  let w =
    z
    +. (skew /. 6. *. (z2 -. 1.))
    +. (kurt_excess /. 24. *. z *. (z2 -. 3.))
    -. (skew *. skew /. 36. *. z *. ((2. *. z2) -. 5.))
  in
  mean +. (std *. w)

let jarque_bera xs =
  let n = float_of_int (Array.length xs) in
  let s = skewness xs and k = kurtosis_excess xs in
  n /. 6. *. ((s *. s) +. (k *. k /. 4.))
