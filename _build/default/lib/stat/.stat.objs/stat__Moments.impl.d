lib/stat/moments.ml: Array Descriptive Distribution
