lib/stat/gof.mli:
