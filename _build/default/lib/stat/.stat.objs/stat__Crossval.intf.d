lib/stat/crossval.mli: Randkit
