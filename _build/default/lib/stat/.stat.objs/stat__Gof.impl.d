lib/stat/gof.ml: Array Distribution Float
