lib/stat/descriptive.mli: Linalg
