lib/stat/histogram.mli:
