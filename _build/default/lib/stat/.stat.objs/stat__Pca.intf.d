lib/stat/pca.mli: Linalg
