lib/stat/distribution.mli:
