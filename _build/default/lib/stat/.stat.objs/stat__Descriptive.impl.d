lib/stat/descriptive.ml: Array Float Linalg Mat Vec
