lib/stat/histogram.ml: Array Buffer Descriptive Printf String
