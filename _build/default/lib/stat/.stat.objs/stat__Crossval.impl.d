lib/stat/crossval.ml: Array Float Randkit
