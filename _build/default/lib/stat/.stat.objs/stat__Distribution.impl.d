lib/stat/distribution.ml: Array Float List
