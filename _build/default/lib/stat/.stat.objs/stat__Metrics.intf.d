lib/stat/metrics.mli:
