lib/stat/metrics.ml: Array Descriptive Float
