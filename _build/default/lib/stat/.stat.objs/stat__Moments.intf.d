lib/stat/moments.mli:
