lib/stat/pca.ml: Array Descriptive Eigen Float Linalg Mat Vec
