let check pred truth =
  if Array.length pred <> Array.length truth then
    invalid_arg "Metrics: prediction/truth length mismatch";
  if Array.length pred = 0 then invalid_arg "Metrics: empty input"

let sse ~pred ~truth =
  let acc = ref 0. in
  for i = 0 to Array.length pred - 1 do
    let d = pred.(i) -. truth.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let rmse ~pred ~truth =
  check pred truth;
  sqrt (sse ~pred ~truth /. float_of_int (Array.length pred))

let mae ~pred ~truth =
  check pred truth;
  let acc = ref 0. in
  for i = 0 to Array.length pred - 1 do
    acc := !acc +. Float.abs (pred.(i) -. truth.(i))
  done;
  !acc /. float_of_int (Array.length pred)

let sst truth =
  let mu = Descriptive.mean truth in
  let acc = ref 0. in
  Array.iter
    (fun t ->
      let d = t -. mu in
      acc := !acc +. (d *. d))
    truth;
  !acc

let relative_rms ~pred ~truth =
  check pred truth;
  let denom = sst truth in
  if denom = 0. then Float.nan else sqrt (sse ~pred ~truth /. denom)

let max_abs_error ~pred ~truth =
  check pred truth;
  let acc = ref 0. in
  for i = 0 to Array.length pred - 1 do
    acc := Float.max !acc (Float.abs (pred.(i) -. truth.(i)))
  done;
  !acc

let r_squared ~pred ~truth =
  check pred truth;
  let denom = sst truth in
  if denom = 0. then Float.nan else 1. -. (sse ~pred ~truth /. denom)

let mape ~pred ~truth =
  check pred truth;
  let acc = ref 0. and n = ref 0 in
  for i = 0 to Array.length pred - 1 do
    if truth.(i) <> 0. then begin
      acc := !acc +. Float.abs ((pred.(i) -. truth.(i)) /. truth.(i));
      incr n
    end
  done;
  if !n = 0 then Float.nan else !acc /. float_of_int !n
