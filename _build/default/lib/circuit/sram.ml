open Linalg

(* Transistor roles inside a 6-T cell. *)
let cell_transistors = 6
let t_access = 0 (* pass gate on the read bitline *)
let t_pulldown = 1 (* driver of the read side *)
(* transistors 2..5: the other pass gate / driver and the two PMOS loads;
   they matter for stability, not for read delay, so they carry variables
   that should end up with near-zero model coefficients. *)

(* Peripheral transistor blocks appended after the cell array. *)
let n_sense = 6
let n_replica_inv = 6
let n_wl_driver = 4
let n_out_buffer = 4
let n_peripheral = n_sense + n_replica_inv + n_wl_driver + n_out_buffer

let paper_cells = 1180

type t = { process : Process.t; cells : int }

let build ?(cells = paper_cells) () =
  if cells < 10 then invalid_arg "Sram.build: need at least 10 cells";
  let spec =
    {
      Process.default_spec with
      n_global = 10;
      global_corr = 0.5;
      n_devices = (cells * cell_transistors) + n_peripheral;
      mismatch_vars_per_device = 3;
      n_parasitics = 0;
      (* SRAM cells are minimum-size: mismatch dominates inter-die. *)
      vth_sigma_global = 0.010;
      vth_sigma_local = 0.018;
      beta_sigma_rel = 0.02;
    }
  in
  { process = Process.build spec; cells }

let dim s = Process.dim s.process

let cells s = s.cells

let process s = s.process

let accessed_cell = 0

(* Three replica cells: the developed bitline differential at sense time
   is trip/3 ≈ 133 mV — a few sigma above the sense-amp offset, as a
   real self-timed design would size it. *)
let replica_cells = Array.init 3 (fun i -> i + 1)

(* Device index helpers. *)
let cell_device s c t =
  if c < 0 || c >= s.cells then invalid_arg "Sram: cell out of range";
  (c * cell_transistors) + t

let peripheral_device s i = (s.cells * cell_transistors) + i

let sense_device s i = peripheral_device s i
let replica_inv_device s i = peripheral_device s (n_sense + i)
let wl_driver_device s i = peripheral_device s (n_sense + n_replica_inv + i)
let out_buffer_device s i =
  peripheral_device s (n_sense + n_replica_inv + n_wl_driver + i)

(* Electrical constants. *)
let vdd = 1.0
let c_bitline = 120e-15 (* F *)
let c_wordline = 200e-15
let c_out = 40e-15
let dv_sense_nom = 0.12 (* bitline differential needed at sense time, V *)
let cell_w = 1.0 (* minimum-size cells *)
let periph_w = 4.0

let shift s dy d ~area = Process.device_shift s.process dy ~device:d ~area_factor:area

(* Effective discharge current of one cell: access and pull-down in
   series, each square-law; combine through the series conductance of
   the two overdrives. *)
let cell_current s dy c =
  let sa = shift s dy (cell_device s c t_access) ~area:cell_w in
  let sp = shift s dy (cell_device s c t_pulldown) ~area:cell_w in
  let beta0 = 0.4e-3 in
  let vth0 = 0.38 in
  let i_of sh =
    let vov = vdd -. (vth0 +. sh.Process.dvth) in
    if vov <= 0.05 then 0.05 (* clip: cell barely conducts *)
    else
      0.5 *. beta0
      *. (1. +. sh.Process.dbeta_rel)
      *. (1. -. sh.Process.dlen_rel)
      *. vov *. vov
  in
  let ia = i_of sa and ip = i_of sp in
  ia *. ip /. (ia +. ip)

(* Aggregate bitline leakage of the unaccessed cells: each contributes a
   tiny exponential-ish V_TH-dependent term. Linearized per cell and
   weighted ~1e-5 so the sum perturbs the delay by ≲0.3% — the near-zero
   coefficient background of Fig. 6. *)
let bitline_leakage s dy =
  let acc = ref 0. in
  for c = 0 to s.cells - 1 do
    if c <> accessed_cell then begin
      let sh = shift s dy (cell_device s c t_access) ~area:cell_w in
      (* Sub-threshold slope ~ exp(−ΔVth/nVt); keep the linear term. *)
      acc := !acc +. (1. -. (sh.Process.dvth /. 0.04))
    end
  done;
  1e-9 *. !acc (* amperes of total leakage, ~1 nA/cell nominal *)

(* Inverter-chain style delay for peripheral blocks: C·V / I_drive with
   each stage's current from its own device shifts. *)
let stage_delay s dy d ~c_load ~beta0 ~vth0 ~area =
  let sh = shift s dy d ~area in
  let vov = vdd -. (vth0 +. sh.Process.dvth) in
  let vov = Float.max vov 0.1 in
  let i =
    0.5 *. beta0
    *. (1. +. sh.Process.dbeta_rel)
    *. (1. -. sh.Process.dlen_rel)
    *. vov *. vov
  in
  c_load *. vdd /. i

let wl_driver_delay s dy =
  let acc = ref 0. in
  for i = 0 to n_wl_driver - 1 do
    acc :=
      !acc
      +. stage_delay s dy (wl_driver_device s i)
           ~c_load:(c_wordline /. float_of_int n_wl_driver)
           ~beta0:4e-3 ~vth0:0.35 ~area:periph_w
  done;
  !acc

let out_buffer_delay s dy =
  let acc = ref 0. in
  for i = 0 to n_out_buffer - 1 do
    acc :=
      !acc
      +. stage_delay s dy (out_buffer_device s i)
           ~c_load:(c_out /. float_of_int n_out_buffer)
           ~beta0:4e-3 ~vth0:0.35 ~area:periph_w
  done;
  !acc

(* Replica timer: a column of replica cells discharging a replica
   bitline, buffered by an inverter chain. Averaging over the replica
   cells makes each individual replica variable weaker than the accessed
   cell's but collectively significant — the self-timing loop of
   Fig. 5. *)
let replica_delay s dy =
  let i_rep =
    Array.fold_left (fun acc c -> acc +. cell_current s dy c) 0. replica_cells
  in
  (* Replica bitline (same capacitance as the real one) pulled down in
     parallel by all replica cells until the 0.4 V trip point. *)
  let t_discharge = c_bitline *. 0.4 /. i_rep in
  let t_inv = ref 0. in
  for i = 0 to n_replica_inv - 1 do
    t_inv :=
      !t_inv
      +. stage_delay s dy (replica_inv_device s i) ~c_load:10e-15 ~beta0:2e-3
           ~vth0:0.35 ~area:periph_w
  done;
  t_discharge +. !t_inv

(* Sense-amp input offset from its input-pair and load mismatch. *)
let sense_offset s dy =
  let s0 = shift s dy (sense_device s 0) ~area:8.0 in
  let s1 = shift s dy (sense_device s 1) ~area:8.0 in
  let s2 = shift s dy (sense_device s 2) ~area:8.0 in
  let s3 = shift s dy (sense_device s 3) ~area:8.0 in
  (s0.Process.dvth -. s1.Process.dvth)
  +. (0.4 *. (s2.Process.dvth -. s3.Process.dvth))
  +. (0.06 *. (s0.Process.dbeta_rel -. s1.Process.dbeta_rel))

(* Sense-amp regeneration time constant from its cross-coupled pair. *)
let sense_tau s dy =
  let s4 = shift s dy (sense_device s 4) ~area:8.0 in
  let s5 = shift s dy (sense_device s 5) ~area:8.0 in
  let gm_rel =
    1. +. (0.5 *. (s4.Process.dbeta_rel +. s5.Process.dbeta_rel))
    -. ((s4.Process.dvth +. s5.Process.dvth) /. (2. *. 0.25))
  in
  25e-12 /. Float.max gm_rel 0.2

let read_delay_ps s dy =
  if Array.length dy <> dim s then
    invalid_arg "Sram.read_delay_ps: factor vector dimension mismatch";
  let t_wl = wl_driver_delay s dy in
  let t_rep = replica_delay s dy in
  (* Bitline differential developed while the replica timer runs. *)
  let i_cell = cell_current s dy accessed_cell -. bitline_leakage s dy in
  let i_cell = Float.max i_cell 1e-6 in
  (* Differential cannot exceed the bitline swing. *)
  let dv = Float.min (i_cell *. t_rep /. c_bitline) (0.45 *. vdd) in
  (* Sense amp resolves a differential reduced by its offset; the
     regeneration time grows logarithmically as the usable differential
     shrinks. *)
  let usable = Float.max (dv -. sense_offset s dy) (0.05 *. dv_sense_nom) in
  let t_sense = sense_tau s dy *. log (1. +. (vdd /. usable)) in
  let t_buf = out_buffer_delay s dy in
  (t_wl +. t_rep +. t_sense +. t_buf) *. 1e12

let nominal_delay_ps s = read_delay_ps s (Vec.create (dim s))

(* Table IV accounting: 29130 s / 1000 samples. *)
let seconds_per_sample = 29.13

let simulator s =
  Simulator.make ~name:"sram/read_delay" ~dim:(dim s) ~seconds_per_sample
    (fun dy -> read_delay_ps s dy)

let important_factors s =
  let p = s.process in
  let ids = ref [] in
  let add d =
    for w = 0 to 2 do
      ids := Process.mismatch_factor_index p ~device:d ~which:w :: !ids
    done
  in
  (* Globals. *)
  for gidx = 0 to Process.n_global_factors p - 1 do
    ids := gidx :: !ids
  done;
  (* Accessed cell read transistors. *)
  add (cell_device s accessed_cell t_access);
  add (cell_device s accessed_cell t_pulldown);
  (* Replica column: its cells set the self-timing window. *)
  Array.iter
    (fun c ->
      add (cell_device s c t_access);
      add (cell_device s c t_pulldown))
    replica_cells;
  for i = 0 to n_replica_inv - 1 do
    add (replica_inv_device s i)
  done;
  (* Sense amp. *)
  for i = 0 to n_sense - 1 do
    add (sense_device s i)
  done;
  (* Drivers and buffers. *)
  for i = 0 to n_wl_driver - 1 do
    add (wl_driver_device s i)
  done;
  for i = 0 to n_out_buffer - 1 do
    add (out_buffer_device s i)
  done;
  let arr = Array.of_list !ids in
  Array.sort compare arr;
  arr
