let to_channel oc d =
  let n = Array.length d.Simulator.points in
  if n = 0 then invalid_arg "Dataset_io: empty dataset";
  let dim = Array.length d.Simulator.points.(0) in
  for j = 0 to dim - 1 do
    Printf.fprintf oc "y%d," j
  done;
  output_string oc "f\n";
  Array.iteri
    (fun i p ->
      Array.iter (fun x -> Printf.fprintf oc "%.17g," x) p;
      Printf.fprintf oc "%.17g\n" d.Simulator.values.(i))
    d.Simulator.points

let save path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> to_channel oc d)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows -> (
      let cols = String.split_on_char ',' header in
      let ncols = List.length cols in
      if ncols < 2 then Error "header must have at least one factor and f"
      else if List.nth cols (ncols - 1) <> "f" then
        Error "last header column must be 'f'"
      else begin
        let dim = ncols - 1 in
        let parse_row idx line =
          let cells = String.split_on_char ',' line in
          if List.length cells <> ncols then
            Error (Printf.sprintf "row %d: expected %d columns" idx ncols)
          else begin
            let values = List.map float_of_string_opt cells in
            if List.exists (fun v -> v = None) values then
              Error (Printf.sprintf "row %d: malformed number" idx)
            else begin
              let arr = Array.of_list (List.map Option.get values) in
              Ok (Array.sub arr 0 dim, arr.(dim))
            end
          end
        in
        let rec collect i acc = function
          | [] -> Ok (List.rev acc)
          | row :: tl -> (
              match parse_row i row with
              | Ok x -> collect (i + 1) (x :: acc) tl
              | Error e -> Error e)
        in
        match collect 1 [] rows with
        | Error e -> Error e
        | Ok [] -> Error "no data rows"
        | Ok pairs ->
            Ok
              {
                Simulator.points = Array.of_list (List.map fst pairs);
                values = Array.of_list (List.map snd pairs);
              }
      end)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))
