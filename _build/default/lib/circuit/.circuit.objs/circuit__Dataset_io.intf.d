lib/circuit/dataset_io.mli: Simulator
