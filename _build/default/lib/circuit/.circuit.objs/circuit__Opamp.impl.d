lib/circuit/opamp.ml: Array Float Linalg Mosfet Printf Process Simulator Vec
