lib/circuit/process.ml: Array Linalg Mat Randkit Stat Vec
