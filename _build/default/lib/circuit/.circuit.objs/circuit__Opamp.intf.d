lib/circuit/opamp.mli: Linalg Process Simulator
