lib/circuit/simulator.ml: Array Linalg Mat Randkit Stat Vec
