lib/circuit/process.mli: Linalg Randkit
