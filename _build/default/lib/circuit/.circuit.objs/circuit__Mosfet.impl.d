lib/circuit/mosfet.ml: Process
