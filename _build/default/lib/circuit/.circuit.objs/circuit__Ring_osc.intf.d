lib/circuit/ring_osc.mli: Linalg Process Simulator
