lib/circuit/testbench.mli: Randkit Simulator
