lib/circuit/sram.ml: Array Float Linalg Process Simulator Vec
