lib/circuit/simulator.mli: Linalg Randkit
