lib/circuit/testbench.ml: Randkit Simulator Unix
