lib/circuit/dataset_io.ml: Array Fun List Option Printf Simulator String
