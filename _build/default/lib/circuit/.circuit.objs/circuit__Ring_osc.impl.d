lib/circuit/ring_osc.ml: Array Float Linalg Printf Process Simulator Vec
