lib/circuit/sram.mli: Linalg Process Simulator
