open Linalg

type metric = Gain | Bandwidth | Power | Offset

let all_metrics = [ Gain; Bandwidth; Power; Offset ]

let metric_name = function
  | Gain -> "gain"
  | Bandwidth -> "bandwidth"
  | Power -> "power"
  | Offset -> "offset"

let metric_unit = function
  | Gain -> "dB"
  | Bandwidth -> "MHz"
  | Power -> "uW"
  | Offset -> "mV"

module Device = struct
  let m1 = 0
  let m2 = 1
  let m3 = 2
  let m4 = 3
  let m5 = 4
  let m6 = 5
  let m7 = 6
  let m8 = 7
  (* Devices 8–11 are the bias-helper / start-up transistors; they carry
     mismatch variables but only couple weakly through the bias node. *)
  let count = 12
end

type t = { process : Process.t; n_parasitics : int }

(* Circuit constants (65 nm-flavoured). *)
let vdd = 1.2
let r_bias = 24e3 (* ohms *)
let cc = 1.0e-12 (* Miller cap, F *)

(* Device geometries (scaling of the unit transistors). *)
let geom =
  [|
    Mosfet.scaled Mosfet.nmos_unit 8. (* M1  input pair *);
    Mosfet.scaled Mosfet.nmos_unit 8. (* M2 *);
    Mosfet.scaled Mosfet.pmos_unit 4. (* M3  mirror load *);
    Mosfet.scaled Mosfet.pmos_unit 4. (* M4 *);
    Mosfet.scaled Mosfet.nmos_unit 16. (* M5  tail *);
    Mosfet.scaled Mosfet.pmos_unit 24. (* M6  second stage *);
    Mosfet.scaled Mosfet.nmos_unit 32. (* M7  sink *);
    Mosfet.scaled Mosfet.nmos_unit 8. (* M8  bias diode *);
    Mosfet.scaled Mosfet.nmos_unit 4. (* M9  bias helper *);
    Mosfet.scaled Mosfet.pmos_unit 4. (* M10 bias helper *);
    Mosfet.scaled Mosfet.pmos_unit 4. (* M11 bias helper *);
    Mosfet.scaled Mosfet.nmos_unit 4. (* M12 start-up *);
  |]

let build ?(n_parasitics = 550) () =
  if n_parasitics < 10 then
    invalid_arg "Opamp.build: need at least 10 parasitics (bias R, Cc, CL, ...)";
  let spec =
    {
      Process.default_spec with
      n_global = 20;
      n_devices = Device.count;
      mismatch_vars_per_device = 5;
      n_parasitics;
    }
  in
  { process = Process.build spec; n_parasitics }

let dim amp = Process.dim amp.process

let process amp = amp.process

let device amp dy i =
  let p = geom.(i) in
  let shift = Process.device_shift amp.process dy ~device:i ~area_factor:p.Mosfet.area in
  { Mosfet.p; shift }

let parasitic amp dy i = Process.parasitic_shift amp.process dy ~parasitic:i

(* Solve the bias fixed point I = (VDD − VGS8(I)) / R by damped iteration;
   the map is a contraction for any sane operating point. *)
let bias_current amp dy =
  let m8 = device amp dy Device.m8 in
  let r = r_bias *. (1. +. parasitic amp dy 0) in
  let i = ref ((vdd -. Mosfet.vth m8) /. r) in
  for _ = 1 to 40 do
    let vgs = Mosfet.vgs_for_current m8 ~id:(Float.max !i 1e-9) in
    let next = Float.max ((vdd -. vgs) /. r) 1e-9 in
    i := 0.5 *. (!i +. next)
  done;
  !i

(* Mirror from the diode M8 (carrying i_ref at gate voltage vgs8) to a
   device [d]. The width ratio of the mirror is already encoded in the
   device geometries (M5 is 2× and M7 is 4× the M8 width), so the
   mirrored current is just the square law at the shared gate voltage —
   mismatch between M8 and the mirror output appears naturally as a
   vov/beta difference. *)
let mirrored amp dy ~i_ref d_idx =
  let m8 = device amp dy Device.m8 in
  let d = device amp dy d_idx in
  let vgs = Mosfet.vgs_for_current m8 ~id:i_ref in
  let vov = vgs -. Mosfet.vth d in
  if vov <= 0. then 1e-9 else 0.5 *. Mosfet.beta d *. vov *. vov

(* Small parasitic "background": hundreds of interconnect elements each
   perturbing the metric by a tiny, decaying amount. These are the
   near-zero coefficients of Fig. 6's analogue for the OpAmp. *)
let parasitic_background amp dy ~first ~scale =
  let acc = ref 0. in
  for i = first to amp.n_parasitics - 1 do
    acc := !acc +. (parasitic amp dy i /. float_of_int ((i + 2) * (i + 2)))
  done;
  scale *. !acc

type operating_point = {
  i_bias : float;
  i_tail : float;
  i_stage2 : float;
  gm1 : float;
  gm3 : float;
  gm6 : float;
  gds2 : float;
  gds4 : float;
  gds6 : float;
  gds7 : float;
}

let solve amp dy =
  let i_bias = bias_current amp dy in
  let i_tail = mirrored amp dy ~i_ref:i_bias Device.m5 in
  let i_stage2 = mirrored amp dy ~i_ref:i_bias Device.m7 in
  let i_half = 0.5 *. i_tail in
  let m1 = device amp dy Device.m1 in
  let m3 = device amp dy Device.m3 in
  let m2 = device amp dy Device.m2 in
  let m4 = device amp dy Device.m4 in
  let m6 = device amp dy Device.m6 in
  let m7 = device amp dy Device.m7 in
  {
    i_bias;
    i_tail;
    i_stage2;
    gm1 = Mosfet.gm m1 ~id:i_half;
    gm3 = Mosfet.gm m3 ~id:i_half;
    gm6 = Mosfet.gm m6 ~id:i_stage2;
    gds2 = Mosfet.gds m2 ~id:i_half;
    gds4 = Mosfet.gds m4 ~id:i_half;
    gds6 = Mosfet.gds m6 ~id:i_stage2;
    gds7 = Mosfet.gds m7 ~id:i_stage2;
  }

let gain_db amp dy =
  let op = solve amp dy in
  let a1 = op.gm1 /. (op.gds2 +. op.gds4) in
  let a2 = op.gm6 /. (op.gds6 +. op.gds7) in
  let a = Float.max (a1 *. a2) 1. in
  (20. *. log10 a) +. parasitic_background amp dy ~first:10 ~scale:0.5

let bandwidth_mhz amp dy =
  let op = solve amp dy in
  let cc_eff = cc *. (1. +. parasitic amp dy 1) in
  (* A few explicit node capacitors load the unity-gain frequency. *)
  let node_caps = ref 0. in
  for i = 3 to 9 do
    node_caps := !node_caps +. (0.01 *. parasitic amp dy i)
  done;
  let gbw = op.gm1 /. (2. *. Float.pi *. cc_eff) /. (1. +. !node_caps) in
  (gbw /. 1e6) *. (1. +. parasitic_background amp dy ~first:10 ~scale:0.02)

let power_uw amp dy =
  let op = solve amp dy in
  let i_total = op.i_bias +. op.i_tail +. op.i_stage2 in
  (vdd *. i_total *. 1e6)
  *. (1. +. parasitic_background amp dy ~first:10 ~scale:0.02)

let offset_mv amp dy =
  let op = solve amp dy in
  let sh i = (device amp dy i).Mosfet.shift in
  let s1 = sh Device.m1 and s2 = sh Device.m2 in
  let s3 = sh Device.m3 and s4 = sh Device.m4 in
  let m1 = device amp dy Device.m1 in
  let vov1 = Mosfet.overdrive m1 ~id:(0.5 *. op.i_tail) in
  let dvth_in = s1.Process.dvth -. s2.Process.dvth in
  let dvth_load = s3.Process.dvth -. s4.Process.dvth in
  let dbeta_in = s1.Process.dbeta_rel -. s2.Process.dbeta_rel in
  let dbeta_load = s3.Process.dbeta_rel -. s4.Process.dbeta_rel in
  let vos =
    dvth_in
    +. (op.gm3 /. op.gm1 *. dvth_load)
    +. (0.5 *. vov1 *. (dbeta_in +. dbeta_load))
  in
  vos *. 1e3

let eval amp m dy =
  if Array.length dy <> dim amp then
    invalid_arg "Opamp.eval: factor vector dimension mismatch";
  match m with
  | Gain -> gain_db amp dy
  | Bandwidth -> bandwidth_mhz amp dy
  | Power -> power_uw amp dy
  | Offset -> offset_mv amp dy

let nominal amp m = eval amp m (Vec.create (dim amp))

(* Table I accounting: 16140 s / 1200 samples = 13.45 s per Spectre run. *)
let seconds_per_sample = 13.45

let simulator amp m =
  Simulator.make
    ~name:(Printf.sprintf "opamp/%s" (metric_name m))
    ~dim:(dim amp) ~seconds_per_sample
    (fun dy -> eval amp m dy)
