(** SRAM read path (Fig. 5 of the paper): cell array, replica column for
    self-timing, sense amplifier, word-line driver and output buffer.

    The modeled performance is the {b read delay} from the word line
    (WL) rising to the sense-amplifier output (Out):

    [delay = t_wl_driver + t_replica + t_sense + t_buffer]

    where the bitline differential developed while the replica timer
    runs must overcome the sense-amp input offset — a ratio inside a
    logarithm, making the delay a smooth nonlinear function of the
    mismatch variables.

    Variation space: each transistor carries 3 mismatch variables
    (ΔV_TH, Δβ, ΔL). With [cells] 6-T cells, 20 peripheral transistors
    (sense amp 6, replica inverters 6, WL driver 4, output buffer 4) and
    10 inter-die parameters, the factor dimension is
    [18·cells + 60 + 10]. The paper-size configuration uses
    {b 1180 cells → exactly 21 310 factors}, matching Section V-B.

    Sparsity ground truth: the delay depends strongly on ~40 factors
    (the accessed cell, the replica cells, the sense amp, the drivers
    and the globals); the other ~21 000 factors enter only through an
    aggregate bitline-leakage term with per-cell weights of order 10⁻⁵ —
    the "large number of model coefficients close to zero" of Fig. 6. *)

type t

val build : ?cells:int -> unit -> t
(** [build ()] is the paper-size array (1180 cells, 21 310 factors).
    [~cells] scales the array down for tests and quick benches
    (e.g. [~cells:100] → 1870 factors).
    @raise Invalid_argument for fewer than 10 cells. *)

val paper_cells : int
(** 1180 — the cell count that reproduces the paper's 21 310 factors. *)

val dim : t -> int

val cells : t -> int

val process : t -> Process.t

val read_delay_ps : t -> Linalg.Vec.t -> float
(** Read delay in picoseconds at factor vector ΔY. *)

val nominal_delay_ps : t -> float

val simulator : t -> Simulator.t
(** Table IV accounting: 29 130 s / 1000 samples = 29.13 s per Spectre
    run of the read path. *)

val accessed_cell : int
(** Index of the cell whose read is timed (cell 0). *)

val replica_cells : int array
(** Indices of the replica-column cells (cells 1–8). *)

val important_factors : t -> int array
(** Ground-truth strongly-coupled factor indices (globals, accessed
    cell, sense amp, drivers) — used by tests to verify that the sparse
    solvers select physically meaningful variables. *)
