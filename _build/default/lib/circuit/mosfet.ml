type params = { vth0 : float; beta0 : float; lambda : float; area : float }

let nmos_unit = { vth0 = 0.35; beta0 = 2.0e-3; lambda = 0.15; area = 1.0 }

let pmos_unit = { vth0 = 0.40; beta0 = 0.8e-3; lambda = 0.20; area = 1.0 }

let scaled p k =
  if k <= 0. then invalid_arg "Mosfet.scaled: factor must be positive";
  { p with beta0 = p.beta0 *. k; area = p.area *. k }

type t = { p : params; shift : Process.shift }

let nominal p = { p; shift = { Process.dvth = 0.; dbeta_rel = 0.; dlen_rel = 0. } }

let vth d = d.p.vth0 +. d.shift.Process.dvth

let beta d =
  d.p.beta0 *. (1. +. d.shift.Process.dbeta_rel)
  *. (1. -. d.shift.Process.dlen_rel)

let effective_lambda d = d.p.lambda *. (1. +. d.shift.Process.dlen_rel)

let id_sat d ~vgs ~vds =
  let vov = vgs -. vth d in
  if vov <= 0. then 0.
  else 0.5 *. beta d *. vov *. vov *. (1. +. (effective_lambda d *. vds))

let vgs_for_current d ~id =
  if id < 0. then invalid_arg "Mosfet.vgs_for_current: negative current";
  vth d +. sqrt (2. *. id /. beta d)

let gm d ~id =
  if id <= 0. then 0. else sqrt (2. *. beta d *. id)

let gds d ~id = effective_lambda d *. id

let overdrive d ~id =
  if id <= 0. then 0. else sqrt (2. *. id /. beta d)
