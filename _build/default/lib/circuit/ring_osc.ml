open Linalg

type metric = Frequency | Power

let metric_name = function Frequency -> "frequency" | Power -> "power"

type t = { process : Process.t; stages : int }

let vdd = 1.0
let c_stage = 8e-15 (* load per stage, F *)
let beta_n = 2.0e-3
let beta_p = 0.9e-3
let vth_n = 0.35
let vth_p = 0.40

let build ?(stages = 101) () =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Ring_osc.build: stages must be odd and at least 3";
  let spec =
    {
      Process.default_spec with
      n_global = 10;
      global_corr = 0.5;
      n_devices = 2 * stages (* one NMOS + one PMOS per inverter *);
      mismatch_vars_per_device = 3;
      n_parasitics = 0;
    }
  in
  { process = Process.build spec; stages }

let stages r = r.stages

let dim r = Process.dim r.process

let process r = r.process

(* Devices 2i / 2i+1 are stage i's NMOS / PMOS. *)
let nmos_dev i = 2 * i

let pmos_dev i = (2 * i) + 1

let drive_current shift ~beta0 ~vth0 =
  let vov = vdd -. (vth0 +. shift.Process.dvth) in
  let vov = Float.max vov 0.1 in
  0.5 *. beta0
  *. (1. +. shift.Process.dbeta_rel)
  *. (1. -. shift.Process.dlen_rel)
  *. vov *. vov

let stage_delay r dy i =
  let sn = Process.device_shift r.process dy ~device:(nmos_dev i) ~area_factor:1. in
  let sp = Process.device_shift r.process dy ~device:(pmos_dev i) ~area_factor:1. in
  let i_n = drive_current sn ~beta0:beta_n ~vth0:vth_n in
  let i_p = drive_current sp ~beta0:beta_p ~vth0:vth_p in
  (* Average of the pull-down and pull-up transitions. *)
  0.5 *. c_stage *. vdd *. ((1. /. i_n) +. (1. /. i_p))

let period r dy =
  let acc = ref 0. in
  for i = 0 to r.stages - 1 do
    acc := !acc +. stage_delay r dy i
  done;
  2. *. !acc

let frequency_mhz r dy = 1e-6 /. period r dy

let power_uw r dy =
  (* Dynamic power: every stage switches once per period. *)
  let f = 1. /. period r dy in
  f *. c_stage *. vdd *. vdd *. float_of_int r.stages *. 1e6

let eval r m dy =
  if Array.length dy <> dim r then
    invalid_arg "Ring_osc.eval: factor vector dimension mismatch";
  match m with Frequency -> frequency_mhz r dy | Power -> power_uw r dy

let nominal r m = eval r m (Vec.create (dim r))

let simulator r m =
  Simulator.make
    ~name:(Printf.sprintf "ring_osc/%s" (metric_name m))
    ~dim:(dim r) ~seconds_per_sample:2.1
    (fun dy -> eval r m dy)
