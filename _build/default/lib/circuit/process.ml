open Linalg

type shift = { dvth : float; dbeta_rel : float; dlen_rel : float }

type spec = {
  n_global : int;
  global_corr : float;
  n_devices : int;
  mismatch_vars_per_device : int;
  n_parasitics : int;
  vth_sigma_global : float;
  vth_sigma_local : float;
  beta_sigma_rel : float;
  len_sigma_rel : float;
  parasitic_sigma_rel : float;
}

let default_spec =
  {
    n_global = 10;
    global_corr = 0.6;
    n_devices = 8;
    mismatch_vars_per_device = 5;
    n_parasitics = 0;
    vth_sigma_global = 0.015;
    vth_sigma_local = 0.020;
    beta_sigma_rel = 0.02;
    len_sigma_rel = 0.015;
    parasitic_sigma_rel = 0.05;
  }

type t = {
  spec : spec;
  pca : Stat.Pca.t;
  (* Sensitivity of each physical global quantity to the raw inter-die
     parameters: rows = {vth, beta, len}, cols = raw globals. *)
  global_sens : Mat.t;
}

let build spec =
  if spec.n_global <= 0 then invalid_arg "Process.build: n_global must be positive";
  if spec.n_devices < 0 || spec.n_parasitics < 0 then
    invalid_arg "Process.build: negative counts";
  if spec.mismatch_vars_per_device < 3 then
    invalid_arg "Process.build: need at least 3 mismatch variables per device";
  if spec.global_corr < 0. || spec.global_corr >= 1. then
    invalid_arg "Process.build: global correlation must be in [0, 1)";
  (* Equi-correlated inter-die covariance: diag 1, off-diagonal rho. *)
  let n = spec.n_global in
  let sigma =
    Mat.init n n (fun i j -> if i = j then 1. else spec.global_corr)
  in
  let pca = Stat.Pca.of_covariance sigma in
  (* Deterministic, structured sensitivities of physical globals to raw
     inter-die parameters: the first raw parameters dominate V_TH, later
     ones mobility and geometry — a caricature of a real foundry deck. *)
  let raw_sens =
    Mat.init 3 n (fun q j ->
        let w = 1. /. sqrt (float_of_int (j + 1)) in
        match q with
        | 0 -> w *. (if j mod 3 = 0 then 1. else 0.4)
        | 1 -> w *. (if j mod 3 = 1 then 1. else 0.3)
        | _ -> w *. (if j mod 3 = 2 then 1. else 0.2))
  in
  (* Normalize each physical row so that Var(S_q·raw) over the correlated
     raw parameters equals exactly the specified global sigma². *)
  let targets =
    [| spec.vth_sigma_global; spec.beta_sigma_rel; spec.len_sigma_rel |]
  in
  let global_sens =
    Mat.init 3 n (fun q j ->
        let row = Mat.row raw_sens q in
        let var = Vec.dot row (Mat.mulv sigma row) in
        Mat.unsafe_get raw_sens q j *. targets.(q) /. sqrt var)
  in
  { spec; pca; global_sens }

let spec p = p.spec

let n_global_factors p = Stat.Pca.output_dim p.pca

let dim p =
  n_global_factors p
  + (p.spec.n_devices * p.spec.mismatch_vars_per_device)
  + p.spec.n_parasitics

let sample p g = Randkit.Gaussian.vector g (dim p)

let mismatch_factor_index p ~device ~which =
  if device < 0 || device >= p.spec.n_devices then
    invalid_arg "Process.mismatch_factor_index: device out of range";
  if which < 0 || which >= p.spec.mismatch_vars_per_device then
    invalid_arg "Process.mismatch_factor_index: mismatch variable out of range";
  n_global_factors p + (device * p.spec.mismatch_vars_per_device) + which

let parasitic_factor_index p ~parasitic =
  if parasitic < 0 || parasitic >= p.spec.n_parasitics then
    invalid_arg "Process.parasitic_factor_index: parasitic out of range";
  n_global_factors p
  + (p.spec.n_devices * p.spec.mismatch_vars_per_device)
  + parasitic

let device_shift p dy ~device ~area_factor =
  if Array.length dy <> dim p then
    invalid_arg "Process.device_shift: factor vector dimension mismatch";
  if area_factor <= 0. then
    invalid_arg "Process.device_shift: area factor must be positive";
  let ng = n_global_factors p in
  (* Global component: rotate factor scores back to raw parameters, then
     apply the physical sensitivities. *)
  let raw = Stat.Pca.unwhiten p.pca (Array.sub dy 0 ng) in
  let phys = Mat.mulv p.global_sens raw in
  (* Local component: this device's own factors, Pelgrom-scaled. *)
  let a = 1. /. sqrt area_factor in
  let m which = dy.(mismatch_factor_index p ~device ~which) in
  {
    dvth = phys.(0) +. (p.spec.vth_sigma_local *. a *. m 0);
    dbeta_rel = phys.(1) +. (p.spec.beta_sigma_rel *. a *. m 1);
    dlen_rel = phys.(2) +. (p.spec.len_sigma_rel *. a *. m 2);
  }

let parasitic_shift p dy ~parasitic =
  if Array.length dy <> dim p then
    invalid_arg "Process.parasitic_shift: factor vector dimension mismatch";
  p.spec.parasitic_sigma_rel *. dy.(parasitic_factor_index p ~parasitic)
