(** Square-law MOS transistor model with process shifts.

    A deliberately simple long-channel model — saturation current
    [I_D = ½·β·(V_GS − V_TH)²·(1 + λ·V_DS)] — which is all the
    performance equations need: it produces physically-correct
    sensitivities (gm ∝ √(β·I), offset ∝ ΔV_TH/(V_GS−V_TH), delay ∝
    C·V/I) and mild nonlinearity in the variation variables, which is
    exactly the regime the paper's quadratic models target. *)

type params = {
  vth0 : float;  (** nominal threshold voltage, V *)
  beta0 : float;  (** nominal µ·Cox·W/L, A/V² *)
  lambda : float;  (** channel-length modulation, 1/V *)
  area : float;  (** relative device area (Pelgrom scaling) *)
}

val nmos_unit : params
(** Representative 65 nm NMOS unit device: V_TH 0.35 V, β 2 mA/V²,
    λ 0.15 /V, unit area. *)

val pmos_unit : params
(** PMOS counterpart (higher V_TH magnitude, lower β). *)

val scaled : params -> float -> params
(** [scaled p k] multiplies width (hence β and area) by [k]. *)

(** A device instance: nominal parameters plus its process shifts. *)
type t = { p : params; shift : Process.shift }

val nominal : params -> t
(** Instance with zero shift. *)

val vth : t -> float
(** Effective threshold voltage [vth0 + dvth]. *)

val beta : t -> float
(** Effective current factor [β₀·(1 + dbeta_rel)·(1 − dlen_rel)]
    (shorter channel → larger W/L → larger β). *)

val id_sat : t -> vgs:float -> vds:float -> float
(** Saturation drain current; 0 when the device is off
    ([vgs ≤ vth]). *)

val vgs_for_current : t -> id:float -> float
(** Inverse of [id_sat] at [vds] small: the V_GS that conducts [id]
    ([vth + √(2·id/β)]); used by diode-connected bias devices.
    @raise Invalid_argument for negative current. *)

val gm : t -> id:float -> float
(** Transconductance at bias current [id]: [√(2·β·id)]. *)

val gds : t -> id:float -> float
(** Output conductance [λ·id] (with λ scaled by effective length:
    shorter channel → more modulation). *)

val overdrive : t -> id:float -> float
(** [V_GS − V_TH] at bias current [id]. *)
