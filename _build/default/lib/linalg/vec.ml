type t = float array

let create n = Array.make n 0.

let init = Array.init

let copy = Array.copy

let dim = Array.length

let fill v c = Array.fill v 0 (Array.length v) c

let of_list = Array.of_list

let to_list = Array.to_list

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let nrm2_sq x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. x.(i))
  done;
  !acc

(* Scaled two-pass norm in the style of LAPACK's dnrm2: track the running
   maximum magnitude and accumulate squares relative to it. *)
let nrm2 x =
  let scale = ref 0. and ssq = ref 1. in
  for i = 0 to Array.length x - 1 do
    let xi = Float.abs x.(i) in
    if xi > 0. then
      if !scale < xi then begin
        ssq := 1. +. (!ssq *. (!scale /. xi) *. (!scale /. xi));
        scale := xi
      end
      else ssq := !ssq +. ((xi /. !scale) *. (xi /. !scale))
  done;
  !scale *. sqrt !ssq

let asum x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. Float.abs x.(i)
  done;
  !acc

let norm0 ?(tol = 0.) x =
  let n = ref 0 in
  for i = 0 to Array.length x - 1 do
    if Float.abs x.(i) > tol then incr n
  done;
  !n

let amax x =
  if Array.length x = 0 then invalid_arg "Vec.amax: empty vector";
  let best = ref 0 and best_v = ref (Float.abs x.(0)) in
  for i = 1 to Array.length x - 1 do
    let v = Float.abs x.(i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let scal a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let add x y =
  check_same_dim "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let smul a x = Array.map (fun xi -> a *. xi) x

let neg x = Array.map Float.neg x

let map = Array.map

let map2 f x y =
  check_same_dim "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let sum x =
  (* Kahan compensated summation: keeps the error independent of length. *)
  let s = ref 0. and c = ref 0. in
  for i = 0 to Array.length x - 1 do
    let y = x.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let mean x =
  if Array.length x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let dist2 x y =
  check_same_dim "dist2" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp fmt v =
  let n = Array.length v in
  Format.fprintf fmt "[";
  let shown = min n 8 in
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" v.(i)
  done;
  if n > shown then Format.fprintf fmt "; ... (%d total)" n;
  Format.fprintf fmt "]"
