(** Triangular system solvers.

    Conventions: matrices are square [Mat.t]; "lower" solvers read only the
    lower triangle (including diagonal), "upper" solvers only the upper
    triangle. A zero (or near-zero) pivot raises [Singular]. *)

exception Singular of int
(** [Singular i] signals a (near-)zero diagonal pivot at row [i]. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** [solve_lower l b] solves [L·x = b] by forward substitution. *)

val solve_upper : Mat.t -> Vec.t -> Vec.t
(** [solve_upper u b] solves [U·x = b] by back substitution. *)

val solve_lower_transposed : Mat.t -> Vec.t -> Vec.t
(** [solve_lower_transposed l b] solves [Lᵀ·x = b] reading the lower
    triangle of [l] only (back substitution on the implicit transpose). *)

val solve_lower_sub : Mat.t -> int -> Vec.t -> Vec.t
(** [solve_lower_sub l k b] solves the leading [k×k] system [L₍ₖ₎·x = b]
    where [b] has length [k]. Used by the incremental Cholesky in OMP and
    LARS, where the factor grows one row per iteration inside a
    pre-allocated matrix. *)

val solve_lower_transposed_sub : Mat.t -> int -> Vec.t -> Vec.t
(** [solve_lower_transposed_sub l k b] solves [L₍ₖ₎ᵀ·x = b] on the leading
    [k×k] block. *)
