exception Singular of int

(* Compact storage: L (unit diagonal, below) and U (on and above the
   diagonal) share one matrix; [perm] records row exchanges; [sign] the
   permutation parity. *)
type t = { lu : Mat.t; perm : int array; sign : float }

let factor a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Lu.factor: not square";
  let n = Mat.rows a in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivot: largest magnitude in column k at or below row k. *)
    let pivot = ref k and best = ref (Float.abs (Mat.unsafe_get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.unsafe_get lu i k) in
      if v > !best then begin
        pivot := i;
        best := v
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.unsafe_get lu k j in
        Mat.unsafe_set lu k j (Mat.unsafe_get lu !pivot j);
        Mat.unsafe_set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let ukk = Mat.unsafe_get lu k k in
    for i = k + 1 to n - 1 do
      let lik = Mat.unsafe_get lu i k /. ukk in
      Mat.unsafe_set lu i k lik;
      if lik <> 0. then
        for j = k + 1 to n - 1 do
          Mat.unsafe_set lu i j
            (Mat.unsafe_get lu i j -. (lik *. Mat.unsafe_get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve f b =
  let n = Mat.rows f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  (* Apply permutation, then unit-lower forward then upper backward. *)
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.unsafe_get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.unsafe_get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.unsafe_get f.lu i i
  done;
  x

let solve_many f b =
  if Mat.rows b <> Mat.rows f.lu then invalid_arg "Lu.solve_many: shape mismatch";
  let out = Mat.create (Mat.rows b) (Mat.cols b) in
  for j = 0 to Mat.cols b - 1 do
    Mat.set_col out j (solve f (Mat.col b j))
  done;
  out

let det f =
  let n = Mat.rows f.lu in
  let acc = ref f.sign in
  for i = 0 to n - 1 do
    acc := !acc *. Mat.unsafe_get f.lu i i
  done;
  !acc

let inverse f = solve_many f (Mat.identity (Mat.rows f.lu))

let lu_solve a b = solve (factor a) b
