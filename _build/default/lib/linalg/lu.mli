(** LU factorization with partial pivoting.

    General square solves, determinants and inverses — the workhorse for
    the non-symmetric systems that appear outside the least-squares path
    (e.g. solving for equiangular directions against non-Gram matrices,
    and test oracles for the other factorizations). *)

type t
(** Opaque factorization [P·A = L·U]. *)

exception Singular of int
(** Raised (with the pivot column) when no usable pivot exists. *)

val factor : Mat.t -> t
(** [factor a] factorizes the square matrix [a] with row partial
    pivoting.
    @raise Invalid_argument when [a] is not square.
    @raise Singular when a pivot column is numerically zero. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [A·x = b]. *)

val solve_many : t -> Mat.t -> Mat.t
(** [solve_many f b] solves [A·X = B] column by column. *)

val det : t -> float
(** Determinant (sign includes the permutation parity). *)

val inverse : t -> Mat.t

val lu_solve : Mat.t -> Vec.t -> Vec.t
(** [lu_solve a b] is [solve (factor a) b]. *)
