lib/linalg/tri.ml: Array Float Mat
