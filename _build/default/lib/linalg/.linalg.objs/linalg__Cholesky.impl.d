lib/linalg/cholesky.ml: Array Mat Tri
