lib/linalg/lstsq.ml: Array Cholesky Mat Qr Vec
