lib/linalg/tri.mli: Mat Vec
